module harmonia

go 1.22
