package harmonia

// The running-device twin lives in internal/device so layers above a
// single instance (the fleet control plane, the benchmark harness) can
// build on it without importing this package; the public surface stays
// here unchanged via aliases.

import (
	"harmonia/internal/device"
	"harmonia/internal/toolchain"
)

// Re-exported running-instance types.
type (
	// Device is a running simulated FPGA instance.
	Device = device.Device
	// ModuleInfo describes one controllable module on a running device.
	ModuleInfo = device.ModuleInfo
	// Event is a latency-critical irq-path hardware notification.
	Event = device.Event
)

// RBB IDs used in command addressing.
const (
	RBBUCK     = device.RBBUCK
	RBBNetwork = device.RBBNetwork
	RBBMemory  = device.RBBMemory
	RBBHost    = device.RBBHost
	RBBMgmt    = device.RBBMgmt
	RBBRole    = device.RBBRole
)

// Well-known event codes.
const (
	EventThermalAlarm = device.EventThermalAlarm
	EventLinkDown     = device.EventLinkDown
	EventParityError  = device.EventParityError
)

// bootDevice assembles the running instance from a compiled project.
func bootDevice(proj *toolchain.Project) (*Device, error) {
	return device.Boot(proj)
}
