package harmonia

import (
	"fmt"

	"harmonia/internal/sim"
	"harmonia/internal/uck"
)

// SelfTestResult is one check of the integration test stage.
type SelfTestResult struct {
	Check  string
	Pass   bool
	Detail string
}

// SelfTest performs the §4 Stage-3 integration test against the running
// instance's control plane: every module initializes, resets and
// re-initializes through commands; tables round-trip on the shell RBBs;
// telemetry and flash respond; and the command path's measured latency
// stays sane. It returns per-check results and whether all passed.
func (d *Deployment) SelfTest() ([]SelfTestResult, bool) {
	dev := d.Device()
	var results []SelfTestResult
	add := func(check string, pass bool, detail string) {
		results = append(results, SelfTestResult{Check: check, Pass: pass, Detail: detail})
	}

	// 1. Every module comes up, goes down, and comes back.
	lifecyclePass := true
	detail := ""
	for _, m := range dev.Modules() {
		if err := dev.Init(m.RBBID, m.InstanceID); err != nil {
			lifecyclePass, detail = false, fmt.Sprintf("%s init: %v", m.Name, err)
			break
		}
		if err := dev.Reset(m.RBBID, m.InstanceID); err != nil {
			lifecyclePass, detail = false, fmt.Sprintf("%s reset: %v", m.Name, err)
			break
		}
		if s, err := dev.Status(m.RBBID, m.InstanceID); err != nil || s != uck.StatusReset {
			lifecyclePass, detail = false, fmt.Sprintf("%s status after reset: %d, %v", m.Name, s, err)
			break
		}
		if err := dev.Init(m.RBBID, m.InstanceID); err != nil {
			lifecyclePass, detail = false, fmt.Sprintf("%s re-init: %v", m.Name, err)
			break
		}
	}
	if lifecyclePass {
		detail = fmt.Sprintf("%d modules cycled", len(dev.Modules()))
	}
	add("module-lifecycle", lifecyclePass, detail)

	// 2. Table round-trips on every RBB-class module.
	tablePass, tableDetail := true, ""
	tested := 0
	for _, m := range dev.Modules() {
		if m.RBBID == RBBUCK || m.RBBID == RBBRole {
			continue
		}
		if err := dev.WriteTable(m.RBBID, m.InstanceID, 7, 1, 0x5A5A, uint32(m.RBBID)); err != nil {
			tablePass, tableDetail = false, fmt.Sprintf("%s write: %v", m.Name, err)
			break
		}
		entry, err := dev.ReadTable(m.RBBID, m.InstanceID, 7, 1)
		if err != nil || len(entry) != 2 || entry[0] != 0x5A5A || entry[1] != uint32(m.RBBID) {
			tablePass, tableDetail = false, fmt.Sprintf("%s readback: %v, %v", m.Name, entry, err)
			break
		}
		tested++
	}
	if tablePass {
		tableDetail = fmt.Sprintf("%d modules verified", tested)
	}
	add("table-roundtrip", tablePass, tableDetail)

	// 3. Telemetry responds with plausible values.
	temp, vccint, power, err := dev.Sensors()
	sensorsPass := err == nil && temp > 20_000 && temp < 110_000 && vccint > 0 && power > 0
	add("telemetry", sensorsPass, fmt.Sprintf("temp=%dmC vccint=%dmV power=%dmW err=%v",
		temp, vccint, power, err))

	// 4. Flash erase works on a scratch sector.
	ferr := dev.EraseFlash(63)
	add("flash-erase", ferr == nil, fmt.Sprintf("sector 63: %v", ferr))

	// 5. Command-path latency: one status read stays under 10us of
	// simulated time (isolation from data path + soft-core budget).
	before := dev.Uptime()
	_, serr := dev.Status(RBBMgmt, 0)
	lat := dev.Uptime() - before
	latPass := serr == nil && lat > 0 && lat < 10*sim.Microsecond
	add("command-latency", latPass, fmt.Sprintf("status read in %v", lat))

	all := true
	for _, r := range results {
		if !r.Pass {
			all = false
		}
	}
	return results, all
}
