package harmonia

import (
	"strings"
	"testing"

	"harmonia/internal/cmdif"
	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/uck"
)

func bitwDemands() Demands {
	return Demands{
		Network: &NetworkDemand{Gbps: 100, Filter: true},
		Host:    &HostDemand{Bulk: true, Queues: 16},
	}
}

func testRole(t *testing.T) *Role {
	t.Helper()
	r, err := NewRole("test-app", bitwDemands(), &LogicModule{
		Name: "test-logic",
		Res:  Resources{LUT: 40_000, REG: 60_000, BRAM: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFrameworkDevices(t *testing.T) {
	fw := New()
	devs := fw.Devices()
	if len(devs) != 4 || devs[0] != "device-a" {
		t.Errorf("Devices() = %v", devs)
	}
	if _, err := fw.Device("device-b"); err != nil {
		t.Error(err)
	}
	if _, err := fw.Device("nope"); err == nil {
		t.Error("unknown device should fail")
	}
}

func TestRegisterCustomDevice(t *testing.T) {
	fw := New()
	custom := &platform.Device{
		Name: "custom-e", Vendor: platform.InHouse, Chip: platform.XCVU9P,
		Peripherals: []platform.Peripheral{platform.NewQSFP28(2), platform.NewPCIe(4, 16)},
	}
	if err := fw.RegisterDevice(custom); err != nil {
		t.Fatal(err)
	}
	if err := fw.RegisterDevice(custom); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := fw.RegisterDevice(nil); err == nil {
		t.Error("nil device should fail")
	}
	// The custom device deploys like any other.
	if _, err := fw.Deploy("custom-e", testRole(t)); err != nil {
		t.Errorf("deploy on custom device: %v", err)
	}
}

func TestDeployLifecycle(t *testing.T) {
	fw := New()
	dep, err := fw.Deploy("device-a", testRole(t))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Bitstream() == "" {
		t.Error("no bitstream checksum")
	}
	if !dep.Shell().Tailored {
		t.Error("deployed shell not tailored")
	}
	dev := dep.Device()
	mods := dev.Modules()
	if len(mods) < 4 {
		t.Fatalf("only %d modules registered", len(mods))
	}
	var names []string
	for _, m := range mods {
		names = append(names, m.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"network", "host-pcie", "management", "uck", "test-app"} {
		if !strings.Contains(joined, want) {
			t.Errorf("modules %v missing %q", names, want)
		}
	}
}

func TestDeployPortabilityAcrossAllDevices(t *testing.T) {
	// The same role deploys on every catalog device without changes —
	// the portability headline.
	fw := New()
	for _, devName := range fw.Devices() {
		dep, err := fw.Deploy(devName, testRole(t))
		if err != nil {
			t.Errorf("deploy on %s: %v", devName, err)
			continue
		}
		if err := dep.Device().InitAll(); err != nil {
			t.Errorf("init on %s: %v", devName, err)
		}
	}
}

func TestDeviceCommandInterface(t *testing.T) {
	fw := New()
	dep, err := fw.Deploy("device-a", testRole(t))
	if err != nil {
		t.Fatal(err)
	}
	dev := dep.Device()

	// Fresh modules report reset status.
	ready, err := dev.Ready(RBBNetwork, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ready {
		t.Error("uninitialized module reports ready")
	}
	// One init command brings the module up.
	if err := dev.Init(RBBNetwork, 0); err != nil {
		t.Fatal(err)
	}
	ready, _ = dev.Ready(RBBNetwork, 0)
	if !ready {
		t.Error("module not ready after init")
	}
	// Reset takes it back down.
	if err := dev.Reset(RBBNetwork, 0); err != nil {
		t.Fatal(err)
	}
	if s, _ := dev.Status(RBBNetwork, 0); s != uck.StatusReset {
		t.Errorf("status after reset = %d", s)
	}
	// Time advances with command activity.
	if dev.Uptime() <= 0 {
		t.Error("uptime not advancing")
	}
}

func TestDeviceTables(t *testing.T) {
	fw := New()
	dep, _ := fw.Deploy("device-a", testRole(t))
	dev := dep.Device()
	if err := dev.WriteTable(RBBNetwork, 0, 1, 42, 0xAB, 0xCD); err != nil {
		t.Fatal(err)
	}
	entry, err := dev.ReadTable(RBBNetwork, 0, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(entry) != 2 || entry[0] != 0xAB || entry[1] != 0xCD {
		t.Errorf("table entry = %v", entry)
	}
	if _, err := dev.ReadTable(RBBNetwork, 0, 1, 99); err == nil {
		t.Error("missing entry should fail")
	}
}

func TestDeviceStats(t *testing.T) {
	fw := New()
	dep, _ := fw.Deploy("device-a", testRole(t))
	dev := dep.Device()
	if _, err := dev.Stats(RBBNetwork, 0); err == nil {
		t.Error("stats without source should fail")
	}
	if err := dev.SetStatsSource(RBBNetwork, 0, func() []uint32 { return []uint32{7, 8} }); err != nil {
		t.Fatal(err)
	}
	stats, err := dev.Stats(RBBNetwork, 0)
	if err != nil || len(stats) != 2 || stats[1] != 8 {
		t.Errorf("stats = %v, %v", stats, err)
	}
	if err := dev.SetStatsSource(99, 0, nil); err == nil {
		t.Error("unknown module should fail")
	}
}

func TestDeviceKernelExtension(t *testing.T) {
	fw := New()
	dep, _ := fw.Deploy("device-a", testRole(t))
	dev := dep.Device()
	const customCode cmdif.Code = 0x0200
	err := dev.Kernel().Extend(customCode, func(m *uck.Module, p *cmdif.Packet) ([]uint32, int, error) {
		return []uint32{0xBEEF}, 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dev.Do(cmdif.New(RBBUCK, 0, customCode))
	if err != nil || resp.Data[0] != 0xBEEF {
		t.Errorf("extended command: %v, %v", resp, err)
	}
}

func TestDeployRejectsImpossibleRole(t *testing.T) {
	fw := New()
	r, _ := NewRole("hbm-app", Demands{
		Memory: []MemoryDemand{{Kind: ip.HBMMem}},
	}, &LogicModule{Name: "l", Res: Resources{LUT: 1}})
	// device-c has no memory.
	if _, err := fw.Deploy("device-c", r); err == nil {
		t.Error("HBM role on device-c should fail")
	}
	if _, err := fw.Deploy("ghost", r); err == nil {
		t.Error("unknown device should fail")
	}
}

func TestDeviceFlashAndTime(t *testing.T) {
	fw := New()
	dep, err := fw.Deploy("device-a", testRole(t))
	if err != nil {
		t.Fatal(err)
	}
	dev := dep.Device()
	if err := dev.EraseFlash(5); err != nil {
		t.Fatal(err)
	}
	if err := dev.EraseFlash(999); err == nil {
		t.Error("out-of-range sector should fail")
	}
	// Device time advances with command activity and is readable via
	// the time-count command.
	before, err := dev.Time()
	if err != nil {
		t.Fatal(err)
	}
	dev.Status(RBBMgmt, 0)
	after, err := dev.Time()
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("device time did not advance: %d -> %d", before, after)
	}
}

func TestDeviceSensors(t *testing.T) {
	fw := New()
	dep, err := fw.Deploy("device-a", testRole(t))
	if err != nil {
		t.Fatal(err)
	}
	dev := dep.Device()
	temp, vccint, power, err := dev.Sensors()
	if err != nil {
		t.Fatal(err)
	}
	if temp < 40_000 || temp > 95_000 {
		t.Errorf("temperature %d milli-degC implausible", temp)
	}
	if vccint != 850 {
		t.Errorf("vccint = %d mV", vccint)
	}
	if power == 0 {
		t.Error("power reads zero")
	}
	// Telemetry flows through the same command interface as everything
	// else: the BMC-style reader needs no register knowledge.
	p := cmdif.New(RBBMgmt, 0, cmdif.StatsRead)
	p.SrcID = cmdif.SrcBMC
	resp, err := dev.Do(p)
	if err != nil {
		t.Fatal(err)
	}
	if resp.DstID != cmdif.SrcBMC {
		t.Errorf("response routed to %d, want the BMC source", resp.DstID)
	}
}

func TestDeviceInterruptPath(t *testing.T) {
	fw := New()
	dep, err := fw.Deploy("device-a", testRole(t))
	if err != nil {
		t.Fatal(err)
	}
	dev := dep.Device()
	var handled []Event
	dev.OnInterrupt(func(e Event) { handled = append(handled, e) })

	// A thermal alarm from the management block reaches the host
	// without any command traffic.
	if err := dev.RaiseEvent(RBBMgmt, 0, EventThermalAlarm, 95_000); err != nil {
		t.Fatal(err)
	}
	if err := dev.RaiseEvent(RBBNetwork, 0, EventLinkDown, 1); err != nil {
		t.Fatal(err)
	}
	if len(handled) != 2 {
		t.Fatalf("handler saw %d events", len(handled))
	}
	if handled[0].Code != EventThermalAlarm || handled[0].Module != "management" {
		t.Errorf("first event = %+v", handled[0])
	}
	evs := dev.Events()
	if len(evs) != 2 || evs[1].Code != EventLinkDown {
		t.Errorf("ring = %+v", evs)
	}
	// Ring drains.
	if len(dev.Events()) != 0 {
		t.Error("event ring did not drain")
	}
	if err := dev.RaiseEvent(99, 0, EventLinkDown, 0); err == nil {
		t.Error("unknown module accepted")
	}
}

func TestThermalWatchdog(t *testing.T) {
	fw := New()
	dep, err := fw.Deploy("device-a", testRole(t))
	if err != nil {
		t.Fatal(err)
	}
	dev := dep.Device()
	// Disarmed: no event.
	if _, err := dev.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	if len(dev.Events()) != 0 {
		t.Error("disarmed watchdog raised an event")
	}
	// Armed below the current temperature: alarm on the irq path.
	temp, _, _, _ := dev.Sensors()
	dev.SetThermalThreshold(temp - 1000)
	got, err := dev.CheckHealth()
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Error("health check read no temperature")
	}
	evs := dev.Events()
	if len(evs) != 1 || evs[0].Code != EventThermalAlarm || evs[0].Module != "management" {
		t.Fatalf("events = %+v", evs)
	}
	// Armed far above: clean.
	dev.SetThermalThreshold(200_000)
	dev.CheckHealth()
	if len(dev.Events()) != 0 {
		t.Error("cool board raised a thermal alarm")
	}
}

func TestThermalWatchdogInjectedOvertemp(t *testing.T) {
	// An injected over-temperature reading (a cooling failure, not a
	// lowered threshold) must trip the watchdog during a routine health
	// check and reach the registered host handler over the irq path.
	fw := New()
	dep, err := fw.Deploy("device-a", testRole(t))
	if err != nil {
		t.Fatal(err)
	}
	dev := dep.Device()
	var handled []Event
	dev.OnInterrupt(func(e Event) { handled = append(handled, e) })

	const limit = 95_000 // 95 C, production throttling threshold
	dev.SetThermalThreshold(limit)
	if _, err := dev.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	if len(handled) != 0 {
		t.Fatalf("nominal board fired %d events", len(handled))
	}

	dev.SetThermalOffset(60_000) // hot spot: ~105 C die
	temp, err := dev.CheckHealth()
	if err != nil {
		t.Fatal(err)
	}
	if temp < limit {
		t.Fatalf("injected reading %d milli-degC below threshold %d", temp, limit)
	}
	if len(handled) != 1 {
		t.Fatalf("handler saw %d events, want 1 thermal alarm", len(handled))
	}
	ev := handled[0]
	if ev.Code != EventThermalAlarm || ev.Module != "management" {
		t.Errorf("event = %+v, want management thermal alarm", ev)
	}
	if ev.Data != temp {
		t.Errorf("alarm carries %d milli-degC, want the sampled %d", ev.Data, temp)
	}

	// Clearing the fault stops further alarms.
	dev.SetThermalOffset(0)
	if _, err := dev.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	if len(handled) != 1 {
		t.Error("nominal reading after fault clear still alarmed")
	}
}

func TestSelfTestPassesOnEveryDevice(t *testing.T) {
	fw := New()
	for _, devName := range fw.Devices() {
		dep, err := fw.Deploy(devName, testRole(t))
		if err != nil {
			t.Fatalf("%s: %v", devName, err)
		}
		results, ok := dep.SelfTest()
		if !ok {
			t.Errorf("%s self-test failed: %+v", devName, results)
		}
		if len(results) != 5 {
			t.Errorf("%s: %d checks, want 5", devName, len(results))
		}
		for _, r := range results {
			if r.Detail == "" {
				t.Errorf("%s check %s has no detail", devName, r.Check)
			}
		}
	}
}
