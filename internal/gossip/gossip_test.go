package gossip

import "testing"

// world is a synthetic membership: direct probes answer and peers
// observe alive unless the member is down.
type world struct {
	g    *Group
	down map[int]bool
	// cmdDown simulates a command-wire-only fault: direct probes miss
	// but the data plane (peer observations) still sees the member.
	cmdDown map[int]bool
}

func newWorld(t *testing.T, n int, cfg Config) *world {
	t.Helper()
	g, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &world{g: g, down: map[int]bool{}, cmdDown: map[int]bool{}}
}

func (w *world) tick() []Event {
	return w.g.Tick(
		func(i int) bool { return !w.down[i] && !w.cmdDown[i] },
		func(i int) bool { return !w.down[i] },
	)
}

// ticksToConfirm runs the world until member victim confirms dead,
// returning the tick count (or failing past limit).
func (w *world) ticksToConfirm(t *testing.T, victim, limit int) int {
	t.Helper()
	for tick := 1; tick <= limit; tick++ {
		for _, ev := range w.tick() {
			if ev.Kind == Confirmed && ev.Member == victim {
				return tick
			}
		}
	}
	t.Fatalf("member %d not confirmed within %d ticks", victim, limit)
	return 0
}

// bound is the detector's worst-case confirmation tick count.
func bound(g *Group) int { return g.Bound() }

func TestDeadMemberConfirmedWithinBound(t *testing.T) {
	for _, n := range []int{30, 300} {
		w := newWorld(t, n, DefaultConfig(7))
		w.down[n/2] = true
		got := w.ticksToConfirm(t, n/2, 10*bound(w.g))
		if max := bound(w.g); got > max {
			t.Errorf("n=%d: confirmed at tick %d, bound %d", n, got, max)
		}
		if st, _ := w.g.Status(n / 2); st != Dead {
			t.Errorf("n=%d: status %v, want dead", n, st)
		}
	}
}

func TestFalseSuspicionRefutedWithIncarnationBump(t *testing.T) {
	w := newWorld(t, 64, DefaultConfig(3))
	_, inc0 := w.g.Status(10)
	if !w.g.Suspect(10) {
		t.Fatal("suspicion of an alive member must take")
	}
	if st, _ := w.g.Status(10); st != Suspect {
		t.Fatalf("status %v, want suspect", st)
	}
	// The member is alive: the suspicion must resolve to a refutation
	// within the escalation window, never a confirmation.
	refuted := false
	maxTicks := bound(w.g)
	for tick := 0; tick < maxTicks && !refuted; tick++ {
		for _, ev := range w.tick() {
			if ev.Member != 10 {
				continue
			}
			switch ev.Kind {
			case Confirmed:
				t.Fatalf("alive member confirmed dead at tick %d", tick)
			case Refuted:
				refuted = true
			}
		}
	}
	if !refuted {
		t.Fatalf("suspicion not refuted within %d ticks", maxTicks)
	}
	st, inc1 := w.g.Status(10)
	if st != Alive {
		t.Errorf("status %v after refutation, want alive", st)
	}
	if inc1 != inc0+1 {
		t.Errorf("incarnation %d after refutation, want %d", inc1, inc0+1)
	}
}

func TestTransientCommandFaultToleratedLikeCentralSweep(t *testing.T) {
	// A command-wire fault shorter than FailedAfter consecutive missed
	// probes must never confirm the member dead — the same tolerance
	// the central sweep's missed-heartbeat counter provides.
	cfg := DefaultConfig(5)
	cfg.Fanout = 64 // probe everyone every tick: misses accrue fastest
	w := newWorld(t, 64, cfg)
	w.cmdDown[7] = true
	for tick := 0; tick < cfg.FailedAfter-1; tick++ {
		for _, ev := range w.tick() {
			if ev.Kind == Confirmed && ev.Member == 7 {
				t.Fatalf("confirmed after %d ticks of command fault (FailedAfter=%d)",
					tick+1, cfg.FailedAfter)
			}
		}
	}
	w.cmdDown[7] = false // wire recovers before the contract expires
	for tick := 0; tick < 2*bound(w.g); tick++ {
		for _, ev := range w.tick() {
			if ev.Kind == Confirmed && ev.Member == 7 {
				t.Fatal("confirmed after the wire recovered")
			}
		}
	}
	if st, _ := w.g.Status(7); st != Alive {
		t.Errorf("status %v after recovery, want alive", st)
	}
}

func TestPersistentCommandFaultConfirms(t *testing.T) {
	// A wire dead for FailedAfter consecutive probes confirms, exactly
	// like the central sweep would — even though the data plane still
	// answers peers.
	cfg := DefaultConfig(5)
	cfg.Fanout = 16
	w := newWorld(t, 16, cfg)
	w.cmdDown[3] = true
	got := w.ticksToConfirm(t, 3, 10*bound(w.g))
	if got < cfg.FailedAfter {
		t.Errorf("confirmed at tick %d, before FailedAfter=%d consecutive misses",
			got, cfg.FailedAfter)
	}
}

func TestConvergenceVsFanout(t *testing.T) {
	// Detection latency must stay within the per-fanout bound at both
	// 1k and 10k members, and the bound itself shrinks as fanout grows
	// — the knob that trades per-tick cost for worst-case latency.
	for _, n := range []int{1000, 10000} {
		prevBound := 1 << 30
		for _, fanout := range []int{4, 8, 16, 32} {
			cfg := DefaultConfig(11)
			cfg.Fanout = fanout
			w := newWorld(t, n, cfg)
			victim := n / 3
			w.down[victim] = true
			got := w.ticksToConfirm(t, victim, 10*bound(w.g))
			if max := bound(w.g); got > max {
				t.Errorf("n=%d fanout=%d: confirmed at tick %d, bound %d", n, fanout, got, max)
			}
			if b := bound(w.g); b >= prevBound {
				t.Errorf("n=%d fanout=%d: bound %d did not shrink (prev %d)", n, fanout, b, prevBound)
			} else {
				prevBound = b
			}
			t.Logf("n=%d fanout=%d: confirmed in %d ticks (bound %d, period %d)",
				n, fanout, got, bound(w.g), w.g.Period())
		}
	}
}

func TestDeterministicEventSequence(t *testing.T) {
	run := func() []Event {
		w := newWorld(t, 128, DefaultConfig(9))
		w.down[17] = true
		w.down[90] = true
		var all []Event
		for tick := 0; tick < 100; tick++ {
			if tick == 40 {
				w.g.Suspect(3)
			}
			all = append(all, w.tick()...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMarkDeadAndReset(t *testing.T) {
	w := newWorld(t, 32, DefaultConfig(1))
	w.g.MarkDead(5)
	if st, _ := w.g.Status(5); st != Dead {
		t.Fatalf("status %v after MarkDead, want dead", st)
	}
	// Dead members are skipped: no probes, no events about them.
	w.down[5] = true
	for tick := 0; tick < 3*bound(w.g); tick++ {
		for _, ev := range w.tick() {
			if ev.Member == 5 {
				t.Fatalf("event %+v about a dead member", ev)
			}
		}
	}
	w.down[5] = false
	_, inc0 := w.g.Status(5)
	w.g.Reset(5)
	if st, inc := w.g.Status(5); st != Alive || inc != inc0+1 {
		t.Errorf("status %v inc %d after Reset, want alive inc %d", st, inc, inc0+1)
	}
}

func TestPerTickCostIsFanoutBounded(t *testing.T) {
	// The whole point: per-tick probe cost tracks fanout, not N.
	cfg := DefaultConfig(2)
	w := newWorld(t, 10000, cfg)
	for tick := 0; tick < 50; tick++ {
		w.tick()
	}
	st := w.g.Stats()
	if st.Probes > int64(50*cfg.Fanout) {
		t.Errorf("%d probes over 50 healthy ticks, want <= %d", st.Probes, 50*cfg.Fanout)
	}
	if st.Digests > int64(50*cfg.Fanout*cfg.Piggyback) {
		t.Errorf("%d digests over 50 ticks, want <= %d", st.Digests, 50*cfg.Fanout*cfg.Piggyback)
	}
}
