// Package gossip is a deterministic SWIM-style failure detector for
// the fleet control plane: instead of sweeping every member each
// monitor tick, the detector directly probes a fixed-size rotation of
// members and piggybacks peer-observed liveness digests on the
// answers, so per-tick cost is O(fanout) while a silent member is
// still confirmed failed within the same consecutive-missed-probes
// contract the central sweep enforced.
//
// Protocol state per member is (status, incarnation, misses):
//
//   - alive → suspect on a missed direct probe or a peer digest that
//     observed the member dead;
//   - suspect → alive (refutation) when a direct probe answers or a
//     peer digest observes the member alive — the member defends
//     itself by bumping its incarnation number, so stale suspicions
//     carrying the old incarnation cannot re-kill it;
//   - suspect → dead (confirmation) only when the member has missed
//     FailedAfter consecutive direct probes. A suspect whose timer
//     expires (SuspectAfter ticks without refutation) is escalated to
//     a direct confirmation probe every tick, so real deaths burn
//     their FailedAfter misses in consecutive ticks instead of one
//     per rotation period.
//
// The confirmation rule is what preserves the fleet's detection
// semantics exactly: a member is declared dead only after FailedAfter
// consecutive missed command-path probes — the same tolerance to
// transient command-wire corruption the central sweep had — and at
// worst the first miss waits one full rotation period, giving the
// deterministic bound
//
//	detect ≤ (Period + SuspectAfter + FailedAfter) ticks,
//	Period = ceil(N / Fanout).
//
// In practice peer digests observe a dead member within a few ticks
// and detection lands near SuspectAfter + FailedAfter regardless of N.
//
// Everything is deterministic: the probe rotation is a seeded
// permutation fixed at construction, digest sampling is a splitmix64
// stream keyed by (seed, tick, prober), and Tick runs on the caller's
// serial control-plane path. The same seed always yields the same
// probe and event sequence.
package gossip

import (
	"fmt"
	"math/rand"
)

// Status is a member's protocol state.
type Status uint8

// Member states. Dead is terminal until Reset.
const (
	Alive Status = iota
	Suspect
	Dead
)

// String names the status for logs and traces.
func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// EventKind classifies a protocol event.
type EventKind uint8

// Protocol events, in the order the state machine emits them.
const (
	// Suspected marks an alive member entering the suspect state.
	Suspected EventKind = iota
	// Refuted marks a suspect defending itself: a direct probe or a
	// peer digest observed it alive, its incarnation bumped.
	Refuted
	// Confirmed marks a suspect declared dead after FailedAfter
	// consecutive missed direct probes.
	Confirmed
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case Suspected:
		return "suspected"
	case Refuted:
		return "refuted"
	case Confirmed:
		return "confirmed"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one state-machine step Tick reports to the caller.
type Event struct {
	Kind   EventKind
	Member int
	// Incarnation is the member's incarnation number after the event.
	Incarnation uint32
	// Misses is the consecutive missed direct probes at event time.
	Misses int
}

// Config shapes the detector.
type Config struct {
	// Fanout is how many rotation members each tick probes directly.
	Fanout int
	// Piggyback is how many peer liveness observations each answered
	// direct probe carries back.
	Piggyback int
	// SuspectAfter is how many ticks a suspicion stands unrefuted
	// before the detector escalates to per-tick confirmation probes.
	SuspectAfter int
	// FailedAfter is how many consecutive missed direct probes confirm
	// a suspect dead — the fleet's detection contract.
	FailedAfter int
	// Seed fixes the probe rotation and digest sampling streams.
	Seed int64
}

// DefaultConfig returns the production-shaped detector settings.
func DefaultConfig(seed int64) Config {
	return Config{Fanout: 8, Piggyback: 4, SuspectAfter: 2, FailedAfter: 3, Seed: seed}
}

// Stats counts protocol activity since construction.
type Stats struct {
	// Ticks is how many protocol rounds ran.
	Ticks int64
	// Probes counts direct probes (rotation plus confirmation).
	Probes int64
	// Digests counts piggybacked peer liveness observations.
	Digests int64
	// Suspicions, Refutations and Confirmations count emitted events.
	Suspicions, Refutations, Confirmations int64
}

// member is one member's protocol state.
type member struct {
	status Status
	inc    uint32
	// misses counts consecutive missed direct probes.
	misses int
	// suspectAt is the tick the current suspicion started.
	suspectAt int64
}

// Group is one gossip failure-detection domain.
type Group struct {
	cfg     Config
	members []member
	// order is the fixed probe rotation (seeded permutation); cursor
	// is the next rotation position.
	order  []int
	cursor int
	tick   int64
	// suspects holds current suspect ids, ascending, so the per-tick
	// escalation scan is O(|suspects|) and deterministic.
	suspects []int
	stats    Stats
}

// New builds a detector over n members, all alive. The probe rotation
// is a seeded shuffle so rack-adjacent members do not probe in lockstep.
func New(n int, cfg Config) (*Group, error) {
	if n < 1 || cfg.Fanout < 1 || cfg.Piggyback < 0 || cfg.SuspectAfter < 0 || cfg.FailedAfter < 1 {
		return nil, fmt.Errorf("gossip: invalid group: n=%d cfg=%+v", n, cfg)
	}
	g := &Group{cfg: cfg, members: make([]member, n), order: make([]int, n)}
	for i := range g.order {
		g.order[i] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(n, func(i, j int) { g.order[i], g.order[j] = g.order[j], g.order[i] })
	return g, nil
}

// Len reports the membership size.
func (g *Group) Len() int { return len(g.members) }

// Period reports the rotation period in ticks: every live member is
// directly probed at least once per Period ticks.
func (g *Group) Period() int {
	p := (len(g.members) + g.cfg.Fanout - 1) / g.cfg.Fanout
	if p < 1 {
		p = 1
	}
	return p
}

// Bound reports the worst-case confirmation latency in ticks: one
// full rotation period before the first direct probe can miss,
// SuspectAfter ticks of unrefuted suspicion, FailedAfter consecutive
// misses under escalation, plus one tick of phase slack.
func (g *Group) Bound() int {
	return g.Period() + g.cfg.SuspectAfter + g.cfg.FailedAfter + 1
}

// Add appends one alive member (a node commissioned after the group
// formed) to the end of the rotation and returns its id.
func (g *Group) Add() int {
	id := len(g.members)
	g.members = append(g.members, member{})
	g.order = append(g.order, id)
	return id
}

// Status reports a member's protocol state and incarnation.
func (g *Group) Status(i int) (Status, uint32) {
	m := &g.members[i]
	return m.status, m.inc
}

// Stats reports cumulative protocol counters.
func (g *Group) Stats() Stats { return g.stats }

// Suspect injects an external suspicion about an alive member (test
// and chaos hook; also the entry point for suspicions arriving from
// outside the detection domain). Reports whether the suspicion took.
func (g *Group) Suspect(i int) bool {
	m := &g.members[i]
	if m.status != Alive {
		return false
	}
	g.suspect(i, nil)
	return true
}

// MarkDead force-marks a member dead without an event — the caller
// learned of the death through a stronger channel (irq link-down) and
// the detector must stop probing it.
func (g *Group) MarkDead(i int) {
	m := &g.members[i]
	if m.status == Dead {
		return
	}
	if m.status == Suspect {
		g.dropSuspect(i)
	}
	m.status = Dead
}

// Reset returns a dead member to alive (revive) with a fresh
// incarnation and no misses.
func (g *Group) Reset(i int) {
	m := &g.members[i]
	if m.status == Suspect {
		g.dropSuspect(i)
	}
	m.status = Alive
	m.inc++
	m.misses = 0
}

// Tick runs one protocol round. direct probes a member over the
// authoritative command path and reports whether it answered; observe
// reports a LAN peer's view of a member's data-plane liveness (the
// piggybacked digest content). Both callbacks must be deterministic.
// Tick returns the state-machine events of this round, in decision
// order.
func (g *Group) Tick(direct func(int) bool, observe func(int) bool) []Event {
	g.tick++
	g.stats.Ticks++
	var events []Event

	// Escalation: suspects whose timer expired take a confirmation
	// probe every tick until they answer or burn FailedAfter misses.
	// The scan copies the id list because probes mutate the set.
	if len(g.suspects) > 0 {
		expired := make([]int, 0, len(g.suspects))
		for _, i := range g.suspects {
			if g.tick-g.members[i].suspectAt >= int64(g.cfg.SuspectAfter) {
				expired = append(expired, i)
			}
		}
		for _, i := range expired {
			events = g.probe(i, direct, events)
		}
	}

	// Rotation: the next Fanout members in the fixed permutation.
	// Dead members keep their rotation slot (skipped without a probe),
	// so the period — and with it the detection bound — never drifts
	// as members die.
	for k := 0; k < g.cfg.Fanout; k++ {
		i := g.order[g.cursor]
		g.cursor = (g.cursor + 1) % len(g.order)
		if g.members[i].status == Dead {
			continue
		}
		events = g.probe(i, direct, events)
		// Piggyback: an answered probe carries the target's view of
		// Piggyback sampled peers. Sampling is a splitmix64 stream
		// keyed by (seed, tick, prober position), so it is
		// deterministic yet varies across ticks.
		if g.members[i].status == Dead || g.cfg.Piggyback == 0 {
			continue
		}
		if g.members[i].misses > 0 {
			continue // the probe missed: no digest came back
		}
		h := uint64(g.cfg.Seed) ^ uint64(g.tick)*0x9E3779B97F4A7C15 ^ uint64(i)<<32
		for d := 0; d < g.cfg.Piggyback; d++ {
			h = splitmix64(h)
			j := int(h % uint64(len(g.members)))
			if j == i || g.members[j].status == Dead {
				continue
			}
			g.stats.Digests++
			if observe(j) {
				if g.members[j].status == Suspect {
					events = append(events, g.refute(j))
				}
			} else if g.members[j].status == Alive {
				events = g.suspect(j, events)
			}
		}
	}
	return events
}

// probe runs one direct probe of member i and advances its state.
func (g *Group) probe(i int, direct func(int) bool, events []Event) []Event {
	m := &g.members[i]
	g.stats.Probes++
	if direct(i) {
		m.misses = 0
		if m.status == Suspect {
			events = append(events, g.refute(i))
		}
		return events
	}
	m.misses++
	if m.status == Alive {
		events = g.suspect(i, events)
	}
	if m.misses >= g.cfg.FailedAfter {
		if m.status == Suspect {
			g.dropSuspect(i)
		}
		m.status = Dead
		g.stats.Confirmations++
		events = append(events, Event{Kind: Confirmed, Member: i, Incarnation: m.inc, Misses: m.misses})
	}
	return events
}

// suspect moves an alive member to suspect and arms its timer.
func (g *Group) suspect(i int, events []Event) []Event {
	m := &g.members[i]
	m.status = Suspect
	m.suspectAt = g.tick
	g.addSuspect(i)
	g.stats.Suspicions++
	return append(events, Event{Kind: Suspected, Member: i, Incarnation: m.inc, Misses: m.misses})
}

// refute returns a suspect to alive with a bumped incarnation — the
// member's defense against the stale suspicion.
func (g *Group) refute(i int) Event {
	m := &g.members[i]
	m.status = Alive
	m.inc++
	g.dropSuspect(i)
	g.stats.Refutations++
	return Event{Kind: Refuted, Member: i, Incarnation: m.inc, Misses: m.misses}
}

// addSuspect inserts i into the sorted suspect set.
func (g *Group) addSuspect(i int) {
	k := 0
	for k < len(g.suspects) && g.suspects[k] < i {
		k++
	}
	g.suspects = append(g.suspects, 0)
	copy(g.suspects[k+1:], g.suspects[k:])
	g.suspects[k] = i
}

// dropSuspect removes i from the suspect set.
func (g *Group) dropSuspect(i int) {
	for k, s := range g.suspects {
		if s == i {
			g.suspects = append(g.suspects[:k], g.suspects[k+1:]...)
			return
		}
	}
}

// splitmix64 is the digest sampling stream step.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
