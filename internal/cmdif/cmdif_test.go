package cmdif

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := New(2, 1, TableWrite, 0xdeadbeef, 42, 7)
	p.Options = 0x0100 // PCIe
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != p.WireBytes() {
		t.Errorf("wire size %d, want %d", len(b), p.WireBytes())
	}
	got, rest, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, p)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(src, dst, rbbID, inst uint8, code uint16, opts uint32, data []uint32) bool {
		if len(data) > MaxPayloadWords {
			data = data[:MaxPayloadWords]
		}
		p := &Packet{
			Version: Version, SrcID: src, DstID: dst,
			RBBID: rbbID, InstanceID: inst, Code: Code(code),
			Options: opts, Data: data,
		}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		got, rest, err := Unmarshal(b)
		if err != nil || len(rest) != 0 {
			return false
		}
		if len(data) == 0 && len(got.Data) == 0 {
			got.Data, p.Data = nil, nil
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalStream(t *testing.T) {
	// Multiple commands parse sequentially from one buffer using the
	// length fields to find boundaries.
	p1 := New(1, 0, ModuleInit)
	p2 := New(2, 3, StatusRead, 0xff)
	b1, _ := p1.Marshal()
	b2, _ := p2.Marshal()
	stream := append(b1, b2...)

	got1, rest, err := Unmarshal(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got1.Code != ModuleInit {
		t.Errorf("first code = %v", got1.Code)
	}
	got2, rest, err := Unmarshal(rest)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Code != StatusRead || len(got2.Data) != 1 || got2.Data[0] != 0xff {
		t.Errorf("second packet = %+v", got2)
	}
	if len(rest) != 0 {
		t.Error("stream not fully consumed")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	p := New(1, 0, StatusRead)
	b, _ := p.Marshal()

	if _, _, err := Unmarshal(b[:8]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated error = %v", err)
	}
	// Corrupt a payload byte: checksum must catch it.
	bad := append([]byte(nil), b...)
	bad[6] ^= 0x40
	if _, _, err := Unmarshal(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("checksum error = %v", err)
	}
	// Wrong version.
	v := append([]byte(nil), b...)
	v[0] = 0xE0 | (v[0] & 0x0f)
	if _, _, err := Unmarshal(v); !errors.Is(err, ErrVersion) {
		t.Errorf("version error = %v", err)
	}
}

func TestMarshalValidation(t *testing.T) {
	p := New(1, 0, TableWrite, make([]uint32, 300)...)
	if _, err := p.Marshal(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize payload error = %v", err)
	}
	p2 := New(1, 0, StatusRead)
	p2.Version = 20
	if _, err := p2.Marshal(); err == nil {
		t.Error("5-bit version should fail")
	}
}

func TestResponseSwapsEndpoints(t *testing.T) {
	p := New(3, 2, StatsRead)
	p.SrcID = SrcCtrlTool
	p.DstID = DstShell
	r := p.Response([]uint32{1, 2, 3})
	if r.SrcID != DstShell || r.DstID != SrcCtrlTool {
		t.Errorf("response endpoints = src %d dst %d", r.SrcID, r.DstID)
	}
	if r.RBBID != p.RBBID || r.InstanceID != p.InstanceID || r.Code != p.Code {
		t.Error("response lost addressing")
	}
	if len(r.Data) != 3 {
		t.Error("response lost data")
	}
}

func TestCodeString(t *testing.T) {
	names := map[Code]string{
		StatusRead:  "status-read",
		StatusWrite: "status-write",
		ModuleInit:  "module-init",
		ModuleReset: "module-reset",
		TableWrite:  "table-write",
		TableRead:   "table-read",
		StatsRead:   "stats-read",
		FlashErase:  "flash-erase",
		TimeCount:   "time-count",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Code(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
	if Code(0x9999).String() != "code(0x9999)" {
		t.Errorf("unknown code = %q", Code(0x9999).String())
	}
}

func TestNewDefaults(t *testing.T) {
	p := New(5, 7, ModuleReset)
	if p.Version != Version || p.SrcID != SrcApplication || p.DstID != DstShell {
		t.Errorf("defaults = %+v", p)
	}
	if p.RBBID != 5 || p.InstanceID != 7 {
		t.Error("addressing wrong")
	}
}

// Unmarshal must never panic on arbitrary bytes — it guards the
// hardware-facing parse path.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unmarshal panicked on %x: %v", raw, r)
			}
		}()
		p, rest, err := Unmarshal(raw)
		if err == nil {
			// Any accepted packet must re-marshal cleanly.
			if _, merr := p.Marshal(); merr != nil {
				return false
			}
			if len(rest) > len(raw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// A declared header length larger than the buffer must not over-read.
func TestUnmarshalHugeDeclaredLengths(t *testing.T) {
	p := New(1, 0, StatusRead)
	b, _ := p.Marshal()
	// Claim a 15-word header and a 255-word payload.
	b[0] = (b[0] & 0xF0) | 0x0F
	b[1] = 0xFF
	if _, _, err := Unmarshal(b); err == nil {
		t.Error("oversized declared lengths accepted")
	}
}
