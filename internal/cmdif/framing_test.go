package cmdif

import "testing"

func TestRowsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {-1, 0}, {1, 1},
		{MaxTableRowWords, 1},
		{MaxTableRowWords + 1, 2},
		{3 * MaxTableRowWords, 3},
		{3*MaxTableRowWords + 1, 4},
	}
	for _, c := range cases {
		if got := RowsFor(c.n); got != c.want {
			t.Errorf("RowsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, MaxTableRowWords - 1, MaxTableRowWords,
		MaxTableRowWords + 1, 5*MaxTableRowWords + 17} {
		words := make([]uint32, n)
		for i := range words {
			words[i] = uint32(i * 7)
		}
		rows := SplitRows(words)
		if got := len(rows); got != RowsFor(n) {
			t.Fatalf("n=%d: %d rows, want %d", n, got, RowsFor(n))
		}
		for i, r := range rows {
			if i < len(rows)-1 && len(r) != MaxTableRowWords {
				t.Fatalf("n=%d: interior row %d has %d words", n, i, len(r))
			}
			if len(r) == 0 || len(r) > MaxTableRowWords {
				t.Fatalf("n=%d: row %d has %d words", n, i, len(r))
			}
		}
		joined := JoinRows(rows)
		if len(joined) != n {
			t.Fatalf("n=%d: joined to %d words", n, len(joined))
		}
		for i := range joined {
			if joined[i] != words[i] {
				t.Fatalf("n=%d: word %d corrupted", n, i)
			}
		}
	}
}

func TestRowsFitTableWritePayload(t *testing.T) {
	// The invariant framing exists for: addressing words + a full row
	// must marshal as one command.
	row := make([]uint32, MaxTableRowWords)
	p := New(0, 0, TableWrite, append([]uint32{1, 2}, row...)...)
	if _, err := p.Marshal(); err != nil {
		t.Fatalf("full row + addressing does not fit a command: %v", err)
	}
	over := New(0, 0, TableWrite, append([]uint32{1, 2, 3}, row...)...)
	if _, err := over.Marshal(); err == nil {
		t.Fatal("oversized payload accepted — MaxTableRowWords too large")
	}
}
