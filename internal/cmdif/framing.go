package cmdif

// Table-row framing: bulk state (a connection-table snapshot, a large
// lookup table) moves over the command path as a sequence of TableRead/
// TableWrite transactions, one table row per command. A TableWrite
// payload spends two words addressing (tableID, index), so each row
// carries at most MaxTableRowWords of state; the transfer's own framing
// (e.g. a length-carrying header in row 0) tells the receiver when the
// stream is complete.

// MaxTableRowWords is the largest table row a single command can carry:
// the payload budget minus the tableID and index words.
const MaxTableRowWords = MaxPayloadWords - 2

// RowsFor reports how many table rows a transfer of n words occupies.
// Zero words need zero rows.
func RowsFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + MaxTableRowWords - 1) / MaxTableRowWords
}

// SplitRows cuts a word stream into command-sized table rows, in order.
// Every row but the last is exactly MaxTableRowWords long. Rows alias
// the input slice; callers that mutate rows must copy first.
func SplitRows(words []uint32) [][]uint32 {
	if len(words) == 0 {
		return nil
	}
	rows := make([][]uint32, 0, RowsFor(len(words)))
	for len(words) > MaxTableRowWords {
		rows = append(rows, words[:MaxTableRowWords])
		words = words[MaxTableRowWords:]
	}
	return append(rows, words)
}

// JoinRows reassembles a row sequence into the original word stream.
func JoinRows(rows [][]uint32) []uint32 {
	n := 0
	for _, r := range rows {
		n += len(r)
	}
	out := make([]uint32, 0, n)
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}
