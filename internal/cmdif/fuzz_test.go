package cmdif

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal drives the command parser with arbitrary bytes: it must
// never panic, and anything it accepts must re-marshal to the same
// bytes it consumed.
func FuzzUnmarshal(f *testing.F) {
	seed, _ := New(1, 0, TableWrite, 1, 2, 3).Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, rest, err := Unmarshal(raw)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted packet failed to re-marshal: %v", err)
		}
		consumed := raw[:len(raw)-len(rest)]
		if !bytes.Equal(out, consumed) {
			t.Fatalf("re-marshal mismatch:\nconsumed %x\nremarshal %x", consumed, out)
		}
	})
}
