// Package cmdif defines Harmonia's command-based hardware-software
// interface (§3.3.3): a packet-format command with version, header and
// payload lengths in 4-byte units, source/destination controller IDs,
// the module operation code (RBB ID, instance ID, command code),
// physical-interface options, payload data and a checksum — Fig. 9.
package cmdif

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the current command format revision.
const Version = 1

// Code is a command code: the behavior-level control operation.
type Code uint16

// Common command codes (Fig. 9) plus the extended set the unified
// control kernel supports.
const (
	StatusRead  Code = 0x0000
	StatusWrite Code = 0x0001
	ModuleInit  Code = 0x0002
	ModuleReset Code = 0x0003
	TableWrite  Code = 0x0004
	TableRead   Code = 0x0005
	StatsRead   Code = 0x0006
	FlashErase  Code = 0x0007
	TimeCount   Code = 0x0008
)

// String names the command code.
func (c Code) String() string {
	switch c {
	case StatusRead:
		return "status-read"
	case StatusWrite:
		return "status-write"
	case ModuleInit:
		return "module-init"
	case ModuleReset:
		return "module-reset"
	case TableWrite:
		return "table-write"
	case TableRead:
		return "table-read"
	case StatsRead:
		return "stats-read"
	case FlashErase:
		return "flash-erase"
	case TimeCount:
		return "time-count"
	default:
		return fmt.Sprintf("code(%#04x)", uint16(c))
	}
}

// Source controller IDs: distinct host software controllers (§3.3.3).
const (
	SrcApplication uint8 = 0x01
	SrcBMC         uint8 = 0x02
	SrcCtrlTool    uint8 = 0x03
)

// Destination IDs: hardware module classes.
const (
	DstUCK   uint8 = 0x00 // the control kernel itself
	DstShell uint8 = 0x01
	DstRole  uint8 = 0x02
)

// headerWords is the fixed header size: three 32-bit words (version/
// lengths/IDs, module operation code, options) — HdLen = 3.
const headerWords = 3

// MaxPayloadWords bounds the Data field (8-bit PayloadLen field).
const MaxPayloadWords = 255

// Packet is one command or response.
type Packet struct {
	Version    uint8 // 4 bits on the wire
	SrcID      uint8
	DstID      uint8
	RBBID      uint8
	InstanceID uint8
	Code       Code
	Options    uint32
	Data       []uint32
}

// Marshalling errors.
var (
	ErrTruncated = errors.New("cmdif: packet truncated")
	ErrChecksum  = errors.New("cmdif: checksum mismatch")
	ErrVersion   = errors.New("cmdif: unsupported version")
	ErrTooLarge  = errors.New("cmdif: payload exceeds 255 words")
)

// WireBytes reports the marshalled size: header + payload + checksum.
func (p *Packet) WireBytes() int { return (headerWords+len(p.Data))*4 + 4 }

// checksum32 is the ones-complement sum over 32-bit words.
func checksum32(words []uint32) uint32 {
	var sum uint64
	for _, w := range words {
		sum += uint64(w)
	}
	for sum>>32 != 0 {
		sum = (sum & 0xffffffff) + (sum >> 32)
	}
	return ^uint32(sum)
}

// words serializes the packet's header+payload into 32-bit words
// (checksum excluded).
func (p *Packet) words() ([]uint32, error) {
	if len(p.Data) > MaxPayloadWords {
		return nil, ErrTooLarge
	}
	if p.Version > 0xf {
		return nil, fmt.Errorf("cmdif: version %d exceeds 4 bits", p.Version)
	}
	w := make([]uint32, 0, headerWords+len(p.Data))
	w0 := uint32(p.Version&0xf)<<28 |
		uint32(headerWords&0xf)<<24 |
		uint32(len(p.Data)&0xff)<<16 |
		uint32(p.SrcID)<<8 |
		uint32(p.DstID)
	w = append(w, w0)
	w1 := uint32(p.RBBID)<<24 | uint32(p.InstanceID)<<16 | uint32(p.Code)
	w = append(w, w1)
	w = append(w, p.Options)
	w = append(w, p.Data...)
	return w, nil
}

// Marshal serializes the packet with its checksum appended.
func (p *Packet) Marshal() ([]byte, error) {
	w, err := p.words()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, (len(w)+1)*4)
	for _, word := range w {
		buf = binary.BigEndian.AppendUint32(buf, word)
	}
	buf = binary.BigEndian.AppendUint32(buf, checksum32(w))
	return buf, nil
}

// Unmarshal parses a packet, validating lengths and checksum. The
// header and payload lengths delimit the command boundary, so packets
// can be parsed from a contiguous command stream (parsing step 3 of the
// §3.3.3 walkthrough); the remainder is returned.
func Unmarshal(b []byte) (p *Packet, rest []byte, err error) {
	if len(b) < (headerWords+1)*4 {
		return nil, b, ErrTruncated
	}
	w0 := binary.BigEndian.Uint32(b)
	version := uint8(w0 >> 28)
	hdLen := int(w0 >> 24 & 0xf)
	payLen := int(w0 >> 16 & 0xff)
	if version != Version {
		return nil, b, fmt.Errorf("%w: %d", ErrVersion, version)
	}
	if hdLen < headerWords {
		return nil, b, fmt.Errorf("cmdif: header length %d too small", hdLen)
	}
	total := (hdLen + payLen + 1) * 4
	if len(b) < total {
		return nil, b, ErrTruncated
	}
	words := make([]uint32, hdLen+payLen)
	for i := range words {
		words[i] = binary.BigEndian.Uint32(b[i*4:])
	}
	gotSum := binary.BigEndian.Uint32(b[(hdLen+payLen)*4:])
	if gotSum != checksum32(words) {
		return nil, b, ErrChecksum
	}
	w1 := words[1]
	p = &Packet{
		Version:    version,
		SrcID:      uint8(w0 >> 8),
		DstID:      uint8(w0),
		RBBID:      uint8(w1 >> 24),
		InstanceID: uint8(w1 >> 16),
		Code:       Code(w1),
		Options:    words[2],
		Data:       append([]uint32(nil), words[hdLen:hdLen+payLen]...),
	}
	return p, b[total:], nil
}

// Response builds a reply to p carrying data: source and destination
// swap so the driver can deliver it to the issuing controller (§3.3.3
// step 7).
func (p *Packet) Response(data []uint32) *Packet {
	return &Packet{
		Version:    p.Version,
		SrcID:      p.DstID,
		DstID:      p.SrcID,
		RBBID:      p.RBBID,
		InstanceID: p.InstanceID,
		Code:       p.Code,
		Options:    p.Options,
		Data:       data,
	}
}

// New returns a command packet addressed to (rbbID, instanceID) with
// the current version and the application source ID.
func New(rbbID, instanceID uint8, code Code, data ...uint32) *Packet {
	return &Packet{
		Version:    Version,
		SrcID:      SrcApplication,
		DstID:      DstShell,
		RBBID:      rbbID,
		InstanceID: instanceID,
		Code:       code,
		Data:       data,
	}
}
