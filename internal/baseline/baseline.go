// Package baseline models the comparison frameworks of §5.4 — the
// commercial Vitis and oneAPI platforms and the open-source Coyote
// shell — at the level the paper compares them on: device support
// (Table 3), monolithic shell resource profiles (Fig. 18a), host
// interface style (Table 4) and benchmark performance (Figs. 18b-d).
package baseline

import (
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/hostsw"
	"harmonia/internal/platform"
	"harmonia/internal/shell"
	"harmonia/internal/sim"
)

// Framework is a platform-level FPGA framework under comparison.
type Framework struct {
	name string
	// supports decides device compatibility (Table 3).
	supports func(d *platform.Device) bool
	// shellScale sizes the framework's monolithic shell relative to
	// the full unified component set on a device. Baselines cannot
	// tailor per role; Harmonia reports tailored shells instead (see
	// ShellResources).
	shellScale float64
	// tailors reports whether the framework performs per-role shell
	// tailoring.
	tailors bool
	// regInterface reports a register-level host interface (vs
	// command-based).
	regInterface bool
	// invokeOverhead is the per-kernel-invocation host overhead.
	invokeOverhead sim.Time
}

// Name reports the framework name.
func (f *Framework) Name() string { return f.name }

// Supports reports whether the framework can target the device.
func (f *Framework) Supports(d *platform.Device) bool { return f.supports(d) }

// UsesRegisterInterface reports the host-interface style.
func (f *Framework) UsesRegisterInterface() bool { return f.regInterface }

// InvokeOverhead reports per-invocation host overhead.
func (f *Framework) InvokeOverhead() sim.Time { return f.invokeOverhead }

// Tailors reports whether the framework generates role-specific shells.
func (f *Framework) Tailors() bool { return f.tailors }

// ShellResources reports the framework's shell footprint on a device
// for a workload with the given demands. Monolithic frameworks ship
// their full shell regardless of demands; Harmonia tailors.
func (f *Framework) ShellResources(dev *platform.Device, demands shell.Demands) (hdl.Resources, error) {
	if !f.Supports(dev) {
		return hdl.Resources{}, fmt.Errorf("baseline: %s does not support %s", f.name, dev.Name)
	}
	unified, err := shell.BuildUnified(dev)
	if err != nil {
		return hdl.Resources{}, err
	}
	if !f.tailors {
		return unified.Resources().Scale(f.shellScale), nil
	}
	tailored, err := unified.Tailor(demands)
	if err != nil {
		return hdl.Resources{}, err
	}
	return tailored.Resources(), nil
}

// SoftwareConfigItems reports the configuration items host software
// manages for a task under this framework's interface (Table 4).
func (f *Framework) SoftwareConfigItems(task hostsw.Task) (int, error) {
	regs, cmds, err := hostsw.ConfigCounts(task)
	if err != nil {
		return 0, err
	}
	if f.regInterface {
		return regs, nil
	}
	return cmds, nil
}

// Vitis models the AMD/Xilinx Vitis platform: Xilinx devices only
// (Alveo/Zynq/Versal), register interface, monolithic shell.
func Vitis() *Framework {
	return &Framework{
		name:           "vitis",
		supports:       func(d *platform.Device) bool { return d.Vendor == platform.Xilinx },
		shellScale:     0.97,
		regInterface:   true,
		invokeOverhead: 1200 * sim.Nanosecond,
	}
}

// OneAPI models the Intel oneAPI/OFS stack: Intel devices only,
// register interface, monolithic shell.
func OneAPI() *Framework {
	return &Framework{
		name:           "oneapi",
		supports:       func(d *platform.Device) bool { return d.Vendor == platform.Intel },
		shellScale:     1.00,
		regInterface:   true,
		invokeOverhead: 1400 * sim.Nanosecond,
	}
}

// Coyote models the ETH Coyote FPGA OS: Xilinx Alveo-class devices,
// register interface, monolithic (but leaner) shell.
func Coyote() *Framework {
	return &Framework{
		name:           "coyote",
		supports:       func(d *platform.Device) bool { return d.Vendor == platform.Xilinx },
		shellScale:     0.92,
		regInterface:   true,
		invokeOverhead: 1000 * sim.Nanosecond,
	}
}

// Harmonia models this paper's framework for comparison: cross-vendor
// (including in-house devices), command interface, tailored shells.
func Harmonia() *Framework {
	return &Framework{
		name:           "harmonia",
		supports:       func(d *platform.Device) bool { return true },
		shellScale:     1.0,
		tailors:        true,
		regInterface:   false,
		invokeOverhead: 1100 * sim.Nanosecond,
	}
}

// All returns the compared frameworks in the paper's order.
func All() []*Framework {
	return []*Framework{Vitis(), OneAPI(), Coyote(), Harmonia()}
}
