package baseline

import (
	"fmt"

	"harmonia/internal/mem"
	"harmonia/internal/net"
	"harmonia/internal/pcie"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

// The §5.1 framework benchmarks. All frameworks drive the same
// underlying device models — the paper's finding is that performance is
// comparable — so the engines are shared and the framework contributes
// only its invocation overhead and interface style.

// kernelClockMHz is the synthesized kernel clock for compute kernels.
const kernelClockMHz = 300

// MatMulRate reports matrix multiplications per second for the Fig. 18b
// workload (64×64 single-precision, 1024 iterations) at the given DSP
// parallelism (×4/×8/×16 loop unrolling).
func (f *Framework) MatMulRate(par int) (float64, error) {
	if par <= 0 {
		return 0, fmt.Errorf("baseline: parallelism %d must be positive", par)
	}
	w := workload.DefaultMatMul()
	clk := sim.NewClock("kernel", kernelClockMHz)
	// par MAC lanes retire par multiply-accumulates per cycle.
	cyclesPerMat := int64(w.N) * int64(w.N) * int64(w.N) / int64(par)
	perMat := clk.CyclesTime(cyclesPerMat)
	// The kernel is invoked once per batch of iterations; the host
	// overhead amortizes across the batch.
	total := sim.Time(w.Iterations)*perMat + f.invokeOverhead
	if total <= 0 {
		return 0, fmt.Errorf("baseline: non-positive duration")
	}
	return float64(w.Iterations) / total.Seconds(), nil
}

// VerifyMatMul runs one functional multiplication and checks it against
// a reference — the correctness side of the compute benchmark.
func VerifyMatMul(n int) error {
	a := workload.NewMatrix(n, 1)
	b := workload.NewMatrix(n, 2)
	c1, err := a.Mul(b)
	if err != nil {
		return err
	}
	// Recompute a spot set of entries directly.
	for _, idx := range []int{0, n / 2, n - 1} {
		var want float32
		for k := 0; k < n; k++ {
			want += a.At(idx, k) * b.At(k, idx)
		}
		got := c1.At(idx, idx)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-3 {
			return fmt.Errorf("baseline: matmul mismatch at (%d,%d): %v vs %v", idx, idx, got, want)
		}
	}
	return nil
}

// DBConfig shapes the database-access benchmark (Fig. 18c): 32-bit
// vectors on external memory, read+write under an access mode.
type DBConfig struct {
	Mode workload.AccessMode
	// Accesses per run.
	Accesses int
	// VectorWidth in 32-bit elements.
	VectorWidth int
}

// DefaultDBConfig returns the paper's configuration.
func DefaultDBConfig(mode workload.AccessMode) DBConfig {
	return DBConfig{Mode: mode, Accesses: 20_000, VectorWidth: 1}
}

// DBRate reports vectors processed per second under the access mode.
func (f *Framework) DBRate(cfg DBConfig) (float64, error) {
	if cfg.Accesses <= 0 || cfg.VectorWidth <= 0 {
		return 0, fmt.Errorf("baseline: invalid DB config %+v", cfg)
	}
	dev := mem.NewDevice(mem.DDR4Config(2))
	dev.SetMapping(mem.Striped)
	gen, err := workload.NewAccessGen(cfg.Mode, int64(workload.VectorBytes(cfg.VectorWidth)), 1<<30, 42)
	if err != nil {
		return 0, err
	}
	size := workload.VectorBytes(cfg.VectorWidth)
	// Vector accesses are independent: issue them all and let the
	// device's channel/bank/activation constraints bound the rate.
	var last sim.Time
	for i := 0; i < cfg.Accesses; i++ {
		addr := gen.Next()
		// Alternate read and write as the benchmark does.
		if done := dev.Access(0, addr, size, i%2 == 1); done > last {
			last = done
		}
	}
	total := last + f.invokeOverhead
	return float64(cfg.Accesses) / total.Seconds(), nil
}

// TCPResult is one point of the TCP transmission benchmark.
type TCPResult struct {
	PktBytes int
	Gbps     float64
	Latency  sim.Time
}

// TCPRun forwards host TCP traffic through two FPGAs connected by their
// network interfaces (Fig. 18d): host A → PCIe → FPGA A → wire →
// FPGA B → PCIe → host B.
func (f *Framework) TCPRun(pktBytes, packets int) (TCPResult, error) {
	if pktBytes < net.MinFrame || packets <= 0 {
		return TCPResult{}, fmt.Errorf("baseline: invalid TCP config %dB x%d", pktBytes, packets)
	}
	linkA, err := pcie.NewLink("hostA", 4, 16)
	if err != nil {
		return TCPResult{}, err
	}
	linkB, err := pcie.NewLink("hostB", 4, 16)
	if err != nil {
		return TCPResult{}, err
	}
	wire := net.NewLink("wire", 100, 500*sim.Nanosecond)
	// Host software stack cost per direction (protocol processing).
	const hostStack = 8 * sim.Microsecond

	var last sim.Time
	var firstLatency sim.Time
	for i := 0; i < packets; i++ {
		t := linkA.Transfer(0, pktBytes) // host A -> FPGA A
		t = wire.Transmit(t, pktBytes)   // FPGA A -> FPGA B
		t = linkB.Transfer(t, pktBytes)  // FPGA B -> host B
		done := t + 2*hostStack          // TCP stacks on both ends
		if i == 0 {
			firstLatency = done
		}
		if done > last {
			last = done
		}
	}
	gbps := float64(packets*pktBytes*8) / (last - 2*hostStack).Nanoseconds()
	return TCPResult{
		PktBytes: pktBytes,
		Gbps:     gbps,
		Latency:  firstLatency + f.invokeOverhead,
	}, nil
}
