package baseline

import (
	"testing"

	"harmonia/internal/hostsw"
	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/shell"
	"harmonia/internal/workload"
)

func TestDeviceSupportMatrix(t *testing.T) {
	// Table 3.
	devs := platform.Catalog()
	want := map[string]map[string]bool{
		"vitis":    {"device-a": true, "device-b": false, "device-c": false, "device-d": false},
		"oneapi":   {"device-a": false, "device-b": false, "device-c": false, "device-d": true},
		"coyote":   {"device-a": true, "device-b": false, "device-c": false, "device-d": false},
		"harmonia": {"device-a": true, "device-b": true, "device-c": true, "device-d": true},
	}
	for _, fw := range All() {
		for devName, supported := range want[fw.Name()] {
			if got := fw.Supports(devs[devName]); got != supported {
				t.Errorf("%s.Supports(%s) = %v, want %v", fw.Name(), devName, got, supported)
			}
		}
	}
}

func TestOnlyHarmoniaSupportsInHouse(t *testing.T) {
	for _, fw := range All() {
		inHouse := fw.Supports(platform.DeviceB()) || fw.Supports(platform.DeviceC())
		if fw.Name() == "harmonia" && !inHouse {
			t.Error("harmonia must support in-house devices")
		}
		if fw.Name() != "harmonia" && inHouse {
			t.Errorf("%s should not support in-house devices", fw.Name())
		}
	}
}

func benchDemands() shell.Demands {
	// The framework benchmarks use compute/memory/host services.
	return shell.Demands{
		Memory: []shell.MemoryDemand{{Kind: ip.DDR4Mem}},
		Host:   &shell.HostDemand{Queues: 64},
	}
}

func TestHarmoniaShellSmallerThanBaselines(t *testing.T) {
	// Fig. 18a: Harmonia's shell uses 3.5-14.9% fewer resources than
	// Vitis/Coyote (device A) and oneAPI (device D).
	cases := []struct {
		fw  *Framework
		dev *platform.Device
	}{
		{Vitis(), platform.DeviceA()},
		{Coyote(), platform.DeviceA()},
		{OneAPI(), platform.DeviceD()},
	}
	h := Harmonia()
	for _, c := range cases {
		base, err := c.fw.ShellResources(c.dev, benchDemands())
		if err != nil {
			t.Fatalf("%s: %v", c.fw.Name(), err)
		}
		ours, err := h.ShellResources(c.dev, benchDemands())
		if err != nil {
			t.Fatal(err)
		}
		saving := 1 - float64(ours.LUT)/float64(base.LUT)
		if saving < 0.03 || saving > 0.30 {
			t.Errorf("harmonia vs %s on %s: LUT saving %.1f%%, want in the 3.5-14.9%% band (tolerance 3-30)",
				c.fw.Name(), c.dev.Name, saving*100)
		}
	}
}

func TestShellResourcesUnsupportedDevice(t *testing.T) {
	if _, err := Vitis().ShellResources(platform.DeviceD(), benchDemands()); err == nil {
		t.Error("vitis on an intel device should fail")
	}
}

func TestSoftwareConfigItems(t *testing.T) {
	// Table 4: register frameworks manage 84/115/60 items, Harmonia
	// 4/5/4 — a 15-23x simplification.
	for _, task := range hostsw.Tasks() {
		v, err := Vitis().SoftwareConfigItems(task)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Harmonia().SoftwareConfigItems(task)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(v) / float64(h)
		if ratio < 15 || ratio > 23 {
			t.Errorf("%s simplification = %.1fx, want 15-23x", task, ratio)
		}
	}
	if _, err := Vitis().SoftwareConfigItems("bogus"); err == nil {
		t.Error("unknown task should fail")
	}
}

func TestMatMulRateScalesWithParallelism(t *testing.T) {
	// Fig. 18b: rate grows with loop unrolling, comparable across
	// frameworks.
	for _, fw := range All() {
		r4, err := fw.MatMulRate(4)
		if err != nil {
			t.Fatal(err)
		}
		r8, _ := fw.MatMulRate(8)
		r16, _ := fw.MatMulRate(16)
		if !(r4 < r8 && r8 < r16) {
			t.Errorf("%s rates not increasing: %v %v %v", fw.Name(), r4, r8, r16)
		}
		if ratio := r16 / r4; ratio < 3.5 || ratio > 4.1 {
			t.Errorf("%s x16/x4 speedup = %.2f, want about 4", fw.Name(), ratio)
		}
	}
	// Comparable across frameworks: within a few percent.
	h, _ := Harmonia().MatMulRate(8)
	v, _ := Vitis().MatMulRate(8)
	if diff := (h - v) / v; diff > 0.05 || diff < -0.05 {
		t.Errorf("harmonia vs vitis matmul differs by %.1f%%", diff*100)
	}
	if _, err := Vitis().MatMulRate(0); err == nil {
		t.Error("zero parallelism should fail")
	}
}

func TestVerifyMatMul(t *testing.T) {
	if err := VerifyMatMul(64); err != nil {
		t.Error(err)
	}
}

func TestDBRateOrdering(t *testing.T) {
	// Fig. 18c: sequential > fixed > random is the approximate shape
	// (sequential streams rows; fixed hits one row; random misses).
	fw := Harmonia()
	seq, err := fw.DBRate(DefaultDBConfig(workload.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	fixed, _ := fw.DBRate(DefaultDBConfig(workload.Fixed))
	rnd, _ := fw.DBRate(DefaultDBConfig(workload.Random))
	if seq <= rnd {
		t.Errorf("sequential (%.0f) should beat random (%.0f)", seq, rnd)
	}
	if fixed <= rnd {
		t.Errorf("fixed (%.0f) should beat random (%.0f)", fixed, rnd)
	}
	// Millions of vectors per second, like the paper's 50-250M scale.
	if seq < 1e6 {
		t.Errorf("sequential rate %.0f vectors/s implausibly low", seq)
	}
	if _, err := fw.DBRate(DBConfig{}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestDBRateComparableAcrossFrameworks(t *testing.T) {
	cfg := DefaultDBConfig(workload.Sequential)
	h, _ := Harmonia().DBRate(cfg)
	c, _ := Coyote().DBRate(cfg)
	if diff := (h - c) / c; diff > 0.05 || diff < -0.05 {
		t.Errorf("harmonia vs coyote DB rate differs by %.1f%%", diff*100)
	}
}

func TestTCPRunShape(t *testing.T) {
	// Fig. 18d: throughput and latency both rise with packet size.
	fw := Harmonia()
	var prevG float64
	var prevL int64
	for _, size := range workload.TCPSizes {
		res, err := fw.TCPRun(size, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Gbps <= prevG {
			t.Errorf("throughput not rising at %dB: %v after %v", size, res.Gbps, prevG)
		}
		if int64(res.Latency) <= prevL {
			t.Errorf("latency not rising at %dB", size)
		}
		// Microsecond-scale end-to-end latency.
		if res.Latency.Microseconds() < 10 || res.Latency.Microseconds() > 100 {
			t.Errorf("latency %v out of the tens-of-us band", res.Latency)
		}
		prevG, prevL = res.Gbps, int64(res.Latency)
	}
	if _, err := fw.TCPRun(10, 1); err == nil {
		t.Error("sub-minimum frame should fail")
	}
}

func TestTCPComparableAcrossFrameworks(t *testing.T) {
	h, _ := Harmonia().TCPRun(512, 1000)
	v, _ := Vitis().TCPRun(512, 1000)
	if diff := (h.Gbps - v.Gbps) / v.Gbps; diff > 0.05 || diff < -0.05 {
		t.Errorf("harmonia vs vitis TCP throughput differs by %.1f%%", diff*100)
	}
}

func TestDBRateFullOrdering(t *testing.T) {
	// Fig. 18c's full shape: sequential > fixed > random.
	fw := Harmonia()
	seq, _ := fw.DBRate(DefaultDBConfig(workload.Sequential))
	fixed, _ := fw.DBRate(DefaultDBConfig(workload.Fixed))
	rnd, _ := fw.DBRate(DefaultDBConfig(workload.Random))
	if !(seq > fixed && fixed > rnd) {
		t.Errorf("ordering seq(%.0f) > fixed(%.0f) > random(%.0f) violated", seq, fixed, rnd)
	}
	// Sequential engages both channels: about 2x fixed.
	if r := seq / fixed; r < 1.5 || r > 2.5 {
		t.Errorf("sequential/fixed = %.2f, want about 2 (channel striping)", r)
	}
}
