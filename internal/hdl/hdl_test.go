package hdl

import (
	"testing"
	"testing/quick"

	"harmonia/internal/proto"
)

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{LUT: 100, REG: 200, BRAM: 10, URAM: 4, DSP: 8}
	b := Resources{LUT: 50, REG: 100, BRAM: 5, URAM: 2, DSP: 4}
	sum := a.Add(b)
	if sum != (Resources{150, 300, 15, 6, 12}) {
		t.Errorf("Add = %+v", sum)
	}
	if diff := sum.Sub(b); diff != a {
		t.Errorf("Sub = %+v, want %+v", diff, a)
	}
	if half := b.Scale(0.5); half != (Resources{25, 50, 2, 1, 2}) {
		t.Errorf("Scale(0.5) = %+v", half)
	}
	if !(Resources{}).IsZero() || a.IsZero() {
		t.Error("IsZero misreports")
	}
}

func TestResourcesAddCommutative(t *testing.T) {
	f := func(a, b Resources) bool { return a.Add(b) == b.Add(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourcesGet(t *testing.T) {
	r := Resources{LUT: 1, REG: 2, BRAM: 3, URAM: 4, DSP: 5}
	want := map[string]int{"LUT": 1, "REG": 2, "BRAM": 3, "URAM": 4, "DSP": 5}
	for _, k := range ResourceKinds {
		got, err := r.Get(k)
		if err != nil || got != want[k] {
			t.Errorf("Get(%q) = %d, %v, want %d", k, got, err, want[k])
		}
	}
	if _, err := r.Get("FF"); err == nil {
		t.Error("Get(unknown) should error")
	}
}

func TestUtilization(t *testing.T) {
	capacity := Resources{LUT: 1000, REG: 2000, BRAM: 100, URAM: 50, DSP: 200}
	used := Resources{LUT: 100, REG: 100, BRAM: 50, URAM: 5, DSP: 10}
	// BRAM is binding at 50%.
	if got := used.Utilization(capacity); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	// Using a resource the device lacks saturates to 1.
	if got := (Resources{URAM: 1}).Utilization(Resources{LUT: 10}); got != 1 {
		t.Errorf("Utilization with missing resource = %v, want 1", got)
	}
	if got := (Resources{}).Utilization(capacity); got != 0 {
		t.Errorf("zero utilization = %v", got)
	}
}

func TestLoC(t *testing.T) {
	l := LoC{Handcraft: 3000, Generated: 1500}
	if l.Total() != 4500 {
		t.Errorf("Total = %d", l.Total())
	}
	sum := l.Add(LoC{Handcraft: 1000, Generated: 500})
	if sum != (LoC{4000, 2000}) {
		t.Errorf("Add = %+v", sum)
	}
}

func makeModule(name, vendor string, width int, params ...Param) *Module {
	return &Module{
		Name:     name,
		Vendor:   vendor,
		Category: "mac",
		Ports: []proto.Interface{
			proto.NewAXI4Stream("rx", width),
			proto.NewAXI4Stream("tx", width),
			proto.NewAXI4Lite("ctrl", 32, 32),
		},
		Params: params,
		Res:    Resources{LUT: 10000, REG: 20000, BRAM: 30},
		Code:   LoC{Handcraft: 2000, Generated: 4000},
		Deps:   map[string]string{"cad": "vivado-2023.2"},
	}
}

func TestModuleCounts(t *testing.T) {
	m := makeModule("mac", "xilinx", 512,
		Param{Name: "SPEED", Default: "100G", Scope: RoleOriented},
		Param{Name: "FEC", Default: "rs", Scope: ShellOriented},
	)
	if m.PortCount() != 3 {
		t.Errorf("PortCount = %d", m.PortCount())
	}
	if m.SignalCount() != 9+9+19 {
		t.Errorf("SignalCount = %d, want 37", m.SignalCount())
	}
	if m.ParamCount() != 2 {
		t.Errorf("ParamCount = %d", m.ParamCount())
	}
	rp := m.RoleParams()
	if len(rp) != 1 || rp[0].Name != "SPEED" {
		t.Errorf("RoleParams = %+v", rp)
	}
}

func TestModuleClone(t *testing.T) {
	m := makeModule("mac", "xilinx", 512, Param{Name: "P", Default: "1"})
	c := m.Clone()
	c.Ports[0].Signals[0].Width = 999
	c.Params[0].Default = "2"
	c.Deps["cad"] = "other"
	if m.Ports[0].Signals[0].Width == 999 {
		t.Error("Clone shares port signals")
	}
	if m.Params[0].Default == "2" {
		t.Error("Clone shares params")
	}
	if m.Deps["cad"] == "other" {
		t.Error("Clone shares deps")
	}
}

func TestInterfaceDiff(t *testing.T) {
	a := makeModule("mac-x", "xilinx", 512)
	b := makeModule("mac-x2", "xilinx", 512)
	if d := InterfaceDiff(a, b); d != 0 {
		t.Errorf("identical modules diff = %d", d)
	}
	// Cross-vendor: replace streams with Avalon — every stream signal
	// differs, and the control port differs too.
	c := b.Clone()
	c.Ports[0] = proto.NewAvalonST("rx", 512)
	c.Ports[1] = proto.NewAvalonST("tx", 512)
	d := InterfaceDiff(a, c)
	if d < 30 {
		t.Errorf("cross-vendor diff = %d, want tens of signals", d)
	}
	// A port present in only one module counts fully.
	e := a.Clone()
	e.Ports = append(e.Ports, proto.NewUnifiedIRQ("irq", 1))
	if d := InterfaceDiff(a, e); d != 1 {
		t.Errorf("extra-port diff = %d, want 1", d)
	}
}

func TestConfigDiff(t *testing.T) {
	a := makeModule("m1", "x", 512,
		Param{Name: "A", Default: "1"}, Param{Name: "B", Default: "2"})
	b := makeModule("m2", "x", 512,
		Param{Name: "A", Default: "1"}, Param{Name: "B", Default: "3"}, Param{Name: "C", Default: "4"})
	// B differs by default, C only in b.
	if d := ConfigDiff(a, b); d != 2 {
		t.Errorf("ConfigDiff = %d, want 2", d)
	}
	if d := ConfigDiff(a, a); d != 0 {
		t.Errorf("self diff = %d", d)
	}
	if d := ConfigDiff(a, b); d != ConfigDiff(b, a) {
		t.Error("ConfigDiff not symmetric")
	}
}

func TestLibrary(t *testing.T) {
	l := NewLibrary()
	m1 := makeModule("mac-a", "xilinx", 512)
	m2 := makeModule("mac-b", "intel", 512)
	m3 := makeModule("dma-a", "xilinx", 256)
	m3.Category = "pcie-dma"
	for _, m := range []*Module{m1, m2, m3} {
		if err := l.Register(m); err != nil {
			t.Fatalf("Register(%s): %v", m.Name, err)
		}
	}
	if err := l.Register(m1); err == nil {
		t.Error("duplicate Register should fail")
	}
	if err := l.Register(&Module{}); err == nil {
		t.Error("unnamed Register should fail")
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
	if _, err := l.Lookup("mac-a"); err != nil {
		t.Errorf("Lookup failed: %v", err)
	}
	if _, err := l.Lookup("nope"); err == nil {
		t.Error("Lookup(nope) should fail")
	}
	names := l.Names()
	if len(names) != 3 || names[0] != "dma-a" {
		t.Errorf("Names = %v", names)
	}
	if macs := l.ByCategory("mac"); len(macs) != 2 {
		t.Errorf("ByCategory(mac) = %d modules", len(macs))
	}
	if xs := l.ByVendor("xilinx"); len(xs) != 2 {
		t.Errorf("ByVendor(xilinx) = %d modules", len(xs))
	}
}

func TestParamScopeString(t *testing.T) {
	if ShellOriented.String() != "shell-oriented" || RoleOriented.String() != "role-oriented" {
		t.Error("ParamScope.String mismatch")
	}
	if ParamScope(7).String() != "scope(7)" {
		t.Error("unknown scope formatting mismatch")
	}
}
