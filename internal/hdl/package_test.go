package hdl

import (
	"reflect"
	"strings"
	"testing"

	"harmonia/internal/proto"
)

func packagedModule() *Module {
	return &Module{
		Name:     "test-mac",
		Vendor:   "xilinx",
		Category: "mac",
		Ports:    []proto.Interface{proto.NewAXI4Stream("rx", 512)},
		Params:   []Param{{Name: "SPEED", Default: "100G", Scope: RoleOriented}},
		Res:      Resources{LUT: 14_000, REG: 28_000, BRAM: 36},
		Code:     LoC{Handcraft: 600, Generated: 9500},
		Deps:     map[string]string{"cad": "vivado"},
		FmaxMHz:  402,
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	m := packagedModule()
	data, err := Export(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "format_version") {
		t.Error("package lacks format version")
	}
	got, err := Import(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, m)
	}
}

func TestExportValidation(t *testing.T) {
	if _, err := Export(nil); err == nil {
		t.Error("nil module exported")
	}
	if _, err := Export(&Module{}); err == nil {
		t.Error("unnamed module exported")
	}
}

func TestImportRejectsBadPackages(t *testing.T) {
	if _, err := Import([]byte("{not json")); err == nil {
		t.Error("malformed JSON imported")
	}
	if _, err := Import([]byte(`{"format_version":99,"module":{"Name":"x"}}`)); err == nil {
		t.Error("future format version imported")
	}
	if _, err := Import([]byte(`{"format_version":1}`)); err == nil {
		t.Error("empty package imported")
	}
	if _, err := Import([]byte(`{"format_version":1,"module":{"Name":""}}`)); err == nil {
		t.Error("unnamed module imported")
	}
	// Missing deps map is normalized, not an error.
	m, err := Import([]byte(`{"format_version":1,"module":{"Name":"x"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Deps == nil {
		t.Error("deps not normalized")
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	lib := NewLibrary()
	m1 := packagedModule()
	m2 := packagedModule()
	m2.Name = "test-dma"
	m2.Category = "pcie-dma"
	if err := lib.Register(m1); err != nil {
		t.Fatal(err)
	}
	if err := lib.Register(m2); err != nil {
		t.Fatal(err)
	}
	data, err := ExportLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportLibrary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("imported %d modules", got.Len())
	}
	back, err := got.Lookup("test-mac")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m1) {
		t.Error("library round trip mismatch")
	}
	if _, err := ImportLibrary([]byte("[]")); err == nil {
		t.Error("non-object library imported")
	}
}
