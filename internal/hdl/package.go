package hdl

import (
	"encoding/json"
	"fmt"
)

// PackageFormatVersion is the current IP-package format revision —
// the IP-XACT-style packaging metadata the vendor adapter's dependency
// checks consume (§3.2).
const PackageFormatVersion = 1

// ipPackage is the on-disk envelope of a packaged module.
type ipPackage struct {
	FormatVersion int     `json:"format_version"`
	Module        *Module `json:"module"`
}

// Export packages a module description as versioned JSON.
func Export(m *Module) ([]byte, error) {
	if m == nil || m.Name == "" {
		return nil, fmt.Errorf("hdl: cannot export unnamed module")
	}
	return json.MarshalIndent(ipPackage{
		FormatVersion: PackageFormatVersion,
		Module:        m,
	}, "", "  ")
}

// Import parses a packaged module, validating the format version and
// required fields.
func Import(data []byte) (*Module, error) {
	var pkg ipPackage
	if err := json.Unmarshal(data, &pkg); err != nil {
		return nil, fmt.Errorf("hdl: malformed package: %w", err)
	}
	if pkg.FormatVersion != PackageFormatVersion {
		return nil, fmt.Errorf("hdl: package format %d, this library reads %d",
			pkg.FormatVersion, PackageFormatVersion)
	}
	if pkg.Module == nil || pkg.Module.Name == "" {
		return nil, fmt.Errorf("hdl: package carries no named module")
	}
	if pkg.Module.Deps == nil {
		pkg.Module.Deps = map[string]string{}
	}
	return pkg.Module, nil
}

// ExportLibrary packages every module of a library keyed by name.
func ExportLibrary(l *Library) ([]byte, error) {
	out := make(map[string]json.RawMessage, l.Len())
	for _, name := range l.Names() {
		m, err := l.Lookup(name)
		if err != nil {
			return nil, err
		}
		pkg, err := Export(m)
		if err != nil {
			return nil, err
		}
		out[name] = pkg
	}
	return json.MarshalIndent(out, "", "  ")
}

// ImportLibrary rebuilds a library from ExportLibrary output.
func ImportLibrary(data []byte) (*Library, error) {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("hdl: malformed library: %w", err)
	}
	lib := NewLibrary()
	for name, pkg := range raw {
		m, err := Import(pkg)
		if err != nil {
			return nil, fmt.Errorf("hdl: module %q: %w", name, err)
		}
		if err := lib.Register(m); err != nil {
			return nil, err
		}
	}
	return lib, nil
}
