package sim

import "fmt"

// Pipeline models a fully pipelined datapath stage: fixed latency of
// depth cycles, one item accepted per cycle with no bubbles. This is the
// property the paper leans on for its interface wrappers ("fully
// pipelined sequential translation logic ... operates without generating
// bubbles and consumes a few fixed clock cycles", §3.2): throughput is
// preserved exactly while latency grows by depth cycles.
type Pipeline struct {
	name  string
	clk   *Clock
	depth int64

	// nextIssue is the earliest time the next item may enter.
	nextIssue Time
	accepted  int64
	busyUntil Time
}

// NewPipeline returns a pipeline of depth stages in clock domain clk.
func NewPipeline(name string, clk *Clock, depth int) *Pipeline {
	if depth < 0 {
		panic(fmt.Sprintf("sim: pipeline %q depth %d must be >= 0", name, depth))
	}
	if clk == nil {
		panic(fmt.Sprintf("sim: pipeline %q requires a clock", name))
	}
	return &Pipeline{name: name, clk: clk, depth: int64(depth)}
}

// Name reports the pipeline's name.
func (p *Pipeline) Name() string { return p.name }

// Depth reports the pipeline depth in cycles.
func (p *Pipeline) Depth() int { return int(p.depth) }

// Latency reports the fixed traversal latency.
func (p *Pipeline) Latency() Time { return p.clk.CyclesTime(p.depth) }

// Accepted reports how many items have entered the pipeline.
func (p *Pipeline) Accepted() int64 { return p.accepted }

// NextFree reports the earliest time a new item may issue — the
// backlog frontier used for queue-occupancy and tail-drop decisions.
func (p *Pipeline) NextFree() Time { return p.nextIssue }

// Issue admits an item at time now (or at the pipeline's next free issue
// slot, whichever is later) and returns the time the item exits. Items
// issue at most one per cycle; back-to-back issues therefore exit
// back-to-back, preserving full throughput.
func (p *Pipeline) Issue(now Time) (exit Time) {
	t := p.clk.NextEdge(now)
	if t < p.nextIssue {
		t = p.nextIssue
	}
	p.nextIssue = t + p.clk.Period()
	p.accepted++
	exit = t + p.Latency()
	if exit > p.busyUntil {
		p.busyUntil = exit
	}
	return exit
}

// IssueBeats admits n consecutive beats starting at now and returns the
// exit time of the final beat. Equivalent to n Issue calls.
func (p *Pipeline) IssueBeats(now Time, n int64) (lastExit Time) {
	if n <= 0 {
		return p.clk.NextEdge(now) + p.Latency()
	}
	t := p.clk.NextEdge(now)
	if t < p.nextIssue {
		t = p.nextIssue
	}
	p.nextIssue = t + Time(n)*p.clk.Period()
	p.accepted += n
	lastExit = t + Time(n-1)*p.clk.Period() + p.Latency()
	if lastExit > p.busyUntil {
		p.busyUntil = lastExit
	}
	return lastExit
}

// Drained reports the time the pipeline last goes empty given the items
// issued so far.
func (p *Pipeline) Drained() Time { return p.busyUntil }

// Reset returns the pipeline to an idle state.
func (p *Pipeline) Reset() {
	p.nextIssue = 0
	p.accepted = 0
	p.busyUntil = 0
}

// StoreAndForward models the non-pipelined alternative used by the
// ablation benchmarks: each item occupies the stage exclusively for
// depth cycles, so throughput collapses to one item per depth cycles.
type StoreAndForward struct {
	name     string
	clk      *Clock
	depth    int64
	freeAt   Time
	accepted int64
}

// NewStoreAndForward returns a store-and-forward stage of the given
// occupancy in cycles.
func NewStoreAndForward(name string, clk *Clock, depth int) *StoreAndForward {
	if depth <= 0 {
		panic(fmt.Sprintf("sim: store-and-forward %q depth %d must be positive", name, depth))
	}
	return &StoreAndForward{name: name, clk: clk, depth: int64(depth)}
}

// Issue admits an item and returns its exit time. The stage is busy until
// that exit time; subsequent items queue behind it.
func (s *StoreAndForward) Issue(now Time) (exit Time) {
	t := s.clk.NextEdge(now)
	if t < s.freeAt {
		t = s.freeAt
	}
	exit = t + s.clk.CyclesTime(s.depth)
	s.freeAt = exit
	s.accepted++
	return exit
}

// Accepted reports how many items have entered the stage.
func (s *StoreAndForward) Accepted() int64 { return s.accepted }
