package sim

import "fmt"

// AsyncFIFO models the dual-clock gray-pointer FIFO used for clock
// domain crossings (the paper's "param clock domain crossing", §3.3.1,
// design per Cummings' classic async-FIFO scheme). Writes land in the
// write clock domain; a two-flop synchronizer delays pointer visibility
// by syncStages cycles of the destination clock, so an item written at
// time t is earliest readable at the read-clock edge following
// t + syncStages read periods. This reproduces the small fixed crossing
// latency the paper reports for wrapped interfaces without modelling
// metastability itself.
type AsyncFIFO struct {
	name       string
	capacity   int
	wrClk      *Clock
	rdClk      *Clock
	syncStages int64

	items  []asyncItem
	head   int
	pushes int64
	drops  int64
	maxUse int
}

type asyncItem struct {
	item    Item
	visible Time // earliest read time
}

// DefaultSyncStages is the conventional two-flop synchronizer depth.
const DefaultSyncStages = 2

// NewAsyncFIFO returns a CDC FIFO from wrClk into rdClk with the given
// capacity and a two-flop synchronizer.
func NewAsyncFIFO(name string, capacity int, wrClk, rdClk *Clock) *AsyncFIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: AsyncFIFO %q capacity %d must be positive", name, capacity))
	}
	if wrClk == nil || rdClk == nil {
		panic(fmt.Sprintf("sim: AsyncFIFO %q requires both clocks", name))
	}
	return &AsyncFIFO{
		name:       name,
		capacity:   capacity,
		wrClk:      wrClk,
		rdClk:      rdClk,
		syncStages: DefaultSyncStages,
	}
}

// Name reports the FIFO's name.
func (f *AsyncFIFO) Name() string { return f.name }

// Cap reports the FIFO's capacity.
func (f *AsyncFIFO) Cap() int { return f.capacity }

// Len reports the number of items buffered (visible or not).
func (f *AsyncFIFO) Len() int { return len(f.items) - f.head }

// Full reports whether a write would be rejected.
func (f *AsyncFIFO) Full() bool { return f.Len() >= f.capacity }

// Drops reports rejected writes.
func (f *AsyncFIFO) Drops() int64 { return f.drops }

// MaxDepth reports the high-water occupancy.
func (f *AsyncFIFO) MaxDepth() int { return f.maxUse }

// CrossingLatency reports the worst-case write-to-readable delay: the
// synchronizer stages in the read domain plus one read-clock edge
// alignment.
func (f *AsyncFIFO) CrossingLatency() Time {
	return Time(f.syncStages+1) * f.rdClk.Period()
}

// Push writes an item at time now (write-domain time). It reports false
// when the FIFO is full.
func (f *AsyncFIFO) Push(now Time, it Item) bool {
	if f.Full() {
		f.drops++
		return false
	}
	// The write commits on the next write-clock edge; the read pointer
	// update is then synchronized into the read domain.
	commit := f.wrClk.NextEdge(now)
	visible := f.rdClk.NextEdge(commit) + Time(f.syncStages)*f.rdClk.Period()
	f.items = append(f.items, asyncItem{item: it, visible: visible})
	f.pushes++
	if d := f.Len(); d > f.maxUse {
		f.maxUse = d
	}
	return true
}

// Pop reads the oldest item if it is visible at read-domain time now.
func (f *AsyncFIFO) Pop(now Time) (it Item, ok bool) {
	if f.Len() == 0 {
		return Item{}, false
	}
	ai := f.items[f.head]
	if ai.visible > now {
		return Item{}, false
	}
	f.items[f.head] = asyncItem{}
	f.head++
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
	}
	return ai.item, true
}

// NextVisible reports the earliest time the oldest buffered item becomes
// readable, and ok=false when the FIFO is empty.
func (f *AsyncFIFO) NextVisible() (t Time, ok bool) {
	if f.Len() == 0 {
		return 0, false
	}
	return f.items[f.head].visible, true
}
