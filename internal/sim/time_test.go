package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewClockPeriod(t *testing.T) {
	tests := []struct {
		freqMHz float64
		want    Time
	}{
		{1, 1_000_000},
		{100, 10_000},
		{250, 4_000},
		{322.265625, 3103}, // 100G MAC core clock, rounded
		{1000, 1_000},
	}
	for _, tt := range tests {
		c := NewClock("c", tt.freqMHz)
		if c.Period() != tt.want {
			t.Errorf("NewClock(%v).Period() = %d, want %d", tt.freqMHz, c.Period(), tt.want)
		}
	}
}

func TestNewClockPanics(t *testing.T) {
	for _, f := range []float64{0, -5, math.NaN(), math.Inf(1), 3e6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%v) did not panic", f)
				}
			}()
			NewClock("bad", f)
		}()
	}
}

func TestClockFreqRoundTrip(t *testing.T) {
	c := NewClock("c", 250)
	if got := c.FreqMHz(); math.Abs(got-250) > 1e-9 {
		t.Errorf("FreqMHz() = %v, want 250", got)
	}
}

func TestClockCycles(t *testing.T) {
	c := NewClock("c", 100) // 10ns period
	tests := []struct {
		d    Time
		want int64
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{10_000, 1},
		{10_001, 2},
		{100_000, 10},
	}
	for _, tt := range tests {
		if got := c.Cycles(tt.d); got != tt.want {
			t.Errorf("Cycles(%d) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestClockNextEdge(t *testing.T) {
	c := NewClock("c", 100) // 10ns period = 10000ps
	tests := []struct{ in, want Time }{
		{-1, 0},
		{0, 0},
		{1, 10_000},
		{10_000, 10_000},
		{10_001, 20_000},
	}
	for _, tt := range tests {
		if got := c.NextEdge(tt.in); got != tt.want {
			t.Errorf("NextEdge(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestNextEdgeProperties(t *testing.T) {
	c := NewClock("c", 322)
	f := func(raw int64) bool {
		in := Time(raw % int64(Second))
		e := c.NextEdge(in)
		if e < 0 || e%c.Period() != 0 {
			return false
		}
		if in >= 0 && (e < in || e-in >= c.Period()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{Second, "1s"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(tt.in), got, tt.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	d := 1500 * Nanosecond
	if got := d.Nanoseconds(); got != 1500 {
		t.Errorf("Nanoseconds() = %v, want 1500", got)
	}
	if got := d.Microseconds(); got != 1.5 {
		t.Errorf("Microseconds() = %v, want 1.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
}
