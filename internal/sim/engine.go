package sim

// Engine is a single-threaded discrete-event scheduler. Callbacks run in
// timestamp order; callbacks with equal timestamps run in scheduling
// order. The engine is not safe for concurrent use: models schedule
// follow-up events from within callbacks.
type Engine struct {
	now Time
	// events is a hand-rolled binary min-heap ordered by (at, seq).
	// Events are stored by value: scheduling costs no per-event
	// allocation and no interface boxing on the hot simulation path.
	events []event
	seq    int64
	ran    int64
}

// NewEngine returns an engine with simulated time at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports the number of events executed so far.
func (e *Engine) Processed() int64 { return e.ran }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) clamps to the current time, preserving causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events = append(e.events, event{at: t, seq: e.seq, fn: fn})
	e.siftUp(len(e.events) - 1)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Step executes the next pending event, if any, and reports whether one
// was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = event{} // release the callback for GC
	e.events = e.events[:n]
	if n > 1 {
		e.siftDown(0)
	}
	e.now = ev.at
	e.ran++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// time to the deadline. Events scheduled beyond the deadline remain
// pending.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

type event struct {
	at  Time
	seq int64
	fn  func()
}

func (e *Engine) less(i, j int) bool {
	if e.events[i].at != e.events[j].at {
		return e.events[i].at < e.events[j].at
	}
	return e.events[i].seq < e.events[j].seq
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.events)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.less(right, left) {
			least = right
		}
		if !e.less(least, i) {
			return
		}
		e.events[i], e.events[least] = e.events[least], e.events[i]
		i = least
	}
}
