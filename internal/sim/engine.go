package sim

import "container/heap"

// Engine is a single-threaded discrete-event scheduler. Callbacks run in
// timestamp order; callbacks with equal timestamps run in scheduling
// order. The engine is not safe for concurrent use: models schedule
// follow-up events from within callbacks.
type Engine struct {
	now    Time
	events eventHeap
	seq    int64
	ran    int64
}

// NewEngine returns an engine with simulated time at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports the number of events executed so far.
func (e *Engine) Processed() int64 { return e.ran }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) clamps to the current time, preserving causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Step executes the next pending event, if any, and reports whether one
// was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.ran++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// time to the deadline. Events scheduled beyond the deadline remain
// pending.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
