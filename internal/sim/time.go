// Package sim provides the discrete-event simulation substrate used by
// every functional model in this repository: simulated time, clock
// domains, an event engine, FIFOs, asynchronous (clock-domain-crossing)
// FIFOs, and pipeline primitives.
//
// The paper's performance results (throughput and latency of MACs, PCIe
// DMA engines, DDR controllers, and whole applications) are regenerated
// on top of this engine. Time is tracked in picoseconds so that clock
// periods from tens of MHz to several GHz are exactly representable.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Clock describes a clock domain with a fixed frequency. The zero value
// is not usable; construct clocks with NewClock.
type Clock struct {
	name   string
	period Time
}

// NewClock returns a clock domain running at freqMHz. It panics if the
// frequency is not positive or is too high to represent (> 1 THz).
func NewClock(name string, freqMHz float64) *Clock {
	if freqMHz <= 0 || math.IsNaN(freqMHz) || math.IsInf(freqMHz, 0) {
		panic(fmt.Sprintf("sim: invalid clock frequency %v MHz for %q", freqMHz, name))
	}
	period := Time(math.Round(1e6 / freqMHz)) // 1 MHz -> 1e6 ps period
	if period < 1 {
		panic(fmt.Sprintf("sim: clock %q frequency %v MHz exceeds 1 THz", name, freqMHz))
	}
	return &Clock{name: name, period: period}
}

// Name reports the clock's name.
func (c *Clock) Name() string { return c.name }

// Period reports the clock period.
func (c *Clock) Period() Time { return c.period }

// FreqMHz reports the clock frequency in MHz.
func (c *Clock) FreqMHz() float64 { return 1e6 / float64(c.period) }

// Cycles converts a duration into a whole number of cycles, rounding up.
func (c *Clock) Cycles(d Time) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + c.period - 1) / c.period)
}

// CyclesTime converts a cycle count into a duration.
func (c *Clock) CyclesTime(n int64) Time { return Time(n) * c.period }

// NextEdge returns the first rising edge at or after t, assuming an edge
// at time zero.
func (c *Clock) NextEdge(t Time) Time {
	if t <= 0 {
		return 0
	}
	rem := t % c.period
	if rem == 0 {
		return t
	}
	return t + c.period - rem
}
