package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %d, want 30", e.Now())
	}
}

func TestEngineFIFOForEqualTimestamps(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-timestamp events ran out of order at %d: %v...", i, got[:i+1])
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.At(10, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Errorf("trace = %v, want [10 15]", trace)
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	var ran Time = -1
	e.At(100, func() {
		e.At(50, func() { ran = e.Now() }) // in the past: clamps to 100
	})
	e.Run()
	if ran != 100 {
		t.Errorf("past-scheduled event ran at %d, want 100", ran)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var count int
	for _, at := range []Time{5, 10, 15, 20} {
		e.At(at, func() { count++ })
	}
	e.RunUntil(12)
	if count != 2 {
		t.Errorf("events run by t=12: %d, want 2", count)
	}
	if e.Now() != 12 {
		t.Errorf("Now() = %d, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if count != 4 || e.Now() != 20 {
		t.Errorf("after Run: count=%d now=%d, want 4, 20", count, e.Now())
	}
}

func TestEngineMonotonicTime(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(1))
	times := make([]Time, 1000)
	for i := range times {
		times[i] = Time(rng.Int63n(1_000_000))
	}
	var observed []Time
	for _, at := range times {
		e.At(at, func() { observed = append(observed, e.Now()) })
	}
	e.Run()
	if !sort.SliceIsSorted(observed, func(i, j int) bool { return observed[i] < observed[j] }) {
		t.Error("engine time went backwards")
	}
	if e.Processed() != 1000 {
		t.Errorf("Processed() = %d, want 1000", e.Processed())
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step() on empty engine reported true")
	}
}

// BenchmarkEngineSchedule measures the hot scheduling path: push one
// event into a populated heap and pop/run the earliest. Events are
// stored by value, so a schedule costs no per-event allocation beyond
// the amortized heap growth.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	// Keep a steady backlog so push/pop exercise a realistic heap.
	for i := 0; i < 1024; i++ {
		e.At(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Time(i%1024)+1, fn)
		e.Step()
	}
}
