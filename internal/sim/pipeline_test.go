package sim

import "testing"

func TestPipelineLatencyAndThroughput(t *testing.T) {
	clk := NewClock("c", 100) // 10ns
	p := NewPipeline("pipe", clk, 3)
	if p.Latency() != 30*Nanosecond {
		t.Errorf("Latency() = %v, want 30ns", p.Latency())
	}
	// Back-to-back issues exit back-to-back: full throughput.
	e0 := p.Issue(0)
	e1 := p.Issue(0)
	e2 := p.Issue(0)
	if e0 != 30*Nanosecond || e1 != 40*Nanosecond || e2 != 50*Nanosecond {
		t.Errorf("exits = %v %v %v, want 30ns 40ns 50ns", e0, e1, e2)
	}
	if p.Accepted() != 3 {
		t.Errorf("Accepted() = %d, want 3", p.Accepted())
	}
}

func TestPipelineZeroDepthPassthrough(t *testing.T) {
	clk := NewClock("c", 100)
	p := NewPipeline("wire", clk, 0)
	if p.Latency() != 0 {
		t.Errorf("Latency() = %v, want 0", p.Latency())
	}
	if exit := p.Issue(5 * Nanosecond); exit != 10*Nanosecond {
		t.Errorf("Issue(5ns) = %v, want 10ns (edge-aligned)", exit)
	}
}

func TestPipelineIssueBeats(t *testing.T) {
	clk := NewClock("c", 100)
	p := NewPipeline("pipe", clk, 2)
	// 10 beats starting at t=0: last beat enters at cycle 9, exits 2
	// cycles later => 110ns.
	last := p.IssueBeats(0, 10)
	if last != 110*Nanosecond {
		t.Errorf("IssueBeats last exit = %v, want 110ns", last)
	}
	if p.Accepted() != 10 {
		t.Errorf("Accepted() = %d, want 10", p.Accepted())
	}
	// Next issue must queue after the 10 beats.
	next := p.Issue(0)
	if next != 120*Nanosecond {
		t.Errorf("Issue after beats = %v, want 120ns", next)
	}
}

func TestPipelineIssueBeatsZero(t *testing.T) {
	clk := NewClock("c", 100)
	p := NewPipeline("pipe", clk, 2)
	if got := p.IssueBeats(0, 0); got != p.Latency() {
		t.Errorf("IssueBeats(0,0) = %v, want %v", got, p.Latency())
	}
	if p.Accepted() != 0 {
		t.Error("IssueBeats(0,0) accepted items")
	}
}

func TestPipelineReset(t *testing.T) {
	clk := NewClock("c", 100)
	p := NewPipeline("pipe", clk, 2)
	p.IssueBeats(0, 5)
	p.Reset()
	if p.Accepted() != 0 || p.Drained() != 0 {
		t.Error("Reset did not clear state")
	}
	if exit := p.Issue(0); exit != p.Latency() {
		t.Errorf("post-reset Issue(0) = %v, want %v", exit, p.Latency())
	}
}

func TestStoreAndForwardSerializes(t *testing.T) {
	clk := NewClock("c", 100)
	s := NewStoreAndForward("saf", clk, 3)
	e0 := s.Issue(0)
	e1 := s.Issue(0)
	if e0 != 30*Nanosecond {
		t.Errorf("first exit = %v, want 30ns", e0)
	}
	if e1 != 60*Nanosecond {
		t.Errorf("second exit = %v, want 60ns (serialized)", e1)
	}
	if s.Accepted() != 2 {
		t.Errorf("Accepted() = %d, want 2", s.Accepted())
	}
}

// The pipelined wrapper must sustain N× the store-and-forward rate for
// depth N — the bubble-freedom property the paper claims in §3.2.
func TestPipelineBeatsStoreAndForward(t *testing.T) {
	clk := NewClock("c", 250)
	const depth, items = 4, 1000
	p := NewPipeline("p", clk, depth)
	s := NewStoreAndForward("s", clk, depth)
	var pEnd, sEnd Time
	for i := 0; i < items; i++ {
		pEnd = p.Issue(0)
		sEnd = s.Issue(0)
	}
	// Pipeline: items + depth - 1 cycles. SAF: items * depth cycles.
	if pEnd >= sEnd {
		t.Errorf("pipeline end %v not faster than store-and-forward %v", pEnd, sEnd)
	}
	ratio := float64(sEnd) / float64(pEnd)
	if ratio < float64(depth)*0.9 {
		t.Errorf("speedup %.2f, want about %d", ratio, depth)
	}
}

func TestPipelinePanics(t *testing.T) {
	clk := NewClock("c", 100)
	for name, fn := range map[string]func(){
		"negative depth": func() { NewPipeline("bad", clk, -1) },
		"nil clock":      func() { NewPipeline("bad", nil, 1) },
		"saf zero depth": func() { NewStoreAndForward("bad", clk, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
