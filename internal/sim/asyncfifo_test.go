package sim

import (
	"testing"
	"testing/quick"
)

func TestAsyncFIFOVisibilityDelay(t *testing.T) {
	wr := NewClock("wr", 322) // MAC-ish
	rd := NewClock("rd", 250) // user-ish
	f := NewAsyncFIFO("cdc", 16, wr, rd)

	if !f.Push(0, Item{Bits: 512}) {
		t.Fatal("push failed")
	}
	// Not yet visible: needs two read-clock synchronizer stages.
	if _, ok := f.Pop(0); ok {
		t.Error("item visible immediately across clock domains")
	}
	vis, ok := f.NextVisible()
	if !ok {
		t.Fatal("NextVisible reported empty")
	}
	if vis <= 0 || vis > f.CrossingLatency() {
		t.Errorf("visibility time %d outside (0, %d]", vis, f.CrossingLatency())
	}
	if _, ok := f.Pop(vis - 1); ok {
		t.Error("item visible before synchronizer delay elapsed")
	}
	it, ok := f.Pop(vis)
	if !ok || it.Bits != 512 {
		t.Errorf("Pop(visible) = %+v, %v", it, ok)
	}
}

func TestAsyncFIFOFullRejects(t *testing.T) {
	clk := NewClock("c", 100)
	f := NewAsyncFIFO("cdc", 2, clk, clk)
	f.Push(0, Item{})
	f.Push(0, Item{})
	if f.Push(0, Item{}) {
		t.Error("push into full AsyncFIFO succeeded")
	}
	if f.Drops() != 1 {
		t.Errorf("Drops() = %d, want 1", f.Drops())
	}
}

func TestAsyncFIFOOrderPreservedAcrossDomains(t *testing.T) {
	wr := NewClock("wr", 400)
	rd := NewClock("rd", 100)
	f := NewAsyncFIFO("cdc", 64, wr, rd)
	now := Time(0)
	for i := 0; i < 50; i++ {
		if !f.Push(now, Item{Bits: i}) {
			t.Fatalf("push %d failed", i)
		}
		now += wr.Period()
	}
	// Read everything far in the future; order must be FIFO.
	rt := Time(Second)
	for i := 0; i < 50; i++ {
		it, ok := f.Pop(rt)
		if !ok || it.Bits != i {
			t.Fatalf("pop %d = %+v, %v", i, it, ok)
		}
	}
}

func TestAsyncFIFOCrossingLatencyScalesWithReadClock(t *testing.T) {
	wr := NewClock("wr", 500)
	slow := NewAsyncFIFO("s", 4, wr, NewClock("rd", 50))
	fast := NewAsyncFIFO("f", 4, wr, NewClock("rd", 500))
	if slow.CrossingLatency() <= fast.CrossingLatency() {
		t.Errorf("slow read clock crossing %v should exceed fast %v",
			slow.CrossingLatency(), fast.CrossingLatency())
	}
}

// Property: an item is never readable before the write commits, and
// always readable by commit + CrossingLatency.
func TestAsyncFIFOVisibilityProperty(t *testing.T) {
	wr := NewClock("wr", 322)
	rd := NewClock("rd", 250)
	f := func(raw int64) bool {
		now := Time(raw % int64(Millisecond))
		if now < 0 {
			now = -now
		}
		q := NewAsyncFIFO("p", 4, wr, rd)
		q.Push(now, Item{})
		vis, ok := q.NextVisible()
		if !ok {
			return false
		}
		commit := wr.NextEdge(now)
		return vis >= commit && vis <= commit+q.CrossingLatency()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsyncFIFOConstructorPanics(t *testing.T) {
	clk := NewClock("c", 100)
	for _, tc := range []func(){
		func() { NewAsyncFIFO("bad", 0, clk, clk) },
		func() { NewAsyncFIFO("bad", 4, nil, clk) },
		func() { NewAsyncFIFO("bad", 4, clk, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor did not panic on invalid args")
				}
			}()
			tc()
		}()
	}
}
