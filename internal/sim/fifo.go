package sim

import "fmt"

// Item is a unit of data moving through a datapath model. Beats carry a
// payload width in bits so bandwidth accounting stays exact, plus opaque
// metadata for functional models (packet headers, addresses, ...).
type Item struct {
	// Bits is the payload size of this beat or transaction in bits.
	Bits int
	// Enqueued is the time the item entered the current stage; stages
	// update it as the item moves so end-to-end latency can be sampled.
	Enqueued Time
	// Born is the time the item entered the system; never updated.
	Born Time
	// Meta carries model-specific data (e.g. a *net.Packet).
	Meta any
	// Last marks the final beat of a multi-beat stream transfer.
	Last bool
}

// FIFO is a bounded queue within a single clock domain. It tracks
// occupancy high-water marks so monitoring models can report queue usage
// the way the paper's Network RBB does.
type FIFO struct {
	name     string
	capacity int
	items    []Item
	head     int
	maxDepth int
	pushes   int64
	drops    int64
}

// NewFIFO returns a FIFO holding at most capacity items. It panics if
// capacity is not positive.
func NewFIFO(name string, capacity int) *FIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: FIFO %q capacity %d must be positive", name, capacity))
	}
	return &FIFO{name: name, capacity: capacity}
}

// Name reports the FIFO's name.
func (f *FIFO) Name() string { return f.name }

// Cap reports the FIFO's capacity.
func (f *FIFO) Cap() int { return f.capacity }

// Len reports the current occupancy.
func (f *FIFO) Len() int { return len(f.items) - f.head }

// Full reports whether the FIFO is at capacity.
func (f *FIFO) Full() bool { return f.Len() >= f.capacity }

// Empty reports whether the FIFO holds no items.
func (f *FIFO) Empty() bool { return f.Len() == 0 }

// MaxDepth reports the high-water occupancy observed.
func (f *FIFO) MaxDepth() int { return f.maxDepth }

// Drops reports how many pushes were rejected because the FIFO was full.
func (f *FIFO) Drops() int64 { return f.drops }

// Pushes reports how many items were accepted.
func (f *FIFO) Pushes() int64 { return f.pushes }

// Push appends an item, reporting false (and counting a drop) when full.
func (f *FIFO) Push(it Item) bool {
	if f.Full() {
		f.drops++
		return false
	}
	f.items = append(f.items, it)
	f.pushes++
	if d := f.Len(); d > f.maxDepth {
		f.maxDepth = d
	}
	return true
}

// Pop removes and returns the oldest item. ok is false when empty.
func (f *FIFO) Pop() (it Item, ok bool) {
	if f.Empty() {
		return Item{}, false
	}
	it = f.items[f.head]
	f.items[f.head] = Item{}
	f.head++
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
	} else if f.head > f.capacity && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return it, true
}

// Peek returns the oldest item without removing it.
func (f *FIFO) Peek() (it Item, ok bool) {
	if f.Empty() {
		return Item{}, false
	}
	return f.items[f.head], true
}

// Reset empties the FIFO and clears statistics.
func (f *FIFO) Reset() {
	f.items = f.items[:0]
	f.head = 0
	f.maxDepth = 0
	f.pushes = 0
	f.drops = 0
}
