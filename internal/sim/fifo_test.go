package sim

import (
	"testing"
	"testing/quick"
)

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO("q", 2)
	if !f.Empty() || f.Full() || f.Len() != 0 {
		t.Fatal("new FIFO not empty")
	}
	if !f.Push(Item{Bits: 1}) || !f.Push(Item{Bits: 2}) {
		t.Fatal("pushes into non-full FIFO failed")
	}
	if f.Push(Item{Bits: 3}) {
		t.Error("push into full FIFO succeeded")
	}
	if f.Drops() != 1 {
		t.Errorf("Drops() = %d, want 1", f.Drops())
	}
	it, ok := f.Pop()
	if !ok || it.Bits != 1 {
		t.Errorf("Pop() = %+v, %v, want Bits=1", it, ok)
	}
	it, ok = f.Pop()
	if !ok || it.Bits != 2 {
		t.Errorf("Pop() = %+v, %v, want Bits=2", it, ok)
	}
	if _, ok := f.Pop(); ok {
		t.Error("Pop() on empty FIFO succeeded")
	}
	if f.MaxDepth() != 2 {
		t.Errorf("MaxDepth() = %d, want 2", f.MaxDepth())
	}
}

func TestFIFOPeek(t *testing.T) {
	f := NewFIFO("q", 4)
	if _, ok := f.Peek(); ok {
		t.Error("Peek() on empty FIFO succeeded")
	}
	f.Push(Item{Bits: 7})
	it, ok := f.Peek()
	if !ok || it.Bits != 7 {
		t.Errorf("Peek() = %+v, %v, want Bits=7", it, ok)
	}
	if f.Len() != 1 {
		t.Error("Peek() consumed the item")
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	f := NewFIFO("q", 8)
	// Interleave pushes and pops to exercise the ring compaction path.
	next := 0
	popped := 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3 && !f.Full(); i++ {
			f.Push(Item{Bits: next})
			next++
		}
		for i := 0; i < 2; i++ {
			it, ok := f.Pop()
			if !ok {
				break
			}
			if it.Bits != popped {
				t.Fatalf("round %d: popped %d, want %d", round, it.Bits, popped)
			}
			popped++
		}
	}
	for {
		it, ok := f.Pop()
		if !ok {
			break
		}
		if it.Bits != popped {
			t.Fatalf("drain: popped %d, want %d", it.Bits, popped)
		}
		popped++
	}
	if popped != next {
		t.Errorf("popped %d items, pushed %d", popped, next)
	}
}

func TestFIFOReset(t *testing.T) {
	f := NewFIFO("q", 2)
	f.Push(Item{})
	f.Push(Item{})
	f.Push(Item{})
	f.Reset()
	if !f.Empty() || f.Drops() != 0 || f.MaxDepth() != 0 || f.Pushes() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestFIFOPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFIFO(0) did not panic")
		}
	}()
	NewFIFO("bad", 0)
}

// Property: occupancy invariants hold under arbitrary push/pop sequences.
func TestFIFOOccupancyProperty(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		q := NewFIFO("p", capacity)
		model := 0
		for _, push := range ops {
			if push {
				ok := q.Push(Item{})
				if ok != (model < capacity) {
					return false
				}
				if ok {
					model++
				}
			} else {
				_, ok := q.Pop()
				if ok != (model > 0) {
					return false
				}
				if ok {
					model--
				}
			}
			if q.Len() != model {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
