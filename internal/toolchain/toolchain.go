// Package toolchain implements the automated integration flow of §4's
// "Project implementation" stage: it loads the platform adapters,
// checks module-environment dependencies, verifies resource fit,
// invokes the (simulated) vendor CAD compilation, and packages the
// bitstream and software into a consolidated project.
package toolchain

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"harmonia/internal/adapter"
	"harmonia/internal/hdl"
	"harmonia/internal/platform"
	"harmonia/internal/role"
	"harmonia/internal/shell"
)

// Bitstream is the compiled FPGA image descriptor.
type Bitstream struct {
	Device   string
	Checksum string
	Res      hdl.Resources
	BuildLog []string
}

// Project is the consolidated deliverable: bitstream plus the software
// manifest deployed with it.
type Project struct {
	Name      string
	Device    *platform.Device
	Shell     *shell.Shell
	Role      *role.Role
	Bitstream *Bitstream
	// SoftwareManifest lists the host-software artifacts packaged with
	// the image.
	SoftwareManifest []string
}

// cadToolFor names the vendor compiler the flow invokes.
func cadToolFor(v platform.Vendor) string {
	if v == platform.Intel {
		return "quartus"
	}
	return "vivado"
}

// Integrate runs the full flow for a role on a device: unified shell
// construction, hierarchical tailoring, adapter generation, rigid
// dependency inspection, resource-fit verification, compilation and
// packaging.
func Integrate(dev *platform.Device, r *role.Role) (*Project, error) {
	if dev == nil || r == nil {
		return nil, fmt.Errorf("toolchain: nil device or role")
	}
	var log []string
	logf := func(format string, args ...any) {
		log = append(log, fmt.Sprintf(format, args...))
	}

	// 1. Platform adapters.
	devAd, err := adapter.NewDeviceAdapter(dev)
	if err != nil {
		return nil, err
	}
	venAd, err := adapter.NewVendorAdapter(dev)
	if err != nil {
		return nil, err
	}
	logf("loaded adapters for %s (%s)", dev.Name, dev.Vendor)

	// 2. Unified shell and tailoring.
	unified, err := shell.BuildUnified(dev)
	if err != nil {
		return nil, fmt.Errorf("toolchain: unified shell: %w", err)
	}
	tailored, err := unified.Tailor(r.Demands)
	if err != nil {
		return nil, fmt.Errorf("toolchain: tailoring for %s: %w", r.Name, err)
	}
	logf("tailored shell: %s", strings.Join(tailored.ComponentNames(), ", "))

	// 3. Rigid dependency inspection (§3.2): every RBB instance must be
	// compatible with the deployment environment.
	var mods []*hdl.Module
	for _, c := range tailored.Components {
		if c.RBB != nil {
			mods = append(mods, c.RBB.Instance)
		}
	}
	if errs := venAd.CheckAll(mods); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("toolchain: dependency conflicts:\n%s", strings.Join(msgs, "\n"))
	}
	logf("dependency inspection clean (%d modules)", len(mods))

	// 4. Resource fit: shell + role must fit the chip.
	total := tailored.Resources().Add(r.Logic.Res)
	if util := total.Utilization(dev.Chip.Capacity); util > 1 {
		return nil, fmt.Errorf("toolchain: design needs %.0f%% of %s",
			util*100, dev.Chip.Name)
	}
	logf("resource fit: %.1f%% of %s", total.Utilization(dev.Chip.Capacity)*100, dev.Chip.Name)

	// 4b. Timing closure: the role's requested clock must close against
	// every kept component and the role logic itself.
	minFmax := tailored.MinFmaxMHz()
	if r.ClockMHz > 0 && minFmax > 0 && r.ClockMHz > minFmax {
		return nil, fmt.Errorf("toolchain: role clock %.0f MHz exceeds shell closure %.0f MHz",
			r.ClockMHz, minFmax)
	}
	if r.Logic.FmaxMHz > 0 && r.ClockMHz > r.Logic.FmaxMHz {
		return nil, fmt.Errorf("toolchain: role clock %.0f MHz exceeds role logic closure %.0f MHz",
			r.ClockMHz, r.Logic.FmaxMHz)
	}
	if minFmax > 0 {
		logf("timing closed: %.0f MHz requested, %.0f MHz worst-path closure", r.ClockMHz, minFmax)
	}

	// 5. Compile with the vendor CAD tool.
	logf("invoking %s for %s", cadToolFor(dev.Vendor), dev.Chip.Name)
	bs := &Bitstream{
		Device:   dev.Name,
		Res:      total,
		BuildLog: log,
	}
	bs.Checksum = checksum(dev, tailored, r, devAd, venAd)

	// 6. Package.
	proj := &Project{
		Name:      fmt.Sprintf("%s@%s", r.Name, dev.Name),
		Device:    dev,
		Shell:     tailored,
		Role:      r,
		Bitstream: bs,
		SoftwareManifest: []string{
			"driver/harmonia.ko",
			"lib/libharmonia-cmd.so",
			fmt.Sprintf("app/%s", r.Name),
		},
	}
	return proj, nil
}

// checksum derives a deterministic build identity from everything that
// shapes the image.
func checksum(dev *platform.Device, s *shell.Shell, r *role.Role,
	devAd *adapter.DeviceAdapter, venAd *adapter.VendorAdapter) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s\n", dev.Name, dev.Vendor, dev.Chip.Name)
	for _, n := range s.ComponentNames() {
		fmt.Fprintln(h, n)
	}
	fmt.Fprintln(h, r.Name)
	keys := make([]string, 0, len(r.Settings))
	for k := range r.Settings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, r.Settings[k])
	}
	fmt.Fprint(h, devAd.Script())
	fmt.Fprint(h, venAd.Script())
	return hex.EncodeToString(h.Sum(nil))[:16]
}
