package toolchain

import (
	"strings"
	"testing"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/role"
	"harmonia/internal/shell"
)

func bitwRole(t *testing.T) *role.Role {
	t.Helper()
	r, err := role.New("sec-gateway", shell.Demands{
		Network: &shell.NetworkDemand{Gbps: 100, Filter: true},
		Host:    &shell.HostDemand{Bulk: true, Queues: 16},
	}, &hdl.Module{
		Name: "secgw-logic",
		Res:  hdl.Resources{LUT: 90_000, REG: 150_000, BRAM: 200},
		Code: hdl.LoC{Handcraft: 15_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIntegrateProducesProject(t *testing.T) {
	p, err := Integrate(platform.DeviceA(), bitwRole(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sec-gateway@device-a" {
		t.Errorf("project name = %q", p.Name)
	}
	if p.Bitstream == nil || p.Bitstream.Checksum == "" {
		t.Fatal("no bitstream produced")
	}
	if len(p.Bitstream.BuildLog) < 4 {
		t.Errorf("build log too short: %v", p.Bitstream.BuildLog)
	}
	if !p.Shell.Tailored {
		t.Error("shell not tailored")
	}
	if len(p.SoftwareManifest) == 0 {
		t.Error("software not packaged")
	}
	joined := strings.Join(p.Bitstream.BuildLog, "\n")
	if !strings.Contains(joined, "vivado") {
		t.Errorf("device-a build should invoke vivado:\n%s", joined)
	}
}

func TestIntegrateSameRoleAcrossDevices(t *testing.T) {
	// The portability claim: the same role integrates unmodified on
	// every device with suitable capabilities.
	for _, dev := range []*platform.Device{
		platform.DeviceA(), platform.DeviceB(), platform.DeviceC(), platform.DeviceD(),
	} {
		p, err := Integrate(dev, bitwRole(t))
		if err != nil {
			t.Errorf("Integrate on %s: %v", dev.Name, err)
			continue
		}
		if p.Device.Name != dev.Name {
			t.Errorf("project device = %s", p.Device.Name)
		}
	}
}

func TestIntegrateUsesQuartusForIntel(t *testing.T) {
	p, err := Integrate(platform.DeviceD(), bitwRole(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(p.Bitstream.BuildLog, "\n"), "quartus") {
		t.Error("device-d build should invoke quartus")
	}
}

func TestIntegrateRejectsImpossibleDemands(t *testing.T) {
	r, _ := role.New("hbm-hungry", shell.Demands{
		Memory: []shell.MemoryDemand{{Kind: ip.HBMMem}},
	}, &hdl.Module{Name: "logic", Res: hdl.Resources{LUT: 1}})
	// device-c has no memory at all.
	if _, err := Integrate(platform.DeviceC(), r); err == nil {
		t.Error("HBM demand on device-c should fail integration")
	}
}

func TestIntegrateRejectsOversizedRole(t *testing.T) {
	r, _ := role.New("huge", shell.Demands{}, &hdl.Module{
		Name: "huge-logic",
		Res:  hdl.Resources{LUT: 5_000_000},
	})
	if _, err := Integrate(platform.DeviceA(), r); err == nil {
		t.Error("oversized role should fail resource fit")
	}
}

func TestIntegrateNilArgs(t *testing.T) {
	if _, err := Integrate(nil, nil); err == nil {
		t.Error("nil args should fail")
	}
}

func TestChecksumDeterministicAndSensitive(t *testing.T) {
	p1, err := Integrate(platform.DeviceA(), bitwRole(t))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Integrate(platform.DeviceA(), bitwRole(t))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Bitstream.Checksum != p2.Bitstream.Checksum {
		t.Error("identical builds produced different checksums")
	}
	p3, err := Integrate(platform.DeviceB(), bitwRole(t))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Bitstream.Checksum == p3.Bitstream.Checksum {
		t.Error("different devices produced identical checksums")
	}
}

func TestTimingClosure(t *testing.T) {
	// A role at the default 250 MHz closes; an 800 MHz request cannot.
	fast := bitwRole(t)
	fast.ClockMHz = 800
	if _, err := Integrate(platform.DeviceA(), fast); err == nil {
		t.Error("800 MHz role closed timing against a ~320 MHz shell")
	}
	// The role's own logic can also be the limiter.
	slowLogic, _ := role.New("slow", shell.Demands{Host: &shell.HostDemand{}}, &hdl.Module{
		Name: "slow-logic", Res: hdl.Resources{LUT: 1000}, FmaxMHz: 200,
	})
	if _, err := Integrate(platform.DeviceA(), slowLogic); err == nil {
		t.Error("250 MHz request closed against 200 MHz role logic")
	}
	// Dropping the request below the logic's closure fixes it.
	slowLogic.ClockMHz = 180
	if _, err := Integrate(platform.DeviceA(), slowLogic); err != nil {
		t.Errorf("180 MHz role failed: %v", err)
	}
	// The build log records the closure.
	p, err := Integrate(platform.DeviceA(), bitwRole(t))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range p.Bitstream.BuildLog {
		if strings.Contains(line, "timing closed") {
			found = true
		}
	}
	if !found {
		t.Error("build log lacks timing closure line")
	}
}
