// Package mem provides a functional model of off-chip FPGA memory
// (DDR4 boards and HBM stacks): channels, banks, row buffers and
// access-pattern-dependent timing, plus an optional sparse backing store
// for contents. The Memory RBB's Ex-functions (address interleaving and
// the hot cache, §3.3.1) and the database-access benchmark (Fig. 18c)
// are built on this model.
package mem

import (
	"fmt"

	"harmonia/internal/sim"
)

// Interleave selects how addresses map onto channels.
type Interleave int

// Address mapping modes.
const (
	// Linear maps address ranges to channels contiguously: channel 0
	// owns the first capacity/N bytes, and sequential streams hammer a
	// single channel.
	Linear Interleave = iota
	// Striped interleaves stripe-sized blocks round-robin across
	// channels (the Memory RBB's address-interleaving Ex-function), so
	// sequential streams engage every channel.
	Striped
)

// String names the mode.
func (i Interleave) String() string {
	switch i {
	case Linear:
		return "linear"
	case Striped:
		return "striped"
	default:
		return fmt.Sprintf("interleave(%d)", int(i))
	}
}

// Config describes a memory device.
type Config struct {
	Kind            string
	Channels        int
	BytesPerChannel int64
	// ChannelGbps is the per-channel peak transfer rate.
	ChannelGbps float64
	// BanksPerChannel and RowBytes shape row-buffer locality.
	BanksPerChannel int
	RowBytes        int64
	// THit is the access latency on a row-buffer hit; TMiss on a miss
	// (precharge + activate + CAS).
	THit  sim.Time
	TMiss sim.Time
	// TRC is the bank-occupancy time of a row activation: a bank that
	// just opened a row cannot start another activation before TRC.
	TRC sim.Time
	// TFAW bounds activation rate: at most four activates may start in
	// any TFAW window per channel.
	TFAW sim.Time
	// MinBurstBytes is the smallest transfer the data bus performs; a
	// 4-byte read still occupies the bus for a full burst.
	MinBurstBytes int
	// Mapping selects the channel-interleaving mode.
	Mapping Interleave
	// StripeBytes is the interleaving granule when Mapping == Striped.
	StripeBytes int64
}

// DDR4Config returns a DDR4 board with the given channel count
// (19.2 GB/s, 16 banks, 8KB rows per channel — DDR4-2400 x64 shape).
func DDR4Config(channels int) Config {
	return Config{
		Kind:            "ddr4",
		Channels:        channels,
		BytesPerChannel: 16 << 30,
		ChannelGbps:     153.6,
		BanksPerChannel: 16,
		RowBytes:        8 << 10,
		THit:            15 * sim.Nanosecond,
		TMiss:           45 * sim.Nanosecond,
		TRC:             45 * sim.Nanosecond,
		TFAW:            30 * sim.Nanosecond,
		MinBurstBytes:   64,
		Mapping:         Linear,
		StripeBytes:     256,
	}
}

// HBMConfig returns an HBM2 stack: 32 pseudo-channels at 14.375 GB/s
// each (460 GB/s aggregate), smaller rows, slightly higher latency.
func HBMConfig() Config {
	return Config{
		Kind:            "hbm",
		Channels:        32,
		BytesPerChannel: 256 << 20,
		ChannelGbps:     115,
		BanksPerChannel: 16,
		RowBytes:        2 << 10,
		THit:            18 * sim.Nanosecond,
		TMiss:           50 * sim.Nanosecond,
		TRC:             48 * sim.Nanosecond,
		TFAW:            32 * sim.Nanosecond,
		MinBurstBytes:   32,
		Mapping:         Linear,
		StripeBytes:     256,
	}
}

// Stats aggregates device activity.
type Stats struct {
	Reads     int64
	Writes    int64
	Bytes     int64
	RowHits   int64
	RowMisses int64
}

// HitRate reports the row-buffer hit fraction.
func (s Stats) HitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

type bank struct {
	openRow   int64 // -1 when no row is open
	busyUntil sim.Time
}

type channel struct {
	busyUntil sim.Time
	banks     []bank
	// recentActs holds the start times of the last four row activations
	// for tFAW accounting (index 0 is the oldest).
	recentActs [4]sim.Time
	actCount   int
}

// Device is a functional memory device. It is not safe for concurrent
// use; models drive it from a single simulation goroutine.
type Device struct {
	cfg      Config
	channels []channel
	stats    Stats
	store    *Store
}

// NewDevice returns a device for the configuration. It panics on
// non-positive channel counts or rates, which indicate programmer error.
func NewDevice(cfg Config) *Device {
	if cfg.Channels <= 0 || cfg.ChannelGbps <= 0 || cfg.RowBytes <= 0 || cfg.BanksPerChannel <= 0 {
		panic(fmt.Sprintf("mem: invalid config %+v", cfg))
	}
	if cfg.StripeBytes <= 0 {
		cfg.StripeBytes = 256
	}
	d := &Device{cfg: cfg, channels: make([]channel, cfg.Channels), store: NewStore()}
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.BanksPerChannel)
		for b := range d.channels[i].banks {
			d.channels[i].banks[b].openRow = -1
		}
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// Capacity reports the total device capacity in bytes.
func (d *Device) Capacity() int64 {
	return int64(d.cfg.Channels) * d.cfg.BytesPerChannel
}

// SetMapping switches the interleaving mode (used by the Memory RBB's
// Ex-function and the ablation benchmarks).
func (d *Device) SetMapping(m Interleave) { d.cfg.Mapping = m }

// locate maps an address to (channel, bank, row).
func (d *Device) locate(addr int64) (ch, bk int, row int64) {
	var chIdx, chOffset int64
	switch d.cfg.Mapping {
	case Striped:
		stripe := addr / d.cfg.StripeBytes
		chIdx = stripe % int64(d.cfg.Channels)
		chOffset = (stripe/int64(d.cfg.Channels))*d.cfg.StripeBytes + addr%d.cfg.StripeBytes
	default:
		chIdx = addr / d.cfg.BytesPerChannel
		if chIdx >= int64(d.cfg.Channels) {
			chIdx = int64(d.cfg.Channels) - 1
		}
		chOffset = addr % d.cfg.BytesPerChannel
	}
	row = chOffset / d.cfg.RowBytes
	bk = int(row % int64(d.cfg.BanksPerChannel))
	return int(chIdx), bk, row
}

// Access performs a read or write of size bytes at addr, starting no
// earlier than now, and returns the completion time. Transfers that span
// rows are charged one row activation (the streaming case the
// controller pipelines); callers modelling scattered access issue one
// Access per element.
//
// Three structural constraints shape sustained rates the way real DRAM
// does: the channel data bus serializes transfers (with a minimum burst
// size), a row activation occupies its bank for TRC, and at most four
// activations may start per channel in any TFAW window. Row-buffer hits
// therefore stream at bus rate while scattered misses are
// activation-bound.
func (d *Device) Access(now sim.Time, addr int64, size int, write bool) sim.Time {
	if size <= 0 {
		return now
	}
	chIdx, bkIdx, row := d.locate(addr)
	ch := &d.channels[chIdx]
	b := &ch.banks[bkIdx]

	start := now
	if ch.busyUntil > start {
		start = ch.busyUntil
	}
	var lat sim.Time
	if b.openRow == row {
		lat = d.cfg.THit
		d.stats.RowHits++
	} else {
		// An activation: respect the bank's TRC occupancy and the
		// channel's four-activate window.
		if b.busyUntil > start {
			start = b.busyUntil
		}
		if d.cfg.TFAW > 0 {
			idx := ch.actCount % len(ch.recentActs)
			if ch.actCount >= len(ch.recentActs) {
				if earliest := ch.recentActs[idx] + d.cfg.TFAW; earliest > start {
					start = earliest
				}
			}
			ch.recentActs[idx] = start
			ch.actCount++
		}
		lat = d.cfg.TMiss
		d.stats.RowMisses++
		b.openRow = row
		if d.cfg.TRC > 0 {
			b.busyUntil = start + d.cfg.TRC
		}
	}
	burst := size
	if burst < d.cfg.MinBurstBytes {
		burst = d.cfg.MinBurstBytes
	}
	transfer := sim.Time(float64(burst) * 8 / d.cfg.ChannelGbps * float64(sim.Nanosecond))
	if transfer < 1 {
		transfer = 1
	}
	done := start + lat + transfer
	// The channel's data bus is occupied for the transfer, not the
	// activation latency, so back-to-back row hits stream at full rate.
	ch.busyUntil = start + transfer
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	d.stats.Bytes += int64(size)
	return done
}

// Write stores data at addr in the backing store and models the timing;
// it returns the completion time.
func (d *Device) Write(now sim.Time, addr int64, data []byte) sim.Time {
	d.store.Write(addr, data)
	return d.Access(now, addr, len(data), true)
}

// Read fetches size bytes at addr from the backing store and models the
// timing; it returns the data and completion time.
func (d *Device) Read(now sim.Time, addr int64, size int) ([]byte, sim.Time) {
	data := d.store.Read(addr, size)
	done := d.Access(now, addr, size, false)
	return data, done
}

// Peek fetches contents without modelling timing — used by on-chip
// caches that already charged their own latency.
func (d *Device) Peek(addr int64, size int) []byte {
	return d.store.Read(addr, size)
}
