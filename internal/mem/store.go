package mem

// Store is a sparse byte-addressable backing store, allocated in pages
// so multi-gigabyte address spaces cost only what is touched.
type Store struct {
	pages map[int64][]byte
}

const pageSize = 4096

// NewStore returns an empty store.
func NewStore() *Store { return &Store{pages: make(map[int64][]byte)} }

// Write copies data into the store at addr.
func (s *Store) Write(addr int64, data []byte) {
	for len(data) > 0 {
		page := addr / pageSize
		off := int(addr % pageSize)
		p, ok := s.pages[page]
		if !ok {
			p = make([]byte, pageSize)
			s.pages[page] = p
		}
		n := copy(p[off:], data)
		data = data[n:]
		addr += int64(n)
	}
}

// Read returns size bytes starting at addr; untouched bytes read zero.
func (s *Store) Read(addr int64, size int) []byte {
	out := make([]byte, size)
	dst := out
	for len(dst) > 0 {
		page := addr / pageSize
		off := int(addr % pageSize)
		n := pageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if p, ok := s.pages[page]; ok {
			copy(dst[:n], p[off:off+n])
		}
		dst = dst[n:]
		addr += int64(n)
	}
	return out
}

// PagesTouched reports how many pages have been allocated.
func (s *Store) PagesTouched() int { return len(s.pages) }
