package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"harmonia/internal/sim"
)

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore()
	data := []byte("hello, memory")
	s.Write(100, data)
	got := s.Read(100, len(data))
	if !bytes.Equal(got, data) {
		t.Errorf("Read = %q, want %q", got, data)
	}
	// Untouched regions read zero.
	zero := s.Read(1_000_000, 8)
	for _, b := range zero {
		if b != 0 {
			t.Fatal("untouched memory non-zero")
		}
	}
}

func TestStoreCrossesPages(t *testing.T) {
	s := NewStore()
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i)
	}
	s.Write(pageSize-17, data)
	got := s.Read(pageSize-17, len(data))
	if !bytes.Equal(got, data) {
		t.Error("page-crossing round trip failed")
	}
	if s.PagesTouched() < 3 {
		t.Errorf("PagesTouched = %d, want >= 3", s.PagesTouched())
	}
}

func TestStoreRoundTripProperty(t *testing.T) {
	f := func(addrRaw uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		s := NewStore()
		addr := int64(addrRaw)
		s.Write(addr, data)
		return bytes.Equal(s.Read(addr, len(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowBufferHitVsMiss(t *testing.T) {
	d := NewDevice(DDR4Config(1))
	// First access opens the row (miss); second to the same row hits.
	t1 := d.Access(0, 0, 64, false)
	busy := d.channels[0].busyUntil
	t2 := d.Access(busy, 64, 64, false)
	missLat := t1 - 0
	hitLat := t2 - busy
	if hitLat >= missLat {
		t.Errorf("hit latency %v not below miss latency %v", hitLat, missLat)
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	// Fig. 18c shape: sequential access beats random access.
	run := func(random bool) sim.Time {
		d := NewDevice(DDR4Config(2))
		d.SetMapping(Striped)
		var now sim.Time
		const n = 2000
		for i := 0; i < n; i++ {
			var addr int64
			if random {
				// Jump a row-sized stride with a large prime to defeat
				// the row buffer.
				addr = (int64(i) * 1_048_583 * 8192) % (1 << 30)
			} else {
				addr = int64(i) * 64
			}
			now = d.Access(now, addr, 64, false)
		}
		return now
	}
	seq := run(false)
	rnd := run(true)
	if seq >= rnd {
		t.Errorf("sequential %v not faster than random %v", seq, rnd)
	}
}

func TestStripingEngagesAllChannels(t *testing.T) {
	linear := NewDevice(DDR4Config(2))
	striped := NewDevice(DDR4Config(2))
	striped.SetMapping(Striped)
	// Stream 1MB sequentially in 256B chunks.
	var tl, ts sim.Time
	for i := 0; i < 4096; i++ {
		addr := int64(i) * 256
		tl = linear.Access(tl, addr, 256, false)
		ts = striped.Access(ts, addr, 256, false)
	}
	// With striping, consecutive chunks land on alternating channels so
	// the stream sustains ~2x the single-channel bandwidth. Timing is
	// serialized per call here, so compare channel busy spread instead.
	if striped.channels[0].busyUntil == 0 || striped.channels[1].busyUntil == 0 {
		t.Error("striped mapping left a channel idle")
	}
	if linear.channels[1].busyUntil != 0 {
		t.Error("linear mapping touched the second channel for a small stream")
	}
}

func TestHBMBandwidthExceedsDDR(t *testing.T) {
	hbm := NewDevice(HBMConfig())
	ddr := NewDevice(DDR4Config(2))
	if hbm.Config().ChannelGbps*float64(hbm.Config().Channels) <=
		ddr.Config().ChannelGbps*float64(ddr.Config().Channels) {
		t.Error("HBM aggregate bandwidth should exceed DDR")
	}
	if hbm.Capacity() >= ddr.Capacity() {
		t.Error("HBM capacity should be below the DDR board capacity")
	}
}

func TestDeviceReadWrite(t *testing.T) {
	d := NewDevice(DDR4Config(1))
	done := d.Write(0, 4096, []byte{1, 2, 3, 4})
	if done <= 0 {
		t.Error("write completed instantly")
	}
	data, done2 := d.Read(done, 4096, 4)
	if !bytes.Equal(data, []byte{1, 2, 3, 4}) {
		t.Errorf("Read = %v", data)
	}
	if done2 <= done {
		t.Error("read completed instantly")
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Bytes != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAccessZeroSize(t *testing.T) {
	d := NewDevice(DDR4Config(1))
	if done := d.Access(42, 0, 0, false); done != 42 {
		t.Errorf("zero-size access took time: %v", done)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
	s = Stats{RowHits: 3, RowMisses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", s.HitRate())
	}
}

func TestNewDevicePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDevice with zero channels did not panic")
		}
	}()
	NewDevice(Config{})
}

func TestInterleaveString(t *testing.T) {
	if Linear.String() != "linear" || Striped.String() != "striped" {
		t.Error("Interleave.String mismatch")
	}
	if Interleave(5).String() != "interleave(5)" {
		t.Error("unknown interleave formatting mismatch")
	}
}

func TestBankOccupancySerializesMisses(t *testing.T) {
	// Two back-to-back activations of different rows in the same bank
	// must be spaced by at least TRC.
	cfg := DDR4Config(1)
	d := NewDevice(cfg)
	// Rows 0 and 16 map to the same bank (16 banks per channel).
	first := d.Access(0, 0, 64, false)
	second := d.Access(0, 16*cfg.RowBytes, 64, false)
	if second-first < cfg.TRC-cfg.TMiss {
		t.Errorf("same-bank activations spaced %v, want >= TRC gap", second-first)
	}
}

func TestFAWLimitsActivationRate(t *testing.T) {
	// Independent row misses to distinct banks: the fifth activation
	// in a channel must wait for the tFAW window.
	cfg := DDR4Config(1)
	d := NewDevice(cfg)
	var times []sim.Time
	for i := 0; i < 5; i++ {
		// Different banks, all misses.
		addr := int64(i) * cfg.RowBytes
		times = append(times, d.Access(0, addr, 64, false))
	}
	// First four issue at t=0 (bus permitting); the fifth is pushed out
	// by tFAW.
	if times[4]-times[3] < cfg.TFAW/2 {
		t.Errorf("fifth activation at %v vs fourth %v: tFAW not enforced", times[4], times[3])
	}
}

func TestMinBurstCharged(t *testing.T) {
	cfg := DDR4Config(1)
	d := NewDevice(cfg)
	d.Access(0, 0, 4, false) // 4B read
	// The bus must be busy for a full MinBurstBytes transfer.
	wantBusy := sim.Time(float64(cfg.MinBurstBytes) * 8 / cfg.ChannelGbps * float64(sim.Nanosecond))
	if d.channels[0].busyUntil < wantBusy {
		t.Errorf("bus busy %v after 4B read, want >= %v (min burst)", d.channels[0].busyUntil, wantBusy)
	}
}

func TestRowHitsStreamAtBusRate(t *testing.T) {
	// Independent row hits saturate the channel: sustained rate within
	// 10% of the bus rate.
	cfg := DDR4Config(1)
	d := NewDevice(cfg)
	d.Access(0, 0, 64, false) // open the row
	const n = 1000
	var last sim.Time
	for i := 1; i <= n; i++ {
		if done := d.Access(0, int64(i%100)*64, 64, false); done > last {
			last = done
		}
	}
	gbps := float64(n*64*8) / last.Nanoseconds()
	if gbps < cfg.ChannelGbps*0.9 {
		t.Errorf("row-hit stream %.1f Gbps, want near %.1f", gbps, cfg.ChannelGbps)
	}
}
