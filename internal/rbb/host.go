package rbb

import (
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/pcie"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/wrapper"
)

// HostRBB is the functional Host building block: a PCIe DMA engine
// instance behind an interface wrapper, with the multi-queue isolation
// Ex-function (1K queues, active-queue scheduling) and per-queue
// monitoring (§3.3.1).
type HostRBB struct {
	desc   *Desc
	spec   ip.DMASpec
	Engine *pcie.Engine
	path   *wrapper.DataPath
	// queueOwner maps queue id to tenant for isolation accounting.
	queueOwner map[int]int
	traffic    Counters
}

// NewHost builds a Host RBB for a vendor DMA engine at the given PCIe
// generation/lanes, with the role side at userClk and userWidth.
func NewHost(vendor platform.Vendor, gen, lanes int, variant ip.DMAVariant, userClk *sim.Clock, userWidth int) (*HostRBB, error) {
	spec, err := ip.SpecForDMA(gen, lanes)
	if err != nil {
		return nil, err
	}
	mod, err := ip.DMAModule(vendor, gen, lanes, variant)
	if err != nil {
		return nil, err
	}
	wrapped, overhead, err := wrapper.Wrap(mod)
	if err != nil {
		return nil, err
	}
	link, err := pcie.NewLink(fmt.Sprintf("pcie-gen%dx%d", gen, lanes), gen, lanes)
	if err != nil {
		return nil, err
	}
	engine, err := pcie.NewEngine(link, pcie.DefaultEngineConfig())
	if err != nil {
		return nil, err
	}
	dmaClk := sim.NewClock("dma", spec.CoreMHz)
	path, err := wrapper.NewDataPath("host-rbb", dmaClk, spec.DataWidth, userClk, userWidth)
	if err != nil {
		return nil, err
	}
	return &HostRBB{
		desc:       hostDesc(wrapped, overhead),
		spec:       spec,
		Engine:     engine,
		path:       path,
		queueOwner: make(map[int]int),
	}, nil
}

func hostDesc(wrapped *hdl.Module, overhead hdl.Resources) *Desc {
	return &Desc{
		Kind:         HostKind,
		Instance:     wrapped,
		WrapOverhead: overhead,
		InstanceGlue: hdl.LoC{Handcraft: 1_600},
		Reusable: ReusableLogic{
			ExFunction: hdl.LoC{Handcraft: 3_800}, // multi-queue isolation + scheduler
			Control:    hdl.LoC{Handcraft: 1_300},
			Monitoring: hdl.LoC{Handcraft: 1_100}, // per-queue depth/packets/speed
			Res:        hdl.Resources{LUT: 11_000, REG: 16_500, BRAM: 32, URAM: 12},
			Params: []hdl.Param{
				{Name: "QUEUES_USED", Default: "64", Scope: hdl.RoleOriented},
				{Name: "QUEUE_ISOLATION", Default: "1", Scope: hdl.RoleOriented},
				{Name: "CTRL_QUEUE", Default: "1", Scope: hdl.RoleOriented},
				{Name: "PER_QUEUE_STATS", Default: "1", Scope: hdl.RoleOriented},
			},
		},
	}
}

// Desc returns the structural description.
func (h *HostRBB) Desc() *Desc { return h.desc }

// Spec returns the DMA engine specification.
func (h *HostRBB) Spec() ip.DMASpec { return h.spec }

// AssignQueue binds a queue to a tenant; a queue may serve one tenant.
func (h *HostRBB) AssignQueue(queue, tenant int) error {
	if queue < 0 || queue >= h.spec.QueueCount {
		return fmt.Errorf("rbb: queue %d out of range [0,%d)", queue, h.spec.QueueCount)
	}
	if owner, taken := h.queueOwner[queue]; taken && owner != tenant {
		return fmt.Errorf("rbb: queue %d already owned by tenant %d", queue, owner)
	}
	h.queueOwner[queue] = tenant
	return nil
}

// ReleaseQueue returns a queue to the unowned pool — the host half of
// reclaiming a retired tenant range on rebuild. Releasing an unowned
// queue is a no-op.
func (h *HostRBB) ReleaseQueue(queue int) {
	delete(h.queueOwner, queue)
}

// Owner reports the tenant owning a queue.
func (h *HostRBB) Owner(queue int) (int, bool) {
	t, ok := h.queueOwner[queue]
	return t, ok
}

// Send moves bytes to the host on a queue. The data crosses the wrapper
// into the DMA clock domain, then posts to the engine.
func (h *HostRBB) Send(now sim.Time, queue int, bytes int) (done sim.Time, err error) {
	through := h.path.Transfer(now, bytes)
	if err := h.Engine.Post(through, queue, pcie.DeviceToHost, bytes); err != nil {
		return 0, err
	}
	h.traffic.Record(bytes, false)
	return h.Engine.Drain(through), nil
}

// Receive moves bytes from the host on a queue.
func (h *HostRBB) Receive(now sim.Time, queue int, bytes int) (done sim.Time, err error) {
	if err := h.Engine.Post(now, queue, pcie.HostToDevice, bytes); err != nil {
		return 0, err
	}
	linkDone := h.Engine.Drain(now)
	h.traffic.Record(bytes, false)
	return h.path.Transfer(linkDone, bytes), nil
}

// Stats reports aggregate traffic counters.
func (h *HostRBB) Stats() Counters { return h.traffic }

// QueueStats reports per-queue monitoring.
func (h *HostRBB) QueueStats(queue int) (pcie.QueueStats, error) {
	return h.Engine.QueueStats(queue)
}

// WrapperLatency reports the wrapper's fixed latency.
func (h *HostRBB) WrapperLatency() sim.Time { return h.path.FixedLatency() }

// HostGbps reports the PCIe link bandwidth.
func (h *HostRBB) HostGbps() float64 { return h.Engine.Link().Gbps() }

// SetNative toggles native mode (no wrapper translation pipeline).
func (h *HostRBB) SetNative(on bool) { h.path.SetBypass(on) }
