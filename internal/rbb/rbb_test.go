package rbb

import (
	"testing"

	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
)

func userClk() *sim.Clock { return sim.NewClock("user", 250) }

func TestCounters(t *testing.T) {
	var c Counters
	c.Record(1000, false)
	c.Record(1000, false)
	c.Record(500, true)
	if c.Units != 2 || c.Bytes != 2000 || c.Drops != 1 {
		t.Errorf("counters = %+v", c)
	}
	if got := c.Gbps(1000 * sim.Nanosecond); got != 16 {
		t.Errorf("Gbps = %v, want 16", got)
	}
	if got := c.Mpps(sim.Microsecond); got != 2 {
		t.Errorf("Mpps = %v, want 2", got)
	}
	if lr := c.LossRate(); lr < 0.33 || lr > 0.34 {
		t.Errorf("LossRate = %v", lr)
	}
	if (&Counters{}).Gbps(0) != 0 || (&Counters{}).LossRate() != 0 {
		t.Error("zero counters should report zero rates")
	}
}

func TestReuseRatesMatchPaperBands(t *testing.T) {
	// Fig. 14: RBB reuse 69-76% cross-vendor, 84-93% cross-chip.
	rbbs := map[Kind]*Desc{}
	n, err := NewNetwork(platform.Xilinx, ip.Speed100G, userClk(), 512)
	if err != nil {
		t.Fatal(err)
	}
	rbbs[NetworkKind] = n.Desc()
	m, err := NewMemory(platform.Xilinx, ip.DDR4Mem, userClk(), 512)
	if err != nil {
		t.Fatal(err)
	}
	rbbs[MemoryKind] = m.Desc()
	h, err := NewHost(platform.Xilinx, 4, 16, ip.SGDMA, userClk(), 512)
	if err != nil {
		t.Fatal(err)
	}
	rbbs[HostKind] = h.Desc()

	for kind, d := range rbbs {
		cv := d.Reuse(CrossVendor)
		if cv.ReuseRate < 0.60 || cv.ReuseRate > 0.80 {
			t.Errorf("%s cross-vendor reuse = %.2f, want ~0.69-0.76", kind, cv.ReuseRate)
		}
		cc := d.Reuse(CrossChip)
		if cc.ReuseRate < 0.80 || cc.ReuseRate > 0.95 {
			t.Errorf("%s cross-chip reuse = %.2f, want ~0.84-0.93", kind, cc.ReuseRate)
		}
		if cc.ReuseRate <= cv.ReuseRate {
			t.Errorf("%s cross-chip reuse should exceed cross-vendor", kind)
		}
		same := d.Reuse(SamePlatform)
		if same.ReuseRate != 1 {
			t.Errorf("%s same-platform reuse = %.2f, want 1", kind, same.ReuseRate)
		}
		if cv.ReusedLoC+cv.RedevLoC != cv.TotalLoC {
			t.Errorf("%s reuse report inconsistent: %+v", kind, cv)
		}
	}
}

func TestDescModuleComposition(t *testing.T) {
	n, err := NewNetwork(platform.Intel, ip.Speed100G, userClk(), 512)
	if err != nil {
		t.Fatal(err)
	}
	d := n.Desc()
	m := d.Module()
	if m.Vendor != "harmonia" {
		t.Errorf("composite vendor = %q", m.Vendor)
	}
	if m.Res != d.Instance.Res.Add(d.Reusable.Res) {
		t.Error("composite resources wrong")
	}
	if m.ParamCount() != d.Instance.ParamCount()+len(d.Reusable.Params) {
		t.Error("composite params wrong")
	}
	if m.Deps["cad"] != "quartus" {
		t.Error("instance deps not carried through")
	}
	if d.TotalRes() != m.Res {
		t.Error("TotalRes mismatch")
	}
}

func TestMigrationScopeString(t *testing.T) {
	if SamePlatform.String() != "same-platform" || CrossChip.String() != "cross-chip" ||
		CrossVendor.String() != "cross-vendor" {
		t.Error("MigrationScope.String mismatch")
	}
	if MigrationScope(9).String() != "scope(9)" {
		t.Error("unknown scope formatting")
	}
}

func TestDescConstructors(t *testing.T) {
	n, err := NewNetworkDesc(platform.Xilinx, ip.Speed25G)
	if err != nil || n.Kind != NetworkKind {
		t.Errorf("NewNetworkDesc: %v", err)
	}
	m, err := NewMemoryDesc(platform.Intel, ip.DDR4Mem)
	if err != nil || m.Kind != MemoryKind {
		t.Errorf("NewMemoryDesc: %v", err)
	}
	h, err := NewHostDesc(platform.Xilinx, 5, 16, ip.BDMA)
	if err != nil || h.Kind != HostKind {
		t.Errorf("NewHostDesc: %v", err)
	}
	// Error propagation from the IP layer.
	if _, err := NewNetworkDesc(platform.Xilinx, ip.Speed(7)); err == nil {
		t.Error("bad speed accepted")
	}
	if _, err := NewMemoryDesc(platform.Intel, ip.HBMMem); err == nil {
		t.Error("intel HBM accepted")
	}
	if _, err := NewHostDesc(platform.Xilinx, 9, 16, ip.BDMA); err == nil {
		t.Error("bad generation accepted")
	}
}

func TestSetNativeTogglesLatency(t *testing.T) {
	clk := userClk()
	n, err := NewNetwork(platform.Xilinx, ip.Speed100G, clk, 512)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := n.WrapperLatency()
	n.SetNative(true)
	if native := n.WrapperLatency(); native >= wrapped {
		t.Errorf("native latency %v not below wrapped %v", native, wrapped)
	}
	if n.Spec().Speed != ip.Speed100G {
		t.Error("Spec lost")
	}
	m, _ := NewMemory(platform.Xilinx, ip.DDR4Mem, clk, 512)
	mw := m.WrapperLatency()
	m.SetNative(true)
	if m.WrapperLatency() >= mw {
		t.Error("memory SetNative did not reduce latency")
	}
	h, _ := NewHost(platform.Xilinx, 4, 16, ip.SGDMA, clk, 512)
	hw := h.WrapperLatency()
	h.SetNative(true)
	if h.WrapperLatency() >= hw {
		t.Error("host SetNative did not reduce latency")
	}
}

func TestMppsZeroElapsed(t *testing.T) {
	var c Counters
	c.Record(100, false)
	if c.Mpps(0) != 0 {
		t.Error("Mpps(0) should be 0")
	}
}
