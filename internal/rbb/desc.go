package rbb

import (
	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/wrapper"
)

// Structural Desc constructors. These build the composite description
// (wrapped vendor instance + reusable logic) without instantiating the
// functional datapath — the form the shell builder consumes when it
// assembles and tailors shells.

// NewNetworkDesc returns the Network RBB description for a vendor MAC
// at the given line rate.
func NewNetworkDesc(vendor platform.Vendor, speed ip.Speed) (*Desc, error) {
	mod, err := ip.MACModule(vendor, speed)
	if err != nil {
		return nil, err
	}
	wrapped, overhead, err := wrapper.Wrap(mod)
	if err != nil {
		return nil, err
	}
	return networkDesc(wrapped, overhead), nil
}

// NewMemoryDesc returns the Memory RBB description for a vendor memory
// controller.
func NewMemoryDesc(vendor platform.Vendor, kind ip.MemKind) (*Desc, error) {
	mod, err := ip.MemModule(vendor, kind)
	if err != nil {
		return nil, err
	}
	wrapped, overhead, err := wrapper.Wrap(mod)
	if err != nil {
		return nil, err
	}
	return memoryDesc(wrapped, overhead), nil
}

// NewHostDesc returns the Host RBB description for a vendor DMA engine.
func NewHostDesc(vendor platform.Vendor, gen, lanes int, variant ip.DMAVariant) (*Desc, error) {
	mod, err := ip.DMAModule(vendor, gen, lanes, variant)
	if err != nil {
		return nil, err
	}
	wrapped, overhead, err := wrapper.Wrap(mod)
	if err != nil {
		return nil, err
	}
	return hostDesc(wrapped, overhead), nil
}
