package rbb

import (
	"container/list"
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/mem"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/wrapper"
)

// HotCache is the Memory RBB's on-chip cache Ex-function: consecutively
// accessed data is kept on-chip for fast access, covering patterns where
// interleaved access is impossible (§3.3.1). It is an LRU over
// fixed-size lines with O(1) lookup and eviction.
type HotCache struct {
	enabled  bool
	lineSize int64
	capacity int
	lines    map[int64]*list.Element // line tag -> order entry
	order    *list.List              // front = most recent; values are tags
	hitTime  sim.Time
	hits     int64
	misses   int64
}

// NewHotCache returns an enabled LRU cache of capacity lines.
func NewHotCache(capacityLines int, lineSize int64, hitTime sim.Time) *HotCache {
	if capacityLines <= 0 || lineSize <= 0 {
		panic(fmt.Sprintf("rbb: hot cache capacity %d / line %d invalid", capacityLines, lineSize))
	}
	return &HotCache{
		enabled:  true,
		lineSize: lineSize,
		capacity: capacityLines,
		lines:    make(map[int64]*list.Element, capacityLines),
		order:    list.New(),
		hitTime:  hitTime,
	}
}

// SetEnabled switches the cache on or off.
func (h *HotCache) SetEnabled(on bool) { h.enabled = on }

// Lookup checks addr; on hit it refreshes LRU order and returns the
// on-chip latency. On miss it fills the line (evicting LRU if needed).
func (h *HotCache) Lookup(addr int64) (lat sim.Time, hit bool) {
	if !h.enabled {
		return 0, false
	}
	tag := addr / h.lineSize
	if e, ok := h.lines[tag]; ok {
		h.order.MoveToFront(e)
		h.hits++
		return h.hitTime, true
	}
	h.misses++
	if h.order.Len() >= h.capacity {
		oldest := h.order.Back()
		h.order.Remove(oldest)
		delete(h.lines, oldest.Value.(int64))
	}
	h.lines[tag] = h.order.PushFront(tag)
	return 0, false
}

// Hits reports cache hits.
func (h *HotCache) Hits() int64 { return h.hits }

// Misses reports cache misses.
func (h *HotCache) Misses() int64 { return h.misses }

// MemoryRBB is the functional Memory building block: a DDR or HBM
// controller instance behind an interface wrapper, with the address
// interleaving and hot cache Ex-functions.
type MemoryRBB struct {
	desc   *Desc
	spec   ip.MemSpec
	dev    *mem.Device
	Cache  *HotCache
	path   *wrapper.DataPath
	access Counters
}

// NewMemory builds a Memory RBB for a vendor controller over the given
// memory kind, with the role side at userClk and userWidth.
func NewMemory(vendor platform.Vendor, kind ip.MemKind, userClk *sim.Clock, userWidth int) (*MemoryRBB, error) {
	spec, err := ip.SpecForMem(kind)
	if err != nil {
		return nil, err
	}
	mod, err := ip.MemModule(vendor, kind)
	if err != nil {
		return nil, err
	}
	wrapped, overhead, err := wrapper.Wrap(mod)
	if err != nil {
		return nil, err
	}
	var cfg mem.Config
	if kind == ip.HBMMem {
		cfg = mem.HBMConfig()
	} else {
		cfg = mem.DDR4Config(spec.Channels)
	}
	memClk := sim.NewClock(string(kind), spec.CoreMHz)
	path, err := wrapper.NewDataPath("mem-rbb", memClk, spec.DataWidth, userClk, userWidth)
	if err != nil {
		return nil, err
	}
	m := &MemoryRBB{
		desc:  memoryDesc(wrapped, overhead),
		spec:  spec,
		dev:   mem.NewDevice(cfg),
		Cache: NewHotCache(4096, 64, 12*sim.Nanosecond),
		path:  path,
	}
	// Address interleaving is on by default — the Ex-function's point.
	m.SetInterleaving(true)
	return m, nil
}

func memoryDesc(wrapped *hdl.Module, overhead hdl.Resources) *Desc {
	return &Desc{
		Kind:         MemoryKind,
		Instance:     wrapped,
		WrapOverhead: overhead,
		InstanceGlue: hdl.LoC{Handcraft: 1_200},
		Reusable: ReusableLogic{
			ExFunction: hdl.LoC{Handcraft: 3_400}, // interleaving + hot cache
			Control:    hdl.LoC{Handcraft: 1_000},
			Monitoring: hdl.LoC{Handcraft: 800},
			Res:        hdl.Resources{LUT: 7_800, REG: 11_500, BRAM: 24, URAM: 8},
			Params: []hdl.Param{
				{Name: "INTERLEAVE", Default: "1", Scope: hdl.RoleOriented},
				{Name: "HOT_CACHE_LINES", Default: "4096", Scope: hdl.RoleOriented},
				{Name: "CHANNELS_USED", Default: "all", Scope: hdl.RoleOriented},
			},
		},
	}
}

// Desc returns the structural description.
func (m *MemoryRBB) Desc() *Desc { return m.desc }

// Spec returns the controller specification.
func (m *MemoryRBB) Spec() ip.MemSpec { return m.spec }

// Device exposes the underlying memory device (for workload setup).
func (m *MemoryRBB) Device() *mem.Device { return m.dev }

// SetInterleaving toggles the address-interleaving Ex-function.
func (m *MemoryRBB) SetInterleaving(on bool) {
	if on {
		m.dev.SetMapping(mem.Striped)
	} else {
		m.dev.SetMapping(mem.Linear)
	}
}

// Read performs a timed read of size bytes at addr.
func (m *MemoryRBB) Read(now sim.Time, addr int64, size int) (data []byte, done sim.Time) {
	m.access.Record(size, false)
	if lat, hit := m.Cache.Lookup(addr); hit {
		// Serve on-chip, but still move the data across the wrapper.
		done = m.path.Transfer(now+lat, size)
		return m.dev.Peek(addr, size), done
	}
	data, devDone := m.dev.Read(now, addr, size)
	done = m.path.Transfer(devDone, size)
	return data, done
}

// Write performs a timed write of data at addr.
func (m *MemoryRBB) Write(now sim.Time, addr int64, data []byte) (done sim.Time) {
	m.access.Record(len(data), false)
	m.Cache.Lookup(addr) // writes allocate
	through := m.path.Transfer(now, len(data))
	return m.dev.Write(through, addr, data)
}

// Stats reports access counters.
func (m *MemoryRBB) Stats() Counters { return m.access }

// WrapperLatency reports the wrapper's fixed latency.
func (m *MemoryRBB) WrapperLatency() sim.Time { return m.path.FixedLatency() }

// SetNative toggles native mode (no wrapper translation pipeline).
func (m *MemoryRBB) SetNative(on bool) { m.path.SetBypass(on) }
