package rbb

import (
	"testing"

	"harmonia/internal/ip"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
)

var (
	localMAC = net.HWAddr{0x02, 0, 0, 0, 0, 1}
	otherMAC = net.HWAddr{0x02, 0, 0, 0, 0, 9}
	mcastMAC = net.HWAddr{0x01, 0, 0x5e, 0, 0, 1}
)

func testPacket(dst net.HWAddr, size int, port uint16) *net.Packet {
	return &net.Packet{
		DstMAC: dst, SrcMAC: otherMAC,
		SrcIP: net.IPv4(10, 0, 0, 1), DstIP: net.IPv4(10, 0, 1, 1),
		Proto: net.ProtoTCP, SrcPort: port, DstPort: 443,
		WireBytes: size,
	}
}

func TestPacketFilter(t *testing.T) {
	f := NewPacketFilter()
	f.AddLocal(localMAC)
	if !f.Admit(testPacket(localMAC, 64, 1)) {
		t.Error("local packet filtered")
	}
	if f.Admit(testPacket(otherMAC, 64, 1)) {
		t.Error("foreign packet admitted")
	}
	// Multicast: only subscribed groups pass.
	if f.Admit(testPacket(mcastMAC, 64, 1)) {
		t.Error("unsubscribed multicast admitted")
	}
	if err := f.Subscribe(mcastMAC); err != nil {
		t.Fatal(err)
	}
	if !f.Admit(testPacket(mcastMAC, 64, 1)) {
		t.Error("subscribed multicast filtered")
	}
	if err := f.Subscribe(otherMAC); err == nil {
		t.Error("subscribing a unicast address should fail")
	}
	if f.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", f.Dropped())
	}
	// Disabled filter passes everything.
	f.SetEnabled(false)
	if !f.Admit(testPacket(otherMAC, 64, 1)) {
		t.Error("disabled filter still filtering")
	}
}

func TestFlowDirectorIsolation(t *testing.T) {
	d := NewFlowDirector()
	if err := d.AddTenant(1, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := d.AddTenant(2, 8, 16); err != nil {
		t.Fatal(err)
	}
	// Overlapping ranges rejected.
	if err := d.AddTenant(3, 4, 12); err == nil {
		t.Error("overlapping tenant range accepted")
	}
	if err := d.AddTenant(4, 5, 5); err == nil {
		t.Error("empty tenant range accepted")
	}
	vip1, vip2 := net.IPv4(20, 0, 0, 1), net.IPv4(20, 0, 0, 2)
	if err := d.AddRule(vip1, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRule(vip2, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRule(vip1, 99); err == nil {
		t.Error("rule for unknown tenant accepted")
	}
	// Flows to each VIP land only in their tenant's queue range.
	for port := uint16(0); port < 200; port++ {
		p := testPacket(localMAC, 128, port)
		p.DstIP = vip1
		q, tenant, ok := d.Direct(p)
		if !ok || tenant != 1 || q < 0 || q >= 8 {
			t.Fatalf("vip1 flow -> q=%d tenant=%d ok=%v", q, tenant, ok)
		}
		p.DstIP = vip2
		q, tenant, ok = d.Direct(p)
		if !ok || tenant != 2 || q < 8 || q >= 16 {
			t.Fatalf("vip2 flow -> q=%d tenant=%d ok=%v", q, tenant, ok)
		}
	}
	// Unmatched flows drop by default.
	p := testPacket(localMAC, 128, 1)
	if _, _, ok := d.Direct(p); ok {
		t.Error("unmatched flow routed")
	}
	if d.Misses() == 0 {
		t.Error("miss not counted")
	}
	// ... unless a default tenant is set.
	d.SetDefaultTenant(1)
	if _, tenant, ok := d.Direct(p); !ok || tenant != 1 {
		t.Error("default tenant not applied")
	}
}

func TestFlowDirectorStableMapping(t *testing.T) {
	d := NewFlowDirector()
	d.AddTenant(1, 0, 16)
	d.SetDefaultTenant(1)
	p := testPacket(localMAC, 128, 7777)
	q1, _, _ := d.Direct(p)
	q2, _, _ := d.Direct(p)
	if q1 != q2 {
		t.Error("same flow mapped to different queues")
	}
}

func newNetRBB(t *testing.T, vendor platform.Vendor, speed ip.Speed) *NetworkRBB {
	t.Helper()
	n, err := NewNetwork(vendor, speed, userClk(), 512)
	if err != nil {
		t.Fatal(err)
	}
	n.Filter.AddLocal(localMAC)
	n.Director.AddTenant(0, 0, 64)
	n.Director.SetDefaultTenant(0)
	return n
}

func TestNetworkIngressDelivers(t *testing.T) {
	n := newNetRBB(t, platform.Xilinx, ip.Speed100G)
	done, q, ok := n.Ingress(0, testPacket(localMAC, 1024, 1))
	if !ok {
		t.Fatal("packet dropped")
	}
	if q < 0 || q >= 64 {
		t.Errorf("queue %d out of range", q)
	}
	if done <= 0 {
		t.Error("delivery took no time")
	}
	if n.RxStats().Units != 1 {
		t.Errorf("rx stats = %+v", n.RxStats())
	}
}

func TestNetworkIngressFilters(t *testing.T) {
	n := newNetRBB(t, platform.Xilinx, ip.Speed100G)
	_, _, ok := n.Ingress(0, testPacket(otherMAC, 1024, 1))
	if ok {
		t.Error("foreign packet delivered")
	}
	if n.RxStats().Drops != 1 {
		t.Errorf("drop not counted: %+v", n.RxStats())
	}
}

func TestNetworkThroughputNearLineRate(t *testing.T) {
	// Sustained ingress at large packets approaches the MAC line rate —
	// the wrapper must not cost throughput (Fig. 10a).
	n := newNetRBB(t, platform.Xilinx, ip.Speed100G)
	const pkts, size = 3000, 1024
	var done sim.Time
	for i := 0; i < pkts; i++ {
		d, _, ok := n.Ingress(0, testPacket(localMAC, size, uint16(i)))
		if !ok {
			t.Fatal("packet dropped")
		}
		done = d
	}
	gbps := float64(pkts*size*8) / done.Nanoseconds()
	eff := net.EffectiveGbps(100, size)
	if gbps < eff*0.97 {
		t.Errorf("sustained %.1f Gbps, want about %.1f", gbps, eff)
	}
}

func TestNetworkWrapperLatencyNanoseconds(t *testing.T) {
	n := newNetRBB(t, platform.Intel, ip.Speed100G)
	if lat := n.WrapperLatency(); lat > 100*sim.Nanosecond {
		t.Errorf("wrapper latency %v, want tens of ns", lat)
	}
}

func TestNetworkEgress(t *testing.T) {
	n := newNetRBB(t, platform.Xilinx, ip.Speed25G)
	done := n.Egress(0, testPacket(otherMAC, 512, 1))
	if done <= 0 {
		t.Error("egress took no time")
	}
	if n.TxStats().Units != 1 {
		t.Errorf("tx stats = %+v", n.TxStats())
	}
	if n.LineRateGbps() != 25 {
		t.Errorf("line rate = %v", n.LineRateGbps())
	}
}

func TestNetworkTailDropUnderOverload(t *testing.T) {
	// Role side at a quarter of the MAC bandwidth: the ingress buffer
	// fills and the RBB tail-drops, with loss visible in monitoring.
	slowClk := sim.NewClock("slow-user", 62.5) // 512b @ 62.5MHz = 32 Gbps
	n, err := NewNetwork(platform.Xilinx, ip.Speed100G, slowClk, 512)
	if err != nil {
		t.Fatal(err)
	}
	n.Filter.SetEnabled(false)
	n.Director.AddTenant(0, 0, 8)
	n.Director.SetDefaultTenant(0)
	const pkts = 3000
	for i := 0; i < pkts; i++ {
		n.Ingress(0, &net.Packet{WireBytes: 1024})
	}
	rx := n.RxStats()
	if rx.Drops == 0 {
		t.Fatal("overload produced no loss")
	}
	loss := rx.LossRate()
	// Offered 100G into a 32G sink: about 2/3 lost.
	if loss < 0.5 || loss > 0.8 {
		t.Errorf("loss rate %.2f, want about 0.68", loss)
	}
	if n.MaxBacklog() == 0 {
		t.Error("queue usage not tracked")
	}
	if n.MaxBacklog() > 3*n.rxQueueCap {
		t.Errorf("backlog %v far beyond cap %v", n.MaxBacklog(), n.rxQueueCap)
	}
}

func TestNetworkNoDropAtLineRate(t *testing.T) {
	// A matched role never tail-drops.
	n := newNetRBB(t, platform.Xilinx, ip.Speed100G)
	for i := 0; i < 3000; i++ {
		n.Ingress(0, testPacket(localMAC, 1024, uint16(i)))
	}
	if drops := n.RxStats().Drops; drops != 0 {
		t.Errorf("matched-rate ingress dropped %d packets", drops)
	}
}

func TestNetworkRxQueueCapConfigurable(t *testing.T) {
	slowClk := sim.NewClock("slow-user", 62.5)
	n, _ := NewNetwork(platform.Xilinx, ip.Speed100G, slowClk, 512)
	n.Filter.SetEnabled(false)
	n.Director.AddTenant(0, 0, 8)
	n.Director.SetDefaultTenant(0)
	n.SetRxQueueCap(0) // no buffering at all
	n.Ingress(0, &net.Packet{WireBytes: 1024})
	// First packet passes (empty pipe), immediate second overflows.
	_, _, ok := n.Ingress(0, &net.Packet{WireBytes: 1024})
	if ok {
		t.Error("zero-buffer ingress admitted a queued packet")
	}
}
