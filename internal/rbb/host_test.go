package rbb

import (
	"testing"

	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
)

func newHostRBB(t *testing.T, gen, lanes int) *HostRBB {
	t.Helper()
	h, err := NewHost(platform.Xilinx, gen, lanes, ip.SGDMA, userClk(), 512)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHostSendReceive(t *testing.T) {
	h := newHostRBB(t, 4, 16)
	done, err := h.Send(0, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Error("send took no time")
	}
	done2, err := h.Receive(done, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if done2 <= done {
		t.Error("receive took no time")
	}
	qs, err := h.QueueStats(5)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Completed != 2 || qs.Bytes != 8192 {
		t.Errorf("queue stats = %+v", qs)
	}
	if h.Stats().Units != 2 {
		t.Errorf("traffic = %+v", h.Stats())
	}
}

func TestHostQueueIsolation(t *testing.T) {
	h := newHostRBB(t, 4, 16)
	if err := h.AssignQueue(0, 1); err != nil {
		t.Fatal(err)
	}
	// Same tenant can re-assign; another tenant cannot steal.
	if err := h.AssignQueue(0, 1); err != nil {
		t.Errorf("re-assign same tenant failed: %v", err)
	}
	if err := h.AssignQueue(0, 2); err == nil {
		t.Error("queue stolen by another tenant")
	}
	if err := h.AssignQueue(-1, 1); err == nil {
		t.Error("negative queue accepted")
	}
	if err := h.AssignQueue(1024, 1); err == nil {
		t.Error("out-of-range queue accepted")
	}
	if owner, ok := h.Owner(0); !ok || owner != 1 {
		t.Errorf("Owner(0) = %d, %v", owner, ok)
	}
	if _, ok := h.Owner(9); ok {
		t.Error("unassigned queue has owner")
	}
}

func TestHostGenerationBandwidth(t *testing.T) {
	g3 := newHostRBB(t, 3, 16)
	g4 := newHostRBB(t, 4, 16)
	if g3.HostGbps() >= g4.HostGbps() {
		t.Error("Gen4 should outpace Gen3")
	}
	// Sustained large sends should track the link generation.
	run := func(h *HostRBB) sim.Time {
		var done sim.Time
		for i := 0; i < 200; i++ {
			d, err := h.Send(0, 0, 16384)
			if err != nil {
				t.Fatal(err)
			}
			done = d
		}
		return done
	}
	t3, t4 := run(g3), run(g4)
	if t4 >= t3 {
		t.Errorf("Gen4 drain %v not faster than Gen3 %v", t4, t3)
	}
}

func TestHostWrapperLatencySmall(t *testing.T) {
	h := newHostRBB(t, 4, 16)
	if lat := h.WrapperLatency(); lat > 100*sim.Nanosecond {
		t.Errorf("wrapper latency %v too large", lat)
	}
}

func TestHostSpecQueues(t *testing.T) {
	h := newHostRBB(t, 4, 16)
	if h.Spec().QueueCount != 1024 {
		t.Errorf("queue count = %d, want 1024", h.Spec().QueueCount)
	}
}

func TestHostInvalidConfig(t *testing.T) {
	if _, err := NewHost(platform.Xilinx, 6, 16, ip.SGDMA, userClk(), 512); err == nil {
		t.Error("gen6 should fail")
	}
	if _, err := NewHost(platform.Xilinx, 4, 16, "bogus", userClk(), 512); err == nil {
		t.Error("bogus variant should fail")
	}
}
