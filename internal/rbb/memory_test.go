package rbb

import (
	"bytes"
	"testing"

	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
)

func TestHotCacheLRU(t *testing.T) {
	h := NewHotCache(2, 64, 10*sim.Nanosecond)
	if _, hit := h.Lookup(0); hit {
		t.Error("cold cache hit")
	}
	if lat, hit := h.Lookup(0); !hit || lat != 10*sim.Nanosecond {
		t.Error("warm line missed")
	}
	h.Lookup(64)  // fill second line
	h.Lookup(0)   // refresh line 0
	h.Lookup(128) // evicts line 64 (LRU)
	if _, hit := h.Lookup(0); !hit {
		t.Error("recently used line evicted")
	}
	if _, hit := h.Lookup(64); hit {
		t.Error("LRU line not evicted")
	}
	if h.Hits() == 0 || h.Misses() == 0 {
		t.Error("stats not tracked")
	}
}

func TestHotCacheDisabled(t *testing.T) {
	h := NewHotCache(16, 64, 10*sim.Nanosecond)
	h.Lookup(0)
	h.SetEnabled(false)
	if _, hit := h.Lookup(0); hit {
		t.Error("disabled cache hit")
	}
}

func TestHotCachePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHotCache(0) did not panic")
		}
	}()
	NewHotCache(0, 64, 0)
}

func newMemRBB(t *testing.T, kind ip.MemKind) *MemoryRBB {
	t.Helper()
	m, err := NewMemory(platform.Xilinx, kind, userClk(), 512)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := newMemRBB(t, ip.DDR4Mem)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	done := m.Write(0, 1<<20, payload)
	data, done2 := m.Read(done, 1<<20, len(payload))
	if !bytes.Equal(data, payload) {
		t.Errorf("read back %v, want %v", data, payload)
	}
	if done2 <= done {
		t.Error("read completed instantly")
	}
	if m.Stats().Units != 2 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

func TestMemoryHotCacheAccelerates(t *testing.T) {
	// Second read of the same line is served on-chip: strictly faster.
	m := newMemRBB(t, ip.DDR4Mem)
	_, cold := m.Read(sim.Millisecond, 1<<20, 64)
	coldLat := cold - sim.Millisecond
	_, warm := m.Read(2*sim.Millisecond, 1<<20, 64)
	warmLat := warm - 2*sim.Millisecond
	if warmLat >= coldLat {
		t.Errorf("hot-cache read %v not faster than cold %v", warmLat, coldLat)
	}
	if m.Cache.Hits() == 0 {
		t.Error("cache hit not recorded")
	}
}

func TestMemoryHotCacheAblation(t *testing.T) {
	// With the cache disabled, repeated reads pay device latency.
	m := newMemRBB(t, ip.DDR4Mem)
	m.Cache.SetEnabled(false)
	m.Read(0, 0, 64)
	_, second := m.Read(sim.Millisecond, 0, 64)
	secondLat := second - sim.Millisecond

	m2 := newMemRBB(t, ip.DDR4Mem)
	m2.Read(0, 0, 64)
	_, warm := m2.Read(sim.Millisecond, 0, 64)
	warmLat := warm - sim.Millisecond
	if warmLat >= secondLat {
		t.Errorf("cache-on repeat %v not faster than cache-off %v", warmLat, secondLat)
	}
}

func TestMemoryHBMInstance(t *testing.T) {
	m := newMemRBB(t, ip.HBMMem)
	if m.Spec().Channels != 32 {
		t.Errorf("HBM channels = %d", m.Spec().Channels)
	}
	if m.Device().Config().Kind != "hbm" {
		t.Errorf("device kind = %q", m.Device().Config().Kind)
	}
}

func TestMemoryInterleavingToggle(t *testing.T) {
	m := newMemRBB(t, ip.DDR4Mem)
	m.SetInterleaving(false)
	if m.Device().Config().Mapping.String() != "linear" {
		t.Error("interleaving off should map linear")
	}
	m.SetInterleaving(true)
	if m.Device().Config().Mapping.String() != "striped" {
		t.Error("interleaving on should stripe")
	}
}

func TestMemoryIntelHBMRejected(t *testing.T) {
	if _, err := NewMemory(platform.Intel, ip.HBMMem, userClk(), 512); err == nil {
		t.Error("Intel HBM Memory RBB should fail")
	}
}
