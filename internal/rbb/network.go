package rbb

import (
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/wrapper"
)

// PacketFilter is the Network RBB's first Ex-function: it intercepts
// packets whose destination address does not belong to the local
// machine, while admitting subscribed multicast groups (§3.3.1).
type PacketFilter struct {
	enabled bool
	local   map[net.HWAddr]bool
	groups  map[net.HWAddr]bool
	dropped int64
}

// NewPacketFilter returns an enabled filter with no addresses.
func NewPacketFilter() *PacketFilter {
	return &PacketFilter{
		enabled: true,
		local:   make(map[net.HWAddr]bool),
		groups:  make(map[net.HWAddr]bool),
	}
}

// SetEnabled switches filtering on or off (off passes everything).
func (f *PacketFilter) SetEnabled(on bool) { f.enabled = on }

// AddLocal registers a local unicast address.
func (f *PacketFilter) AddLocal(a net.HWAddr) { f.local[a] = true }

// Subscribe admits a multicast group.
func (f *PacketFilter) Subscribe(g net.HWAddr) error {
	if !g.IsMulticast() {
		return fmt.Errorf("rbb: %s is not a multicast address", g)
	}
	f.groups[g] = true
	return nil
}

// Admit reports whether the packet passes the filter.
func (f *PacketFilter) Admit(p *net.Packet) bool {
	if !f.enabled {
		return true
	}
	if p.DstMAC.IsMulticast() {
		if f.groups[p.DstMAC] {
			return true
		}
		f.dropped++
		return false
	}
	if f.local[p.DstMAC] {
		return true
	}
	f.dropped++
	return false
}

// Dropped reports filtered packet count.
func (f *PacketFilter) Dropped() int64 { return f.dropped }

// FlowDirector is the Network RBB's second Ex-function: it steers
// incoming flows to their tenants' host queue ranges, isolating
// multi-tenant traffic (§3.3.1).
type FlowDirector struct {
	// tenants maps tenant id to its queue range [lo, hi).
	tenants map[int][2]int
	// rules maps a destination IP to a tenant.
	rules map[net.IPAddr]int
	// defaultTenant receives unmatched flows; -1 drops them.
	defaultTenant int
	misses        int64
}

// NewFlowDirector returns a director that drops unmatched flows.
func NewFlowDirector() *FlowDirector {
	return &FlowDirector{
		tenants:       make(map[int][2]int),
		rules:         make(map[net.IPAddr]int),
		defaultTenant: -1,
	}
}

// AddTenant registers a tenant owning host queues [lo, hi).
func (d *FlowDirector) AddTenant(id, lo, hi int) error {
	if lo < 0 || hi <= lo {
		return fmt.Errorf("rbb: tenant %d queue range [%d,%d) invalid", id, lo, hi)
	}
	for other, r := range d.tenants {
		if other != id && lo < r[1] && r[0] < hi {
			return fmt.Errorf("rbb: tenant %d range [%d,%d) overlaps tenant %d [%d,%d)",
				id, lo, hi, other, r[0], r[1])
		}
	}
	d.tenants[id] = [2]int{lo, hi}
	return nil
}

// RemoveTenant forgets a tenant's queue range and every steering rule
// pointing at it — the scrub half of a drain-and-rebuild cycle. It is
// idempotent: removing an unknown tenant is a no-op.
func (d *FlowDirector) RemoveTenant(id int) {
	delete(d.tenants, id)
	for dst, t := range d.rules {
		if t == id {
			delete(d.rules, dst)
		}
	}
	if d.defaultTenant == id {
		d.defaultTenant = -1
	}
}

// AddRule routes traffic destined to ipDst to a tenant.
func (d *FlowDirector) AddRule(ipDst net.IPAddr, tenant int) error {
	if _, ok := d.tenants[tenant]; !ok {
		return fmt.Errorf("rbb: unknown tenant %d", tenant)
	}
	d.rules[ipDst] = tenant
	return nil
}

// SetDefaultTenant routes unmatched flows to a tenant (or -1 to drop).
func (d *FlowDirector) SetDefaultTenant(id int) { d.defaultTenant = id }

// Direct returns the host queue and tenant for a packet. ok is false
// when the flow matches no tenant.
func (d *FlowDirector) Direct(p *net.Packet) (queue, tenant int, ok bool) {
	t, matched := d.rules[p.DstIP]
	if !matched {
		t = d.defaultTenant
	}
	r, exists := d.tenants[t]
	if !exists {
		d.misses++
		return 0, 0, false
	}
	span := r[1] - r[0]
	q := r[0] + int(p.Flow().Hash()%uint64(span))
	return q, t, true
}

// Resolve returns the tenant and queue range [lo, hi) a destination
// address steers into, without consuming a packet — the resolve-once
// path for callers that cache per-flow steering and derive the queue
// from the flow hash themselves. ok is false when no tenant matches
// (counted as a miss, as Direct would).
func (d *FlowDirector) Resolve(dst net.IPAddr) (lo, hi, tenant int, ok bool) {
	t, matched := d.rules[dst]
	if !matched {
		t = d.defaultTenant
	}
	r, exists := d.tenants[t]
	if !exists {
		d.misses++
		return 0, 0, 0, false
	}
	return r[0], r[1], t, true
}

// Misses reports unroutable flow count.
func (d *FlowDirector) Misses() int64 { return d.misses }

// NetworkRBB is the functional Network building block: a MAC instance
// behind an interface wrapper, with the packet filter and flow director
// Ex-functions and real-time monitoring.
type NetworkRBB struct {
	desc     *Desc
	spec     ip.MACSpec
	rxLink   *net.Link
	txLink   *net.Link
	rxPath   *wrapper.DataPath
	txPath   *wrapper.DataPath
	Filter   *PacketFilter
	Director *FlowDirector
	rx, tx   Counters
	// rxQueueCap bounds the ingress queueing delay; arrivals that would
	// queue longer tail-drop (the packet-loss condition the monitoring
	// reports).
	rxQueueCap sim.Time
	maxBacklog sim.Time
}

// NewNetwork builds a Network RBB for a vendor's MAC at the given line
// rate, with the role side running at userClk and userWidth.
func NewNetwork(vendor platform.Vendor, speed ip.Speed, userClk *sim.Clock, userWidth int) (*NetworkRBB, error) {
	spec, err := ip.SpecForMAC(speed)
	if err != nil {
		return nil, err
	}
	mod, err := ip.MACModule(vendor, speed)
	if err != nil {
		return nil, err
	}
	wrapped, overhead, err := wrapper.Wrap(mod)
	if err != nil {
		return nil, err
	}
	macClk := sim.NewClock(fmt.Sprintf("mac%dg", speed), spec.CoreMHz)
	rxPath, err := wrapper.NewDataPath("net-rbb-rx", macClk, spec.DataWidth, userClk, userWidth)
	if err != nil {
		return nil, err
	}
	txPath, err := wrapper.NewDataPath("net-rbb-tx", userClk, userWidth, macClk, spec.DataWidth)
	if err != nil {
		return nil, err
	}
	return &NetworkRBB{
		desc:     networkDesc(wrapped, overhead),
		spec:     spec,
		rxLink:   net.NewLink(fmt.Sprintf("wire-%dg-rx", speed), float64(speed), 0),
		txLink:   net.NewLink(fmt.Sprintf("wire-%dg-tx", speed), float64(speed), 0),
		rxPath:   rxPath,
		txPath:   txPath,
		Filter:   NewPacketFilter(),
		Director: NewFlowDirector(),
		// Default ingress buffer: ~64KB at line rate worth of delay.
		rxQueueCap: sim.Time(float64(64<<10) * 8 / float64(speed) * float64(sim.Nanosecond)),
	}, nil
}

func networkDesc(wrapped *hdl.Module, overhead hdl.Resources) *Desc {
	return &Desc{
		Kind:         NetworkKind,
		Instance:     wrapped,
		WrapOverhead: overhead,
		InstanceGlue: hdl.LoC{Handcraft: 1_300},
		Reusable: ReusableLogic{
			ExFunction: hdl.LoC{Handcraft: 4_200}, // packet filter + flow director
			Control:    hdl.LoC{Handcraft: 1_100},
			Monitoring: hdl.LoC{Handcraft: 900},
			Res:        hdl.Resources{LUT: 9_500, REG: 14_000, BRAM: 18},
			Params: []hdl.Param{
				{Name: "FILTER_ENABLE", Default: "1", Scope: hdl.RoleOriented},
				{Name: "DIRECTOR_TENANTS", Default: "4", Scope: hdl.RoleOriented},
				{Name: "STATS_WINDOW", Default: "1ms", Scope: hdl.RoleOriented},
			},
		},
	}
}

// Desc returns the structural description.
func (n *NetworkRBB) Desc() *Desc { return n.desc }

// Spec returns the MAC datapath specification.
func (n *NetworkRBB) Spec() ip.MACSpec { return n.spec }

// Ingress carries one packet from the wire through the MAC, wrapper,
// filter and director. It returns the delivery time, the selected host
// queue, and whether the packet survived.
func (n *NetworkRBB) Ingress(now sim.Time, p *net.Packet) (done sim.Time, queue int, ok bool) {
	arrive := n.rxLink.Transmit(now, p.WireBytes)
	if !n.Filter.Admit(p) {
		n.rx.Record(p.WireBytes, true)
		return arrive, 0, false
	}
	q, _, routed := n.Director.Direct(p)
	if !routed {
		n.rx.Record(p.WireBytes, true)
		return arrive, 0, false
	}
	// Tail drop: if the ingress buffer is full (the role side cannot
	// drain fast enough), the packet is lost and counted.
	if backlog := n.rxPath.Backlog(arrive); backlog > n.rxQueueCap {
		n.rx.Record(p.WireBytes, true)
		return arrive, 0, false
	}
	if b := n.rxPath.Backlog(arrive); b > n.maxBacklog {
		n.maxBacklog = b
	}
	done = n.rxPath.Transfer(arrive, p.WireBytes)
	n.rx.Record(p.WireBytes, false)
	return done, q, true
}

// IngressDirected carries one packet whose filter admission and flow
// steering were already resolved (FlowDirector.Resolve): wire, wrapper
// datapath and tail-drop check only. With the filter disabled and the
// steering decision cached per flow, the outcome is identical to
// Ingress — it is the batched router's amortized variant of the same
// device crossing.
func (n *NetworkRBB) IngressDirected(now sim.Time, p *net.Packet) (done sim.Time, ok bool) {
	arrive := n.rxLink.Transmit(now, p.WireBytes)
	backlog := n.rxPath.Backlog(arrive)
	if backlog > n.rxQueueCap {
		n.rx.Record(p.WireBytes, true)
		return arrive, false
	}
	if backlog > n.maxBacklog {
		n.maxBacklog = backlog
	}
	done = n.rxPath.Transfer(arrive, p.WireBytes)
	n.rx.Record(p.WireBytes, false)
	return done, true
}

// Egress carries one packet from the role out to the wire.
func (n *NetworkRBB) Egress(now sim.Time, p *net.Packet) (done sim.Time) {
	through := n.txPath.Transfer(now, p.WireBytes)
	done = n.txLink.Transmit(through, p.WireBytes)
	n.tx.Record(p.WireBytes, false)
	return done
}

// RxStats and TxStats expose the monitoring counters.
func (n *NetworkRBB) RxStats() Counters { return n.rx }

// TxStats reports egress counters.
func (n *NetworkRBB) TxStats() Counters { return n.tx }

// WrapperLatency reports the fixed latency the wrapper inserts on one
// direction.
func (n *NetworkRBB) WrapperLatency() sim.Time { return n.rxPath.FixedLatency() }

// LineRateGbps reports the MAC line rate.
func (n *NetworkRBB) LineRateGbps() float64 { return float64(n.spec.Speed) }

// SetRxQueueCap overrides the ingress queueing budget.
func (n *NetworkRBB) SetRxQueueCap(d sim.Time) { n.rxQueueCap = d }

// MaxBacklog reports the high-water ingress queueing delay — the queue
// usage statistic the monitoring logic exposes.
func (n *NetworkRBB) MaxBacklog() sim.Time { return n.maxBacklog }

// SetNative toggles native mode: the vendor instance is used without
// the interface wrapper's translation pipeline (the "w/o Harmonia"
// configuration of Fig. 17).
func (n *NetworkRBB) SetNative(on bool) {
	n.rxPath.SetBypass(on)
	n.txPath.SetBypass(on)
}
