// Package adapter implements Harmonia's automated platform adapters
// (§3.2): the device adapter managing hardware-resource configurations
// (static inherent properties plus dynamic logic-to-device mappings) and
// the vendor adapter managing deployment differences (CAD tools, IP
// catalogs, hard-IP availability) as key-value dependency pairs with
// rigid compatibility inspection.
package adapter

import (
	"fmt"
	"sort"
	"strings"

	"harmonia/internal/platform"
)

// StaticConfig holds the inherent resource properties of a device —
// configured once from the device description and reused anywhere.
type StaticConfig struct {
	// ChannelCounts maps peripheral models to instance counts.
	ChannelCounts map[string]int
	// VirtualFunctions is the SR-IOV VF budget.
	VirtualFunctions int
	// ClockSources lists the board clock inputs.
	ClockSources []string
	// PCIeGen and PCIeLanes describe the host connection.
	PCIeGen   int
	PCIeLanes int
}

// DynamicConfig holds on-demand mapping constraints between logic and
// device: I/O pin assignments and clock mappings.
type DynamicConfig struct {
	PinAssignments map[string]string // logical pin -> package pin
	ClockMappings  map[string]string // logical clock -> clock source
}

// DeviceAdapter manages resource-related configuration for one device.
type DeviceAdapter struct {
	device  *platform.Device
	static  StaticConfig
	dynamic DynamicConfig
}

// NewDeviceAdapter derives the static configuration from the device
// description (the part vendor scripts generate) and returns an adapter
// with empty dynamic mappings.
func NewDeviceAdapter(d *platform.Device) (*DeviceAdapter, error) {
	if d == nil {
		return nil, fmt.Errorf("adapter: nil device")
	}
	st := StaticConfig{
		ChannelCounts:    map[string]int{},
		VirtualFunctions: 16,
		ClockSources:     []string{"sys_clk_100", "ref_clk_161", "ref_clk_322"},
	}
	for _, p := range d.Peripherals {
		st.ChannelCounts[p.Model] += p.Count
		if p.Kind == platform.Host {
			st.PCIeGen = p.PCIeGen
			st.PCIeLanes = p.PCIeLanes
		}
	}
	return &DeviceAdapter{
		device: d,
		static: st,
		dynamic: DynamicConfig{
			PinAssignments: map[string]string{},
			ClockMappings:  map[string]string{},
		},
	}, nil
}

// Device returns the adapted device.
func (a *DeviceAdapter) Device() *platform.Device { return a.device }

// Static returns the static resource configuration.
func (a *DeviceAdapter) Static() StaticConfig { return a.static }

// MapPin assigns a logical pin to a package pin.
func (a *DeviceAdapter) MapPin(logical, pkg string) error {
	if logical == "" || pkg == "" {
		return fmt.Errorf("adapter: empty pin mapping")
	}
	if prev, dup := a.dynamic.PinAssignments[logical]; dup && prev != pkg {
		return fmt.Errorf("adapter: pin %q already mapped to %q", logical, prev)
	}
	a.dynamic.PinAssignments[logical] = pkg
	return nil
}

// MapClock binds a logical clock to one of the board clock sources.
func (a *DeviceAdapter) MapClock(logical, source string) error {
	found := false
	for _, s := range a.static.ClockSources {
		if s == source {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("adapter: clock source %q not on device %s (have %v)",
			source, a.device.Name, a.static.ClockSources)
	}
	a.dynamic.ClockMappings[logical] = source
	return nil
}

// Dynamic returns the current dynamic mappings.
func (a *DeviceAdapter) Dynamic() DynamicConfig { return a.dynamic }

// Script renders the adapter as the tcl-style configuration the vendor
// toolchain consumes — the artifact the paper generates from vendor tcl
// and ruby scripts.
func (a *DeviceAdapter) Script() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# device adapter: %s (%s %s)\n", a.device.Name, a.device.Vendor, a.device.Chip.Name)
	models := make([]string, 0, len(a.static.ChannelCounts))
	for m := range a.static.ChannelCounts {
		models = append(models, m)
	}
	sort.Strings(models)
	for _, m := range models {
		fmt.Fprintf(&b, "set_property CHANNELS.%s %d [current_design]\n", m, a.static.ChannelCounts[m])
	}
	fmt.Fprintf(&b, "set_property SRIOV_VFS %d [current_design]\n", a.static.VirtualFunctions)
	pins := make([]string, 0, len(a.dynamic.PinAssignments))
	for p := range a.dynamic.PinAssignments {
		pins = append(pins, p)
	}
	sort.Strings(pins)
	for _, p := range pins {
		fmt.Fprintf(&b, "set_property PACKAGE_PIN %s [get_ports %s]\n", a.dynamic.PinAssignments[p], p)
	}
	clks := make([]string, 0, len(a.dynamic.ClockMappings))
	for c := range a.dynamic.ClockMappings {
		clks = append(clks, c)
	}
	sort.Strings(clks)
	for _, c := range clks {
		fmt.Fprintf(&b, "create_clock -name %s -source %s\n", c, a.dynamic.ClockMappings[c])
	}
	return b.String()
}
