package adapter

import (
	"strings"
	"testing"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/platform"
)

func TestNewDeviceAdapterStaticConfig(t *testing.T) {
	a, err := NewDeviceAdapter(platform.DeviceA())
	if err != nil {
		t.Fatal(err)
	}
	st := a.Static()
	if st.ChannelCounts["QSFP28"] != 2 {
		t.Errorf("QSFP28 channels = %d, want 2", st.ChannelCounts["QSFP28"])
	}
	if st.ChannelCounts["HBM"] != 1 {
		t.Errorf("HBM = %d, want 1", st.ChannelCounts["HBM"])
	}
	if st.PCIeGen != 4 || st.PCIeLanes != 8 {
		t.Errorf("PCIe = Gen%dx%d, want Gen4x8", st.PCIeGen, st.PCIeLanes)
	}
	if _, err := NewDeviceAdapter(nil); err == nil {
		t.Error("nil device should fail")
	}
}

func TestPinAndClockMapping(t *testing.T) {
	a, _ := NewDeviceAdapter(platform.DeviceB())
	if err := a.MapPin("qsfp0_rx_p", "AY38"); err != nil {
		t.Fatal(err)
	}
	// Remapping the same pin to the same package pin is idempotent.
	if err := a.MapPin("qsfp0_rx_p", "AY38"); err != nil {
		t.Errorf("idempotent remap failed: %v", err)
	}
	// Conflicting remap fails.
	if err := a.MapPin("qsfp0_rx_p", "BA40"); err == nil {
		t.Error("conflicting pin remap should fail")
	}
	if err := a.MapPin("", "X1"); err == nil {
		t.Error("empty pin mapping should fail")
	}
	if err := a.MapClock("core_clk", "ref_clk_322"); err != nil {
		t.Fatal(err)
	}
	if err := a.MapClock("core_clk", "no_such_clock"); err == nil {
		t.Error("unknown clock source should fail")
	}
	dyn := a.Dynamic()
	if dyn.PinAssignments["qsfp0_rx_p"] != "AY38" || dyn.ClockMappings["core_clk"] != "ref_clk_322" {
		t.Errorf("dynamic config = %+v", dyn)
	}
}

func TestDeviceAdapterScript(t *testing.T) {
	a, _ := NewDeviceAdapter(platform.DeviceA())
	a.MapPin("qsfp0_rx_p", "AY38")
	a.MapClock("core_clk", "sys_clk_100")
	s := a.Script()
	for _, want := range []string{"device-a", "CHANNELS.QSFP28 2", "PACKAGE_PIN AY38", "create_clock -name core_clk"} {
		if !strings.Contains(s, want) {
			t.Errorf("script missing %q:\n%s", want, s)
		}
	}
}

func TestVendorAdapterEnvironment(t *testing.T) {
	a, err := NewVendorAdapter(platform.DeviceA())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Provides("cad", "vivado") {
		t.Error("device-a should provide vivado")
	}
	if a.Provides("cad", "quartus") {
		t.Error("device-a should not provide quartus")
	}
	// Gen4 device supports gen3 and gen4 hard IP, not gen5.
	if !a.Provides("pcie_hard_ip", "gen3") || !a.Provides("pcie_hard_ip", "gen4") {
		t.Error("gen3/gen4 hard IP should be available")
	}
	if a.Provides("pcie_hard_ip", "gen5") {
		t.Error("gen5 hard IP should not be available on a Gen4 device")
	}
	if !a.Provides("memory_phy", "hbm") || !a.Provides("memory_phy", "ddr4") {
		t.Error("device-a memory PHYs missing")
	}
	d, _ := NewVendorAdapter(platform.DeviceD())
	if !d.Provides("cad", "quartus") || !d.Provides("transceiver", "e-tile") {
		t.Error("device-d environment wrong")
	}
	if _, err := NewVendorAdapter(nil); err == nil {
		t.Error("nil device should fail")
	}
}

func TestVendorAdapterCheckCompatible(t *testing.T) {
	a, _ := NewVendorAdapter(platform.DeviceA())
	mac, err := ip.MACModule(platform.Xilinx, ip.Speed100G)
	if err != nil {
		t.Fatal(err)
	}
	if errs := a.Check(mac); len(errs) != 0 {
		t.Errorf("xilinx 100G MAC should be compatible with device-a: %v", errs)
	}
	dma, _ := ip.DMAModule(platform.Xilinx, 4, 8, ip.SGDMA)
	if errs := a.Check(dma); len(errs) != 0 {
		t.Errorf("gen4 DMA should be compatible: %v", errs)
	}
}

func TestVendorAdapterCatchesIncompatibilities(t *testing.T) {
	a, _ := NewVendorAdapter(platform.DeviceA())
	// Intel IP on a Xilinx device: wrong CAD tool and catalog.
	intelMAC, _ := ip.MACModule(platform.Intel, ip.Speed100G)
	errs := a.Check(intelMAC)
	if len(errs) < 2 {
		t.Errorf("intel MAC on device-a: %d violations, want >= 2 (%v)", len(errs), errs)
	}
	// Gen5 DMA on a Gen4 device.
	g5, _ := ip.DMAModule(platform.Xilinx, 5, 16, ip.SGDMA)
	errs = a.Check(g5)
	found := false
	for _, e := range errs {
		de, ok := e.(*DependencyError)
		if ok && de.Key == "pcie_hard_ip" {
			found = true
			if !strings.Contains(de.Error(), "gen5") {
				t.Errorf("error lacks detail: %v", de)
			}
		}
	}
	if !found {
		t.Errorf("gen5-on-gen4 violation not caught: %v", errs)
	}
	// HBM controller on a device without HBM.
	b, _ := NewVendorAdapter(platform.DeviceB())
	hbm, _ := ip.MemModule(platform.Xilinx, ip.HBMMem)
	if errs := b.Check(hbm); len(errs) == 0 {
		t.Error("HBM controller on device-b should be rejected")
	}
	// 400G MAC on a 100G-cage device.
	mac400, _ := ip.MACModule(platform.Xilinx, ip.Speed400G)
	if errs := a.Check(mac400); len(errs) == 0 {
		t.Error("400G MAC on QSFP28 device should be rejected")
	}
}

func TestCheckAllAggregates(t *testing.T) {
	a, _ := NewVendorAdapter(platform.DeviceA())
	good, _ := ip.MACModule(platform.Xilinx, ip.Speed100G)
	bad, _ := ip.MACModule(platform.Intel, ip.Speed100G)
	errs := a.CheckAll([]*hdl.Module{good, bad})
	if len(errs) == 0 {
		t.Error("CheckAll should report the incompatible module")
	}
	if len(a.CheckAll([]*hdl.Module{good})) != 0 {
		t.Error("CheckAll on a compatible set should be clean")
	}
}

func TestVendorAdapterScript(t *testing.T) {
	a, _ := NewVendorAdapter(platform.DeviceC())
	s := a.Script()
	for _, want := range []string{"device-c", "provide cad = vivado", "pcie_hard_ip"} {
		if !strings.Contains(s, want) {
			t.Errorf("script missing %q:\n%s", want, s)
		}
	}
}

func TestMissingKeyErrorMessage(t *testing.T) {
	e := &DependencyError{Module: "m", Key: "k", Want: "v"}
	if !strings.Contains(e.Error(), "does not provide") {
		t.Errorf("missing-key error = %q", e.Error())
	}
}
