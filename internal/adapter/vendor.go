package adapter

import (
	"fmt"
	"sort"
	"strings"

	"harmonia/internal/hdl"
	"harmonia/internal/platform"
)

// VendorAdapter structures the deployment environment of a device as
// key-value dependency pairs and performs the rigid compatibility
// inspection of §3.2: every dependency a module declares must be
// satisfiable by the device's vendor toolchain and hard IP.
type VendorAdapter struct {
	device *platform.Device
	// env maps dependency keys to the set of values this deployment
	// environment provides.
	env map[string]map[string]bool
}

// NewVendorAdapter derives the deployment environment from the device:
// CAD tool and version from the vendor, hard-IP availability from the
// peripherals.
func NewVendorAdapter(d *platform.Device) (*VendorAdapter, error) {
	if d == nil {
		return nil, fmt.Errorf("adapter: nil device")
	}
	env := map[string]map[string]bool{}
	set := func(key string, values ...string) {
		if env[key] == nil {
			env[key] = map[string]bool{}
		}
		for _, v := range values {
			env[key][v] = true
		}
	}
	if d.Vendor == platform.Intel {
		set("cad", "quartus")
		set("cad_version", "23.4")
		set("ip_catalog", "intel-fpga-ip")
	} else {
		set("cad", "vivado")
		set("cad_version", "2023.2")
		set("ip_catalog", "xilinx-ip")
	}
	// PCIe hard IP supports the device's generation and below.
	if pcie, ok := d.PCIe(); ok {
		for g := 3; g <= pcie.PCIeGen; g++ {
			set("pcie_hard_ip", fmt.Sprintf("gen%d", g))
		}
	}
	// Memory PHYs per populated peripherals.
	for _, p := range d.PeripheralsOf(platform.Memory) {
		switch p.Model {
		case "DDR4":
			set("memory_phy", "ddr4")
		case "DDR3":
			set("memory_phy", "ddr3")
		case "HBM":
			set("memory_phy", "hbm")
		}
	}
	// Transceiver tiles by vendor and the fastest populated cage.
	maxGbps := 0.0
	for _, p := range d.PeripheralsOf(platform.Network) {
		if p.GbpsPerUnit > maxGbps {
			maxGbps = p.GbpsPerUnit
		}
	}
	if maxGbps > 0 {
		if d.Vendor == platform.Intel {
			set("transceiver", "e-tile")
			if maxGbps >= 400 {
				set("transceiver", "f-tile")
			}
		} else {
			set("transceiver", "gty")
			if maxGbps >= 400 {
				set("transceiver", "gty-dcmac")
			}
		}
	}
	return &VendorAdapter{device: d, env: env}, nil
}

// Device returns the adapted device.
func (a *VendorAdapter) Device() *platform.Device { return a.device }

// Provides reports whether the environment satisfies key=value.
func (a *VendorAdapter) Provides(key, value string) bool {
	return a.env[key][value]
}

// DependencyError describes one unsatisfied module dependency.
type DependencyError struct {
	Module string
	Key    string
	Want   string
	Have   []string
}

// Error formats the mismatch.
func (e *DependencyError) Error() string {
	if len(e.Have) == 0 {
		return fmt.Sprintf("adapter: module %s requires %s=%s, environment does not provide %s",
			e.Module, e.Key, e.Want, e.Key)
	}
	return fmt.Sprintf("adapter: module %s requires %s=%s, environment provides %v",
		e.Module, e.Key, e.Want, e.Have)
}

// Check inspects one module's dependencies against the environment and
// returns every violation (nil when compatible).
func (a *VendorAdapter) Check(m *hdl.Module) []error {
	var errs []error
	keys := make([]string, 0, len(m.Deps))
	for k := range m.Deps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		want := m.Deps[k]
		if a.env[k][want] {
			continue
		}
		have := make([]string, 0, len(a.env[k]))
		for v := range a.env[k] {
			have = append(have, v)
		}
		sort.Strings(have)
		errs = append(errs, &DependencyError{Module: m.Name, Key: k, Want: want, Have: have})
	}
	return errs
}

// CheckAll inspects a set of modules and returns all violations.
func (a *VendorAdapter) CheckAll(mods []*hdl.Module) []error {
	var errs []error
	for _, m := range mods {
		errs = append(errs, a.Check(m)...)
	}
	return errs
}

// Script renders the environment as the dependency manifest the
// integration toolchain loads before compilation.
func (a *VendorAdapter) Script() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# vendor adapter: %s (%s)\n", a.device.Name, a.device.Vendor)
	keys := make([]string, 0, len(a.env))
	for k := range a.env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vals := make([]string, 0, len(a.env[k]))
		for v := range a.env[k] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		fmt.Fprintf(&b, "provide %s = %s\n", k, strings.Join(vals, ","))
	}
	return b.String()
}
