package bench

import (
	"fmt"

	"harmonia/internal/fleet"
)

// fleet5 — failure-storm survival. One seeded injection schedule
// (rack power loss, link-flap bursts, PR bitstream load failures,
// a thermal runaway ramp, command-packet corruption, a backend drain)
// replays against three fleets: unbudgeted with the static degraded
// penalty, budgeted with the static penalty, and budgeted with
// thermal-derived shedding. The report carries the acceptance gates
// pre-evaluated — the budget cap held, the unbudgeted fleet exceeded
// it, and derived shedding kept packets off alarmed nodes — plus the
// one-command repro line CI prints when a gate fails.

// ChaosWindowPoint is one measurement window flattened for the report.
type ChaosWindowPoint struct {
	AtPs           int64   `json:"at_ps"`
	Availability   float64 `json:"availability"`
	Sent           int64   `json:"sent"`
	Served         int64   `json:"served"`
	Dropped        int64   `json:"dropped"`
	Healthy        int     `json:"healthy"`
	Degraded       int     `json:"degraded"`
	Down           int     `json:"down"`
	LoadsInflight  int     `json:"loads_inflight"`
	LoadsQueued    int     `json:"loads_queued"`
	RampPenalty    float64 `json:"ramp_penalty"`
	AlarmedPackets int64   `json:"alarmed_packets"`
}

// ChaosCasePoint is one storm replay flattened for the report.
type ChaosCasePoint struct {
	Name            string `json:"name"`
	Budgeted        bool   `json:"budgeted"`
	Budget          int    `json:"budget"`
	DerivedShedding bool   `json:"derived_shedding"`

	Availability float64 `json:"availability"`
	Sent         int64   `json:"sent"`
	Served       int64   `json:"served"`
	Dropped      int64   `json:"dropped"`

	PeakConcurrentLoads int   `json:"peak_concurrent_loads"`
	LoadsQueued         int   `json:"loads_queued"`
	LoadFailures        int64 `json:"load_failures"`

	Failovers     int   `json:"failovers"`
	P99RecoveryPs int64 `json:"p99_recovery_ps"`
	MaxRecoveryPs int64 `json:"max_recovery_ps"`

	FlowsEstablished int     `json:"flows_established"`
	FlowsDisrupted   int     `json:"flows_disrupted"`
	Disruption       float64 `json:"disruption"`

	MigrationsLive     int   `json:"migrations_live"`
	MigrationsSnapshot int   `json:"migrations_snapshot"`
	MaxSnapshotAgePs   int64 `json:"max_snapshot_age_ps"`

	AlarmedNodePackets int64 `json:"alarmed_node_packets"`
	Unplaced           int   `json:"unplaced"`

	CmdIssued  int64 `json:"cmd_issued"`
	CmdRetries int64 `json:"cmd_retries"`
	CmdDrops   int64 `json:"cmd_drops"`

	// Metrics is the case cluster's full registry snapshot (summaries
	// expanded to _count/_sum/quantile keys) — the same series the
	// Prometheus exposition carries, embedded so the drill artifact is
	// self-contained.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	Windows []ChaosWindowPoint `json:"windows"`
}

// ChaosReport is the machine-readable fleet5 artifact
// (BENCH_chaos.json).
type ChaosReport struct {
	Experiment string `json:"experiment"` // always "fleet5"
	App        string `json:"app"`
	Devices    int    `json:"devices"`
	RackSize   int    `json:"rack_size"`
	Seed       int64  `json:"seed"`
	Budget     int    `json:"budget"`

	StormStartPs int64    `json:"storm_start_ps"`
	StormEndPs   int64    `json:"storm_end_ps"`
	Injections   []string `json:"injections"`

	Cases []ChaosCasePoint `json:"cases"`

	// The acceptance gates, pre-evaluated so CI can assert on the
	// artifact without re-deriving them:
	//   - BudgetBounded: every budgeted case kept concurrent PR loads
	//     at or under the configured cap;
	//   - UnbudgetedExceeds: the unbudgeted fleet blew past that cap
	//     during the mass failover (the budget is load-bearing);
	//   - NoTrafficAfterAlarm: under derived shedding no packet landed
	//     on a node during a window it spent degraded.
	BudgetBounded       bool `json:"budget_bounded"`
	UnbudgetedExceeds   bool `json:"unbudgeted_exceeds"`
	NoTrafficAfterAlarm bool `json:"no_traffic_after_alarm"`

	// Repro rebuilds this exact report from the seed.
	Repro string `json:"repro"`
}

func chaosCasePoint(c fleet.ChaosCase) ChaosCasePoint {
	p := ChaosCasePoint{
		Name:                c.Name,
		Budgeted:            c.Budgeted,
		Budget:              c.Budget,
		DerivedShedding:     c.DerivedShedding,
		Availability:        c.Availability,
		Sent:                c.Sent,
		Served:              c.Served,
		Dropped:             c.Dropped,
		PeakConcurrentLoads: c.PeakConcurrentLoads,
		LoadsQueued:         c.LoadsQueued,
		LoadFailures:        c.LoadFailures,
		Failovers:           c.Failovers,
		P99RecoveryPs:       int64(c.P99Recovery),
		MaxRecoveryPs:       int64(c.MaxRecovery),
		FlowsEstablished:    c.FlowsEstablished,
		FlowsDisrupted:      c.FlowsDisrupted,
		Disruption:          c.Disruption,
		MigrationsLive:      c.MigrationsLive,
		MigrationsSnapshot:  c.MigrationsSnapshot,
		MaxSnapshotAgePs:    int64(c.MaxSnapshotAge),
		AlarmedNodePackets:  c.AlarmedNodePackets,
		Unplaced:            c.Unplaced,
		CmdIssued:           c.Cmd.Issued,
		CmdRetries:          c.Cmd.Retries,
		CmdDrops:            c.Cmd.Drops,
		Metrics:             c.Metrics,
	}
	for _, w := range c.Windows {
		p.Windows = append(p.Windows, ChaosWindowPoint{
			AtPs:           int64(w.At),
			Availability:   w.Availability,
			Sent:           w.Sent,
			Served:         w.Served,
			Dropped:        w.Dropped,
			Healthy:        w.Healthy,
			Degraded:       w.Degraded,
			Down:           w.Down,
			LoadsInflight:  w.LoadsInflight,
			LoadsQueued:    w.LoadsQueued,
			RampPenalty:    w.RampPenalty,
			AlarmedPackets: w.AlarmedPackets,
		})
	}
	return p
}

// FleetChaosReport runs the fleet5 drill and evaluates its gates.
func FleetChaosReport(opts fleet.ChaosOptions) (*ChaosReport, *fleet.ChaosResult, error) {
	d, err := fleet.ChaosDrill(opts)
	if err != nil {
		return nil, nil, err
	}
	rep := &ChaosReport{
		Experiment:   "fleet5",
		App:          cpApp,
		Devices:      d.Devices,
		RackSize:     d.RackSize,
		Seed:         d.Seed,
		Budget:       d.Budget,
		StormStartPs: int64(d.StormStart),
		StormEndPs:   int64(d.StormEnd),
		Injections:   d.Injections,
		Repro: fmt.Sprintf("go run ./cmd/harmonia-fleet -scenario chaos -devices %d -seed %d -budget %d",
			d.Devices, d.Seed, d.Budget),
	}
	rep.BudgetBounded = true
	for _, c := range d.Cases {
		rep.Cases = append(rep.Cases, chaosCasePoint(c))
		switch {
		case c.Budgeted && c.PeakConcurrentLoads > c.Budget:
			rep.BudgetBounded = false
		case !c.Budgeted && c.PeakConcurrentLoads > d.Budget:
			rep.UnbudgetedExceeds = true
		}
		if c.DerivedShedding {
			rep.NoTrafficAfterAlarm = c.AlarmedNodePackets == 0
		}
	}
	return rep, d, nil
}

// Gates reports whether every fleet5 acceptance gate held.
func (r *ChaosReport) Gates() bool {
	return r.BudgetBounded && r.UnbudgetedExceeds && r.NoTrafficAfterAlarm
}
