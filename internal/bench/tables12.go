package bench

import (
	"fmt"
	"strings"

	"harmonia/internal/apps"
	"harmonia/internal/baseline"
	"harmonia/internal/hostsw"
	"harmonia/internal/metrics"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/shell"
)

// Table1 regenerates the framework-capability comparison. Unlike the
// paper's hand-assessed matrix, every cell here is derived from this
// repository's models: heterogeneity and host-interface cells from the
// baseline framework models, the unified-shell cell from whether one
// shell construction covers multiple vendors, and the portable-role
// cell from whether the same demands tailor on multiple vendors'
// devices.
func Table1() (*metrics.Table, error) {
	tab := &metrics.Table{
		ID: "table1", Title: "Framework capability comparison",
		Columns: []string{"Framework", "Heterogeneity", "UnifiedShell", "PortableRole", "ConsistentHostIF"},
	}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	devices := []*platform.Device{
		platform.DeviceA(), platform.DeviceB(), platform.DeviceC(), platform.DeviceD(),
	}
	demands := shell.Demands{Host: &shell.HostDemand{Queues: 8}}
	for _, fw := range baseline.All() {
		// Heterogeneity: supports devices from more than one vendor.
		vendors := map[platform.Vendor]bool{}
		for _, d := range devices {
			if fw.Supports(d) {
				vendors[d.Vendor] = true
			}
		}
		hetero := len(vendors) > 1
		// Unified shell: one shell construction succeeds on every
		// supported device (only the tailoring framework does; the
		// monolithic baselines ship per-series shells).
		unifiedShell := fw.Tailors()
		// Portable role: the same demands produce a working shell on
		// at least two supported devices.
		portable := 0
		for _, d := range devices {
			if !fw.Supports(d) {
				continue
			}
			if _, err := fw.ShellResources(d, demands); err == nil {
				portable++
			}
		}
		// Consistent host interface: command-based (platform-neutral)
		// rather than register-level.
		consistent := !fw.UsesRegisterInterface()
		if err := tab.AddRow(fw.Name(), yn(hetero), yn(unifiedShell),
			yn(portable >= 2), yn(consistent)); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// Table2 regenerates the experimental setup: the five applications with
// their architectures and the four devices with their vendors, chips
// and peripherals — read back from the implemented catalogs.
func Table2() (*metrics.Table, error) {
	tab := &metrics.Table{
		ID: "table2", Title: "Applications and heterogeneous FPGA cards",
		Columns: []string{"Entry", "Class", "Detail"},
	}
	for _, name := range apps.Names() {
		info, err := apps.Lookup(name)
		if err != nil {
			return nil, err
		}
		if err := tab.AddRow(name, string(info.Architecture), info.Kind); err != nil {
			return nil, err
		}
	}
	for _, devName := range platform.CatalogNames() {
		dev, err := platform.Lookup(devName)
		if err != nil {
			return nil, err
		}
		var parts []string
		for _, p := range dev.Peripherals {
			if p.Kind == platform.Host {
				parts = append(parts, fmt.Sprintf("PCIe Gen%dx%d", p.PCIeGen, p.PCIeLanes))
			} else if p.Count > 1 {
				parts = append(parts, fmt.Sprintf("%sx%d", p.Model, p.Count))
			} else {
				parts = append(parts, p.Model)
			}
		}
		detail := fmt.Sprintf("%s %s: %s", dev.Vendor, dev.Chip.Name, strings.Join(parts, ", "))
		if err := tab.AddRow(devName, "device", detail); err != nil {
			return nil, err
		}
	}
	// The RBBs under evaluation (§5.1).
	for _, kind := range []rbb.Kind{rbb.NetworkKind, rbb.MemoryKind, rbb.HostKind} {
		if err := tab.AddRow(string(kind), "rbb", "evaluated building block"); err != nil {
			return nil, err
		}
	}
	// The configuration tasks of Table 4 (§5.1's software side).
	for _, task := range hostsw.Tasks() {
		if err := tab.AddRow(string(task), "sw-task", "host configuration activity"); err != nil {
			return nil, err
		}
	}
	return tab, nil
}
