package bench

import (
	"harmonia/internal/apps"
	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

// appSweep runs a with/without-Harmonia throughput+latency sweep and
// assembles the four-series Fig. 17 shape.
func appSweep(id, title, xLabel string, xs []float64,
	run func(x float64, harmonia bool) (tpt float64, lat sim.Time, err error)) (*metrics.Figure, error) {

	fig := &metrics.Figure{ID: id, Title: title}
	wT := &metrics.Series{Label: "harmonia-tpt", XLabel: xLabel}
	nT := &metrics.Series{Label: "native-tpt"}
	wL := &metrics.Series{Label: "harmonia-lat-us"}
	nL := &metrics.Series{Label: "native-lat-us"}
	for _, x := range xs {
		tw, lw, err := run(x, true)
		if err != nil {
			return nil, err
		}
		tn, ln, err := run(x, false)
		if err != nil {
			return nil, err
		}
		wT.Add(x, tw)
		nT.Add(x, tn)
		wL.Add(x, lw.Microseconds())
		nL.Add(x, ln.Microseconds())
	}
	fig.Series = append(fig.Series, wT, nT, wL, nL)
	return fig, nil
}

// e2eRTT is the network/host round-trip added to device latency so
// end-to-end latencies sit at the microsecond scale the paper reports.
const e2eRTT = 4 * sim.Microsecond

func packetSizesF() []float64 {
	out := make([]float64, len(workload.PacketSizes))
	for i, s := range workload.PacketSizes {
		out[i] = float64(s)
	}
	return out
}

// Fig17a: Sec-Gateway throughput/latency across packet sizes, with and
// without Harmonia.
func Fig17a() (*metrics.Figure, error) {
	const pkts = 1500
	run := func(x float64, harmonia bool) (float64, sim.Time, error) {
		size := int(x)
		g, err := apps.NewSecGateway(platform.Xilinx, harmonia)
		if err != nil {
			return 0, 0, err
		}
		stream, err := workload.Packets(workload.PacketConfig{Count: pkts, Size: size, Flows: 64, Seed: 4})
		if err != nil {
			return 0, 0, err
		}
		_, lat := g.Process(0, stream[0])
		var done sim.Time
		for _, p := range stream[1:] {
			_, done = g.Process(0, p)
		}
		return metrics.Gbps(int64((pkts-1)*size), done), lat + e2eRTT, nil
	}
	return appSweep("fig17a", "Sec-Gateway performance", "pkt-bytes", packetSizesF(), run)
}

// Fig17b: Layer-4 LB throughput/latency across packet sizes.
func Fig17b() (*metrics.Figure, error) {
	const pkts = 1500
	vip := net.IPv4(20, 0, 0, 1)
	backends := []net.IPAddr{net.IPv4(10, 0, 0, 1), net.IPv4(10, 0, 0, 2), net.IPv4(10, 0, 0, 3)}
	run := func(x float64, harmonia bool) (float64, sim.Time, error) {
		size := int(x)
		lb, err := apps.NewLayer4LB(platform.Xilinx, harmonia)
		if err != nil {
			return 0, 0, err
		}
		if err := lb.AddVIP(vip, backends); err != nil {
			return 0, 0, err
		}
		stream, err := workload.Packets(workload.PacketConfig{
			Count: pkts, Size: size, Flows: 128, VIPs: []net.IPAddr{vip}, Seed: 5,
		})
		if err != nil {
			return 0, 0, err
		}
		_, lat, _ := lb.Process(0, stream[0])
		var done sim.Time
		for _, p := range stream[1:] {
			_, done, _ = lb.Process(0, p)
		}
		return metrics.Gbps(int64((pkts-1)*size), done), lat + e2eRTT, nil
	}
	return appSweep("fig17b", "Layer-4 LB performance", "pkt-bytes", packetSizesF(), run)
}

// Fig17c: Host Network offload throughput/latency across packet sizes.
func Fig17c() (*metrics.Figure, error) {
	const pkts = 1200
	run := func(x float64, harmonia bool) (float64, sim.Time, error) {
		size := int(x)
		hn, err := apps.NewHostNetwork(platform.Xilinx, 4, 16, harmonia)
		if err != nil {
			return 0, 0, err
		}
		stream, err := workload.Packets(workload.PacketConfig{Count: pkts, Size: size, Flows: 256, Seed: 6})
		if err != nil {
			return 0, 0, err
		}
		_, _, lat, _ := hn.Offload(0, stream[0])
		var done sim.Time
		for _, p := range stream[1:] {
			_, _, done, _ = hn.Offload(0, p)
		}
		return metrics.Gbps(int64((pkts-1)*size), done), lat + e2eRTT, nil
	}
	return appSweep("fig17c", "Host Network performance", "pkt-bytes", packetSizesF(), run)
}

// Fig17d: Retrieval QPS and latency versus corpus size (x is log10 of
// the item count: 9, 7, 5, 3 as in the paper).
func Fig17d() (*metrics.Figure, error) {
	run := func(x float64, harmonia bool) (float64, sim.Time, error) {
		items := int64(1)
		for i := 0; i < int(x); i++ {
			items *= 10
		}
		r, err := apps.NewRetrieval(platform.Xilinx, 64, 32, harmonia)
		if err != nil {
			return 0, 0, err
		}
		qps := r.QPS(items)
		lat := sim.Time(1 / qps * float64(sim.Second))
		return qps, lat, nil
	}
	return appSweep("fig17d", "Retrieval performance", "log10-corpus", []float64{9, 7, 5, 3}, run)
}
