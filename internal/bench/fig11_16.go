package bench

import (
	"fmt"

	"harmonia/internal/apps"
	"harmonia/internal/hdl"
	"harmonia/internal/hostsw"
	"harmonia/internal/ip"
	"harmonia/internal/metrics"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/shell"
	"harmonia/internal/wrapper"
)

// tailoredShells builds the unified shell on device A plus each
// application's tailored instance.
func tailoredShells() (*shell.Shell, map[string]*shell.Shell, error) {
	unified, err := shell.BuildUnified(platform.DeviceA())
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]*shell.Shell)
	for _, name := range apps.Names() {
		info, err := apps.Lookup(name)
		if err != nil {
			return nil, nil, err
		}
		t, err := unified.Tailor(info.Demands)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: tailoring for %s: %w", name, err)
		}
		out[name] = t
	}
	return unified, out, nil
}

// Fig11 compares per-resource-type occupancy of the unified shell
// against application-tailored shells on device A (savings 3-25.1%).
func Fig11() (*metrics.Table, error) {
	unified, tailored, err := tailoredShells()
	if err != nil {
		return nil, err
	}
	cols := append([]string{"Shell"}, hdl.ResourceKinds...)
	cols = append(cols, "LUT-saving%")
	tab := &metrics.Table{ID: "fig11", Title: "Shell resource occupancy (fraction of device)", Columns: cols}

	addRow := func(name string, s *shell.Shell) error {
		u := s.Utilization()
		row := []string{name}
		for _, kind := range hdl.ResourceKinds {
			row = append(row, fmt.Sprintf("%.3f", u[kind]))
		}
		saving := 0.0
		if name != "unified" {
			rep, err := shell.Report(unified, s)
			if err != nil {
				return err
			}
			saving = rep.Savings["LUT"] * 100
		}
		row = append(row, fmt.Sprintf("%.1f", saving))
		return tab.AddRow(row...)
	}
	if err := addRow("unified", unified); err != nil {
		return nil, err
	}
	// The paper's figure shows the three application shells with
	// distinct tailoring profiles.
	for _, name := range []string{"sec-gateway", "layer4-lb", "retrieval"} {
		if err := addRow(name, tailored[name]); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// Fig12 compares configuration items of the native modules against the
// role-oriented set each application actually configures (8.8-19.8x).
func Fig12() (*metrics.Table, error) {
	_, tailored, err := tailoredShells()
	if err != nil {
		return nil, err
	}
	tab := &metrics.Table{
		ID: "fig12", Title: "Configuration items: native modules vs role-oriented",
		Columns: []string{"App", "Native", "Role-oriented", "Reduction"},
	}
	for _, name := range apps.Names() {
		s := tailored[name]
		native := s.NativeParamCount()
		exposed := len(s.ExposedParams())
		ratio := 0.0
		if exposed > 0 {
			ratio = float64(native) / float64(exposed)
		}
		if err := tab.AddRow(name, fmt.Sprint(native), fmt.Sprint(exposed),
			fmt.Sprintf("%.1fx", ratio)); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// Fig13 counts host-software modifications per application when
// migrating device C -> D, register interface vs command interface
// (88-107x reduction).
func Fig13() (*metrics.Table, error) {
	tab := &metrics.Table{
		ID: "fig13", Title: "Software modifications migrating device C -> D",
		Columns: []string{"App", "RegisterMods", "CommandMods", "Reduction"},
	}
	from, to := platform.DeviceC(), platform.DeviceD()
	for _, name := range apps.Names() {
		info, err := apps.Lookup(name)
		if err != nil {
			return nil, err
		}
		// Restrict to categories available on both devices: neither C
		// nor D carries HBM.
		var cats []string
		for _, c := range info.Categories {
			if c == "hbm" {
				c = "ddr4"
			}
			cats = append(cats, c)
		}
		rep, err := hostsw.MigrationCost(from, to, cats)
		if err != nil {
			return nil, err
		}
		if err := tab.AddRow(name, fmt.Sprint(rep.RegMods), fmt.Sprint(rep.CmdMods),
			fmt.Sprintf("%.0fx", rep.Ratio)); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// Fig14 reports RBB development reuse across vendors (devices A<->C)
// and across chip families (devices A<->B).
func Fig14() (*metrics.Table, error) {
	tab := &metrics.Table{
		ID: "fig14", Title: "RBB reuse rates",
		Columns: []string{"RBB", "Cross-vendor", "Cross-chip"},
	}
	descs := map[string]*rbb.Desc{}
	n, err := rbb.NewNetworkDesc(platform.Xilinx, ip.Speed100G)
	if err != nil {
		return nil, err
	}
	descs["network"] = n
	h, err := rbb.NewHostDesc(platform.Xilinx, 4, 8, ip.SGDMA)
	if err != nil {
		return nil, err
	}
	descs["host"] = h
	m, err := rbb.NewMemoryDesc(platform.Xilinx, ip.DDR4Mem)
	if err != nil {
		return nil, err
	}
	descs["memory"] = m
	for _, name := range sortedKeys(descs) {
		d := descs[name]
		cv := d.Reuse(rbb.CrossVendor)
		cc := d.Reuse(rbb.CrossChip)
		if err := tab.AddRow(name, fmt.Sprintf("%.2f", cv.ReuseRate),
			fmt.Sprintf("%.2f", cc.ReuseRate)); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// baseComponentReuse gives the reuse fraction of framework-owned base
// components (management, UCK) per migration scope: board management
// is partially hardware-bound; the UCK is software on a soft core and
// ports almost entirely.
func baseComponentReuse(name string, scope rbb.MigrationScope) float64 {
	switch scope {
	case rbb.SamePlatform:
		return 1
	case rbb.CrossChip:
		if name == "uck" {
			return 0.97
		}
		return 0.85
	default: // CrossVendor
		if name == "uck" {
			return 0.92
		}
		return 0.58
	}
}

// appShellReuse computes the LoC-weighted handcraft reuse of an
// application's tailored shell at a migration scope.
func appShellReuse(s *shell.Shell, scope rbb.MigrationScope) float64 {
	var total, reused float64
	for _, c := range s.Components {
		if c.RBB != nil {
			rep := c.RBB.Reuse(scope)
			total += float64(rep.TotalLoC)
			reused += float64(rep.ReusedLoC)
			continue
		}
		loc := float64(c.LoC().Handcraft)
		total += loc
		reused += loc * baseComponentReuse(c.Name, scope)
	}
	if total == 0 {
		return 0
	}
	return reused / total
}

// Fig15 reports each application's shell reuse when migrating across
// FPGAs (cross-vendor scope, 70-80% in the paper).
func Fig15() (*metrics.Table, error) {
	_, tailored, err := tailoredShells()
	if err != nil {
		return nil, err
	}
	tab := &metrics.Table{
		ID: "fig15", Title: "Application shell reuse across FPGAs",
		Columns: []string{"App", "Reuse", "Redev"},
	}
	for _, name := range apps.Names() {
		r := appShellReuse(tailored[name], rbb.CrossVendor)
		if err := tab.AddRow(name, fmt.Sprintf("%.2f", r), fmt.Sprintf("%.2f", 1-r)); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// Fig16 reports the worst-case resource overhead of interface wrappers
// per module and of the unified control kernel, across the evaluation
// devices (paper: wrappers < 0.37%, UCK < 0.67%).
func Fig16() (*metrics.Table, error) {
	tab := &metrics.Table{
		ID: "fig16", Title: "Wrapper and control-kernel overheads (max % of device)",
		Columns: []string{"Module", "MaxOverhead%"},
	}
	devices := []*platform.Device{
		platform.DeviceA(), platform.DeviceB(), platform.DeviceC(), platform.DeviceD(),
	}
	mods := map[string]func(platform.Vendor) (*hdl.Module, error){
		"mac": func(v platform.Vendor) (*hdl.Module, error) { return ip.MACModule(v, ip.Speed100G) },
		"pcie": func(v platform.Vendor) (*hdl.Module, error) {
			return ip.PCIePhyModule(v, 4, 16)
		},
		"dma": func(v platform.Vendor) (*hdl.Module, error) {
			return ip.DMAModule(v, 4, 16, ip.SGDMA)
		},
		"ddr": func(v platform.Vendor) (*hdl.Module, error) { return ip.MemModule(v, ip.DDR4Mem) },
	}
	for _, name := range sortedKeys(mods) {
		maxFrac := 0.0
		for _, dev := range devices {
			m, err := mods[name](dev.Vendor)
			if err != nil {
				return nil, err
			}
			_, overhead, err := wrapper.Wrap(m)
			if err != nil {
				return nil, err
			}
			if f := wrapper.OverheadFraction(overhead, dev.Chip.Capacity); f > maxFrac {
				maxFrac = f
			}
		}
		if err := tab.AddRow(name+"-wrapper", fmt.Sprintf("%.3f", maxFrac*100)); err != nil {
			return nil, err
		}
	}
	// Unified control kernel.
	maxUCK := 0.0
	for _, dev := range devices {
		unified, err := shell.BuildUnified(dev)
		if err != nil {
			return nil, err
		}
		c, ok := unified.Component("uck")
		if !ok {
			return nil, fmt.Errorf("bench: shell lacks uck component")
		}
		if f := c.Resources().Utilization(dev.Chip.Capacity); f > maxUCK {
			maxUCK = f
		}
	}
	if err := tab.AddRow("uck", fmt.Sprintf("%.3f", maxUCK*100)); err != nil {
		return nil, err
	}
	return tab, nil
}
