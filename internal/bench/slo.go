package bench

import (
	"fmt"

	"harmonia/internal/fleet"
)

// fleet10 — SLO error budgets, burn-rate alerting and causal
// postmortems under the storm. The fleet5 failure storm replays over
// the fleet8 co-resident fleet with the SLO engine armed: rolling
// error-budget windows advance at heartbeat barriers, multi-window
// burn-rate rules drive pending/firing/resolved alert transitions,
// and every firing is correlated against the ground-truth fault
// schedule plus the fleet's own event log. The gates assert the
// observability layer end to end: the storm fires latency-critical
// burn alerts and every firing is attributed to a scheduled fault, a
// fault-free control replay stays silent, every alert resolves inside
// the measured recovery bound, and the alert log plus final burn
// state are byte-identical across batch quanta and worker counts.

// SLOServicePoint is one service's storm outcome through the SLO
// engine, flattened for the report.
type SLOServicePoint struct {
	Name         string  `json:"name"`
	Class        string  `json:"class"`
	Target       float64 `json:"target"`
	Availability float64 `json:"availability"`
	PeakFastBurn float64 `json:"peak_fast_burn"`
	Firings      int64   `json:"firings"`
	Resolves     int64   `json:"resolves"`
}

// SLOAlertPoint is one alert transition flattened for the report.
type SLOAlertPoint struct {
	AtPs     int64   `json:"at_ps"`
	Service  string  `json:"service"`
	Severity string  `json:"severity"`
	State    string  `json:"state"`
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
}

// SLOCausePoint is one ranked attribution inside a postmortem.
type SLOCausePoint struct {
	Kind      string `json:"kind"`
	Count     int    `json:"count"`
	Scheduled bool   `json:"scheduled"`
	FirstPs   int64  `json:"first_ps"`
	LastPs    int64  `json:"last_ps"`
	Example   string `json:"example"`
}

// SLOPostmortemPoint is one firing's causal attribution.
type SLOPostmortemPoint struct {
	Service       string          `json:"service"`
	Severity      string          `json:"severity"`
	FiringAtPs    int64           `json:"firing_at_ps"`
	WindowStartPs int64           `json:"window_start_ps"`
	WindowEndPs   int64           `json:"window_end_ps"`
	Attributed    bool            `json:"attributed"`
	Causes        []SLOCausePoint `json:"causes"`
}

// SLOWindowPoint is one measurement window flattened for the report.
type SLOWindowPoint struct {
	AtPs           int64   `json:"at_ps"`
	LCAvailability float64 `json:"lc_availability"`
	ActiveAlerts   int     `json:"active_alerts"`
}

// SLOReport is the machine-readable fleet10 artifact (BENCH_slo.json).
type SLOReport struct {
	Experiment string `json:"experiment"` // always "fleet10"
	Devices    int    `json:"devices"`
	RackSize   int    `json:"rack_size"`
	Seed       int64  `json:"seed"`
	Budget     int    `json:"budget"`

	StormStartPs int64    `json:"storm_start_ps"`
	StormEndPs   int64    `json:"storm_end_ps"`
	Injections   []string `json:"injections"`

	// Windows are the rolling error-budget windows ("2t" = 2 heartbeat
	// ticks), Rules the burn-rate alert rules derived per service.
	Windows []string `json:"windows"`
	Rules   []string `json:"rules"`

	Services []SLOServicePoint `json:"services"`

	Alerts   []SLOAlertPoint `json:"alerts"`
	AlertLog string          `json:"alert_log"`

	LookbackPs  int64                `json:"lookback_ps"`
	Postmortems []SLOPostmortemPoint `json:"postmortems"`
	Timeline    string               `json:"timeline"`

	FiringsTotal        int `json:"firings_total"`
	FiringsLC           int `json:"firings_lc"`
	UnattributedFirings int `json:"unattributed_firings"`
	ControlFirings      int `json:"control_firings"`
	ControlAttributions int `json:"control_attributions"`

	AllResolved      bool  `json:"all_resolved"`
	LastResolvedAtPs int64 `json:"last_resolved_at_ps"`
	RecoveryBoundPs  int64 `json:"recovery_bound_ps"`

	SweepVariants []string `json:"sweep_variants"`

	Samples []SLOWindowPoint `json:"samples"`

	// Metrics is the baseline case's full registry snapshot so the
	// artifact is self-contained.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// The acceptance gates, pre-evaluated so CI can assert on the
	// artifact without re-deriving them:
	//   - AlertsAttributed: the storm fired at least one
	//     latency-critical burn alert, every firing carries at least
	//     one scheduled-fault attribution, and the fault-free control
	//     produced zero firings and zero attributions;
	//   - AlertsResolved: no alert was still pending or firing at
	//     drill end and the last resolution landed inside the
	//     measured recovery bound;
	//   - Deterministic: the alert log and final burn state were
	//     byte-identical across every (batch quantum, worker count)
	//     sweep variant.
	AlertsAttributed bool `json:"alerts_attributed"`
	AlertsResolved   bool `json:"alerts_resolved"`
	Deterministic    bool `json:"deterministic"`

	// Repro rebuilds this exact report from the seed.
	Repro string `json:"repro"`
}

// FleetSLOReport runs the fleet10 drill and evaluates its gates.
func FleetSLOReport(opts fleet.SLOOptions) (*SLOReport, *fleet.SLOResult, error) {
	d, err := fleet.SLODrill(opts)
	if err != nil {
		return nil, nil, err
	}
	rep := &SLOReport{
		Experiment:   "fleet10",
		Devices:      d.Devices,
		RackSize:     d.RackSize,
		Seed:         d.Seed,
		Budget:       d.Budget,
		StormStartPs: int64(d.StormStart),
		StormEndPs:   int64(d.StormEnd),
		Injections:   d.Injections,
		AlertLog:     d.AlertLog,
		LookbackPs:   int64(d.Lookback),
		Timeline:     d.Timeline,

		FiringsTotal:        d.FiringsTotal,
		FiringsLC:           d.FiringsLC,
		UnattributedFirings: d.UnattributedFirings,
		ControlFirings:      d.ControlFirings,
		ControlAttributions: d.ControlAttributions,

		AllResolved:      d.AllResolved,
		LastResolvedAtPs: int64(d.LastResolvedAt),
		RecoveryBoundPs:  int64(d.RecoveryBound),

		SweepVariants: d.SweepVariants,
		Metrics:       d.Metrics,
		Repro: fmt.Sprintf("go run ./cmd/harmonia-fleet -scenario slo -devices %d -seed %d -budget %d",
			d.Devices, d.Seed, d.Budget),
	}
	for _, w := range d.Windows {
		rep.Windows = append(rep.Windows, w.Name)
	}
	for _, r := range d.Rules {
		rep.Rules = append(rep.Rules, fmt.Sprintf("%s %s burn>=%g over (%s,%s)",
			r.Service, r.Severity, r.Threshold,
			d.Windows[r.FastWin].Name, d.Windows[r.SlowWin].Name))
	}
	for _, s := range d.Services {
		rep.Services = append(rep.Services, SLOServicePoint{
			Name: s.Name, Class: string(s.Class), Target: s.Target,
			Availability: s.Availability, PeakFastBurn: s.PeakFastBurn,
			Firings: s.Firings, Resolves: s.Resolves,
		})
	}
	for _, ev := range d.Alerts {
		rep.Alerts = append(rep.Alerts, SLOAlertPoint{
			AtPs: int64(ev.At), Service: ev.Service,
			Severity: string(ev.Severity), State: string(ev.State),
			BurnFast: ev.BurnFast, BurnSlow: ev.BurnSlow,
		})
	}
	for _, pm := range d.Postmortems {
		pp := SLOPostmortemPoint{
			Service:       pm.Alert.Service,
			Severity:      string(pm.Alert.Severity),
			FiringAtPs:    int64(pm.Alert.At),
			WindowStartPs: int64(pm.WindowStart),
			WindowEndPs:   int64(pm.WindowEnd),
			Attributed:    pm.Scheduled(),
		}
		for _, cse := range pm.Causes {
			pp.Causes = append(pp.Causes, SLOCausePoint{
				Kind: cse.Kind, Count: cse.Count, Scheduled: cse.Scheduled,
				FirstPs: int64(cse.First), LastPs: int64(cse.Last),
				Example: cse.Example,
			})
		}
		rep.Postmortems = append(rep.Postmortems, pp)
	}
	for _, s := range d.Samples {
		rep.Samples = append(rep.Samples, SLOWindowPoint{
			AtPs: int64(s.At), LCAvailability: s.LCAvailability,
			ActiveAlerts: s.ActiveAlerts,
		})
	}
	rep.AlertsAttributed = d.FiringsLC >= 1 && d.UnattributedFirings == 0 &&
		d.ControlFirings == 0 && d.ControlAttributions == 0
	rep.AlertsResolved = d.AllResolved && d.LastResolvedAt <= d.RecoveryBound
	rep.Deterministic = d.DeterministicSweep
	return rep, d, nil
}

// Gates reports whether every fleet10 acceptance gate held.
func (r *SLOReport) Gates() bool {
	return r.AlertsAttributed && r.AlertsResolved && r.Deterministic
}
