package bench

import (
	"fmt"

	"harmonia/internal/fleet"
)

// fleet8 — multi-service co-residency under the storm. Three services
// with distinct demand sets and classes share one fleet: the stateful
// layer-4 LB and the security gateway latency-critical, retrieval
// bulk. The fleet5 storm replays once against the co-resident fleet
// with every defense armed, and the report decomposes the fleet-wide
// outcome per service. The gates assert the SLO machinery end to end:
// latency-critical availability dominates bulk and the fleet-wide
// aggregate and clears each service's SLO; thermally eroded nodes shed
// bulk strictly before latency-critical; and failover PR loads preempt
// the elective scale-out queue, provably from the budget grant log.

// CoResServicePoint is one service's storm outcome flattened for the
// report.
type CoResServicePoint struct {
	Name            string  `json:"name"`
	Class           string  `json:"class"`
	SLOAvailability float64 `json:"slo_availability"`
	Availability    float64 `json:"availability"`
	Sent            int64   `json:"sent"`
	Served          int64   `json:"served"`
	Dropped         int64   `json:"dropped"`
	Shed            int64   `json:"shed"`
	P50Ps           int64   `json:"p50_ps"`
	P99Ps           int64   `json:"p99_ps"`
}

// CoResWindowPoint is one measurement window flattened for the report.
type CoResWindowPoint struct {
	AtPs            int64                 `json:"at_ps"`
	Healthy         int                   `json:"healthy"`
	Degraded        int                   `json:"degraded"`
	Down            int                   `json:"down"`
	BulkShedNodes   int                   `json:"bulk_shed_nodes"`
	LoadsInflight   int                   `json:"loads_inflight"`
	ElectivesQueued int                   `json:"electives_queued"`
	Services        []CoResWindowSvcPoint `json:"services"`
}

// CoResWindowSvcPoint is one service's slice of a window.
type CoResWindowSvcPoint struct {
	Name         string  `json:"name"`
	Sent         int64   `json:"sent"`
	Served       int64   `json:"served"`
	Shed         int64   `json:"shed"`
	Availability float64 `json:"availability"`
}

// CoResShedPoint is one shedding-order proof point: a node fully
// inside the bulk-shed band for a window, with its per-class serve
// deltas.
type CoResShedPoint struct {
	Window     int    `json:"window"`
	Node       string `json:"node"`
	TempMilliC uint32 `json:"temp_milli_c"`
	LCServed   int64  `json:"lc_served"`
	BulkServed int64  `json:"bulk_served"`
}

// CoResPreemptionPoint is one grant-log preemption proof: the elective
// asked first, the failover started first.
type CoResPreemptionPoint struct {
	ElectiveNode    string `json:"elective_node"`
	ElectiveReqPs   int64  `json:"elective_req_ps"`
	ElectiveStartPs int64  `json:"elective_start_ps"`
	FailoverNode    string `json:"failover_node"`
	FailoverReqPs   int64  `json:"failover_req_ps"`
	FailoverStartPs int64  `json:"failover_start_ps"`
}

// CoResReport is the machine-readable fleet8 artifact
// (BENCH_coresidency.json).
type CoResReport struct {
	Experiment string `json:"experiment"` // always "fleet8"
	Devices    int    `json:"devices"`
	RackSize   int    `json:"rack_size"`
	Seed       int64  `json:"seed"`
	Budget     int    `json:"budget"`
	ScaleOut   int    `json:"scale_out"`

	StormStartPs int64    `json:"storm_start_ps"`
	StormEndPs   int64    `json:"storm_end_ps"`
	Injections   []string `json:"injections"`

	FleetAvailability float64 `json:"fleet_availability"`
	Sent              int64   `json:"sent"`
	Served            int64   `json:"served"`
	Dropped           int64   `json:"dropped"`

	Services []CoResServicePoint `json:"services"`

	ShedObservations    []CoResShedPoint `json:"shed_observations"`
	ShedOrderProofs     int              `json:"shed_order_proofs"`
	ShedOrderViolations int              `json:"shed_order_violations"`
	LCShed              int64            `json:"lc_shed"`

	ElectivesRequested  int                    `json:"electives_requested"`
	ElectivesCompleted  int                    `json:"electives_completed"`
	ElectivesUnplaced   int                    `json:"electives_unplaced"`
	LoadsPreempted      int                    `json:"loads_preempted"`
	PeakConcurrentLoads int                    `json:"peak_concurrent_loads"`
	PreemptionPairs     []CoResPreemptionPoint `json:"preemption_pairs"`

	Failovers int `json:"failovers"`

	Windows []CoResWindowPoint `json:"windows"`

	// Metrics is the cluster's full registry snapshot (per-service
	// series included) so the artifact is self-contained.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// The acceptance gates, pre-evaluated so CI can assert on the
	// artifact without re-deriving them:
	//   - SLOOrderHeld: every latency-critical service's availability
	//     cleared its SLO, the bulk service's, and the fleet-wide
	//     aggregate;
	//   - ShedOrderHeld: at least one fully-banded window-node
	//     observation, zero banded nodes serving bulk, and zero
	//     latency-critical packets shed anywhere;
	//   - FailoverPreempts: at least one failover PR load provably
	//     started ahead of an earlier-requested elective, with the
	//     concurrent-load cap intact.
	SLOOrderHeld    bool `json:"slo_order_held"`
	ShedOrderHeld   bool `json:"shed_order_held"`
	FailoverPreempts bool `json:"failover_preempts"`

	// Repro rebuilds this exact report from the seed.
	Repro string `json:"repro"`
}

// FleetCoResReport runs the fleet8 drill and evaluates its gates.
func FleetCoResReport(opts fleet.CoResOptions) (*CoResReport, *fleet.CoResResult, error) {
	d, err := fleet.CoResidencyDrill(opts)
	if err != nil {
		return nil, nil, err
	}
	rep := &CoResReport{
		Experiment:        "fleet8",
		Devices:           d.Devices,
		RackSize:          d.RackSize,
		Seed:              d.Seed,
		Budget:            d.Budget,
		ScaleOut:          d.ScaleOut,
		StormStartPs:      int64(d.StormStart),
		StormEndPs:        int64(d.StormEnd),
		Injections:        d.Injections,
		FleetAvailability: d.FleetAvailability,
		Sent:              d.Sent,
		Served:            d.Served,
		Dropped:           d.Dropped,

		ShedOrderProofs:     d.ShedOrderProofs,
		ShedOrderViolations: d.ShedOrderViolations,
		LCShed:              d.LCShed,

		ElectivesRequested:  d.ElectivesRequested,
		ElectivesCompleted:  d.ElectivesCompleted,
		ElectivesUnplaced:   d.ElectivesUnplaced,
		LoadsPreempted:      d.LoadsPreempted,
		PeakConcurrentLoads: d.PeakConcurrentLoads,
		Failovers:           d.Failovers,
		Metrics:             d.Metrics,
		Repro: fmt.Sprintf("go run ./cmd/harmonia-fleet -scenario coresidency -devices %d -seed %d -budget %d",
			d.Devices, d.Seed, d.Budget),
	}
	var bulkAvail float64 = 1
	for _, s := range d.Services {
		rep.Services = append(rep.Services, CoResServicePoint{
			Name: s.Name, Class: string(s.Class),
			SLOAvailability: s.SLOAvailability, Availability: s.Availability,
			Sent: s.Sent, Served: s.Served, Dropped: s.Dropped, Shed: s.Shed,
			P50Ps: int64(s.P50), P99Ps: int64(s.P99),
		})
		if s.Class == fleet.ClassBulk && s.Availability < bulkAvail {
			bulkAvail = s.Availability
		}
	}
	rep.SLOOrderHeld = true
	for _, s := range d.Services {
		if s.Class != fleet.ClassLatencyCritical {
			continue
		}
		if s.Availability < s.SLOAvailability ||
			s.Availability < bulkAvail ||
			s.Availability < d.FleetAvailability {
			rep.SLOOrderHeld = false
		}
	}
	for _, ob := range d.ShedObservations {
		rep.ShedObservations = append(rep.ShedObservations, CoResShedPoint{
			Window: ob.Window, Node: ob.Node, TempMilliC: ob.TempMilliC,
			LCServed: ob.LCServed, BulkServed: ob.BulkServed,
		})
	}
	rep.ShedOrderHeld = d.ShedOrderProofs >= 1 && d.ShedOrderViolations == 0 && d.LCShed == 0
	for _, p := range d.PreemptionPairs {
		rep.PreemptionPairs = append(rep.PreemptionPairs, CoResPreemptionPoint{
			ElectiveNode: p.ElectiveNode, ElectiveReqPs: int64(p.ElectiveReqAt),
			ElectiveStartPs: int64(p.ElectiveStart),
			FailoverNode:    p.FailoverNode, FailoverReqPs: int64(p.FailoverReqAt),
			FailoverStartPs: int64(p.FailoverStart),
		})
	}
	rep.FailoverPreempts = d.LoadsPreempted >= 1 && len(d.PreemptionPairs) >= 1 &&
		d.PeakConcurrentLoads <= d.Budget
	for _, w := range d.Windows {
		wp := CoResWindowPoint{
			AtPs: int64(w.At), Healthy: w.Healthy, Degraded: w.Degraded, Down: w.Down,
			BulkShedNodes: w.BulkShedNodes, LoadsInflight: w.LoadsInflight,
			ElectivesQueued: w.ElectivesQueued,
		}
		for _, s := range w.Services {
			wp.Services = append(wp.Services, CoResWindowSvcPoint{
				Name: s.Name, Sent: s.Sent, Served: s.Served, Shed: s.Shed,
				Availability: s.Availability,
			})
		}
		rep.Windows = append(rep.Windows, wp)
	}
	return rep, d, nil
}

// Gates reports whether every fleet8 acceptance gate held.
func (r *CoResReport) Gates() bool {
	return r.SLOOrderHeld && r.ShedOrderHeld && r.FailoverPreempts
}
