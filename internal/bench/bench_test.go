package bench

import (
	"strconv"
	"strings"
	"testing"

	"harmonia/internal/metrics"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			s := out.String()
			if !strings.Contains(s, e.ID) {
				t.Errorf("%s output lacks its ID:\n%s", e.ID, s)
			}
			if len(s) < 40 {
				t.Errorf("%s output suspiciously short:\n%s", e.ID, s)
			}
		})
	}
}

func TestLookupAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 28 {
		t.Errorf("%d experiments, want 28", len(ids))
	}
	if _, err := Lookup("fig10a"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown ID should fail")
	}
}

// parseCell converts a table cell like "12.3" or "9.1x" to a float.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestFig3aShellDominates(t *testing.T) {
	fig, err := Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	shell, _ := fig.Find("shell")
	role, _ := fig.Find("role")
	if shell == nil || role == nil {
		t.Fatal("series missing")
	}
	for i, p := range shell.Points {
		if p.Y < 0.60 || p.Y > 0.92 {
			t.Errorf("app %d shell fraction %.2f outside 0.66-0.87 band", i, p.Y)
		}
		r, _ := role.Y(p.X)
		if diff := p.Y + r - 1; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("fractions at %v do not sum to 1", p.X)
		}
	}
}

func TestFig3bDifferencesLarge(t *testing.T) {
	fig, err := Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Y < 10 {
				t.Errorf("%s diff at %v = %v, want tens-to-hundreds", s.Label, p.X, p.Y)
			}
		}
	}
}

func TestFig10WrapperPreservesThroughput(t *testing.T) {
	figs := []struct {
		id  string
		run func() (*metrics.Figure, error)
	}{
		{"fig10a", Fig10a},
		{"fig10b", Fig10b},
		{"fig10c", Fig10c},
	}
	for _, f := range figs {
		fig, err := f.run()
		if err != nil {
			t.Fatalf("%s: %v", f.id, err)
		}
		nat, ok1 := fig.Find("native-tpt")
		wrp, ok2 := fig.Find("wrapped-tpt")
		natL, ok3 := fig.Find("native-lat-ns")
		wrpL, ok4 := fig.Find("wrapped-lat-ns")
		if !ok1 || !ok2 || !ok3 || !ok4 {
			t.Fatalf("%s: series missing", f.id)
		}
		for _, p := range nat.Points {
			w, _ := wrp.Y(p.X)
			// Throughput within 2% of native.
			if w < p.Y*0.98 {
				t.Errorf("%s x=%v: wrapped tpt %.2f below native %.2f", f.id, p.X, w, p.Y)
			}
			// Latency: wrapped adds nanoseconds only.
			ln, _ := natL.Y(p.X)
			lw, _ := wrpL.Y(p.X)
			if lw < ln {
				t.Errorf("%s x=%v: wrapped latency below native", f.id, p.X)
			}
			if lw-ln > 100 {
				t.Errorf("%s x=%v: wrapper adds %.0fns, want tens of ns", f.id, p.X, lw-ln)
			}
		}
	}
}

func TestFig11SavingsBand(t *testing.T) {
	tab, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	// Savings column (last) for tailored rows must sit in roughly the
	// 3-25.1% band.
	for _, row := range tab.Rows[1:] {
		saving := parseCell(t, row[len(row)-1])
		if saving < 2 || saving > 35 {
			t.Errorf("%s LUT saving %.1f%% outside band", row[0], saving)
		}
	}
}

func TestFig12ReductionBand(t *testing.T) {
	tab, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio := parseCell(t, row[3])
		if ratio < 6 || ratio > 25 {
			t.Errorf("%s config reduction %.1fx outside the 8.8-19.8x band", row[0], ratio)
		}
	}
}

func TestFig13ReductionBand(t *testing.T) {
	tab, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio := parseCell(t, row[3])
		if ratio < 40 || ratio > 200 {
			t.Errorf("%s software-mod reduction %sx far from the 88-107x band", row[0], row[3])
		}
	}
}

func TestFig14ReuseBands(t *testing.T) {
	tab, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		cv := parseCell(t, row[1])
		cc := parseCell(t, row[2])
		if cv < 0.60 || cv > 0.80 {
			t.Errorf("%s cross-vendor reuse %.2f outside 0.69-0.76 band", row[0], cv)
		}
		if cc < 0.80 || cc > 0.95 {
			t.Errorf("%s cross-chip reuse %.2f outside 0.84-0.93 band", row[0], cc)
		}
	}
}

func TestFig15ReuseBand(t *testing.T) {
	tab, err := Fig15()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		r := parseCell(t, row[1])
		if r < 0.65 || r > 0.85 {
			t.Errorf("%s app shell reuse %.2f outside the 0.70-0.80 band", row[0], r)
		}
	}
}

func TestFig16OverheadBounds(t *testing.T) {
	tab, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		pct := parseCell(t, row[1])
		bound := 0.37
		if row[0] == "uck" {
			bound = 0.67
		}
		if pct > bound {
			t.Errorf("%s overhead %.3f%% exceeds the paper's %.2f%% bound", row[0], pct, bound)
		}
	}
}

func TestFig17HarmoniaMatchesNative(t *testing.T) {
	figs := []func() (*metrics.Figure, error){Fig17a, Fig17b, Fig17c, Fig17d}
	for i, run := range figs {
		fig, err := run()
		if err != nil {
			t.Fatalf("fig17[%d]: %v", i, err)
		}
		h, _ := fig.Find("harmonia-tpt")
		n, _ := fig.Find("native-tpt")
		hl, _ := fig.Find("harmonia-lat-us")
		nl, _ := fig.Find("native-lat-us")
		if h == nil || n == nil || hl == nil || nl == nil {
			t.Fatalf("fig17[%d]: series missing", i)
		}
		for _, p := range n.Points {
			ht, _ := h.Y(p.X)
			// Full throughput preserved (within 2%).
			if ht < p.Y*0.98 {
				t.Errorf("fig17[%d] x=%v: harmonia tpt %.2f below native %.2f", i, p.X, ht, p.Y)
			}
			// Latency increase below 1%.
			lh, _ := hl.Y(p.X)
			ln, _ := nl.Y(p.X)
			if lh < ln {
				t.Errorf("fig17[%d] x=%v: harmonia latency below native", i, p.X)
			}
			if ln > 0 && (lh-ln)/ln > 0.01 {
				t.Errorf("fig17[%d] x=%v: latency increase %.2f%%, want < 1%%", i, p.X, (lh-ln)/ln*100)
			}
		}
	}
}

func TestFig18aHarmoniaLeanest(t *testing.T) {
	tab, err := Fig18a()
	if err != nil {
		t.Fatal(err)
	}
	var harmoniaLUT float64
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		rows[row[0]] = row
		if row[0] == "harmonia" {
			harmoniaLUT = parseCell(t, row[2])
		}
	}
	for name, row := range rows {
		if name == "harmonia" {
			continue
		}
		base := parseCell(t, row[2])
		saving := 1 - harmoniaLUT/base
		if saving < 0.03 || saving > 0.30 {
			t.Errorf("harmonia vs %s: saving %.1f%% outside the 3.5-14.9%% band (tolerance 3-30)",
				name, saving*100)
		}
	}
}

func TestFig18bParallelismScaling(t *testing.T) {
	fig, err := Fig18b()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		r4, _ := s.Y(4)
		r16, _ := s.Y(16)
		if ratio := r16 / r4; ratio < 3.5 || ratio > 4.1 {
			t.Errorf("%s x16/x4 = %.2f, want about 4", s.Label, ratio)
		}
	}
	// All frameworks comparable at each x.
	h, _ := fig.Find("harmonia")
	for _, s := range fig.Series {
		for _, p := range s.Points {
			hy, _ := h.Y(p.X)
			if diff := (p.Y - hy) / hy; diff > 0.05 || diff < -0.05 {
				t.Errorf("%s differs from harmonia by %.1f%% at x=%v", s.Label, diff*100, p.X)
			}
		}
	}
}

func TestFig18cSequentialWins(t *testing.T) {
	tab, err := Fig18c()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		random := parseCell(t, row[1])
		seq := parseCell(t, row[3])
		if seq <= random {
			t.Errorf("%s: sequential (%.1f) should beat random (%.1f)", row[0], seq, random)
		}
	}
}

func TestFig18dMonotone(t *testing.T) {
	fig, err := Fig18d()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y <= s.Points[i-1].Y {
				t.Errorf("%s not rising with packet size", s.Label)
				break
			}
		}
	}
}

func TestTable3Matrix(t *testing.T) {
	tab, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	// Harmonia column (last) must be all yes; in-house row must be
	// no/no/no/yes.
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("harmonia should support %s", row[0])
		}
	}
	inhouse := tab.Rows[2]
	if inhouse[1] != "no" || inhouse[2] != "no" || inhouse[3] != "no" {
		t.Errorf("in-house row wrong: %v", inhouse)
	}
}

func TestTable4Counts(t *testing.T) {
	tab, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	regs, cmds := tab.Rows[0], tab.Rows[1]
	want := [][2]string{{"84", "4"}, {"115", "5"}, {"60", "4"}}
	for i, w := range want {
		if regs[i+1] != w[0] || cmds[i+1] != w[1] {
			t.Errorf("column %d = %s/%s, want %s/%s", i, regs[i+1], cmds[i+1], w[0], w[1])
		}
	}
}

func TestAblationsTable(t *testing.T) {
	tab, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("ablation rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		factor := parseCell(t, row[4])
		if factor <= 1 {
			t.Errorf("%s: factor %.2f, the With configuration should win", row[0], factor)
		}
	}
	// Active-list scheduling must be the most dramatic win.
	for _, row := range tab.Rows {
		if row[0] == "active-queue-list" {
			if f := parseCell(t, row[4]); f < 50 {
				t.Errorf("active-list factor %.1f, want huge with 1024 queue slots", f)
			}
		}
	}
}

func TestTable1CapabilityMatrix(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, r := range tab.Rows {
		rows[r[0]] = r
	}
	// Harmonia: yes across the board.
	h := rows["harmonia"]
	for i := 1; i < 5; i++ {
		if h[i] != "yes" {
			t.Errorf("harmonia column %d = %s", i, h[i])
		}
	}
	// Baselines: single-vendor, monolithic shells, register interfaces.
	for _, name := range []string{"vitis", "oneapi", "coyote"} {
		r := rows[name]
		if r[1] != "no" || r[2] != "no" || r[4] != "no" {
			t.Errorf("%s capabilities = %v", name, r)
		}
	}
}

func TestTable2Setup(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	// 5 apps + 4 devices + 3 RBBs + 3 tasks.
	if len(tab.Rows) != 15 {
		t.Errorf("rows = %d, want 15", len(tab.Rows))
	}
	out := tab.String()
	for _, want := range []string{"sec-gateway", "bump-in-the-wire", "look-aside",
		"device-a", "XCVU35P", "HBM", "network", "monitoring"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}
