package bench

import (
	"fmt"

	"harmonia/internal/apps"
	"harmonia/internal/ip"
	"harmonia/internal/metrics"
	"harmonia/internal/pcie"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/sim"
	"harmonia/internal/wrapper"
)

// Ablations quantifies the design choices DESIGN.md calls out, each as
// an on/off comparison on one metric. Not a paper artifact; this repo's
// addition.
func Ablations() (*metrics.Table, error) {
	tab := &metrics.Table{
		ID: "ablations", Title: "Design-choice ablations",
		Columns: []string{"Choice", "Metric", "With", "Without", "Factor"},
	}
	add := func(choice, metric string, with, without float64) error {
		factor := 0.0
		if with > 0 {
			factor = without / with
		}
		return tab.AddRow(choice, metric,
			fmt.Sprintf("%.4g", with), fmt.Sprintf("%.4g", without), fmt.Sprintf("%.1fx", factor))
	}

	// Hot cache: latency of a repeat 64B read.
	repeatRead := func(cacheOn bool) (float64, error) {
		m, err := rbb.NewMemory(platform.Xilinx, ip.DDR4Mem, apps.UserClock(), apps.UserWidth)
		if err != nil {
			return 0, err
		}
		m.Cache.SetEnabled(cacheOn)
		m.Read(0, 1<<20, 64)
		_, done := m.Read(sim.Millisecond, 1<<20, 64)
		return (done - sim.Millisecond).Nanoseconds(), nil
	}
	withCache, err := repeatRead(true)
	if err != nil {
		return nil, err
	}
	withoutCache, err := repeatRead(false)
	if err != nil {
		return nil, err
	}
	if err := add("hot-cache", "repeat-read ns", withCache, withoutCache); err != nil {
		return nil, err
	}

	// Address interleaving: sustained sequential bandwidth.
	seqBW := func(on bool) (float64, error) {
		m, err := rbb.NewMemory(platform.Xilinx, ip.DDR4Mem, apps.UserClock(), apps.UserWidth)
		if err != nil {
			return 0, err
		}
		m.SetInterleaving(on)
		var last sim.Time
		const n, chunk = 4000, 256
		for i := 0; i < n; i++ {
			if d := m.Device().Access(0, int64(i)*chunk, chunk, false); d > last {
				last = d
			}
		}
		return metrics.Gbps(n*chunk, last), nil
	}
	bwOn, err := seqBW(true)
	if err != nil {
		return nil, err
	}
	bwOff, err := seqBW(false)
	if err != nil {
		return nil, err
	}
	// For bandwidth, "factor" reads better inverted: report off/on so
	// the With column stays the better configuration.
	if err := tab.AddRow("interleaving", "seq Gbps",
		fmt.Sprintf("%.4g", bwOn), fmt.Sprintf("%.4g", bwOff),
		fmt.Sprintf("%.1fx", bwOn/bwOff)); err != nil {
		return nil, err
	}

	// Active-list scheduling: scan time per dispatch with 1024 queues.
	schedCost := func(mode pcie.SchedulerMode) (float64, error) {
		link, err := pcie.NewLink("l", 4, 16)
		if err != nil {
			return 0, err
		}
		cfg := pcie.DefaultEngineConfig()
		cfg.Mode = mode
		engine, err := pcie.NewEngine(link, cfg)
		if err != nil {
			return 0, err
		}
		const n = 200
		for i := 0; i < n; i++ {
			if err := engine.Post(0, 777, pcie.DeviceToHost, 64); err != nil {
				return 0, err
			}
			engine.Step(0)
		}
		return float64(engine.SchedulingTime()) / n / float64(sim.Nanosecond), nil
	}
	active, err := schedCost(pcie.ActiveList)
	if err != nil {
		return nil, err
	}
	scan, err := schedCost(pcie.FullScan)
	if err != nil {
		return nil, err
	}
	if err := add("active-queue-list", "sched ns/op", active, scan); err != nil {
		return nil, err
	}

	// Control-queue isolation: first command dispatch under backlog.
	ctrlLatency := func(isolated bool) (float64, error) {
		link, err := pcie.NewLink("l", 4, 16)
		if err != nil {
			return 0, err
		}
		cfg := pcie.DefaultEngineConfig()
		cfg.ControlQueue = isolated
		engine, err := pcie.NewEngine(link, cfg)
		if err != nil {
			return 0, err
		}
		for i := 0; i < 64; i++ {
			engine.Post(0, 3, pcie.DeviceToHost, 4096)
		}
		engine.PostControl(0, 64)
		if isolated {
			done, _ := engine.Step(0)
			return done.Nanoseconds(), nil
		}
		// Shared queue: the command waits behind the whole backlog.
		return engine.Drain(0).Nanoseconds(), nil
	}
	iso, err := ctrlLatency(true)
	if err != nil {
		return nil, err
	}
	shared, err := ctrlLatency(false)
	if err != nil {
		return nil, err
	}
	if err := add("control-queue", "cmd dispatch ns", iso, shared); err != nil {
		return nil, err
	}

	// Pipelined wrapper: sustained transfer rate vs store-and-forward.
	clk := sim.NewClock("c", 322)
	dp, err := wrapper.NewDataPath("dp", clk, 512, clk, 512)
	if err != nil {
		return nil, err
	}
	const beats = 2000
	var pipeDone sim.Time
	for i := 0; i < beats; i++ {
		pipeDone = dp.Transfer(0, 64)
	}
	saf := sim.NewStoreAndForward("saf", clk, wrapper.PipelineDepth)
	var safDone sim.Time
	for i := 0; i < beats; i++ {
		safDone = saf.Issue(0)
	}
	pipeRate := metrics.Gbps(beats*64, pipeDone)
	safRate := metrics.Gbps(beats*64, safDone)
	if err := tab.AddRow("pipelined-wrapper", "sustained Gbps",
		fmt.Sprintf("%.4g", pipeRate), fmt.Sprintf("%.4g", safRate),
		fmt.Sprintf("%.1fx", pipeRate/safRate)); err != nil {
		return nil, err
	}
	return tab, nil
}
