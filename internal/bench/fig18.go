package bench

import (
	"fmt"

	"harmonia/internal/baseline"
	"harmonia/internal/hostsw"
	"harmonia/internal/ip"
	"harmonia/internal/metrics"
	"harmonia/internal/platform"
	"harmonia/internal/shell"
	"harmonia/internal/workload"
)

// benchDemands is the shell demand set of the framework benchmarks.
func benchDemands() shell.Demands {
	return shell.Demands{
		Memory: []shell.MemoryDemand{{Kind: ip.DDR4Mem}},
		Host:   &shell.HostDemand{Queues: 64},
	}
}

// frameworkDevice returns the evaluation device each framework runs on
// (Vitis and Coyote on device A, oneAPI on device D, Harmonia on any;
// device A is used for the head-to-head rows).
func frameworkDevice(fw *baseline.Framework) *platform.Device {
	if fw.Name() == "oneapi" {
		return platform.DeviceD()
	}
	return platform.DeviceA()
}

// Fig18a compares shell resource usage across frameworks as a
// percentage of their device (Harmonia 3.5-14.9% lower).
func Fig18a() (*metrics.Table, error) {
	cols := append([]string{"Framework", "Device"}, "LUT%", "REG%", "BRAM%")
	tab := &metrics.Table{ID: "fig18a", Title: "Framework shell resource usage", Columns: cols}
	for _, fw := range baseline.All() {
		dev := frameworkDevice(fw)
		res, err := fw.ShellResources(dev, benchDemands())
		if err != nil {
			return nil, err
		}
		pct := func(kind string) string {
			used, _ := res.Get(kind)
			capTotal, _ := dev.Chip.Capacity.Get(kind)
			return fmt.Sprintf("%.1f", float64(used)/float64(capTotal)*100)
		}
		if err := tab.AddRow(fw.Name(), dev.Name, pct("LUT"), pct("REG"), pct("BRAM")); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// Fig18b reports matrix-multiplication rate versus DSP parallelism per
// framework.
func Fig18b() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fig18b", Title: "Matrix multiplication (64x64 SP, 1024 iters)"}
	for _, fw := range baseline.All() {
		s := &metrics.Series{Label: fw.Name(), XLabel: "parallelism", YLabel: "matrices/s"}
		for _, par := range []int{4, 8, 16} {
			rate, err := fw.MatMulRate(par)
			if err != nil {
				return nil, err
			}
			s.Add(float64(par), rate)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig18c reports database-access rate per access mode per framework.
func Fig18c() (*metrics.Table, error) {
	tab := &metrics.Table{
		ID: "fig18c", Title: "Database access (M vectors/s)",
		Columns: []string{"Framework", "Random", "Fixed", "Sequential"},
	}
	for _, fw := range baseline.All() {
		row := []string{fw.Name()}
		for _, mode := range []workload.AccessMode{workload.Random, workload.Fixed, workload.Sequential} {
			rate, err := fw.DBRate(baseline.DefaultDBConfig(mode))
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", rate/1e6))
		}
		if err := tab.AddRow(row...); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// Fig18d reports TCP forwarding throughput and latency versus packet
// size per framework.
func Fig18d() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fig18d", Title: "TCP transmission"}
	for _, fw := range baseline.All() {
		tpt := &metrics.Series{Label: fw.Name() + "-tpt", XLabel: "pkt-bytes", YLabel: "Gbps"}
		lat := &metrics.Series{Label: fw.Name() + "-lat-us"}
		for _, size := range workload.TCPSizes {
			res, err := fw.TCPRun(size, 1500)
			if err != nil {
				return nil, err
			}
			tpt.Add(float64(size), res.Gbps)
			lat.Add(float64(size), res.Latency.Microseconds())
		}
		fig.Series = append(fig.Series, tpt, lat)
	}
	return fig, nil
}

// Table3 regenerates the device-support matrix.
func Table3() (*metrics.Table, error) {
	frameworks := baseline.All()
	cols := []string{"Device"}
	for _, fw := range frameworks {
		cols = append(cols, fw.Name())
	}
	tab := &metrics.Table{ID: "table3", Title: "FPGA devices supported by each framework", Columns: cols}
	rows := []struct {
		label string
		dev   *platform.Device
	}{
		{"Intel FPGAs", platform.DeviceD()},
		{"Xilinx FPGAs", platform.DeviceA()},
		{"In-house (Custom) FPGAs", platform.DeviceC()},
	}
	for _, r := range rows {
		row := []string{r.label}
		for _, fw := range frameworks {
			mark := "no"
			if fw.Supports(r.dev) {
				mark = "yes"
			}
			row = append(row, mark)
		}
		if err := tab.AddRow(row...); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// Table4 regenerates the register-vs-command configuration counts.
func Table4() (*metrics.Table, error) {
	tab := &metrics.Table{
		ID: "table4", Title: "Host configuration items: registers vs commands",
		Columns: []string{"Interface", "Monitoring", "NetworkInit", "HostInteraction"},
	}
	regRow := []string{"registers"}
	cmdRow := []string{"commands"}
	for _, task := range hostsw.Tasks() {
		regs, cmds, err := hostsw.ConfigCounts(task)
		if err != nil {
			return nil, err
		}
		regRow = append(regRow, fmt.Sprint(regs))
		cmdRow = append(cmdRow, fmt.Sprint(cmds))
	}
	if err := tab.AddRow(regRow...); err != nil {
		return nil, err
	}
	if err := tab.AddRow(cmdRow...); err != nil {
		return nil, err
	}
	return tab, nil
}
