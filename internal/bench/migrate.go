package bench

import (
	"harmonia/internal/fleet"
	"harmonia/internal/sim"
)

// fleet4 — the live-migration drill. The same deterministic failover
// (backend drained mid-run, then the most-loaded device killed) runs
// twice: a cold restart that re-pins established flows from scratch,
// and a migrated failover that carries the connection table to the
// replacement over the command path. The report holds both cases next
// to the Maglev re-hash bound so the claim — migration disrupts
// strictly fewer flows, and no more than the pool change itself forced
// — is machine-checkable.

// migrateDevices is the fleet4 drill size: big enough for real
// failover choices, small enough for CI's bench-smoke job.
const migrateDevices = 3

// MigrationPoint is one drill case flattened for the report.
type MigrationPoint struct {
	Migrated     bool    `json:"migrated"`
	Established  int     `json:"established_flows"`
	Disrupted    int     `json:"disrupted_flows"`
	Disruption   float64 `json:"disruption"`
	FlowsCarried int     `json:"flows_carried"`
	RecoveryPs   int64   `json:"recovery_ps"`
}

// MigrationReport is the machine-readable fleet4 artifact
// (BENCH_migrate.json).
type MigrationReport struct {
	Experiment string `json:"experiment"` // always "fleet4"
	App        string `json:"app"`
	Devices    int    `json:"devices"`
	Backends   int    `json:"backends"`
	Killed     string `json:"killed"`

	// MaglevBound is the fraction of the consistent-hash table the
	// mid-run backend drain remapped — the disruption floor any
	// failover strategy is judged against.
	MaglevBound float64 `json:"maglev_bound"`

	Cold     MigrationPoint `json:"cold"`
	Migrated MigrationPoint `json:"migrated"`

	// The acceptance gates, pre-evaluated so CI can assert on the
	// artifact without re-deriving them.
	StrictlyFewer bool `json:"strictly_fewer"`
	WithinBound   bool `json:"within_bound"`
}

func migrationPoint(c fleet.MigrationCase) MigrationPoint {
	return MigrationPoint{
		Migrated:     c.Migrated,
		Established:  c.Established,
		Disrupted:    c.Disrupted,
		Disruption:   c.Disruption,
		FlowsCarried: c.FlowsCarried,
		RecoveryPs:   int64(c.RecoveryTime),
	}
}

// FleetMigrationReport runs the fleet4 drill and evaluates its gates.
func FleetMigrationReport() (*MigrationReport, *fleet.MigrationDrillResult, error) {
	t := fleet.DefaultTraffic(cpApp)
	d, err := fleet.MigrationDrill(fleet.DefaultConfig(), migrateDevices, t)
	if err != nil {
		return nil, nil, err
	}
	rep := &MigrationReport{
		Experiment:  "fleet4",
		App:         cpApp,
		Devices:     d.Devices,
		Backends:    d.Backends,
		Killed:      d.Killed,
		MaglevBound: d.MaglevBound,
		Cold:        migrationPoint(d.Cold),
		Migrated:    migrationPoint(d.Migrated),
	}
	rep.StrictlyFewer = d.Migrated.Disrupted < d.Cold.Disrupted
	rep.WithinBound = d.Migrated.Disruption <= d.MaglevBound
	return rep, d, nil
}

// RecoveryTime re-exposes a point's recovery as sim.Time for printing.
func (p MigrationPoint) RecoveryTime() sim.Time { return sim.Time(p.RecoveryPs) }
