package bench

import (
	"harmonia/internal/apps"
	"harmonia/internal/ip"
	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

// wrapperSweep runs a native-vs-wrapped throughput/latency sweep and
// assembles the four-series figure shape used by Figs. 10a-c.
func wrapperSweep(id, title, xLabel string, xs []int,
	run func(x int, native bool) (gbps float64, lat sim.Time, err error)) (*metrics.Figure, error) {

	fig := &metrics.Figure{ID: id, Title: title}
	natT := &metrics.Series{Label: "native-tpt", XLabel: xLabel, YLabel: "Gbps"}
	wrpT := &metrics.Series{Label: "wrapped-tpt"}
	natL := &metrics.Series{Label: "native-lat-ns"}
	wrpL := &metrics.Series{Label: "wrapped-lat-ns"}
	for _, x := range xs {
		gN, lN, err := run(x, true)
		if err != nil {
			return nil, err
		}
		gW, lW, err := run(x, false)
		if err != nil {
			return nil, err
		}
		natT.Add(float64(x), gN)
		wrpT.Add(float64(x), gW)
		natL.Add(float64(x), lN.Nanoseconds())
		wrpL.Add(float64(x), lW.Nanoseconds())
	}
	fig.Series = append(fig.Series, natT, wrpT, natL, wrpL)
	return fig, nil
}

// Fig10a: MAC loopback throughput/latency, native interface vs through
// the wrapper, packet sizes 64-1024B.
func Fig10a() (*metrics.Figure, error) {
	const pkts = 2000
	run := func(size int, native bool) (float64, sim.Time, error) {
		n, err := rbb.NewNetwork(platform.Xilinx, ip.Speed100G, apps.UserClock(), apps.UserWidth)
		if err != nil {
			return 0, 0, err
		}
		n.SetNative(native)
		n.Filter.SetEnabled(false)
		n.Director.AddTenant(0, 0, 8)
		n.Director.SetDefaultTenant(0)
		// Latency: one isolated packet.
		lat, _, _ := n.Ingress(0, &net.Packet{WireBytes: size})
		// Throughput: a saturating burst on a fresh instance.
		n2, err := rbb.NewNetwork(platform.Xilinx, ip.Speed100G, apps.UserClock(), apps.UserWidth)
		if err != nil {
			return 0, 0, err
		}
		n2.SetNative(native)
		n2.Filter.SetEnabled(false)
		n2.Director.AddTenant(0, 0, 8)
		n2.Director.SetDefaultTenant(0)
		var done sim.Time
		for i := 0; i < pkts; i++ {
			done, _, _ = n2.Ingress(0, &net.Packet{WireBytes: size})
		}
		return metrics.Gbps(int64(pkts*size), done), lat, nil
	}
	return wrapperSweep("fig10a", "MAC module: native vs wrapper", "pkt-bytes", workload.PacketSizes, run)
}

// Fig10b: PCIe DMA host reads of 1K-16K, native vs wrapped.
func Fig10b() (*metrics.Figure, error) {
	const reads = 500
	run := func(size int, native bool) (float64, sim.Time, error) {
		h, err := rbb.NewHost(platform.Xilinx, 4, 8, ip.SGDMA, apps.UserClock(), apps.UserWidth)
		if err != nil {
			return 0, 0, err
		}
		h.SetNative(native)
		lat, err := h.Receive(0, 0, size)
		if err != nil {
			return 0, 0, err
		}
		h2, err := rbb.NewHost(platform.Xilinx, 4, 8, ip.SGDMA, apps.UserClock(), apps.UserWidth)
		if err != nil {
			return 0, 0, err
		}
		h2.SetNative(native)
		var done sim.Time
		for i := 0; i < reads; i++ {
			done, err = h2.Receive(0, i%16, size)
			if err != nil {
				return 0, 0, err
			}
		}
		return metrics.Gbps(int64(reads*size), done), lat, nil
	}
	return wrapperSweep("fig10b", "PCIe DMA module: native vs wrapper", "read-bytes", workload.ReadSizes, run)
}

// Fig10c: DDR random/sequential reads and writes at fixed 64B size,
// native vs wrapped. X encodes the pattern index: 0 rand-read,
// 1 rand-write, 2 seq-read, 3 seq-write.
func Fig10c() (*metrics.Figure, error) {
	const accesses = 5000
	patterns := []struct {
		mode  workload.AccessMode
		write bool
	}{
		{workload.Random, false},
		{workload.Random, true},
		{workload.Sequential, false},
		{workload.Sequential, true},
	}
	run := func(idx int, native bool) (float64, sim.Time, error) {
		pat := patterns[idx]
		m, err := rbb.NewMemory(platform.Xilinx, ip.DDR4Mem, apps.UserClock(), apps.UserWidth)
		if err != nil {
			return 0, 0, err
		}
		m.SetNative(native)
		gen, err := workload.NewAccessGen(pat.mode, 64, 1<<30, 99)
		if err != nil {
			return 0, 0, err
		}
		buf := make([]byte, 64)
		// Latency of one isolated access.
		var lat sim.Time
		if pat.write {
			lat = m.Write(0, gen.Next(), buf)
		} else {
			_, lat = m.Read(0, gen.Next(), 64)
		}
		// Throughput: issue the whole burst at t=0 so the device and the
		// wrapper pipeline independently; completion is the latest done.
		var done sim.Time
		for i := 0; i < accesses; i++ {
			addr := gen.Next()
			var d sim.Time
			if pat.write {
				d = m.Write(0, addr, buf)
			} else {
				_, d = m.Read(0, addr, 64)
			}
			if d > done {
				done = d
			}
		}
		return metrics.Gbps(int64(accesses*64), done), lat, nil
	}
	return wrapperSweep("fig10c", "DDR module: native vs wrapper (rr/rw/sr/sw)",
		"pattern-index", []int{0, 1, 2, 3}, run)
}
