package bench

import (
	"testing"

	"harmonia/internal/fleet"
)

// Micro-benchmarks for the routed-packet hot path at fleet scale. The
// cluster is built and matured once per benchmark; each iteration
// prepares a fresh phase outside the timer (packet slab, arrival
// offsets, flow hashes, router freeze) and times only Phase.Run — the
// batched dispatch loop — reporting ns per routed packet. CI runs
// these with -benchtime=1x -count=1 as a smoke test on every PR; local
// perf work should use -benchtime=5x or more so the per-iteration GC of
// the prepared packet slab amortises out of the average.

// fleetBenchPhases times ph.Run over b.N prepared phases on c.
func fleetBenchPhases(b *testing.B, c *fleet.Cluster, nodes int) {
	t := fleet.DefaultTraffic(cpApp)
	t.OfferedGbps = cpGbpsPerNode * float64(nodes)
	b.ResetTimer()
	var pkts int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ph, err := c.PreparePhase(cpPhase, t)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st, err := ph.Run()
		if err != nil {
			b.Fatal(err)
		}
		pkts += st.Sent
	}
	if pkts > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(pkts), "ns/pkt")
	}
}

// BenchmarkFleetFastPath1000 is the flat sharded dispatch path at 1000
// nodes — the configuration the fleet3 artifact gates at
// FastBatchedBoundNs ns/pkt.
func BenchmarkFleetFastPath1000(b *testing.B) {
	cfg := fleet.DefaultConfig()
	cfg.HeartbeatCohorts = cpCohorts(1000)
	c, err := fleet.BuildCluster(cfg, cpApp, 1000, 1000)
	if err != nil {
		b.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	fleetBenchPhases(b, c, 1000)
}

// BenchmarkFleetRackPath1000 is the rack-first two-tier dispatch path
// (RackP2C + gossip health) at 1000 nodes.
func BenchmarkFleetRackPath1000(b *testing.B) {
	cfg := fleet.DefaultConfig()
	cfg.RackP2C = true
	cfg.GossipHealth = true
	c, err := fleet.BuildCluster(cfg, cpApp, 1000, 1000)
	if err != nil {
		b.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	fleetBenchPhases(b, c, 1000)
}

// BenchmarkFleetQuantum64 is the fast path with an adversarially small
// batch quantum, bounding the cost of the quantum-split bookkeeping
// relative to BenchmarkFleetFastPath1000's default quantum.
func BenchmarkFleetQuantum64(b *testing.B) {
	cfg := fleet.DefaultConfig()
	cfg.HeartbeatCohorts = cpCohorts(1000)
	cfg.BatchQuantum = 64
	c, err := fleet.BuildCluster(cfg, cpApp, 1000, 1000)
	if err != nil {
		b.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	fleetBenchPhases(b, c, 1000)
}
