package bench

import (
	"fmt"

	"harmonia/internal/apps"
	"harmonia/internal/hdl"
	"harmonia/internal/hostsw"
	"harmonia/internal/ip"
	"harmonia/internal/metrics"
	"harmonia/internal/platform"
	"harmonia/internal/shell"
	"harmonia/internal/uck"
)

// Fig3a computes the shell-vs-role split of handcrafted development
// workload for each application (the paper measures 66-87% shell).
// X encodes the application index; two series give the fractions.
func Fig3a() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fig3a", Title: "Fraction of development workloads (shell vs role)"}
	shellSeries := &metrics.Series{Label: "shell", XLabel: "app-index", YLabel: "fraction"}
	roleSeries := &metrics.Series{Label: "role"}
	for i, name := range apps.Names() {
		info, err := apps.Lookup(name)
		if err != nil {
			return nil, err
		}
		unified, err := shell.BuildUnified(platform.DeviceA())
		if err != nil {
			return nil, err
		}
		tailored, err := unified.Tailor(info.Demands)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		sh := tailored.Code().Handcraft
		total := sh + info.RoleLoC
		shellSeries.Add(float64(i), float64(sh)/float64(total))
		roleSeries.Add(float64(i), float64(info.RoleLoC)/float64(total))
	}
	fig.Series = append(fig.Series, shellSeries, roleSeries)
	return fig, nil
}

// Fig3b measures vendor-specific property disparities (interfaces and
// configurations) between the Xilinx and Intel versions of each common
// shell IP. X encodes the module index in the order DDR, TLP, DMA,
// PCIe, MAC.
func Fig3b() (*metrics.Figure, error) {
	type pair struct {
		name       string
		xil, intel *hdl.Module
	}
	mk := func(name string, xf, inf func(platform.Vendor) (*hdl.Module, error)) (pair, error) {
		x, err := xf(platform.Xilinx)
		if err != nil {
			return pair{}, err
		}
		i, err := inf(platform.Intel)
		if err != nil {
			return pair{}, err
		}
		return pair{name: name, xil: x, intel: i}, nil
	}
	var pairs []pair
	ddr, err := mk("DDR", func(v platform.Vendor) (*hdl.Module, error) { return ip.MemModule(v, ip.DDR4Mem) },
		func(v platform.Vendor) (*hdl.Module, error) { return ip.MemModule(v, ip.DDR4Mem) })
	if err != nil {
		return nil, err
	}
	tlp, err := mk("TLP", ip.TLPModule, ip.TLPModule)
	if err != nil {
		return nil, err
	}
	dmaF := func(v platform.Vendor) (*hdl.Module, error) { return ip.DMAModule(v, 4, 16, ip.SGDMA) }
	dma, err := mk("DMA", dmaF, dmaF)
	if err != nil {
		return nil, err
	}
	phyF := func(v platform.Vendor) (*hdl.Module, error) { return ip.PCIePhyModule(v, 4, 16) }
	phy, err := mk("PCIe", phyF, phyF)
	if err != nil {
		return nil, err
	}
	macF := func(v platform.Vendor) (*hdl.Module, error) { return ip.MACModule(v, ip.Speed100G) }
	mac, err := mk("MAC", macF, macF)
	if err != nil {
		return nil, err
	}
	pairs = append(pairs, ddr, tlp, dma, phy, mac)

	fig := &metrics.Figure{ID: "fig3b", Title: "Vendor-specific module differences (DDR TLP DMA PCIe MAC)"}
	ifSeries := &metrics.Series{Label: "interface", XLabel: "module-index", YLabel: "differences"}
	cfgSeries := &metrics.Series{Label: "configuration"}
	for i, p := range pairs {
		ifSeries.Add(float64(i), float64(hdl.InterfaceDiff(p.xil, p.intel)))
		cfgSeries.Add(float64(i), float64(hdl.ConfigDiff(p.xil, p.intel)))
	}
	fig.Series = append(fig.Series, ifSeries, cfgSeries)
	return fig, nil
}

// Fig3c reports the fleet history: new device models per year and the
// total accelerator count.
func Fig3c() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fig3c", Title: "Heterogeneous FPGA fleet growth"}
	newDev := &metrics.Series{Label: "new-devices", XLabel: "year", YLabel: "count"}
	total := &metrics.Series{Label: "total-fpgas"}
	for _, y := range platform.FleetHistory() {
		newDev.Add(float64(y.Year), float64(y.NewDevices))
		total.Add(float64(y.Year), float64(y.TotalFPGAs))
	}
	fig.Series = append(fig.Series, newDev, total)
	return fig, nil
}

// Fig3d contrasts the module-initialization register choreography of a
// wait-style shell (device C) against an automation-style shell
// (device D): the op-sequence shapes host software must track.
func Fig3d() (*metrics.Table, error) {
	tab := &metrics.Table{
		ID: "fig3d", Title: "Module init sequences across shells",
		Columns: []string{"Shell", "Ops", "Waits", "Writes", "Reads", "DiffVsOther"},
	}
	cOps, err := hostsw.ModuleInitRegisters(platform.DeviceC(), "mac")
	if err != nil {
		return nil, err
	}
	dOps, err := hostsw.ModuleInitRegisters(platform.DeviceD(), "mac")
	if err != nil {
		return nil, err
	}
	count := func(ops []uck.RegOp) (waits, writes, reads int) {
		for _, op := range ops {
			switch op.Kind {
			case uck.OpWait:
				waits++
			case uck.OpWrite:
				writes++
			default:
				reads++
			}
		}
		return
	}
	diff := hostsw.DiffRegOps(cOps, dOps)
	cw, cwr, crd := count(cOps)
	dw, dwr, drd := count(dOps)
	if err := tab.AddRow("shell-A(device-c)", fmt.Sprint(len(cOps)), fmt.Sprint(cw),
		fmt.Sprint(cwr), fmt.Sprint(crd), fmt.Sprint(diff)); err != nil {
		return nil, err
	}
	if err := tab.AddRow("shell-B(device-d)", fmt.Sprint(len(dOps)), fmt.Sprint(dw),
		fmt.Sprint(dwr), fmt.Sprint(drd), fmt.Sprint(diff)); err != nil {
		return nil, err
	}
	return tab, nil
}
