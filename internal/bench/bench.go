// Package bench regenerates every table and figure of the paper's
// evaluation (§2 motivation and §5). Each experiment returns a
// metrics.Figure or metrics.Table whose series/rows mirror what the
// paper reports; cmd/harmonia-bench prints them and EXPERIMENTS.md
// records paper-vs-measured values.
package bench

import (
	"fmt"
	"sort"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID matches the paper artifact ("fig10a", "table3", ...).
	ID string
	// Title describes what the artifact shows.
	Title string
	// Run regenerates the artifact.
	Run func() (fmt.Stringer, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Framework capability comparison", Run: wrapTab(Table1)},
		{ID: "table2", Title: "Applications and devices", Run: wrapTab(Table2)},
		{ID: "fig3a", Title: "Shell vs role development workloads", Run: wrapFig(Fig3a)},
		{ID: "fig3b", Title: "Vendor IP interface/config differences", Run: wrapFig(Fig3b)},
		{ID: "fig3c", Title: "Heterogeneous FPGA fleet growth", Run: wrapFig(Fig3c)},
		{ID: "fig3d", Title: "Per-shell init sequence differences", Run: wrapTab(Fig3d)},
		{ID: "fig10a", Title: "MAC native vs wrapped", Run: wrapFig(Fig10a)},
		{ID: "fig10b", Title: "PCIe DMA native vs wrapped", Run: wrapFig(Fig10b)},
		{ID: "fig10c", Title: "DDR native vs wrapped", Run: wrapFig(Fig10c)},
		{ID: "fig11", Title: "Shell tailoring resource savings", Run: wrapTab(Fig11)},
		{ID: "fig12", Title: "Role configuration reduction", Run: wrapTab(Fig12)},
		{ID: "fig13", Title: "Software modification reduction", Run: wrapTab(Fig13)},
		{ID: "fig14", Title: "RBB reuse across vendors and chips", Run: wrapTab(Fig14)},
		{ID: "fig15", Title: "Application shell reuse across FPGAs", Run: wrapTab(Fig15)},
		{ID: "fig16", Title: "Wrapper and UCK resource overheads", Run: wrapTab(Fig16)},
		{ID: "fig17a", Title: "Sec-Gateway performance", Run: wrapFig(Fig17a)},
		{ID: "fig17b", Title: "Layer-4 LB performance", Run: wrapFig(Fig17b)},
		{ID: "fig17c", Title: "Host Network performance", Run: wrapFig(Fig17c)},
		{ID: "fig17d", Title: "Retrieval performance", Run: wrapFig(Fig17d)},
		{ID: "fig18a", Title: "Framework shell resource usage", Run: wrapTab(Fig18a)},
		{ID: "fig18b", Title: "Matrix multiplication performance", Run: wrapFig(Fig18b)},
		{ID: "fig18c", Title: "Database access performance", Run: wrapTab(Fig18c)},
		{ID: "fig18d", Title: "TCP transmission performance", Run: wrapFig(Fig18d)},
		{ID: "fleet1", Title: "Fleet scale-out aggregate throughput", Run: wrapFig(FleetScaleOut)},
		{ID: "fleet2", Title: "Fleet failover recovery time", Run: wrapFig(FleetRecovery)},
		{ID: "fleet3", Title: "Fleet control-plane overhead scaling", Run: wrapFig(FleetControlPlane)},
		{ID: "table3", Title: "FPGA devices supported per framework", Run: wrapTab(Table3)},
		{ID: "table4", Title: "Register vs command configuration items", Run: wrapTab(Table4)},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// IDs lists experiment IDs in paper order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

func wrapFig[T fmt.Stringer](f func() (T, error)) func() (fmt.Stringer, error) {
	return func() (fmt.Stringer, error) {
		v, err := f()
		if err != nil {
			return nil, err
		}
		return v, nil
	}
}

func wrapTab[T fmt.Stringer](f func() (T, error)) func() (fmt.Stringer, error) {
	return wrapFig(f)
}

// sortedKeys returns a map's keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
