package bench

import (
	"fmt"

	"harmonia/internal/fleet"
)

// fleet9 — the crash-safe rebalancing drill. A fragmented fleet (four
// drain→revive churn cycles stranding retired queue ranges) is
// rebalanced three times: a clean planned cycle with a corrupted delta
// frame and a stalled table read (the retry machinery must absorb both
// with zero flow disruption), a source killed mid-pre-copy (the move
// aborts and failover degrades to the periodic-snapshot fallback, whose
// disruption must stay within the fleet4 cold-restart baseline), and a
// budget-1 run where a concurrent failover preempts the pending moves
// (provable from the grant log).

// coldRestartDisruptionBound is the fleet4 cold-restart disruption
// baseline (BENCH_migrate.json: cold.disruption = 0.1220). A rebalance
// source killed mid-move must degrade no worse than a fleet that never
// migrated at all.
const coldRestartDisruptionBound = 0.122

// RebalanceCasePoint is one drill case flattened for the report.
type RebalanceCasePoint struct {
	Name    string   `json:"name"`
	Windows int      `json:"windows"`
	Budget  int      `json:"budget"`
	Armed   []string `json:"armed,omitempty"`

	FragScoreBefore   float64 `json:"frag_score_before"`
	FragScoreAfter    float64 `json:"frag_score_after"`
	StrandedBefore    int     `json:"stranded_queues_before"`
	StrandedAfter     int     `json:"stranded_queues_after"`
	QueuesReclaimed   int     `json:"queues_reclaimed"`
	Rebuilds          int     `json:"rebuilds"`
	MovesPlanned      int     `json:"moves_planned"`
	MovesDone         int     `json:"moves_done"`
	MovesAborted      int     `json:"moves_aborted"`
	Retries           int     `json:"retries"`
	EstablishedFlows  int     `json:"established_flows"`
	DisruptedFlows    int     `json:"disrupted_flows"`
	Disruption        float64 `json:"disruption"`
	PeakLoads         int     `json:"peak_concurrent_loads"`
	LoadsPreempted    int     `json:"loads_preempted"`
	PreemptionPairs   int     `json:"preemption_pairs"`
	Failovers         int     `json:"failovers"`
	SnapshotFallbacks int     `json:"snapshot_fallbacks"`

	// Records carries every rebalance move's migration record (per-phase
	// timestamps, row accounting, retries, abort flag); failover
	// evacuations during the case ride along with PlannedAt == 0.
	Records []fleet.MigrationRecord `json:"records"`
}

// RebalanceReport is the machine-readable fleet9 artifact
// (BENCH_rebalance.json).
type RebalanceReport struct {
	Experiment string `json:"experiment"` // always "fleet9"
	App        string `json:"app"`
	Devices    int    `json:"devices"`
	Seed       int64  `json:"seed"`
	Budget     int    `json:"budget"`

	// ColdRestartBound is the fleet4 cold-restart disruption baseline
	// the kill-source case is judged against.
	ColdRestartBound float64 `json:"cold_restart_bound"`

	Cases []RebalanceCasePoint `json:"cases"`

	// The acceptance gates, pre-evaluated so CI can assert on the
	// artifact without re-deriving them.
	//
	// CarriesAllFlows: the planned cycle completed moves, every
	// completed move restored exactly the rows it carried (pre-copy +
	// delta, nothing dropped), the injected faults were absorbed by
	// retries, and disruption is exactly zero.
	CarriesAllFlows bool `json:"carries_all_flows"`
	// FragDecreases: the planned cycle strictly decreased the
	// fragmentation score and rebuilt at least one node.
	FragDecreases bool `json:"frag_decreases"`
	// FaultedWithinBound: the kill-source case aborted the move, fell
	// back to snapshot failover, and stayed within the cold-restart
	// disruption bound without ever exceeding the PR-load cap.
	FaultedWithinBound bool `json:"faulted_within_bound"`
	// FailoverPreempts: at budget 1, the concurrent failover's grant
	// jumped ahead of a move planned earlier (grant-log pairs exist)
	// and the cap held.
	FailoverPreempts bool `json:"failover_preempts"`

	// Repro is the one-command reproduction line.
	Repro string `json:"repro"`
}

// Gates reports whether every acceptance gate passed.
func (r *RebalanceReport) Gates() bool {
	return r.CarriesAllFlows && r.FragDecreases && r.FaultedWithinBound && r.FailoverPreempts
}

func rebalanceCasePoint(cc fleet.RebalanceCase) RebalanceCasePoint {
	return RebalanceCasePoint{
		Name: cc.Name, Windows: cc.Windows, Budget: cc.Budget, Armed: cc.Armed,
		FragScoreBefore: cc.FragBefore.Score, FragScoreAfter: cc.FragAfter.Score,
		StrandedBefore: cc.FragBefore.StrandedQueues, StrandedAfter: cc.FragAfter.StrandedQueues,
		QueuesReclaimed: cc.Stats.QueuesReclaimed, Rebuilds: cc.Stats.Rebuilds,
		MovesPlanned: cc.Stats.MovesPlanned, MovesDone: cc.Stats.MovesDone,
		MovesAborted: cc.Stats.MovesAborted, Retries: cc.Stats.Retries,
		EstablishedFlows: cc.Established, DisruptedFlows: cc.Disrupted,
		Disruption: cc.Disruption,
		PeakLoads:  cc.PeakConcurrentLoads, LoadsPreempted: cc.LoadsPreempted,
		PreemptionPairs: len(cc.PreemptionPairs), Failovers: cc.Failovers,
		SnapshotFallbacks: cc.SnapshotMigrations,
		Records:           cc.Records,
	}
}

// rebalanceMovesClean reports whether every completed rebalance move in
// a case restored exactly what it carried.
func rebalanceMovesClean(cc fleet.RebalanceCase) bool {
	for _, m := range cc.Records {
		if m.PlannedAt == 0 || m.Aborted {
			continue
		}
		if m.Dropped != 0 || m.Restored != m.Flows {
			return false
		}
	}
	return true
}

// FleetRebalanceReport runs the fleet9 drill and evaluates its gates.
func FleetRebalanceReport(opts fleet.RebalanceOptions) (*RebalanceReport, *fleet.RebalanceDrillResult, error) {
	d, err := fleet.RebalanceDrill(opts)
	if err != nil {
		return nil, nil, err
	}
	rep := &RebalanceReport{
		Experiment: "fleet9", App: cpApp,
		Devices: d.Devices, Seed: d.Seed, Budget: d.Budget,
		ColdRestartBound: coldRestartDisruptionBound,
		Repro: fmt.Sprintf("go run ./cmd/harmonia-fleet -scenario rebalance -devices %d -budget %d -seed %d",
			d.Devices, d.Budget, d.Seed),
	}
	byName := map[string]*fleet.RebalanceCase{}
	for i := range d.Cases {
		rep.Cases = append(rep.Cases, rebalanceCasePoint(d.Cases[i]))
		byName[d.Cases[i].Name] = &d.Cases[i]
	}
	if cc := byName["planned"]; cc != nil {
		rep.CarriesAllFlows = cc.Stats.MovesDone >= 1 && cc.Disrupted == 0 &&
			cc.Stats.Retries >= len(cc.Armed) && rebalanceMovesClean(*cc)
		rep.FragDecreases = cc.FragAfter.Score < cc.FragBefore.Score && cc.Stats.Rebuilds >= 1
	}
	if cc := byName["kill-source"]; cc != nil {
		rep.FaultedWithinBound = cc.Stats.MovesAborted >= 1 && cc.SnapshotMigrations >= 1 &&
			cc.Disruption <= coldRestartDisruptionBound && cc.PeakConcurrentLoads <= cc.Budget
	}
	if cc := byName["preempt"]; cc != nil {
		rep.FailoverPreempts = len(cc.PreemptionPairs) >= 1 && cc.LoadsPreempted >= 1 &&
			cc.PeakConcurrentLoads <= cc.Budget
	}
	return rep, d, nil
}
