package bench

import (
	"fmt"
	"runtime"
	"time"

	"harmonia/internal/fleet"
	"harmonia/internal/metrics"
	"harmonia/internal/sim"
)

// Fleet experiments exercise the multi-device control plane beyond the
// paper's single-device evaluation: the scale-out throughput series and
// the failover recovery-time series, both over the heterogeneous
// catalog fleet (§2.3's cloud deployment setting).

// fleetSweepMax bounds the device-count sweep.
const fleetSweepMax = 4

// FleetScaleOut measures aggregate cluster goodput and QPS as the fleet
// grows from 1 to 4 devices with offered load proportional to fleet
// size. Aggregate throughput growing with device count is the property
// the control plane must preserve.
func FleetScaleOut() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fleet1", Title: "Fleet scale-out aggregate throughput"}
	goodput := &metrics.Series{Label: "goodput-gbps", XLabel: "devices", YLabel: "Gbps"}
	offered := &metrics.Series{Label: "offered-gbps"}
	qps := &metrics.Series{Label: "mqps"}
	t := fleet.DefaultTraffic("layer4-lb")
	pts, err := fleet.ScaleOut(fleet.DefaultConfig(), "layer4-lb", fleetSweepMax, t)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		x := float64(p.Devices)
		goodput.Add(x, p.GoodputGbps)
		offered.Add(x, t.OfferedGbps*x)
		qps.Add(x, p.QPS/1e6)
	}
	fig.Series = append(fig.Series, goodput, offered, qps)
	return fig, nil
}

// ControlPlaneSizes is the default fleet3 sweep: the sizes where the
// per-packet candidate scan stops being noise and starts being the
// bottleneck.
var ControlPlaneSizes = []int{100, 300, 1000}

// ControlPlaneScaleSizes extends the sweep to the 10k-node scale point
// the rack-hierarchical path exists for. The serial baseline is skipped
// above cpBaselineMax (it would dominate the run without informing the
// comparison); the flat fast path and the rack path both run.
var ControlPlaneScaleSizes = []int{100, 300, 1000, 10000}

// cpBaselineMax is the largest fleet the serial probe-every-node
// baseline still runs at. Beyond it the point records BaselineSkipped.
const cpBaselineMax = 1000

// RackFlatBound is the fleet3 scale gate: the rack path's ns/pkt at
// 10000 nodes must stay within this factor of its 1000-node cost —
// per-packet dispatch cost must not scale with the fleet.
const RackFlatBound = 1.25

// AllocBound is the fleet3 allocation gate: the batched fast path and
// the rack path must stay at or below this many heap allocations per
// routed packet at every swept size of at least AllocGateMinNodes —
// per-packet dispatch must not allocate; the residual budget covers
// barrier-time control-plane work amortized over the phase. Below the
// floor a 50 µs phase routes too few packets (hundreds) for the
// per-barrier dispatch-view rebuild to amortize, so toy sweeps are
// exempt.
const (
	AllocBound        = 0.05
	AllocGateMinNodes = 100
)

// FastBatchedBoundNs and FastBatchedGateNodes are the fleet3 batched-
// dispatch gate: the fast path's wall-ns per packet at the 1000-node
// point must stay at or below the bound (the pre-batching point
// measured ~1771 ns/pkt there).
const (
	FastBatchedBoundNs   = 800.0
	FastBatchedGateNodes = 1000
)

// Fixed fleet3 workload: a short phase keeps the serial baseline at
// 1000 nodes affordable in CI while still routing tens of thousands of
// packets per point.
const (
	cpPhase       = 50 * sim.Microsecond
	cpGbpsPerNode = 40.0
	cpApp         = "layer4-lb"
)

// ControlPlanePoint is one fleet-size measurement of control-plane
// routing overhead: the same prepared workload run on the pre-shard
// serial path (per-packet candidate scan, probe-every-node monitor) and
// on the sharded fast path (incremental replica index, cohort
// heartbeats, histogram latency window).
type ControlPlanePoint struct {
	Nodes   int   `json:"nodes"`
	Shards  int   `json:"shards"`
	Cohorts int   `json:"cohorts"`
	Racks   int   `json:"racks"`
	Packets int64 `json:"packets"`

	// BaselineSkipped marks points above cpBaselineMax, where the
	// serial scan is no longer affordable (or interesting). The
	// baseline-derived fields below are pointers so skipped points omit
	// them entirely instead of emitting a 0 that downstream tooling
	// would read as a 0 ns baseline.
	BaselineSkipped bool `json:"baseline_skipped,omitempty"`

	BaselineNsPerPkt     *float64 `json:"baseline_ns_per_pkt,omitempty"`
	FastNsPerPkt         float64  `json:"fast_ns_per_pkt"`
	BaselineAllocsPerPkt *float64 `json:"baseline_allocs_per_pkt,omitempty"`
	FastAllocsPerPkt     float64  `json:"fast_allocs_per_pkt"`
	SpeedupWall          *float64 `json:"speedup_wall,omitempty"`
	AllocReduction       *float64 `json:"alloc_reduction,omitempty"`

	// Rack path: RackP2C dispatch with gossip health, the
	// configuration the 10k point scales on.
	RackNsPerPkt     float64 `json:"rack_ns_per_pkt"`
	RackAllocsPerPkt float64 `json:"rack_allocs_per_pkt"`

	// Goodput on every path — the sanity check that the cheaper paths
	// routed the same workload, not a cheaper one.
	BaselineGoodputGbps *float64 `json:"baseline_goodput_gbps,omitempty"`
	FastGoodputGbps     float64  `json:"fast_goodput_gbps"`
	RackGoodputGbps     float64  `json:"rack_goodput_gbps"`
}

// ControlPlaneReport is the machine-readable fleet3 artifact
// (BENCH_fleet.json).
type ControlPlaneReport struct {
	Experiment  string              `json:"experiment"`
	App         string              `json:"app"`
	PhasePs     int64               `json:"phase_ps"`
	GbpsPerNode float64             `json:"gbps_per_node"`
	Points      []ControlPlanePoint `json:"points"`

	// Scale gate: rack-path ns/pkt at 10000 nodes over the 1000-node
	// point, against RackFlatBound. True (ratio 0) when the sweep did
	// not cover both sizes.
	RackFlatRatio float64 `json:"rack_flat_ratio"`
	RackFlatBound float64 `json:"rack_flat_bound"`
	RackFlat      bool    `json:"rack_flat"`

	// Allocation gate: fast and rack allocs/pkt at or below AllocBound
	// at every swept size.
	AllocBound float64 `json:"alloc_bound"`
	AllocsFlat bool    `json:"allocs_flat"`

	// Batched-dispatch gate: fast-path ns/pkt at FastBatchedGateNodes
	// at or below FastBatchedBoundNs. True (ns 0) when the sweep did
	// not cover that size.
	FastGateNodes    int     `json:"fast_gate_nodes"`
	FastGateBoundNs  float64 `json:"fast_gate_bound_ns"`
	FastGateNsPerPkt float64 `json:"fast_gate_ns_per_pkt,omitempty"`
	FastGate         bool    `json:"fast_gate"`
}

// gateRackFlat computes the scale gate over the sweep's points.
func (r *ControlPlaneReport) gateRackFlat() {
	r.RackFlatBound = RackFlatBound
	r.RackFlat = true
	var at1k, at10k float64
	for _, p := range r.Points {
		switch p.Nodes {
		case 1000:
			at1k = p.RackNsPerPkt
		case 10000:
			at10k = p.RackNsPerPkt
		}
	}
	if at1k > 0 && at10k > 0 {
		r.RackFlatRatio = at10k / at1k
		r.RackFlat = r.RackFlatRatio <= RackFlatBound
	}
}

// gateAllocs computes the allocation gate: every swept fleet-scale
// point's fast and rack paths must route without per-packet heap
// allocation.
func (r *ControlPlaneReport) gateAllocs() {
	r.AllocBound = AllocBound
	r.AllocsFlat = true
	for _, p := range r.Points {
		if p.Nodes < AllocGateMinNodes {
			continue
		}
		if p.FastAllocsPerPkt > AllocBound || p.RackAllocsPerPkt > AllocBound {
			r.AllocsFlat = false
		}
	}
}

// gateFastBatched computes the batched-dispatch gate at the 1000-node
// point.
func (r *ControlPlaneReport) gateFastBatched() {
	r.FastGateNodes = FastBatchedGateNodes
	r.FastGateBoundNs = FastBatchedBoundNs
	r.FastGate = true
	for _, p := range r.Points {
		if p.Nodes == FastBatchedGateNodes {
			r.FastGateNsPerPkt = p.FastNsPerPkt
			r.FastGate = p.FastNsPerPkt <= FastBatchedBoundNs
		}
	}
}

// cpCohorts picks the heartbeat cohort count for a fleet size, mirroring
// the router's auto shard policy: one cohort per 64 devices, capped.
func cpCohorts(n int) int {
	c := n/64 + 1
	if c > 16 {
		c = 16
	}
	return c
}

// measuredPhase runs one prepared phase and reports wall-ns and heap
// allocations per offered packet. Workload generation and cluster
// bring-up happen before the clock starts; only the serving loop is
// measured.
func measuredPhase(run func() (fleet.PhaseStats, error)) (fleet.PhaseStats, float64, float64, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	st, err := run()
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return st, 0, 0, err
	}
	if st.Sent == 0 {
		return st, 0, 0, fmt.Errorf("bench: measured phase sent no packets")
	}
	return st,
		float64(wall.Nanoseconds()) / float64(st.Sent),
		float64(m1.Mallocs-m0.Mallocs) / float64(st.Sent),
		nil
}

// cpPrepare builds an n-device cluster, lets placement mature, and
// prepares the seeded fleet3 phase (offered load proportional to fleet
// size, so per-packet cost is compared at matched utilization).
func cpPrepare(cfg fleet.Config, n int) (*fleet.Phase, error) {
	c, err := fleet.BuildCluster(cfg, cpApp, n, n)
	if err != nil {
		return nil, err
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	t := fleet.DefaultTraffic(cpApp)
	t.OfferedGbps = cpGbpsPerNode * float64(n)
	return c.PreparePhase(cpPhase, t)
}

// ControlPlaneSweep measures routing overhead at each fleet size. Each
// point builds two identically configured clusters over the same seeded
// workload: one runs Phase.RunBaseline (the pre-shard serial path with
// a probe-every-node monitor), the other Phase.Run (sharded fast path
// with cohort heartbeats).
func ControlPlaneSweep(sizes []int) ([]ControlPlanePoint, error) {
	var out []ControlPlanePoint
	for _, n := range sizes {
		if n < 1 {
			return out, fmt.Errorf("bench: invalid fleet size %d", n)
		}
		p := ControlPlanePoint{Nodes: n, Cohorts: cpCohorts(n)}

		// Baseline: every heartbeat probes every node, as the serial
		// monitor did before cohorts existed. Skipped past the size
		// where the serial scan stops being an interesting comparison.
		if n <= cpBaselineMax {
			base := fleet.DefaultConfig()
			base.HeartbeatCohorts = 1
			bph, err := cpPrepare(base, n)
			if err != nil {
				return out, err
			}
			bst, bNs, bAllocs, err := measuredPhase(bph.RunBaseline)
			if err != nil {
				return out, err
			}
			goodput := bst.GoodputGbps
			p.BaselineNsPerPkt, p.BaselineAllocsPerPkt = &bNs, &bAllocs
			p.BaselineGoodputGbps = &goodput
		} else {
			p.BaselineSkipped = true
		}

		fast := fleet.DefaultConfig()
		fast.HeartbeatCohorts = cpCohorts(n)
		fph, err := cpPrepare(fast, n)
		if err != nil {
			return out, err
		}
		fst, fNs, fAllocs, err := measuredPhase(fph.Run)
		if err != nil {
			return out, err
		}
		p.Shards, p.Packets = fph.Shards(), fst.Sent
		p.FastNsPerPkt, p.FastAllocsPerPkt = fNs, fAllocs
		p.FastGoodputGbps = fst.GoodputGbps

		// Rack path: one shard per rack, rack-first two-choices
		// dispatch, gossip health instead of the central sweep — the
		// configuration whose per-packet cost must not scale with n.
		rack := fleet.DefaultConfig()
		rack.RackP2C = true
		rack.GossipHealth = true
		rph, err := cpPrepare(rack, n)
		if err != nil {
			return out, err
		}
		rst, rNs, rAllocs, err := measuredPhase(rph.Run)
		if err != nil {
			return out, err
		}
		p.Racks = rph.Shards()
		p.RackNsPerPkt, p.RackAllocsPerPkt = rNs, rAllocs
		p.RackGoodputGbps = rst.GoodputGbps

		if fNs > 0 && p.BaselineNsPerPkt != nil {
			spd := *p.BaselineNsPerPkt / fNs
			p.SpeedupWall = &spd
		}
		if fAllocs > 0 && p.BaselineAllocsPerPkt != nil {
			red := *p.BaselineAllocsPerPkt / fAllocs
			p.AllocReduction = &red
		}
		out = append(out, p)
	}
	return out, nil
}

// FleetControlPlaneReport runs the sweep and wraps it as the
// BENCH_fleet.json artifact.
func FleetControlPlaneReport(sizes []int) (*ControlPlaneReport, error) {
	if len(sizes) == 0 {
		sizes = ControlPlaneSizes
	}
	pts, err := ControlPlaneSweep(sizes)
	if err != nil {
		return nil, err
	}
	rep := &ControlPlaneReport{
		Experiment: "fleet3", App: cpApp,
		PhasePs: int64(cpPhase), GbpsPerNode: cpGbpsPerNode,
		Points: pts,
	}
	rep.gateRackFlat()
	rep.gateAllocs()
	rep.gateFastBatched()
	return rep, nil
}

// FleetControlPlane is the fleet3 figure: control-plane overhead per
// routed packet as the fleet scales, serial scan vs sharded fast path.
func FleetControlPlane() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fleet3", Title: "Fleet control-plane overhead scaling"}
	bNs := &metrics.Series{Label: "baseline-ns-per-pkt", XLabel: "devices", YLabel: "ns/pkt"}
	fNs := &metrics.Series{Label: "fastpath-ns-per-pkt"}
	rNs := &metrics.Series{Label: "rackpath-ns-per-pkt"}
	bAl := &metrics.Series{Label: "baseline-allocs-per-pkt"}
	fAl := &metrics.Series{Label: "fastpath-allocs-per-pkt"}
	pts, err := ControlPlaneSweep(ControlPlaneSizes)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		x := float64(p.Nodes)
		if p.BaselineNsPerPkt != nil {
			bNs.Add(x, *p.BaselineNsPerPkt)
			bAl.Add(x, *p.BaselineAllocsPerPkt)
		}
		fNs.Add(x, p.FastNsPerPkt)
		rNs.Add(x, p.RackNsPerPkt)
		fAl.Add(x, p.FastAllocsPerPkt)
	}
	fig.Series = append(fig.Series, bNs, fNs, rNs, bAl, fAl)
	return fig, nil
}

// FleetRecovery measures the kill-a-device drill across fleet sizes:
// detection latency (missed-heartbeat budget) and fault-to-full-
// re-placement recovery time, which the PR reconfiguration dominates.
func FleetRecovery() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fleet2", Title: "Fleet failover recovery time"}
	detect := &metrics.Series{Label: "detect-us", XLabel: "devices", YLabel: "microseconds"}
	recover := &metrics.Series{Label: "recovery-us"}
	retained := &metrics.Series{Label: "post-goodput-frac"}
	for n := 2; n <= fleetSweepMax; n++ {
		d, err := fleet.KillDrill(fleet.DefaultConfig(), "layer4-lb", n, fleet.DefaultTraffic("layer4-lb"))
		if err != nil {
			return nil, err
		}
		x := float64(n)
		detect.Add(x, float64(d.DetectedAt-d.FaultAt)/float64(sim.Microsecond))
		recover.Add(x, float64(d.RecoveryTime)/float64(sim.Microsecond))
		retained.Add(x, d.Post.GoodputGbps/d.Pre.GoodputGbps)
	}
	fig.Series = append(fig.Series, detect, recover, retained)
	return fig, nil
}
