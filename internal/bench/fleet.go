package bench

import (
	"fmt"
	"runtime"
	"time"

	"harmonia/internal/fleet"
	"harmonia/internal/metrics"
	"harmonia/internal/sim"
)

// Fleet experiments exercise the multi-device control plane beyond the
// paper's single-device evaluation: the scale-out throughput series and
// the failover recovery-time series, both over the heterogeneous
// catalog fleet (§2.3's cloud deployment setting).

// fleetSweepMax bounds the device-count sweep.
const fleetSweepMax = 4

// FleetScaleOut measures aggregate cluster goodput and QPS as the fleet
// grows from 1 to 4 devices with offered load proportional to fleet
// size. Aggregate throughput growing with device count is the property
// the control plane must preserve.
func FleetScaleOut() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fleet1", Title: "Fleet scale-out aggregate throughput"}
	goodput := &metrics.Series{Label: "goodput-gbps", XLabel: "devices", YLabel: "Gbps"}
	offered := &metrics.Series{Label: "offered-gbps"}
	qps := &metrics.Series{Label: "mqps"}
	t := fleet.DefaultTraffic("layer4-lb")
	pts, err := fleet.ScaleOut(fleet.DefaultConfig(), "layer4-lb", fleetSweepMax, t)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		x := float64(p.Devices)
		goodput.Add(x, p.GoodputGbps)
		offered.Add(x, t.OfferedGbps*x)
		qps.Add(x, p.QPS/1e6)
	}
	fig.Series = append(fig.Series, goodput, offered, qps)
	return fig, nil
}

// ControlPlaneSizes is the default fleet3 sweep: the sizes where the
// per-packet candidate scan stops being noise and starts being the
// bottleneck.
var ControlPlaneSizes = []int{100, 300, 1000}

// Fixed fleet3 workload: a short phase keeps the serial baseline at
// 1000 nodes affordable in CI while still routing tens of thousands of
// packets per point.
const (
	cpPhase       = 50 * sim.Microsecond
	cpGbpsPerNode = 40.0
	cpApp         = "layer4-lb"
)

// ControlPlanePoint is one fleet-size measurement of control-plane
// routing overhead: the same prepared workload run on the pre-shard
// serial path (per-packet candidate scan, probe-every-node monitor) and
// on the sharded fast path (incremental replica index, cohort
// heartbeats, histogram latency window).
type ControlPlanePoint struct {
	Nodes   int   `json:"nodes"`
	Shards  int   `json:"shards"`
	Cohorts int   `json:"cohorts"`
	Packets int64 `json:"packets"`

	BaselineNsPerPkt     float64 `json:"baseline_ns_per_pkt"`
	FastNsPerPkt         float64 `json:"fast_ns_per_pkt"`
	BaselineAllocsPerPkt float64 `json:"baseline_allocs_per_pkt"`
	FastAllocsPerPkt     float64 `json:"fast_allocs_per_pkt"`
	SpeedupWall          float64 `json:"speedup_wall"`
	AllocReduction       float64 `json:"alloc_reduction"`

	// Goodput on both paths — the sanity check that the fast path
	// routed the same workload, not a cheaper one.
	BaselineGoodputGbps float64 `json:"baseline_goodput_gbps"`
	FastGoodputGbps     float64 `json:"fast_goodput_gbps"`
}

// ControlPlaneReport is the machine-readable fleet3 artifact
// (BENCH_fleet.json).
type ControlPlaneReport struct {
	Experiment  string              `json:"experiment"`
	App         string              `json:"app"`
	PhasePs     int64               `json:"phase_ps"`
	GbpsPerNode float64             `json:"gbps_per_node"`
	Points      []ControlPlanePoint `json:"points"`
}

// cpCohorts picks the heartbeat cohort count for a fleet size, mirroring
// the router's auto shard policy: one cohort per 64 devices, capped.
func cpCohorts(n int) int {
	c := n/64 + 1
	if c > 16 {
		c = 16
	}
	return c
}

// measuredPhase runs one prepared phase and reports wall-ns and heap
// allocations per offered packet. Workload generation and cluster
// bring-up happen before the clock starts; only the serving loop is
// measured.
func measuredPhase(run func() (fleet.PhaseStats, error)) (fleet.PhaseStats, float64, float64, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	st, err := run()
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return st, 0, 0, err
	}
	if st.Sent == 0 {
		return st, 0, 0, fmt.Errorf("bench: measured phase sent no packets")
	}
	return st,
		float64(wall.Nanoseconds()) / float64(st.Sent),
		float64(m1.Mallocs-m0.Mallocs) / float64(st.Sent),
		nil
}

// cpPrepare builds an n-device cluster, lets placement mature, and
// prepares the seeded fleet3 phase (offered load proportional to fleet
// size, so per-packet cost is compared at matched utilization).
func cpPrepare(cfg fleet.Config, n int) (*fleet.Phase, error) {
	c, err := fleet.BuildCluster(cfg, cpApp, n, n)
	if err != nil {
		return nil, err
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	t := fleet.DefaultTraffic(cpApp)
	t.OfferedGbps = cpGbpsPerNode * float64(n)
	return c.PreparePhase(cpPhase, t)
}

// ControlPlaneSweep measures routing overhead at each fleet size. Each
// point builds two identically configured clusters over the same seeded
// workload: one runs Phase.RunBaseline (the pre-shard serial path with
// a probe-every-node monitor), the other Phase.Run (sharded fast path
// with cohort heartbeats).
func ControlPlaneSweep(sizes []int) ([]ControlPlanePoint, error) {
	var out []ControlPlanePoint
	for _, n := range sizes {
		if n < 1 {
			return out, fmt.Errorf("bench: invalid fleet size %d", n)
		}
		// Baseline: every heartbeat probes every node, as the serial
		// monitor did before cohorts existed.
		base := fleet.DefaultConfig()
		base.HeartbeatCohorts = 1
		bph, err := cpPrepare(base, n)
		if err != nil {
			return out, err
		}
		bst, bNs, bAllocs, err := measuredPhase(bph.RunBaseline)
		if err != nil {
			return out, err
		}

		fast := fleet.DefaultConfig()
		fast.HeartbeatCohorts = cpCohorts(n)
		fph, err := cpPrepare(fast, n)
		if err != nil {
			return out, err
		}
		fst, fNs, fAllocs, err := measuredPhase(fph.Run)
		if err != nil {
			return out, err
		}

		p := ControlPlanePoint{
			Nodes: n, Shards: fph.Shards(), Cohorts: cpCohorts(n),
			Packets:          fst.Sent,
			BaselineNsPerPkt: bNs, FastNsPerPkt: fNs,
			BaselineAllocsPerPkt: bAllocs, FastAllocsPerPkt: fAllocs,
			BaselineGoodputGbps: bst.GoodputGbps, FastGoodputGbps: fst.GoodputGbps,
		}
		if fNs > 0 {
			p.SpeedupWall = bNs / fNs
		}
		if fAllocs > 0 {
			p.AllocReduction = bAllocs / fAllocs
		}
		out = append(out, p)
	}
	return out, nil
}

// FleetControlPlaneReport runs the sweep and wraps it as the
// BENCH_fleet.json artifact.
func FleetControlPlaneReport(sizes []int) (*ControlPlaneReport, error) {
	if len(sizes) == 0 {
		sizes = ControlPlaneSizes
	}
	pts, err := ControlPlaneSweep(sizes)
	if err != nil {
		return nil, err
	}
	return &ControlPlaneReport{
		Experiment: "fleet3", App: cpApp,
		PhasePs: int64(cpPhase), GbpsPerNode: cpGbpsPerNode,
		Points: pts,
	}, nil
}

// FleetControlPlane is the fleet3 figure: control-plane overhead per
// routed packet as the fleet scales, serial scan vs sharded fast path.
func FleetControlPlane() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fleet3", Title: "Fleet control-plane overhead scaling"}
	bNs := &metrics.Series{Label: "baseline-ns-per-pkt", XLabel: "devices", YLabel: "ns/pkt"}
	fNs := &metrics.Series{Label: "fastpath-ns-per-pkt"}
	bAl := &metrics.Series{Label: "baseline-allocs-per-pkt"}
	fAl := &metrics.Series{Label: "fastpath-allocs-per-pkt"}
	pts, err := ControlPlaneSweep(ControlPlaneSizes)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		x := float64(p.Nodes)
		bNs.Add(x, p.BaselineNsPerPkt)
		fNs.Add(x, p.FastNsPerPkt)
		bAl.Add(x, p.BaselineAllocsPerPkt)
		fAl.Add(x, p.FastAllocsPerPkt)
	}
	fig.Series = append(fig.Series, bNs, fNs, bAl, fAl)
	return fig, nil
}

// FleetRecovery measures the kill-a-device drill across fleet sizes:
// detection latency (missed-heartbeat budget) and fault-to-full-
// re-placement recovery time, which the PR reconfiguration dominates.
func FleetRecovery() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fleet2", Title: "Fleet failover recovery time"}
	detect := &metrics.Series{Label: "detect-us", XLabel: "devices", YLabel: "microseconds"}
	recover := &metrics.Series{Label: "recovery-us"}
	retained := &metrics.Series{Label: "post-goodput-frac"}
	for n := 2; n <= fleetSweepMax; n++ {
		d, err := fleet.KillDrill(fleet.DefaultConfig(), "layer4-lb", n, fleet.DefaultTraffic("layer4-lb"))
		if err != nil {
			return nil, err
		}
		x := float64(n)
		detect.Add(x, float64(d.DetectedAt-d.FaultAt)/float64(sim.Microsecond))
		recover.Add(x, float64(d.RecoveryTime)/float64(sim.Microsecond))
		retained.Add(x, d.Post.GoodputGbps/d.Pre.GoodputGbps)
	}
	fig.Series = append(fig.Series, detect, recover, retained)
	return fig, nil
}
