package bench

import (
	"harmonia/internal/fleet"
	"harmonia/internal/metrics"
	"harmonia/internal/sim"
)

// Fleet experiments exercise the multi-device control plane beyond the
// paper's single-device evaluation: the scale-out throughput series and
// the failover recovery-time series, both over the heterogeneous
// catalog fleet (§2.3's cloud deployment setting).

// fleetSweepMax bounds the device-count sweep.
const fleetSweepMax = 4

// FleetScaleOut measures aggregate cluster goodput and QPS as the fleet
// grows from 1 to 4 devices with offered load proportional to fleet
// size. Aggregate throughput growing with device count is the property
// the control plane must preserve.
func FleetScaleOut() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fleet1", Title: "Fleet scale-out aggregate throughput"}
	goodput := &metrics.Series{Label: "goodput-gbps", XLabel: "devices", YLabel: "Gbps"}
	offered := &metrics.Series{Label: "offered-gbps"}
	qps := &metrics.Series{Label: "mqps"}
	t := fleet.DefaultTraffic("layer4-lb")
	pts, err := fleet.ScaleOut(fleet.DefaultConfig(), "layer4-lb", fleetSweepMax, t)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		x := float64(p.Devices)
		goodput.Add(x, p.GoodputGbps)
		offered.Add(x, t.OfferedGbps*x)
		qps.Add(x, p.QPS/1e6)
	}
	fig.Series = append(fig.Series, goodput, offered, qps)
	return fig, nil
}

// FleetRecovery measures the kill-a-device drill across fleet sizes:
// detection latency (missed-heartbeat budget) and fault-to-full-
// re-placement recovery time, which the PR reconfiguration dominates.
func FleetRecovery() (*metrics.Figure, error) {
	fig := &metrics.Figure{ID: "fleet2", Title: "Fleet failover recovery time"}
	detect := &metrics.Series{Label: "detect-us", XLabel: "devices", YLabel: "microseconds"}
	recover := &metrics.Series{Label: "recovery-us"}
	retained := &metrics.Series{Label: "post-goodput-frac"}
	for n := 2; n <= fleetSweepMax; n++ {
		d, err := fleet.KillDrill(fleet.DefaultConfig(), "layer4-lb", n, fleet.DefaultTraffic("layer4-lb"))
		if err != nil {
			return nil, err
		}
		x := float64(n)
		detect.Add(x, float64(d.DetectedAt-d.FaultAt)/float64(sim.Microsecond))
		recover.Add(x, float64(d.RecoveryTime)/float64(sim.Microsecond))
		retained.Add(x, d.Post.GoodputGbps/d.Pre.GoodputGbps)
	}
	fig.Series = append(fig.Series, detect, recover, retained)
	return fig, nil
}
