package proto

import "fmt"

// keepWidth returns the byte-strobe width for a data bus.
func keepWidth(dataBits int) int {
	if dataBits <= 0 {
		return 0
	}
	return (dataBits + 7) / 8
}

// NewAXI4Stream returns an AXI4-Stream interface of the given data
// width, with the standard TKEEP/TLAST/TUSER/TID/TDEST sideband set
// Xilinx streaming IPs expose.
func NewAXI4Stream(name string, dataBits int) Interface {
	return Interface{
		Name:      name,
		Family:    AXI4Stream,
		Kind:      KindStream,
		DataWidth: dataBits,
		Signals: []Signal{
			{Name: "tvalid", Width: 1, Dir: Out},
			{Name: "tready", Width: 1, Dir: In},
			{Name: "tdata", Width: dataBits, Dir: Out},
			{Name: "tkeep", Width: keepWidth(dataBits), Dir: Out, Sideband: true},
			{Name: "tstrb", Width: keepWidth(dataBits), Dir: Out, Sideband: true},
			{Name: "tlast", Width: 1, Dir: Out},
			{Name: "tuser", Width: 16, Dir: Out, Sideband: true},
			{Name: "tid", Width: 8, Dir: Out, Sideband: true},
			{Name: "tdest", Width: 8, Dir: Out, Sideband: true},
		},
	}
}

// NewAXI4 returns a full AXI4 memory-mapped interface: five channels
// (AW, W, B, AR, R) with burst/lock/cache/prot/qos signalling.
func NewAXI4(name string, dataBits, addrBits int) Interface {
	kw := keepWidth(dataBits)
	return Interface{
		Name:      name,
		Family:    AXI4,
		Kind:      KindMemMap,
		DataWidth: dataBits,
		AddrWidth: addrBits,
		Signals: []Signal{
			// Write address channel.
			{Name: "awvalid", Width: 1, Dir: Out},
			{Name: "awready", Width: 1, Dir: In},
			{Name: "awaddr", Width: addrBits, Dir: Out},
			{Name: "awid", Width: 4, Dir: Out, Sideband: true},
			{Name: "awlen", Width: 8, Dir: Out},
			{Name: "awsize", Width: 3, Dir: Out},
			{Name: "awburst", Width: 2, Dir: Out},
			{Name: "awlock", Width: 1, Dir: Out, Sideband: true},
			{Name: "awcache", Width: 4, Dir: Out, Sideband: true},
			{Name: "awprot", Width: 3, Dir: Out, Sideband: true},
			{Name: "awqos", Width: 4, Dir: Out, Sideband: true},
			// Write data channel.
			{Name: "wvalid", Width: 1, Dir: Out},
			{Name: "wready", Width: 1, Dir: In},
			{Name: "wdata", Width: dataBits, Dir: Out},
			{Name: "wstrb", Width: kw, Dir: Out},
			{Name: "wlast", Width: 1, Dir: Out},
			// Write response channel.
			{Name: "bvalid", Width: 1, Dir: In},
			{Name: "bready", Width: 1, Dir: Out},
			{Name: "bid", Width: 4, Dir: In, Sideband: true},
			{Name: "bresp", Width: 2, Dir: In},
			// Read address channel.
			{Name: "arvalid", Width: 1, Dir: Out},
			{Name: "arready", Width: 1, Dir: In},
			{Name: "araddr", Width: addrBits, Dir: Out},
			{Name: "arid", Width: 4, Dir: Out, Sideband: true},
			{Name: "arlen", Width: 8, Dir: Out},
			{Name: "arsize", Width: 3, Dir: Out},
			{Name: "arburst", Width: 2, Dir: Out},
			{Name: "arlock", Width: 1, Dir: Out, Sideband: true},
			{Name: "arcache", Width: 4, Dir: Out, Sideband: true},
			{Name: "arprot", Width: 3, Dir: Out, Sideband: true},
			{Name: "arqos", Width: 4, Dir: Out, Sideband: true},
			// Read data channel.
			{Name: "rvalid", Width: 1, Dir: In},
			{Name: "rready", Width: 1, Dir: Out},
			{Name: "rid", Width: 4, Dir: In, Sideband: true},
			{Name: "rdata", Width: dataBits, Dir: In},
			{Name: "rresp", Width: 2, Dir: In},
			{Name: "rlast", Width: 1, Dir: In},
		},
	}
}

// NewAXI4Lite returns the reduced register-access AXI4-Lite interface.
func NewAXI4Lite(name string, dataBits, addrBits int) Interface {
	return Interface{
		Name:      name,
		Family:    AXI4Lite,
		Kind:      KindReg,
		DataWidth: dataBits,
		AddrWidth: addrBits,
		Signals: []Signal{
			{Name: "awvalid", Width: 1, Dir: Out},
			{Name: "awready", Width: 1, Dir: In},
			{Name: "awaddr", Width: addrBits, Dir: Out},
			{Name: "awprot", Width: 3, Dir: Out, Sideband: true},
			{Name: "wvalid", Width: 1, Dir: Out},
			{Name: "wready", Width: 1, Dir: In},
			{Name: "wdata", Width: dataBits, Dir: Out},
			{Name: "wstrb", Width: keepWidth(dataBits), Dir: Out},
			{Name: "bvalid", Width: 1, Dir: In},
			{Name: "bready", Width: 1, Dir: Out},
			{Name: "bresp", Width: 2, Dir: In},
			{Name: "arvalid", Width: 1, Dir: Out},
			{Name: "arready", Width: 1, Dir: In},
			{Name: "araddr", Width: addrBits, Dir: Out},
			{Name: "arprot", Width: 3, Dir: Out, Sideband: true},
			{Name: "rvalid", Width: 1, Dir: In},
			{Name: "rready", Width: 1, Dir: Out},
			{Name: "rdata", Width: dataBits, Dir: In},
			{Name: "rresp", Width: 2, Dir: In},
		},
	}
}

// NewAvalonST returns an Intel Avalon streaming interface with the
// startofpacket/endofpacket/empty/channel sideband set.
func NewAvalonST(name string, dataBits int) Interface {
	return Interface{
		Name:      name,
		Family:    AvalonST,
		Kind:      KindStream,
		DataWidth: dataBits,
		Signals: []Signal{
			{Name: "valid", Width: 1, Dir: Out},
			{Name: "ready", Width: 1, Dir: In},
			{Name: "data", Width: dataBits, Dir: Out},
			{Name: "startofpacket", Width: 1, Dir: Out},
			{Name: "endofpacket", Width: 1, Dir: Out},
			{Name: "empty", Width: 6, Dir: Out, Sideband: true},
			{Name: "error", Width: 2, Dir: Out, Sideband: true},
			{Name: "channel", Width: 4, Dir: Out, Sideband: true},
		},
	}
}

// NewAvalonMM returns an Intel Avalon memory-mapped interface with
// waitrequest/readdatavalid/burstcount signalling.
func NewAvalonMM(name string, dataBits, addrBits int) Interface {
	return Interface{
		Name:      name,
		Family:    AvalonMM,
		Kind:      KindMemMap,
		DataWidth: dataBits,
		AddrWidth: addrBits,
		Signals: []Signal{
			{Name: "address", Width: addrBits, Dir: Out},
			{Name: "read", Width: 1, Dir: Out},
			{Name: "write", Width: 1, Dir: Out},
			{Name: "readdata", Width: dataBits, Dir: In},
			{Name: "writedata", Width: dataBits, Dir: Out},
			{Name: "waitrequest", Width: 1, Dir: In},
			{Name: "readdatavalid", Width: 1, Dir: In},
			{Name: "byteenable", Width: keepWidth(dataBits), Dir: Out},
			{Name: "burstcount", Width: 8, Dir: Out},
			{Name: "response", Width: 2, Dir: In, Sideband: true},
			{Name: "lock", Width: 1, Dir: Out, Sideband: true},
			{Name: "debugaccess", Width: 1, Dir: Out, Sideband: true},
		},
	}
}

// Unified interface constructors (§3.2). The unified format deliberately
// has few signals: data movement plus minimal framing, with sideband
// information folded into the wrapper's FIFO entries.

// NewUnifiedClock returns the unified clock-array interface carrying n
// selectable clocks.
func NewUnifiedClock(name string, n int) Interface {
	return Interface{
		Name:   name,
		Family: Unified,
		Kind:   KindClock,
		Signals: []Signal{
			{Name: "clk", Width: n, Dir: In},
		},
	}
}

// NewUnifiedReset returns the unified reset-array interface carrying n
// selectable resets.
func NewUnifiedReset(name string, n int) Interface {
	return Interface{
		Name:   name,
		Family: Unified,
		Kind:   KindReset,
		Signals: []Signal{
			{Name: "rst", Width: n, Dir: In},
		},
	}
}

// NewUnifiedStream returns the unified streaming interface: valid/ready
// handshake, data, and start/end-of-stream markers.
func NewUnifiedStream(name string, dataBits int) Interface {
	return Interface{
		Name:      name,
		Family:    Unified,
		Kind:      KindStream,
		DataWidth: dataBits,
		Signals: []Signal{
			{Name: "valid", Width: 1, Dir: Out},
			{Name: "ready", Width: 1, Dir: In},
			{Name: "data", Width: dataBits, Dir: Out},
			{Name: "sos", Width: 1, Dir: Out},
			{Name: "eos", Width: 1, Dir: Out},
			{Name: "mask", Width: keepWidth(dataBits), Dir: Out, Sideband: true},
		},
	}
}

// NewUnifiedMemMap returns the unified memory-mapped interface: address
// and size describe the data chunk.
func NewUnifiedMemMap(name string, dataBits, addrBits int) Interface {
	return Interface{
		Name:      name,
		Family:    Unified,
		Kind:      KindMemMap,
		DataWidth: dataBits,
		AddrWidth: addrBits,
		Signals: []Signal{
			{Name: "valid", Width: 1, Dir: Out},
			{Name: "ready", Width: 1, Dir: In},
			{Name: "addr", Width: addrBits, Dir: Out},
			{Name: "size", Width: 16, Dir: Out},
			{Name: "wdata", Width: dataBits, Dir: Out},
			{Name: "rdata", Width: dataBits, Dir: In},
			{Name: "write", Width: 1, Dir: Out},
			{Name: "done", Width: 1, Dir: In},
		},
	}
}

// NewUnifiedReg returns the unified 32-bit register interface.
func NewUnifiedReg(name string, addrBits int) Interface {
	return Interface{
		Name:      name,
		Family:    Unified,
		Kind:      KindReg,
		DataWidth: 32,
		AddrWidth: addrBits,
		Signals: []Signal{
			{Name: "addr", Width: addrBits, Dir: Out},
			{Name: "wdata", Width: 32, Dir: Out},
			{Name: "rdata", Width: 32, Dir: In},
			{Name: "write", Width: 1, Dir: Out},
			{Name: "read", Width: 1, Dir: Out},
			{Name: "ack", Width: 1, Dir: In},
		},
	}
}

// NewUnifiedIRQ returns the irq type, which exposes n raw latency-
// critical signals directly to the upper layer.
func NewUnifiedIRQ(name string, n int) Interface {
	return Interface{
		Name:   name,
		Family: Unified,
		Kind:   KindIRQ,
		Signals: []Signal{
			{Name: "irq", Width: n, Dir: Out},
		},
	}
}

// ForFamily builds the canonical interface of a family at the given
// widths; it is the lookup used when instantiating vendor IP ports from
// catalog metadata.
func ForFamily(f Family, name string, dataBits, addrBits int) (Interface, error) {
	switch f {
	case AXI4:
		return NewAXI4(name, dataBits, addrBits), nil
	case AXI4Lite:
		return NewAXI4Lite(name, dataBits, addrBits), nil
	case AXI4Stream:
		return NewAXI4Stream(name, dataBits), nil
	case AvalonMM:
		return NewAvalonMM(name, dataBits, addrBits), nil
	case AvalonST:
		return NewAvalonST(name, dataBits), nil
	case Unified:
		return Interface{}, fmt.Errorf("proto: unified interfaces are built per kind, not per family")
	default:
		return Interface{}, fmt.Errorf("proto: unknown interface family %q", f)
	}
}
