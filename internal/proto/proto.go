// Package proto models hardware interface protocols at the signal level.
//
// Vendor IPs in the paper expose AXI4/AXI4-Lite/AXI4-Stream (Xilinx) or
// Avalon-MM/Avalon-ST (Intel) ports; Harmonia's interface wrappers
// convert them into six unified types (clock, reset, stream, mem map,
// reg, irq — §3.2). This package provides signal inventories for each
// protocol so the structural experiments (interface-difference counts in
// Fig. 3b, wrapper resource overhead in Fig. 16) are computed over real
// descriptions rather than hard-coded constants.
package proto

import (
	"fmt"
	"sort"
)

// Family identifies an interface protocol family.
type Family string

// Protocol families used by the vendor IPs and the unified layer.
const (
	AXI4       Family = "axi4"        // full memory-mapped AXI4
	AXI4Lite   Family = "axi4-lite"   // register-access AXI4-Lite
	AXI4Stream Family = "axi4-stream" // streaming AXI4-Stream
	AvalonMM   Family = "avalon-mm"   // Intel Avalon memory-mapped
	AvalonST   Family = "avalon-st"   // Intel Avalon streaming
	Unified    Family = "unified"     // Harmonia's unified format
)

// Kind classifies an interface by the unified type it maps to.
type Kind string

// The unified interface types of §3.2, plus Raw for vendor-native ports
// that have no unified counterpart until wrapped.
const (
	KindClock  Kind = "clock"
	KindReset  Kind = "reset"
	KindStream Kind = "stream"
	KindMemMap Kind = "memmap"
	KindReg    Kind = "reg"
	KindIRQ    Kind = "irq"
)

// Direction of a signal from the IP's point of view.
type Direction int

// Signal directions.
const (
	In Direction = iota
	Out
	InOut
)

// String returns "in", "out" or "inout".
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// Signal is one named wire bundle of an interface.
type Signal struct {
	Name     string
	Width    int
	Dir      Direction
	Sideband bool // masks, empty flags, user bits, ...
}

// Interface is a named port of a hardware module: a protocol family, a
// data width, and the full signal inventory.
type Interface struct {
	Name      string
	Family    Family
	Kind      Kind
	DataWidth int
	AddrWidth int
	Signals   []Signal
}

// SignalCount reports the number of distinct signals.
func (i Interface) SignalCount() int { return len(i.Signals) }

// TotalWires reports the summed bit width of all signals.
func (i Interface) TotalWires() int {
	n := 0
	for _, s := range i.Signals {
		n += s.Width
	}
	return n
}

// SidebandCount reports how many signals are sideband.
func (i Interface) SidebandCount() int {
	n := 0
	for _, s := range i.Signals {
		if s.Sideband {
			n++
		}
	}
	return n
}

// signalSet returns the signal names of i.
func (i Interface) signalSet() map[string]Signal {
	m := make(map[string]Signal, len(i.Signals))
	for _, s := range i.Signals {
		m[s.Name] = s
	}
	return m
}

// Diff counts the signal-level differences between two interfaces: a
// signal present in exactly one of them counts once; a signal present in
// both with a different width or direction also counts once. This is the
// metric behind the per-IP interface disparities of Fig. 3b.
func Diff(a, b Interface) int {
	as, bs := a.signalSet(), b.signalSet()
	names := make([]string, 0, len(as)+len(bs))
	for n := range as {
		names = append(names, n)
	}
	for n := range bs {
		if _, dup := as[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	diff := 0
	for _, n := range names {
		sa, oka := as[n]
		sb, okb := bs[n]
		switch {
		case !oka || !okb:
			diff++
		case sa.Width != sb.Width || sa.Dir != sb.Dir:
			diff++
		}
	}
	return diff
}
