package proto

import (
	"testing"
	"testing/quick"
)

func TestAXI4SignalInventory(t *testing.T) {
	i := NewAXI4("m_axi", 512, 64)
	if i.SignalCount() != 37 {
		t.Errorf("AXI4 signal count = %d, want 37", i.SignalCount())
	}
	if i.Kind != KindMemMap {
		t.Errorf("AXI4 kind = %q, want memmap", i.Kind)
	}
	if i.DataWidth != 512 || i.AddrWidth != 64 {
		t.Errorf("widths = %d/%d, want 512/64", i.DataWidth, i.AddrWidth)
	}
}

func TestStreamInterfacesSmallerThanMM(t *testing.T) {
	axis := NewAXI4Stream("s", 512)
	axi := NewAXI4("m", 512, 64)
	if axis.SignalCount() >= axi.SignalCount() {
		t.Errorf("AXI4-Stream (%d signals) should be smaller than AXI4 (%d)",
			axis.SignalCount(), axi.SignalCount())
	}
}

func TestUnifiedSimplerThanVendor(t *testing.T) {
	// The unified format must expose strictly fewer signals than either
	// vendor protocol for the same role — that is its entire point.
	cases := []struct {
		unified, vendorA, vendorB Interface
	}{
		{NewUnifiedStream("u", 512), NewAXI4Stream("x", 512), NewAvalonST("i", 512)},
		{NewUnifiedMemMap("u", 512, 34), NewAXI4("x", 512, 34), NewAvalonMM("i", 512, 34)},
		{NewUnifiedReg("u", 32), NewAXI4Lite("x", 32, 32), NewAvalonMM("i", 32, 32)},
	}
	for _, c := range cases {
		if c.unified.SignalCount() >= c.vendorA.SignalCount() {
			t.Errorf("unified %s (%d signals) not simpler than %s (%d)",
				c.unified.Kind, c.unified.SignalCount(), c.vendorA.Family, c.vendorA.SignalCount())
		}
		if c.unified.SignalCount() >= c.vendorB.SignalCount() {
			t.Errorf("unified %s (%d signals) not simpler than %s (%d)",
				c.unified.Kind, c.unified.SignalCount(), c.vendorB.Family, c.vendorB.SignalCount())
		}
	}
}

func TestDiffIdenticalIsZero(t *testing.T) {
	a := NewAXI4Stream("s", 512)
	b := NewAXI4Stream("s", 512)
	if d := Diff(a, b); d != 0 {
		t.Errorf("Diff(identical) = %d, want 0", d)
	}
}

func TestDiffCrossVendorStreamsIsLarge(t *testing.T) {
	// An AXI4-Stream and an Avalon-ST port share no signal names, so the
	// diff is the union of both inventories. This is the Fig. 3b effect:
	// cross-vendor IPs cannot be dropped in for one another.
	x := NewAXI4Stream("s", 512)
	i := NewAvalonST("s", 512)
	want := x.SignalCount() + i.SignalCount()
	if d := Diff(x, i); d != want {
		t.Errorf("cross-vendor stream diff = %d, want %d", d, want)
	}
}

func TestDiffWidthChangeCounts(t *testing.T) {
	a := NewAXI4Stream("s", 256)
	b := NewAXI4Stream("s", 512)
	// tdata, tkeep and tstrb widths change; everything else matches.
	if d := Diff(a, b); d != 3 {
		t.Errorf("width-change diff = %d, want 3", d)
	}
}

func TestDiffSymmetry(t *testing.T) {
	f := func(w1, w2 uint8) bool {
		a := NewAXI4("a", int(w1%8+1)*64, 48)
		b := NewAvalonMM("b", int(w2%8+1)*64, 34)
		return Diff(a, b) == Diff(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalWiresAndSideband(t *testing.T) {
	s := NewUnifiedStream("u", 512)
	wantWires := 1 + 1 + 512 + 1 + 1 + 64
	if got := s.TotalWires(); got != wantWires {
		t.Errorf("TotalWires() = %d, want %d", got, wantWires)
	}
	if got := s.SidebandCount(); got != 1 {
		t.Errorf("SidebandCount() = %d, want 1", got)
	}
}

func TestForFamily(t *testing.T) {
	for _, f := range []Family{AXI4, AXI4Lite, AXI4Stream, AvalonMM, AvalonST} {
		i, err := ForFamily(f, "p", 512, 34)
		if err != nil {
			t.Errorf("ForFamily(%q) error: %v", f, err)
			continue
		}
		if i.Family != f {
			t.Errorf("ForFamily(%q).Family = %q", f, i.Family)
		}
	}
	if _, err := ForFamily(Unified, "p", 512, 34); err == nil {
		t.Error("ForFamily(Unified) should error")
	}
	if _, err := ForFamily("bogus", "p", 512, 34); err == nil {
		t.Error("ForFamily(bogus) should error")
	}
}

func TestDirectionString(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" || InOut.String() != "inout" {
		t.Error("Direction.String() mismatch")
	}
	if Direction(9).String() != "direction(9)" {
		t.Error("unknown direction formatting mismatch")
	}
}

func TestUnifiedArrays(t *testing.T) {
	c := NewUnifiedClock("clk", 4)
	r := NewUnifiedReset("rst", 3)
	q := NewUnifiedIRQ("irq", 2)
	if c.Signals[0].Width != 4 || r.Signals[0].Width != 3 || q.Signals[0].Width != 2 {
		t.Error("array widths not honoured")
	}
	if c.Kind != KindClock || r.Kind != KindReset || q.Kind != KindIRQ {
		t.Error("kinds not set")
	}
}
