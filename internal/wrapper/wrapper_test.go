package wrapper

import (
	"testing"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/proto"
	"harmonia/internal/sim"
)

func TestWrapConvertsVendorPorts(t *testing.T) {
	for _, vendor := range []platform.Vendor{platform.Xilinx, platform.Intel} {
		mac, err := ip.MACModule(vendor, ip.Speed100G)
		if err != nil {
			t.Fatal(err)
		}
		w, overhead, err := Wrap(mac)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range w.Ports {
			if p.Family != proto.Unified {
				t.Errorf("%s port %s still %s after wrapping", vendor, p.Name, p.Family)
			}
		}
		if overhead.IsZero() {
			t.Error("wrapper overhead should be non-zero")
		}
		if w.Res == mac.Res {
			t.Error("wrapped module resources unchanged")
		}
	}
}

func TestWrappedModulesConverge(t *testing.T) {
	// The whole point: after wrapping, cross-vendor modules expose the
	// same interfaces, so upper-layer logic ports unchanged.
	xm, _ := ip.MACModule(platform.Xilinx, ip.Speed100G)
	im, _ := ip.MACModule(platform.Intel, ip.Speed100G)
	if hdl.InterfaceDiff(xm, im) == 0 {
		t.Fatal("native modules should differ")
	}
	wx, _, _ := Wrap(xm)
	wi, _, _ := Wrap(im)
	if d := hdl.InterfaceDiff(wx, wi); d != 0 {
		t.Errorf("wrapped cross-vendor interface diff = %d, want 0", d)
	}
}

func TestWrapIdempotentOnUnified(t *testing.T) {
	m := &hdl.Module{
		Name:   "already",
		Ports:  []proto.Interface{proto.NewUnifiedStream("s", 512)},
		Params: nil,
		Deps:   map[string]string{},
	}
	w, overhead, err := Wrap(m)
	if err != nil {
		t.Fatal(err)
	}
	if !overhead.IsZero() {
		t.Error("wrapping a unified module should cost nothing")
	}
	if w.Res != m.Res {
		t.Error("resources changed on a no-op wrap")
	}
}

func TestWrapNil(t *testing.T) {
	if _, _, err := Wrap(nil); err == nil {
		t.Error("Wrap(nil) should fail")
	}
}

func TestWrapOverheadTiny(t *testing.T) {
	// Fig. 16: every wrapper costs well under 1% of the device.
	caps := platform.DeviceA().Chip.Capacity
	lib, err := ip.Catalog(platform.Xilinx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range lib.Names() {
		m, _ := lib.Lookup(name)
		_, overhead, err := Wrap(m)
		if err != nil {
			t.Fatal(err)
		}
		if f := OverheadFraction(overhead, caps); f > 0.01 {
			t.Errorf("%s wrapper overhead %.3f%% exceeds 1%%", name, f*100)
		}
	}
}

func TestDataPathLosslessCondition(t *testing.T) {
	// 512b @ 322MHz MAC side, 1024b @ 161MHz user side: S×M == R×U.
	src := sim.NewClock("mac", 322)
	dst := sim.NewClock("user", 161)
	d, err := NewDataPath("dp", src, 512, dst, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Lossless() {
		t.Errorf("S*M=%v R*U=%v should be lossless", d.GbpsIn(), d.GbpsOut())
	}
	d2, _ := NewDataPath("dp2", src, 512, dst, 512)
	if d2.Lossless() {
		t.Error("mismatched bandwidths reported lossless")
	}
}

func TestDataPathThroughputPreserved(t *testing.T) {
	// Sustained transfer rate through the wrapper must match the source
	// bandwidth (no bubbles) when the destination keeps up.
	src := sim.NewClock("src", 322.265625)
	dst := sim.NewClock("dst", 322.265625)
	d, _ := NewDataPath("dp", src, 512, dst, 512)
	const n, size = 5000, 1024
	var done sim.Time
	for i := 0; i < n; i++ {
		done = d.Transfer(0, size)
	}
	gbps := float64(n*size*8) / (done - d.FixedLatency()).Nanoseconds()
	raw := d.GbpsIn()
	if gbps < raw*0.98 {
		t.Errorf("sustained %.1f Gbps through wrapper, want about %.1f (no bubbles)", gbps, raw)
	}
}

func TestDataPathFixedLatencySmall(t *testing.T) {
	src := sim.NewClock("src", 250)
	dst := sim.NewClock("dst", 250)
	d, _ := NewDataPath("dp", src, 512, dst, 512)
	// A few cycles at 250MHz: tens of nanoseconds, not microseconds.
	if lat := d.FixedLatency(); lat > 100*sim.Nanosecond {
		t.Errorf("fixed latency %v, want nanosecond scale", lat)
	}
	// Latency of a single beat equals serialization + fixed latency.
	done := d.Transfer(0, 64)
	if done < d.FixedLatency() {
		t.Errorf("single transfer done=%v below fixed latency", done)
	}
	if done > d.FixedLatency()+10*src.Period() {
		t.Errorf("single transfer done=%v too slow", done)
	}
}

func TestDataPathSlowerDestinationBounds(t *testing.T) {
	// Destination at half bandwidth: sustained rate must be bounded by
	// the destination, not the wrapper.
	src := sim.NewClock("src", 400)
	dst := sim.NewClock("dst", 200)
	d, _ := NewDataPath("dp", src, 512, dst, 512)
	const n, size = 2000, 512
	var done sim.Time
	for i := 0; i < n; i++ {
		done = d.Transfer(0, size)
	}
	gbps := float64(n*size*8) / done.Nanoseconds()
	out := d.GbpsOut()
	if gbps > out*1.02 {
		t.Errorf("sustained %.1f Gbps exceeds destination bandwidth %.1f", gbps, out)
	}
	if gbps < out*0.95 {
		t.Errorf("sustained %.1f Gbps well below destination bandwidth %.1f", gbps, out)
	}
}

func TestDataPathWidthConversionCounts(t *testing.T) {
	src := sim.NewClock("src", 322)
	dst := sim.NewClock("dst", 250)
	d, _ := NewDataPath("dp", src, 2048, dst, 512)
	d.Transfer(0, 1024)
	if d.Bytes() != 1024 || d.Transfers() != 1 {
		t.Errorf("Bytes=%d Transfers=%d", d.Bytes(), d.Transfers())
	}
	d.Reset()
	if d.Bytes() != 0 || d.Transfers() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestDataPathValidation(t *testing.T) {
	clk := sim.NewClock("c", 100)
	if _, err := NewDataPath("bad", nil, 512, clk, 512); err == nil {
		t.Error("nil clock should fail")
	}
	if _, err := NewDataPath("bad", clk, 0, clk, 512); err == nil {
		t.Error("zero width should fail")
	}
	d, _ := NewDataPath("ok", clk, 512, clk, 512)
	if got := d.Transfer(42, 0); got != 42 {
		t.Error("zero-byte transfer should be free")
	}
}

func TestRegPathOverhead(t *testing.T) {
	clk := sim.NewClock("ctrl", 125) // 8ns
	r := NewRegPath(clk)
	done := r.Access(0)
	if done != clk.CyclesTime(RegAccessCycles) {
		t.Errorf("Access(0) = %v, want %v", done, clk.CyclesTime(RegAccessCycles))
	}
	if r.Accesses() != 1 {
		t.Errorf("Accesses = %d", r.Accesses())
	}
}
