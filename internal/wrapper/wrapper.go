// Package wrapper implements Harmonia's lightweight interface wrappers
// (§3.2): structural conversion of vendor-specific ports (AXI/Avalon)
// into the unified format, and a functional datapath model of the fully
// pipelined sequential translation logic — fixed added latency of a few
// cycles, no throughput loss.
package wrapper

import (
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/proto"
	"harmonia/internal/sim"
)

// PipelineDepth is the fixed conversion latency in cycles the wrapper
// inserts on data paths ("consumes a few fixed clock cycles", §3.2).
const PipelineDepth = 3

// RegAccessCycles is the fixed overhead on control-register accesses.
const RegAccessCycles = 2

// WrapperFmaxMHz is the timing closure of the translation pipeline.
const WrapperFmaxMHz = 450

// overheadFor estimates the wrapper's resource cost for one converted
// port: a FIFO with sideband capture plus translation registers, scaling
// with data width. These footprints are what Fig. 16 aggregates — well
// under one percent of any evaluated device.
func overheadFor(p proto.Interface) hdl.Resources {
	w := p.DataWidth
	if w == 0 {
		w = 32
	}
	switch p.Kind {
	case proto.KindStream, proto.KindMemMap:
		return hdl.Resources{
			LUT:  120 + w/2,
			REG:  260 + w,
			BRAM: 1,
		}
	case proto.KindReg:
		return hdl.Resources{LUT: 60, REG: 120}
	default:
		// clock/reset/irq pass through unconverted.
		return hdl.Resources{}
	}
}

// convertPort maps one vendor port to its unified equivalent.
func convertPort(p proto.Interface) (proto.Interface, bool) {
	if p.Family == proto.Unified {
		return p, false
	}
	addr := p.AddrWidth
	if addr == 0 {
		addr = 32
	}
	switch p.Kind {
	case proto.KindStream:
		return proto.NewUnifiedStream(p.Name, p.DataWidth), true
	case proto.KindMemMap:
		return proto.NewUnifiedMemMap(p.Name, p.DataWidth, addr), true
	case proto.KindReg:
		return proto.NewUnifiedReg(p.Name, addr), true
	default:
		return p, false
	}
}

// Wrap returns a copy of the module with every vendor-specific port
// converted to the unified format, plus the wrapper's resource
// overhead. The wrapped module keeps the vendor's dependency set (the
// instance inside is unchanged) and gains the wrapper's small
// handcrafted-but-reusable code volume.
func Wrap(m *hdl.Module) (*hdl.Module, hdl.Resources, error) {
	if m == nil {
		return nil, hdl.Resources{}, fmt.Errorf("wrapper: nil module")
	}
	w := m.Clone()
	w.Name = m.Name + "+wrapped"
	var overhead hdl.Resources
	converted := 0
	for i, p := range w.Ports {
		up, changed := convertPort(p)
		if !changed {
			continue
		}
		w.Ports[i] = up
		overhead = overhead.Add(overheadFor(p))
		converted++
	}
	if converted == 0 {
		return w, hdl.Resources{}, nil
	}
	w.Res = w.Res.Add(overhead)
	// The wrapper itself is ~200 lines of reusable logic per port.
	w.Code = w.Code.Add(hdl.LoC{Handcraft: 200 * converted})
	// The translation pipeline closes timing at WrapperFmaxMHz; the
	// wrapped module's achievable clock is the tighter of the two.
	if w.FmaxMHz == 0 || w.FmaxMHz > WrapperFmaxMHz {
		w.FmaxMHz = WrapperFmaxMHz
	}
	return w, overhead, nil
}

// OverheadFraction reports the wrapper overhead as a fraction of a
// device capacity (binding resource).
func OverheadFraction(overhead, capacity hdl.Resources) float64 {
	return overhead.Utilization(capacity)
}

// DataPath is the functional model of a wrapped data interface: a fully
// pipelined width/clock converter. Source beats enter at the source
// clock and width; the param clock-domain crossing moves them to the
// destination domain; the destination side drains at its own clock and
// width. Selecting S×M ≈ R×U keeps the path lossless (§3.3.1).
type DataPath struct {
	name     string
	srcClk   *sim.Clock
	dstClk   *sim.Clock
	srcWidth int
	dstWidth int
	srcPipe  *sim.Pipeline
	rawPipe  *sim.Pipeline // bypass path: no translation stages
	dstPipe  *sim.Pipeline
	cdc      *sim.AsyncFIFO
	bypass   bool
	bytes    int64
	xfers    int64
}

// NewDataPath builds a converter between (srcClk, srcWidth bits) and
// (dstClk, dstWidth bits).
func NewDataPath(name string, srcClk *sim.Clock, srcWidth int, dstClk *sim.Clock, dstWidth int) (*DataPath, error) {
	if srcWidth <= 0 || dstWidth <= 0 {
		return nil, fmt.Errorf("wrapper: datapath %q widths must be positive", name)
	}
	if srcClk == nil || dstClk == nil {
		return nil, fmt.Errorf("wrapper: datapath %q requires both clocks", name)
	}
	return &DataPath{
		name:     name,
		srcClk:   srcClk,
		dstClk:   dstClk,
		srcWidth: srcWidth,
		dstWidth: dstWidth,
		srcPipe:  sim.NewPipeline(name+".src", srcClk, PipelineDepth),
		rawPipe:  sim.NewPipeline(name+".raw", srcClk, 0),
		dstPipe:  sim.NewPipeline(name+".dst", dstClk, 0),
		cdc:      sim.NewAsyncFIFO(name+".cdc", 64, srcClk, dstClk),
	}, nil
}

// SetBypass switches the datapath into native mode: the intrinsic clock
// crossing remains, but the wrapper's translation pipeline is skipped.
// The "w/o Harmonia" baselines of Fig. 17 run with bypass on.
func (d *DataPath) SetBypass(on bool) { d.bypass = on }

// FixedLatency reports the constant latency a beat pays: the clock
// crossing plus (unless bypassed) the translation pipeline.
func (d *DataPath) FixedLatency() sim.Time {
	lat := d.cdc.CrossingLatency()
	if !d.bypass {
		lat += d.srcPipe.Latency()
	}
	return lat
}

// Lossless reports whether the source and destination sides have equal
// raw bandwidth (S×M == R×U, within clock-rounding tolerance), the
// condition roles use to select instances for full-rate operation.
func (d *DataPath) Lossless() bool {
	in, out := d.GbpsIn(), d.GbpsOut()
	diff := in - out
	if diff < 0 {
		diff = -diff
	}
	return diff <= in*1e-3
}

// GbpsIn reports the source-side raw bandwidth.
func (d *DataPath) GbpsIn() float64 { return d.srcClk.FreqMHz() * float64(d.srcWidth) / 1000 }

// GbpsOut reports the destination-side raw bandwidth.
func (d *DataPath) GbpsOut() float64 { return d.dstClk.FreqMHz() * float64(d.dstWidth) / 1000 }

// Transfer moves n bytes through the converter starting no earlier than
// now and returns the completion time of the last destination beat.
// Back-to-back transfers pipeline: throughput is bounded by the slower
// side only, never by the conversion itself.
func (d *DataPath) Transfer(now sim.Time, n int) sim.Time {
	if n <= 0 {
		return now
	}
	bits := int64(n) * 8
	srcBeats := (bits + int64(d.srcWidth) - 1) / int64(d.srcWidth)
	dstBeats := (bits + int64(d.dstWidth) - 1) / int64(d.dstWidth)

	pipe := d.srcPipe
	if d.bypass {
		pipe = d.rawPipe
	}
	last := pipe.IssueBeats(now, srcBeats)
	first := last - sim.Time(srcBeats-1)*d.srcClk.Period()
	crossed := first + d.cdc.CrossingLatency()
	dstDone := d.dstPipe.IssueBeats(crossed, dstBeats)
	done := last + d.cdc.CrossingLatency()
	if dstDone > done {
		done = dstDone
	}
	d.bytes += int64(n)
	d.xfers++
	return done
}

// Backlog reports how far the datapath is booked beyond now — the
// queueing delay a new transfer would see. The slower side dominates:
// when the destination cannot drain at the source rate, its issue
// frontier runs ahead and arrivals queue.
func (d *DataPath) Backlog(now sim.Time) sim.Time {
	pipe := d.srcPipe
	if d.bypass {
		pipe = d.rawPipe
	}
	free := pipe.NextFree()
	if dst := d.dstPipe.NextFree() - d.cdc.CrossingLatency(); dst > free {
		free = dst
	}
	if free > now {
		return free - now
	}
	return 0
}

// Bytes reports total bytes transferred.
func (d *DataPath) Bytes() int64 { return d.bytes }

// Transfers reports the number of Transfer calls.
func (d *DataPath) Transfers() int64 { return d.xfers }

// Reset returns the datapath to idle.
func (d *DataPath) Reset() {
	d.srcPipe.Reset()
	d.rawPipe.Reset()
	d.dstPipe.Reset()
	d.bytes = 0
	d.xfers = 0
}

// RegPath models the wrapped control interface: register reads/writes
// gain a fixed small cycle cost for address decode and response
// registration.
type RegPath struct {
	clk      *sim.Clock
	accesses int64
}

// NewRegPath returns a register-path model in the control clock domain.
func NewRegPath(clk *sim.Clock) *RegPath { return &RegPath{clk: clk} }

// Access models one register read or write issued at now and returns
// its completion time.
func (r *RegPath) Access(now sim.Time) sim.Time {
	r.accesses++
	return r.clk.NextEdge(now) + r.clk.CyclesTime(RegAccessCycles)
}

// Accesses reports the access count.
func (r *RegPath) Accesses() int64 { return r.accesses }
