package fleet

import (
	"fmt"

	"harmonia/internal/device"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// The health monitor drives the per-device state machine
// healthy → degraded → failed → drained from two real signal paths:
// periodic heartbeats issued over the command interface (a StatsRead on
// the management block, the same path harmoniactl's `sensors` takes),
// and the latency-critical irq events (thermal alarm, link down) the
// modules raise past the command path.

// Transition records one state machine step. At is when the control
// plane decided the transition, so the log is monotonic in At;
// transitions with a physical completion later than the decision
// (draining waits out slot reconfiguration) carry it in CompletedAt.
type Transition struct {
	At     sim.Time
	Node   string
	From   State
	To     State
	Reason string
	// CompletedAt is when the transition's effect finished materializing
	// (0 when instantaneous). Never earlier than At.
	CompletedAt sim.Time
}

// String formats the transition for operator logs.
func (t Transition) String() string {
	if t.CompletedAt > t.At {
		return fmt.Sprintf("%v %s: %s -> %s (%s, completes %v)",
			t.At, t.Node, t.From, t.To, t.Reason, t.CompletedAt)
	}
	return fmt.Sprintf("%v %s: %s -> %s (%s)", t.At, t.Node, t.From, t.To, t.Reason)
}

// FailoverReport records the recovery from one device failure.
type FailoverReport struct {
	Node   string
	Reason string
	// DetectedAt is when the control plane declared the device failed.
	DetectedAt sim.Time
	// RecoveredAt is when the last re-placed replica's slot
	// reconfiguration completed on its new device.
	RecoveredAt sim.Time
	// Moved counts replicas evicted from the failed device; Replaced of
	// those found a new home; Unplaced could not be re-placed (capacity
	// exhausted) and stay pending for the next Place call.
	Moved, Replaced, Unplaced int
	// Migrated counts connection-table flows restored into replacement
	// replicas (0 with migration disabled or for stateless services).
	Migrated int
}

// Recovery reports the time from fault injection to full re-placement.
func (r FailoverReport) Recovery(faultAt sim.Time) sim.Time {
	if r.RecoveredAt <= faultAt {
		return 0
	}
	return r.RecoveredAt - faultAt
}

// Transitions returns the state machine log.
func (c *Cluster) Transitions() []Transition {
	return append([]Transition(nil), c.transitions...)
}

// Failovers returns every completed failover report.
func (c *Cluster) Failovers() []FailoverReport {
	return append([]FailoverReport(nil), c.failovers...)
}

// setState performs one transition; no-ops when the state is unchanged.
func (c *Cluster) setState(now sim.Time, n *Node, to State, reason string) {
	c.setStateDone(now, 0, n, to, reason)
}

// setStateDone performs one transition decided at now whose effect
// completes at completed (0 or <= now means instantaneous). Stamping
// decisions rather than completions keeps the Transitions log monotonic
// even when completion (slot reconfiguration) lands far in the future.
func (c *Cluster) setStateDone(now, completed sim.Time, n *Node, to State, reason string) {
	if n.state == to {
		return
	}
	if completed <= now {
		completed = 0
	}
	c.transitions = append(c.transitions, Transition{
		At: now, Node: n.ID, From: n.state, To: to, Reason: reason,
		CompletedAt: completed,
	})
	from := n.state
	n.state = to
	// Every health transition invalidates the dispatch views — even a
	// routability-preserving one (healthy↔degraded) changes the frozen
	// cost penalty the SoA view carries.
	c.router.bumpEpoch()
	c.router.idx.noteState(n, from, to)
	// Keep the gossip detector's membership view in step: nodes dead to
	// the fleet stop being probed, revived nodes rejoin with a fresh
	// incarnation.
	if c.gossip != nil {
		switch {
		case to == Failed || to == Drained:
			c.gossip.MarkDead(n.index)
		case from == Failed || from == Drained:
			c.gossip.Reset(n.index)
		}
	}
	if c.ctrl != nil {
		e := obs.Instant(obs.CatHealth, string(from)+"->"+string(to), now)
		e.K1, e.V1 = "node", n.ID
		c.ctrl.Add(e)
	}
}

// onEvent consumes one irq-path notification from a device.
func (c *Cluster) onEvent(n *Node, ev device.Event) {
	switch ev.Code {
	case device.EventThermalAlarm:
		if n.state == Healthy {
			c.setState(c.now, n, Degraded, fmt.Sprintf("thermal alarm %d milli-degC", ev.Data))
		}
	case device.EventLinkDown:
		c.failNode(c.now, n, "link down (irq)")
	}
}

// cohorts reports the effective heartbeat cohort count.
func (c *Cluster) cohorts() int {
	if c.cfg.HeartbeatCohorts > 1 {
		return c.cfg.HeartbeatCohorts
	}
	return 1
}

// Heartbeat runs one health monitor sweep at now: the due round-robin
// cohort of live devices is probed over the command path and the state
// machine advances on the results. With HeartbeatCohorts <= 1 every
// device is probed each sweep; with C cohorts each sweep probes ~N/C
// devices and a given device is probed every C-th sweep, so
// FailedAfter consecutive missed probes still declare it failed — at
// most FailedAfter*C sweeps after it went silent. It returns the
// transitions this sweep caused.
func (c *Cluster) Heartbeat(now sim.Time) []Transition {
	c.advance(now)
	// A heartbeat is a control-plane barrier: backlog mirrors, frozen
	// penalties (lastTemp moves below) and flow caches all go stale.
	c.router.bumpEpoch()
	c.router.idx.mature(now)
	if c.cfg.GossipHealth {
		t := c.gossipHeartbeat(now)
		c.barrierTail(now)
		return t
	}
	before := len(c.transitions)
	cohortCount := c.cohorts()
	cohort := int(c.hbTick % int64(cohortCount))
	c.hbTick++
	probed := 0
	for i, n := range c.nodes {
		if cohortCount > 1 && i%cohortCount != cohort {
			continue
		}
		if n.state == Failed || n.state == Drained {
			continue
		}
		probed++
		temp, err := n.Inst.CheckHealth()
		if err != nil {
			n.missed++
			if n.missed >= c.cfg.FailedAfter {
				c.failNode(now, n, fmt.Sprintf("%d consecutive missed heartbeats", n.missed))
			}
			continue
		}
		n.missed = 0
		n.lastTemp = temp
		// CheckHealth already raised the thermal irq if over threshold;
		// the handler degraded the node. Here we also detect recovery.
		if temp < c.cfg.DegradeMilliC && n.state == Degraded {
			c.setState(now, n, Healthy, "temperature recovered")
		}
		// A responsive probe also refreshes the node's periodic
		// connection-table snapshots — the state dead-node failover
		// falls back to. A node that stops answering keeps its last
		// capture, which is exactly the staleness the fallback carries.
		n.probes++
		if c.cfg.MigrateFlows && len(n.flows) > 0 && n.probes%c.snapshotEvery() == 0 {
			c.snapshotNode(now, n)
		}
	}
	if c.ctrl != nil {
		e := obs.Instant(obs.CatHeartbeat, "hb-sweep", now)
		e.K2, e.V2 = "cohort", int64(cohort)
		e.K3, e.V3 = "probed", int64(probed)
		c.ctrl.Add(e)
	}
	c.barrierTail(now)
	return c.transitions[before:]
}

// barrierTail is the serial end-of-barrier work both heartbeat paths
// share: failovers this sweep have already taken their grants, so
// whatever budget headroom remains goes to queued elective
// scale-outs; the rebalancer steps its move state machine; the rack
// tier refreshes its frozen digests; and the SLO engine folds the
// barrier's per-service deltas into its error-budget windows and runs
// the burn-rate alerter.
func (c *Cluster) barrierTail(now sim.Time) {
	c.drainElectives(now)
	c.stepRebalance(now)
	c.rackRefresh(now)
	c.stepSLO(now)
}

// RunMonitorUntil advances the periodic health monitor to cover
// (c.now, until]: every heartbeat due in the interval fires at its
// scheduled tick. The traffic loop interleaves this with dispatches.
func (c *Cluster) RunMonitorUntil(until sim.Time) {
	if c.nextHeartbeat == 0 {
		c.nextHeartbeat = c.cfg.Heartbeat
	}
	for c.nextHeartbeat <= until {
		c.Heartbeat(c.nextHeartbeat)
		c.nextHeartbeat += c.cfg.Heartbeat
	}
	c.advance(until)
}

// failNode declares a device failed, evicts its tenants, re-places them
// on surviving devices and leaves the device drained.
func (c *Cluster) failNode(now sim.Time, n *Node, reason string) {
	if n.state == Failed || n.state == Drained {
		return
	}
	c.setState(now, n, Failed, reason)
	rep := c.evacuate(now, n, reason, false)
	c.failovers = append(c.failovers, rep)
	// The drain decision is made now; re-placement completes when the
	// last replacement slot finishes reconfiguring, which can be far in
	// the future — stamping that time as At would run the log backwards.
	c.setStateDone(now, rep.RecoveredAt, n, Drained, "evacuated")
}

// DrainNode performs a planned evacuation of a live (typically
// degraded) device: tenants are evicted through the tenancy manager —
// the device is still answering commands — and re-placed elsewhere.
func (c *Cluster) DrainNode(now sim.Time, id string) (FailoverReport, error) {
	n, err := c.Node(id)
	if err != nil {
		return FailoverReport{}, err
	}
	if n.state == Failed || n.state == Drained {
		return FailoverReport{}, fmt.Errorf("fleet: node %s is already %s", id, n.state)
	}
	c.advance(now)
	rep := c.evacuate(c.now, n, "planned drain", true)
	c.failovers = append(c.failovers, rep)
	c.setStateDone(c.now, rep.RecoveredAt, n, Drained, "evacuated")
	return rep, nil
}

// replaceAttempts bounds how many candidate devices a re-placed
// replica tries before it is left unplaced (each failed candidate
// burned its bitstream-load retries first).
const replaceAttempts = 4

// evacuate moves every replica off a node. With evict set the node is
// alive and each slot is blanked through its tenancy manager; a dead
// node's slots are simply abandoned. Stateful replicas carry their
// connection tables: a live node's table is read out over the command
// path before eviction, a dead node's comes from the last periodic
// snapshot, and either replays into the replacement through TableWrite
// commands once it is admitted.
func (c *Cluster) evacuate(now sim.Time, n *Node, reason string, evict bool) FailoverReport {
	rep := FailoverReport{Node: n.ID, Reason: reason, DetectedAt: now, RecoveredAt: now}
	victims := n.Replicas()
	rep.Moved = len(victims)
	exclude := map[string]bool{n.ID: true}
	for _, r := range victims {
		flows, live, snapAt := c.flowsForMigration(n, r, evict)
		c.detachFlowState(n, r)
		if evict && n.Tenants != nil {
			// Blank the slot; co-resident tenants keep running.
			_, _ = n.Tenants.Evict(now, r.Tenant)
		}
		c.router.idx.noteRemove(r, n)
		delete(n.replicas, r.Name())
		n.svcCounts[r.Service]--
		r.Node, r.node, r.Tenant, r.ReadyAt = "", nil, 0, 0
		// A candidate whose bitstream load fails every retry is struck
		// off and the replica falls back to the next-best device, up to
		// replaceAttempts candidates.
		var target *Node
		tried := map[string]bool{n.ID: true}
		for k := range exclude {
			tried[k] = true
		}
		for attempt := 0; attempt < replaceAttempts; attempt++ {
			cand := c.pickNode(c.services[r.Service], tried)
			if cand == nil {
				break
			}
			if err := c.admit(now, cand, r); err != nil {
				tried[cand.ID] = true
				continue
			}
			target = cand
			break
		}
		if target == nil {
			rep.Unplaced++
			continue
		}
		rep.Replaced++
		if r.ReadyAt > rep.RecoveredAt {
			rep.RecoveredAt = r.ReadyAt
		}
		if len(flows) > 0 && r.flows != nil {
			if err := c.writeFlowSnapshot(target, r, flows); err == nil {
				mr := MigrationRecord{
					Replica: r.Name(), From: n.ID, To: target.ID, At: r.ReadyAt,
					Live:     live,
					Flows:    len(flows), Restored: r.flows.restored, Dropped: r.flows.dropped,
					CutoverAt: r.ReadyAt,
				}
				if !live {
					mr.SnapshotAge = now - snapAt
				}
				c.migrations = append(c.migrations, mr)
				rep.Migrated += r.flows.restored
				if c.ctrl != nil {
					e := obs.Span(obs.CatMigration, "replay", now, r.ReadyAt)
					e.K1, e.V1 = "replica", r.Name()
					e.K2, e.V2 = "flows", int64(len(flows))
					e.K3, e.V3 = "restored", int64(r.flows.restored)
					c.ctrl.Add(e)
				}
			}
		}
	}
	if c.ctrl != nil {
		e := obs.Span(obs.CatHealth, "failover", now, rep.RecoveredAt)
		e.K1, e.V1 = "node", n.ID
		e.K2, e.V2 = "moved", int64(rep.Moved)
		e.K3, e.V3 = "replaced", int64(rep.Replaced)
		c.ctrl.Add(e)
	}
	return rep
}
