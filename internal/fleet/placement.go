package fleet

import (
	"errors"
	"fmt"
	"sort"

	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
	"harmonia/internal/tenancy"
)

// The placement scheduler bin-packs replicas onto devices using the
// structural resource model: a candidate must have a free tenancy slot
// whose budget fits the replica's logic (after URAM folding for the
// chip), carry the peripherals the service demands, and meet its PCIe
// generation floor. Among candidates, replicas of the same service
// spread across devices (anti-affinity keeps a single device failure
// from taking out a whole service) while otherwise preferring the
// fullest device (best-fit bin-packing maximizes slot co-residency).

// canHost reports whether a node can take one replica of the service
// right now, with the reason when it cannot. The structural checks
// (peripheral demands, PCIe floor, slot budget) depend only on the
// node's platform and the service definition, so their outcome is
// computed once per (node, service) pair and cached; only the health
// state and free-slot checks are evaluated live.
func (c *Cluster) canHost(n *Node, svc *Service) error {
	if n.state != Healthy {
		return fmt.Errorf("node %s is %s", n.ID, n.state)
	}
	if n.rebuilding {
		return fmt.Errorf("node %s is rebuilding", n.ID)
	}
	if n.Tenants == nil || n.Tenants.FreeSlots() == 0 {
		return fmt.Errorf("node %s has no free slot", n.ID)
	}
	// Retired queue ranges are never recycled, so a node can exhaust its
	// hardware queues while slots are still free — exactly the
	// fragmentation the rebalancer reclaims.
	if !n.Tenants.CanAllocate() {
		return fmt.Errorf("node %s has no queue headroom", n.ID)
	}
	return n.staticHostErr(svc)
}

// staticHostErr evaluates (and caches) the placement checks that never
// change after commission: peripheral adaptation, the PCIe generation
// floor, and the slot resource budget.
func (n *Node) staticHostErr(svc *Service) error {
	if err, ok := n.hostErr[svc.Name]; ok {
		return err
	}
	err := func() error {
		if _, err := adaptDemands(n.Platform, svc.Demands); err != nil {
			return err
		}
		if svc.MinPCIeGen > 0 {
			p, ok := n.Platform.PCIe()
			if !ok || p.PCIeGen < svc.MinPCIeGen {
				return fmt.Errorf("node %s is below PCIe gen %d", n.ID, svc.MinPCIeGen)
			}
		}
		logic := foldURAM(svc.Logic, n.Platform.Chip.Capacity.URAM > 0)
		if logic.Utilization(n.slotRes) > 1 {
			return fmt.Errorf("replica logic exceeds %s slot budget (%s > %s)",
				n.ID, logic.String(), n.slotRes.String())
		}
		return nil
	}()
	if n.hostErr == nil {
		n.hostErr = make(map[string]error)
	}
	n.hostErr[svc.Name] = err
	return err
}

// serviceCount reports how many replicas of one service a node hosts,
// from the count maintained at admit/evict time.
func (n *Node) serviceCount(service string) int {
	return n.svcCounts[service]
}

// pickNode selects the placement target for one replica, or nil. The
// selection order — anti-affinity (fewest replicas of this service),
// then best-fit (fewest free slots, packing the fullest device), then
// node ID — is a total order, so the single min-scan below picks the
// same node the previous sort-and-take-first implementation did while
// keeping placement O(N) per replica instead of O(N log N).
func (c *Cluster) pickNode(svc *Service, exclude map[string]bool) *Node {
	var best *Node
	var bestSvc, bestFree int
	for _, n := range c.nodes {
		if exclude[n.ID] {
			continue
		}
		if err := c.canHost(n, svc); err != nil {
			continue
		}
		sc, free := n.serviceCount(svc.Name), n.Tenants.FreeSlots()
		if best == nil {
			best, bestSvc, bestFree = n, sc, free
			continue
		}
		switch {
		case sc != bestSvc:
			if sc < bestSvc {
				best, bestSvc, bestFree = n, sc, free
			}
		case free != bestFree:
			if free < bestFree {
				best, bestSvc, bestFree = n, sc, free
			}
		case n.ID < best.ID:
			best, bestSvc, bestFree = n, sc, free
		}
	}
	return best
}

// admit places one replica on a node through the node's tenancy
// manager with failover priority; see admitLoad.
func (c *Cluster) admit(now sim.Time, n *Node, r *Replica) error {
	return c.admitLoad(now, now, n, r, LoadFailover)
}

// admitLoad places one replica on a node through the node's tenancy
// manager: the slot partially reconfigures and the flow director and
// host queues take the replica's steering rules. The fleet-wide
// reconfiguration budget gates the bitstream load — past the cap the
// load queues behind the earliest in-flight completion, so its slot
// reconfiguration (and the replica's ReadyAt) starts later. reqAt is
// when the load was first requested (earlier than now for elective
// loads drained from the queue); class is the budget priority class. A
// failover grant issued while electives wait is a preemption: the
// failover chains only behind in-flight loads, never behind the queue.
func (c *Cluster) admitLoad(reqAt, now sim.Time, n *Node, r *Replica, class LoadClass) error {
	logic := foldURAM(c.services[r.Service].Logic, n.Platform.Chip.Capacity.URAM > 0)
	start := c.budget.acquire(now)
	if class == LoadFailover && c.budget.limit > 0 &&
		(len(c.electives) > 0 || c.pendingRebalanceMoves() > 0) {
		c.budget.preempted++
	}
	t, err := n.Tenants.Admit(start, r.Name(), logic, []net.IPAddr{r.VIP})
	if err != nil {
		var le *tenancy.LoadError
		if errors.As(err, &le) {
			// The failed loads still held bitstream bandwidth.
			c.budget.commit(reqAt, start, le.BusyUntil, n.ID, class, false)
			c.tracePRLoad(reqAt, start, le.BusyUntil, n.ID, false)
		} else {
			c.budget.commit(reqAt, start, start, n.ID, class, false)
			c.tracePRLoad(reqAt, start, start, n.ID, false)
		}
		return err
	}
	c.budget.commit(reqAt, start, t.ReadyAt, n.ID, class, true)
	c.tracePRLoad(reqAt, start, t.ReadyAt, n.ID, true)
	r.Node = n.ID
	r.node = n
	r.Tenant = t.ID
	r.ReadyAt = t.ReadyAt
	n.replicas[r.Name()] = r
	n.svcCounts[r.Service]++
	c.attachFlowState(n, r)
	c.router.idx.noteAdmit(r, now)
	return nil
}

// tracePRLoad records one PR-load span on the control track: request
// at reqAt, budget grant at start (later when queued), slot ready at
// done. Failed loads carry ok=0.
func (c *Cluster) tracePRLoad(reqAt, start, done sim.Time, node string, ok bool) {
	if c.ctrl == nil {
		return
	}
	e := obs.Span(obs.CatPRLoad, "pr-load", reqAt, done)
	e.K1, e.V1 = "node", node
	e.K2, e.V2 = "queued_ps", int64(start-reqAt)
	if ok {
		e.K3, e.V3 = "ok", 1
	} else {
		e.K3, e.V3 = "ok", 0
	}
	c.ctrl.Add(e)
}

// vipFor derives replica i's virtual IP from the service base address.
func vipFor(base net.IPAddr, i int) net.IPAddr {
	v := base
	v[3] += byte(i)
	return v
}

// Place materializes every registered service's replicas and schedules
// all unplaced ones. It is incremental: services or devices added later
// are covered by the next call. Placement failures abort with the
// scheduler's reason.
func (c *Cluster) Place(now sim.Time) ([]*Replica, error) {
	c.advance(now)
	// Materialize replicas for newly registered services.
	have := map[string]bool{}
	for _, r := range c.replicas {
		have[r.Name()] = true
	}
	for _, name := range c.svcOrder {
		svc := c.services[name]
		for i := 0; i < svc.Replicas; i++ {
			r := &Replica{Service: name, Index: i, VIP: vipFor(svc.VIPBase, i)}
			if !have[r.Name()] {
				c.replicas = append(c.replicas, r)
			}
		}
	}
	// Schedule unplaced replicas, largest slot-utilization first
	// (decreasing best-fit), name as the deterministic tie-break.
	// Replicas waiting on the elective queue are not eligible: they
	// start only when the budget has free headroom at a barrier.
	var pending []*Replica
	for _, r := range c.replicas {
		if r.Node == "" && !r.elective {
			pending = append(pending, r)
		}
	}
	util := func(r *Replica) float64 {
		return c.services[r.Service].Logic.Utilization(c.cfg.SlotRes)
	}
	sort.Slice(pending, func(i, j int) bool {
		if ui, uj := util(pending[i]), util(pending[j]); ui != uj {
			return ui > uj
		}
		return pending[i].Name() < pending[j].Name()
	})
	var placed []*Replica
	for _, r := range pending {
		n := c.pickNode(c.services[r.Service], nil)
		if n == nil {
			return placed, fmt.Errorf("fleet: no device can host %s", r.Name())
		}
		if err := c.admitLoad(c.now, c.now, n, r, LoadElective); err != nil {
			return placed, err
		}
		placed = append(placed, r)
	}
	return placed, nil
}

// electiveEntry is one scale-out replica waiting for free budget
// headroom, remembering when the expansion was requested.
type electiveEntry struct {
	r     *Replica
	reqAt sim.Time
}

// ScaleService grows a registered service by extra replicas as
// elective loads: the new replicas join the elective queue and are
// admitted at control-plane barriers only while the reconfiguration
// budget has a free slot, so they never delay failover re-placements
// (which chain straight behind in-flight loads, preempting the queue).
func (c *Cluster) ScaleService(now sim.Time, name string, extra int) error {
	c.advance(now)
	svc, ok := c.services[name]
	if !ok {
		return fmt.Errorf("fleet: unknown service %q", name)
	}
	base := svc.Replicas
	svc.Replicas += extra
	for i := 0; i < extra; i++ {
		r := &Replica{Service: name, Index: base + i, VIP: vipFor(svc.VIPBase, base+i), elective: true}
		c.replicas = append(c.replicas, r)
		c.electives = append(c.electives, electiveEntry{r: r, reqAt: now})
	}
	c.drainElectives(now)
	return nil
}

// drainElectives admits queued elective replicas into free budget
// headroom, oldest first. It runs on the serial control-plane path at
// every heartbeat barrier (and when the queue grows). Entries whose
// admission fails structurally (no candidate node) stay queued; a
// PR-load failure consumes the attempt and requeues at the tail, after
// which the drain stops for this barrier — the budget slot the failed
// load burned is real, and retrying the same node in a tight loop
// would spin.
func (c *Cluster) drainElectives(now sim.Time) {
	for len(c.electives) > 0 && c.budget.free(now) {
		e := c.electives[0]
		n := c.pickNode(c.services[e.r.Service], nil)
		if n == nil {
			return
		}
		c.electives = c.electives[1:]
		e.r.elective = false
		if err := c.admitLoad(e.reqAt, now, n, e.r, LoadElective); err != nil {
			e.r.elective = true
			c.electives = append(c.electives, e)
			return
		}
	}
}

// ElectivesQueued reports how many scale-out replicas are waiting for
// budget headroom.
func (c *Cluster) ElectivesQueued() int { return len(c.electives) }
