package fleet

import (
	"bytes"
	"strings"
	"testing"

	"harmonia/internal/apps"
	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

const testSecApp = "sec-gateway"

// coResTestCluster builds a small two-service co-resident fleet —
// layer4-lb latency-critical, sec-gateway bulk — both of which fit the
// default slot budget.
func coResTestCluster(t *testing.T, cfg Config, devices int) *Cluster {
	t.Helper()
	lbInfo, err := apps.Lookup(testApp)
	if err != nil {
		t.Fatal(err)
	}
	secInfo, err := apps.Lookup(testSecApp)
	if err != nil {
		t.Fatal(err)
	}
	lb := AppService(lbInfo, devices, net.IPv4(20, 0, 0, 1))
	lb.Class = ClassLatencyCritical
	sec := AppService(secInfo, devices/2, net.IPv4(40, 0, 0, 1))
	sec.Class = ClassBulk
	c, err := BuildCoResidentCluster(cfg, []Service{lb, sec}, devices)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// coResTraffics is the two-service determinism workload: distinct seed
// streams, asymmetric rates.
func coResTraffics(seedBump int64) []Traffic {
	lb := DefaultTraffic(testApp)
	lb.OfferedGbps = 150
	lb.Seed += seedBump
	sec := DefaultTraffic(testSecApp)
	sec.OfferedGbps = 60
	sec.Flows = 128
	sec.Seed = lb.Seed + 1009
	return []Traffic{lb, sec}
}

// multiPhases runs the co-residency determinism workload (clean
// multi-service phase + mid-phase kill) with an explicit batch quantum
// and worker count, returning PhaseStats, the per-service snapshots,
// and the exported trace bytes.
func multiPhases(t *testing.T, quantum, workers int) (PhaseStats, PhaseStats, [2]ServiceSnapshot, []byte) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RouterShards = 4
	cfg.BatchQuantum = quantum
	cfg.ServeWorkers = workers
	c := coResTestCluster(t, cfg, 8)
	rec := obs.NewRecorder()
	c.SetTrace(rec.Process("fleet"))
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	first, err := c.ServeMulti(120*sim.Microsecond, coResTraffics(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(c.Nodes()[2].ID); err != nil {
		t.Fatal(err)
	}
	second, err := c.ServeMulti(
		sim.Time(cfg.FailedAfter+2)*cfg.Heartbeat+2*cfg.ReconfigTime, coResTraffics(50))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	snaps := [2]ServiceSnapshot{c.ServiceStats(testApp), c.ServiceStats(testSecApp)}
	return first, second, snaps, buf.Bytes()
}

// TestMultiServeDeterminism is the co-residency determinism contract:
// the merged multi-service phase partitions packets by each packet's
// own service dispatch, so same-seed PhaseStats, per-service
// snapshots AND trace bytes are byte-identical across batch quanta and
// worker counts, including through a mid-phase failover.
func TestMultiServeDeterminism(t *testing.T) {
	base1, base2, baseSnaps, baseTrace := multiPhases(t, 0, 1)
	if base1.Served == 0 || base2.Served == 0 {
		t.Fatalf("phases served nothing: %+v / %+v", base1, base2)
	}
	for i, s := range baseSnaps {
		if s.Sent == 0 || s.Served == 0 {
			t.Fatalf("service %d saw no traffic: %+v", i, s)
		}
	}
	// The per-service decomposition must re-sum to the fleet totals.
	if got := baseSnaps[0].Sent + baseSnaps[1].Sent; got != base1.Sent+base2.Sent {
		t.Errorf("per-service sent %d != phase sent %d", got, base1.Sent+base2.Sent)
	}
	if got := baseSnaps[0].Served + baseSnaps[1].Served; got != base1.Served+base2.Served {
		t.Errorf("per-service served %d != phase served %d", got, base1.Served+base2.Served)
	}
	for _, tc := range []struct{ quantum, workers int }{
		{64, 1}, {64, 2}, {4096, 8}, {0, 8},
	} {
		got1, got2, snaps, trace := multiPhases(t, tc.quantum, tc.workers)
		if got1 != base1 || got2 != base2 {
			t.Errorf("quantum=%d workers=%d: stats diverge:\n base: %+v / %+v\n got:  %+v / %+v",
				tc.quantum, tc.workers, base1, base2, got1, got2)
		}
		if snaps != baseSnaps {
			t.Errorf("quantum=%d workers=%d: service snapshots diverge:\n base: %+v\n got:  %+v",
				tc.quantum, tc.workers, baseSnaps, snaps)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Errorf("quantum=%d workers=%d: trace bytes diverge from base", tc.quantum, tc.workers)
		}
	}
}

// TestFlowCacheIsolation pins the per-(service, shard) flow cache
// contract: two co-resident services routing through the same shards
// keep disjoint dispatch views and caches — every cached candidate
// resolves to a replica of the owning service, never the neighbor's.
func TestFlowCacheIsolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RouterShards = 4
	c := coResTestCluster(t, cfg, 8)
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	if _, err := c.ServeMulti(200*sim.Microsecond, coResTraffics(0)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{testApp, testSecApp} {
		si := c.router.idx.svcs[name]
		if si == nil {
			t.Fatalf("service %s has no index", name)
		}
		cached := 0
		for s := range si.disp {
			d := &si.disp[s]
			for _, r := range d.reps {
				if r.Service != name {
					t.Fatalf("service %s shard %d dispatch view holds %s replica", name, s, r.Service)
				}
			}
			for _, e := range d.cache {
				if e.epoch != d.epoch || d.epoch == 0 {
					continue
				}
				cached++
				if e.a >= 0 && d.reps[e.a].Service != name {
					t.Fatalf("service %s shard %d cached candidate a is %s replica",
						name, s, d.reps[e.a].Service)
				}
				if e.b >= 0 && d.reps[e.b].Service != name {
					t.Fatalf("service %s shard %d cached candidate b is %s replica",
						name, s, d.reps[e.b].Service)
				}
			}
		}
		if cached == 0 {
			t.Errorf("service %s has no live flow-cache entries after serving", name)
		}
		if s := c.ServiceStats(name); s.Served == 0 {
			t.Errorf("service %s served nothing: %+v", name, s)
		}
	}
}

// TestAddServiceDuplicate pins the AddService error paths: a duplicate
// name and an unknown service class are both rejected before any
// cluster state moves.
func TestAddServiceDuplicate(t *testing.T) {
	cfg := DefaultConfig()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	info, err := apps.Lookup(testApp)
	if err != nil {
		t.Fatal(err)
	}
	svc := AppService(info, 2, net.IPv4(20, 0, 0, 1))
	if err := c.AddService(svc); err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(svc); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate AddService err = %v, want already registered", err)
	}
	bad := svc
	bad.Name = "other"
	bad.Class = "interactive"
	if err := c.AddService(bad); err == nil || !strings.Contains(err.Error(), "class") {
		t.Errorf("bad-class AddService err = %v, want class error", err)
	}
	// The empty class normalizes to latency-critical.
	norm := svc
	norm.Name = "normalized"
	norm.VIPBase = net.IPv4(21, 0, 0, 1)
	if err := c.AddService(norm); err != nil {
		t.Fatal(err)
	}
	if got := c.services["normalized"].Class; got != ClassLatencyCritical {
		t.Errorf("empty class normalized to %q, want %q", got, ClassLatencyCritical)
	}
}

// TestElectiveDrainAndPreemption is the cluster-level priority-class
// contract: an elective scale-out queues behind the PR-load budget and
// drains at heartbeat barriers, while a failover admitted mid-drain
// preempts the queue — provable from the grant log.
func TestElectiveDrainAndPreemption(t *testing.T) {
	cfg := DefaultConfig()
	c := coResTestCluster(t, cfg, 8)
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	c.SetLoadBudget(1)
	start := c.Now()
	if err := c.ScaleService(start, testSecApp, 3); err != nil {
		t.Fatal(err)
	}
	// Budget 1: one elective starts immediately, two queue.
	if got := c.ElectivesQueued(); got != 2 {
		t.Fatalf("ElectivesQueued = %d after scale-out under budget 1, want 2", got)
	}
	if err := c.Kill(c.Nodes()[0].ID); err != nil {
		t.Fatal(err)
	}
	// Let the monitor confirm the death, fail over, and drain the
	// elective queue behind the failover grants.
	c.RunMonitorUntil(start + 50*sim.Millisecond)
	if got := c.ElectivesQueued(); got != 0 {
		t.Errorf("ElectivesQueued = %d after drain, want 0", got)
	}
	if got := c.LoadsPreempted(); got < 1 {
		t.Errorf("LoadsPreempted = %d, want >= 1", got)
	}
	if got := c.LoadBudgetPeak(); got > 1 {
		t.Errorf("LoadBudgetPeak = %d, budget 1 breached", got)
	}
	events := c.LoadEvents()
	var electives, failovers int
	pair := false
	for _, e := range events {
		switch e.Class {
		case LoadElective:
			electives++
		case LoadFailover:
			failovers++
		}
	}
	for _, f := range events {
		if f.Class != LoadFailover {
			continue
		}
		for _, e := range events {
			if e.Class == LoadElective && e.ReqAt < f.ReqAt && f.Start < e.Start {
				pair = true
			}
		}
	}
	if electives != 3 {
		t.Errorf("grant log holds %d elective grants, want 3", electives)
	}
	if failovers == 0 {
		t.Error("grant log holds no failover grants after a kill")
	}
	if !pair {
		t.Errorf("no preemption pair in grant log: %+v", events)
	}
	// Every scaled-out replica eventually landed.
	for _, r := range c.Replicas() {
		if r.Service == testSecApp && r.Node == "" {
			t.Errorf("replica %s still unplaced after drain", r.Name())
		}
	}
}

// TestCoResidencyDrill runs the fleet8 drill at its tentpole
// configuration and asserts every acceptance gate directly on the
// fleet-level result.
func TestCoResidencyDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet8 drill is seconds-long; skipped in -short")
	}
	res, err := CoResidencyDrill(DefaultCoResOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Services) != 3 {
		t.Fatalf("drill ran %d services, want 3", len(res.Services))
	}
	var bulkAvail float64 = 1
	for _, s := range res.Services {
		if s.Sent == 0 || s.Served == 0 {
			t.Errorf("service %s saw no traffic: %+v", s.Name, s)
		}
		if s.Class == ClassBulk && s.Availability < bulkAvail {
			bulkAvail = s.Availability
		}
	}
	for _, s := range res.Services {
		if s.Class != ClassLatencyCritical {
			continue
		}
		if s.Availability < s.SLOAvailability {
			t.Errorf("lc service %s availability %.6f below SLO %.3f", s.Name, s.Availability, s.SLOAvailability)
		}
		if s.Availability < bulkAvail {
			t.Errorf("lc service %s availability %.6f below bulk's %.6f", s.Name, s.Availability, bulkAvail)
		}
		if s.Availability < res.FleetAvailability {
			t.Errorf("lc service %s availability %.6f below fleet-wide %.6f", s.Name, s.Availability, res.FleetAvailability)
		}
	}
	if res.ShedOrderProofs < 1 {
		t.Errorf("ShedOrderProofs = %d, want >= 1", res.ShedOrderProofs)
	}
	if res.ShedOrderViolations != 0 {
		t.Errorf("ShedOrderViolations = %d, want 0: %+v", res.ShedOrderViolations, res.ShedObservations)
	}
	if res.LCShed != 0 {
		t.Errorf("LCShed = %d latency-critical packets shed, want 0", res.LCShed)
	}
	if res.LoadsPreempted < 1 || len(res.PreemptionPairs) < 1 {
		t.Errorf("preemption not proven: preempted=%d pairs=%d", res.LoadsPreempted, len(res.PreemptionPairs))
	}
	for _, p := range res.PreemptionPairs {
		if p.ElectiveReqAt >= p.FailoverReqAt || p.FailoverStart >= p.ElectiveStart {
			t.Errorf("invalid preemption pair: %+v", p)
		}
	}
	if res.PeakConcurrentLoads > res.Budget {
		t.Errorf("peak concurrent loads %d breached budget %d", res.PeakConcurrentLoads, res.Budget)
	}
	if res.Failovers == 0 {
		t.Error("storm produced no failovers")
	}
	if len(res.Windows) == 0 {
		t.Fatal("drill recorded no windows")
	}
	banded := 0
	for _, w := range res.Windows {
		banded += w.BulkShedNodes
	}
	if banded == 0 {
		t.Error("no window saw a node inside the bulk-shed band")
	}
}
