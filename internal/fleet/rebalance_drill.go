package fleet

import (
	"fmt"

	"harmonia/internal/apps"
	"harmonia/internal/faults"
	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// The fleet9 rebalance drill proves the crash-safety contract of the
// background rebalancer: a planned drain-and-rebuild cycle carries
// every established flow with zero disruption, a source killed
// mid-pre-copy degrades to the snapshot-fallback failover path bounded
// by the cold-restart baseline, and a concurrent failover preempts an
// in-flight rebalance move on the PR-load budget — all provable from
// the migration records and the budget grant log of one seeded run.
//
// Each case builds the same fleet, fragments it through four
// drain→revive churn cycles (stranding retired queue ranges on the
// churned nodes), then serves traffic with the rebalancer armed while
// case-specific migration faults fire.

// rebalWindowDur is the measurement window of the rebalance phase.
const rebalWindowDur = 100 * sim.Microsecond

// rebalChurnRounds is how many drain→revive cycles fragment the fleet
// before the rebalancer starts.
const rebalChurnRounds = 4

// RebalanceOptions shapes the fleet9 drill.
type RebalanceOptions struct {
	// Devices is the fleet size.
	Devices int
	// Budget is the concurrent PR-load cap (the preempt case forces 1).
	Budget int
	// Seed drives traffic and router sampling.
	Seed int64
	// Trace, when set, records each case into its own trace process.
	Trace *obs.Recorder
}

// DefaultRebalanceOptions returns the tentpole drill configuration.
func DefaultRebalanceOptions() RebalanceOptions {
	return RebalanceOptions{Devices: 24, Budget: 2, Seed: 11}
}

// RebalanceCase is one run of the drill under one fault scenario.
type RebalanceCase struct {
	Name    string
	Windows int
	Budget  int
	// Armed lists the migration faults latched before the run.
	Armed []string

	// FragBefore/FragAfter are the fleet fragmentation scores at the
	// rebalancer's start and end — the planned case must strictly
	// decrease the score.
	FragBefore, FragAfter FragmentationStats

	// Flow disruption against the pre-rebalance pins: of the flows
	// established before the rebalancer started, how many land on a
	// different backend after it.
	Established, Disrupted int
	Disruption             float64

	// Stats are the rebalancer's move and rebuild counters; Records
	// every migration (rebalance moves carry PlannedAt > 0, failover
	// evacuations do not).
	Stats   RebalanceStats
	Records []MigrationRecord

	// Budget evidence.
	PeakConcurrentLoads int
	LoadsPreempted      int
	PreemptionPairs     []PreemptionPair

	// Failovers counts node evacuations during the rebalance phase;
	// SnapshotMigrations of the migrations took the periodic-snapshot
	// fallback (the kill-source degradation path).
	Failovers          int
	SnapshotMigrations int

	// Metrics is the end-of-run registry snapshot; Registry the live
	// registry for Prometheus export.
	Metrics  map[string]float64
	Registry *obs.Registry
}

// RebalanceDrillResult is the fleet9 report.
type RebalanceDrillResult struct {
	Devices int
	Seed    int64
	Budget  int
	Cases   []RebalanceCase
}

// rebalanceCaseSpec fixes one case's windows, budget and fault plan.
type rebalanceCaseSpec struct {
	name    string
	windows int
	budget  int
	arm     []faults.Kind
	// killUnrelatedAt, when >= 0, kills a node uninvolved in any move at
	// that window's start — the concurrent failover the budget must let
	// preempt the pending moves.
	killUnrelatedAt int
}

// rebalanceBackends is the drill's initial backend pool.
func rebalanceBackends() []net.IPAddr {
	out := make([]net.IPAddr, 8)
	for i := range out {
		out[i] = net.IPv4(10, 3, 0, byte(i+1))
	}
	return out
}

// rebalTraffic derives one window's deterministic traffic phase.
func rebalTraffic(seed int64, window int) Traffic {
	return Traffic{
		Service: chaosApp, OfferedGbps: 100, PktBytes: 1024,
		Flows: 2048, Jitter: 0.2,
		Seed: seed*2_000_003 + int64(window+16)*1000,
	}
}

// pickUnrelatedNode finds the highest-commissioned healthy node that
// hosts replicas and is neither the rebuild victim nor any move's
// target — killing it exercises failover preemption without touching
// the moves themselves.
func pickUnrelatedNode(c *Cluster) *Node {
	excluded := map[string]bool{}
	if rb := c.rebalance; rb != nil {
		if rb.victim != nil {
			excluded[rb.victim.ID] = true
		}
		for _, mv := range rb.moves {
			if mv.dst != nil {
				excluded[mv.dst.ID] = true
			}
		}
	}
	for i := len(c.nodes) - 1; i >= 0; i-- {
		n := c.nodes[i]
		if n.state == Healthy && !excluded[n.ID] && len(n.replicas) > 0 {
			return n
		}
	}
	return nil
}

// runRebalanceCase builds, fragments and rebalances one fleet.
func runRebalanceCase(opts RebalanceOptions, spec rebalanceCaseSpec) (*RebalanceCase, error) {
	cfg := DefaultConfig()
	cfg.Seed = opts.Seed
	// The drill's windows are short relative to the production snapshot
	// cadence; keep the dead-node fallback fresh enough to bound the
	// kill-source case (fleet4 uses the same setting).
	cfg.SnapshotEvery = 2

	info, err := apps.Lookup(chaosApp)
	if err != nil {
		return nil, err
	}
	svc := AppService(info, 2*opts.Devices, net.IPv4(20, 0, 0, 1))
	svc.Stateful = true
	svc.Backends = rebalanceBackends()
	c, err := BuildServiceCluster(cfg, svc, opts.Devices)
	if err != nil {
		return nil, err
	}
	c.Metrics().SetConstLabels(map[string]string{"case": spec.name})
	if opts.Trace != nil {
		c.SetTrace(opts.Trace.Process(spec.name))
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	if _, err := c.Serve(300*sim.Microsecond, rebalTraffic(opts.Seed, -1)); err != nil {
		return nil, err
	}

	// Fragment: drain a node (its evictions retire queue ranges), let the
	// evacuation settle, revive it empty, and serve so re-placements and
	// fresh pins land on the churned topology.
	nodes := c.Nodes()
	for round := 0; round < rebalChurnRounds; round++ {
		id := nodes[round].ID
		if _, err := c.DrainNode(c.Now(), id); err != nil {
			return nil, err
		}
		c.RunMonitorUntil(c.Now() + cfg.ReconfigTime + 4*cfg.Heartbeat)
		if err := c.Revive(c.Now(), id); err != nil {
			return nil, err
		}
		if _, err := c.Serve(rebalWindowDur, rebalTraffic(opts.Seed, -2-round)); err != nil {
			return nil, err
		}
	}

	// Drain one backend so the pool disagrees with established pins: a
	// migration that loses rows now shows up as disruption, exactly as in
	// the fleet4 baseline this drill is bounded by.
	if _, err := c.RemoveBackend(chaosApp, rebalanceBackends()[0], false); err != nil {
		return nil, err
	}

	// Ground truth: every pin established before the rebalancer starts.
	pins := make(map[string][]apps.ConnEntry)
	for _, r := range c.Replicas() {
		if r.flows != nil {
			pins[r.Name()] = r.flows.table.Snapshot()
		}
	}

	cc := &RebalanceCase{Name: spec.name, Windows: spec.windows, Budget: spec.budget}
	cc.FragBefore = c.Fragmentation()
	c.SetLoadBudget(spec.budget)
	c.SetRebalance(true)
	for _, kind := range spec.arm {
		if err := c.ArmMigrationFault(kind); err != nil {
			return nil, err
		}
		cc.Armed = append(cc.Armed, string(kind))
	}
	preFailovers := len(c.Failovers())

	for w := 0; w < spec.windows; w++ {
		if w == spec.killUnrelatedAt {
			victim := pickUnrelatedNode(c)
			if victim == nil {
				return nil, fmt.Errorf("fleet: no unrelated node to kill at window %d", w)
			}
			c.traceFault(string(faults.KillNode), victim.ID, 0)
			if err := c.Kill(victim.ID); err != nil {
				return nil, err
			}
		}
		if _, err := c.Serve(rebalWindowDur, rebalTraffic(opts.Seed, w)); err != nil {
			return nil, err
		}
	}
	c.SetRebalance(false)
	cc.FragAfter = c.Fragmentation()
	cc.Stats = c.RebalanceStats()
	cc.Records = c.Migrations()
	cc.Failovers = len(c.Failovers()) - preFailovers
	for _, m := range cc.Records {
		if !m.Live {
			cc.SnapshotMigrations++
		}
	}

	// Disruption against the pre-rebalance pins; a replica that lost its
	// home disrupts every flow it held.
	byName := map[string]*Replica{}
	for _, r := range c.Replicas() {
		byName[r.Name()] = r
	}
	for name, entries := range pins {
		r := byName[name]
		for _, e := range entries {
			cc.Established++
			if r == nil || r.Node == "" || r.flows == nil {
				cc.Disrupted++
				continue
			}
			if r.flows.assignment(e.Key) != e.Backend {
				cc.Disrupted++
			}
		}
	}
	if cc.Established > 0 {
		cc.Disruption = float64(cc.Disrupted) / float64(cc.Established)
	}

	// Preemption evidence: every (elective, failover) grant pair where
	// the elective asked first but the failover started first.
	events := c.LoadEvents()
	for _, f := range events {
		if f.Class != LoadFailover {
			continue
		}
		for _, e := range events {
			if e.Class != LoadElective || e.ReqAt >= f.ReqAt || f.Start >= e.Start {
				continue
			}
			cc.PreemptionPairs = append(cc.PreemptionPairs, PreemptionPair{
				ElectiveNode: e.Node, ElectiveReqAt: e.ReqAt, ElectiveStart: e.Start,
				FailoverNode: f.Node, FailoverReqAt: f.ReqAt, FailoverStart: f.Start,
			})
			if len(cc.PreemptionPairs) >= 16 {
				break
			}
		}
		if len(cc.PreemptionPairs) >= 16 {
			break
		}
	}
	cc.LoadsPreempted = c.LoadsPreempted()
	cc.PeakConcurrentLoads = c.LoadBudgetPeak()
	cc.Registry = c.Metrics()
	cc.Metrics = cc.Registry.Values()
	return cc, nil
}

// RebalanceDrill runs the fleet9 experiment: the same fragmented fleet
// rebalanced three times — a clean planned cycle (with a corrupted
// delta frame and a stalled table read to prove the retry machinery), a
// source kill mid-pre-copy (degrading to snapshot-fallback failover),
// and a budget-1 run where a concurrent failover preempts the pending
// moves.
func RebalanceDrill(opts RebalanceOptions) (*RebalanceDrillResult, error) {
	if opts.Devices < 8 {
		return nil, fmt.Errorf("fleet: rebalance drill needs at least 8 devices, got %d", opts.Devices)
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("fleet: rebalance drill needs a positive budget, got %d", opts.Budget)
	}
	specs := []rebalanceCaseSpec{
		{name: "planned", windows: 80, budget: opts.Budget,
			arm:             []faults.Kind{faults.RebalanceCorruptDelta, faults.RebalanceStallRead},
			killUnrelatedAt: -1},
		{name: "kill-source", windows: 80, budget: opts.Budget,
			arm:             []faults.Kind{faults.RebalanceKillSource},
			killUnrelatedAt: -1},
		{name: "preempt", windows: 150, budget: 1, killUnrelatedAt: 6},
	}
	res := &RebalanceDrillResult{Devices: opts.Devices, Seed: opts.Seed, Budget: opts.Budget}
	for _, spec := range specs {
		cc, err := runRebalanceCase(opts, spec)
		if err != nil {
			return nil, fmt.Errorf("fleet: rebalance case %s: %w", spec.name, err)
		}
		res.Cases = append(res.Cases, *cc)
	}
	return res, nil
}
