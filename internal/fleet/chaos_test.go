package fleet

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// chaosTestOptions is a storm small enough for the unit suite but big
// enough that the rack kill outruns a 2-load budget.
func chaosTestOptions() ChaosOptions {
	return ChaosOptions{Devices: 24, Budget: 2, Seed: 11}
}

// chaosOnce shares one drill run across the package's chaos tests —
// the drill replays three full storms, so each extra run is real time.
var chaosOnce struct {
	sync.Once
	res *ChaosResult
	err error
}

func testChaosResult(t *testing.T) *ChaosResult {
	t.Helper()
	chaosOnce.Do(func() { chaosOnce.res, chaosOnce.err = ChaosDrill(chaosTestOptions()) })
	if chaosOnce.err != nil {
		t.Fatal(chaosOnce.err)
	}
	return chaosOnce.res
}

// TestChaosDrillGates checks the tentpole claims on one small-storm
// run: the budgeted cases hold the concurrent PR-load cap, the
// unbudgeted case exceeds it, and derived shedding routes nothing onto
// a node in a window it spent alarmed.
func TestChaosDrillGates(t *testing.T) {
	opts := chaosTestOptions()
	res := testChaosResult(t)
	if len(res.Cases) != 3 {
		t.Fatalf("got %d cases, want 3", len(res.Cases))
	}
	for _, c := range res.Cases {
		if c.Sent == 0 || c.Failovers == 0 {
			t.Errorf("%s: sent %d packets, %d failovers — the storm did not bite",
				c.Name, c.Sent, c.Failovers)
		}
		if c.LoadFailures == 0 {
			t.Errorf("%s: no injected PR-load failures", c.Name)
		}
		switch {
		case c.Budgeted && c.PeakConcurrentLoads > c.Budget:
			t.Errorf("%s: peak %d concurrent loads exceeds budget %d",
				c.Name, c.PeakConcurrentLoads, c.Budget)
		case !c.Budgeted && c.PeakConcurrentLoads <= opts.Budget:
			t.Errorf("unbudgeted peak %d does not exceed the cap %d the budget enforces",
				c.PeakConcurrentLoads, opts.Budget)
		}
		if c.DerivedShedding && c.AlarmedNodePackets != 0 {
			t.Errorf("%s: %d packets landed on alarmed nodes", c.Name, c.AlarmedNodePackets)
		}
		if !c.DerivedShedding && c.AlarmedNodePackets == 0 {
			t.Errorf("%s: static penalty kept all traffic off alarmed nodes — the contrast is empty", c.Name)
		}
	}
	if !res.Cases[1].Budgeted || res.Cases[1].LoadsQueued == 0 {
		t.Errorf("budgeted case queued no loads (peak %d)", res.Cases[1].PeakConcurrentLoads)
	}
}

// TestChaosDrillDeterministic re-runs the drill from the same seed and
// requires a byte-identical report — the reproducibility contract the
// CI artifact and the printed repro line rely on.
func TestChaosDrillDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second full drill run")
	}
	res := testChaosResult(t)
	again, err := ChaosDrill(chaosTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two drills from the same seed produced different reports")
	}
}

// TestChaosDrillValidation rejects configurations the storm cannot run.
func TestChaosDrillValidation(t *testing.T) {
	if _, err := ChaosDrill(ChaosOptions{Devices: 2, Budget: 2, Seed: 1}); err == nil {
		t.Error("2-device storm accepted")
	}
	if _, err := ChaosDrill(ChaosOptions{Devices: 24, Budget: 0, Seed: 1}); err == nil {
		t.Error("zero budget accepted")
	}
}

// TestDerivedSheddingGradual checks the ramp behavior: as the runaway
// node's temperature climbs toward the alarm, the derived penalty rises
// through intermediate values (gradual shedding) where the static
// policy is a flat step at the alarm.
func TestDerivedSheddingGradual(t *testing.T) {
	res := testChaosResult(t)
	derived := res.Cases[2]
	if !derived.DerivedShedding {
		t.Fatalf("case 2 is %s, want the derived-shedding case", derived.Name)
	}
	intermediate := map[float64]bool{}
	sawFloor := false
	for _, w := range derived.Windows {
		if w.RampPenalty > 1 && w.RampPenalty < degradedPenalty {
			intermediate[w.RampPenalty] = true
		}
		if w.RampPenalty >= degradedPenalty {
			sawFloor = true
		}
	}
	if len(intermediate) < 3 {
		t.Errorf("ramp produced %d intermediate penalty levels, want >= 3 (gradual, not a step)",
			len(intermediate))
	}
	if !sawFloor {
		t.Error("ramp never reached the alarm-line penalty")
	}
}
