package fleet

import (
	"bytes"
	"strings"
	"testing"

	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// tracedChaos runs the small storm with a full recorder attached and
// returns the exported Chrome trace-event bytes.
func tracedChaos(t *testing.T) []byte {
	t.Helper()
	opts := chaosTestOptions()
	rec := obs.NewRecorder()
	opts.Trace = rec
	if _, err := ChaosDrill(opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosTraceDeterministicAndValid replays the storm twice from the
// same seed and requires byte-identical traces — the flight-recording
// counterpart of the drill's JSON reproducibility contract — and that
// one run carries every span kind of the taxonomy.
func TestChaosTraceDeterministicAndValid(t *testing.T) {
	if testing.Short() {
		t.Skip("two full traced drill runs")
	}
	a := tracedChaos(t)
	b := tracedChaos(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two same-seed chaos runs produced different trace bytes")
	}
	stats, err := obs.ValidateTrace(a, []obs.Cat{
		obs.CatPacket, obs.CatPRLoad, obs.CatHeartbeat, obs.CatMigration, obs.CatFault,
		obs.CatRack, obs.CatGossip,
	})
	if err != nil {
		t.Fatalf("trace failed validation: %v", err)
	}
	if stats.Events == 0 || stats.Metadata == 0 {
		t.Fatalf("trace stats = %+v, want events and metadata", stats)
	}
	// The storm corrupts command wires, so the command path must have
	// recorded retries or drops, and health transitions must appear.
	if stats.ByCat[string(obs.CatCmd)] == 0 {
		t.Error("no command-path anomaly spans despite wire corruption")
	}
	if stats.ByCat[string(obs.CatHealth)] == 0 {
		t.Error("no health transition events despite failovers")
	}
}

// TestMetricsReadThroughAccessors checks the single-source-of-truth
// property: the public stats accessors and the registry snapshot agree
// exactly with the raw layer counters they read through.
func TestMetricsReadThroughAccessors(t *testing.T) {
	c := buildTest(t, 4, 4)
	c.advance(2 * c.Config().ReconfigTime) // past every replica's ReadyAt
	tr := DefaultTraffic(testApp)
	if _, err := c.Serve(sim.Millisecond, tr); err != nil {
		t.Fatal(err)
	}
	if got, raw := c.RouterStats(), c.rawRouterStats(); got != raw {
		t.Errorf("RouterStats read-through %+v != raw %+v", got, raw)
	}
	if got, raw := c.CmdPath(), c.rawCmdPath(); got != raw {
		t.Errorf("CmdPath read-through %+v != raw %+v", got, raw)
	}
	vals := c.Metrics().Values()
	raw := c.rawRouterStats()
	if raw.Sent == 0 || raw.Served == 0 {
		t.Fatalf("phase served nothing: %+v", raw)
	}
	for name, want := range map[string]int64{
		mRouterSent:    raw.Sent,
		mRouterServed:  raw.Served,
		mRouterDropped: raw.Dropped,
		mRouterBytes:   raw.Bytes,
		mCmdIssued:     c.rawCmdPath().Issued,
	} {
		if got := vals[name]; got != float64(want) {
			t.Errorf("registry %s = %v, want %d", name, got, want)
		}
	}
	if got := vals[mNodes+`{state="healthy"}`]; got != 4 {
		t.Errorf("healthy node gauge = %v, want 4", got)
	}
	var prom bytes.Buffer
	if err := c.Metrics().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE " + mRouterSent + " counter",
		"# TYPE " + mRouteLatency + " summary",
		mSimNow,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSetTraceDetaches verifies nil-detach returns the cluster to the
// zero-cost state after a traced phase.
func TestSetTraceDetaches(t *testing.T) {
	c := buildTest(t, 2, 2)
	rec := obs.NewFlightRecorder(64)
	c.SetTrace(rec.Process("fleet"))
	tr := DefaultTraffic(testApp)
	if _, err := c.Serve(sim.Millisecond, tr); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("traced phase recorded nothing")
	}
	c.SetTrace(nil)
	for _, sh := range c.router.shards {
		if sh.trace != nil {
			t.Error("shard trace still attached after detach")
		}
	}
	if c.ctrl != nil || c.cmdTrack != nil {
		t.Error("control/cmd tracks still attached after detach")
	}
	before := len(rec.Events())
	if _, err := c.Serve(sim.Millisecond, tr); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Events()); got != before {
		t.Errorf("detached cluster recorded %d new events", got-before)
	}
}
