package fleet

import (
	"fmt"

	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// The cluster's SLO judgment layer: per-service error-budget trackers
// and multi-window burn-rate alerting, advanced exclusively from the
// heartbeat barrier's serial tail (barrierTail → stepSLO). The
// accounting reads the same shard counters the metrics registry reads
// through, and every window advance happens at a barrier — after the
// worker pool has joined — so burn rates, alert transitions and the
// AlertLog are byte-identical across worker counts and batch quanta.
// Nothing here runs on the packet hot path. The autoscaler the
// ROADMAP names will consume BurnRate() as its control signal.

// Default rolling-window sizes in heartbeat ticks, fast to slow.
// Pairing (fast, mid) pages on steep spikes and (slow, long) tickets
// sustained budget burn.
var defaultSLOWindowTicks = []int{4, 16, 64, 256}

// Burn-rule shape derived per latency-critical service: a page when
// both fast windows burn at ≥ pageBurn, a ticket when both slow
// windows burn at ≥ ticketBurn. Bulk services get the ticket rule
// only — a bulk burn is capacity pressure, not an emergency.
const (
	pageBurn   = 8.0
	ticketBurn = 2.0
	// alertPendingTicks barriers of sustained breach promote pending
	// to firing; alertResolveTicks clear barriers resolve.
	alertPendingTicks = 2
	alertResolveTicks = 8
)

// sloEngine owns the per-service trackers and the shared alerter.
type sloEngine struct {
	windows  []obs.SLOWindow
	trackers map[string]*obs.SLOTracker
	order    []string
	prev     map[string]ServiceSnapshot
	alerter  *obs.Alerter
	// lastMilli holds each service's last traced burn rate per window,
	// quantized to milli-burn, so the slo track records changes rather
	// than every barrier.
	lastMilli map[string][]int64
}

// sloWindowSpecs derives the window set from the config (ticks →
// named obs windows).
func sloWindowSpecs(cfg Config) []obs.SLOWindow {
	ticks := cfg.SLOWindowTicks
	if len(ticks) == 0 {
		ticks = defaultSLOWindowTicks
	}
	out := make([]obs.SLOWindow, len(ticks))
	for i, t := range ticks {
		out[i] = obs.SLOWindow{Name: fmt.Sprintf("%dt", t), Ticks: t}
	}
	return out
}

// newSLOEngine builds the always-on engine at cluster construction.
func newSLOEngine(cfg Config) *sloEngine {
	return &sloEngine{
		windows:   sloWindowSpecs(cfg),
		trackers:  make(map[string]*obs.SLOTracker),
		prev:      make(map[string]ServiceSnapshot),
		alerter:   obs.NewAlerter(nil),
		lastMilli: make(map[string][]int64),
	}
}

// winIdx clamps a preferred window index into the configured set.
func (e *sloEngine) winIdx(i int) int {
	if i >= len(e.windows) {
		return len(e.windows) - 1
	}
	return i
}

// addService wires one service into the engine (from AddService):
// tracker, burn rules by class, and the labeled registry series.
func (c *Cluster) sloAddService(svc *Service) {
	e := c.slo
	name := svc.Name
	avail := svc.SLO.Availability
	// A 1.0 objective leaves no budget to divide by; treat it as
	// "any error is an effectively infinite burn".
	if avail >= 1 {
		avail = 0.999999
	}
	tr := obs.NewSLOTracker(avail, e.windows)
	e.trackers[name] = tr
	e.order = append(e.order, name)
	e.lastMilli[name] = make([]int64, len(e.windows))

	// Services without an availability objective are tracked (the
	// registry still exposes their burn, degenerating to raw error
	// rate) but never alert.
	if svc.SLO.Availability > 0 {
		if svc.Class == ClassLatencyCritical {
			e.alerter.Add(obs.BurnRule{
				Service: name, Severity: obs.SeverityPage,
				FastWin: e.winIdx(0), SlowWin: e.winIdx(1), Threshold: pageBurn,
				PendingTicks: alertPendingTicks, ResolveTicks: alertResolveTicks,
			})
		}
		e.alerter.Add(obs.BurnRule{
			Service: name, Severity: obs.SeverityTicket,
			FastWin: e.winIdx(2), SlowWin: e.winIdx(3), Threshold: ticketBurn,
			PendingTicks: alertPendingTicks, ResolveTicks: alertResolveTicks,
		})
	}

	for wi, w := range e.windows {
		wi := wi
		labels := map[string]string{"service": name, "window": w.Name}
		c.reg.GaugeL(mSLOBurn, labels,
			"Error-budget burn rate per service and rolling window (1 = exactly at objective).",
			func() float64 { return tr.BurnRate(wi) })
		c.reg.GaugeL(mSLOP99Viol, labels,
			"Fraction of window ticks whose p99 breached the service latency target.",
			func() float64 { return tr.P99ViolationFraction(wi) })
	}
	for _, sev := range []obs.AlertSeverity{obs.SeverityPage, obs.SeverityTicket} {
		for _, st := range []obs.AlertState{obs.AlertPending, obs.AlertFiring, obs.AlertResolved} {
			sev, st := sev, st
			c.reg.CounterL(mAlerts,
				map[string]string{"service": name, "severity": string(sev), "state": string(st)},
				"Burn-rate alert transitions by service, severity and state.",
				func() int64 { return e.alerter.Log().Count(name, sev, st) })
		}
	}
}

// stepSLO advances every tracker one barrier and runs the alerter.
// Runs on the serial control-plane path (barrierTail); never on the
// packet hot path.
func (c *Cluster) stepSLO(now sim.Time) {
	e := c.slo
	if e == nil || len(e.order) == 0 {
		return
	}
	for _, name := range e.order {
		cur := c.rawServiceStats(name)
		prev := e.prev[name]
		e.prev[name] = cur
		total := cur.Sent - prev.Sent
		good := cur.HealthyServed - prev.HealthyServed
		svc := c.services[name]
		p99Viol := false
		if svc.SLO.P99 > 0 {
			// The per-service window histogram (reset at each Serve
			// start) is the registry's latency source; its p99 against
			// the target is the tick's violation bit.
			if h := c.ServiceWindowLatencies(name); h.Count() > 0 {
				p99Viol = h.Percentile(99) > svc.SLO.P99
			}
		}
		tr := e.trackers[name]
		tr.Advance(good, total, p99Viol)
		if c.ctrl != nil {
			last := e.lastMilli[name]
			for wi, w := range e.windows {
				m := int64(tr.BurnRate(wi) * 1000)
				if m == last[wi] {
					continue
				}
				last[wi] = m
				ev := obs.Instant(obs.CatSLO, "burn:"+name, now)
				ev.K1, ev.V1 = "window", w.Name
				ev.K2, ev.V2 = "milli_burn", m
				c.ctrl.Add(ev)
			}
		}
	}
	evs := e.alerter.Step(now, func(svc string, win int) float64 {
		return e.trackers[svc].BurnRate(win)
	})
	if c.ctrl != nil {
		for _, ev := range evs {
			te := obs.Instant(obs.CatAlert, string(ev.State)+":"+ev.Service, now)
			te.K1, te.V1 = "severity", string(ev.Severity)
			te.K2, te.V2 = "milli_fast", int64(ev.BurnFast*1000)
			te.K3, te.V3 = "milli_slow", int64(ev.BurnSlow*1000)
			c.ctrl.Add(te)
		}
	}
}

// SLOWindows reports the configured rolling windows, fast to slow.
func (c *Cluster) SLOWindows() []obs.SLOWindow { return c.slo.windows }

// BurnRate reports one service's current burn rate over the given
// window index — the control signal the autoscaler consumes. Unknown
// services report 0.
func (c *Cluster) BurnRate(service string, win int) float64 {
	tr, ok := c.slo.trackers[service]
	if !ok || win < 0 || win >= len(c.slo.windows) {
		return 0
	}
	return tr.BurnRate(win)
}

// ErrorBudgetRemaining reports one service's unburned budget fraction
// over the given window index (1 = no error, negative = violating).
func (c *Cluster) ErrorBudgetRemaining(service string, win int) float64 {
	tr, ok := c.slo.trackers[service]
	if !ok || win < 0 || win >= len(c.slo.windows) {
		return 1
	}
	return tr.ErrorBudgetRemaining(win)
}

// AlertRules reports the derived burn rules in evaluation order.
func (c *Cluster) AlertRules() []obs.BurnRule { return c.slo.alerter.Rules() }

// AlertEvents reports every alert transition so far, in emission
// order.
func (c *Cluster) AlertEvents() []obs.AlertEvent {
	return append([]obs.AlertEvent(nil), c.slo.alerter.Log().Events()...)
}

// AlertLogBytes renders the append-only alert log in its fixed,
// deterministic line format.
func (c *Cluster) AlertLogBytes() []byte { return c.slo.alerter.Log().Bytes() }

// ActiveAlerts reports how many rules are currently pending or firing.
func (c *Cluster) ActiveAlerts() int { return c.slo.alerter.ActiveCount() }

// CausalEvents renders the fleet's own reaction log — failovers and
// health transitions since the given time — as postmortem candidates.
// The drill merges these with the storm schedule's ground-truth
// events before correlating.
func (c *Cluster) CausalEvents(since sim.Time) []obs.CausalEvent {
	var out []obs.CausalEvent
	for _, t := range c.transitions {
		if t.At < since {
			continue
		}
		out = append(out, obs.CausalEvent{
			At: t.At, Kind: "transition:" + string(t.From) + "->" + string(t.To),
			Subject: t.Node, Detail: t.Reason,
		})
	}
	for _, f := range c.failovers {
		if f.DetectedAt < since {
			continue
		}
		out = append(out, obs.CausalEvent{
			At: f.DetectedAt, Kind: "failover", Subject: f.Node,
			Detail: fmt.Sprintf("%s moved=%d replaced=%d", f.Reason, f.Moved, f.Replaced),
		})
	}
	for _, ev := range c.LoadEvents() {
		if ev.ReqAt < since || ev.Class != LoadFailover {
			continue
		}
		out = append(out, obs.CausalEvent{
			At: ev.ReqAt, Kind: "failover-load", Subject: ev.Node,
		})
	}
	return out
}
