package fleet

import (
	"fmt"

	"harmonia/internal/apps"
	"harmonia/internal/faults"
	"harmonia/internal/hdl"
	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// The fleet8 co-residency drill deploys three services with distinct
// demand sets and classes onto one shared fleet — the stateful layer-4
// LB and the security gateway latency-critical, retrieval bulk — and
// drives the fleet5 failure storm through it with every defense armed
// (budget, retries, derived shedding, gossip + rack plane). What fleet5
// measured fleet-wide, this drill measures per service: the SLO-aware
// control plane must (1) keep each latency-critical service's storm
// availability at or above its SLO, above the bulk service's, and
// above the fleet-wide aggregate; (2) shed bulk strictly before
// latency-critical on thermally eroded nodes; and (3) grant failover
// PR loads ahead of the elective scale-out queue — preemption provable
// from the budget's grant log alone.

// Co-resident service roles (chaosApp — layer4-lb — is the third).
const (
	coresBulkApp = "retrieval"
	coresSecApp  = "sec-gateway"
)

// coresScaleOutFor sizes the elective scale-out fired at storm start:
// enough to fill the budget and leave a visible queue for failovers to
// preempt.
func coresScaleOutFor(budget int) int { return 2*budget + 4 }

// CoResOptions shapes the fleet8 drill.
type CoResOptions struct {
	// Devices is the shared fleet size (the tentpole configuration
	// is 120: large enough for the storm's rack event, small enough
	// for CI).
	Devices int
	// Budget is the concurrent PR-load cap.
	Budget int
	// Seed drives the storm schedule, traffic and router sampling.
	Seed int64
	// Trace, when set, records the drill into a trace process.
	Trace *obs.Recorder
}

// DefaultCoResOptions returns the tentpole co-residency configuration.
func DefaultCoResOptions() CoResOptions {
	return CoResOptions{Devices: 120, Budget: 6, Seed: 11}
}

// CoResServiceResult is one service's storm outcome.
type CoResServiceResult struct {
	Name  string
	Class ServiceClass
	// SLOAvailability is the registered target; Availability the
	// measured healthy-served/sent over the storm.
	SLOAvailability float64
	Availability    float64
	Sent, Served    int64
	Dropped, Shed   int64
	// P50/P99 are per-packet transit latencies over the whole storm
	// (window histograms merged exactly).
	P50, P99 sim.Time
}

// CoResWindowService is one service's slice of a measurement window.
type CoResWindowService struct {
	Name         string
	Sent, Served int64
	Shed         int64
	Availability float64
}

// CoResWindow is one measurement window of the drill.
type CoResWindow struct {
	At       sim.Time
	Services []CoResWindowService
	// Healthy/Degraded/Down count nodes at the window's end;
	// BulkShedNodes counts nodes inside the bulk-shed band.
	Healthy, Degraded, Down int
	BulkShedNodes           int
	LoadsInflight           int
	ElectivesQueued         int
}

// ShedObservation is one (window, node) proof point for the shedding
// order: the node sat inside the bulk-shed band across the whole
// window (banded at both edges, sub-alarm throughout) while the fleet
// offered bulk traffic. LCServed/BulkServed are the node's per-class
// serve deltas over the window — the order holds when BulkServed is 0
// (the hard exclusion) while latency-critical traffic stays eligible:
// lc is only soft-penalized on the band, so it keeps flowing fleet-wide
// (LCShed stays 0) and still lands on the banded node itself whenever
// its rack peers are loaded enough (LCServed > 0 in some windows).
type ShedObservation struct {
	Window     int
	Node       string
	TempMilliC uint32
	LCServed   int64
	BulkServed int64
}

// PreemptionPair is one grant-log proof of priority inversion avoided:
// the elective was requested first, yet the failover started first.
type PreemptionPair struct {
	ElectiveNode   string
	ElectiveReqAt  sim.Time
	ElectiveStart  sim.Time
	FailoverNode   string
	FailoverReqAt  sim.Time
	FailoverStart  sim.Time
}

// CoResResult is the fleet8 report.
type CoResResult struct {
	Devices  int
	RackSize int
	Seed     int64
	Budget   int
	ScaleOut int

	StormStart, StormEnd sim.Time
	Injections           []string

	// FleetAvailability is the aggregate healthy-served/sent over the
	// storm — the PR 4-style fleet-wide number the per-service columns
	// decompose.
	FleetAvailability     float64
	Sent, Served, Dropped int64

	Services []CoResServiceResult

	// Shedding-order evidence: every fully-banded (window, node)
	// observation, plus how many of them proved the order (zero bulk
	// served on the banded node) and how many violated it (bulk served
	// there anyway).
	ShedObservations   []ShedObservation
	ShedOrderProofs    int
	ShedOrderViolations int
	// LCShed is the latency-critical services' total class-shed drops —
	// zero by construction of the shedding order.
	LCShed int64

	// Preemption evidence from the budget grant log.
	ElectivesRequested  int
	ElectivesCompleted  int
	ElectivesUnplaced   int
	LoadsPreempted      int
	PeakConcurrentLoads int
	PreemptionPairs     []PreemptionPair

	Failovers int

	Windows []CoResWindow

	// Metrics is the end-of-storm registry snapshot (per-service series
	// included); Registry the live registry for Prometheus export.
	Metrics  map[string]float64
	Registry *obs.Registry
}

// coresTraffics derives one window's deterministic per-service traffic.
// Each service gets its own seed stream (offsets keep the packet and
// arrival streams disjoint across services) and a distinct shape: the
// LB carries the bulk of the offered load, retrieval a heavy bulk
// stream, the gateway a light small-packet stream.
func coresTraffics(seed int64, window int) []Traffic {
	base := seed*1_000_003 + int64(window+1)*1000
	return []Traffic{
		{Service: chaosApp, OfferedGbps: 200, PktBytes: 1024, Flows: 2048, Jitter: 0.2, Seed: base},
		{Service: coresBulkApp, OfferedGbps: 150, PktBytes: 1024, Flows: 1024, Jitter: 0.2, Seed: base + 101},
		{Service: coresSecApp, OfferedGbps: 50, PktBytes: 512, Flows: 512, Jitter: 0.2, Seed: base + 211},
	}
}

// coresServices builds the drill's service set against one fleet size.
func coresServices(devices int) ([]Service, error) {
	lbInfo, err := apps.Lookup(chaosApp)
	if err != nil {
		return nil, err
	}
	bulkInfo, err := apps.Lookup(coresBulkApp)
	if err != nil {
		return nil, err
	}
	secInfo, err := apps.Lookup(coresSecApp)
	if err != nil {
		return nil, err
	}
	lb := AppService(lbInfo, devices, net.IPv4(20, 0, 0, 1))
	lb.Class = ClassLatencyCritical
	lb.SLO = SLO{Availability: 0.999}
	lb.Stateful = true
	lb.Backends = chaosBackends()
	bulk := AppService(bulkInfo, devices/2, net.IPv4(30, 0, 0, 1))
	bulk.Class = ClassBulk
	bulk.SLO = SLO{Availability: 0.90}
	sec := AppService(secInfo, devices/4, net.IPv4(40, 0, 0, 1))
	sec.Class = ClassLatencyCritical
	sec.SLO = SLO{Availability: 0.999}
	return []Service{lb, bulk, sec}, nil
}

// CoResidencyDrill runs the fleet8 experiment: one seeded storm against
// the co-resident fleet with every defense armed.
func CoResidencyDrill(opts CoResOptions) (*CoResResult, error) {
	if opts.Devices < 8 {
		return nil, fmt.Errorf("fleet: co-residency drill needs at least 8 devices, got %d", opts.Devices)
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("fleet: co-residency drill needs a positive budget, got %d", opts.Budget)
	}
	spec := faults.DefaultStorm(opts.Devices, opts.Seed)
	spec.Start = 2*DefaultConfig().ReconfigTime + chaosWarmup
	// fleet5's ramp climbs 6°C per half-window — it crosses the whole
	// bulk-shed band inside one measurement window, leaving no window
	// fully inside the band. Slow the ramp to one step every two
	// windows (and ramp more nodes, cooling after the full climb) so
	// band residency is observable at window granularity.
	spec.ThermalEvery = 2 * chaosWindowDur
	spec.ThermalCoolAt = 40 * chaosWindowDur
	spec.ThermalNodes = opts.Devices / 40
	if spec.ThermalNodes < 2 {
		spec.ThermalNodes = 2
	}
	sched, err := faults.Storm(spec)
	if err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		sched.Trace(opts.Trace.Process("storm-plan").Track("schedule"))
	}

	// The scale-plane configuration fleet5's budgeted-derived case
	// gates: gossip health, rack-first dispatch, per-probe snapshots,
	// derived shedding with the widened shed span (the class shedding
	// order needs the pre-alarm band to be observable across windows).
	cfg := DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.GossipHealth = true
	cfg.GossipFanout = 32
	cfg.GossipPiggyback = 8
	cfg.RackP2C = true
	cfg.SnapshotEvery = 1
	cfg.DerivedShedding = true
	cfg.ShedStartMilliC = cfg.DegradeMilliC - 40_000
	// Retrieval's role logic (180k LUT, 2048 DSP) outgrows the default
	// slot budget, so the co-resident fleet carves bigger slots — the
	// catalog's large chips still yield 2-3 per device.
	cfg.SlotRes = hdl.Resources{LUT: 200_000, REG: 300_000, BRAM: 512, URAM: 96, DSP: 2_048}

	svcs, err := coresServices(opts.Devices)
	if err != nil {
		return nil, err
	}
	c, err := BuildCoResidentCluster(cfg, svcs, opts.Devices)
	if err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		c.SetTrace(opts.Trace.Process("coresidency"))
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	if _, err := c.ServeMulti(chaosWarmup, coresTraffics(opts.Seed, -1)); err != nil {
		return nil, err
	}

	// Arm the budget (resets the grant history so warmup placements do
	// not contaminate the storm's log) and fire the elective scale-out:
	// the bulk service grows by more replicas than the budget admits at
	// once, so a queue forms for the storm's failovers to preempt.
	c.SetLoadBudget(opts.Budget)
	stormStart := c.Now()
	if stormStart != sched.Spec.Start {
		return nil, fmt.Errorf("fleet: storm scheduled for %v but warmup ended at %v",
			sched.Spec.Start, stormStart)
	}
	scaleOut := coresScaleOutFor(opts.Budget)
	bulkBase := c.services[coresBulkApp].Replicas
	if err := c.ScaleService(stormStart, coresBulkApp, scaleOut); err != nil {
		return nil, err
	}

	res := &CoResResult{
		Devices: opts.Devices, RackSize: spec.RackSize,
		Seed: opts.Seed, Budget: opts.Budget, ScaleOut: scaleOut,
		StormStart: spec.Start, StormEnd: sched.End(),
	}
	for _, inj := range sched.Injections {
		res.Injections = append(res.Injections, inj.String())
	}

	names := c.Services()
	pre := make(map[string]ServiceSnapshot, len(names))
	hists := make(map[string]*metrics.Histogram, len(names))
	for _, name := range names {
		pre[name] = c.ServiceStats(name)
		hists[name] = &metrics.Histogram{}
	}
	preFleet := c.RouterStats()
	nodes := c.Nodes()

	type nodeProbe struct {
		banded   bool
		lc, bulk int64
	}
	probes := make([]nodeProbe, len(nodes))

	injIdx := 0
	winStats := make(map[string]ServiceSnapshot, len(names))
	for w := 0; w < chaosWindows; w++ {
		winEnd := stormStart + sim.Time(w+1)*chaosWindowDur
		for injIdx < len(sched.Injections) && sched.Injections[injIdx].At < winEnd {
			if err := applyInjection(c, nodes, sched.Injections[injIdx]); err != nil {
				return nil, fmt.Errorf("fleet: injection %v: %w", sched.Injections[injIdx], err)
			}
			injIdx++
		}
		// Band membership and per-class serve counts at the window's
		// start — the same lastTemp the first dispatch views freeze.
		for i, n := range nodes {
			lc, bulk := n.ClassServed()
			probes[i] = nodeProbe{
				banded: n.State() == Healthy && c.shedsBulk(n.LastTemp()),
				lc:     lc, bulk: bulk,
			}
		}
		for _, name := range names {
			winStats[name] = c.ServiceStats(name)
		}
		if _, err := c.ServeMulti(chaosWindowDur, coresTraffics(opts.Seed, w)); err != nil {
			return nil, err
		}

		win := CoResWindow{At: c.Now(), ElectivesQueued: c.ElectivesQueued()}
		var bulkSentThisWindow int64
		for _, name := range names {
			before := winStats[name]
			after := c.ServiceStats(name)
			ws := CoResWindowService{
				Name:   name,
				Sent:   after.Sent - before.Sent,
				Served: after.Served - before.Served,
				Shed:   after.Shed - before.Shed,
			}
			ws.Availability = 1
			if ws.Sent > 0 {
				ws.Availability = float64(after.HealthyServed-before.HealthyServed) / float64(ws.Sent)
			}
			if c.services[name].Class == ClassBulk {
				bulkSentThisWindow += ws.Sent
			}
			win.Services = append(win.Services, ws)
			hists[name].Merge(c.ServiceWindowLatencies(name))
		}
		for i, n := range nodes {
			switch n.State() {
			case Healthy:
				win.Healthy++
				if c.shedsBulk(n.LastTemp()) {
					win.BulkShedNodes++
				}
			case Degraded:
				win.Degraded++
			default:
				win.Down++
			}
			// A node banded at both window edges (and sub-alarm at both —
			// the storm's ramps are monotonic inside a window) took the
			// whole window's dispatch decisions inside the band: its bulk
			// serve delta must be zero while latency-critical flows.
			if probes[i].banded && n.State() == Healthy && c.shedsBulk(n.LastTemp()) && bulkSentThisWindow > 0 {
				lc, bulk := n.ClassServed()
				ob := ShedObservation{
					Window: w, Node: n.ID, TempMilliC: n.LastTemp(),
					LCServed: lc - probes[i].lc, BulkServed: bulk - probes[i].bulk,
				}
				res.ShedObservations = append(res.ShedObservations, ob)
				if ob.BulkServed > 0 {
					res.ShedOrderViolations++
				} else {
					res.ShedOrderProofs++
				}
			}
		}
		// Budget occupancy at the window edge, from the live heap.
		c.budget.prune(c.Now())
		win.LoadsInflight = len(c.budget.inflight)
		res.Windows = append(res.Windows, win)
	}

	postFleet := c.RouterStats()
	res.Sent = postFleet.Sent - preFleet.Sent
	res.Served = postFleet.Served - preFleet.Served
	res.Dropped = postFleet.Dropped - preFleet.Dropped
	if res.Sent > 0 {
		res.FleetAvailability = float64(postFleet.HealthyServed-preFleet.HealthyServed) / float64(res.Sent)
	}
	for _, name := range names {
		svc := c.services[name]
		before := pre[name]
		after := c.ServiceStats(name)
		sr := CoResServiceResult{
			Name: name, Class: svc.Class, SLOAvailability: svc.SLO.Availability,
			Sent:    after.Sent - before.Sent,
			Served:  after.Served - before.Served,
			Dropped: after.Dropped - before.Dropped,
			Shed:    after.Shed - before.Shed,
			P50:     hists[name].Percentile(50),
			P99:     hists[name].Percentile(99),
		}
		if sr.Sent > 0 {
			sr.Availability = float64(after.HealthyServed-before.HealthyServed) / float64(sr.Sent)
		}
		if svc.Class == ClassLatencyCritical {
			res.LCShed += sr.Shed
		}
		res.Services = append(res.Services, sr)
	}

	// Preemption evidence: every (elective, failover) grant pair where
	// the elective asked first but the failover started first.
	events := c.LoadEvents()
	for _, f := range events {
		if f.Class != LoadFailover {
			continue
		}
		for _, e := range events {
			if e.Class != LoadElective || e.ReqAt >= f.ReqAt || f.Start >= e.Start {
				continue
			}
			res.PreemptionPairs = append(res.PreemptionPairs, PreemptionPair{
				ElectiveNode: e.Node, ElectiveReqAt: e.ReqAt, ElectiveStart: e.Start,
				FailoverNode: f.Node, FailoverReqAt: f.ReqAt, FailoverStart: f.Start,
			})
			if len(res.PreemptionPairs) >= 16 {
				break
			}
		}
		if len(res.PreemptionPairs) >= 16 {
			break
		}
	}
	res.LoadsPreempted = c.LoadsPreempted()
	res.PeakConcurrentLoads = c.LoadBudgetPeak()
	res.ElectivesRequested = scaleOut
	for _, r := range c.Replicas() {
		if r.Service != coresBulkApp || r.Index < bulkBase {
			continue
		}
		if r.Node != "" {
			res.ElectivesCompleted++
		} else {
			res.ElectivesUnplaced++
		}
	}
	for _, f := range c.Failovers() {
		if f.DetectedAt >= stormStart {
			res.Failovers++
		}
	}
	res.Registry = c.Metrics()
	res.Metrics = res.Registry.Values()
	return res, nil
}
