package fleet

import (
	"fmt"

	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// The cluster's observability wiring. Every control-plane and serving
// layer registers read-through metrics into one obs.Registry at
// construction, and SetTrace attaches an obs.Process whose tracks the
// layers record spans into: the control plane and command path each
// get a track, and every router shard gets its own — shard tracks are
// touched by exactly one worker between barriers (the same ownership
// rule as the shard RNG and counters), which keeps traces
// byte-deterministic under parallel serving.
//
// The registry is the single source of truth for fleet statistics:
// the public accessors (CmdPath, RouterStats, LoadBudgetPeak, ...)
// read back through it, so drill JSON and registry snapshots can
// never disagree.

// Standard fleet metric names.
const (
	mRouterSent    = "harmonia_router_sent_total"
	mRouterServed  = "harmonia_router_served_total"
	mRouterDropped = "harmonia_router_dropped_total"
	mRouterHealthy = "harmonia_router_healthy_served_total"
	mRouterBytes   = "harmonia_router_bytes_total"
	mRouteLatency  = "harmonia_route_latency_window_ps"
	mCmdIssued     = "harmonia_cmd_issued_total"
	mCmdRetries    = "harmonia_cmd_retries_total"
	mCmdDrops      = "harmonia_cmd_drops_total"
	mNodes         = "harmonia_fleet_nodes"
	mReplicas      = "harmonia_fleet_replicas"
	mReplicasReady = "harmonia_fleet_replicas_placed"
	mLoads           = "harmonia_pr_loads_total"
	mLoadsQueued     = "harmonia_pr_loads_queued_total"
	mLoadFailures    = "harmonia_pr_load_failures_total"
	mLoadsPeak       = "harmonia_pr_loads_peak_concurrent"
	mLoadsPreempted  = "harmonia_pr_loads_preempted_total"
	mElectivesQueued = "harmonia_pr_electives_queued"

	mRouteLatencyHist = "harmonia_route_latency_window_hist_ps"

	mSLOBurn    = "harmonia_slo_burn_rate"
	mSLOP99Viol = "harmonia_slo_p99_violation_fraction"
	mAlerts     = "harmonia_alerts_total"

	mSvcSent    = "harmonia_service_sent_total"
	mSvcServed  = "harmonia_service_served_total"
	mSvcDropped = "harmonia_service_dropped_total"
	mSvcHealthy = "harmonia_service_healthy_served_total"
	mSvcShed    = "harmonia_service_shed_total"
	mSvcBytes   = "harmonia_service_bytes_total"
	mFailovers     = "harmonia_failovers_total"
	mTransitions   = "harmonia_transitions_total"
	mMigrations    = "harmonia_migrations_total"
	mThermalMax    = "harmonia_thermal_max_milli_c"
	mSimNow        = "harmonia_sim_now_ps"

	mFragmentation  = "harmonia_fleet_fragmentation"
	mStrandedQueues = "harmonia_fleet_stranded_queues"
	mRebalanceMoves = "harmonia_rebalance_moves_total"

	mGossipTicks    = "harmonia_gossip_ticks_total"
	mGossipProbes   = "harmonia_gossip_probes_total"
	mGossipDigests  = "harmonia_gossip_digests_total"
	mGossipSuspects = "harmonia_gossip_suspicions_total"
	mGossipRefutes  = "harmonia_gossip_refutations_total"
	mGossipConfirms = "harmonia_gossip_confirmations_total"
	mGossipPerTick  = "harmonia_gossip_msgs_per_tick"
)

// registerMetrics wires every layer's live counters into the registry
// as read-through callbacks. Nothing here runs on the serving hot
// path; callbacks evaluate only at snapshot time.
func (c *Cluster) registerMetrics() {
	reg := c.reg

	// Router shards (merged with the baseline path).
	reg.Counter(mRouterSent, "Packets offered to the fleet router.",
		func() int64 { return c.rawRouterStats().Sent })
	reg.Counter(mRouterServed, "Packets a replica's datapath accepted.",
		func() int64 { return c.rawRouterStats().Served })
	reg.Counter(mRouterDropped, "Packets dropped (no replica, steering reject, tail drop).",
		func() int64 { return c.rawRouterStats().Dropped })
	reg.Counter(mRouterHealthy, "Served packets that landed on a Healthy node.",
		func() int64 { return c.rawRouterStats().HealthyServed })
	reg.Counter(mRouterBytes, "Wire bytes the router served.",
		func() int64 { return c.rawRouterStats().Bytes })
	reg.SummaryM(mRouteLatency, "Routed-packet latency over the current window (ps).",
		func() obs.Summary {
			h := c.router.windowHist()
			return obs.Summary{
				Count: h.Count(),
				Sum:   float64(h.Sum()),
				P50:   float64(h.Percentile(50)),
				P99:   float64(h.Percentile(99)),
				Max:   float64(h.Max()),
			}
		})

	reg.HistogramM(mRouteLatencyHist,
		"Routed-packet latency over the current window (native histogram, ps).",
		func() obs.HistSnapshot {
			h := c.router.windowHist()
			snap := obs.HistSnapshot{Count: h.Count(), Sum: float64(h.Sum())}
			h.CumBuckets(func(upper sim.Time, cum int64) {
				snap.Buckets = append(snap.Buckets, obs.HistBucket{LE: float64(upper), Count: cum})
			})
			return snap
		})

	// Command path (CmdDriver counters summed across nodes).
	reg.Counter(mCmdIssued, "Commands completed over every node's command path.",
		func() int64 { return c.rawCmdPath().Issued })
	reg.Counter(mCmdRetries, "Checksum-triggered command retransmissions.",
		func() int64 { return c.rawCmdPath().Retries })
	reg.Counter(mCmdDrops, "Commands abandoned after exhausting retries.",
		func() int64 { return c.rawCmdPath().Drops })

	// Fleet health.
	for _, st := range []State{Healthy, Degraded, Failed, Drained} {
		st := st
		reg.GaugeL(mNodes, map[string]string{"state": string(st)}, "Nodes by health state.",
			func() float64 {
				n := 0
				for _, node := range c.nodes {
					if node.state == st {
						n++
					}
				}
				return float64(n)
			})
	}
	reg.Gauge(mReplicas, "Replicas materialized (placed or pending).",
		func() float64 { return float64(len(c.replicas)) })
	reg.Gauge(mReplicasReady, "Replicas currently placed on a device.",
		func() float64 {
			n := 0
			for _, r := range c.replicas {
				if r.Node != "" {
					n++
				}
			}
			return float64(n)
		})
	reg.Counter(mFailovers, "Completed failover evacuations.",
		func() int64 { return int64(len(c.failovers)) })
	reg.Counter(mTransitions, "Health state-machine transitions.",
		func() int64 { return int64(len(c.transitions)) })
	reg.Gauge(mThermalMax, "Hottest last-heartbeat die temperature (milli-degC).",
		func() float64 {
			var max uint32
			for _, n := range c.nodes {
				if n.lastTemp > max {
					max = n.lastTemp
				}
			}
			return float64(max)
		})
	reg.Gauge(mSimNow, "Cluster simulated time (ps).",
		func() float64 { return float64(c.now) })

	// Reconfiguration budget.
	reg.Counter(mLoads, "Partial-bitstream load grants since the last budget reset.",
		func() int64 { return int64(len(c.budget.events)) })
	reg.Counter(mLoadsQueued, "Loads the budget delayed past their request time.",
		func() int64 { return int64(c.budget.queued) })
	reg.Counter(mLoadFailures, "Injected bitstream-load failures across tenancy managers.",
		func() int64 { return c.rawLoadFailures() })
	reg.Gauge(mLoadsPeak, "Peak concurrent PR loads since the last budget reset.",
		func() float64 { return float64(peakConcurrent(c.budget.events)) })
	reg.Counter(mLoadsPreempted, "Failover grants issued while elective loads were queued.",
		func() int64 { return int64(c.budget.preempted) })
	reg.Gauge(mElectivesQueued, "Elective scale-out loads waiting for budget headroom.",
		func() float64 { return float64(len(c.electives)) })

	// Fragmentation and background rebalancing.
	reg.Gauge(mFragmentation, "Fleet fragmentation score (0.6 queue frag + 0.2 slot imbalance + 0.2 drift).",
		func() float64 { return c.rawFragmentation().Score })
	reg.Gauge(mStrandedQueues, "Host queues retired by evictions and not yet reclaimed, fleet-wide.",
		func() float64 { return float64(c.rawFragmentation().StrandedQueues) })
	for _, outcome := range []string{"done", "aborted"} {
		outcome := outcome
		reg.CounterL(mRebalanceMoves, map[string]string{"outcome": outcome},
			"Rebalance moves by outcome.",
			func() int64 {
				s := c.RebalanceStats()
				if outcome == "done" {
					return int64(s.MovesDone)
				}
				return int64(s.MovesAborted)
			})
	}

	// Gossip health dissemination (all zero while the detector is off).
	reg.Counter(mGossipTicks, "Gossip detector protocol rounds.",
		func() int64 { return c.rawGossipStats().Ticks })
	reg.Counter(mGossipProbes, "Direct gossip probes (rotation plus confirmation).",
		func() int64 { return c.rawGossipStats().Probes })
	reg.Counter(mGossipDigests, "Piggybacked peer liveness observations.",
		func() int64 { return c.rawGossipStats().Digests })
	reg.Counter(mGossipSuspects, "Gossip suspicion events.",
		func() int64 { return c.rawGossipStats().Suspicions })
	reg.Counter(mGossipRefutes, "Gossip refutation events (incarnation bumps).",
		func() int64 { return c.rawGossipStats().Refutations })
	reg.Counter(mGossipConfirms, "Gossip dead-confirmation events.",
		func() int64 { return c.rawGossipStats().Confirmations })
	reg.Gauge(mGossipPerTick, "Mean gossip messages (probes+digests) per tick.",
		func() float64 {
			s := c.rawGossipStats()
			if s.Ticks == 0 {
				return 0
			}
			return float64(s.Probes+s.Digests) / float64(s.Ticks)
		})

	// Flow migration, split by path.
	for _, mode := range []string{"live", "snapshot"} {
		mode := mode
		reg.CounterL(mMigrations, map[string]string{"mode": mode},
			"Connection tables carried across failover, by transfer path.",
			func() int64 {
				var n int64
				for _, m := range c.migrations {
					if m.Live == (mode == "live") {
						n++
					}
				}
				return n
			})
	}
}

// registerServiceMetrics wires one service's labeled dispatch counters
// at registration time (AddService): the callbacks re-look the svcIndex
// up per read, because the router's freeze rebuilds the index map.
func (c *Cluster) registerServiceMetrics(name string) {
	labels := map[string]string{"service": name}
	reg := c.reg
	reg.CounterL(mSvcSent, labels, "Packets offered per service.",
		func() int64 { return c.rawServiceStats(name).Sent })
	reg.CounterL(mSvcServed, labels, "Packets served per service.",
		func() int64 { return c.rawServiceStats(name).Served })
	reg.CounterL(mSvcDropped, labels, "Packets dropped per service.",
		func() int64 { return c.rawServiceStats(name).Dropped })
	reg.CounterL(mSvcHealthy, labels, "Served packets landing on Healthy nodes, per service.",
		func() int64 { return c.rawServiceStats(name).HealthyServed })
	reg.CounterL(mSvcShed, labels, "Drops caused by the class shedding order, per service.",
		func() int64 { return c.rawServiceStats(name).Shed })
	reg.CounterL(mSvcBytes, labels, "Wire bytes served per service.",
		func() int64 { return c.rawServiceStats(name).Bytes })
}

// ServiceStats reports one service's cumulative dispatch counters, read
// through the registry like RouterStats.
func (c *Cluster) ServiceStats(name string) ServiceSnapshot {
	labels := map[string]string{"service": name}
	intL := func(metric string) int64 {
		v, _ := c.reg.ValueL(metric, labels)
		return int64(v)
	}
	return ServiceSnapshot{
		Sent:          intL(mSvcSent),
		Served:        intL(mSvcServed),
		Dropped:       intL(mSvcDropped),
		HealthyServed: intL(mSvcHealthy),
		Shed:          intL(mSvcShed),
		Bytes:         intL(mSvcBytes),
	}
}

// LoadsPreempted reports how many failover grants jumped the elective
// queue, read through the registry.
func (c *Cluster) LoadsPreempted() int { return int(c.reg.Int(mLoadsPreempted)) }

// Metrics returns the cluster's metrics registry.
func (c *Cluster) Metrics() *obs.Registry { return c.reg }

// SetTrace attaches (or with nil detaches) a trace process: the
// control plane, command path and every router shard record into its
// tracks from here on. Attach before serving traffic for complete
// recordings; track creation order is deterministic.
func (c *Cluster) SetTrace(p *obs.Process) {
	c.tp = p
	if p == nil {
		c.ctrl, c.cmdTrack = nil, nil
		for _, sh := range c.router.shards {
			sh.trace = nil
		}
		for _, n := range c.nodes {
			n.Inst.SetCmdTrace(nil)
		}
		return
	}
	c.ctrl = p.Track("control-plane")
	c.cmdTrack = p.Track("cmd-path")
	for _, n := range c.nodes {
		n.Inst.SetCmdTrace(c.cmdTrack)
	}
	c.attachShardTraces()
}

// attachShardTraces gives each frozen router shard its own track.
// Called from SetTrace and again when the router freezes its layout.
func (c *Cluster) attachShardTraces() {
	if c.tp == nil || !c.router.frozen {
		return
	}
	for i, sh := range c.router.shards {
		sh.trace = c.tp.Track(fmt.Sprintf("shard-%02d", i))
		sh.sampleN = c.tp.Sample()
	}
}

// traceFault records one applied chaos injection on the control track.
func (c *Cluster) traceFault(kind string, node string, arg int64) {
	if c.ctrl == nil {
		return
	}
	e := obs.Instant(obs.CatFault, kind, c.now)
	e.K1, e.V1 = "node", node
	e.K2, e.V2 = "arg", arg
	c.ctrl.Add(e)
}

// --- Read-through stats accessors -----------------------------------
//
// The public accessors fetch their values back out of the registry by
// name rather than re-deriving them, so a drill JSON field and a
// registry snapshot taken at the same instant are definitionally
// equal. The raw* helpers below are the only places that sum the
// underlying counters; the registry callbacks own them.

// rawCmdPath sums command-path counters across every node's driver.
func (c *Cluster) rawCmdPath() CmdPathStats {
	var s CmdPathStats
	for _, n := range c.nodes {
		issued, retries, drops := n.Inst.CmdStats()
		s.Issued += issued
		s.Retries += retries
		s.Drops += drops
	}
	return s
}

// rawLoadFailures sums injected bitstream-load failures across every
// node's tenancy manager.
func (c *Cluster) rawLoadFailures() int64 {
	var total int64
	for _, n := range c.nodes {
		if n.Tenants != nil {
			total += n.Tenants.LoadFailures()
		}
	}
	return total
}

// CmdPath reports the fleet's command-path counters, read through the
// registry.
func (c *Cluster) CmdPath() CmdPathStats {
	return CmdPathStats{
		Issued:  c.reg.Int(mCmdIssued),
		Retries: c.reg.Int(mCmdRetries),
		Drops:   c.reg.Int(mCmdDrops),
	}
}

// RouterStats reports cumulative dispatch counters, read through the
// registry.
func (c *Cluster) RouterStats() RouterSnapshot {
	return RouterSnapshot{
		Sent:          c.reg.Int(mRouterSent),
		Served:        c.reg.Int(mRouterServed),
		Dropped:       c.reg.Int(mRouterDropped),
		HealthyServed: c.reg.Int(mRouterHealthy),
		Bytes:         c.reg.Int(mRouterBytes),
	}
}

// LoadBudgetPeak reports the highest concurrent PR-load count observed
// since the budget was last reset, read through the registry.
func (c *Cluster) LoadBudgetPeak() int { return int(c.reg.Int(mLoadsPeak)) }

// LoadsQueued reports how many loads the budget delayed, read through
// the registry.
func (c *Cluster) LoadsQueued() int { return int(c.reg.Int(mLoadsQueued)) }

// LoadFailures sums injected bitstream-load failures fleet-wide, read
// through the registry.
func (c *Cluster) LoadFailures() int64 { return c.reg.Int(mLoadFailures) }
