package fleet

import (
	"strings"
	"testing"

	"harmonia/internal/hdl"
	"harmonia/internal/sim"
)

// servePhases builds a fresh sharded cluster and runs two identically
// seeded phases — one clean, one spanning a device failure — returning
// both PhaseStats. Everything observable is derived from explicit
// seeds, so two calls with the same worker count must match, and the
// determinism contract says worker count must not matter either.
func servePhases(t *testing.T, workers int) (PhaseStats, PhaseStats) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RouterShards = 4
	cfg.ServeWorkers = workers
	c, err := BuildCluster(cfg, testApp, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	tr := DefaultTraffic(testApp)
	tr.OfferedGbps = 200
	first, err := c.Serve(120*sim.Microsecond, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Kill a device mid-phase: failover runs at a heartbeat barrier
	// inside the serving loop, exercising index updates under way.
	if err := c.Kill(c.Nodes()[2].ID); err != nil {
		t.Fatal(err)
	}
	tr2 := tr
	tr2.Seed = tr.Seed + 50
	second, err := c.Serve(
		sim.Time(cfg.FailedAfter+2)*cfg.Heartbeat+2*cfg.ReconfigTime, tr2)
	if err != nil {
		t.Fatal(err)
	}
	return first, second
}

// TestServeDeterministicAcrossWorkers is the determinism contract: two
// identically seeded Serve phases on a sharded cluster produce
// byte-identical PhaseStats regardless of how many workers route the
// shards — including through a mid-phase failover. CI's race job runs
// this under -race, which also validates that parallel shard routing
// shares no unsynchronized state.
func TestServeDeterministicAcrossWorkers(t *testing.T) {
	base1, base2 := servePhases(t, 1)
	if base1.Served == 0 || base2.Served == 0 {
		t.Fatalf("phases served nothing: %+v / %+v", base1, base2)
	}
	for _, workers := range []int{2, 8} {
		got1, got2 := servePhases(t, workers)
		if got1 != base1 {
			t.Errorf("workers=%d: clean phase diverges:\n 1 worker: %+v\n %d workers: %+v",
				workers, base1, workers, got1)
		}
		if got2 != base2 {
			t.Errorf("workers=%d: failover phase diverges:\n 1 worker: %+v\n %d workers: %+v",
				workers, base2, workers, got2)
		}
	}
}

// TestServeDeterministicRepeatable guards the simpler property: the
// same seeded phase on two identically built clusters is repeatable.
func TestServeDeterministicRepeatable(t *testing.T) {
	a1, a2 := servePhases(t, 0) // 0 = GOMAXPROCS, whatever this host has
	b1, b2 := servePhases(t, 0)
	if a1 != b1 || a2 != b2 {
		t.Errorf("seeded phases not repeatable:\n a=%+v/%+v\n b=%+v/%+v", a1, a2, b1, b2)
	}
}

// alertPhase builds a small co-resident fleet with SLO windows armed
// and replays a fixed mini-storm — a device kill plus a thermal
// excursion on serving nodes under static shedding — returning the
// alert transition log and the final burn state. Everything observable
// advances only at heartbeat barriers, so the bytes must not depend on
// the batch quantum or the worker count.
func alertPhase(t *testing.T, quantum, workers int) (string, string) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RouterShards = 4
	cfg.BatchQuantum = quantum
	cfg.ServeWorkers = workers
	cfg.SLOWindowTicks = []int{2, 8, 24, 48}
	cfg.SlotRes = hdl.Resources{LUT: 200_000, REG: 300_000, BRAM: 512, URAM: 96, DSP: 2_048}
	const devices = 24
	svcs, err := coresServices(devices)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildCoResidentCluster(cfg, svcs, devices)
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	serve := func(d sim.Time, seed int64) {
		t.Helper()
		if _, err := c.ServeMulti(d, coresTraffics(seed, int(seed))); err != nil {
			t.Fatal(err)
		}
	}
	serve(200*sim.Microsecond, 1)
	// Thermal excursion: three serving nodes pushed past the degrade
	// alarm keep taking traffic under static shedding — unhealthy
	// serves burn the error budget and the page rules trip.
	for _, n := range c.Nodes()[:3] {
		if err := c.Overheat(n.ID, 70_000); err != nil {
			t.Fatal(err)
		}
	}
	serve(400*sim.Microsecond, 2)
	if err := c.Kill(c.Nodes()[5].ID); err != nil {
		t.Fatal(err)
	}
	serve(400*sim.Microsecond, 3)
	for _, n := range c.Nodes()[:3] {
		if err := c.Cool(n.ID); err != nil {
			t.Fatal(err)
		}
	}
	// Tail: long enough for the slowest window (48 ticks) to drain and
	// every alert to resolve.
	serve(4*sim.Millisecond, 4)
	return string(c.AlertLogBytes()), burnState(c)
}

// TestAlertDeterminism is the SLO layer's determinism contract: the
// alert transition log and the final burn-rate state are byte-identical
// across every batch quantum and worker count, because the SLO engine
// advances only at heartbeat barriers on the serial control-plane path.
func TestAlertDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("alert determinism sweep is seconds-long; skipped in -short")
	}
	var baseLog, baseBurn string
	first := true
	for _, quantum := range []int{0, 64, 4096} {
		for _, workers := range []int{1, 2, 8} {
			log, burn := alertPhase(t, quantum, workers)
			if first {
				if !strings.Contains(log, "state=firing") {
					t.Fatalf("mini-storm fired no alerts; log:\n%s", log)
				}
				if !strings.Contains(log, "state=resolved") {
					t.Fatalf("alerts never resolved; log:\n%s", log)
				}
				baseLog, baseBurn = log, burn
				first = false
				continue
			}
			if log != baseLog {
				t.Errorf("quantum=%d workers=%d: alert log diverges:\nbase:\n%s\ngot:\n%s",
					quantum, workers, baseLog, log)
			}
			if burn != baseBurn {
				t.Errorf("quantum=%d workers=%d: burn state diverges:\nbase:\n%s\ngot:\n%s",
					quantum, workers, baseBurn, burn)
			}
		}
	}
}

// TestCohortHeartbeatDetection verifies the cohort monitor's bounded
// failure detection: with C cohorts each sweep probes only ~N/C
// devices, yet a silent device is still declared failed after
// FailedAfter consecutive missed probes, within FailedAfter*C ticks.
func TestCohortHeartbeatDetection(t *testing.T) {
	const nodes, cohorts = 6, 3
	cfg := DefaultConfig()
	cfg.HeartbeatCohorts = cohorts
	c, err := BuildCluster(cfg, testApp, nodes, nodes)
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)

	victim := c.Nodes()[0].ID
	faultAt := c.Now()
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// The worst-case detection budget: FailedAfter missed probes at
	// cohort cadence, plus one full rotation of probe-phase skew.
	budget := sim.Time((cfg.FailedAfter+1)*cohorts) * cfg.Heartbeat
	c.RunMonitorUntil(faultAt + budget)

	n, err := c.Node(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n.State() != Drained {
		t.Fatalf("victim state = %s after %v, want drained (cohort detection)", n.State(), budget)
	}
	reports := c.Failovers()
	if len(reports) != 1 {
		t.Fatalf("got %d failover reports, want 1", len(reports))
	}
	detect := reports[0].DetectedAt - faultAt
	if detect <= 0 || detect > budget {
		t.Errorf("detection latency %v outside (0, %v]", detect, budget)
	}
	// FailedAfter semantics: detection cannot beat FailedAfter probes
	// of this node, which are cohorts ticks apart.
	if min := sim.Time((cfg.FailedAfter-1)*cohorts) * cfg.Heartbeat; detect < min {
		t.Errorf("detection latency %v beats %d probes at cohort cadence (%v)",
			detect, cfg.FailedAfter, min)
	}
}

// TestCohortHeartbeatProbesSubset verifies the amortization itself:
// one sweep with C cohorts touches only the due cohort's devices.
func TestCohortHeartbeatProbesSubset(t *testing.T) {
	const nodes, cohorts = 6, 3
	cfg := DefaultConfig()
	cfg.HeartbeatCohorts = cohorts
	c, err := BuildCluster(cfg, testApp, nodes, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// One sweep: exactly the nodes with index % cohorts == 0 get a
	// fresh temperature reading.
	c.Heartbeat(cfg.Heartbeat)
	probed := 0
	for i, n := range c.Nodes() {
		if n.LastTemp() != 0 {
			probed++
			if i%cohorts != 0 {
				t.Errorf("node %d (cohort %d) probed on cohort 0's tick", i, i%cohorts)
			}
		}
	}
	if want := nodes / cohorts; probed != want {
		t.Errorf("first sweep probed %d nodes, want %d", probed, want)
	}
	// After a full rotation every node has been probed.
	for i := 1; i < cohorts; i++ {
		c.Heartbeat(cfg.Heartbeat * sim.Time(i+1))
	}
	for _, n := range c.Nodes() {
		if n.LastTemp() == 0 {
			t.Errorf("node %s never probed after a full cohort rotation", n.ID)
		}
	}
}
