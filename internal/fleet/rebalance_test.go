package fleet

import (
	"bytes"
	"testing"

	"harmonia/internal/apps"
	"harmonia/internal/faults"
	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// churnFragment strands retired queue ranges by draining nodes (each
// eviction retires the tenant's host queues), reviving them empty, and
// serving so re-placements land on the churned topology.
func churnFragment(t *testing.T, c *Cluster, rounds int) {
	t.Helper()
	cfg := c.Config()
	nodes := c.Nodes()
	for round := 0; round < rounds; round++ {
		id := nodes[round].ID
		if _, err := c.DrainNode(c.Now(), id); err != nil {
			t.Fatal(err)
		}
		c.RunMonitorUntil(c.Now() + cfg.ReconfigTime + 4*cfg.Heartbeat)
		if err := c.Revive(c.Now(), id); err != nil {
			t.Fatal(err)
		}
		tr := DefaultTraffic(testApp)
		tr.Flows = 512
		tr.Seed = int64(100 + round)
		if _, err := c.Serve(100*sim.Microsecond, tr); err != nil {
			t.Fatal(err)
		}
	}
}

// serveRebalanceWindows serves short windows with fresh seeds until the
// predicate holds or the window budget runs out.
func serveRebalanceWindows(t *testing.T, c *Cluster, windows int, done func() bool) {
	t.Helper()
	for w := 0; w < windows; w++ {
		tr := DefaultTraffic(testApp)
		tr.Flows = 512
		tr.Seed = int64(1000 + w)
		if _, err := c.Serve(100*sim.Microsecond, tr); err != nil {
			t.Fatal(err)
		}
		if done() {
			return
		}
	}
}

// TestRebalancePlannedCarriesAllFlows is the tentpole contract on the
// happy path: a planned drain-and-rebuild cycle completes its moves,
// every completed move restores exactly the rows it pre-copied plus the
// delta, the victim's stranded queues come back, the fragmentation
// score strictly decreases, and not one established flow changes
// backend.
func TestRebalancePlannedCarriesAllFlows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SnapshotEvery = 2
	c := buildStateful(t, cfg, 6)
	tr := DefaultTraffic(testApp)
	tr.Flows = 512
	if _, err := c.Serve(200*sim.Microsecond, tr); err != nil {
		t.Fatal(err)
	}
	churnFragment(t, c, 2)

	pins := make(map[string][]apps.ConnEntry)
	for _, r := range c.Replicas() {
		if r.flows != nil {
			pins[r.Name()] = r.flows.table.Snapshot()
		}
	}
	before := c.Fragmentation()
	if before.StrandedQueues == 0 {
		t.Fatal("churn stranded no queues — nothing to rebalance")
	}

	c.SetLoadBudget(2)
	c.SetRebalance(true)
	serveRebalanceWindows(t, c, 60, func() bool { return c.RebalanceStats().Rebuilds >= 1 })
	c.SetRebalance(false)

	st := c.RebalanceStats()
	if st.Rebuilds < 1 {
		t.Fatalf("no rebuild completed: %+v", st)
	}
	if st.MovesDone < 1 {
		t.Fatalf("no move completed: %+v", st)
	}
	if st.QueuesReclaimed == 0 {
		t.Errorf("rebuild reclaimed no queues: %+v", st)
	}
	after := c.Fragmentation()
	if after.Score >= before.Score {
		t.Errorf("fragmentation did not strictly decrease: %.4f -> %.4f", before.Score, after.Score)
	}
	if after.StrandedQueues >= before.StrandedQueues {
		t.Errorf("stranded queues did not drop: %d -> %d", before.StrandedQueues, after.StrandedQueues)
	}

	// Satellite 1: rebalance records carry ordered per-phase timestamps
	// and exact row accounting.
	moves := 0
	for _, m := range c.Migrations() {
		if m.PlannedAt == 0 {
			continue // failover evacuation, not a rebalance move
		}
		moves++
		if m.Aborted {
			t.Errorf("planned cycle aborted a move: %+v", m)
			continue
		}
		if m.Restored != m.Flows || m.Dropped != 0 {
			t.Errorf("move %s lost rows: restored %d of %d, dropped %d",
				m.Replica, m.Restored, m.Flows, m.Dropped)
		}
		if m.Flows != m.PreCopyRows+m.DeltaRows {
			t.Errorf("move %s accounting: %d flows != %d pre-copy + %d delta",
				m.Replica, m.Flows, m.PreCopyRows, m.DeltaRows)
		}
		if !(m.PlannedAt <= m.PreCopyAt && m.PreCopyAt <= m.DeltaAt && m.DeltaAt <= m.CutoverAt) {
			t.Errorf("move %s phases out of order: planned %v pre-copy %v delta %v cutover %v",
				m.Replica, m.PlannedAt, m.PreCopyAt, m.DeltaAt, m.CutoverAt)
		}
		if m.CutoverAt != m.At {
			t.Errorf("move %s cutover %v != record time %v", m.Replica, m.CutoverAt, m.At)
		}
	}
	if moves == 0 {
		t.Error("no rebalance migration records")
	}

	// Zero disruption: every pre-rebalance pin still routes to its
	// backend, wherever its replica lives now.
	byName := map[string]*Replica{}
	for _, r := range c.Replicas() {
		byName[r.Name()] = r
	}
	for name, entries := range pins {
		r := byName[name]
		if r == nil || r.Node == "" || r.flows == nil {
			t.Fatalf("replica %s lost its home", name)
		}
		for _, e := range entries {
			if got := r.flows.assignment(e.Key); got != e.Backend {
				t.Fatalf("pin %v on %s moved: %v -> %v", e.Key, name, e.Backend, got)
			}
		}
	}

	// Satellite 2: the gauges read through to the same numbers.
	vals := c.Metrics().Values()
	if got := vals[mFragmentation]; got != after.Score {
		t.Errorf("%s = %v, want %v", mFragmentation, got, after.Score)
	}
	if got := vals[mStrandedQueues]; got != float64(after.StrandedQueues) {
		t.Errorf("%s = %v, want %d", mStrandedQueues, got, after.StrandedQueues)
	}
	if got := vals[mRebalanceMoves+`{outcome="done"}`]; got != float64(st.MovesDone) {
		t.Errorf("%s{outcome=done} = %v, want %d", mRebalanceMoves, got, st.MovesDone)
	}
}

// TestRebalanceKillTargetAborts kills the move's target before cutover:
// the move must roll back to the still-serving source — the replica
// stays home with its table intact — while the dead target's own
// replicas fail over normally.
func TestRebalanceKillTargetAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SnapshotEvery = 2
	c := buildStateful(t, cfg, 6)
	tr := DefaultTraffic(testApp)
	tr.Flows = 512
	if _, err := c.Serve(200*sim.Microsecond, tr); err != nil {
		t.Fatal(err)
	}
	churnFragment(t, c, 2)
	c.SetLoadBudget(2)
	c.SetRebalance(true)
	if err := c.ArmMigrationFault(faults.RebalanceKillTarget); err != nil {
		t.Fatal(err)
	}
	serveRebalanceWindows(t, c, 60, func() bool { return c.RebalanceStats().MovesAborted >= 1 })
	c.SetRebalance(false)

	if got := c.RebalanceStats().MovesAborted; got < 1 {
		t.Fatalf("kill-target aborted no moves: %+v", c.RebalanceStats())
	}
	byName := map[string]*Replica{}
	for _, r := range c.Replicas() {
		byName[r.Name()] = r
	}
	aborted := 0
	for _, m := range c.Migrations() {
		if m.PlannedAt == 0 || !m.Aborted {
			continue
		}
		aborted++
		r := byName[m.Replica]
		if r == nil {
			t.Fatalf("aborted move names unknown replica %s", m.Replica)
		}
		// Rollback contract: the source was never detached. The replica
		// either still serves from it, or — if the source itself died
		// later — was re-homed by failover; it must be serving either way.
		if r.Node == "" || r.flows == nil {
			t.Errorf("replica %s not serving after abort: node %q", m.Replica, r.Node)
		}
		if r.flows != nil && r.flows.dirtyArmed {
			t.Errorf("replica %s dirty log still armed after abort", m.Replica)
		}
	}
	if aborted == 0 {
		t.Error("no aborted rebalance record")
	}
}

// TestRebalanceKillSourceSnapshotFallback kills the move's source
// mid-pre-copy: the rebalancer aborts and health-driven failover
// recovers the replicas from the periodic snapshot, whose staleness is
// bounded by the capture cadence plus the detection delay.
func TestRebalanceKillSourceSnapshotFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SnapshotEvery = 2
	c := buildStateful(t, cfg, 6)
	tr := DefaultTraffic(testApp)
	tr.Flows = 512
	if _, err := c.Serve(200*sim.Microsecond, tr); err != nil {
		t.Fatal(err)
	}
	churnFragment(t, c, 2)
	c.SetLoadBudget(2)
	c.SetRebalance(true)
	if err := c.ArmMigrationFault(faults.RebalanceKillSource); err != nil {
		t.Fatal(err)
	}
	fallbacks := func() int {
		n := 0
		for _, m := range c.Migrations() {
			if !m.Live {
				n++
			}
		}
		return n
	}
	serveRebalanceWindows(t, c, 60, func() bool {
		return c.RebalanceStats().MovesAborted >= 1 && fallbacks() >= 1
	})
	c.SetRebalance(false)

	if got := c.RebalanceStats().MovesAborted; got < 1 {
		t.Fatalf("kill-source aborted no moves: %+v", c.RebalanceStats())
	}
	if fallbacks() == 0 {
		t.Fatal("no snapshot-fallback migration after the source died")
	}
	// The staleness bound: a capture refreshes every SnapshotEvery
	// successful probes, and detection takes FailedAfter missed
	// heartbeats, so the fallback can never be older than the two plus a
	// barrier of slack.
	bound := sim.Time(cfg.SnapshotEvery+cfg.FailedAfter+2) * cfg.Heartbeat
	for _, m := range c.Migrations() {
		if m.Live {
			continue
		}
		if m.SnapshotAge <= 0 {
			t.Errorf("fallback for %s has snapshot age %v, want > 0", m.Replica, m.SnapshotAge)
		}
		if m.SnapshotAge > bound {
			t.Errorf("fallback for %s is %v stale, bound %v", m.Replica, m.SnapshotAge, bound)
		}
		if m.Restored == 0 && m.Flows > 0 {
			t.Errorf("fallback for %s restored nothing of %d flows", m.Replica, m.Flows)
		}
	}
	// Every replica is serving again.
	for _, r := range c.Replicas() {
		if r.Node == "" {
			t.Errorf("replica %s left unplaced after the fallback", r.Name())
		}
	}
}

// rebalancePhases runs the rebalance determinism workload — churn, then
// serving with the rebalancer on and a kill-target fault armed — under
// an explicit batch quantum and worker count, returning both PhaseStats
// and the exported trace bytes.
func rebalancePhases(t *testing.T, quantum, workers int) (PhaseStats, PhaseStats, []byte) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RouterShards = 4
	cfg.BatchQuantum = quantum
	cfg.ServeWorkers = workers
	cfg.SnapshotEvery = 2
	c := buildStateful(t, cfg, 6)
	rec := obs.NewRecorder()
	c.SetTrace(rec.Process("fleet"))
	tr := DefaultTraffic(testApp)
	tr.Flows = 512
	if _, err := c.Serve(200*sim.Microsecond, tr); err != nil {
		t.Fatal(err)
	}
	churnFragment(t, c, 2)
	c.SetLoadBudget(2)
	c.SetRebalance(true)
	if err := c.ArmMigrationFault(faults.RebalanceKillTarget); err != nil {
		t.Fatal(err)
	}
	tr1 := tr
	tr1.Seed = tr.Seed + 40
	first, err := c.Serve(600*sim.Microsecond, tr1)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := tr
	tr2.Seed = tr.Seed + 41
	second, err := c.Serve(3*sim.Millisecond, tr2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return first, second, buf.Bytes()
}

// TestRebalanceDeterminism is the crash-safety determinism contract:
// with the rebalancer running and a mid-migration kill armed, same-seed
// PhaseStats AND trace bytes are byte-identical across batch quanta and
// worker counts — every rebalance decision lives on the serial barrier
// path.
func TestRebalanceDeterminism(t *testing.T) {
	base1, base2, baseTrace := rebalancePhases(t, 0, 1)
	if base1.Served == 0 || base2.Served == 0 {
		t.Fatalf("phases served nothing: %+v / %+v", base1, base2)
	}
	matrix := []struct{ quantum, workers int }{
		{64, 1}, {4096, 1}, {0, 2}, {64, 2}, {4096, 8}, {0, 8},
	}
	if !testing.Short() {
		matrix = append(matrix, struct{ quantum, workers int }{4096, 2},
			struct{ quantum, workers int }{64, 8})
	}
	for _, tc := range matrix {
		got1, got2, trace := rebalancePhases(t, tc.quantum, tc.workers)
		if got1 != base1 || got2 != base2 {
			t.Errorf("quantum=%d workers=%d: stats diverge:\n base: %+v / %+v\n got:  %+v / %+v",
				tc.quantum, tc.workers, base1, base2, got1, got2)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Errorf("quantum=%d workers=%d: trace bytes diverge from base", tc.quantum, tc.workers)
		}
	}
}

// TestRebalancePreemptedByFailover pins the budget contract: at budget
// 1, a failover grant issued while rebalance moves wait must start
// before an earlier-requested move (grant-log preemption pair) and the
// cap must hold throughout.
func TestRebalancePreemptedByFailover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SnapshotEvery = 2
	// Two replicas per device (the drill's density): the rebuild victim
	// hosts several, so its moves must queue behind the single budget
	// slot instead of draining in one grant.
	info, err := apps.Lookup(testApp)
	if err != nil {
		t.Fatal(err)
	}
	svc := AppService(info, 12, net.IPv4(20, 0, 0, 1))
	svc.Stateful = true
	svc.Backends = migrationBackends()
	c, err := BuildServiceCluster(cfg, svc, 6)
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	tr := DefaultTraffic(testApp)
	tr.Flows = 512
	if _, err := c.Serve(200*sim.Microsecond, tr); err != nil {
		t.Fatal(err)
	}
	churnFragment(t, c, 2)
	c.SetLoadBudget(1)
	c.SetRebalance(true)
	// Let the rebalancer plan a cycle with queued moves (the first cycle
	// may pick an already-empty node and rebuild it without any), then
	// kill an uninvolved node so failover contends for the single slot.
	serveRebalanceWindows(t, c, 20, func() bool { return c.pendingRebalanceMoves() > 0 })
	if c.pendingRebalanceMoves() == 0 {
		t.Fatal("no rebalance move waiting on budget")
	}
	victim := pickUnrelatedNode(c)
	if victim == nil {
		t.Fatal("no unrelated node to kill")
	}
	rebuildsBefore := c.RebalanceStats().Rebuilds
	failoversBefore := len(c.Failovers())
	if err := c.Kill(victim.ID); err != nil {
		t.Fatal(err)
	}
	serveRebalanceWindows(t, c, 80, func() bool {
		return c.RebalanceStats().Rebuilds > rebuildsBefore && len(c.Failovers()) > failoversBefore
	})
	c.SetRebalance(false)
	if len(c.Failovers()) == failoversBefore {
		t.Fatal("the killed node never failed over")
	}

	if peak := c.LoadBudgetPeak(); peak > 1 {
		t.Errorf("peak concurrent loads %d exceeds budget 1", peak)
	}
	if got := c.LoadsPreempted(); got < 1 {
		t.Errorf("no preemption counted while moves were pending")
	}
	events := c.LoadEvents()
	pairs := 0
	for _, f := range events {
		if f.Class != LoadFailover {
			continue
		}
		for _, e := range events {
			if e.Class == LoadElective && e.ReqAt < f.ReqAt && f.Start < e.Start {
				pairs++
			}
		}
	}
	if pairs == 0 {
		t.Error("grant log shows no (elective, failover) preemption pair")
	}
}
