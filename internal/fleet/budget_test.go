package fleet

import (
	"testing"

	"harmonia/internal/sim"
)

// TestBudgetBoundsConcurrency drives acquire/commit pairs through a
// capped budget and checks the invariant the chaos drill gates on:
// concurrent in-flight loads never exceed the limit, and the overflow
// queues behind the earliest completion.
func TestBudgetBoundsConcurrency(t *testing.T) {
	b := &reconfigBudget{limit: 2}
	const dur = 100 * sim.Microsecond
	// Four loads requested at the same instant: two start now, the
	// third inherits the first completion, the fourth the second.
	var starts []sim.Time
	for i := 0; i < 4; i++ {
		start := b.acquire(0)
		b.commit(0, start, start+dur, "n", LoadFailover, true)
		starts = append(starts, start)
	}
	want := []sim.Time{0, 0, dur, dur}
	for i, s := range starts {
		if s != want[i] {
			t.Fatalf("load %d started at %v, want %v (all: %v)", i, s, want[i], starts)
		}
	}
	if got := peakConcurrent(b.events); got != 2 {
		t.Errorf("peak overlap = %d, want 2 (limit held)", got)
	}
	if b.queued != 2 {
		t.Errorf("queued = %d, want 2", b.queued)
	}
	for i, e := range b.events {
		if got := e.Queued(); got != (i >= 2) {
			t.Errorf("event %d Queued() = %v, want %v", i, got, i >= 2)
		}
	}
}

// TestBudgetUnlimitedRecordsPeak checks that a zero limit never delays
// a load but still measures true concurrency — how the drill proves the
// unbudgeted fleet exceeded the cap.
func TestBudgetUnlimitedRecordsPeak(t *testing.T) {
	b := &reconfigBudget{}
	const dur = 50 * sim.Microsecond
	for i := 0; i < 5; i++ {
		start := b.acquire(0)
		if start != 0 {
			t.Fatalf("unlimited budget delayed load %d to %v", i, start)
		}
		b.commit(0, start, start+dur, "n", LoadFailover, true)
	}
	if got := peakConcurrent(b.events); got != 5 {
		t.Errorf("peak overlap = %d, want 5", got)
	}
	if b.queued != 0 {
		t.Errorf("queued = %d, want 0", b.queued)
	}
}

// TestBudgetPrunesCompletedLoads checks that a load requested after the
// in-flight set drained starts immediately.
func TestBudgetPrunesCompletedLoads(t *testing.T) {
	b := &reconfigBudget{limit: 1}
	s1 := b.acquire(0)
	b.commit(0, s1, 10*sim.Microsecond, "a", LoadFailover, true)
	// Same-time request queues behind the first completion...
	if s2 := b.acquire(0); s2 != 10*sim.Microsecond {
		t.Fatalf("second load started at %v, want 10µs", s2)
	} else {
		b.commit(0, s2, s2+10*sim.Microsecond, "b", LoadFailover, true)
	}
	// ...but a request after both completed starts immediately.
	if s3 := b.acquire(30 * sim.Microsecond); s3 != 30*sim.Microsecond {
		t.Fatalf("post-drain load started at %v, want 30µs", s3)
	}
}

// TestBudgetResetClearsHistory checks SetLoadBudget's contract: warmup
// grants do not contaminate the storm's peak/queue counters, but loads
// still in flight at the reset keep holding their bandwidth.
func TestBudgetResetClearsHistory(t *testing.T) {
	b := &reconfigBudget{}
	for i := 0; i < 3; i++ {
		s := b.acquire(0)
		b.commit(0, s, 100, "n", LoadFailover, true)
	}
	b.reset(2)
	if b.limit != 2 || b.queued != 0 || len(b.events) != 0 {
		t.Fatalf("reset left history: %+v", b)
	}
	if len(b.inflight) != 3 {
		t.Fatalf("reset dropped the in-flight heap: %d entries, want 3", len(b.inflight))
	}
	if got := peakConcurrent(b.events); got != 0 {
		t.Errorf("peak overlap after reset = %d, want 0", got)
	}
}

// TestBudgetResetPreservesInflight pins the mid-run cap-change bug: a
// budget with loads still in flight must honor them against the new
// limit, or the fleet exceeds the cap while the forgotten loads drain.
func TestBudgetResetPreservesInflight(t *testing.T) {
	b := &reconfigBudget{limit: 4}
	const dur = 100 * sim.Microsecond
	for i := 0; i < 3; i++ {
		s := b.acquire(0)
		b.commit(0, s, s+dur, "n", LoadFailover, true)
	}
	// Tighten the cap to 2 while 3 loads are mid-flight. The next
	// grant must chain behind an in-flight completion, not start
	// immediately as if the heap were empty.
	b.reset(2)
	if s := b.acquire(0); s != dur {
		t.Fatalf("post-reset load started at %v, want %v (chained behind in-flight)", s, dur)
	}
	// Once the old loads drain, grants flow again under the new limit.
	if s := b.acquire(2 * dur); s != 2*dur {
		t.Fatalf("post-drain load started at %v, want %v", s, 2*dur)
	}
}

// TestBudgetFailedLoadHoldsBandwidth pins the failed-load accounting: a
// load that fails every retry (OK=false) occupied the bitstream
// distribution tier until its Done, so a later grant must chain behind
// it exactly as behind a success.
func TestBudgetFailedLoadHoldsBandwidth(t *testing.T) {
	b := &reconfigBudget{limit: 1}
	const busy = 80 * sim.Microsecond
	s := b.acquire(0)
	b.commit(0, s, s+busy, "n", LoadFailover, false) // failed after retries
	if got := b.acquire(0); got != busy {
		t.Fatalf("grant after failed load started at %v, want %v", got, busy)
	}
	if b.events[0].OK {
		t.Fatal("failed load recorded OK=true")
	}
}

// TestBudgetQueuedNotDoubleCounted pins LoadsQueued semantics: one
// failed load is one grant with one span — its internal retries never
// reach the budget — and a zero-span grant whose start the budget
// advanced is not "queued" (it never held the wire, so nothing waited).
func TestBudgetQueuedNotDoubleCounted(t *testing.T) {
	b := &reconfigBudget{limit: 1}
	const dur = 50 * sim.Microsecond
	s1 := b.acquire(0)
	b.commit(0, s1, s1+dur, "a", LoadFailover, true)
	// Queued behind s1, then failed after retries: one grant, one span,
	// one queued count — the retries inside the span are invisible here.
	s2 := b.acquire(0)
	b.commit(0, s2, s2+dur, "b", LoadFailover, false)
	// Queued behind s2, then failed instantly (non-LoadError admission):
	// the budget advanced its start but it consumed no bandwidth, so it
	// does not count as queued.
	s3 := b.acquire(0)
	b.commit(0, s3, s3, "c", LoadFailover, false)
	if b.queued != 1 {
		t.Fatalf("queued = %d, want 1 (zero-span grant must not count)", b.queued)
	}
	if got := peakConcurrent(b.events); got != 1 {
		t.Errorf("peak overlap = %d, want 1", got)
	}
}

// TestBudgetZeroDurationLoadHoldsNothing checks that a failed
// instantaneous admission (non-LoadError path) does not occupy a slot.
func TestBudgetZeroDurationLoadHoldsNothing(t *testing.T) {
	b := &reconfigBudget{limit: 1}
	s := b.acquire(0)
	b.commit(0, s, s, "n", LoadFailover, false) // failed admission, no span
	if got := b.acquire(0); got != 0 {
		t.Fatalf("zero-duration load blocked the next acquire until %v", got)
	}
}

// TestBudgetSameTickChainHoldsLimit stresses the mass-failover shape —
// many loads requested on the same control-plane tick — and checks the
// true span overlap never exceeds the cap (the regression a heap pruned
// against the advanced start would reintroduce).
func TestBudgetSameTickChainHoldsLimit(t *testing.T) {
	b := &reconfigBudget{limit: 3}
	for i := 0; i < 20; i++ {
		start := b.acquire(0)
		dur := sim.Time(i%4+1) * 10 * sim.Microsecond
		b.commit(0, start, start+dur, "n", LoadFailover, true)
	}
	if got := peakConcurrent(b.events); got > 3 {
		t.Fatalf("true overlap %d exceeds limit 3", got)
	}
	if b.queued != 17 {
		t.Errorf("queued = %d, want 17 (first 3 start immediately)", b.queued)
	}
}
