package fleet

import (
	"testing"
)

// TestThrottleFactorModel validates the throttling model the derived
// penalty comes from: full throughput with full margin, monotonic
// derating as the margin erodes, and the shed floor at the alarm.
func TestThrottleFactorModel(t *testing.T) {
	const shedStart, alarm = 75_000, 85_000
	if got := throttleFactor(20_000, shedStart, alarm); got != 1 {
		t.Errorf("cool die throttled to %v, want 1", got)
	}
	if got := throttleFactor(shedStart, shedStart, alarm); got != 1 {
		t.Errorf("factor at shed start = %v, want 1 (ramp begins above it)", got)
	}
	if got := throttleFactor(alarm, shedStart, alarm); got != shedFloorFactor {
		t.Errorf("factor at alarm = %v, want %v", got, shedFloorFactor)
	}
	if got := throttleFactor(120_000, shedStart, alarm); got != shedFloorFactor {
		t.Errorf("factor past alarm = %v, want floor %v", got, shedFloorFactor)
	}
	// Midpoint of the ramp derates to the midpoint of the span.
	want := 1 - 0.5*(1-shedFloorFactor)
	if got := throttleFactor(80_000, shedStart, alarm); got != want {
		t.Errorf("mid-ramp factor = %v, want %v", got, want)
	}
	// Strictly monotonic non-increasing across the ramp.
	prev := 2.0
	for temp := uint32(70_000); temp <= 90_000; temp += 1_000 {
		f := throttleFactor(temp, shedStart, alarm)
		if f > prev {
			t.Fatalf("factor rose from %v to %v at %d milli-degC", prev, f, temp)
		}
		prev = f
	}
	// Degenerate thresholds fall back to a step at the alarm.
	if got := throttleFactor(10, 50, 50); got != 1 {
		t.Errorf("degenerate below-alarm factor = %v, want 1", got)
	}
	if got := throttleFactor(50, 50, 50); got != shedFloorFactor {
		t.Errorf("degenerate at-alarm factor = %v, want floor", got)
	}
}

// TestThermalPenaltyMeetsStaticAtAlarm checks the continuity claim: the
// derived penalty is 1 with full margin, grows with eroded margin, and
// equals the static degradedPenalty (×4) exactly at the alarm line.
func TestThermalPenaltyMeetsStaticAtAlarm(t *testing.T) {
	c := buildTest(t, 2, 2)
	alarm := c.Config().DegradeMilliC
	shed := c.shedStart()
	if shed != alarm-defaultShedMargin {
		t.Fatalf("shed start = %d, want alarm-%d", shed, defaultShedMargin)
	}
	if got := c.ThermalPenalty(shed); got != 1 {
		t.Errorf("penalty at shed start = %v, want 1", got)
	}
	if got := c.ThermalPenalty(alarm); got != degradedPenalty {
		t.Errorf("penalty at alarm = %v, want the static degradedPenalty %v", got, float64(degradedPenalty))
	}
	prev := 0.0
	for temp := shed; temp <= alarm; temp += 500 {
		p := c.ThermalPenalty(temp)
		if p < prev {
			t.Fatalf("penalty fell from %v to %v at %d milli-degC", prev, p, temp)
		}
		prev = p
	}
}

// TestRoutableStatePolicy checks the routability split the index and
// the naive scan both follow: statically degraded nodes keep serving,
// under derived shedding only healthy nodes take traffic.
func TestRoutableStatePolicy(t *testing.T) {
	c := buildTest(t, 2, 2)
	if !c.routableState(Healthy) || !c.routableState(Degraded) {
		t.Error("static policy must route healthy and degraded")
	}
	if c.routableState(Failed) || c.routableState(Drained) {
		t.Error("static policy routed a down node")
	}
	c.cfg.DerivedShedding = true
	if !c.routableState(Healthy) {
		t.Error("derived policy must route healthy")
	}
	if c.routableState(Degraded) {
		t.Error("derived policy routed a degraded (alarmed) node")
	}
}
