package fleet

// Thermal-margin-derived load shedding. The static router treats
// "degraded" as a binary: a node past the alarm threshold pays a flat
// ×4 queue-depth penalty. A real die throttles *before* the alarm —
// clock throttling derates throughput as the junction temperature
// approaches the trip point — so the derived model sheds load in
// proportion to the eroded margin: no penalty with full margin, a
// penalty growing linearly as temperature climbs from the shed-start
// line to the alarm, and (with DerivedShedding) no traffic at all past
// the alarm, where the static policy kept routing at ×4.

// shedFloorFactor is the throttled throughput fraction at the alarm
// threshold: a die at the trip point runs at a quarter speed. Its
// inverse (×4) makes the derived penalty meet the static
// degradedPenalty exactly at the alarm line — the static policy is the
// step-function approximation of this ramp.
const shedFloorFactor = 0.25

// throttleFactor models clock throttling: the fraction of nominal
// throughput a die sustains at temp (milli-degC), given the shed-start
// and alarm thresholds. 1.0 with full margin, linear derating to
// shedFloorFactor at the alarm and beyond.
func throttleFactor(temp, shedStart, alarm uint32) float64 {
	if alarm <= shedStart {
		// Degenerate thresholds: only the alarm line matters.
		if temp >= alarm {
			return shedFloorFactor
		}
		return 1
	}
	switch {
	case temp <= shedStart:
		return 1
	case temp >= alarm:
		return shedFloorFactor
	}
	erosion := float64(temp-shedStart) / float64(alarm-shedStart)
	return 1 - erosion*(1-shedFloorFactor)
}

// bulkShedFactor is the throttle factor at which a node stops taking
// bulk-class traffic entirely: once the die is derated to half speed,
// the remaining throughput is reserved for co-resident latency-critical
// services. Bulk therefore sheds strictly before latency-critical —
// latency-critical traffic keeps flowing until the alarm line, where
// derived shedding makes the node unroutable for every class.
const bulkShedFactor = 0.5

// shedsBulk reports whether a node at temp (milli-degC) has eroded past
// the bulk-shed line. Only meaningful with DerivedShedding; the static
// policy has no pre-alarm signal to order classes by.
func (c *Cluster) shedsBulk(temp uint32) bool {
	if !c.cfg.DerivedShedding {
		return false
	}
	return throttleFactor(temp, c.shedStart(), c.cfg.DegradeMilliC) <= bulkShedFactor
}

// ShedsBulk exposes the bulk-shed line for drills and validation.
func (c *Cluster) ShedsBulk(temp uint32) bool { return c.shedsBulk(temp) }

// shedStart resolves the temperature where derived shedding begins.
func (c *Cluster) shedStart() uint32 {
	if c.cfg.ShedStartMilliC > 0 {
		return c.cfg.ShedStartMilliC
	}
	if c.cfg.DegradeMilliC > defaultShedMargin {
		return c.cfg.DegradeMilliC - defaultShedMargin
	}
	return 0
}

// defaultShedMargin is how far below the alarm threshold derived
// shedding starts when ShedStartMilliC is unset (milli-degC).
const defaultShedMargin = 10_000

// thermalPenalty is the routing-cost multiplier derived from a node's
// last heartbeat temperature: the inverse of its modeled throughput
// fraction, so a die throttled to half speed looks twice as expensive.
func (c *Cluster) thermalPenalty(temp uint32) float64 {
	return 1 / throttleFactor(temp, c.shedStart(), c.cfg.DegradeMilliC)
}

// ThermalPenalty exposes the derived penalty curve for validation and
// the chaos drill's penalty series.
func (c *Cluster) ThermalPenalty(temp uint32) float64 { return c.thermalPenalty(temp) }

// routableState reports whether a node in this state takes traffic.
// Statically, degraded nodes keep serving behind their flat penalty;
// with derived shedding the ramp already drained traffic before the
// alarm, and past it the node takes none ("no packet routes to a node
// after its alarm fires").
func (c *Cluster) routableState(s State) bool {
	if c.cfg.DerivedShedding {
		return s == Healthy
	}
	return s == Healthy || s == Degraded
}
