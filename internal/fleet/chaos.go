package fleet

import (
	"fmt"
	"sort"

	"harmonia/internal/apps"
	"harmonia/internal/faults"
	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// The fleet5 chaos drill drives a fleet through one seeded failure
// storm (internal/faults) three times — unbudgeted with the static
// degraded penalty, budgeted with the static penalty, and budgeted
// with thermal-derived shedding — and measures what the defenses buy:
// availability (fraction of routed packets landing on healthy
// replicas), PR-load concurrency and queueing, recovery-time
// distribution, flow disruption and command-path retransmissions. All
// three cases replay the identical injection schedule, so the columns
// are directly comparable and the whole report reproduces from one
// seed.

// chaosApp is the stateful service the drill storms.
const chaosApp = "layer4-lb"

// chaosWindowDur is the measurement window; injections due inside a
// window are applied at its start (deterministic discretization).
const chaosWindowDur = 100 * sim.Microsecond

// chaosWindows spans the storm plus the recovery tail.
const chaosWindows = 160

// chaosWarmup is the pre-storm serving phase establishing flows.
const chaosWarmup = 200 * sim.Microsecond

// ChaosOptions shapes the fleet5 drill.
type ChaosOptions struct {
	// Devices is the fleet size (the tentpole configuration is 300).
	Devices int
	// Budget is the concurrent PR-load cap the budgeted cases enforce.
	Budget int
	// Seed drives the storm schedule, traffic and router sampling.
	Seed int64
	// Trace, when set, records each case into its own trace process
	// (plus a storm-plan process carrying the injection schedule). Use
	// an unbounded recorder for full exports or a flight recorder for
	// the always-on gate-failure dump.
	Trace *obs.Recorder
}

// DefaultChaosOptions returns the tentpole storm configuration.
func DefaultChaosOptions() ChaosOptions {
	return ChaosOptions{Devices: 300, Budget: 8, Seed: 11}
}

// ChaosWindow is one measurement window of a chaos case.
type ChaosWindow struct {
	// At is the window's end on the cluster clock.
	At sim.Time
	// Availability is healthy-served/sent within the window (1 when the
	// window offered nothing).
	Availability   float64
	Sent           int64
	Served         int64
	Dropped        int64
	Healthy        int
	Degraded       int
	Down           int
	LoadsInflight  int
	LoadsQueued    int
	RampPenalty    float64
	AlarmedPackets int64
}

// ChaosCase is one full storm replay under one defense configuration.
type ChaosCase struct {
	Name            string
	Budgeted        bool
	Budget          int
	DerivedShedding bool

	// Availability is healthy-served/sent over the whole storm.
	Availability          float64
	Sent, Served, Dropped int64

	// PeakConcurrentLoads is the highest concurrent PR-load count the
	// storm reached; the budgeted cases must keep it at or under Budget.
	PeakConcurrentLoads int
	LoadsQueued         int
	LoadFailures        int64

	// Failovers and the recovery distribution (detection → last
	// replacement ready).
	Failovers   int
	P99Recovery sim.Time
	MaxRecovery sim.Time

	// Flow disruption: of the flows established before the storm, how
	// many land on a different backend after it.
	FlowsEstablished int
	FlowsDisrupted   int
	Disruption       float64

	// Migration path split: live table reads vs periodic-snapshot
	// fallbacks, and the stalest snapshot restored.
	MigrationsLive     int
	MigrationsSnapshot int
	MaxSnapshotAge     sim.Time

	// AlarmedNodePackets counts packets that landed on a node during
	// windows it spent fully degraded (alarm fired). Derived shedding
	// must hold this at zero; the static penalty does not.
	AlarmedNodePackets int64

	// Unplaced is how many replicas ended the storm without a home.
	Unplaced int

	Cmd     CmdPathStats
	Windows []ChaosWindow

	// Metrics is the case's end-of-storm registry snapshot (flat map,
	// embedded in the drill JSON); Registry is the live registry for
	// Prometheus export — the cluster itself is discarded per case.
	Metrics  map[string]float64
	Registry *obs.Registry
}

// ChaosResult is the fleet5 report.
type ChaosResult struct {
	Devices  int
	RackSize int
	Seed     int64
	Budget   int
	// StormStart/StormEnd bound the replayed schedule; Injections is
	// the human-readable storm script.
	StormStart, StormEnd sim.Time
	Injections           []string
	Cases                []ChaosCase
}

// chaosBackends is the drill's initial backend pool.
func chaosBackends() []net.IPAddr {
	out := make([]net.IPAddr, 8)
	for i := range out {
		out[i] = net.IPv4(10, 2, 0, byte(i+1))
	}
	return out
}

// chaosTraffic derives one window's deterministic traffic phase.
func chaosTraffic(seed int64, window int) Traffic {
	return Traffic{
		Service: chaosApp, OfferedGbps: 400, PktBytes: 1024,
		Flows: 2048, Jitter: 0.2,
		Seed: seed*1_000_003 + int64(window+1)*1000,
	}
}

// applyInjection maps one schedule entry onto control-plane actions.
func applyInjection(c *Cluster, nodes []*Node, inj faults.Injection) error {
	id := ""
	if inj.Node >= 0 {
		if inj.Node >= len(nodes) {
			return fmt.Errorf("fleet: injection targets node %d of %d", inj.Node, len(nodes))
		}
		id = nodes[inj.Node].ID
	}
	c.traceFault(string(inj.Kind), id, int64(inj.Arg))
	switch inj.Kind {
	case faults.KillNode:
		return c.Kill(id)
	case faults.LinkDown:
		return c.CutLink(c.Now(), id)
	case faults.LinkUp:
		if err := c.Revive(c.Now(), id); err != nil {
			return err
		}
		// The scheduler may re-place still-unplaced replicas onto the
		// revived device; failure just leaves them pending.
		_, _ = c.Place(c.Now())
		return nil
	case faults.ThermalSet:
		if inj.Arg == 0 {
			return c.Cool(id)
		}
		return c.Overheat(id, inj.Arg)
	case faults.CorruptStart:
		limit := int(inj.Arg)
		nodes[inj.Node].Inst.SetWireFaultInjector(func(attempt int, buf []byte) []byte {
			if attempt < limit && len(buf) > 0 {
				buf[0] ^= 0xFF
			}
			return buf
		})
		return nil
	case faults.CorruptEnd:
		nodes[inj.Node].Inst.SetWireFaultInjector(nil)
		return nil
	case faults.PRFaultStart:
		fn := faults.LoadFailureFn(c.cfg.Seed, inj.Prob)
		c.SetPRLoadFault(func(node, tenant string, slot, attempt int) bool {
			return fn(node, tenant, attempt)
		})
		return nil
	case faults.PRFaultEnd:
		c.SetPRLoadFault(nil)
		return nil
	case faults.DrainBackend:
		_, err := c.RemoveBackend(chaosApp, chaosBackends()[inj.Arg], false)
		return err
	}
	return fmt.Errorf("fleet: unknown injection kind %q", inj.Kind)
}

// runChaosCase replays the schedule against a fresh fleet under one
// defense configuration.
func runChaosCase(opts ChaosOptions, sched *faults.Schedule, name string, budgeted, derived bool) (*ChaosCase, error) {
	cfg := DefaultConfig()
	cfg.Seed = opts.Seed
	// Health dissemination runs on the gossip detector and dispatch on
	// the rack-first path — the scale-plane configuration the 10k bench
	// gates — so the storm validates detection bounds and availability
	// under exactly that plane. A wide fanout keeps thermal readings
	// fresh enough for derived shedding on a 300-node fleet.
	cfg.GossipHealth = true
	cfg.GossipFanout = 32
	cfg.GossipPiggyback = 8
	cfg.RackP2C = true
	// Gossip probes reach a given node only once per rotation period, so
	// capture a connection-table snapshot on every successful probe to
	// keep dead-node fallbacks reasonably fresh.
	cfg.SnapshotEvery = 1
	cfg.DerivedShedding = derived
	// The storm's runaway ramps 6°C every 50µs, so the default 10°C shed
	// span would be crossed inside one measurement window; a wider span
	// spreads the derating across several windows, making the gradual
	// shedding observable in the penalty series.
	cfg.ShedStartMilliC = cfg.DegradeMilliC - 40_000

	info, err := apps.Lookup(chaosApp)
	if err != nil {
		return nil, err
	}
	svc := AppService(info, opts.Devices, net.IPv4(20, 0, 0, 1))
	svc.Stateful = true
	svc.Backends = chaosBackends()
	c, err := BuildServiceCluster(cfg, svc, opts.Devices)
	if err != nil {
		return nil, err
	}
	c.Metrics().SetConstLabels(map[string]string{"case": name})
	if opts.Trace != nil {
		c.SetTrace(opts.Trace.Process(name))
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	if _, err := c.Serve(chaosWarmup, chaosTraffic(opts.Seed, -1)); err != nil {
		return nil, err
	}

	// Pre-storm flow pins: the disruption measurement's ground truth.
	pins := make(map[string][]apps.ConnEntry)
	for _, r := range c.Replicas() {
		if r.flows != nil {
			pins[r.Name()] = r.flows.table.Snapshot()
		}
	}

	// Arm the defense under test; this also resets the budget's grant
	// history so warmup placement does not contaminate the peak.
	limit := 0
	if budgeted {
		limit = opts.Budget
	}
	c.SetLoadBudget(limit)
	stormStart := c.Now()
	if stormStart != sched.Spec.Start {
		return nil, fmt.Errorf("fleet: storm scheduled for %v but warmup ended at %v",
			sched.Spec.Start, stormStart)
	}

	cc := &ChaosCase{Name: name, Budgeted: budgeted, Budget: limit, DerivedShedding: derived}
	nodes := c.Nodes()
	preStats := c.RouterStats()
	preCmd := c.CmdPath()
	var rampNode *Node
	if len(sched.Ramped) > 0 {
		rampNode = nodes[sched.Ramped[0]]
	}

	injIdx := 0
	degradedRx := make(map[int]int64)
	for w := 0; w < chaosWindows; w++ {
		winEnd := stormStart + sim.Time(w+1)*chaosWindowDur
		for injIdx < len(sched.Injections) && sched.Injections[injIdx].At < winEnd {
			if err := applyInjection(c, nodes, sched.Injections[injIdx]); err != nil {
				return nil, fmt.Errorf("fleet: injection %v: %w", sched.Injections[injIdx], err)
			}
			injIdx++
		}
		// Nodes fully degraded across the window: record ingress before.
		for k := range degradedRx {
			delete(degradedRx, k)
		}
		for i, n := range nodes {
			if n.state == Degraded {
				degradedRx[i] = n.Net.RxStats().Units
			}
		}
		before := c.RouterStats()
		if _, err := c.Serve(chaosWindowDur, chaosTraffic(opts.Seed, w)); err != nil {
			return nil, err
		}
		after := c.RouterStats()

		win := ChaosWindow{
			At:      c.Now(),
			Sent:    after.Sent - before.Sent,
			Served:  after.Served - before.Served,
			Dropped: after.Dropped - before.Dropped,
		}
		win.Availability = 1
		if win.Sent > 0 {
			win.Availability = float64(after.HealthyServed-before.HealthyServed) / float64(win.Sent)
		}
		for i, n := range nodes {
			switch n.state {
			case Healthy:
				win.Healthy++
			case Degraded:
				win.Degraded++
				if rx, was := degradedRx[i]; was {
					d := n.Net.RxStats().Units - rx
					win.AlarmedPackets += d
					cc.AlarmedNodePackets += d
				}
			default:
				win.Down++
			}
		}
		if rampNode != nil {
			win.RampPenalty = c.ThermalPenalty(rampNode.LastTemp())
		}
		cc.Windows = append(cc.Windows, win)
	}

	// Budget occupancy per window, reconstructed from the grant log.
	events := c.LoadEvents()
	for i := range cc.Windows {
		t := cc.Windows[i].At
		for _, e := range events {
			switch {
			case e.Start <= t && t < e.Done:
				cc.Windows[i].LoadsInflight++
			case e.ReqAt <= t && t < e.Start:
				cc.Windows[i].LoadsQueued++
			}
		}
	}

	post := c.RouterStats()
	cc.Sent = post.Sent - preStats.Sent
	cc.Served = post.Served - preStats.Served
	cc.Dropped = post.Dropped - preStats.Dropped
	if cc.Sent > 0 {
		cc.Availability = float64(post.HealthyServed-preStats.HealthyServed) / float64(cc.Sent)
	}
	cc.PeakConcurrentLoads = c.LoadBudgetPeak()
	cc.LoadsQueued = c.LoadsQueued()
	cc.LoadFailures = c.LoadFailures()
	postCmd := c.CmdPath()
	cc.Cmd = CmdPathStats{
		Issued:  postCmd.Issued - preCmd.Issued,
		Retries: postCmd.Retries - preCmd.Retries,
		Drops:   postCmd.Drops - preCmd.Drops,
	}

	// Recovery distribution over the storm's failovers.
	var recoveries []sim.Time
	for _, f := range c.Failovers() {
		if f.DetectedAt < stormStart {
			continue
		}
		cc.Failovers++
		recoveries = append(recoveries, f.RecoveredAt-f.DetectedAt)
	}
	sort.Slice(recoveries, func(i, j int) bool { return recoveries[i] < recoveries[j] })
	if n := len(recoveries); n > 0 {
		idx := (n*99 + 99) / 100
		if idx > n {
			idx = n
		}
		cc.P99Recovery = recoveries[idx-1]
		cc.MaxRecovery = recoveries[n-1]
	}

	// Migration path split.
	for _, m := range c.Migrations() {
		if m.Live {
			cc.MigrationsLive++
		} else {
			cc.MigrationsSnapshot++
			if m.SnapshotAge > cc.MaxSnapshotAge {
				cc.MaxSnapshotAge = m.SnapshotAge
			}
		}
	}

	// Flow disruption vs the pre-storm pins; a replica that lost its
	// home disrupts every flow it held.
	for _, r := range c.Replicas() {
		entries := pins[r.Name()]
		for _, e := range entries {
			cc.FlowsEstablished++
			if r.Node == "" || r.flows == nil {
				cc.FlowsDisrupted++
				continue
			}
			if r.flows.assignment(e.Key) != e.Backend {
				cc.FlowsDisrupted++
			}
		}
		if r.Node == "" {
			cc.Unplaced++
		}
	}
	if cc.FlowsEstablished > 0 {
		cc.Disruption = float64(cc.FlowsDisrupted) / float64(cc.FlowsEstablished)
	}
	// The cluster is discarded with the case; carry its registry out so
	// the drill can embed the snapshot in JSON and export Prometheus
	// text per case.
	cc.Registry = c.Metrics()
	cc.Metrics = cc.Registry.Values()
	return cc, nil
}

// ChaosDrill runs the fleet5 experiment: one seeded storm, replayed
// against three fleets — unbudgeted/static, budgeted/static and
// budgeted/derived-shedding.
func ChaosDrill(opts ChaosOptions) (*ChaosResult, error) {
	if opts.Devices < 4 {
		return nil, fmt.Errorf("fleet: chaos drill needs at least 4 devices, got %d", opts.Devices)
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("fleet: chaos drill needs a positive budget, got %d", opts.Budget)
	}
	spec := faults.DefaultStorm(opts.Devices, opts.Seed)
	spec.Start = 2*DefaultConfig().ReconfigTime + chaosWarmup
	sched, err := faults.Storm(spec)
	if err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		// The planned schedule gets its own process, so the Perfetto view
		// shows what the storm intended alongside what each case applied.
		sched.Trace(opts.Trace.Process("storm-plan").Track("schedule"))
	}
	res := &ChaosResult{
		Devices: opts.Devices, RackSize: spec.RackSize,
		Seed: opts.Seed, Budget: opts.Budget,
		StormStart: spec.Start, StormEnd: sched.End(),
	}
	for _, inj := range sched.Injections {
		res.Injections = append(res.Injections, inj.String())
	}
	for _, cs := range []struct {
		name              string
		budgeted, derived bool
	}{
		{"unbudgeted-static", false, false},
		{"budgeted-static", true, false},
		{"budgeted-derived", true, true},
	} {
		cc, err := runChaosCase(opts, sched, cs.name, cs.budgeted, cs.derived)
		if err != nil {
			return nil, fmt.Errorf("fleet: chaos case %s: %w", cs.name, err)
		}
		res.Cases = append(res.Cases, *cc)
	}
	return res, nil
}
