package fleet

import (
	"fmt"
	"sort"

	"harmonia/internal/apps"
	"harmonia/internal/cmdif"
	"harmonia/internal/device"
	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// Live migration of stateful LB flows. A stateful service's replicas
// each pin flows to backends in a connection table; losing a replica
// without that table re-hashes every established flow onto the current
// backend pool, disrupting any flow whose pool changed since it was
// pinned. Migration carries the table across failover: the control
// plane exports it through ordinary TableRead commands (the role
// module's dynamic table source), and replays it into the replacement
// replica through TableWrite commands after its slot reconfigures.
// Planned drains read the live table; a dead node's table is whatever
// the periodic snapshot (taken alongside heartbeats) last captured.

// FlowTableBase is the role-module table ID space reserved for
// connection-table transfers; a replica's table ID is
// FlowTableBase | tenantID, so co-resident stateful tenants never
// collide on the module's table bindings.
const FlowTableBase uint32 = 0x4C420000

// defaultSnapshotEvery is the periodic snapshot cadence (in successful
// heartbeat probes) when Config.SnapshotEvery is zero.
const defaultSnapshotEvery = 8

// flowTableCap bounds a replica's connection table.
const flowTableCap = 1 << 16

// flowState is one stateful replica's datapath flow state: the
// connection table plus the service's shared backend pool. It is bound
// to the hosting device's role control module as a dynamic table, so
// the table's only way on or off the device is the command path.
type flowState struct {
	c       *Cluster
	service string
	table   *apps.FlowTable
	// export is the row staging of the snapshot being read out: reading
	// row 0 captures and frames the table, later rows drain the staging.
	export [][]uint32
	// importBuf accumulates written rows until the framed length
	// (declared by the row-0 header) is reached, then restores.
	importBuf  []uint32
	importNext uint32
	// restored/dropped report the last completed import.
	restored, dropped int
	// sincePins counts flows pinned since the last periodic snapshot
	// capture — the exact staleness a dead-node fallback loses.
	sincePins int
	// dirty, while armed, logs every pin made after a rebalance move's
	// pre-copy capture; the delta replayed before cutover. Appends happen
	// on the shard worker owning this replica's packets, arming and
	// draining on the serial barrier path — never concurrently.
	dirtyArmed bool
	dirty      []apps.ConnEntry
}

func (fs *flowState) pool() *apps.Maglev { return fs.c.pools[fs.service] }

// process records one routed packet: established flows hit their pin,
// new flows pin to the pool's current assignment.
func (fs *flowState) process(k net.FlowKey) {
	if _, ok := fs.table.Lookup(k); ok {
		return
	}
	b := fs.pool().Lookup(k)
	if !fs.table.Pin(k, b) {
		return
	}
	fs.sincePins++
	if fs.dirtyArmed {
		fs.dirty = append(fs.dirty, apps.ConnEntry{Key: k, Backend: b})
	}
}

// assignment reports where the replica sends a flow right now: its pin
// when established, the pool's hash otherwise. This is the measurement
// the migration drill compares before and after failover.
func (fs *flowState) assignment(k net.FlowKey) net.IPAddr {
	if b, ok := fs.table.Peek(k); ok {
		return b
	}
	return fs.pool().Lookup(k)
}

// exportRow serves TableRead: row 0 snapshots and frames the table,
// every row returns its slice of the framed stream.
func (fs *flowState) exportRow(index uint32) ([]uint32, bool) {
	if index == 0 {
		fs.export = cmdif.SplitRows(apps.EncodeFlowSnapshot(fs.table.Snapshot()))
	}
	if int(index) >= len(fs.export) {
		return nil, false
	}
	return fs.export[index], true
}

// importRow accepts TableWrite: rows arrive in order starting at 0;
// when the framed length is complete the entries restore into the
// table.
func (fs *flowState) importRow(index uint32, entry []uint32) error {
	if index == 0 {
		fs.importBuf = fs.importBuf[:0]
		fs.importNext = 0
	}
	if index != fs.importNext {
		return fmt.Errorf("flow import row %d out of order (want %d)", index, fs.importNext)
	}
	fs.importNext++
	fs.importBuf = append(fs.importBuf, entry...)
	total, err := apps.FlowSnapshotWords(fs.importBuf)
	if err != nil {
		return err
	}
	if len(fs.importBuf) > total {
		return fmt.Errorf("flow import overran framed length %d", total)
	}
	if len(fs.importBuf) == total {
		entries, err := apps.DecodeFlowSnapshot(fs.importBuf)
		if err != nil {
			return err
		}
		fs.restored, fs.dropped = fs.table.Restore(entries)
	}
	return nil
}

// flowTableID is the replica's table ID on its node's role module.
func flowTableID(r *Replica) uint32 { return FlowTableBase | uint32(r.Tenant) }

// attachFlowState creates a replica's flow state on its new node and
// binds it to the role control module, making the connection table
// reachable over the command path. No-op for stateless services.
func (c *Cluster) attachFlowState(n *Node, r *Replica) {
	svc := c.services[r.Service]
	if !svc.Stateful {
		return
	}
	m, ok := n.Inst.Kernel().Module(device.RBBRole, 0)
	if !ok {
		return
	}
	fs := &flowState{c: c, service: r.Service, table: apps.NewFlowTable(flowTableCap)}
	tid := flowTableID(r)
	m.SetTableSource(tid, fs.exportRow)
	m.SetTableSink(tid, fs.importRow)
	n.flows[r.Name()] = fs
	r.flows = fs
}

// detachFlowState unbinds a replica's flow state from its node's role
// module (eviction, failover). The replica keeps its fs pointer only
// until the next attach.
func (c *Cluster) detachFlowState(n *Node, r *Replica) {
	if _, ok := n.flows[r.Name()]; !ok {
		return
	}
	if m, ok := n.Inst.Kernel().Module(device.RBBRole, 0); ok {
		tid := flowTableID(r)
		m.SetTableSource(tid, nil)
		m.SetTableSink(tid, nil)
	}
	delete(n.flows, r.Name())
}

// readFlowSnapshot pulls a replica's connection table off its device
// through TableRead transactions: row 0 carries the framed header
// declaring the stream length, later rows follow until complete.
func (c *Cluster) readFlowSnapshot(n *Node, r *Replica) ([]apps.ConnEntry, error) {
	tid := flowTableID(r)
	words, err := n.Inst.ReadTable(device.RBBRole, 0, tid, 0)
	if err != nil {
		return nil, err
	}
	words = append([]uint32(nil), words...)
	total, err := apps.FlowSnapshotWords(words)
	if err != nil {
		return nil, err
	}
	for row := uint32(1); len(words) < total; row++ {
		next, err := n.Inst.ReadTable(device.RBBRole, 0, tid, row)
		if err != nil {
			return nil, err
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("fleet: flow snapshot truncated at row %d", row)
		}
		words = append(words, next...)
	}
	if len(words) > total {
		return nil, fmt.Errorf("fleet: flow snapshot overran framed length %d", total)
	}
	return apps.DecodeFlowSnapshot(words)
}

// writeFlowSnapshot replays a connection table into a replica through
// TableWrite transactions against its new node's role module.
func (c *Cluster) writeFlowSnapshot(n *Node, r *Replica, entries []apps.ConnEntry) error {
	tid := flowTableID(r)
	for i, row := range cmdif.SplitRows(apps.EncodeFlowSnapshot(entries)) {
		if err := n.Inst.WriteTable(device.RBBRole, 0, tid, uint32(i), row...); err != nil {
			return err
		}
	}
	return nil
}

// flowSnap is one periodic connection-table capture.
type flowSnap struct {
	at      sim.Time
	entries []apps.ConnEntry
}

// snapshotNode refreshes the periodic captures of every stateful
// replica on a live node, over the command path. Called from the
// heartbeat sweep; a node that stops answering commands keeps its last
// successful capture — that staleness is exactly what dead-node
// failover inherits.
func (c *Cluster) snapshotNode(now sim.Time, n *Node) {
	for _, r := range n.Replicas() {
		if r.flows == nil {
			continue
		}
		entries, err := c.readFlowSnapshot(n, r)
		if err != nil {
			continue
		}
		c.snapshots[r.Name()] = flowSnap{at: now, entries: entries}
		r.flows.sincePins = 0
		if c.ctrl != nil {
			e := obs.Instant(obs.CatMigration, "snapshot", now)
			e.K1, e.V1 = "replica", r.Name()
			e.K2, e.V2 = "entries", int64(len(entries))
			c.ctrl.Add(e)
		}
	}
}

// snapshotEvery resolves the periodic snapshot cadence.
func (c *Cluster) snapshotEvery() int64 {
	if c.cfg.SnapshotEvery > 0 {
		return int64(c.cfg.SnapshotEvery)
	}
	return defaultSnapshotEvery
}

// MigrationRecord reports one connection table carried across a
// failover.
type MigrationRecord struct {
	Replica  string
	From, To string
	// At is when the replacement's slot reconfiguration completes — the
	// replayed table serves traffic from this point.
	At sim.Time
	// Live distinguishes a table read from the still-answering source
	// (planned drain) from the periodic-snapshot fallback (dead node).
	Live bool
	// SnapshotAge is how stale the fallback capture was (0 when live).
	SnapshotAge sim.Time
	// Flows entries were carried; Restored made it into the new table;
	// Dropped exceeded its capacity.
	Flows, Restored, Dropped int

	// Rebalance-move accounting: the per-phase timestamps (zero when the
	// phase never ran — failover migrations only stamp CutoverAt) and row
	// split make any migration auditable from the record alone.
	// PlannedAt is when the move was planned, PreCopyAt when the
	// pre-copy snapshot was captured, DeltaAt when the dirty log was
	// replayed, CutoverAt when routing flipped (== At for failovers).
	PlannedAt, PreCopyAt, DeltaAt, CutoverAt sim.Time
	// PreCopyRows came over in the pre-copy stream, DeltaRows in the
	// delta replay; Retries counts failed phase attempts that were
	// retried; Aborted marks a move rolled back to the source.
	PreCopyRows, DeltaRows, Retries int
	Aborted                         bool
}

// Migrations returns every completed flow-table migration.
func (c *Cluster) Migrations() []MigrationRecord {
	return append([]MigrationRecord(nil), c.migrations...)
}

// flowsForMigration obtains the connection table to carry for one
// evacuating replica: the live table when the node still answers
// commands, else the last periodic capture.
func (c *Cluster) flowsForMigration(n *Node, r *Replica, live bool) (entries []apps.ConnEntry, gotLive bool, at sim.Time) {
	if !c.cfg.MigrateFlows || r.flows == nil {
		return nil, false, 0
	}
	if live {
		if e, err := c.readFlowSnapshot(n, r); err == nil {
			return e, true, 0
		}
	}
	if snap, ok := c.snapshots[r.Name()]; ok {
		return snap.entries, false, snap.at
	}
	return nil, false, 0
}

// RemoveBackend removes one backend from a stateful service's pool,
// fleet-wide: the shared Maglev table rebuilds (minimal disruption for
// unpinned flows) and every replica either keeps pins to the leaving
// backend (planned drain, evict=false — connections complete) or
// evicts them (backend failure, evict=true — pins would blackhole).
// It reports how many pinned flows were evicted.
func (c *Cluster) RemoveBackend(service string, backend net.IPAddr, evict bool) (int, error) {
	svc, ok := c.services[service]
	if !ok {
		return 0, fmt.Errorf("fleet: unknown service %q", service)
	}
	if !svc.Stateful {
		return 0, fmt.Errorf("fleet: service %q is not stateful", service)
	}
	found := -1
	for i, b := range svc.Backends {
		if b == backend {
			found = i
			break
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("fleet: %v is not a backend of %s", backend, service)
	}
	if len(svc.Backends) == 1 {
		return 0, fmt.Errorf("fleet: cannot remove the last backend of %s", service)
	}
	svc.Backends = append(svc.Backends[:found], svc.Backends[found+1:]...)
	pool, err := apps.NewMaglev(svc.Backends)
	if err != nil {
		return 0, err
	}
	c.pools[service] = pool
	evicted := 0
	if evict {
		for _, r := range c.replicas {
			if r.Service == service && r.flows != nil {
				evicted += r.flows.table.EvictBackend(backend)
			}
		}
	}
	return evicted, nil
}

// MigrationCase is one side of the migration drill: a failover with or
// without carrying connection tables.
type MigrationCase struct {
	Migrated bool
	// Established counts the victim's pinned flows at the kill;
	// Disrupted of those land on a different backend after failover.
	Established, Disrupted int
	Disruption             float64
	// FlowsCarried counts table entries replayed into replacements.
	FlowsCarried int
	RecoveryTime sim.Time
}

// MigrationDrillResult reports the fleet4 drill: the same deterministic
// failover run cold and with migration, against the consistent-hashing
// disruption bound.
type MigrationDrillResult struct {
	Devices  int
	Backends int
	Killed   string
	// MaglevBound is the pool-change disruption floor: the fraction of
	// the hash table the mid-run backend drain remapped. A cold restart
	// re-hashes established flows at this rate; migration must beat it.
	MaglevBound    float64
	Cold, Migrated MigrationCase
	Records        []MigrationRecord
	Transitions    []Transition
}

// migrationBackends is the drill's initial backend pool.
func migrationBackends() []net.IPAddr {
	out := make([]net.IPAddr, 8)
	for i := range out {
		out[i] = net.IPv4(10, 1, 0, byte(i+1))
	}
	return out
}

// runMigrationCase builds a stateful fleet, establishes flows, drains
// one backend (so the pool at failover differs from the pool the flows
// pinned under — the condition that makes a cold restart disruptive),
// kills the most loaded node and measures how many established flows
// changed backend.
func runMigrationCase(cfg Config, n int, t Traffic, migrate bool) (*MigrationCase, *Cluster, string, float64, error) {
	cfg.MigrateFlows = migrate
	// The drill's serving phases are short relative to the heartbeat, so
	// snapshot on every other probe — with the production cadence the
	// victim could die before its first post-traffic capture.
	cfg.SnapshotEvery = 2
	info, err := apps.Lookup("layer4-lb")
	if err != nil {
		return nil, nil, "", 0, err
	}
	svc := AppService(info, n, net.IPv4(20, 0, 0, 1))
	svc.Stateful = true
	svc.Backends = migrationBackends()
	c, err := BuildServiceCluster(cfg, svc, n)
	if err != nil {
		return nil, nil, "", 0, err
	}
	c.RunMonitorUntil(cfg.ReconfigTime * 2)

	// Establish flows across the fleet.
	if _, err := c.Serve(300*sim.Microsecond, t); err != nil {
		return nil, nil, "", 0, err
	}

	// Drain one backend: unpinned flows re-hash minimally, established
	// flows keep their pins. From here the pool disagrees with the pins.
	oldPool := c.pools[svc.Name]
	if _, err := c.RemoveBackend(svc.Name, migrationBackends()[0], false); err != nil {
		return nil, nil, "", 0, err
	}
	bound := oldPool.Disruption(c.pools[svc.Name])

	// Kill the most loaded node (lowest ID breaks ties) — the same
	// victim in both cases, since both run the same seeds.
	nodes := c.Nodes()
	sort.Slice(nodes, func(i, j int) bool {
		if li, lj := len(nodes[i].replicas), len(nodes[j].replicas); li != lj {
			return li > lj
		}
		return nodes[i].ID < nodes[j].ID
	})
	victim := nodes[0]
	established := map[string][]apps.ConnEntry{}
	for _, r := range victim.Replicas() {
		if r.flows != nil {
			established[r.Name()] = r.flows.table.Snapshot()
		}
	}
	faultAt := c.Now()
	if err := c.Kill(victim.ID); err != nil {
		return nil, nil, "", 0, err
	}

	// Serve through detection and re-placement.
	cohorts := cfg.HeartbeatCohorts
	if cohorts < 1 {
		cohorts = 1
	}
	detectBudget := sim.Time((cfg.FailedAfter+2)*cohorts)*cfg.Heartbeat + 2*cfg.ReconfigTime
	mid := t
	mid.Seed = t.Seed + 100
	if _, err := c.Serve(detectBudget, mid); err != nil {
		return nil, nil, "", 0, err
	}
	var report *FailoverReport
	for i := range c.failovers {
		if c.failovers[i].Node == victim.ID {
			report = &c.failovers[i]
			break
		}
	}
	if report == nil {
		return nil, nil, "", 0, fmt.Errorf("fleet: %s was never declared failed", victim.ID)
	}

	// Measure: where does each of the victim's established flows land
	// on its replacement replica now?
	byName := map[string]*Replica{}
	for _, r := range c.replicas {
		byName[r.Name()] = r
	}
	mc := &MigrationCase{Migrated: migrate, RecoveryTime: report.Recovery(faultAt), FlowsCarried: report.Migrated}
	for name, entries := range established {
		r := byName[name]
		if r == nil || r.Node == "" || r.flows == nil {
			return nil, nil, "", 0, fmt.Errorf("fleet: %s was not re-placed", name)
		}
		for _, e := range entries {
			mc.Established++
			if r.flows.assignment(e.Key) != e.Backend {
				mc.Disrupted++
			}
		}
	}
	if mc.Established > 0 {
		mc.Disruption = float64(mc.Disrupted) / float64(mc.Established)
	}
	return mc, c, victim.ID, bound, nil
}

// MigrationDrill runs the fleet4 experiment: the identical seeded
// failover twice — cold (connection tables die with the node) and with
// live migration — and reports each side's flow disruption against the
// Maglev re-hash bound.
func MigrationDrill(cfg Config, n int, t Traffic) (*MigrationDrillResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("fleet: migration drill needs at least 2 devices, got %d", n)
	}
	cold, _, killedCold, bound, err := runMigrationCase(cfg, n, t, false)
	if err != nil {
		return nil, err
	}
	mig, c, killed, _, err := runMigrationCase(cfg, n, t, true)
	if err != nil {
		return nil, err
	}
	if killed != killedCold {
		return nil, fmt.Errorf("fleet: drill cases diverged (%s vs %s killed)", killedCold, killed)
	}
	return &MigrationDrillResult{
		Devices: n, Backends: len(migrationBackends()), Killed: killed,
		MaglevBound: bound,
		Cold:        *cold, Migrated: *mig,
		Records:     c.Migrations(),
		Transitions: c.Transitions(),
	}, nil
}
