package fleet

import (
	"testing"

	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// benchRouteSetup builds a serving fleet and a prepared workload for
// the routed-packet hot path, with replicas already past ReadyAt.
func benchRouteSetup(b *testing.B) (*Cluster, *Phase, sim.Time) {
	b.Helper()
	c, err := BuildCluster(DefaultConfig(), testApp, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	ph, err := c.PreparePhase(sim.Millisecond, DefaultTraffic(testApp))
	if err != nil {
		b.Fatal(err)
	}
	now := 2 * c.Config().ReconfigTime
	c.advance(now)
	return c, ph, now
}

// BenchmarkRoutedPacket measures the dispatch hot path with tracing
// detached — the default state. The acceptance bar is zero allocations
// and no regression against the pre-observability router.
func BenchmarkRoutedPacket(b *testing.B) {
	c, ph, now := benchRouteSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Route(now, testApp, ph.pkts[i%len(ph.pkts)])
	}
}

// BenchmarkRoutedPacketTraced measures the same path with a flight
// recorder attached (sampling divisor 1, every packet records into the
// bounded ring) — the worst-case tracing overhead.
func BenchmarkRoutedPacketTraced(b *testing.B) {
	c, ph, now := benchRouteSetup(b)
	rec := obs.NewFlightRecorder(4096)
	c.SetTrace(rec.Process("bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Route(now, testApp, ph.pkts[i%len(ph.pkts)])
	}
}

// BenchmarkRoutedPacketSampled measures the full-recorder default:
// 1-in-64 packet sampling, unbounded buffers.
func BenchmarkRoutedPacketSampled(b *testing.B) {
	c, ph, now := benchRouteSetup(b)
	rec := obs.NewRecorder()
	c.SetTrace(rec.Process("bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Route(now, testApp, ph.pkts[i%len(ph.pkts)])
	}
}
