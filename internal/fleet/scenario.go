package fleet

import (
	"fmt"
	"sort"

	"harmonia/internal/apps"
	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

// Scenario drivers: a closed traffic loop over the cluster (Serve), the
// scale-out sweep and the kill-a-device drill. cmd/harmonia-fleet and
// bench build on these.

// Traffic shapes one serving phase.
type Traffic struct {
	Service     string
	OfferedGbps float64
	PktBytes    int
	Flows       int
	// Jitter spreads packet gaps (see workload.Arrivals).
	Jitter float64
	// Seed makes the phase reproducible end to end: packet contents,
	// arrival times and router sampling all derive from explicit seeds.
	Seed int64
}

// DefaultTraffic returns a moderate offered load for one service.
func DefaultTraffic(service string) Traffic {
	return Traffic{
		Service: service, OfferedGbps: 40, PktBytes: 1024,
		Flows: 256, Jitter: 0.2, Seed: 7,
	}
}

// PhaseStats summarizes one serving phase.
type PhaseStats struct {
	From, To              sim.Time
	Sent, Served, Dropped int64
	Bytes                 int64
	// GoodputGbps and QPS are aggregate cluster-wide rates over the
	// phase; P50/P99 are per-packet device transit latencies.
	GoodputGbps float64
	QPS         float64
	P50, P99    sim.Time
}

// Serve runs one traffic phase of the given duration starting at the
// cluster's current time, interleaving the periodic health monitor with
// per-packet dispatch, and reports aggregate throughput/QPS/latency
// over the phase via the metrics package.
func (c *Cluster) Serve(dur sim.Time, t Traffic) (PhaseStats, error) {
	if dur <= 0 || t.OfferedGbps <= 0 || t.PktBytes < net.MinFrame {
		return PhaseStats{}, fmt.Errorf("fleet: invalid traffic phase %+v over %v", t, dur)
	}
	if _, ok := c.services[t.Service]; !ok {
		return PhaseStats{}, fmt.Errorf("fleet: unknown service %q", t.Service)
	}
	gap := sim.Time(float64((t.PktBytes+net.FrameOverhead)*8) / t.OfferedGbps * float64(sim.Nanosecond))
	if gap < 1 {
		gap = 1
	}
	count := int(dur/gap) + 1
	pkts, err := workload.Packets(workload.PacketConfig{
		Count: count, Size: t.PktBytes, Flows: t.Flows, Seed: t.Seed,
	})
	if err != nil {
		return PhaseStats{}, err
	}
	arrivals, err := workload.Arrivals(count, gap, t.Jitter, t.Seed+1)
	if err != nil {
		return PhaseStats{}, err
	}

	start := c.now
	before := c.RouterStats()
	c.router.resetWindow()
	for i, p := range pkts {
		at := start + arrivals[i]
		if at > start+dur {
			break
		}
		// Fire every heartbeat due before this packet.
		c.RunMonitorUntil(at)
		_, _ = c.Route(at, t.Service, p) // drops are part of the result
	}
	c.RunMonitorUntil(start + dur)

	after := c.RouterStats()
	lat := c.router.resetWindow()
	elapsed := c.now - start
	stats := PhaseStats{
		From: start, To: c.now,
		Sent:    after.Sent - before.Sent,
		Served:  after.Served - before.Served,
		Dropped: after.Dropped - before.Dropped,
		Bytes:   after.Bytes - before.Bytes,
		P50:     lat.Percentile(50),
		P99:     lat.Percentile(99),
	}
	stats.GoodputGbps = metrics.Gbps(stats.Bytes, elapsed)
	stats.QPS = metrics.Rate(stats.Served, elapsed)
	return stats, nil
}

// compatiblePlatforms lists catalog devices able to host the service,
// in catalog order.
func compatiblePlatforms(svc Service) []*platform.Device {
	var out []*platform.Device
	for _, name := range platform.CatalogNames() {
		dev, err := platform.Lookup(name)
		if err != nil {
			continue
		}
		if _, err := adaptDemands(dev, svc.Demands); err != nil {
			continue
		}
		if svc.MinPCIeGen > 0 {
			p, ok := dev.PCIe()
			if !ok || p.PCIeGen < svc.MinPCIeGen {
				continue
			}
		}
		out = append(out, dev)
	}
	return out
}

// BuildCluster commissions a heterogeneous fleet of n devices (cycling
// the compatible catalog models) hosting `replicas` replicas of the
// named application, and places them.
func BuildCluster(cfg Config, appName string, n, replicas int) (*Cluster, error) {
	info, err := apps.Lookup(appName)
	if err != nil {
		return nil, err
	}
	c, err := NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	svc := AppService(info, replicas, net.IPv4(20, 0, 0, 1))
	if err := c.AddService(svc); err != nil {
		return nil, err
	}
	models := compatiblePlatforms(svc)
	if len(models) == 0 {
		return nil, fmt.Errorf("fleet: no catalog device can host %s", appName)
	}
	for i := 0; i < n; i++ {
		model := models[i%len(models)]
		// Each node gets its own platform instance (catalog returns
		// fresh copies per Lookup).
		plat, err := platform.Lookup(model.Name)
		if err != nil {
			return nil, err
		}
		id := fmt.Sprintf("node-%02d-%s", i+1, plat.Name)
		if _, err := c.Commission(id, plat); err != nil {
			return nil, err
		}
	}
	if _, err := c.Place(0); err != nil {
		return nil, err
	}
	return c, nil
}

// ScalePoint is one scale-out sweep measurement.
type ScalePoint struct {
	Devices  int
	Replicas int
	PhaseStats
}

// ScaleOut sweeps the fleet from 1 to maxDevices devices (one replica
// per device), offering load proportional to the fleet size, and
// reports aggregate throughput at each size. Aggregate Gbps growing
// with device count is the scale-out property the bench asserts.
func ScaleOut(cfg Config, appName string, maxDevices int, t Traffic) ([]ScalePoint, error) {
	if maxDevices <= 0 {
		return nil, fmt.Errorf("fleet: invalid sweep size %d", maxDevices)
	}
	perDevice := t.OfferedGbps
	var out []ScalePoint
	for n := 1; n <= maxDevices; n++ {
		c, err := BuildCluster(cfg, appName, n, n)
		if err != nil {
			return out, err
		}
		// Let every slot finish reconfiguring before offering load.
		c.RunMonitorUntil(cfg.ReconfigTime * 2)
		phase := t
		phase.OfferedGbps = perDevice * float64(n)
		stats, err := c.Serve(400*sim.Microsecond, phase)
		if err != nil {
			return out, err
		}
		out = append(out, ScalePoint{Devices: n, Replicas: n, PhaseStats: stats})
	}
	return out, nil
}

// DrillResult reports a kill-a-device drill.
type DrillResult struct {
	Devices int
	Killed  string
	// FaultAt is when the device died; DetectedAt when the monitor
	// declared it failed; RecoveredAt when its last replica finished
	// re-placing. RecoveryTime = RecoveredAt - FaultAt.
	FaultAt, DetectedAt, RecoveredAt sim.Time
	RecoveryTime                     sim.Time
	// Moved/Replaced/Unplaced count the failed device's tenants.
	Moved, Replaced, Unplaced int
	// Pre/Post are the serving phases before the fault and after
	// recovery; throughput recovering toward Pre is the drill's pass
	// signal.
	Pre, Post   PhaseStats
	Transitions []Transition
}

// KillDrill builds an n-device fleet, serves traffic, silently kills
// the most loaded device mid-run, and measures detection, re-placement
// and throughput recovery. The survivors must have spare slots, so the
// drill runs n replicas on n devices with anti-affinity spreading them
// one-per-device beforehand.
func KillDrill(cfg Config, appName string, n int, t Traffic) (*DrillResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("fleet: kill drill needs at least 2 devices, got %d", n)
	}
	c, err := BuildCluster(cfg, appName, n, n)
	if err != nil {
		return nil, err
	}
	c.RunMonitorUntil(cfg.ReconfigTime * 2)

	pre, err := c.Serve(300*sim.Microsecond, t)
	if err != nil {
		return nil, err
	}

	// Kill the device hosting the most replicas (lowest ID breaks ties).
	nodes := c.Nodes()
	sort.Slice(nodes, func(i, j int) bool {
		if li, lj := len(nodes[i].replicas), len(nodes[j].replicas); li != lj {
			return li > lj
		}
		return nodes[i].ID < nodes[j].ID
	})
	victim := nodes[0]
	faultAt := c.Now()
	if err := c.Kill(victim.ID); err != nil {
		return nil, err
	}

	// Serve through detection + reconfiguration: the router sheds load
	// to the survivors while the monitor counts missed heartbeats.
	detectBudget := sim.Time(cfg.FailedAfter+2)*cfg.Heartbeat + 2*cfg.ReconfigTime
	mid := t
	mid.Seed = t.Seed + 100
	if _, err := c.Serve(detectBudget, mid); err != nil {
		return nil, err
	}
	var report *FailoverReport
	for i := range c.failovers {
		if c.failovers[i].Node == victim.ID {
			report = &c.failovers[i]
			break
		}
	}
	if report == nil {
		return nil, fmt.Errorf("fleet: %s was never declared failed", victim.ID)
	}

	post := t
	post.Seed = t.Seed + 200
	postStats, err := c.Serve(300*sim.Microsecond, post)
	if err != nil {
		return nil, err
	}

	return &DrillResult{
		Devices: n, Killed: victim.ID,
		FaultAt: faultAt, DetectedAt: report.DetectedAt, RecoveredAt: report.RecoveredAt,
		RecoveryTime: report.Recovery(faultAt),
		Moved:        report.Moved, Replaced: report.Replaced, Unplaced: report.Unplaced,
		Pre: pre, Post: postStats,
		Transitions: c.Transitions(),
	}, nil
}
