package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"harmonia/internal/apps"
	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

// Scenario drivers: a closed traffic loop over the cluster (Serve), the
// scale-out sweep and the kill-a-device drill. cmd/harmonia-fleet and
// bench build on these.

// Traffic shapes one serving phase.
type Traffic struct {
	Service     string
	OfferedGbps float64
	PktBytes    int
	Flows       int
	// Jitter spreads packet gaps (see workload.Arrivals).
	Jitter float64
	// Seed makes the phase reproducible end to end: packet contents,
	// arrival times and router sampling all derive from explicit seeds.
	Seed int64
}

// DefaultTraffic returns a moderate offered load for one service.
func DefaultTraffic(service string) Traffic {
	return Traffic{
		Service: service, OfferedGbps: 40, PktBytes: 1024,
		Flows: 256, Jitter: 0.2, Seed: 7,
	}
}

// PhaseStats summarizes one serving phase.
type PhaseStats struct {
	From, To              sim.Time
	Sent, Served, Dropped int64
	Bytes                 int64
	// GoodputGbps and QPS are aggregate cluster-wide rates over the
	// phase; P50/P99 are per-packet device transit latencies.
	GoodputGbps float64
	QPS         float64
	P50, P99    sim.Time
}

// Phase is one prepared traffic phase: the deterministic workload
// (packet contents and arrival times) generated up front, ready to run
// against the cluster. Preparing and running are split so the
// control-plane benchmark can measure the serving path alone.
type Phase struct {
	c        *Cluster
	t        Traffic
	dur      sim.Time
	pkts     []*net.Packet
	arrivals []sim.Time
	// hashes caches each packet's flow hash — the NIC-RSS analogue:
	// computed once at prepare time, reused by dispatch, the flow cache
	// and shard partitioning instead of re-hashing per use.
	hashes []uint64
	// multi/svcIdx carry a co-resident phase (PrepareMultiPhase): the
	// per-service traffic shapes and each packet's index into them. nil
	// for a single-service phase, which keeps the single-service run
	// loop untouched. sis caches the per-traffic service indexes for the
	// current quantum (resolved serially — freeze rebuilds the index
	// map, so they cannot be captured at prepare time).
	multi  []Traffic
	svcIdx []uint8
	sis    []*svcIndex
}

// Packets reports how many packets the phase offers.
func (ph *Phase) Packets() int { return len(ph.pkts) }

// Shards reports the cluster's router shard count (0 until the router
// first freezes, i.e. before any phase has been prepared or run).
func (ph *Phase) Shards() int { return len(ph.c.router.shards) }

// PreparePhase validates a traffic phase and generates its workload.
// It also freezes the router layout and drains due replica
// maturations: that is control-plane work, and doing it here keeps it
// (and its allocations) out of the measured serving window that
// Phase.Run times.
func (c *Cluster) PreparePhase(dur sim.Time, t Traffic) (*Phase, error) {
	pkts, arrivals, err := c.genWorkload(dur, t)
	if err != nil {
		return nil, err
	}
	hashes := make([]uint64, len(pkts))
	for i, p := range pkts {
		hashes[i] = p.Flow().Hash()
	}
	c.router.freeze()
	c.router.idx.mature(c.now)
	return &Phase{c: c, t: t, dur: dur, pkts: pkts, arrivals: arrivals, hashes: hashes}, nil
}

// genWorkload validates one traffic shape and generates its seeded
// packet stream and arrival times.
func (c *Cluster) genWorkload(dur sim.Time, t Traffic) ([]*net.Packet, []sim.Time, error) {
	if dur <= 0 || t.OfferedGbps <= 0 || t.PktBytes < net.MinFrame {
		return nil, nil, fmt.Errorf("fleet: invalid traffic phase %+v over %v", t, dur)
	}
	if _, ok := c.services[t.Service]; !ok {
		return nil, nil, fmt.Errorf("fleet: unknown service %q", t.Service)
	}
	gap := sim.Time(float64((t.PktBytes+net.FrameOverhead)*8) / t.OfferedGbps * float64(sim.Nanosecond))
	if gap < 1 {
		gap = 1
	}
	count := int(dur/gap) + 1
	pkts, err := workload.Packets(workload.PacketConfig{
		Count: count, Size: t.PktBytes, Flows: t.Flows, Seed: t.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	arrivals, err := workload.Arrivals(count, gap, t.Jitter, t.Seed+1)
	if err != nil {
		return nil, nil, err
	}
	return pkts, arrivals, nil
}

// PrepareMultiPhase validates a co-resident traffic phase — one shape
// per service — and merges the per-service seeded streams into a single
// arrival-ordered timeline (ties resolve by traffic order, then by
// sequence within a stream, so the merge is deterministic). Each packet
// remembers its service; dispatch then routes it through that service's
// replica index exactly as a single-service phase would.
func (c *Cluster) PrepareMultiPhase(dur sim.Time, traffics []Traffic) (*Phase, error) {
	if len(traffics) == 0 {
		return nil, fmt.Errorf("fleet: co-resident phase needs at least one traffic shape")
	}
	if len(traffics) == 1 {
		return c.PreparePhase(dur, traffics[0])
	}
	if len(traffics) > 255 {
		return nil, fmt.Errorf("fleet: co-resident phase supports at most 255 services, got %d", len(traffics))
	}
	seen := make(map[string]bool, len(traffics))
	type stream struct {
		pkts []*net.Packet
		arr  []sim.Time
	}
	streams := make([]stream, len(traffics))
	total := 0
	for ti, t := range traffics {
		if seen[t.Service] {
			return nil, fmt.Errorf("fleet: duplicate traffic for service %q", t.Service)
		}
		seen[t.Service] = true
		pkts, arr, err := c.genWorkload(dur, t)
		if err != nil {
			return nil, err
		}
		streams[ti] = stream{pkts: pkts, arr: arr}
		total += len(pkts)
	}
	ph := &Phase{
		c: c, t: traffics[0], dur: dur,
		multi:    append([]Traffic(nil), traffics...),
		pkts:     make([]*net.Packet, 0, total),
		arrivals: make([]sim.Time, 0, total),
		svcIdx:   make([]uint8, 0, total),
		sis:      make([]*svcIndex, len(traffics)),
	}
	next := make([]int, len(streams))
	for {
		best := -1
		for ti := range streams {
			if next[ti] >= len(streams[ti].pkts) {
				continue
			}
			if best < 0 || streams[ti].arr[next[ti]] < streams[best].arr[next[best]] {
				best = ti
			}
		}
		if best < 0 {
			break
		}
		ph.pkts = append(ph.pkts, streams[best].pkts[next[best]])
		ph.arrivals = append(ph.arrivals, streams[best].arr[next[best]])
		ph.svcIdx = append(ph.svcIdx, uint8(best))
		next[best]++
	}
	ph.hashes = make([]uint64, len(ph.pkts))
	for i, p := range ph.pkts {
		ph.hashes[i] = p.Flow().Hash()
	}
	c.router.freeze()
	c.router.idx.mature(c.now)
	return ph, nil
}

// Serve runs one traffic phase of the given duration starting at the
// cluster's current time, interleaving the periodic health monitor with
// packet dispatch, and reports aggregate throughput/QPS/latency over
// the phase via the metrics package. Dispatch runs on the sharded fast
// path, parallelized across ServeWorkers goroutines between heartbeat
// barriers; seeded phases are bit-reproducible regardless of worker
// count (see Phase.Run).
func (c *Cluster) Serve(dur sim.Time, t Traffic) (PhaseStats, error) {
	ph, err := c.PreparePhase(dur, t)
	if err != nil {
		return PhaseStats{}, err
	}
	return ph.Run()
}

// ServeMulti runs one co-resident traffic phase — every service's
// stream merged onto one timeline — under the same determinism contract
// as Serve: aggregate PhaseStats and trace bytes are byte-identical
// across worker counts and batch quanta. Per-service outcomes are read
// via ServiceStats / ServiceWindowLatencies deltas around the call.
func (c *Cluster) ServeMulti(dur sim.Time, traffics []Traffic) (PhaseStats, error) {
	ph, err := c.PrepareMultiPhase(dur, traffics)
	if err != nil {
		return PhaseStats{}, err
	}
	return ph.Run()
}

// serialQuantum is the packet count below which a quantum runs inline:
// fanning goroutines out for a handful of packets costs more than it
// saves, and the result is identical either way.
const serialQuantum = 256

// defaultBatchQuantum is the dispatch run cap when Config.BatchQuantum
// is 0: barrier windows are drained in runs of at most this many
// packets. Quantum splits carry no control-plane work and preserve the
// flow caches, so the size never changes results.
const defaultBatchQuantum = 8192

// Run executes the phase on the sharded fast path.
//
// The packet timeline is cut into quanta at heartbeat ticks. Within a
// quantum the replica set and node health are frozen (they only change
// on the control-plane path, which runs at the barriers), so each
// router shard — its RNG, counters, latency histogram and the nodes it
// owns — is touched by exactly one worker, without locks. At each
// barrier the due heartbeat cohort is probed, failovers re-place
// replicas, and matured replicas enter the ready index.
//
// Determinism contract: flows hash onto shards, so each shard sees a
// fixed packet subsequence in arrival order no matter how many workers
// run; counters and histograms merge exactly. Aggregate PhaseStats are
// therefore byte-identical across worker counts and GOMAXPROCS
// settings. Only the (unobserved) wall-clock interleaving of per-packet
// work differs; per-packet ordering is guaranteed shard-local, not
// global. Results do depend on the shard count, which is part of the
// seeded configuration.
func (ph *Phase) Run() (PhaseStats, error) {
	c := ph.c
	r := c.router
	r.freeze()
	r.idx.mature(c.now)
	c.rackRefresh(c.now)
	// A phase start is a barrier: dispatch views refresh before the
	// first quantum.
	r.bumpEpoch()

	workers := c.cfg.ServeWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.shards) {
		workers = len(r.shards)
	}
	quantum := c.cfg.BatchQuantum
	if quantum <= 0 {
		quantum = defaultBatchQuantum
	}

	start := c.now
	end := start + ph.dur
	before := c.RouterStats()
	r.resetWindow()

	queues := make([][]int, len(r.shards))
	work := make([]int, 0, len(r.shards))
	nextHB := c.nextHeartbeat
	if nextHB == 0 {
		nextHB = c.cfg.Heartbeat
	}
	at := func(k int) sim.Time { return start + ph.arrivals[k] }

	i := 0
	for i < len(ph.pkts) && at(i) <= end {
		// Fire every heartbeat due before the next packet (a heartbeat
		// sharing the packet's timestamp probes first, as in the serial
		// monitor interleaving).
		for nextHB <= at(i) {
			c.Heartbeat(nextHB)
			nextHB += c.cfg.Heartbeat
		}
		// One barrier window: every packet strictly before the next
		// barrier, drained in runs of at most quantum packets.
		j := i
		for j < len(ph.pkts) && at(j) < nextHB && at(j) <= end {
			j++
		}
		for i < j {
			k := i + quantum
			if k > j {
				k = j
			}
			ph.runQuantum(queues, &work, i, k, workers)
			i = k
		}
	}
	for nextHB <= end {
		c.Heartbeat(nextHB)
		nextHB += c.cfg.Heartbeat
	}
	c.nextHeartbeat = nextHB
	c.advance(end)

	return ph.stats(start, before, r.windowHist()), nil
}

// runQuantum partitions packets [i, j) onto shards by flow hash and
// routes each shard's subsequence, fanning out to workers when the
// quantum is large enough to pay for it.
func (ph *Phase) runQuantum(queues [][]int, work *[]int, i, j, workers int) {
	if i >= j {
		return
	}
	if ph.multi != nil {
		ph.runQuantumMulti(queues, work, i, j, workers)
		return
	}
	c := ph.c
	r := c.router
	si := r.idx.svc(ph.t.Service)
	active := si.active
	for s := range queues {
		queues[s] = queues[s][:0]
	}
	for k := i; k < j; k++ {
		h := ph.hashes[k]
		var s int
		if len(active) > 0 {
			s = r.dispatchShard(si, h)
		} else {
			// Nothing can serve: spread the drops over all shards so
			// counters stay shard-consistent.
			s = int(h % uint64(len(queues)))
		}
		queues[s] = append(queues[s], k)
	}
	*work = (*work)[:0]
	for s := range queues {
		if len(queues[s]) > 0 {
			*work = append(*work, s)
		}
	}
	if workers <= 1 || len(*work) == 1 || j-i < serialQuantum {
		for _, s := range *work {
			ph.runShard(s, queues[s], si)
		}
		return
	}
	if workers > len(*work) {
		workers = len(*work)
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				k := atomic.AddInt64(&next, 1) - 1
				if k >= int64(len(*work)) {
					return
				}
				s := (*work)[k]
				ph.runShard(s, queues[s], si)
			}
		}()
	}
	wg.Wait()
}

// runShard routes one shard's packet subsequence in arrival order —
// the batched inner loop: the dispatch view refreshes at most once per
// epoch, every packet reuses its precomputed flow hash, and the shard
// counters accumulate in locals flushed once per run instead of five
// read-modify-writes per packet. The service's own per-shard counters
// (svcShardStats) accumulate alongside and flush with them.
func (ph *Phase) runShard(s int, idxs []int, si *svcIndex) {
	c := ph.c
	r := c.router
	sh := r.shards[s]
	d := r.refreshDisp(si, s)
	st := &si.stats[s]
	start := c.now
	var served, dropped, healthy, shed, bytes int64
	for _, k := range idxs {
		now := start + ph.arrivals[k]
		p := ph.pkts[k]
		res := c.routeCached(sh, d, ph.hashes[k], now, p)
		if !res.served {
			dropped++
			if res.node == nil && d.shed > 0 {
				// Class shedding emptied the view: the drop is a shed.
				shed++
			}
			if sh.trace != nil {
				node := ""
				if res.node != nil {
					node = res.node.ID
				}
				sh.traceDrop(now, node)
			}
			continue
		}
		served++
		if res.healthy {
			healthy++
		}
		bytes += int64(p.WireBytes)
		sh.hist.Add(res.done - now)
		st.hist.Add(res.done - now)
		if sh.trace != nil {
			sh.tracePacket(now, res.done, res.node.ID, int64(p.WireBytes))
		}
	}
	sh.sent += int64(len(idxs))
	sh.served += served
	sh.dropped += dropped
	sh.healthy += healthy
	sh.bytes += bytes
	st.sent += int64(len(idxs))
	st.served += served
	st.dropped += dropped
	st.healthy += healthy
	st.shed += shed
	st.bytes += bytes
}

// runQuantumMulti is runQuantum for a co-resident phase: each packet
// partitions onto the shard its *own* service's dispatch chooses, so
// two services' flows with the same hash can land on different shards
// (per-service active sets differ). Shard subsequences stay fixed by
// (service, flow hash) — worker-count invariant exactly as the single-
// service path.
func (ph *Phase) runQuantumMulti(queues [][]int, work *[]int, i, j, workers int) {
	c := ph.c
	r := c.router
	for ti, t := range ph.multi {
		ph.sis[ti] = r.idx.svc(t.Service)
	}
	for s := range queues {
		queues[s] = queues[s][:0]
	}
	for k := i; k < j; k++ {
		h := ph.hashes[k]
		si := ph.sis[ph.svcIdx[k]]
		var s int
		if len(si.active) > 0 {
			s = r.dispatchShard(si, h)
		} else {
			// Nothing can serve this service: spread the drops over all
			// shards so counters stay shard-consistent.
			s = int(h % uint64(len(queues)))
		}
		queues[s] = append(queues[s], k)
	}
	*work = (*work)[:0]
	for s := range queues {
		if len(queues[s]) > 0 {
			*work = append(*work, s)
		}
	}
	if workers <= 1 || len(*work) == 1 || j-i < serialQuantum {
		for _, s := range *work {
			ph.runShardMulti(s, queues[s])
		}
		return
	}
	if workers > len(*work) {
		workers = len(*work)
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				k := atomic.AddInt64(&next, 1) - 1
				if k >= int64(len(*work)) {
					return
				}
				s := (*work)[k]
				ph.runShardMulti(s, queues[s])
			}
		}()
	}
	wg.Wait()
}

// svcAcc is one service's per-run counter accumulator in runShardMulti.
type svcAcc struct {
	sent, served, dropped, healthy, shed, bytes int64
}

// runShardMulti routes one shard's merged subsequence: packets of all
// services interleave in arrival order, each dispatching through its
// own service's view (refreshed at most once per run), with counters
// accumulated per service and flushed once.
func (ph *Phase) runShardMulti(s int, idxs []int) {
	c := ph.c
	r := c.router
	sh := r.shards[s]
	start := c.now
	nsvc := len(ph.multi)
	ds := make([]*shardDisp, nsvc)
	accs := make([]svcAcc, nsvc)
	for _, k := range idxs {
		ti := ph.svcIdx[k]
		si := ph.sis[ti]
		d := ds[ti]
		if d == nil {
			d = r.refreshDisp(si, s)
			ds[ti] = d
		}
		a := &accs[ti]
		a.sent++
		now := start + ph.arrivals[k]
		p := ph.pkts[k]
		res := c.routeCached(sh, d, ph.hashes[k], now, p)
		if !res.served {
			a.dropped++
			if res.node == nil && d.shed > 0 {
				a.shed++
			}
			if sh.trace != nil {
				node := ""
				if res.node != nil {
					node = res.node.ID
				}
				sh.traceDrop(now, node)
			}
			continue
		}
		a.served++
		if res.healthy {
			a.healthy++
		}
		a.bytes += int64(p.WireBytes)
		sh.hist.Add(res.done - now)
		si.stats[s].hist.Add(res.done - now)
		if sh.trace != nil {
			sh.tracePacket(now, res.done, res.node.ID, int64(p.WireBytes))
		}
	}
	for ti := range accs {
		a := &accs[ti]
		if a.sent == 0 {
			continue
		}
		st := &ph.sis[ti].stats[s]
		st.sent += a.sent
		st.served += a.served
		st.dropped += a.dropped
		st.healthy += a.healthy
		st.shed += a.shed
		st.bytes += a.bytes
		sh.sent += a.sent
		sh.served += a.served
		sh.dropped += a.dropped
		sh.healthy += a.healthy
		sh.bytes += a.bytes
	}
}

// RunBaseline executes the phase on the pre-shard serial path: a
// per-packet candidate scan with the monitor probing every node inline.
// It is the before-side of the fleet3 control-plane benchmark and the
// behavioral oracle for the fast path.
func (ph *Phase) RunBaseline() (PhaseStats, error) {
	if ph.multi != nil {
		return PhaseStats{}, fmt.Errorf("fleet: baseline path does not serve co-resident phases")
	}
	c := ph.c
	start := c.now
	before := c.RouterStats()
	c.router.resetWindow()
	for i, p := range ph.pkts {
		at := start + ph.arrivals[i]
		if at > start+ph.dur {
			break
		}
		// Fire every heartbeat due before this packet.
		c.RunMonitorUntil(at)
		_, _ = c.routeBaseline(at, ph.t.Service, p) // drops are part of the result
	}
	c.RunMonitorUntil(start + ph.dur)
	return ph.stats(start, before, c.router.base.lat), nil
}

// percentiler is the latency window view PhaseStats needs: the sharded
// path's merged histogram or the baseline's exact sample buffer.
type percentiler interface {
	Percentile(p float64) sim.Time
}

// stats assembles PhaseStats from the counter delta and the phase's
// latency window.
func (ph *Phase) stats(start sim.Time, before RouterSnapshot, lat percentiler) PhaseStats {
	c := ph.c
	after := c.RouterStats()
	elapsed := c.now - start
	stats := PhaseStats{
		From: start, To: c.now,
		Sent:    after.Sent - before.Sent,
		Served:  after.Served - before.Served,
		Dropped: after.Dropped - before.Dropped,
		Bytes:   after.Bytes - before.Bytes,
		P50:     lat.Percentile(50),
		P99:     lat.Percentile(99),
	}
	stats.GoodputGbps = metrics.Gbps(stats.Bytes, elapsed)
	stats.QPS = metrics.Rate(stats.Served, elapsed)
	return stats
}

// compatiblePlatforms lists catalog devices able to host the service,
// in catalog order.
func compatiblePlatforms(svc Service) []*platform.Device {
	var out []*platform.Device
	for _, name := range platform.CatalogNames() {
		dev, err := platform.Lookup(name)
		if err != nil {
			continue
		}
		if _, err := adaptDemands(dev, svc.Demands); err != nil {
			continue
		}
		if svc.MinPCIeGen > 0 {
			p, ok := dev.PCIe()
			if !ok || p.PCIeGen < svc.MinPCIeGen {
				continue
			}
		}
		out = append(out, dev)
	}
	return out
}

// BuildCluster is the single-application convenience over
// BuildCoResidentCluster: it commissions a heterogeneous fleet of n
// devices (cycling the compatible catalog models) hosting `replicas`
// replicas of one named application, and places them. Co-resident
// deployments — several services with distinct demand sets sharing the
// fleet — go through BuildCoResidentCluster directly.
func BuildCluster(cfg Config, appName string, n, replicas int) (*Cluster, error) {
	info, err := apps.Lookup(appName)
	if err != nil {
		return nil, err
	}
	return BuildServiceCluster(cfg, AppService(info, replicas, net.IPv4(20, 0, 0, 1)), n)
}

// BuildServiceCluster commissions a heterogeneous fleet of n devices
// hosting the given service (which may carry stateful-LB settings
// AppService does not produce), and places its replicas.
func BuildServiceCluster(cfg Config, svc Service, n int) (*Cluster, error) {
	return BuildCoResidentCluster(cfg, []Service{svc}, n)
}

// BuildCoResidentCluster commissions a heterogeneous fleet of n devices
// shared by every given service — the paper's multi-tenant deployment
// shape. Services register first so their merged demand set shapes
// every shell; the device mix cycles the catalog models compatible
// with *all* services (each service's demands and PCIe floor must
// adapt), and placement bin-packs all services' replicas together,
// anti-affinity spreading each service across the shared nodes.
func BuildCoResidentCluster(cfg Config, svcs []Service, n int) (*Cluster, error) {
	if len(svcs) == 0 {
		return nil, fmt.Errorf("fleet: co-resident cluster needs at least one service")
	}
	c, err := NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	for _, svc := range svcs {
		if err := c.AddService(svc); err != nil {
			return nil, err
		}
	}
	// Intersect per-service compatibility, keeping catalog order from
	// the first service's list.
	models := compatiblePlatforms(svcs[0])
	for _, svc := range svcs[1:] {
		ok := map[string]bool{}
		for _, d := range compatiblePlatforms(svc) {
			ok[d.Name] = true
		}
		kept := models[:0]
		for _, d := range models {
			if ok[d.Name] {
				kept = append(kept, d)
			}
		}
		models = kept
	}
	if len(models) == 0 {
		names := make([]string, len(svcs))
		for i, svc := range svcs {
			names[i] = svc.Name
		}
		return nil, fmt.Errorf("fleet: no catalog device can host all of %v", names)
	}
	for i := 0; i < n; i++ {
		model := models[i%len(models)]
		// Each node gets its own platform instance (catalog returns
		// fresh copies per Lookup).
		plat, err := platform.Lookup(model.Name)
		if err != nil {
			return nil, err
		}
		id := fmt.Sprintf("node-%02d-%s", i+1, plat.Name)
		if _, err := c.Commission(id, plat); err != nil {
			return nil, err
		}
	}
	if _, err := c.Place(0); err != nil {
		return nil, err
	}
	return c, nil
}

// ScalePoint is one scale-out sweep measurement.
type ScalePoint struct {
	Devices  int
	Replicas int
	PhaseStats
}

// ScaleOut sweeps the fleet from 1 to maxDevices devices (one replica
// per device), offering load proportional to the fleet size, and
// reports aggregate throughput at each size. Aggregate Gbps growing
// with device count is the scale-out property the bench asserts.
func ScaleOut(cfg Config, appName string, maxDevices int, t Traffic) ([]ScalePoint, error) {
	if maxDevices <= 0 {
		return nil, fmt.Errorf("fleet: invalid sweep size %d", maxDevices)
	}
	perDevice := t.OfferedGbps
	var out []ScalePoint
	for n := 1; n <= maxDevices; n++ {
		c, err := BuildCluster(cfg, appName, n, n)
		if err != nil {
			return out, err
		}
		// Let every slot finish reconfiguring before offering load.
		c.RunMonitorUntil(cfg.ReconfigTime * 2)
		phase := t
		phase.OfferedGbps = perDevice * float64(n)
		stats, err := c.Serve(400*sim.Microsecond, phase)
		if err != nil {
			return out, err
		}
		out = append(out, ScalePoint{Devices: n, Replicas: n, PhaseStats: stats})
	}
	return out, nil
}

// DrillResult reports a kill-a-device drill.
type DrillResult struct {
	Devices int
	Killed  string
	// FaultAt is when the device died; DetectedAt when the monitor
	// declared it failed; RecoveredAt when its last replica finished
	// re-placing. RecoveryTime = RecoveredAt - FaultAt.
	FaultAt, DetectedAt, RecoveredAt sim.Time
	RecoveryTime                     sim.Time
	// Moved/Replaced/Unplaced count the failed device's tenants.
	Moved, Replaced, Unplaced int
	// Pre/Post are the serving phases before the fault and after
	// recovery; throughput recovering toward Pre is the drill's pass
	// signal.
	Pre, Post   PhaseStats
	Transitions []Transition
}

// KillDrill builds an n-device fleet, serves traffic, silently kills
// the most loaded device mid-run, and measures detection, re-placement
// and throughput recovery. The survivors must have spare slots, so the
// drill runs n replicas on n devices with anti-affinity spreading them
// one-per-device beforehand.
func KillDrill(cfg Config, appName string, n int, t Traffic) (*DrillResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("fleet: kill drill needs at least 2 devices, got %d", n)
	}
	c, err := BuildCluster(cfg, appName, n, n)
	if err != nil {
		return nil, err
	}
	c.RunMonitorUntil(cfg.ReconfigTime * 2)

	pre, err := c.Serve(300*sim.Microsecond, t)
	if err != nil {
		return nil, err
	}

	// Kill the device hosting the most replicas (lowest ID breaks ties).
	nodes := c.Nodes()
	sort.Slice(nodes, func(i, j int) bool {
		if li, lj := len(nodes[i].replicas), len(nodes[j].replicas); li != lj {
			return li > lj
		}
		return nodes[i].ID < nodes[j].ID
	})
	victim := nodes[0]
	faultAt := c.Now()
	if err := c.Kill(victim.ID); err != nil {
		return nil, err
	}

	// Serve through detection + reconfiguration: the router sheds load
	// to the survivors while the monitor counts missed heartbeats. With
	// cohort heartbeats the victim is only probed every C-th tick, so
	// the detection budget scales with the cohort count.
	cohorts := cfg.HeartbeatCohorts
	if cohorts < 1 {
		cohorts = 1
	}
	detectBudget := sim.Time((cfg.FailedAfter+2)*cohorts)*cfg.Heartbeat + 2*cfg.ReconfigTime
	mid := t
	mid.Seed = t.Seed + 100
	if _, err := c.Serve(detectBudget, mid); err != nil {
		return nil, err
	}
	var report *FailoverReport
	for i := range c.failovers {
		if c.failovers[i].Node == victim.ID {
			report = &c.failovers[i]
			break
		}
	}
	if report == nil {
		return nil, fmt.Errorf("fleet: %s was never declared failed", victim.ID)
	}

	post := t
	post.Seed = t.Seed + 200
	postStats, err := c.Serve(300*sim.Microsecond, post)
	if err != nil {
		return nil, err
	}

	return &DrillResult{
		Devices: n, Killed: victim.ID,
		FaultAt: faultAt, DetectedAt: report.DetectedAt, RecoveredAt: report.RecoveredAt,
		RecoveryTime: report.Recovery(faultAt),
		Moved:        report.Moved, Replaced: report.Replaced, Unplaced: report.Unplaced,
		Pre: pre, Post: postStats,
		Transitions: c.Transitions(),
	}, nil
}
