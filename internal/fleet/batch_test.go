package fleet

import (
	"bytes"
	"strings"
	"testing"

	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// batchPhases runs the determinism workload (clean phase + mid-phase
// kill) with an explicit batch quantum and worker count, returning
// both PhaseStats and the exported trace bytes.
func batchPhases(t *testing.T, quantum, workers int) (PhaseStats, PhaseStats, []byte) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RouterShards = 4
	cfg.BatchQuantum = quantum
	cfg.ServeWorkers = workers
	c, err := BuildCluster(cfg, testApp, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	c.SetTrace(rec.Process("fleet"))
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	tr := DefaultTraffic(testApp)
	tr.OfferedGbps = 200
	first, err := c.Serve(120*sim.Microsecond, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(c.Nodes()[2].ID); err != nil {
		t.Fatal(err)
	}
	tr2 := tr
	tr2.Seed = tr.Seed + 50
	second, err := c.Serve(
		sim.Time(cfg.FailedAfter+2)*cfg.Heartbeat+2*cfg.ReconfigTime, tr2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return first, second, buf.Bytes()
}

// TestBatchQuantumInvariant is the batched dispatch determinism
// contract: the quantum only chunks the barrier window — no
// control-plane work runs at a quantum split and the flow caches
// survive it — so same-seed PhaseStats AND trace bytes are
// byte-identical across quantum sizes and worker counts, including
// through a mid-phase failover.
func TestBatchQuantumInvariant(t *testing.T) {
	base1, base2, baseTrace := batchPhases(t, 0, 1)
	if base1.Served == 0 || base2.Served == 0 {
		t.Fatalf("phases served nothing: %+v / %+v", base1, base2)
	}
	for _, tc := range []struct{ quantum, workers int }{
		{1, 1}, {64, 1}, {64, 2}, {4096, 8}, {0, 8},
	} {
		got1, got2, trace := batchPhases(t, tc.quantum, tc.workers)
		if got1 != base1 || got2 != base2 {
			t.Errorf("quantum=%d workers=%d: stats diverge:\n base: %+v / %+v\n got:  %+v / %+v",
				tc.quantum, tc.workers, base1, base2, got1, got2)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Errorf("quantum=%d workers=%d: trace bytes diverge from base", tc.quantum, tc.workers)
		}
	}
}

// TestRouteUnknownService verifies Route rejects a service the cluster
// never commissioned before any router counter moves.
func TestRouteUnknownService(t *testing.T) {
	c, err := BuildCluster(DefaultConfig(), testApp, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := c.PreparePhase(sim.Millisecond, DefaultTraffic(testApp))
	if err != nil {
		t.Fatal(err)
	}
	now := 2 * c.Config().ReconfigTime
	c.advance(now)
	before := c.rawRouterStats()
	d, err := c.Route(now, "no-such-app", ph.pkts[0])
	if err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Fatalf("Route(unknown) err = %v, want unknown service", err)
	}
	if !d.Dropped {
		t.Errorf("Route(unknown) dispatch = %+v, want Dropped", d)
	}
	if after := c.rawRouterStats(); after != before {
		t.Errorf("unknown service moved router counters: before %+v, after %+v", before, after)
	}
}

// TestRouteNoReadyReplica verifies the zero-ready-replica path: once
// every node is dead the service is still known, so the packet counts
// as sent and dropped and the error names the service.
func TestRouteNoReadyReplica(t *testing.T) {
	cfg := DefaultConfig()
	c, err := BuildCluster(cfg, testApp, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := c.PreparePhase(sim.Millisecond, DefaultTraffic(testApp))
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	for _, n := range c.Nodes() {
		if err := c.Kill(n.ID); err != nil {
			t.Fatal(err)
		}
	}
	// Let the monitor confirm both deaths; with no survivors the
	// replicas stay unplaced and the ready set empties.
	now := c.Now() + sim.Time(cfg.FailedAfter+2)*cfg.Heartbeat + 2*cfg.ReconfigTime
	c.RunMonitorUntil(now)
	before := c.rawRouterStats()
	d, err := c.Route(now, testApp, ph.pkts[0])
	if err == nil || !strings.Contains(err.Error(), "no live replica") {
		t.Fatalf("Route(dead fleet) err = %v, want no live replica", err)
	}
	if !d.Dropped {
		t.Errorf("Route(dead fleet) dispatch = %+v, want Dropped", d)
	}
	after := c.rawRouterStats()
	if after.Sent != before.Sent+1 || after.Dropped != before.Dropped+1 {
		t.Errorf("drop not counted: before %+v, after %+v", before, after)
	}
	if after.Served != before.Served {
		t.Errorf("dead fleet served a packet: before %+v, after %+v", before, after)
	}
}

// TestWindowResetAcrossBarriers pins the latency-window lifecycle:
// each Serve phase starts a fresh window (resetWindow), windowHist
// merges exactly the packets served since, and a completed phase's
// window does not leak into the next one.
func TestWindowResetAcrossBarriers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RouterShards = 4
	c, err := BuildCluster(cfg, testApp, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	tr := DefaultTraffic(testApp)
	tr.OfferedGbps = 200
	first, err := c.Serve(120*sim.Microsecond, tr)
	if err != nil {
		t.Fatal(err)
	}
	if first.Served == 0 {
		t.Fatal("first phase served nothing")
	}
	if n := c.router.windowHist().Count(); n != first.Served {
		t.Errorf("window after first phase holds %d samples, want Served=%d", n, first.Served)
	}
	tr2 := tr
	tr2.Seed = tr.Seed + 1
	second, err := c.Serve(120*sim.Microsecond, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.router.windowHist().Count(); n != second.Served {
		t.Errorf("window after second phase holds %d samples, want Served=%d (first phase must not leak)",
			n, second.Served)
	}
	// The merged window is exact, so the phase percentiles must be
	// re-derivable from it at the barrier.
	if h := c.router.windowHist(); h.Percentile(99) != second.P99 {
		t.Errorf("window p99 %v != phase P99 %v", h.Percentile(99), second.P99)
	}
	// An explicit reset empties every shard's window.
	c.router.resetWindow()
	if n := c.router.windowHist().Count(); n != 0 {
		t.Errorf("window holds %d samples after resetWindow, want 0", n)
	}
}
