package fleet

import (
	"testing"

	"harmonia/internal/apps"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
)

const testApp = "layer4-lb"

// buildTest builds an n-device layer4-lb fleet with one replica per
// device, or fails the test.
func buildTest(t *testing.T, n, replicas int) *Cluster {
	t.Helper()
	c, err := BuildCluster(DefaultConfig(), testApp, n, replicas)
	if err != nil {
		t.Fatalf("BuildCluster: %v", err)
	}
	return c
}

func TestBuildClusterPlacesAndSpreads(t *testing.T) {
	c := buildTest(t, 3, 3)
	if got := len(c.Nodes()); got != 3 {
		t.Fatalf("commissioned %d nodes, want 3", got)
	}
	for _, n := range c.Nodes() {
		if n.State() != Healthy {
			t.Errorf("%s state = %s, want healthy", n.ID, n.State())
		}
		if n.Slots() == 0 {
			t.Errorf("%s has no PR slots", n.ID)
		}
		// Anti-affinity: 3 replicas over 3 devices must spread 1:1:1,
		// not bin-pack onto the first device.
		if got := len(n.Replicas()); got != 1 {
			t.Errorf("%s hosts %d replicas, want 1 (anti-affinity)", n.ID, got)
		}
	}
	for _, r := range c.Replicas() {
		if r.Node == "" {
			t.Errorf("replica %s unplaced", r.Name())
		}
		if want := c.Config().ReconfigTime; r.ReadyAt != want {
			t.Errorf("replica %s ReadyAt = %v, want %v (one PR load)", r.Name(), r.ReadyAt, want)
		}
	}
}

func TestPlacementPacksBeyondDeviceCount(t *testing.T) {
	// 6 replicas over 3 devices: anti-affinity spreads 2 per device.
	c := buildTest(t, 3, 6)
	for _, n := range c.Nodes() {
		if got := len(n.Replicas()); got != 2 {
			t.Errorf("%s hosts %d replicas, want 2", n.ID, got)
		}
	}
}

func TestCommissionAdaptsHeterogeneousMemory(t *testing.T) {
	// layer4-lb demands HBM. device-b carries only DDR4 — commissioning
	// must fall back rather than reject the card.
	info, err := apps.Lookup(testApp)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(AppService(info, 1, net.IPv4(20, 0, 0, 1))); err != nil {
		t.Fatal(err)
	}
	plat, err := platform.Lookup("device-b")
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Commission("b-1", plat)
	if err != nil {
		t.Fatalf("Commission(device-b): %v", err)
	}
	if n.Slots() == 0 {
		t.Error("device-b supports no slots after URAM folding")
	}

	// device-c has no memory banks at all: no fallback exists.
	platC, err := platform.Lookup("device-c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commission("c-1", platC); err == nil {
		t.Error("Commission(device-c) succeeded; want memory-demand rejection")
	}
}

func TestKillFailoverLeavesVictimEmpty(t *testing.T) {
	// The acceptance drill: kill a device mid-run and verify the control
	// plane detects it over the command path, re-places every tenant on
	// the survivors and leaves zero placements on the corpse.
	c := buildTest(t, 3, 3)
	cfg := c.Config()
	c.RunMonitorUntil(2 * cfg.ReconfigTime)

	victim := c.Nodes()[0].ID
	faultAt := c.Now()
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// Detection needs FailedAfter consecutive missed heartbeats; run the
	// monitor well past that.
	c.RunMonitorUntil(faultAt + sim.Time(cfg.FailedAfter+2)*cfg.Heartbeat)

	n, err := c.Node(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n.State() != Drained {
		t.Fatalf("victim state = %s, want drained", n.State())
	}
	if got := len(c.ReplicasOn(victim)); got != 0 {
		t.Fatalf("%d placements remain on failed device %s, want 0", got, victim)
	}
	for _, r := range c.Replicas() {
		if r.Node == victim {
			t.Errorf("replica %s still assigned to failed device", r.Name())
		}
		if r.Node == "" {
			t.Errorf("replica %s unplaced after failover", r.Name())
		}
	}

	reports := c.Failovers()
	if len(reports) != 1 {
		t.Fatalf("got %d failover reports, want 1", len(reports))
	}
	rep := reports[0]
	if rep.Node != victim {
		t.Errorf("failover report names %s, want %s", rep.Node, victim)
	}
	if rep.Moved != 1 || rep.Replaced != 1 || rep.Unplaced != 0 {
		t.Errorf("moved/replaced/unplaced = %d/%d/%d, want 1/1/0",
			rep.Moved, rep.Replaced, rep.Unplaced)
	}
	if rec := rep.Recovery(faultAt); rec <= 0 {
		t.Errorf("recovery time = %v, want > 0", rec)
	} else if rec < cfg.ReconfigTime {
		t.Errorf("recovery time %v below one PR load %v", rec, cfg.ReconfigTime)
	}
}

func TestCutLinkFailsImmediately(t *testing.T) {
	// Link-down arrives over the irq path, bypassing heartbeat latency:
	// the node must fail at the event time, not a heartbeat later.
	c := buildTest(t, 2, 2)
	c.RunMonitorUntil(2 * c.Config().ReconfigTime)
	victim := c.Nodes()[1].ID
	at := c.Now()
	if err := c.CutLink(at, victim); err != nil {
		t.Fatal(err)
	}
	n, _ := c.Node(victim)
	if n.State() != Drained {
		t.Fatalf("victim state = %s, want drained (no heartbeat wait)", n.State())
	}
	reports := c.Failovers()
	if len(reports) != 1 || reports[0].DetectedAt != at {
		t.Fatalf("detection at %v, want %v (irq path)", reports[0].DetectedAt, at)
	}
}

func TestOverheatDegradesThenRecovers(t *testing.T) {
	c := buildTest(t, 2, 2)
	cfg := c.Config()
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	id := c.Nodes()[0].ID
	if err := c.Overheat(id, 80_000); err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(c.Now() + 2*cfg.Heartbeat)
	n, _ := c.Node(id)
	if n.State() != Degraded {
		t.Fatalf("state after overheat = %s, want degraded", n.State())
	}
	if n.LastTemp() < cfg.DegradeMilliC {
		t.Errorf("last heartbeat temp %d below threshold %d", n.LastTemp(), cfg.DegradeMilliC)
	}
	// Degraded devices keep their placements (they still serve) but take
	// no new ones.
	if got := len(n.Replicas()); got != 1 {
		t.Errorf("degraded node lost its replica (have %d)", got)
	}
	if err := c.canHost(n, c.services[testApp]); err == nil {
		t.Error("degraded node accepted for new placement")
	}

	if err := c.Cool(id); err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(c.Now() + 2*cfg.Heartbeat)
	if n.State() != Healthy {
		t.Fatalf("state after cooling = %s, want healthy", n.State())
	}
}

func TestDrainNodeEvacuatesPlanned(t *testing.T) {
	c := buildTest(t, 3, 3)
	cfg := c.Config()
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	id := c.Nodes()[2].ID
	rep, err := c.DrainNode(c.Now(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved != 1 || rep.Replaced != 1 {
		t.Errorf("moved/replaced = %d/%d, want 1/1", rep.Moved, rep.Replaced)
	}
	n, _ := c.Node(id)
	if n.State() != Drained {
		t.Errorf("state = %s, want drained", n.State())
	}
	if got := len(c.ReplicasOn(id)); got != 0 {
		t.Errorf("%d replicas remain on drained node", got)
	}
	// A drained node is live: the tenancy manager really evicted, so its
	// slots are free again.
	if free := n.Tenants.FreeSlots(); free != n.Slots() {
		t.Errorf("drained node has %d free slots, want %d", free, n.Slots())
	}
}

func TestRouteAvoidsDeadDevice(t *testing.T) {
	c := buildTest(t, 3, 3)
	cfg := c.Config()
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	victim := c.Nodes()[0].ID
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(c.Now() + sim.Time(cfg.FailedAfter+2)*cfg.Heartbeat)
	// Wait out the replacement replica's reconfiguration.
	c.RunMonitorUntil(c.Now() + 2*cfg.ReconfigTime)

	tr := DefaultTraffic(testApp)
	stats, err := c.Serve(100*sim.Microsecond, tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served == 0 {
		t.Fatal("no packets served after failover")
	}
	if stats.Dropped != 0 {
		t.Errorf("%d drops routing around a drained device", stats.Dropped)
	}
	// The drained device's datapath must have taken nothing.
	for _, ns := range c.Fleet(c.Now()) {
		if ns.ID == victim && ns.Served != 0 {
			t.Errorf("dead device %s served %d packets", victim, ns.Served)
		}
	}
}

func TestServeAggregateThroughput(t *testing.T) {
	c := buildTest(t, 2, 2)
	c.RunMonitorUntil(2 * c.Config().ReconfigTime)
	tr := DefaultTraffic(testApp)
	stats, err := c.Serve(200*sim.Microsecond, tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served == 0 || stats.GoodputGbps <= 0 {
		t.Fatalf("served=%d goodput=%.1f, want traffic flowing", stats.Served, stats.GoodputGbps)
	}
	if stats.P99 < stats.P50 {
		t.Errorf("p99 %v below p50 %v", stats.P99, stats.P50)
	}
	// Both replicas should take a share under two-choice balancing.
	for _, ns := range c.Fleet(c.Now()) {
		if ns.Served == 0 {
			t.Errorf("device %s served nothing under balanced dispatch", ns.ID)
		}
	}
}

func TestScaleOutThroughputGrows(t *testing.T) {
	pts, err := ScaleOut(DefaultConfig(), testApp, 3, DefaultTraffic(testApp))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d sweep points, want 3", len(pts))
	}
	for i, p := range pts {
		if p.Devices != i+1 || p.GoodputGbps <= 0 {
			t.Fatalf("point %d: devices=%d goodput=%.1f", i, p.Devices, p.GoodputGbps)
		}
	}
	// The acceptance shape: aggregate throughput grows with device count.
	if pts[2].GoodputGbps <= pts[0].GoodputGbps*1.5 {
		t.Errorf("3-device goodput %.1f Gbps not meaningfully above 1-device %.1f Gbps",
			pts[2].GoodputGbps, pts[0].GoodputGbps)
	}
}

func TestKillDrillDeterministic(t *testing.T) {
	run := func() *DrillResult {
		t.Helper()
		d, err := KillDrill(DefaultConfig(), testApp, 3, DefaultTraffic(testApp))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := run(), run()
	if a.Killed != b.Killed || a.RecoveryTime != b.RecoveryTime ||
		a.Pre.Served != b.Pre.Served || a.Post.Served != b.Post.Served {
		t.Errorf("drill not reproducible:\n a=%+v\n b=%+v", a, b)
	}
	if a.RecoveryTime <= 0 {
		t.Errorf("recovery time = %v, want > 0", a.RecoveryTime)
	}
	if a.Moved == 0 || a.Replaced != a.Moved || a.Unplaced != 0 {
		t.Errorf("moved/replaced/unplaced = %d/%d/%d, want full re-placement",
			a.Moved, a.Replaced, a.Unplaced)
	}
	if a.Post.Served == 0 {
		t.Error("no traffic served after recovery")
	}
}

func TestPlaceRejectsUnsatisfiableService(t *testing.T) {
	info, err := apps.Lookup(testApp)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc := AppService(info, 1, net.IPv4(20, 0, 0, 1))
	svc.MinPCIeGen = 5 // no catalog card reaches gen5
	if err := c.AddService(svc); err != nil {
		t.Fatal(err)
	}
	plat, err := platform.Lookup("device-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commission("a-1", plat); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(0); err == nil {
		t.Error("Place succeeded with an unsatisfiable PCIe floor")
	}
}
