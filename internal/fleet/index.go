package fleet

import (
	"harmonia/internal/metrics"
	"harmonia/internal/sim"
)

// The replica index maintains, incrementally, the per-service set of
// dispatchable replicas — the same set candidates() derives by scanning
// every replica — so the router's fast path never walks the fleet per
// packet. The index is partitioned by router shard: each shard owns the
// replicas placed on its nodes, and a shard's ready list is read-only
// between control-plane barriers (heartbeat ticks), which is what lets
// Serve's packet loop run shards in parallel without locks.
//
// Maintenance points:
//   - admit: a freshly placed replica is pending until its slot
//     reconfiguration completes (ReadyAt), then matures into its
//     shard's ready list at the next control-plane tick;
//   - eviction/failover: the replica leaves its shard's ready list (and
//     any stale pending entry is invalidated lazily);
//   - health transitions: a node leaving the routable states (healthy,
//     degraded) takes all its ready replicas with it.

// routable reports whether a node in this state takes traffic; the
// policy lives on the cluster (derived shedding excludes degraded
// nodes) so the index and the naive scan always agree.
func (idx *replicaIndex) routable(s State) bool { return idx.c.routableState(s) }

// pendingEntry is a replica waiting out its slot reconfiguration. The
// placement snapshot (node, readyAt) invalidates the entry lazily when
// the replica has been moved or evicted before maturing.
type pendingEntry struct {
	r       *Replica
	node    string
	readyAt sim.Time
}

// svcShardStats is one (service, shard) dispatch counter set. Each
// shard's worker owns its entry between control-plane barriers (the
// same ownership rule as routerShard), so per-service accounting rides
// the batched path without locks; shed counts drops caused by the
// class shedding order (bulk excluded from thermally eroded nodes),
// a subset of dropped.
type svcShardStats struct {
	sent, served, dropped int64
	healthy               int64
	shed                  int64
	bytes                 int64
	// hist is the service's share of the current measurement window's
	// latency distribution.
	hist metrics.Histogram
}

// svcIndex is one service's dispatchable replicas, per router shard.
type svcIndex struct {
	// ready holds the matured, routable replicas of each shard, in
	// maturation order (deterministic: all mutations happen on the
	// serial control-plane path).
	ready [][]*Replica
	// active lists shard ids with a non-empty ready list, ascending —
	// the flow-hash remap target set, so flows never hash onto a shard
	// that has nothing to serve.
	active []int
	// disp holds each shard's flattened dispatch view (router.go). The
	// slice is sized here, on the serial path, so the per-shard lazy
	// rebuilds only ever index into it — workers never append.
	disp []shardDisp
	// bulk mirrors the service's class (fleet.go): bulk services are
	// excluded from nodes past the bulk-shed line when the dispatch view
	// rebuilds.
	bulk bool
	// stats holds the per-shard service counters, sized on the serial
	// path like disp.
	stats []svcShardStats
}

// replicaIndex is the cluster-wide incremental index.
type replicaIndex struct {
	c      *Cluster
	shards int
	frozen bool
	svcs   map[string]*svcIndex
	// pending is a min-heap on readyAt (hand-rolled, by value).
	pending []pendingEntry
}

func newReplicaIndex(c *Cluster) *replicaIndex {
	return &replicaIndex{c: c, svcs: make(map[string]*svcIndex)}
}

// freeze fixes the shard count and builds the index from the current
// placement state. Until the first routing operation freezes the
// router, placement churn is absorbed here in one pass instead of
// being tracked incrementally.
func (idx *replicaIndex) freeze(shards int) {
	idx.shards = shards
	idx.frozen = true
	idx.svcs = make(map[string]*svcIndex)
	idx.pending = idx.pending[:0]
	for _, r := range idx.c.replicas {
		if r.Node == "" {
			continue
		}
		idx.noteAdmit(r, idx.c.now)
	}
}

// svc returns (creating if needed) one service's index.
func (idx *replicaIndex) svc(name string) *svcIndex {
	si, ok := idx.svcs[name]
	if !ok {
		si = &svcIndex{
			ready: make([][]*Replica, idx.shards),
			disp:  make([]shardDisp, idx.shards),
			stats: make([]svcShardStats, idx.shards),
		}
		if s, ok := idx.c.services[name]; ok {
			si.bulk = s.Class == ClassBulk
		}
		idx.svcs[name] = si
	}
	return si
}

// addReady appends a matured replica to its shard's ready list. Any
// ready-list change is a placement transition: the dispatch epoch
// bumps so stale shard views and flow caches die lazily.
func (idx *replicaIndex) addReady(r *Replica, shard int) {
	si := idx.svc(r.Service)
	if len(si.ready[shard]) == 0 {
		si.activate(shard)
	}
	si.ready[shard] = append(si.ready[shard], r)
	idx.c.router.bumpEpoch()
}

// activate inserts a shard id into the sorted active list.
func (si *svcIndex) activate(shard int) {
	i := 0
	for i < len(si.active) && si.active[i] < shard {
		i++
	}
	si.active = append(si.active, 0)
	copy(si.active[i+1:], si.active[i:])
	si.active[i] = shard
}

// deactivate removes a shard id from the active list.
func (si *svcIndex) deactivate(shard int) {
	for i, s := range si.active {
		if s == shard {
			si.active = append(si.active[:i], si.active[i+1:]...)
			return
		}
	}
}

// noteAdmit indexes a replica the placement scheduler just admitted (or,
// during freeze, an existing placement): pending until ReadyAt, ready
// immediately when its reconfiguration already completed.
func (idx *replicaIndex) noteAdmit(r *Replica, now sim.Time) {
	if !idx.frozen {
		return
	}
	n := idx.c.byID[r.Node]
	if r.ReadyAt > now {
		idx.pushPending(pendingEntry{r: r, node: r.Node, readyAt: r.ReadyAt})
		return
	}
	if idx.routable(n.state) {
		idx.addReady(r, n.shard)
	}
}

// noteRemove drops a replica leaving a node (eviction, failover). The
// ready list keeps its relative order so routing stays deterministic;
// a pending entry, if any, dies lazily on maturation.
func (idx *replicaIndex) noteRemove(r *Replica, n *Node) {
	if !idx.frozen {
		return
	}
	si, ok := idx.svcs[r.Service]
	if !ok {
		return
	}
	list := si.ready[n.shard]
	for i, have := range list {
		if have == r {
			si.ready[n.shard] = append(list[:i], list[i+1:]...)
			if len(si.ready[n.shard]) == 0 {
				si.deactivate(n.shard)
			}
			idx.c.router.bumpEpoch()
			return
		}
	}
}

// noteState reacts to a node health transition: leaving the routable
// states removes every ready replica on the node; re-entering them
// (derived shedding: degraded → healthy with placements intact) puts
// matured replicas back. A replica still reconfiguring keeps its
// pending entry and matures normally; one whose pending entry was
// discarded while the node was unroutable re-enters here, and no
// double-add is possible because maturation ran before this transition
// on the same control-plane tick.
func (idx *replicaIndex) noteState(n *Node, from, to State) {
	if !idx.frozen || idx.routable(from) == idx.routable(to) {
		return
	}
	if idx.routable(to) {
		for _, r := range n.Replicas() {
			if r.ReadyAt <= idx.c.now {
				idx.addReady(r, n.shard)
			}
		}
		return
	}
	for _, r := range n.replicas {
		idx.noteRemove(r, n)
	}
}

// mature moves pending replicas whose reconfiguration completed by now
// into their shard's ready list. Runs at control-plane ticks; O(1) when
// nothing is due.
func (idx *replicaIndex) mature(now sim.Time) {
	if !idx.frozen {
		return
	}
	for len(idx.pending) > 0 && idx.pending[0].readyAt <= now {
		e := idx.popPending()
		// Stale entries: the replica moved or was evicted before
		// maturing, or its node stopped taking traffic.
		if e.r.Node != e.node || e.r.ReadyAt != e.readyAt {
			continue
		}
		n := idx.c.byID[e.node]
		if !idx.routable(n.state) {
			continue
		}
		idx.addReady(e.r, n.shard)
	}
}

// candidatesOf lists every indexed ready replica of a service across
// shards, for oracle cross-checking against the naive scan.
func (idx *replicaIndex) candidatesOf(svc string) []*Replica {
	si, ok := idx.svcs[svc]
	if !ok {
		return nil
	}
	var out []*Replica
	for _, s := range si.active {
		out = append(out, si.ready[s]...)
	}
	return out
}

// pushPending adds an entry to the readyAt min-heap.
func (idx *replicaIndex) pushPending(e pendingEntry) {
	idx.pending = append(idx.pending, e)
	i := len(idx.pending) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if idx.pending[parent].readyAt <= idx.pending[i].readyAt {
			break
		}
		idx.pending[i], idx.pending[parent] = idx.pending[parent], idx.pending[i]
		i = parent
	}
}

// popPending removes the earliest entry from the readyAt min-heap.
func (idx *replicaIndex) popPending() pendingEntry {
	top := idx.pending[0]
	n := len(idx.pending) - 1
	idx.pending[0] = idx.pending[n]
	idx.pending[n] = pendingEntry{}
	idx.pending = idx.pending[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && idx.pending[right].readyAt < idx.pending[left].readyAt {
			least = right
		}
		if idx.pending[i].readyAt <= idx.pending[least].readyAt {
			break
		}
		idx.pending[i], idx.pending[least] = idx.pending[least], idx.pending[i]
		i = least
	}
	return top
}
