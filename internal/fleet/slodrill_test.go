package fleet

import (
	"strings"
	"testing"

	"harmonia/internal/hdl"
	"harmonia/internal/obs"
)

// TestSLOEngineRules verifies rule derivation at service registration:
// latency-critical services with an availability objective get the
// fast page pair plus the slow ticket pair, bulk services only the
// ticket pair, and services without an objective no rules at all.
func TestSLOEngineRules(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SLOWindowTicks = []int{2, 8, 24, 48}
	cfg.SlotRes = hdl.Resources{LUT: 200_000, REG: 300_000, BRAM: 512, URAM: 96, DSP: 2_048}
	svcs, err := coresServices(16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildCoResidentCluster(cfg, svcs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.SLOWindows()); got != 4 {
		t.Fatalf("SLOWindows = %d, want 4", got)
	}
	if name := c.SLOWindows()[0].Name; name != "2t" {
		t.Errorf("fastest window named %q, want 2t", name)
	}
	rules := map[string]map[obs.AlertSeverity]int{}
	for _, r := range c.AlertRules() {
		if rules[r.Service] == nil {
			rules[r.Service] = map[obs.AlertSeverity]int{}
		}
		rules[r.Service][r.Severity]++
	}
	for _, svc := range svcs {
		got := rules[svc.Name]
		switch {
		case svc.SLO.Availability <= 0:
			if len(got) != 0 {
				t.Errorf("service %s without objective has rules %v", svc.Name, got)
			}
		case svc.Class == ClassLatencyCritical:
			if got[obs.SeverityPage] != 1 || got[obs.SeverityTicket] != 1 {
				t.Errorf("lc service %s rules = %v, want one page + one ticket", svc.Name, got)
			}
		default:
			if got[obs.SeverityPage] != 0 || got[obs.SeverityTicket] != 1 {
				t.Errorf("bulk service %s rules = %v, want ticket only", svc.Name, got)
			}
		}
	}
	// Unknown services read as unburned budget, not as a panic.
	if b := c.BurnRate("nope", 0); b != 0 {
		t.Errorf("BurnRate(unknown) = %v, want 0", b)
	}
	if r := c.ErrorBudgetRemaining("nope", 0); r != 1 {
		t.Errorf("ErrorBudgetRemaining(unknown) = %v, want 1", r)
	}
}

// TestSLODrill runs the fleet10 drill at its tentpole configuration
// and asserts every acceptance gate directly on the fleet-level
// result: attributed latency-critical firings, a silent fault-free
// control, resolution inside the recovery bound, and byte-identical
// alert state across the quantum/worker sweep.
func TestSLODrill(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet10 drill replays the storm four times; skipped in -short")
	}
	res, err := SLODrill(DefaultSLOOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.FiringsLC < 1 {
		t.Errorf("storm fired %d latency-critical alerts, want >= 1", res.FiringsLC)
	}
	if res.FiringsTotal < res.FiringsLC {
		t.Errorf("FiringsTotal %d < FiringsLC %d", res.FiringsTotal, res.FiringsLC)
	}
	if res.UnattributedFirings != 0 {
		t.Errorf("%d firings with no scheduled-fault attribution:\n%s",
			res.UnattributedFirings, res.Timeline)
	}
	if res.ControlFirings != 0 || res.ControlAttributions != 0 {
		t.Errorf("fault-free control produced %d firings / %d attributions, want 0/0",
			res.ControlFirings, res.ControlAttributions)
	}
	if !res.AllResolved {
		t.Errorf("alerts still active at drill end:\n%s", res.AlertLog)
	}
	if res.LastResolvedAt > res.RecoveryBound {
		t.Errorf("last resolution at %v, after recovery bound %v", res.LastResolvedAt, res.RecoveryBound)
	}
	if !res.DeterministicSweep {
		t.Errorf("alert state diverged across sweep %v", res.SweepVariants)
	}
	if len(res.Postmortems) != res.FiringsTotal {
		t.Errorf("%d postmortems for %d firings", len(res.Postmortems), res.FiringsTotal)
	}
	if !strings.Contains(res.Timeline, "POSTMORTEM") ||
		!strings.Contains(res.Timeline, "[scheduled]") {
		t.Errorf("timeline lacks attributed postmortems:\n%s", res.Timeline)
	}
	if len(res.Samples) == 0 {
		t.Fatal("drill recorded no windows")
	}
	// The alert log renders one line per transition, every firing
	// preceded by a pending line for the same service.
	if got := strings.Count(res.AlertLog, "state=firing"); got != res.FiringsTotal {
		t.Errorf("alert log has %d firing lines, result says %d", got, res.FiringsTotal)
	}
}
