package fleet

import (
	"fmt"

	"harmonia/internal/gossip"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// Gossip-mode health monitoring: with Config.GossipHealth set, each
// Heartbeat tick runs one round of the SWIM-style detector instead of
// sweeping a cohort. The detector's direct probes are the same
// command-path CheckHealth the central sweep issued — temperature
// readback, thermal-recovery detection and connection-table snapshot
// pacing all ride on them — and its piggybacked digests carry peers'
// data-plane liveness observations. A Confirmed event (FailedAfter
// consecutive missed direct probes) feeds the exact failNode path the
// central sweep used, so evacuation, re-placement and the failover
// report are untouched; a false suspicion resolves to a Refuted event
// with an incarnation bump and never reaches failover.

// GossipEvent is one fleet-level protocol event: a node entering
// suspicion, defending itself, or being confirmed dead.
type GossipEvent struct {
	At   sim.Time
	Node string
	// Kind is "suspected", "refuted" or "confirmed".
	Kind string
	// Incarnation is the node's incarnation number after the event.
	Incarnation uint32
}

// ensureGossip lazily builds the detector over the commission order.
// Built on the first gossip-mode tick so the whole initial fleet forms
// one membership; nodes commissioned later join via Add.
func (c *Cluster) ensureGossip() *gossip.Group {
	if c.gossip != nil {
		return c.gossip
	}
	gc := gossip.DefaultConfig(c.cfg.Seed)
	gc.FailedAfter = c.cfg.FailedAfter
	if c.cfg.GossipFanout > 0 {
		gc.Fanout = c.cfg.GossipFanout
	}
	if c.cfg.GossipPiggyback > 0 {
		gc.Piggyback = c.cfg.GossipPiggyback
	}
	if c.cfg.SuspectAfter > 0 {
		gc.SuspectAfter = c.cfg.SuspectAfter
	}
	g, err := gossip.New(len(c.nodes), gc)
	if err != nil {
		// NewCluster validated every knob and the fleet is non-empty by
		// the first heartbeat.
		panic(fmt.Sprintf("fleet: gossip group: %v", err))
	}
	for i, n := range c.nodes {
		if n.state == Failed || n.state == Drained {
			g.MarkDead(i)
		}
	}
	c.gossip = g
	return g
}

// gossipHeartbeat runs one detector round at now and applies its
// events to the fleet state machine.
func (c *Cluster) gossipHeartbeat(now sim.Time) []Transition {
	before := len(c.transitions)
	g := c.ensureGossip()
	probed := 0
	events := g.Tick(
		func(i int) bool {
			probed++
			return c.gossipProbe(now, c.nodes[i])
		},
		// A peer's digest reflects data-plane liveness: a killed device
		// is dark on the LAN, a device with a corrupted command wire
		// still forwards traffic.
		func(i int) bool {
			n := c.nodes[i]
			return !n.killed && n.state != Failed && n.state != Drained
		},
	)
	c.hbTick++
	for _, ev := range events {
		n := c.nodes[ev.Member]
		kind := ev.Kind.String()
		c.gossipEvents = append(c.gossipEvents, GossipEvent{
			At: now, Node: n.ID, Kind: kind, Incarnation: ev.Incarnation,
		})
		if c.ctrl != nil {
			e := obs.Instant(obs.CatGossip, kind, now)
			e.K1, e.V1 = "node", n.ID
			e.K2, e.V2 = "incarnation", int64(ev.Incarnation)
			c.ctrl.Add(e)
		}
		if ev.Kind == gossip.Confirmed {
			c.failNode(now, n, fmt.Sprintf("gossip confirmed: %d consecutive missed probes", ev.Misses))
		}
	}
	if c.ctrl != nil {
		e := obs.Instant(obs.CatHeartbeat, "hb-sweep", now)
		e.K2, e.V2 = "probed", int64(probed)
		e.K3, e.V3 = "events", int64(len(events))
		c.ctrl.Add(e)
	}
	return c.transitions[before:]
}

// gossipProbe is one direct probe over the command path — the same
// per-node body as the central sweep minus the failure decision, which
// belongs to the detector.
func (c *Cluster) gossipProbe(now sim.Time, n *Node) bool {
	temp, err := n.Inst.CheckHealth()
	if err != nil {
		n.missed++
		return false
	}
	n.missed = 0
	n.lastTemp = temp
	// CheckHealth already raised the thermal irq if over threshold; the
	// handler degraded the node. Here we also detect recovery.
	if temp < c.cfg.DegradeMilliC && n.state == Degraded {
		c.setState(now, n, Healthy, "temperature recovered")
	}
	n.probes++
	if c.cfg.MigrateFlows && len(n.flows) > 0 && n.probes%c.snapshotEvery() == 0 {
		c.snapshotNode(now, n)
	}
	return true
}

// InjectGossipSuspicion plants a (possibly false) suspicion of a node
// into the detector — the protocol-level chaos hook the smoke scenario
// and refutation tests use. Reports whether the suspicion took (false
// when the node is already suspect or dead).
func (c *Cluster) InjectGossipSuspicion(id string) (bool, error) {
	n, err := c.Node(id)
	if err != nil {
		return false, err
	}
	if !c.cfg.GossipHealth {
		return false, fmt.Errorf("fleet: gossip health is disabled")
	}
	return c.ensureGossip().Suspect(n.index), nil
}

// GossipEvents returns the fleet-level protocol event log.
func (c *Cluster) GossipEvents() []GossipEvent {
	return append([]GossipEvent(nil), c.gossipEvents...)
}

// GossipStats reports the detector's cumulative counters, read through
// the registry (all zero while gossip health is off or idle).
func (c *Cluster) GossipStats() gossip.Stats {
	return gossip.Stats{
		Ticks:         c.reg.Int(mGossipTicks),
		Probes:        c.reg.Int(mGossipProbes),
		Digests:       c.reg.Int(mGossipDigests),
		Suspicions:    c.reg.Int(mGossipSuspects),
		Refutations:   c.reg.Int(mGossipRefutes),
		Confirmations: c.reg.Int(mGossipConfirms),
	}
}

// rawGossipStats reads the detector directly; the registry callbacks
// own it.
func (c *Cluster) rawGossipStats() gossip.Stats {
	if c.gossip == nil {
		return gossip.Stats{}
	}
	return c.gossip.Stats()
}

// GossipDetectionBound reports the worst-case silent-failure detection
// latency under gossip health: (Period + SuspectAfter + FailedAfter +
// 1) heartbeat ticks, Period = ceil(N/fanout). The fleet5 storm test
// asserts every observed detection stays within it.
func (c *Cluster) GossipDetectionBound() sim.Time {
	return sim.Time(c.ensureGossip().Bound()) * c.cfg.Heartbeat
}
