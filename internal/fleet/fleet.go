// Package fleet is the cluster control plane over a pool of simulated
// Harmonia devices: the multi-device layer the paper's cloud setting
// implies (§2.3, Fig. 3c) but a single-device twin cannot exercise.
//
// A Cluster commissions heterogeneous catalog devices by running the
// real toolchain pipeline (unified shell, tailoring, dependency
// inspection, compile, boot) per device, places service replicas into
// tenancy partial-reconfiguration slots using the structural resource
// model, heartbeats every device over the command path, consumes irq
// thermal-alarm/link-down events, and routes live workload across the
// replicas with per-device queue-depth awareness. Devices move through
// the state machine healthy → degraded → failed → drained; losing a
// device evicts its tenants, re-places them on survivors and re-routes
// traffic, with the recovery time measured in simulated time.
package fleet

import (
	"fmt"
	"sort"

	"harmonia/internal/apps"
	"harmonia/internal/device"
	"harmonia/internal/gossip"
	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/role"
	"harmonia/internal/shell"
	"harmonia/internal/sim"
	"harmonia/internal/tenancy"
	"harmonia/internal/toolchain"
)

// State is a device's position in the fleet health state machine.
type State string

// Device states. Healthy devices take new placements and traffic;
// degraded devices keep serving but are deprioritized by the router and
// excluded from new placements; failed devices are dead to the command
// path; drained devices have been fully evacuated.
const (
	Healthy  State = "healthy"
	Degraded State = "degraded"
	Failed   State = "failed"
	Drained  State = "drained"
)

// Config shapes the control plane.
type Config struct {
	// Heartbeat is the health monitor's sampling interval.
	Heartbeat sim.Time
	// FailedAfter is how many consecutive missed heartbeats declare a
	// device failed.
	FailedAfter int
	// DegradeMilliC is the die temperature (milli-degC) at which a
	// device is degraded; it also arms each device's thermal watchdog.
	DegradeMilliC uint32
	// SlotRes is the per-slot resource budget of the role region's
	// partial-reconfiguration layout (URAM is folded into BRAM on chips
	// without UltraRAM).
	SlotRes hdl.Resources
	// MaxSlots caps slots per device; the structural headroom of the
	// chip may support fewer.
	MaxSlots int
	// QueuesPerTenant is each tenant's host-queue allocation.
	QueuesPerTenant int
	// ReconfigTime is the partial-bitstream load time per slot — the
	// dominant term of failover recovery.
	ReconfigTime sim.Time
	// Seed drives the router's randomized two-choice sampling.
	Seed int64
	// RouterShards partitions dispatch state (RNG, counters, latency
	// window) and the node set into this many shards; flows hash onto
	// shards and Serve routes shards in parallel. 0 picks one shard per
	// 64 nodes (capped at 16) when routing first runs. Seeded results
	// depend on the shard count but not on the worker count.
	RouterShards int
	// HeartbeatCohorts splits the fleet into this many round-robin
	// heartbeat cohorts: each monitor tick probes one cohort, so probe
	// cost per tick is N/cohorts while a silent device is still
	// declared failed after FailedAfter consecutive missed probes —
	// within FailedAfter*cohorts*Heartbeat. 0 or 1 probes every node
	// each tick.
	HeartbeatCohorts int
	// ServeWorkers caps the goroutines Serve fans shards out to.
	// 0 uses GOMAXPROCS. The worker count never changes results.
	ServeWorkers int
	// BatchQuantum caps how many packets one dispatch run drains
	// between control-plane barriers before Serve re-partitions
	// (0 = 8192). No control-plane work runs at a quantum split and the
	// flow caches survive it, so seeded results are identical for every
	// quantum size — the knob only shapes working-set locality.
	BatchQuantum int
	// MigrateFlows carries stateful services' connection tables across
	// failover: planned drains read the live table over the command
	// path, dead-node failover falls back to the last periodic
	// snapshot, and either replays into the replacement replica.
	MigrateFlows bool
	// SnapshotEvery is the periodic connection-table snapshot cadence,
	// in successful heartbeat probes per node (0 = every 8th probe).
	SnapshotEvery int
	// MaxConcurrentLoads caps concurrent partial-bitstream loads
	// fleet-wide (0 = unlimited). Mass failover past the cap queues
	// loads behind the earliest in-flight completion; SetLoadBudget
	// changes the cap at runtime.
	MaxConcurrentLoads int
	// LoadRetries bounds per-slot retries of a failed bitstream load
	// before placement falls back to another device.
	LoadRetries int
	// LoadBackoff is the delay before the first load retry, doubling
	// per attempt.
	LoadBackoff sim.Time
	// Racks groups the fleet into this many contiguous racks — the
	// digest, metrics and gossip aggregation domains (and, with RackP2C,
	// the dispatch tier). 0 picks one rack per 64 nodes. Without
	// RackP2C the rack count never changes results: the tier is
	// observational and dispatch stays on the flat sharded path.
	Racks int
	// RackP2C enables rack-first dispatch: the router's shard layout
	// nests in the racks (one shard per contiguous rack) and each
	// packet two-choices between two hash-derived racks on their
	// barrier-frozen backlog digests before the in-rack two-choice
	// runs. Per-packet cost stops scaling with the fleet size; seeded
	// results depend on the rack count (as they already do on the shard
	// count) but never on the worker count. Incompatible with an
	// explicit RouterShards setting.
	RackP2C bool
	// GossipHealth replaces the central heartbeat sweep with the
	// SWIM-style gossip detector (internal/gossip): each monitor tick
	// directly probes a seeded rotation of GossipFanout nodes and
	// piggybacks peer liveness digests on the answers, so probe cost
	// per tick is O(fanout) instead of O(N) while a silent node is
	// still declared failed only after FailedAfter consecutive missed
	// command-path probes — within GossipDetectionBound.
	GossipHealth bool
	// GossipFanout is the per-tick direct probe count (0 = 8).
	GossipFanout int
	// GossipPiggyback is how many peer liveness observations each
	// answered probe carries back (0 = 4).
	GossipPiggyback int
	// SuspectAfter is how many ticks an unrefuted gossip suspicion
	// stands before escalating to per-tick confirmation probes (0 = 2).
	SuspectAfter int
	// Rebalance arms the background rebalancer: at heartbeat barriers it
	// scores fragmentation (stranded queue ranges, slot imbalance,
	// placement drift), drains the worst node through crash-safe
	// pre-copy + delta-replay moves, and rebuilds its queue allocator.
	// SetRebalance toggles it at runtime.
	Rebalance bool
	// RebalanceEvery is the planning cadence in heartbeat barriers
	// (0 = 8). Active moves still step every barrier.
	RebalanceEvery int
	// RebalanceTimeout bounds each move phase; a phase outliving it
	// aborts the move back to the still-serving source
	// (0 = 4×ReconfigTime).
	RebalanceTimeout sim.Time
	// RebalanceRetries bounds failed attempts per move phase before the
	// move aborts (0 = 2).
	RebalanceRetries int
	// RebalanceBackoff delays a phase retry, doubling per attempt
	// (0 = 2×Heartbeat).
	RebalanceBackoff sim.Time
	// DerivedShedding replaces the static ×4 degraded-node routing
	// penalty with one derived from thermal margin: cost scales with
	// the die's modeled throttling as temperature erodes the margin to
	// DegradeMilliC, and an alarmed (degraded) node takes no traffic.
	DerivedShedding bool
	// ShedStartMilliC is where the derived penalty starts growing
	// (0 = DegradeMilliC − 10°C).
	ShedStartMilliC uint32
	// SLOWindowTicks sizes the per-service SLO error-budget windows in
	// heartbeat ticks, fast to slow (nil = {4, 16, 64, 256}). Burn
	// rules pair the first two windows (page) and the last two
	// (ticket). Windows advance only at heartbeat barriers, so SLO
	// state never depends on worker count or batch quantum.
	SLOWindowTicks []int
}

// DefaultConfig returns production-shaped control plane settings.
func DefaultConfig() Config {
	return Config{
		Heartbeat:       50 * sim.Microsecond,
		FailedAfter:     3,
		DegradeMilliC:   95_000,
		SlotRes:         hdl.Resources{LUT: 160_000, REG: 240_000, BRAM: 420, URAM: 64, DSP: 1_024},
		MaxSlots:        4,
		QueuesPerTenant: 64,
		ReconfigTime:    2 * sim.Millisecond,
		Seed:            1,
		MigrateFlows:    true,
		SnapshotEvery:   defaultSnapshotEvery,
		LoadRetries:     2,
		LoadBackoff:     250 * sim.Microsecond,
	}
}

// ServiceClass ranks a service's latency sensitivity. The class drives
// the shedding order on thermally eroded nodes (bulk traffic sheds
// first, latency-critical last; thermal.go) — not the PR-load priority
// class, which is per load (failover vs elective; budget.go).
type ServiceClass string

const (
	// ClassLatencyCritical services keep serving until the node itself
	// degrades; the default class.
	ClassLatencyCritical ServiceClass = "latency-critical"
	// ClassBulk services are shed from a node once its thermal throttle
	// crosses the bulk-shed floor, returning headroom to co-resident
	// latency-critical traffic.
	ClassBulk ServiceClass = "bulk"
)

// SLO is a service's per-service objective, evaluated by drills (the
// control plane enforces the shedding *order*; the targets themselves
// are gate inputs, not admission inputs).
type SLO struct {
	// P99 is the target 99th-percentile serve latency (0 = none).
	P99 sim.Time
	// Availability is the target served/sent ratio (0 = none).
	Availability float64
}

// Service is a replicated workload the fleet hosts.
type Service struct {
	Name string
	// Class ranks latency sensitivity ("" = latency-critical); SLO holds
	// the per-service targets drills gate on.
	Class ServiceClass
	SLO   SLO
	// Demands is the role's shell requirement (adapted per device at
	// commission time: HBM falls back to DDR4 on HBM-less cards).
	Demands shell.Demands
	// Logic is one replica's resource footprint; it must fit a slot.
	Logic hdl.Resources
	// Replicas is the target replica count.
	Replicas int
	// MinPCIeGen excludes devices below this host-link generation
	// (0 = any).
	MinPCIeGen int
	// VIPBase is the first replica's virtual IP; replica i serves
	// VIPBase+i.
	VIPBase net.IPAddr
	// Stateful marks a service whose replicas pin flows to backends in
	// a per-replica connection table (the layer-4 LB pattern). Stateful
	// services are what flow migration protects; Backends is their
	// initial pool.
	Stateful bool
	Backends []net.IPAddr
}

// AppService derives a fleet service from an application catalog entry.
func AppService(info apps.Info, replicas int, vipBase net.IPAddr) Service {
	return Service{
		Name:     info.Name,
		Demands:  info.Demands,
		Logic:    info.RoleRes,
		Replicas: replicas,
		VIPBase:  vipBase,
	}
}

// Replica is one placed instance of a service.
type Replica struct {
	Service string
	Index   int
	VIP     net.IPAddr
	// Node is the hosting device ("" while unplaced).
	Node string
	// Tenant is the tenancy ID on the hosting device.
	Tenant int
	// ReadyAt is when the replica's slot reconfiguration completes.
	ReadyAt sim.Time
	// node caches the hosting *Node (nil while unplaced) so the
	// per-packet dispatch path never takes the byID map lookup.
	node *Node
	// flows is the replica's stateful LB state (nil for stateless
	// services), bound to the hosting device's role control module.
	flows *flowState
	// elective marks a scale-out replica still waiting on the elective
	// queue for budget headroom; Place skips it (placement.go).
	elective bool
}

// Name identifies the replica, e.g. "layer4-lb/2".
func (r *Replica) Name() string { return fmt.Sprintf("%s/%d", r.Service, r.Index) }

// Node is one commissioned device under fleet control.
type Node struct {
	ID       string
	Platform *platform.Device
	// Project is the consolidated build deployed on the device.
	Project *toolchain.Project
	// Inst is the booted instance the health monitor commands.
	Inst *device.Device
	// Net and Host are the functional datapath RBBs traffic crosses.
	Net  *rbb.NetworkRBB
	Host *rbb.HostRBB
	// Tenants multiplexes replicas over the role region's PR slots
	// (nil when the chip has no headroom for any slot).
	Tenants *tenancy.Manager

	// slotRes is the per-slot budget after URAM folding for this chip.
	slotRes hdl.Resources
	slots   int
	state   State
	missed  int
	// lastTemp is the most recent heartbeat temperature (milli-degC).
	lastTemp uint32
	killed   bool
	// probes counts successful heartbeat probes, pacing the periodic
	// connection-table snapshots.
	probes int64
	// busyUntil is the datapath backlog horizon used for queue-depth
	// aware routing.
	busyUntil sim.Time
	// classServed counts served packets by service class
	// ([0] latency-critical, [1] bulk), written by the owning shard's
	// worker like busyUntil — the per-node shed-order evidence.
	classServed [2]int64
	replicas  map[string]*Replica
	// svcCounts tracks replicas per service (anti-affinity input),
	// maintained at admit/evict so placement never iterates replicas.
	svcCounts map[string]int
	// hostErr caches the static placement-compatibility outcome per
	// service (see staticHostErr).
	hostErr map[string]error
	// flows holds the stateful replicas' connection-table state, keyed
	// by replica name.
	flows map[string]*flowState
	// shard is the router shard owning this node's dispatch state
	// (assigned when the router freezes its shard layout).
	shard int
	// hotEpoch/hotSlot place the node in its shard's SoA hot-state
	// slice for the given dispatch epoch (router.go: refreshDisp). Only
	// the owning shard's worker touches them, so replicas of different
	// services sharing a node share one backlog mirror without locks.
	hotEpoch uint64
	hotSlot  int32
	// rack is the node's rack (assigned at the same freeze); index is
	// the commission order position — the gossip member id.
	rack  int
	index int
	// rebuilding marks a node the rebalancer is draining for a queue
	// rebuild: it keeps serving its current replicas but takes no new
	// placements until the rebuild completes.
	rebuilding bool
}

// State reports the node's health state.
func (n *Node) State() State { return n.state }

// Slots reports how many PR slots the chip's headroom supports.
func (n *Node) Slots() int { return n.slots }

// LastTemp reports the most recent heartbeat temperature (milli-degC).
func (n *Node) LastTemp() uint32 { return n.lastTemp }

// ClassServed reports the node's served-packet counts by service class.
// Read between serve phases (the counters are shard-owned mid-phase).
func (n *Node) ClassServed() (latencyCritical, bulk int64) {
	return n.classServed[0], n.classServed[1]
}

// QueueDepth reports the node's outstanding datapath backlog at now —
// the per-device congestion signal the router balances on.
func (n *Node) QueueDepth(now sim.Time) sim.Time {
	if n.busyUntil <= now {
		return 0
	}
	return n.busyUntil - now
}

// Replicas lists the replicas currently placed on the node, sorted by
// name for stable output.
func (n *Node) Replicas() []*Replica {
	out := make([]*Replica, 0, len(n.replicas))
	for _, r := range n.replicas {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Cluster is the fleet control plane.
type Cluster struct {
	cfg      Config
	services map[string]*Service
	svcOrder []string
	nodes    []*Node
	byID     map[string]*Node
	replicas []*Replica
	// pools holds each stateful service's shared backend hash table;
	// snapshots the periodic connection-table captures by replica name;
	// migrations the completed flow-table transfers.
	pools      map[string]*apps.Maglev
	snapshots  map[string]flowSnap
	migrations []MigrationRecord

	now           sim.Time
	nextHeartbeat sim.Time
	hbTick        int64
	transitions   []Transition
	failovers     []FailoverReport
	router        *router
	// racks is the rack tier (frozen alongside the router's shard
	// layout); gossip is the SWIM detector, built lazily on the first
	// gossip-mode heartbeat; gossipEvents is its fleet-level event log.
	racks        *rackTier
	gossip       *gossip.Group
	gossipEvents []GossipEvent
	// budget is the fleet-wide concurrent PR-load cap and its grant log;
	// electives are scale-out replicas queued for free headroom, drained
	// oldest-first at heartbeat barriers (placement.go).
	budget    *reconfigBudget
	electives []electiveEntry
	// prLoadFault, when set, decides per-attempt bitstream load failures
	// on every node (chaos injection).
	prLoadFault func(node, tenant string, slot, attempt int) bool
	// rebalance is the background rebalancer's barrier-stepped state
	// (rebalance.go); nil until the first enable.
	rebalance *rebalancer
	// slo is the always-on SLO error-budget engine, advanced at
	// heartbeat barriers (slo.go).
	slo *sloEngine

	// reg is the cluster's metrics registry: every layer registers
	// read-through callbacks at construction, and the public stats
	// accessors read back out of it (single source of truth).
	reg *obs.Registry
	// tp is the attached trace process (nil when tracing is off); ctrl
	// and cmdTrack are its control-plane and command-path tracks.
	ctrl     *obs.Buffer
	cmdTrack *obs.Buffer
	tp       *obs.Process
}

// NewCluster returns an empty control plane.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Heartbeat <= 0 || cfg.FailedAfter <= 0 || cfg.MaxSlots <= 0 ||
		cfg.QueuesPerTenant <= 0 || cfg.ReconfigTime <= 0 ||
		cfg.RouterShards < 0 || cfg.HeartbeatCohorts < 0 || cfg.ServeWorkers < 0 ||
		cfg.BatchQuantum < 0 ||
		cfg.SnapshotEvery < 0 || cfg.MaxConcurrentLoads < 0 ||
		cfg.LoadRetries < 0 || cfg.LoadBackoff < 0 ||
		cfg.Racks < 0 || cfg.GossipFanout < 0 || cfg.GossipPiggyback < 0 ||
		cfg.SuspectAfter < 0 ||
		cfg.RebalanceEvery < 0 || cfg.RebalanceTimeout < 0 ||
		cfg.RebalanceRetries < 0 || cfg.RebalanceBackoff < 0 {
		return nil, fmt.Errorf("fleet: invalid config %+v", cfg)
	}
	if cfg.ShedStartMilliC > 0 && cfg.ShedStartMilliC >= cfg.DegradeMilliC {
		return nil, fmt.Errorf("fleet: shed start %d must be below the %d alarm threshold",
			cfg.ShedStartMilliC, cfg.DegradeMilliC)
	}
	if cfg.RackP2C && cfg.RouterShards > 0 {
		return nil, fmt.Errorf("fleet: RackP2C nests the shard layout in the racks; RouterShards must be 0")
	}
	for _, t := range cfg.SLOWindowTicks {
		if t <= 0 {
			return nil, fmt.Errorf("fleet: SLO window of %d ticks", t)
		}
	}
	c := &Cluster{
		cfg:       cfg,
		services:  make(map[string]*Service),
		byID:      make(map[string]*Node),
		pools:     make(map[string]*apps.Maglev),
		snapshots: make(map[string]flowSnap),
	}
	c.router = newRouter(c, cfg.Seed)
	c.racks = &rackTier{c: c}
	c.budget = &reconfigBudget{limit: cfg.MaxConcurrentLoads}
	c.slo = newSLOEngine(cfg)
	c.reg = obs.NewRegistry()
	c.registerMetrics()
	if cfg.Rebalance {
		c.SetRebalance(true)
	}
	return c, nil
}

// Config returns the control plane settings.
func (c *Cluster) Config() Config { return c.cfg }

// Now reports the cluster's current simulated time.
func (c *Cluster) Now() sim.Time { return c.now }

// advance moves cluster time monotonically forward.
func (c *Cluster) advance(now sim.Time) {
	if now > c.now {
		c.now = now
	}
}

// AddService registers a service before placement. Devices already
// commissioned keep their shells; register services first so merged
// demands shape every deployment.
func (c *Cluster) AddService(s Service) error {
	if s.Name == "" || s.Replicas <= 0 {
		return fmt.Errorf("fleet: invalid service %+v", s)
	}
	if _, dup := c.services[s.Name]; dup {
		return fmt.Errorf("fleet: service %q already registered", s.Name)
	}
	switch s.Class {
	case "", ClassLatencyCritical, ClassBulk:
	default:
		return fmt.Errorf("fleet: service %q has unknown class %q", s.Name, s.Class)
	}
	svc := s
	if svc.Class == "" {
		svc.Class = ClassLatencyCritical
	}
	if svc.Stateful {
		if len(svc.Backends) == 0 {
			return fmt.Errorf("fleet: stateful service %q needs backends", s.Name)
		}
		svc.Backends = append([]net.IPAddr(nil), s.Backends...)
		pool, err := apps.NewMaglev(svc.Backends)
		if err != nil {
			return err
		}
		c.pools[s.Name] = pool
	}
	c.services[s.Name] = &svc
	c.svcOrder = append(c.svcOrder, s.Name)
	c.registerServiceMetrics(s.Name)
	c.sloAddService(&svc)
	return nil
}

// Services lists registered service names in registration order.
func (c *Cluster) Services() []string {
	return append([]string(nil), c.svcOrder...)
}

// foldURAM rewrites a footprint for chips without UltraRAM: each URAM
// block (288Kb) becomes eight BRAM36 blocks.
func foldURAM(r hdl.Resources, hasURAM bool) hdl.Resources {
	if hasURAM || r.URAM == 0 {
		return r
	}
	r.BRAM += 8 * r.URAM
	r.URAM = 0
	return r
}

// adaptDemands tailors merged service demands to one device's
// peripheral set: HBM demands fall back to DDR4 where no stack exists;
// missing peripherals with no substitute reject the device.
func adaptDemands(dev *platform.Device, d shell.Demands) (shell.Demands, error) {
	out := shell.Demands{}
	if d.Network != nil {
		cage, ok := dev.Peripheral(platform.Network, "")
		if !ok {
			return out, fmt.Errorf("fleet: %s has no network cage", dev.Name)
		}
		if d.Network.Gbps > cage.GbpsPerUnit {
			return out, fmt.Errorf("fleet: %s cages provide %v Gbps, demand is %v",
				dev.Name, cage.GbpsPerUnit, d.Network.Gbps)
		}
		nd := *d.Network
		out.Network = &nd
	}
	seen := map[ip.MemKind]bool{}
	for _, md := range d.Memory {
		kind := md.Kind
		switch {
		case kind == ip.HBMMem && dev.HasPeripheral("HBM"):
		case kind == ip.HBMMem && dev.HasPeripheral("DDR4"):
			kind = ip.DDR4Mem // fall back: same behaviour, lower bandwidth
		case kind == ip.DDR4Mem && dev.HasPeripheral("DDR4"):
		default:
			return out, fmt.Errorf("fleet: %s cannot satisfy %s memory demand", dev.Name, md.Kind)
		}
		if !seen[kind] {
			seen[kind] = true
			out.Memory = append(out.Memory, shell.MemoryDemand{Kind: kind})
		}
	}
	if d.Host != nil {
		if _, ok := dev.PCIe(); !ok {
			return out, fmt.Errorf("fleet: %s has no PCIe", dev.Name)
		}
		hd := *d.Host
		out.Host = &hd
	}
	return out, nil
}

// mergedDemands is the union of every registered service's demands —
// the shell each commissioned device must carry so any replica can be
// placed or failed over onto it.
func (c *Cluster) mergedDemands() shell.Demands {
	var out shell.Demands
	for _, name := range c.svcOrder {
		d := c.services[name].Demands
		if d.Network != nil {
			if out.Network == nil {
				nd := *d.Network
				out.Network = &nd
			} else {
				if d.Network.Gbps > out.Network.Gbps {
					out.Network.Gbps = d.Network.Gbps
				}
				out.Network.Filter = out.Network.Filter || d.Network.Filter
				out.Network.Director = out.Network.Director || d.Network.Director
			}
		}
		for _, md := range d.Memory {
			found := false
			for _, have := range out.Memory {
				if have.Kind == md.Kind {
					found = true
					break
				}
			}
			if !found {
				out.Memory = append(out.Memory, md)
			}
		}
		if d.Host != nil {
			if out.Host == nil {
				hd := *d.Host
				out.Host = &hd
			} else {
				if d.Host.Queues > out.Host.Queues {
					out.Host.Queues = d.Host.Queues
				}
				// Scatter-gather serves both; only all-bulk stays bulk.
				out.Host.Bulk = out.Host.Bulk && d.Host.Bulk
			}
		}
	}
	if out.Network != nil {
		// The flow director is the fleet's tenant-steering mechanism.
		out.Network.Director = true
	}
	return out
}

// fleetBaseLogic is the static role-region scaffolding (slot routing,
// decouplers) the base deployment carries; tenants bring their own
// logic into PR slots.
func fleetBaseLogic() *hdl.Module {
	return &hdl.Module{
		Name:     "fleet-base",
		Vendor:   "user",
		Category: "role",
		Res:      hdl.Resources{LUT: 18_000, REG: 26_000, BRAM: 32},
		Code:     hdl.LoC{Handcraft: 2_400},
	}
}

// slotBudget computes how many PR slots the chip's structural headroom
// supports after the deployed shell+base image is subtracted.
func slotBudget(capacity, used, slotRes hdl.Resources, maxSlots int) int {
	free := capacity.Sub(used)
	budget := maxSlots
	for _, kind := range hdl.ResourceKinds {
		need, _ := slotRes.Get(kind)
		if need <= 0 {
			continue
		}
		have, _ := free.Get(kind)
		if n := have / need; n < budget {
			budget = n
		}
	}
	if budget < 0 {
		return 0
	}
	return budget
}

// Commission deploys the fleet shell onto a device through the real
// toolchain pipeline, boots the instance, builds the functional
// datapath RBBs, arms the thermal watchdog and wires irq events into
// the control plane. The node starts Healthy.
func (c *Cluster) Commission(id string, plat *platform.Device) (*Node, error) {
	if id == "" || plat == nil {
		return nil, fmt.Errorf("fleet: invalid commission request")
	}
	if _, dup := c.byID[id]; dup {
		return nil, fmt.Errorf("fleet: node %q already commissioned", id)
	}
	if len(c.services) == 0 {
		return nil, fmt.Errorf("fleet: register services before commissioning devices")
	}
	demands, err := adaptDemands(plat, c.mergedDemands())
	if err != nil {
		return nil, err
	}
	baseRole, err := role.New("fleet-base", demands, fleetBaseLogic())
	if err != nil {
		return nil, err
	}
	proj, err := toolchain.Integrate(plat, baseRole)
	if err != nil {
		return nil, fmt.Errorf("fleet: deploy on %s: %w", id, err)
	}
	inst, err := device.Boot(proj)
	if err != nil {
		return nil, err
	}
	inst.SetThermalThreshold(c.cfg.DegradeMilliC)

	clk := apps.UserClock()
	// All catalog cages run 100G optics; the functional line matches.
	netRBB, err := rbb.NewNetwork(plat.Vendor, ip.Speed100G, clk, apps.UserWidth)
	if err != nil {
		return nil, err
	}
	netRBB.Filter.SetEnabled(false)
	pcieP, ok := plat.PCIe()
	if !ok {
		return nil, fmt.Errorf("fleet: %s has no PCIe", plat.Name)
	}
	hostRBB, err := rbb.NewHost(plat.Vendor, pcieP.PCIeGen, pcieP.PCIeLanes, ip.SGDMA,
		clk, apps.UserWidth)
	if err != nil {
		return nil, err
	}

	hasURAM := plat.Chip.Capacity.URAM > 0
	slotRes := foldURAM(c.cfg.SlotRes, hasURAM)
	slots := slotBudget(plat.Chip.Capacity, proj.Bitstream.Res, slotRes, c.cfg.MaxSlots)
	if max := hostRBB.Spec().QueueCount / c.cfg.QueuesPerTenant; slots > max {
		slots = max
	}
	n := &Node{
		ID: id, Platform: plat, Project: proj, Inst: inst,
		Net: netRBB, Host: hostRBB,
		slotRes: slotRes, slots: slots,
		state:     Healthy,
		replicas:  make(map[string]*Replica),
		svcCounts: make(map[string]int),
		flows:     make(map[string]*flowState),
	}
	if slots > 0 {
		mgr, err := tenancy.NewManager(tenancy.SlotConfig{
			Slots:           slots,
			SlotRes:         slotRes,
			ReconfigTime:    c.cfg.ReconfigTime,
			QueuesPerTenant: c.cfg.QueuesPerTenant,
			LoadRetries:     c.cfg.LoadRetries,
			LoadBackoff:     c.cfg.LoadBackoff,
		}, netRBB.Director, hostRBB)
		if err != nil {
			return nil, err
		}
		n.Tenants = mgr
		c.wireLoadFault(n)
	}
	inst.OnInterrupt(func(ev device.Event) { c.onEvent(n, ev) })
	if c.cmdTrack != nil {
		inst.SetCmdTrace(c.cmdTrack)
	}
	n.index = len(c.nodes)
	// Nodes commissioned after the router froze its shard layout join
	// racks and shards round-robin by commission index (with RackP2C
	// the shard is the rack).
	if c.router.frozen {
		n.rack = c.racks.join(n.index)
		if c.cfg.RackP2C {
			n.shard = n.rack
		} else {
			n.shard = n.index % len(c.router.shards)
		}
	}
	if c.gossip != nil {
		c.gossip.Add()
	}
	c.nodes = append(c.nodes, n)
	c.byID[id] = n
	return n, nil
}

// Nodes lists commissioned nodes in commission order.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// Node returns a commissioned node.
func (c *Cluster) Node(id string) (*Node, error) {
	n, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown node %q", id)
	}
	return n, nil
}

// Replicas lists every replica (placed or not) in creation order.
func (c *Cluster) Replicas() []*Replica { return append([]*Replica(nil), c.replicas...) }

// ReplicasOn lists the replicas placed on one node.
func (c *Cluster) ReplicasOn(id string) []*Replica {
	n, ok := c.byID[id]
	if !ok {
		return nil
	}
	return n.Replicas()
}

// Kill silently kills a device: every subsequent command on its wire is
// corrupted until the driver gives up, so the device stops answering
// heartbeats. Detection takes FailedAfter missed heartbeats.
func (c *Cluster) Kill(id string) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	n.killed = true
	n.Inst.SetWireFaultInjector(func(attempt int, buf []byte) []byte {
		if len(buf) > 0 {
			buf[0] ^= 0xFF
		}
		return buf
	})
	return nil
}

// CutLink severs a device's network link: the PHY raises an
// EventLinkDown over the irq path (latency-critical, bypassing the
// command interface), and the control plane fails the node immediately.
func (c *Cluster) CutLink(now sim.Time, id string) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	c.advance(now)
	return n.Inst.RaiseEvent(device.RBBNetwork, 0, device.EventLinkDown, 0)
}

// Overheat injects additional die temperature (milli-degC) into a
// device's sensors; the next heartbeat trips the thermal watchdog and
// degrades the node.
func (c *Cluster) Overheat(id string, offsetMilliC uint32) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	n.Inst.SetThermalOffset(offsetMilliC)
	return nil
}

// Cool removes an injected thermal offset.
func (c *Cluster) Cool(id string) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	n.Inst.SetThermalOffset(0)
	return nil
}

// SetPRLoadFault installs (or, with nil, removes) the bitstream
// load-failure injector on every node's tenancy manager, current and
// future. The predicate must be deterministic in its arguments so
// seeded chaos runs reproduce.
func (c *Cluster) SetPRLoadFault(fn func(node, tenant string, slot, attempt int) bool) {
	c.prLoadFault = fn
	for _, n := range c.nodes {
		c.wireLoadFault(n)
	}
}

// wireLoadFault binds the cluster's PR-load fault predicate to one
// node's tenancy manager.
func (c *Cluster) wireLoadFault(n *Node) {
	if n.Tenants == nil {
		return
	}
	if c.prLoadFault == nil {
		n.Tenants.SetLoadFault(nil)
		return
	}
	id, fn := n.ID, c.prLoadFault
	n.Tenants.SetLoadFault(func(tenant string, slot, attempt int) bool {
		return fn(id, tenant, slot, attempt)
	})
}

// Revive returns a drained device to service after its fault cleared
// (link restored, power back): leftover tenancy slots from a dead-node
// evacuation are blanked, the command wire is restored, and the node
// rejoins the fleet Healthy and empty — the next Place or failover can
// use it again.
func (c *Cluster) Revive(now sim.Time, id string) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	if n.state != Drained {
		return fmt.Errorf("fleet: node %s is %s; only drained nodes revive", id, n.state)
	}
	c.advance(now)
	// A dead-node evacuation abandoned the slots (the device could not
	// execute evictions); blank them now that it answers again.
	if n.Tenants != nil {
		for _, t := range n.Tenants.Tenants() {
			_, _ = n.Tenants.Evict(c.now, t.ID)
		}
	}
	n.killed = false
	n.Inst.SetWireFaultInjector(nil)
	n.missed = 0
	c.setState(c.now, n, Healthy, "revived")
	return nil
}

// CmdPathStats aggregates the command-path counters of every node's
// driver: completed commands, checksum retransmissions and commands
// dropped after exhausting retries — the fleet-level view of
// command-wire health the chaos drill reports.
type CmdPathStats struct {
	Issued, Retries, Drops int64
}

// CmdPath reads through the registry; see obs.go.
