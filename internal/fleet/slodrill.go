package fleet

import (
	"bytes"
	"fmt"
	"strings"

	"harmonia/internal/faults"
	"harmonia/internal/hdl"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// The fleet10 SLO drill replays the fleet5 failure storm over the
// fleet8 co-resident fleet and judges the new SLO layer end to end:
// the latency-critical services' burn-rate alerts must fire during
// the storm, every firing must be attributed by the postmortem engine
// to at least one ground-truth scheduled fault, a fault-free control
// replay of the same fleet must stay silent, every alert must resolve
// within the recovery bound, and the whole alert/burn state must be
// byte-identical across batch quanta and worker counts (the engine
// advances only at heartbeat barriers, so this is a direct check of
// the determinism contract).

// sloWindowTicks sizes the drill's rolling windows: the storm spans
// ~6 ms and the drill ~16 ms, so the stock {4,16,64,256} tick set
// (slowest window 12.8 ms) could not drain before the drill ends.
// {2,8,24,48} ticks = 100µs/400µs/1.2ms/2.4ms keeps the page pair
// spike-sensitive and lets the ticket pair resolve inside the tail.
var sloWindowTicks = []int{2, 8, 24, 48}

// sloSweep is the (BatchQuantum, ServeWorkers) determinism sweep: the
// alert log and final burn state must come out byte-identical for
// every variant.
var sloSweep = [][2]int{{0, 1}, {64, 2}, {4096, 8}}

// SLOOptions shapes the fleet10 drill.
type SLOOptions struct {
	// Devices is the shared fleet size (tentpole configuration 120).
	Devices int
	// Budget is the concurrent PR-load cap.
	Budget int
	// Seed drives the storm schedule, traffic and router sampling.
	Seed int64
	// Trace, when set, records the baseline storm case (plus the
	// storm plan) into a trace process.
	Trace *obs.Recorder
}

// DefaultSLOOptions returns the tentpole fleet10 configuration.
func DefaultSLOOptions() SLOOptions {
	return SLOOptions{Devices: 120, Budget: 6, Seed: 11}
}

// SLOWindowSample is one measurement window of the drill's baseline
// storm case.
type SLOWindowSample struct {
	At sim.Time
	// LCAvailability is the layer-4 LB's healthy-served/sent inside
	// the window (1 when it offered nothing).
	LCAvailability float64
	// ActiveAlerts counts rules pending or firing at the window edge.
	ActiveAlerts int
}

// SLOServiceResult is one service's storm outcome through the SLO
// engine's eyes.
type SLOServiceResult struct {
	Name   string
	Class  ServiceClass
	Target float64
	// Availability is healthy-served/sent over the whole storm.
	Availability float64
	// PeakFastBurn is the highest fast-window burn rate any barrier
	// saw (sampled at window edges).
	PeakFastBurn float64
	// Firings/Resolves count this service's alert transitions.
	Firings  int64
	Resolves int64
}

// SLOResult is the fleet10 report.
type SLOResult struct {
	Devices  int
	RackSize int
	Seed     int64
	Budget   int

	StormStart, StormEnd sim.Time
	Injections           []string
	Windows              []obs.SLOWindow
	Rules                []obs.BurnRule

	Services []SLOServiceResult
	Samples  []SLOWindowSample

	// Alerts is the baseline storm case's full transition log;
	// AlertLog its fixed-format rendering.
	Alerts   []obs.AlertEvent
	AlertLog string

	// Lookback is the attribution window each firing is correlated
	// over, derived from the detection bound and the PR-load retry
	// budget.
	Lookback    sim.Time
	Postmortems []obs.AlertPostmortem
	// Timeline is the human-readable postmortem report.
	Timeline string

	// Gate (a): firings and attribution.
	FiringsTotal        int
	FiringsLC           int
	UnattributedFirings int
	// Control case: the same fleet, traffic and scale-out with zero
	// injections.
	ControlFirings      int
	ControlAttributions int

	// Gate (b): resolution.
	AllResolved    bool
	LastResolvedAt sim.Time
	RecoveryBound  sim.Time

	// Gate (c): determinism sweep over (quantum, workers).
	SweepVariants      []string
	DeterministicSweep bool

	// Metrics is the baseline case's end-of-storm registry snapshot;
	// Registry the live registry for Prometheus export.
	Metrics  map[string]float64
	Registry *obs.Registry
}

// sloCase is one full replay's outcome.
type sloCase struct {
	c        *Cluster
	alerts   []obs.AlertEvent
	alertLog []byte
	burn     string
	causal   []obs.CausalEvent
	samples  []SLOWindowSample
	peakFast map[string]float64
	pre      map[string]ServiceSnapshot
}

// burnState renders every (service, window) burn rate in a fixed
// order — the sweep's second byte-comparison surface next to the
// alert log.
func burnState(c *Cluster) string {
	var b strings.Builder
	for _, name := range c.Services() {
		for wi, w := range c.SLOWindows() {
			fmt.Fprintf(&b, "%s|%s=%.9f\n", name, w.Name, c.BurnRate(name, wi))
		}
	}
	return b.String()
}

// runSLOCase replays the storm (or, with inject false, a fault-free
// control) against a fresh co-resident fleet with the SLO windows
// armed and the given determinism-sweep variant.
func runSLOCase(opts SLOOptions, sched *faults.Schedule, quantum, workers int, inject bool, trace *obs.Recorder) (*sloCase, error) {
	cfg := DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.GossipHealth = true
	cfg.GossipFanout = 32
	cfg.GossipPiggyback = 8
	cfg.RackP2C = true
	cfg.SnapshotEvery = 1
	// Static shedding, deliberately: with the derived-shedding defense
	// armed the co-resident fleet heals the storm losslessly (fleet8's
	// artifact records availability 1.0), so there is nothing for an
	// alert to detect. The SLO layer's job is to catch the fleet when
	// a defense is imperfect — static thermal shedding keeps degraded
	// nodes serving (unhealthy serves burn the error budget, exactly
	// as in fleet5's static cases) and gives the storm a real,
	// attributable availability signature.
	cfg.DerivedShedding = false
	cfg.SlotRes = hdl.Resources{LUT: 200_000, REG: 300_000, BRAM: 512, URAM: 96, DSP: 2_048}
	cfg.SLOWindowTicks = sloWindowTicks
	cfg.BatchQuantum = quantum
	cfg.ServeWorkers = workers

	svcs, err := coresServices(opts.Devices)
	if err != nil {
		return nil, err
	}
	c, err := BuildCoResidentCluster(cfg, svcs, opts.Devices)
	if err != nil {
		return nil, err
	}
	if trace != nil {
		c.SetTrace(trace.Process("slo-storm"))
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	if _, err := c.ServeMulti(chaosWarmup, coresTraffics(opts.Seed, -1)); err != nil {
		return nil, err
	}
	c.SetLoadBudget(opts.Budget)
	stormStart := c.Now()
	if stormStart != sched.Spec.Start {
		return nil, fmt.Errorf("fleet: storm scheduled for %v but warmup ended at %v",
			sched.Spec.Start, stormStart)
	}
	if err := c.ScaleService(stormStart, coresBulkApp, coresScaleOutFor(opts.Budget)); err != nil {
		return nil, err
	}

	cs := &sloCase{
		c:        c,
		peakFast: make(map[string]float64),
		pre:      make(map[string]ServiceSnapshot),
	}
	names := c.Services()
	for _, name := range names {
		cs.pre[name] = c.ServiceStats(name)
	}
	nodes := c.Nodes()
	winStats := make(map[string]ServiceSnapshot, len(names))
	injIdx := 0
	for w := 0; w < chaosWindows; w++ {
		winEnd := stormStart + sim.Time(w+1)*chaosWindowDur
		if inject {
			for injIdx < len(sched.Injections) && sched.Injections[injIdx].At < winEnd {
				if err := applyInjection(c, nodes, sched.Injections[injIdx]); err != nil {
					return nil, fmt.Errorf("fleet: injection %v: %w", sched.Injections[injIdx], err)
				}
				injIdx++
			}
		}
		for _, name := range names {
			winStats[name] = c.ServiceStats(name)
		}
		if _, err := c.ServeMulti(chaosWindowDur, coresTraffics(opts.Seed, w)); err != nil {
			return nil, err
		}
		sample := SLOWindowSample{At: c.Now(), ActiveAlerts: c.ActiveAlerts()}
		for _, name := range names {
			before := winStats[name]
			after := c.ServiceStats(name)
			if name == chaosApp {
				sample.LCAvailability = 1
				if d := after.Sent - before.Sent; d > 0 {
					sample.LCAvailability = float64(after.HealthyServed-before.HealthyServed) / float64(d)
				}
			}
			// The class shedding order showing up as bulk shed deltas is
			// itself postmortem evidence: sheds inside an alert's
			// lookback explain where the lost demand went.
			if shed := after.Shed - before.Shed; shed > 0 {
				cs.causal = append(cs.causal, obs.CausalEvent{
					At: c.Now(), Kind: "bulk-shed", Subject: name,
					Detail: fmt.Sprintf("%d pkts", shed),
				})
			}
			if burn := c.BurnRate(name, 0); burn > cs.peakFast[name] {
				cs.peakFast[name] = burn
			}
		}
		cs.samples = append(cs.samples, sample)
	}

	cs.alerts = c.AlertEvents()
	cs.alertLog = c.AlertLogBytes()
	cs.burn = burnState(c)
	cs.causal = append(cs.causal, c.CausalEvents(stormStart)...)
	if inject {
		ids := func(node int) string {
			if node >= 0 && node < len(nodes) {
				return nodes[node].ID
			}
			return fmt.Sprintf("node-%d", node)
		}
		cs.causal = append(cs.causal, sched.CausalEvents(ids)...)
	}
	return cs, nil
}

// SLODrill runs the fleet10 experiment: the seeded storm over the
// co-resident fleet with the SLO engine judging it, plus the
// fault-free control and the determinism sweep.
func SLODrill(opts SLOOptions) (*SLOResult, error) {
	if opts.Devices < 8 {
		return nil, fmt.Errorf("fleet: SLO drill needs at least 8 devices, got %d", opts.Devices)
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("fleet: SLO drill needs a positive budget, got %d", opts.Budget)
	}
	spec := faults.DefaultStorm(opts.Devices, opts.Seed)
	spec.Start = 2*DefaultConfig().ReconfigTime + chaosWarmup
	// Same ramp slowdown as the co-residency drill: band residency
	// must be observable at window granularity.
	spec.ThermalEvery = 2 * chaosWindowDur
	spec.ThermalCoolAt = 40 * chaosWindowDur
	spec.ThermalNodes = opts.Devices / 40
	if spec.ThermalNodes < 2 {
		spec.ThermalNodes = 2
	}
	sched, err := faults.Storm(spec)
	if err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		sched.Trace(opts.Trace.Process("storm-plan").Track("schedule"))
	}

	res := &SLOResult{
		Devices: opts.Devices, RackSize: spec.RackSize,
		Seed: opts.Seed, Budget: opts.Budget,
		StormStart: spec.Start, StormEnd: sched.End(),
	}
	for _, inj := range sched.Injections {
		res.Injections = append(res.Injections, inj.String())
	}

	// The determinism sweep: the first variant is the baseline the
	// report describes; every later variant must reproduce its alert
	// log and burn state byte for byte.
	var base *sloCase
	res.DeterministicSweep = true
	for i, v := range sloSweep {
		var tr *obs.Recorder
		if i == 0 {
			tr = opts.Trace
		}
		cs, err := runSLOCase(opts, sched, v[0], v[1], true, tr)
		if err != nil {
			return nil, fmt.Errorf("fleet: slo case quantum=%d workers=%d: %w", v[0], v[1], err)
		}
		res.SweepVariants = append(res.SweepVariants, fmt.Sprintf("quantum=%d workers=%d", v[0], v[1]))
		if i == 0 {
			base = cs
			continue
		}
		if !bytes.Equal(cs.alertLog, base.alertLog) || cs.burn != base.burn {
			res.DeterministicSweep = false
		}
	}
	c := base.c
	cfg := c.Config()

	res.Windows = c.SLOWindows()
	res.Rules = c.AlertRules()
	res.Samples = base.samples
	res.Alerts = base.alerts
	res.AlertLog = string(base.alertLog)

	// Attribution lookback: a firing can trail its root cause by the
	// gossip detection bound (silent death → declared failed) plus the
	// full PR-load retry budget (failed loads re-place and retry
	// before demand recovers) plus one mid window of burn accumulation.
	res.Lookback = c.GossipDetectionBound() +
		sim.Time(cfg.LoadRetries+1)*cfg.ReconfigTime +
		sim.Time(sloWindowTicks[1])*cfg.Heartbeat
	res.Postmortems = obs.Correlate(base.alerts, base.causal, res.Lookback)
	res.Timeline = string(obs.RenderTimeline(res.Postmortems))

	classOf := func(svc string) ServiceClass { return c.services[svc].Class }
	for _, pm := range res.Postmortems {
		res.FiringsTotal++
		if classOf(pm.Alert.Service) == ClassLatencyCritical {
			res.FiringsLC++
		}
		if !pm.Scheduled() {
			res.UnattributedFirings++
		}
	}

	// Resolution gate: every alert resolved, and the last resolution
	// inside the measured recovery bound — the storm's end or the last
	// failover's completed re-placement, whichever is later, plus the
	// slowest window's drain time and the resolve hysteresis.
	res.AllResolved = c.ActiveAlerts() == 0
	for _, ev := range base.alerts {
		if ev.State == obs.AlertResolved && ev.At > res.LastResolvedAt {
			res.LastResolvedAt = ev.At
		}
	}
	recovered := res.StormEnd
	for _, f := range c.Failovers() {
		if f.RecoveredAt > recovered {
			recovered = f.RecoveredAt
		}
	}
	slowest := sim.Time(sloWindowTicks[len(sloWindowTicks)-1]) * cfg.Heartbeat
	res.RecoveryBound = recovered + slowest + sim.Time(alertResolveTicks+2)*cfg.Heartbeat

	// Per-service storm outcomes.
	log := c.slo.alerter.Log()
	for _, name := range c.Services() {
		svc := c.services[name]
		before := base.pre[name]
		after := c.ServiceStats(name)
		sr := SLOServiceResult{
			Name: name, Class: svc.Class, Target: svc.SLO.Availability,
			PeakFastBurn: base.peakFast[name],
			Firings:      log.Count(name, "", obs.AlertFiring),
			Resolves:     log.Count(name, "", obs.AlertResolved),
		}
		if d := after.Sent - before.Sent; d > 0 {
			sr.Availability = float64(after.HealthyServed-before.HealthyServed) / float64(d)
		}
		res.Services = append(res.Services, sr)
	}

	// Control: the same fleet, traffic and elective scale-out with
	// zero injections must produce zero firings and zero attributions.
	ctl, err := runSLOCase(opts, sched, sloSweep[0][0], sloSweep[0][1], false, nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: slo control case: %w", err)
	}
	ctlPMs := obs.Correlate(ctl.alerts, ctl.causal, res.Lookback)
	for _, ev := range ctl.alerts {
		if ev.State == obs.AlertFiring {
			res.ControlFirings++
		}
	}
	for _, pm := range ctlPMs {
		res.ControlAttributions += len(pm.Causes)
	}

	res.Registry = c.Metrics()
	res.Metrics = res.Registry.Values()
	return res, nil
}
