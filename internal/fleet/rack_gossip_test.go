package fleet

import (
	"bytes"
	"testing"

	"harmonia/internal/faults"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// rackPhases runs the determinism workload (clean phase + mid-phase
// kill) on a gossip-health fleet with the given rack count and worker
// count, returning both PhaseStats and the exported trace bytes.
func rackPhases(t *testing.T, racks, workers int, rackP2C bool) (PhaseStats, PhaseStats, []byte) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Racks = racks
	cfg.RackP2C = rackP2C
	cfg.GossipHealth = true
	cfg.ServeWorkers = workers
	c, err := BuildCluster(cfg, testApp, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	c.SetTrace(rec.Process("fleet"))
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	tr := DefaultTraffic(testApp)
	tr.OfferedGbps = 200
	first, err := c.Serve(120*sim.Microsecond, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(c.Nodes()[2].ID); err != nil {
		t.Fatal(err)
	}
	tr2 := tr
	tr2.Seed = tr.Seed + 50
	second, err := c.Serve(2*c.GossipDetectionBound()+2*cfg.ReconfigTime, tr2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return first, second, buf.Bytes()
}

// TestRackCountInvariantByDefault is the rack tier's determinism
// contract: without RackP2C the racks are an observational grouping,
// so same-seed runs produce byte-identical PhaseStats AND trace bytes
// across rack counts — with gossip health on and a mid-phase failover
// in the loop.
func TestRackCountInvariantByDefault(t *testing.T) {
	base1, base2, baseTrace := rackPhases(t, 1, 0, false)
	if base1.Served == 0 || base2.Served == 0 {
		t.Fatalf("phases served nothing: %+v / %+v", base1, base2)
	}
	for _, racks := range []int{2, 4} {
		got1, got2, trace := rackPhases(t, racks, 0, false)
		if got1 != base1 || got2 != base2 {
			t.Errorf("racks=%d: stats diverge:\n racks=1: %+v / %+v\n racks=%d: %+v / %+v",
				racks, base1, base2, racks, got1, got2)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Errorf("racks=%d: trace bytes diverge from racks=1", racks)
		}
	}
}

// TestRackP2CDeterministicAcrossWorkers extends the worker-count
// determinism contract to rack-first dispatch: the rack digests are
// frozen at control-plane barriers and candidate racks derive from the
// flow hash, so PhaseStats and traces cannot depend on how many
// workers route the racks.
func TestRackP2CDeterministicAcrossWorkers(t *testing.T) {
	base1, base2, baseTrace := rackPhases(t, 4, 1, true)
	if base1.Served == 0 || base2.Served == 0 {
		t.Fatalf("phases served nothing: %+v / %+v", base1, base2)
	}
	for _, workers := range []int{2, 8} {
		got1, got2, trace := rackPhases(t, 4, workers, true)
		if got1 != base1 || got2 != base2 {
			t.Errorf("workers=%d: stats diverge:\n 1 worker: %+v / %+v\n %d workers: %+v / %+v",
				workers, base1, base2, workers, got1, got2)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Errorf("workers=%d: trace bytes diverge from 1 worker", workers)
		}
	}
}

// TestRackP2CServesAndGroups sanity-checks the rack-first path: the
// shard layout nests in the racks, traffic serves, and the per-rack
// aggregates cover the fleet.
func TestRackP2CServesAndGroups(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Racks = 4
	cfg.RackP2C = true
	c, err := BuildCluster(cfg, testApp, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	stats, err := c.Serve(200*sim.Microsecond, DefaultTraffic(testApp))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served == 0 {
		t.Fatalf("rack-first dispatch served nothing: %+v", stats)
	}
	if got := c.RackCount(); got != 4 {
		t.Fatalf("RackCount = %d, want 4", got)
	}
	if got := len(c.router.shards); got != 4 {
		t.Fatalf("shard count = %d, want one per rack", got)
	}
	total, ready := 0, 0
	for _, rs := range c.Racks() {
		total += rs.Nodes
		ready += rs.Ready
	}
	if total != 8 {
		t.Errorf("rack node aggregates sum to %d, want 8", total)
	}
	if ready != 8 {
		t.Errorf("rack ready aggregates sum to %d, want 8", ready)
	}
	// Shard = rack: every node's shard must equal its rack.
	for _, n := range c.Nodes() {
		if n.shard != n.rack {
			t.Errorf("node %s: shard %d != rack %d", n.ID, n.shard, n.rack)
		}
	}
}

// TestGossipKillDetectionAndFailover is the gossip-mode counterpart of
// the cohort detection test: a silently killed device is confirmed
// dead within GossipDetectionBound, feeds the normal failover path and
// ends drained.
func TestGossipKillDetectionAndFailover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GossipHealth = true
	c, err := BuildCluster(cfg, testApp, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)

	victim := c.Nodes()[0].ID
	faultAt := c.Now()
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	bound := c.GossipDetectionBound()
	c.RunMonitorUntil(faultAt + bound)

	n, err := c.Node(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n.State() != Drained {
		t.Fatalf("victim state = %s after %v, want drained", n.State(), bound)
	}
	reports := c.Failovers()
	if len(reports) != 1 {
		t.Fatalf("got %d failover reports, want 1", len(reports))
	}
	detect := reports[0].DetectedAt - faultAt
	if detect <= 0 || detect > bound {
		t.Errorf("detection latency %v outside (0, %v]", detect, bound)
	}
	// FailedAfter semantics survive the protocol swap: confirmation
	// needs FailedAfter consecutive missed probes, one tick apart at
	// best (escalation), so detection cannot beat FailedAfter-1 ticks.
	if min := sim.Time(cfg.FailedAfter-1) * cfg.Heartbeat; detect < min {
		t.Errorf("detection latency %v beats %d consecutive missed probes (%v)",
			detect, cfg.FailedAfter, min)
	}
	// The confirmation must be on the protocol event log too.
	confirmed := false
	for _, ev := range c.GossipEvents() {
		if ev.Node == victim && ev.Kind == "confirmed" {
			confirmed = true
		}
	}
	if !confirmed {
		t.Error("no confirmed gossip event for the victim")
	}
}

// TestGossipFalseSuspicionRefutedNoFailover plants a false suspicion
// of a live node: the protocol must refute it with an incarnation bump
// and the fleet must never start a failover.
func TestGossipFalseSuspicionRefutedNoFailover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GossipHealth = true
	c, err := BuildCluster(cfg, testApp, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)

	target := c.Nodes()[3].ID
	took, err := c.InjectGossipSuspicion(target)
	if err != nil {
		t.Fatal(err)
	}
	if !took {
		t.Fatal("suspicion of a live node did not take")
	}
	c.RunMonitorUntil(c.Now() + 2*c.GossipDetectionBound())

	n, _ := c.Node(target)
	if n.State() != Healthy {
		t.Fatalf("falsely suspected node is %s, want healthy", n.State())
	}
	if got := len(c.Failovers()); got != 0 {
		t.Fatalf("false suspicion caused %d failovers", got)
	}
	refuted, confirmed := false, false
	for _, ev := range c.GossipEvents() {
		if ev.Node != target {
			continue
		}
		switch ev.Kind {
		case "refuted":
			refuted = true
			if ev.Incarnation == 0 {
				t.Error("refutation did not bump the incarnation")
			}
		case "confirmed":
			confirmed = true
		}
	}
	if !refuted {
		t.Error("no refutation event for the falsely suspected node")
	}
	if confirmed {
		t.Error("falsely suspected live node was confirmed dead")
	}
	if st := c.GossipStats(); st.Refutations == 0 {
		t.Errorf("gossip stats recorded no refutations: %+v", st)
	}
}

// TestGossipStormDetectionBound replays the fleet5 storm's injection
// schedule (monitor only, no traffic) against a 300-node gossip fleet
// and asserts the detection-latency bound for every silent kill: each
// killed node's Failed transition lands within GossipDetectionBound of
// the kill. Nodes that only suffered the sub-threshold command
// corruption burst must never fail — the FailedAfter tolerance the
// protocol preserves from the central sweep.
func TestGossipStormDetectionBound(t *testing.T) {
	if testing.Short() {
		t.Skip("300-node storm replay")
	}
	const devices = 300
	cfg := DefaultConfig()
	cfg.GossipHealth = true
	c, err := BuildCluster(cfg, testApp, devices, devices)
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)

	spec := faults.DefaultStorm(devices, 11)
	spec.Start = c.Now()
	sched, err := faults.Storm(spec)
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	killedAt := map[string]sim.Time{}
	for _, inj := range sched.Injections {
		c.RunMonitorUntil(inj.At)
		id := ""
		if inj.Node >= 0 && inj.Node < len(nodes) {
			id = nodes[inj.Node].ID
		}
		switch inj.Kind {
		case faults.KillNode:
			if err := c.Kill(id); err != nil {
				t.Fatal(err)
			}
			killedAt[id] = inj.At
		case faults.LinkDown:
			if err := c.CutLink(inj.At, id); err != nil {
				t.Fatal(err)
			}
		case faults.LinkUp:
			if err := c.Revive(inj.At, id); err != nil {
				t.Fatal(err)
			}
		case faults.ThermalSet:
			if inj.Arg == 0 {
				err = c.Cool(id)
			} else {
				err = c.Overheat(id, inj.Arg)
			}
			if err != nil {
				t.Fatal(err)
			}
		case faults.CorruptStart:
			limit := int(inj.Arg)
			nodes[inj.Node].Inst.SetWireFaultInjector(func(attempt int, buf []byte) []byte {
				if attempt < limit && len(buf) > 0 {
					buf[0] ^= 0xFF
				}
				return buf
			})
		case faults.CorruptEnd:
			nodes[inj.Node].Inst.SetWireFaultInjector(nil)
		}
		// PR-load and backend faults exercise paths this replay's
		// stateless, no-traffic fleet does not take.
	}
	if len(killedAt) == 0 {
		t.Fatal("storm killed nothing")
	}
	bound := c.GossipDetectionBound()
	c.RunMonitorUntil(sched.End() + 2*bound)

	detected := map[string]sim.Time{}
	for _, tr := range c.Transitions() {
		if tr.To == Failed {
			if _, seen := detected[tr.Node]; !seen {
				detected[tr.Node] = tr.At
			}
		}
	}
	for id, at := range killedAt {
		d, ok := detected[id]
		if !ok {
			t.Errorf("killed node %s never declared failed", id)
			continue
		}
		if lat := d - at; lat <= 0 || lat > bound {
			t.Errorf("node %s: detection latency %v outside (0, %v]", id, lat, bound)
		}
	}
	// The corrupted set's burst (CorruptAttempts < driver retries) must
	// never cost a node: command-path retransmission absorbs it.
	for _, i := range sched.Corrupted {
		id := nodes[i].ID
		if _, failed := detected[id]; failed {
			t.Errorf("corruption-burst node %s was declared failed", id)
		}
	}
	// Amortization: the whole storm's probe cost stays O(fanout) per
	// tick — far under the central sweep's N probes per tick.
	st := c.GossipStats()
	if st.Ticks == 0 {
		t.Fatal("gossip ran no ticks")
	}
	if perTick := float64(st.Probes) / float64(st.Ticks); perTick > devices/4 {
		t.Errorf("%.1f probes/tick across the storm; want O(fanout), got O(N)", perTick)
	}
}
