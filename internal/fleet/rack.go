package fleet

import (
	"fmt"

	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// The rack tier groups the fleet's nodes into contiguous racks — the
// same contiguous blocks the failure model's rack-power-loss faults
// cut — and maintains per-rack aggregate digests: datapath queue
// backlog, ready replicas and node health counts. The digests refresh
// on the serial control-plane path at barriers (heartbeat ticks and
// phase starts), never per packet, so they are worker-count
// deterministic by the same ownership rule as the router shards.
//
// Two dispatch modes:
//
//   - Default (RackP2C off): the rack tier is observational — it feeds
//     the registry's per-rack metrics and groups the gossip domain —
//     and dispatch is exactly the flat sharded path, so same-seed
//     results are byte-identical across rack counts.
//
//   - RackP2C: the router's shard layout nests in the racks (one
//     shard per rack, contiguous nodes), and each packet first
//     two-choices between two hash-derived candidate racks on their
//     barrier-frozen backlog-per-ready-replica digests, then runs the
//     existing in-shard power-of-two-choices inside the winning rack.
//     Per-packet dispatch cost is O(1) in the fleet size; the rack
//     count becomes part of the seeded configuration, exactly as the
//     shard count already is.

// autoRackNodes is how many nodes an automatic rack covers.
const autoRackNodes = 64

// rackTier is the cluster's rack grouping and digest state.
type rackTier struct {
	c      *Cluster
	frozen bool
	count  int
	// rackOf maps node commission index -> rack id. Racks are
	// contiguous blocks of the commission order; nodes commissioned
	// after the freeze join racks round-robin.
	rackOf []int
	// nodesIn lists node indices per rack.
	nodesIn [][]int
	// queue is the per-rack aggregate datapath backlog, refreshed at
	// barriers (refreshedAt guards re-entry at one instant).
	queue       []sim.Time
	refreshedAt sim.Time
	refreshes   int64
}

// rackCount resolves the configured or automatic rack count for n
// nodes: one rack per autoRackNodes nodes, at least one.
func (c *Cluster) rackCount(n int) int {
	if r := c.cfg.Racks; r > 0 {
		if r > n && n > 0 {
			return n
		}
		return r
	}
	r := (n + autoRackNodes - 1) / autoRackNodes
	if r < 1 {
		r = 1
	}
	return r
}

// freeze fixes the rack layout: the count resolves from the fleet
// size and every node joins its contiguous block. Runs once, from the
// router's own freeze.
func (rt *rackTier) freeze() {
	if rt.frozen {
		return
	}
	rt.frozen = true
	n := len(rt.c.nodes)
	rt.count = rt.c.rackCount(n)
	rt.rackOf = make([]int, n)
	rt.nodesIn = make([][]int, rt.count)
	for i := range rt.rackOf {
		r := i * rt.count / n
		rt.rackOf[i] = r
		rt.nodesIn[r] = append(rt.nodesIn[r], i)
		rt.c.nodes[i].rack = r
	}
	rt.queue = make([]sim.Time, rt.count)
	rt.c.registerRackMetrics()
}

// join assigns a node commissioned after the freeze to a rack,
// round-robin by commission index (mirroring the shard join rule).
func (rt *rackTier) join(i int) int {
	r := i % rt.count
	rt.rackOf = append(rt.rackOf, r)
	rt.nodesIn[r] = append(rt.nodesIn[r], i)
	return r
}

// refresh recomputes the per-rack backlog digests at a barrier. The
// digests stay frozen until the next barrier: packets dispatched
// between barriers all see the same rack costs, which keeps RackP2C
// results independent of the worker count. Only the RackP2C path
// refreshes eagerly (and traces the refresh); the observational
// default computes digests on demand at metric-snapshot time.
func (rt *rackTier) refresh(now sim.Time) {
	if !rt.frozen || (rt.refreshes > 0 && now == rt.refreshedAt) {
		return
	}
	rt.refreshedAt = now
	rt.refreshes++
	// A digest refresh is a barrier by definition; make sure the shard
	// dispatch views and flow caches refresh with it even when a caller
	// reaches refresh() outside the heartbeat path.
	rt.c.router.bumpEpoch()
	var maxQ sim.Time
	for r := range rt.queue {
		var q sim.Time
		for _, i := range rt.nodesIn[r] {
			q += rt.c.nodes[i].QueueDepth(now)
		}
		rt.queue[r] = q
		if q > maxQ {
			maxQ = q
		}
	}
	if rt.c.ctrl != nil {
		e := obs.Instant(obs.CatRack, "rack-digest", now)
		e.K2, e.V2 = "racks", int64(rt.count)
		e.K3, e.V3 = "max_queue_ps", int64(maxQ)
		rt.c.ctrl.Add(e)
	}
}

// digestQueue reads one rack's aggregate backlog digest on demand —
// the metric-snapshot path, which must not disturb the barrier-frozen
// dispatch digests.
func (rt *rackTier) digestQueue(r int) sim.Time {
	if !rt.frozen {
		return 0
	}
	var q sim.Time
	for _, i := range rt.nodesIn[r] {
		q += rt.c.nodes[i].QueueDepth(rt.c.now)
	}
	return q
}

// rackRefresh refreshes the dispatch digests when the rack-first path
// is live. Called at barriers on the serial control-plane path.
func (c *Cluster) rackRefresh(now sim.Time) {
	if c.cfg.RackP2C {
		c.racks.refresh(now)
	}
}

// RackCount reports the frozen rack count (0 before the first routing
// operation freezes the layout).
func (c *Cluster) RackCount() int {
	if !c.racks.frozen {
		return 0
	}
	return c.racks.count
}

// RackStats is one rack's aggregate view for operator output.
type RackStats struct {
	Rack     int
	Nodes    int
	Healthy  int
	Degraded int
	Down     int
	// Ready is the rack's ready replica count across services.
	Ready int
	// QueuePs is the rack's aggregate datapath backlog.
	QueuePs sim.Time
}

// Racks reports per-rack aggregates at the cluster's current time.
func (c *Cluster) Racks() []RackStats {
	rt := c.racks
	if !rt.frozen {
		return nil
	}
	out := make([]RackStats, rt.count)
	for r := range out {
		out[r] = RackStats{Rack: r, Nodes: len(rt.nodesIn[r]), QueuePs: rt.digestQueue(r)}
		for _, i := range rt.nodesIn[r] {
			switch rt.c.nodes[i].state {
			case Healthy:
				out[r].Healthy++
			case Degraded:
				out[r].Degraded++
			default:
				out[r].Down++
			}
		}
	}
	for _, rep := range c.replicas {
		if rep.node != nil && rep.ReadyAt <= c.now && c.routableState(rep.node.state) {
			out[rep.node.rack].Ready++
		}
	}
	return out
}

// Rack metric names.
const (
	mRackQueue = "harmonia_rack_queue_ps"
	mRackReady = "harmonia_rack_replicas_ready"
	mRackDown  = "harmonia_rack_nodes_down"
)

// registerRackMetrics wires the per-rack digests into the registry as
// read-through callbacks, once the rack layout is frozen and the rack
// count is known.
func (c *Cluster) registerRackMetrics() {
	for r := 0; r < c.racks.count; r++ {
		r := r
		labels := map[string]string{"rack": fmt.Sprintf("%03d", r)}
		c.reg.GaugeL(mRackQueue, labels, "Aggregate datapath backlog per rack (ps).",
			func() float64 { return float64(c.racks.digestQueue(r)) })
		c.reg.GaugeL(mRackReady, labels, "Ready replicas per rack.",
			func() float64 {
				n := 0
				for _, rep := range c.replicas {
					if rep.node != nil && rep.node.rack == r &&
						rep.ReadyAt <= c.now && c.routableState(rep.node.state) {
						n++
					}
				}
				return float64(n)
			})
		c.reg.GaugeL(mRackDown, labels, "Failed or drained nodes per rack.",
			func() float64 {
				n := 0
				for _, i := range c.racks.nodesIn[r] {
					if s := c.nodes[i].state; s == Failed || s == Drained {
						n++
					}
				}
				return float64(n)
			})
	}
}
