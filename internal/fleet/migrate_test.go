package fleet

import (
	"testing"

	"harmonia/internal/apps"
	"harmonia/internal/net"
	"harmonia/internal/sim"
)

// buildStateful builds an n-device fleet hosting n replicas of a
// stateful layer4-lb service with the drill's 8-backend pool.
func buildStateful(t *testing.T, cfg Config, n int) *Cluster {
	t.Helper()
	info, err := apps.Lookup(testApp)
	if err != nil {
		t.Fatal(err)
	}
	svc := AppService(info, n, net.IPv4(20, 0, 0, 1))
	svc.Stateful = true
	svc.Backends = migrationBackends()
	c, err := BuildServiceCluster(cfg, svc, n)
	if err != nil {
		t.Fatalf("BuildServiceCluster: %v", err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	return c
}

func TestStatefulServiceValidation(t *testing.T) {
	c, err := NewCluster(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(Service{Name: "s", Replicas: 1, Stateful: true}); err == nil {
		t.Error("stateful service without backends accepted")
	}
	cfg := DefaultConfig()
	cfg.SnapshotEvery = -1
	if _, err := NewCluster(cfg); err == nil {
		t.Error("negative SnapshotEvery accepted")
	}
}

func TestFlowSnapshotTravelsCommandPath(t *testing.T) {
	// The acceptance assertion: snapshot and replay are real command
	// transactions executed by the source and target control kernels,
	// not an out-of-band copy.
	c := buildStateful(t, DefaultConfig(), 3)
	if _, err := c.Serve(200*sim.Microsecond, DefaultTraffic(testApp)); err != nil {
		t.Fatal(err)
	}
	src := c.Nodes()[2]
	reps := src.Replicas()
	if len(reps) != 1 || reps[0].flows == nil {
		t.Fatalf("node %s should host 1 stateful replica", src.ID)
	}
	pinned := reps[0].flows.table.Len()
	if pinned == 0 {
		t.Fatal("no flows established on the source replica")
	}
	srcBefore := src.Inst.Kernel().Executed()
	rep, err := c.DrainNode(c.Now(), src.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrated != pinned {
		t.Errorf("migrated %d flows, want %d", rep.Migrated, pinned)
	}
	// The drain read the table off the source device: at least one
	// TableRead per framed row beyond the heartbeat traffic.
	if delta := src.Inst.Kernel().Executed() - srcBefore; delta < 1 {
		t.Errorf("source kernel executed %d commands during drain, want table reads", delta)
	}
	recs := c.Migrations()
	if len(recs) != 1 {
		t.Fatalf("got %d migration records, want 1", len(recs))
	}
	mr := recs[0]
	if !mr.Live || mr.From != src.ID || mr.Restored != pinned || mr.Dropped != 0 {
		t.Errorf("record %+v, want live migration of %d flows from %s", mr, pinned, src.ID)
	}
	// The replayed table is really inside the target replica.
	r := reps[0]
	tgt, err := c.Node(r.Node)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.ID == src.ID {
		t.Fatal("replica did not move")
	}
	if got := r.flows.table.Len(); got != pinned {
		t.Errorf("target table holds %d flows, want %d", got, pinned)
	}
	// And it is readable back over the target's command path.
	entries, err := c.readFlowSnapshot(tgt, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != pinned {
		t.Errorf("target snapshot has %d entries, want %d", len(entries), pinned)
	}
}

func TestDeadNodeFallsBackToPeriodicSnapshot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SnapshotEvery = 1 // capture on every successful probe
	c := buildStateful(t, cfg, 3)
	if _, err := c.Serve(200*sim.Microsecond, DefaultTraffic(testApp)); err != nil {
		t.Fatal(err)
	}
	victim := c.Nodes()[0]
	reps := victim.Replicas()
	if len(reps) != 1 || reps[0].flows == nil {
		t.Fatalf("node %s should host 1 stateful replica", victim.ID)
	}
	pinned := reps[0].flows.table.Len()
	if pinned == 0 {
		t.Fatal("no flows established")
	}
	if err := c.Kill(victim.ID); err != nil {
		t.Fatal(err)
	}
	// The kill corrupts the command wire, so no further snapshot can be
	// taken; failover must use the last periodic capture.
	c.RunMonitorUntil(c.Now() + sim.Time(cfg.FailedAfter+2)*cfg.Heartbeat)
	if victim.State() != Drained {
		t.Fatalf("victim state = %s, want drained", victim.State())
	}
	recs := c.Migrations()
	if len(recs) != 1 {
		t.Fatalf("got %d migration records, want 1", len(recs))
	}
	mr := recs[0]
	if mr.Live {
		t.Error("dead-node migration claims a live table read")
	}
	if mr.Restored == 0 || mr.Restored > pinned {
		t.Errorf("restored %d flows from snapshot, want 1..%d", mr.Restored, pinned)
	}
	// The snapshot predates detection by at least the missed heartbeats.
	if mr.SnapshotAge <= 0 {
		t.Errorf("snapshot age = %v, want > 0 (capture predates detection)", mr.SnapshotAge)
	}
}

func TestMigrationDisabledCarriesNothing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrateFlows = false
	c := buildStateful(t, cfg, 3)
	if _, err := c.Serve(200*sim.Microsecond, DefaultTraffic(testApp)); err != nil {
		t.Fatal(err)
	}
	rep, err := c.DrainNode(c.Now(), c.Nodes()[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrated != 0 || len(c.Migrations()) != 0 {
		t.Errorf("migration ran while disabled: %d flows, %d records",
			rep.Migrated, len(c.Migrations()))
	}
}

func TestClusterRemoveBackendEvicts(t *testing.T) {
	c := buildStateful(t, DefaultConfig(), 2)
	if _, err := c.Serve(200*sim.Microsecond, DefaultTraffic(testApp)); err != nil {
		t.Fatal(err)
	}
	dead := migrationBackends()[1]
	pinnedToDead := 0
	for _, r := range c.Replicas() {
		for _, e := range r.flows.table.Snapshot() {
			if e.Backend == dead {
				pinnedToDead++
			}
		}
	}
	if pinnedToDead == 0 {
		t.Fatal("no flows pinned to the target backend")
	}
	evicted, err := c.RemoveBackend(testApp, dead, true)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != pinnedToDead {
		t.Errorf("evicted %d flows, want %d", evicted, pinnedToDead)
	}
	if _, err := c.RemoveBackend(testApp, net.IPv4(9, 9, 9, 9), true); err == nil {
		t.Error("removing unknown backend should fail")
	}
	if _, err := c.RemoveBackend("nope", dead, true); err == nil {
		t.Error("unknown service should fail")
	}
}

func TestMigrationDrillBeatsColdRestart(t *testing.T) {
	d, err := MigrationDrill(DefaultConfig(), 3, DefaultTraffic(testApp))
	if err != nil {
		t.Fatal(err)
	}
	if d.Cold.Established == 0 || d.Migrated.Established == 0 {
		t.Fatal("drill established no flows")
	}
	if d.Cold.Established != d.Migrated.Established {
		t.Errorf("cases diverged: %d vs %d established flows",
			d.Cold.Established, d.Migrated.Established)
	}
	// The headline: cold restart re-hashes established flows at the
	// pool-change rate; migration carries pins across, disrupting
	// strictly fewer and staying within the Maglev re-hash bound.
	if d.Cold.Disrupted <= d.Migrated.Disrupted {
		t.Errorf("cold disrupted %d flows, migrated %d — migration must be strictly better",
			d.Cold.Disrupted, d.Migrated.Disrupted)
	}
	if d.MaglevBound <= 0 {
		t.Errorf("maglev bound = %v, want > 0 after a backend drain", d.MaglevBound)
	}
	if d.Migrated.Disruption > d.MaglevBound {
		t.Errorf("migrated disruption %.4f above maglev bound %.4f",
			d.Migrated.Disruption, d.MaglevBound)
	}
	if d.Migrated.FlowsCarried == 0 {
		t.Error("migrated case carried no flows")
	}
	if d.Cold.FlowsCarried != 0 {
		t.Errorf("cold case carried %d flows, want 0", d.Cold.FlowsCarried)
	}
	if len(d.Records) == 0 {
		t.Error("no migration records from the migrated case")
	}
}

func TestTransitionsMonotonic(t *testing.T) {
	// Regression: failNode/DrainNode used to stamp the Drained step at
	// the (future) recovery completion time, so with ReconfigTime much
	// larger than Heartbeat the log ran backwards: later heartbeat
	// transitions carried earlier timestamps than the Drained entry
	// before them.
	cfg := DefaultConfig()
	cfg.ReconfigTime = 400 * cfg.Heartbeat
	cl, err := BuildCluster(cfg, testApp, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cl.RunMonitorUntil(2 * cfg.ReconfigTime)
	if err := cl.Kill(cl.Nodes()[0].ID); err != nil {
		t.Fatal(err)
	}
	// Run long enough for the failover plus many post-failover
	// heartbeats that land before the replacement's ReadyAt.
	cl.RunMonitorUntil(cl.Now() + cfg.ReconfigTime + 50*cfg.Heartbeat)
	// Degrade another node after the drain decision but before its
	// completion would have been stamped under the old scheme.
	if err := cl.Overheat(cl.Nodes()[1].ID, 80_000); err != nil {
		t.Fatal(err)
	}
	cl.RunMonitorUntil(cl.Now() + 3*cfg.Heartbeat)

	trs := cl.Transitions()
	if len(trs) < 3 {
		t.Fatalf("expected several transitions, got %d", len(trs))
	}
	for i := 1; i < len(trs); i++ {
		if trs[i].At < trs[i-1].At {
			t.Errorf("transition log runs backwards: %v after %v", trs[i], trs[i-1])
		}
	}
	foundDrained := false
	for _, tr := range trs {
		if tr.To == Drained {
			foundDrained = true
			if tr.CompletedAt <= tr.At {
				t.Errorf("drained transition %v should record a later completion", tr)
			}
		}
	}
	if !foundDrained {
		t.Error("no drained transition recorded")
	}
}

func TestDrainRacingSourceDeath(t *testing.T) {
	// Failover racing an in-flight migration: the source answers the
	// first TableRead of a planned drain, then dies before the export
	// completes. The drain must fall back to the periodic snapshot and
	// finish — not wedge on the half-read live table or lose the state.
	cfg := DefaultConfig()
	cfg.SnapshotEvery = 1 // capture on every successful probe
	c := buildStateful(t, cfg, 3)
	tr := DefaultTraffic(testApp)
	tr.Flows = 512 // enough pins that the export spans several rows
	if _, err := c.Serve(200*sim.Microsecond, tr); err != nil {
		t.Fatal(err)
	}
	victim := c.Nodes()[0]
	reps := victim.Replicas()
	if len(reps) != 1 || reps[0].flows == nil {
		t.Fatalf("node %s should host 1 stateful replica", victim.ID)
	}
	r := reps[0]
	pinned := r.flows.table.Len()
	if pinned <= 60 {
		t.Fatalf("only %d flows pinned, need a multi-row export", pinned)
	}
	snap, ok := c.snapshots[r.Name()]
	if !ok || len(snap.entries) == 0 {
		t.Fatal("no periodic snapshot captured before the drain")
	}

	// The source dies mid-drain: the first command (the row-0 TableRead
	// that starts the export) succeeds, every later command — including
	// the rest of the table read — is corrupted past all retries.
	cmds := 0
	victim.Inst.SetWireFaultInjector(func(attempt int, buf []byte) []byte {
		if attempt == 0 {
			cmds++
		}
		if cmds > 1 && len(buf) > 0 {
			buf[0] ^= 0xFF
		}
		return buf
	})

	// Drain off a heartbeat tick so the fallback capture is strictly
	// older than the decision time.
	rep, err := c.DrainNode(c.Now()+3*sim.Microsecond, victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cmds < 2 {
		t.Fatalf("drain issued %d commands on the source, want the export to have started", cmds)
	}
	if rep.Replaced != 1 || rep.Unplaced != 0 {
		t.Fatalf("failover report %+v, want the replica re-placed", rep)
	}
	if r.Node == "" || r.Node == victim.ID {
		t.Fatalf("replica landed on %q, want a surviving node", r.Node)
	}
	recs := c.Migrations()
	if len(recs) != 1 {
		t.Fatalf("got %d migration records, want 1", len(recs))
	}
	mr := recs[0]
	if mr.Live {
		t.Error("migration claims a live read despite the source dying mid-export")
	}
	if mr.Flows != len(snap.entries) {
		t.Errorf("carried %d flows, want the %d from the periodic snapshot", mr.Flows, len(snap.entries))
	}
	if mr.Restored == 0 {
		t.Error("snapshot fallback restored nothing")
	}
	if mr.SnapshotAge <= 0 {
		t.Errorf("snapshot age = %v, want > 0 (capture predates the drain)", mr.SnapshotAge)
	}
}
