package fleet

import (
	"errors"
	"fmt"

	"harmonia/internal/apps"
	"harmonia/internal/cmdif"
	"harmonia/internal/device"
	"harmonia/internal/faults"
	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
	"harmonia/internal/tenancy"
)

// The background rebalancer reclaims the fragmentation that accumulates
// under churn: evictions retire host-queue ranges the allocator never
// recycles (tenancy.go), so a long-lived node strands queues until its
// slots outlive its queue horizon. At heartbeat barriers the rebalancer
// scores the fleet, picks the worst-fragmented node and drains it
// through crash-safe live moves — pre-copy the connection table over
// the command path, replay the dirty delta accumulated during the
// target's slot reconfiguration, then cut routing over at a barrier —
// and finally rebuilds the empty node's queue allocator, returning the
// stranded ranges.
//
// Every move is a state machine planned → pre-copy → delta-replay →
// cutover → done | aborted. Each phase carries a deadline and bounded
// retries with exponential backoff; any unrecoverable failure aborts
// the move back to the still-serving source with zero flow disruption
// (the source is never detached before cutover). Moves take the
// PR-load budget as elective class, so concurrent failovers always
// preempt them. All decisions run on the serial barrier path —
// results are byte-identical across worker and quantum settings.

// Rebalancer cadence and bounds (Config zero-value fallbacks).
const (
	defaultRebalanceEvery   = 8
	defaultRebalanceRetries = 2
)

func (c *Cluster) rebalanceEvery() int64 {
	if c.cfg.RebalanceEvery > 0 {
		return int64(c.cfg.RebalanceEvery)
	}
	return defaultRebalanceEvery
}

func (c *Cluster) rebalanceTimeout() sim.Time {
	if c.cfg.RebalanceTimeout > 0 {
		return c.cfg.RebalanceTimeout
	}
	return 4 * c.cfg.ReconfigTime
}

func (c *Cluster) rebalanceRetries() int {
	if c.cfg.RebalanceRetries > 0 {
		return c.cfg.RebalanceRetries
	}
	return defaultRebalanceRetries
}

func (c *Cluster) rebalanceBackoff() sim.Time {
	if c.cfg.RebalanceBackoff > 0 {
		return c.cfg.RebalanceBackoff
	}
	return 2 * c.cfg.Heartbeat
}

// movePhase is a rebalance move's position in its state machine.
type movePhase string

const (
	movePlanned movePhase = "planned"
	movePreCopy movePhase = "pre-copy"
	moveDelta   movePhase = "delta-replay"
	moveDone    movePhase = "done"
	moveAborted movePhase = "aborted"
)

// rebalanceMove is one replica's crash-safe migration off the rebuild
// victim. The source keeps serving until cutover, so aborting at any
// phase loses nothing.
type rebalanceMove struct {
	r     *Replica
	src   *Node
	dst   *Node
	phase movePhase
	// reqAt is the plan time — the budget request time of the move's
	// elective grant, which is what makes failover preemption provable
	// from the grant log.
	reqAt sim.Time
	// phaseAt is when the current phase was entered (slid forward while
	// a planned move waits on budget headroom: that wait is preemption
	// working, not phase time).
	phaseAt sim.Time
	// attempts counts failed tries in the current phase; nextTry gates
	// the next one (exponential backoff). retries accumulates across
	// phases for the record.
	attempts int
	nextTry  sim.Time
	retries  int

	// shadow is the target-side tenant admitted for the move; dstFlows
	// the connection table building on the target. Both exist from the
	// end of the planned phase.
	shadow   *tenancy.Tenant
	dstFlows *flowState

	preCopy            []apps.ConnEntry
	preCopyAt, deltaAt sim.Time
	deltaRows          int
	restored, dropped  int
}

// rebalancer is the cluster's barrier-stepped rebalance state.
type rebalancer struct {
	enabled bool
	tick    int64
	victim  *Node
	moves   []*rebalanceMove
	// latches are armed one-shot migration faults, consumed when a move
	// reaches the matching phase (ArmMigrationFault).
	latches map[faults.Kind]int

	movesPlanned, movesDone, movesAborted int
	retries                               int
	rebuilds, queuesReclaimed             int
}

// RebalanceStats reports the rebalancer's cumulative move and rebuild
// counters.
type RebalanceStats struct {
	MovesPlanned, MovesDone, MovesAborted int
	// Retries counts failed phase attempts that were retried (aborts
	// exclude the final, non-retried failure).
	Retries int
	// Rebuilds counts completed drain-and-rebuild cycles;
	// QueuesReclaimed the stranded host queues they returned.
	Rebuilds, QueuesReclaimed int
}

// RebalanceStats returns the rebalancer's counters (zero before the
// first enable).
func (c *Cluster) RebalanceStats() RebalanceStats {
	rb := c.rebalance
	if rb == nil {
		return RebalanceStats{}
	}
	return RebalanceStats{
		MovesPlanned: rb.movesPlanned, MovesDone: rb.movesDone,
		MovesAborted: rb.movesAborted, Retries: rb.retries,
		Rebuilds: rb.rebuilds, QueuesReclaimed: rb.queuesReclaimed,
	}
}

// SetRebalance toggles the background rebalancer at runtime. Disabling
// freezes in-flight moves in place (their sources keep serving); a
// re-enable resumes them.
func (c *Cluster) SetRebalance(on bool) {
	if c.rebalance == nil {
		c.rebalance = &rebalancer{latches: make(map[faults.Kind]int)}
	}
	c.rebalance.enabled = on
}

// ArmMigrationFault latches one migration-targeted chaos injection:
// the next move to reach the fault's phase consumes it. Arming the
// same kind repeatedly stacks.
func (c *Cluster) ArmMigrationFault(kind faults.Kind) error {
	switch kind {
	case faults.RebalanceKillSource, faults.RebalanceKillTarget,
		faults.RebalanceCorruptDelta, faults.RebalanceStallRead:
	default:
		return fmt.Errorf("fleet: %q is not a migration fault", kind)
	}
	if c.rebalance == nil {
		c.rebalance = &rebalancer{latches: make(map[faults.Kind]int)}
	}
	c.rebalance.latches[kind]++
	return nil
}

// consumeMigrationFault fires one armed latch of the kind, tracing the
// applied fault like a scheduled chaos injection.
func (c *Cluster) consumeMigrationFault(kind faults.Kind, mv *rebalanceMove) bool {
	rb := c.rebalance
	if rb == nil || rb.latches[kind] == 0 {
		return false
	}
	rb.latches[kind]--
	node := mv.src.ID
	if kind == faults.RebalanceKillTarget && mv.dst != nil {
		node = mv.dst.ID
	}
	c.traceFault(string(kind), node, 0)
	return true
}

// pendingRebalanceMoves counts moves still waiting on budget headroom —
// the elective demand a concurrent failover grant preempts
// (placement.go: admitLoad).
func (c *Cluster) pendingRebalanceMoves() int {
	if c.rebalance == nil {
		return 0
	}
	n := 0
	for _, mv := range c.rebalance.moves {
		if mv.phase == movePlanned {
			n++
		}
	}
	return n
}

// stepRebalance runs the rebalancer for one heartbeat barrier: victim
// lifecycle and planning first, then every active move steps its state
// machine. Runs on the serial control-plane path only.
func (c *Cluster) stepRebalance(now sim.Time) {
	rb := c.rebalance
	if rb == nil || !rb.enabled {
		return
	}
	rb.tick++
	due := rb.tick%c.rebalanceEvery() == 0
	switch {
	case rb.victim == nil:
		if due {
			c.planRebalance(now)
		}
	case len(rb.moves) == 0:
		v := rb.victim
		switch {
		case v.state == Failed || v.state == Drained:
			// The victim died mid-drain: failover owns its replicas and
			// its stranded queues wait for revive and a later cycle.
			v.rebuilding = false
			rb.victim = nil
		case len(v.replicas) == 0:
			c.finishRebuild(now, v)
		case due:
			// Every move aborted but the victim still serves: replan its
			// remaining replicas.
			c.planMoves(now, v)
		}
	}
	if len(rb.moves) == 0 {
		return
	}
	keep := rb.moves[:0]
	for _, mv := range rb.moves {
		c.stepMove(now, mv)
		if mv.phase != moveDone && mv.phase != moveAborted {
			keep = append(keep, mv)
		}
	}
	for i := len(keep); i < len(rb.moves); i++ {
		rb.moves[i] = nil
	}
	rb.moves = keep
}

// planRebalance picks the rebuild victim — the healthy node stranding
// the most queues (lowest commission order breaks ties) — and plans a
// move for each of its replicas.
func (c *Cluster) planRebalance(now sim.Time) {
	rb := c.rebalance
	var victim *Node
	worst := 0
	for _, n := range c.nodes {
		if n.state != Healthy || n.Tenants == nil || n.rebuilding {
			continue
		}
		if s := n.Tenants.QueuesRetired(); s > worst {
			victim, worst = n, s
		}
	}
	if victim == nil {
		return
	}
	rb.victim = victim
	victim.rebuilding = true
	if c.ctrl != nil {
		e := obs.Instant(obs.CatRebalance, "plan", now)
		e.K1, e.V1 = "node", victim.ID
		e.K2, e.V2 = "stranded", int64(worst)
		e.K3, e.V3 = "replicas", int64(len(victim.replicas))
		c.ctrl.Add(e)
	}
	c.planMoves(now, victim)
}

// planMoves creates one planned move per victim replica. All moves
// share the plan time as their budget request time, so the grant log
// shows exactly how long each waited behind failovers.
func (c *Cluster) planMoves(now sim.Time, v *Node) {
	rb := c.rebalance
	for _, r := range v.Replicas() {
		mv := &rebalanceMove{r: r, src: v, phase: movePlanned, reqAt: now, phaseAt: now}
		rb.moves = append(rb.moves, mv)
		rb.movesPlanned++
		if c.ctrl != nil {
			e := obs.Instant(obs.CatRebalance, "planned", now)
			e.K1, e.V1 = "replica", r.Name()
			c.ctrl.Add(e)
		}
	}
}

// stepMove advances one move at a barrier. A move can cross several
// phases in one step (grant, pre-copy, and — once the drain window
// ends — delta-replay and cutover all happen at barriers).
func (c *Cluster) stepMove(now sim.Time, mv *rebalanceMove) {
	if mv.r.node != mv.src {
		// A failover re-homed the replica mid-move; the snapshot-fallback
		// path owns its recovery.
		c.abortMove(now, mv, "replica re-homed by failover")
		return
	}
	if mv.src.state == Failed || mv.src.state == Drained {
		c.abortMove(now, mv, "source "+string(mv.src.state))
		return
	}
	if mv.dst != nil && (mv.dst.state == Failed || mv.dst.state == Drained) {
		c.abortMove(now, mv, "target "+string(mv.dst.state))
		return
	}
	if now > mv.phaseAt+c.rebalanceTimeout() {
		c.abortMove(now, mv, string(mv.phase)+" deadline exceeded")
		return
	}
	if now < mv.nextTry {
		return
	}
	switch mv.phase {
	case movePlanned:
		c.stepPlanned(now, mv)
	case movePreCopy:
		c.stepPreCopy(now, mv)
	case moveDelta:
		c.stepDelta(now, mv)
	}
}

// failMoveAttempt burns one retry of the current phase, aborting once
// the bound is reached.
func (c *Cluster) failMoveAttempt(now sim.Time, mv *rebalanceMove, reason string) {
	mv.attempts++
	if mv.attempts > c.rebalanceRetries() {
		c.abortMove(now, mv, reason+" (retries exhausted)")
		return
	}
	c.rebalance.retries++
	mv.retries++
	mv.nextTry = now + c.rebalanceBackoff()<<(mv.attempts-1)
	if c.ctrl != nil {
		e := obs.Instant(obs.CatRebalance, "retry", now)
		e.K1, e.V1 = "reason", reason
		e.K2, e.V2 = "attempt", int64(mv.attempts)
		c.ctrl.Add(e)
	}
}

// stepPlanned takes the move's elective budget grant and admits the
// shadow tenant on the chosen target. Each attempt is self-contained;
// nothing persists across a failed one.
func (c *Cluster) stepPlanned(now sim.Time, mv *rebalanceMove) {
	if !c.budget.free(now) {
		// Failovers (and electives queued ahead) hold the budget; waiting
		// here is the preemption contract, not phase time.
		mv.phaseAt = now
		return
	}
	r := mv.r
	svc := c.services[r.Service]
	dst := c.pickNode(svc, map[string]bool{mv.src.ID: true})
	if dst == nil {
		c.failMoveAttempt(now, mv, "no placement candidate")
		return
	}
	logic := foldURAM(svc.Logic, dst.Platform.Chip.Capacity.URAM > 0)
	start := c.budget.acquire(now)
	t, err := dst.Tenants.Admit(start, r.Name(), logic, []net.IPAddr{r.VIP})
	if err != nil {
		var le *tenancy.LoadError
		if errors.As(err, &le) {
			c.budget.commit(mv.reqAt, start, le.BusyUntil, dst.ID, LoadElective, false)
			c.tracePRLoad(mv.reqAt, start, le.BusyUntil, dst.ID, false)
		} else {
			c.budget.commit(mv.reqAt, start, start, dst.ID, LoadElective, false)
			c.tracePRLoad(mv.reqAt, start, start, dst.ID, false)
		}
		c.failMoveAttempt(now, mv, "shadow admit failed")
		return
	}
	c.budget.commit(mv.reqAt, start, t.ReadyAt, dst.ID, LoadElective, true)
	c.tracePRLoad(mv.reqAt, start, t.ReadyAt, dst.ID, true)
	mv.dst, mv.shadow = dst, t
	// Bind a fresh connection table for the shadow on the target's role
	// module: pre-copy and delta rows land there, and it becomes the
	// replica's table at cutover.
	if svc.Stateful {
		fs := &flowState{c: c, service: r.Service, table: apps.NewFlowTable(flowTableCap)}
		if m, ok := dst.Inst.Kernel().Module(device.RBBRole, 0); ok {
			tid := FlowTableBase | uint32(t.ID)
			m.SetTableSource(tid, fs.exportRow)
			m.SetTableSink(tid, fs.importRow)
		}
		mv.dstFlows = fs
	}
	mv.phase = movePreCopy
	mv.phaseAt = now
	mv.attempts, mv.nextTry = 0, 0
	c.stepPreCopy(now, mv)
}

// stepPreCopy reads the source's live connection table, arms the dirty
// log, and streams the capture into the shadow table. The drain window
// (the shadow slot's reconfiguration) follows; pins made during it
// accumulate in the dirty log.
func (c *Cluster) stepPreCopy(now sim.Time, mv *rebalanceMove) {
	r := mv.r
	if c.consumeMigrationFault(faults.RebalanceKillSource, mv) {
		_ = c.Kill(mv.src.ID)
	}
	if r.flows != nil {
		if c.consumeMigrationFault(faults.RebalanceStallRead, mv) {
			c.failMoveAttempt(now, mv, "table read stalled past deadline")
			return
		}
		entries, err := c.readFlowSnapshot(mv.src, r)
		if err != nil {
			c.failMoveAttempt(now, mv, "pre-copy read failed")
			return
		}
		// Arm before any further pin can happen (no packets run between
		// barrier steps): rows mutated after this capture are the delta.
		r.flows.dirty = r.flows.dirty[:0]
		r.flows.dirtyArmed = true
		mv.preCopy = entries
		if len(entries) > 0 {
			if err := c.writeFlowRows(mv.dst, mv.shadowTableID(), entries, false); err != nil {
				r.flows.dirtyArmed = false
				c.failMoveAttempt(now, mv, "pre-copy stream failed")
				return
			}
			mv.restored, mv.dropped = mv.dstFlows.restored, mv.dstFlows.dropped
		}
	}
	mv.preCopyAt = now
	mv.phase = moveDelta
	mv.phaseAt = now
	mv.attempts, mv.nextTry = 0, 0
}

// stepDelta waits out the drain window, replays the dirty log into the
// shadow table and cuts over — all at one barrier, so no packet can
// run between the delta freeze and the routing flip: the target table
// equals the source table exactly, and disruption is zero.
func (c *Cluster) stepDelta(now sim.Time, mv *rebalanceMove) {
	if now < mv.shadow.ReadyAt {
		return
	}
	if c.consumeMigrationFault(faults.RebalanceKillTarget, mv) {
		_ = c.Kill(mv.dst.ID)
	}
	r := mv.r
	if r.flows != nil {
		corrupt := c.consumeMigrationFault(faults.RebalanceCorruptDelta, mv)
		delta := r.flows.dirty
		if len(delta) > 0 || corrupt {
			if err := c.writeFlowRows(mv.dst, mv.shadowTableID(), delta, corrupt); err != nil {
				// The dirty log keeps accumulating; the retry replays the
				// grown delta from row 0 (imports are idempotent merges).
				c.failMoveAttempt(now, mv, "delta frame rejected")
				return
			}
			mv.restored += mv.dstFlows.restored
			mv.dropped += mv.dstFlows.dropped
		}
		mv.deltaRows = len(delta)
	}
	mv.deltaAt = now
	c.cutoverMove(now, mv)
}

// cutoverMove flips the replica from source to target at the barrier:
// the source slot blanks (retiring its queue range — reclaimed when
// the victim rebuilds) and the replica rebinds to the shadow tenant
// and its table. The routing index re-admits it immediately: the
// shadow slot finished reconfiguring during the drain window.
func (c *Cluster) cutoverMove(now sim.Time, mv *rebalanceMove) {
	r, src, dst := mv.r, mv.src, mv.dst
	if r.flows != nil {
		r.flows.dirtyArmed = false
		r.flows.dirty = nil
	}
	c.detachFlowState(src, r)
	if src.Tenants != nil {
		_, _ = src.Tenants.Evict(now, r.Tenant)
	}
	c.router.idx.noteRemove(r, src)
	delete(src.replicas, r.Name())
	src.svcCounts[r.Service]--
	r.Node, r.node, r.Tenant, r.ReadyAt = dst.ID, dst, mv.shadow.ID, mv.shadow.ReadyAt
	dst.replicas[r.Name()] = r
	dst.svcCounts[r.Service]++
	r.flows = mv.dstFlows
	if mv.dstFlows != nil {
		dst.flows[r.Name()] = mv.dstFlows
	}
	c.router.idx.noteAdmit(r, now)
	mv.phase = moveDone
	c.rebalance.movesDone++
	c.migrations = append(c.migrations, MigrationRecord{
		Replica: r.Name(), From: src.ID, To: dst.ID, At: now, Live: true,
		Flows: len(mv.preCopy) + mv.deltaRows, Restored: mv.restored, Dropped: mv.dropped,
		PlannedAt: mv.reqAt, PreCopyAt: mv.preCopyAt, DeltaAt: mv.deltaAt, CutoverAt: now,
		PreCopyRows: len(mv.preCopy), DeltaRows: mv.deltaRows, Retries: mv.retries,
	})
	c.traceMoveDone(now, mv)
}

// abortMove rolls the move back to the still-serving source: disarm
// the dirty log, withdraw the shadow tenant and record the abort. The
// source was never detached, so no flow is disrupted.
func (c *Cluster) abortMove(now sim.Time, mv *rebalanceMove, reason string) {
	r := mv.r
	if r.node == mv.src && r.flows != nil {
		r.flows.dirtyArmed = false
		r.flows.dirty = nil
	}
	if mv.shadow != nil {
		if mv.dstFlows != nil {
			if m, ok := mv.dst.Inst.Kernel().Module(device.RBBRole, 0); ok {
				tid := mv.shadowTableID()
				m.SetTableSource(tid, nil)
				m.SetTableSink(tid, nil)
			}
		}
		// Pure control-plane bookkeeping, so it is safe on a dead target
		// too (a revive would blank the slot anyway).
		_, _ = mv.dst.Tenants.Evict(now, mv.shadow.ID)
	}
	mv.phase = moveAborted
	c.rebalance.movesAborted++
	to := ""
	if mv.dst != nil {
		to = mv.dst.ID
	}
	c.migrations = append(c.migrations, MigrationRecord{
		Replica: r.Name(), From: mv.src.ID, To: to, At: now, Live: true,
		PlannedAt: mv.reqAt, PreCopyAt: mv.preCopyAt,
		PreCopyRows: len(mv.preCopy), Retries: mv.retries, Aborted: true,
	})
	if c.ctrl == nil {
		return
	}
	e := obs.Instant(obs.CatRebalance, "abort", now)
	e.K1, e.V1 = "reason", reason
	e.K2, e.V2 = "retries", int64(mv.retries)
	c.ctrl.Add(e)
	span := obs.Span(obs.CatRebalance, "move", mv.reqAt, now)
	span.K1, span.V1 = "replica", r.Name()
	span.K3, span.V3 = "aborted", 1
	c.ctrl.Add(span)
}

// traceMoveDone emits a completed move's phase spans and instants on
// the control track, all at cutover so event order is deterministic.
func (c *Cluster) traceMoveDone(now sim.Time, mv *rebalanceMove) {
	if c.ctrl == nil {
		return
	}
	span := obs.Span(obs.CatRebalance, "move", mv.reqAt, now)
	span.K1, span.V1 = "replica", mv.r.Name()
	span.K2, span.V2 = "rows", int64(len(mv.preCopy)+mv.deltaRows)
	span.K3, span.V3 = "retries", int64(mv.retries)
	c.ctrl.Add(span)
	pre := obs.Span(obs.CatRebalance, "pre-copy", mv.preCopyAt, mv.deltaAt)
	pre.K1, pre.V1 = "replica", mv.r.Name()
	pre.K2, pre.V2 = "rows", int64(len(mv.preCopy))
	c.ctrl.Add(pre)
	d := obs.Instant(obs.CatRebalance, "delta-replay", mv.deltaAt)
	d.K1, d.V1 = "replica", mv.r.Name()
	d.K2, d.V2 = "rows", int64(mv.deltaRows)
	c.ctrl.Add(d)
	cut := obs.Instant(obs.CatRebalance, "cutover", now)
	cut.K1, cut.V1 = "replica", mv.r.Name()
	c.ctrl.Add(cut)
}

// shadowTableID is the shadow tenant's table ID on the target's role
// module.
func (mv *rebalanceMove) shadowTableID() uint32 {
	return FlowTableBase | uint32(mv.shadow.ID)
}

// writeFlowRows streams a framed connection-table snapshot into an
// arbitrary table ID on a node's role module. With corrupt set the
// frame header word is tampered, which the import rejects — the
// delta-corruption chaos injection.
func (c *Cluster) writeFlowRows(n *Node, tid uint32, entries []apps.ConnEntry, corrupt bool) error {
	words := apps.EncodeFlowSnapshot(entries)
	if corrupt && len(words) > 0 {
		words = append([]uint32(nil), words...)
		words[0] ^= 0xDEADBEEF
	}
	for i, row := range cmdif.SplitRows(words) {
		if err := n.Inst.WriteTable(device.RBBRole, 0, tid, uint32(i), row...); err != nil {
			return err
		}
	}
	return nil
}

// finishRebuild rebuilds a fully drained victim's queue allocator,
// reclaiming every retired range, and returns the node to the
// placement pool.
func (c *Cluster) finishRebuild(now sim.Time, v *Node) {
	rb := c.rebalance
	reclaimed := 0
	if v.Tenants != nil {
		if got, err := v.Tenants.Rebuild(); err == nil {
			reclaimed = got
		}
	}
	v.rebuilding = false
	rb.victim = nil
	rb.rebuilds++
	rb.queuesReclaimed += reclaimed
	if c.ctrl != nil {
		e := obs.Instant(obs.CatRebalance, "rebuild", now)
		e.K1, e.V1 = "node", v.ID
		e.K2, e.V2 = "reclaimed", int64(reclaimed)
		c.ctrl.Add(e)
	}
}

// FragmentationStats scores the fleet's placement fragmentation at a
// barrier. Score is the weighted composite the rebalancer minimizes.
type FragmentationStats struct {
	// Score is 0.6×QueueFrag + 0.2×SlotImbalance + 0.2×Drift, each term
	// in [0,1]; queue fragmentation dominates because it is the only
	// term that permanently erodes capacity.
	Score float64
	// StrandedQueues counts host queues retired by past evictions and
	// not yet reclaimed, fleet-wide.
	StrandedQueues int
	// QueueFrag is stranded queues over the queue horizon the fleet's
	// slots can ever address (slots × QueuesPerTenant, summed).
	QueueFrag float64
	// SlotImbalance is the mean absolute deviation of per-node slot
	// occupancy across serving nodes.
	SlotImbalance float64
	// Drift is the anti-affinity surplus: replicas stacked beyond a
	// service's even spread, over placed replicas.
	Drift float64
}

// Fragmentation computes the fleet's current fragmentation score. Pure
// read; safe at any barrier.
func (c *Cluster) Fragmentation() FragmentationStats { return c.rawFragmentation() }

func (c *Cluster) rawFragmentation() FragmentationStats {
	var fs FragmentationStats
	horizon := 0
	var occs []float64
	for _, n := range c.nodes {
		if n.Tenants == nil {
			continue
		}
		fs.StrandedQueues += n.Tenants.QueuesRetired()
		horizon += n.slots * c.cfg.QueuesPerTenant
		if n.state == Healthy || n.state == Degraded {
			occs = append(occs, float64(n.slots-n.Tenants.FreeSlots())/float64(n.slots))
		}
	}
	if horizon > 0 {
		fs.QueueFrag = float64(fs.StrandedQueues) / float64(horizon)
		if fs.QueueFrag > 1 {
			fs.QueueFrag = 1
		}
	}
	if len(occs) > 0 {
		mean := 0.0
		for _, o := range occs {
			mean += o
		}
		mean /= float64(len(occs))
		mad := 0.0
		for _, o := range occs {
			d := o - mean
			if d < 0 {
				d = -d
			}
			mad += d
		}
		fs.SlotImbalance = mad / float64(len(occs))
	}
	placedTotal, surplus := 0, 0
	for _, name := range c.svcOrder {
		svc := c.services[name]
		eligible, placed := 0, 0
		for _, n := range c.nodes {
			if n.state == Healthy && n.Tenants != nil && n.staticHostErr(svc) == nil {
				eligible++
			}
			placed += n.svcCounts[name]
		}
		if eligible == 0 || placed == 0 {
			continue
		}
		ideal := (placed + eligible - 1) / eligible
		for _, n := range c.nodes {
			if cnt := n.svcCounts[name]; cnt > ideal {
				surplus += cnt - ideal
			}
		}
		placedTotal += placed
	}
	if placedTotal > 0 {
		fs.Drift = float64(surplus) / float64(placedTotal)
	}
	fs.Score = 0.6*fs.QueueFrag + 0.2*fs.SlotImbalance + 0.2*fs.Drift
	return fs
}
