package fleet

import (
	"math/rand"
	"sort"
	"testing"

	"harmonia/internal/sim"
)

// checkIndexConsistency cross-checks the incremental replica index
// against the naive candidates() scan — the oracle it replaces — for
// every registered service at the cluster's current time.
func checkIndexConsistency(t *testing.T, c *Cluster, when string) {
	t.Helper()
	c.router.freeze()
	c.router.idx.mature(c.now)
	names := func(rs []*Replica) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = r.Name() + "@" + r.Node
		}
		sort.Strings(out)
		return out
	}
	for _, svc := range c.Services() {
		want := names(c.candidates(svc, c.now))
		got := names(c.router.idx.candidatesOf(svc))
		if len(want) != len(got) {
			t.Fatalf("%s: %s: index has %d candidates, scan has %d\nindex: %v\nscan:  %v",
				when, svc, len(got), len(want), got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: %s: index/scan diverge at %d: %s vs %s",
					when, svc, i, got[i], want[i])
			}
		}
	}
}

// TestIndexMatchesScanThroughLifecycle walks the index through the
// basic placement lifecycle: pending replicas mature into the index,
// failover drains a dead node's replicas out and their replacements
// back in.
func TestIndexMatchesScanThroughLifecycle(t *testing.T) {
	c := buildTest(t, 4, 4)
	cfg := c.Config()
	checkIndexConsistency(t, c, "before maturation") // all pending
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	checkIndexConsistency(t, c, "after maturation")
	if got := len(c.router.idx.candidatesOf(testApp)); got != 4 {
		t.Fatalf("index holds %d matured replicas, want 4", got)
	}

	victim := c.Nodes()[1].ID
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(c.Now() + sim.Time(cfg.FailedAfter+2)*cfg.Heartbeat)
	checkIndexConsistency(t, c, "after failover (replacement pending)")
	c.RunMonitorUntil(c.Now() + 2*cfg.ReconfigTime)
	checkIndexConsistency(t, c, "after replacement matured")
	for _, r := range c.router.idx.candidatesOf(testApp) {
		if r.Node == victim {
			t.Fatalf("index still lists replica %s on dead node %s", r.Name(), victim)
		}
	}
}

// TestIndexMatchesScanRandomized drives a seeded random sequence of
// failures, recoveries, drains and serving phases, cross-checking the
// incremental index against the naive scan after every transition.
func TestIndexMatchesScanRandomized(t *testing.T) {
	const nodes = 6
	cfg := DefaultConfig()
	cfg.RouterShards = 3
	c, err := BuildCluster(cfg, testApp, nodes, nodes)
	if err != nil {
		t.Fatal(err)
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	checkIndexConsistency(t, c, "initial")

	rng := rand.New(rand.NewSource(42))
	alive := func() []*Node {
		var out []*Node
		for _, n := range c.Nodes() {
			if c.routableState(n.State()) {
				out = append(out, n)
			}
		}
		return out
	}
	for step := 0; step < 60; step++ {
		live := alive()
		if len(live) < 2 {
			break
		}
		pick := live[rng.Intn(len(live))]
		switch op := rng.Intn(5); op {
		case 0: // silent death, detected by missed heartbeats
			if err := c.Kill(pick.ID); err != nil {
				t.Fatal(err)
			}
			c.RunMonitorUntil(c.Now() + sim.Time(cfg.FailedAfter+2)*cfg.Heartbeat)
		case 1: // thermal degrade
			if err := c.Overheat(pick.ID, 80_000); err != nil {
				t.Fatal(err)
			}
			c.RunMonitorUntil(c.Now() + 2*cfg.Heartbeat)
		case 2: // recover a degraded device
			if err := c.Cool(pick.ID); err != nil {
				t.Fatal(err)
			}
			c.RunMonitorUntil(c.Now() + 2*cfg.Heartbeat)
		case 3: // planned drain
			if _, err := c.DrainNode(c.Now(), pick.ID); err != nil {
				t.Fatal(err)
			}
		case 4: // serve a short phase (matures replacements mid-flight)
			tr := DefaultTraffic(testApp)
			tr.Seed = int64(step)
			if _, err := c.Serve(20*sim.Microsecond, tr); err != nil {
				t.Fatal(err)
			}
		}
		// Let pending re-placements mature half the time, so the
		// cross-check also covers the pending window.
		if rng.Intn(2) == 0 {
			c.RunMonitorUntil(c.Now() + 2*cfg.ReconfigTime)
		}
		checkIndexConsistency(t, c, "randomized step")
	}
}
