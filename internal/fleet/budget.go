package fleet

import (
	"sort"

	"harmonia/internal/sim"
)

// The cluster-wide reconfiguration budget bounds how many partial
// bitstream loads the fleet performs concurrently. Without it a mass
// failover models infinite bitstream-distribution bandwidth: a rack
// power event re-places dozens of replicas and every replacement slot
// reconfigures in parallel. Real fleets serve bitstreams from a
// distribution tier with finite fan-out, so the budget serializes the
// overflow: a load past the limit queues until the earliest in-flight
// load completes, and its slot reconfiguration starts then.

// LoadClass is a PR load's priority class in the reconfiguration
// budget's grant queue.
type LoadClass string

// Load priority classes. Failover re-placements are granted
// immediately — past the cap they chain behind the earliest in-flight
// completions — while elective loads (scale-outs, rebalances) wait on
// the cluster's elective queue and start only when the budget has a
// slot free at a control-plane barrier. A failover requested while
// electives wait therefore starts ahead of every one of them: the
// budget's named headroom is preemptive by construction.
const (
	LoadFailover LoadClass = "failover"
	LoadElective LoadClass = "elective"
)

// LoadEvent records one budget grant for the chaos drill's queue-depth
// series: the load was requested at ReqAt, started at Start (later when
// the budget queued it) and held bitstream bandwidth until Done.
type LoadEvent struct {
	ReqAt sim.Time
	Start sim.Time
	Done  sim.Time
	Node  string
	// Class is the grant's priority class; preemption is provable from
	// the log alone (an elective with an earlier ReqAt but a later Start
	// than a failover was preempted by it).
	Class LoadClass
	// OK is false when the load failed every retry (no tenant admitted).
	OK bool
}

// Queued reports whether the budget delayed this load.
func (e LoadEvent) Queued() bool { return e.Start > e.ReqAt }

// reconfigBudget is the min-heap of in-flight load completion times.
type reconfigBudget struct {
	// limit is the concurrent-load cap (0 = unlimited: grants are still
	// recorded, so an unbudgeted run's true concurrency is measurable).
	limit int
	// inflight holds the completion times of granted loads whose slot no
	// queued load has inherited yet, min-heap.
	inflight []sim.Time
	queued   int
	events   []LoadEvent
	// preempted counts failover grants issued while elective loads were
	// waiting on the cluster's elective queue — each one jumped the
	// whole queue.
	preempted int
}

// reset installs a new limit and clears the grant history, so drill
// warmup placements do not contaminate the storm's measurements. Loads
// still in flight are preserved: changing the cap mid-run must not
// forget bandwidth already committed, or the fleet would exceed the
// new limit while the forgotten loads drain (completed entries age out
// of the heap on the next acquire anyway).
func (b *reconfigBudget) reset(limit int) {
	b.limit = limit
	b.clearHistory()
}

// clearHistory drops the grant log and its derived counters without
// touching the in-flight heap.
func (b *reconfigBudget) clearHistory() {
	b.queued = 0
	b.preempted = 0
	b.events = nil
}

// acquire grants one load slot: it returns the earliest time the load
// may start — now when under the limit, otherwise the completion time
// of the load whose slot it inherits. Each pop hands exactly one
// not-yet-inherited completion to exactly one queued load, so loads
// requested on the same control-plane tick chain correctly: the heap
// must not be pruned against the advanced start, or a completion still
// in the future at the request time would free a slot twice.
func (b *reconfigBudget) acquire(now sim.Time) sim.Time {
	start := now
	b.prune(now)
	if b.limit > 0 {
		for len(b.inflight) >= b.limit {
			if done := b.pop(); done > start {
				start = done
			}
		}
	}
	return start
}

// commit records the granted load's real span. The caller pairs every
// acquire with exactly one commit, on the serial control-plane path.
// Failed loads (ok=false) with done > start still push onto the heap:
// a load that fails every retry occupied bitstream bandwidth until its
// Done, so later grants must chain behind it. A zero-span grant
// (done == start, the load never reached the distribution tier) holds
// no bandwidth and is not counted as queued even when the budget
// advanced its start — it never waited on the wire.
func (b *reconfigBudget) commit(reqAt, start, done sim.Time, node string, class LoadClass, ok bool) {
	if done > start {
		b.push(done)
		if start > reqAt {
			b.queued++
		}
	}
	b.events = append(b.events, LoadEvent{ReqAt: reqAt, Start: start, Done: done, Node: node, Class: class, OK: ok})
}

// free reports whether a load granted now would start immediately,
// without consuming a slot. The elective drain uses it to admit queued
// scale-out loads only into genuinely free headroom.
func (b *reconfigBudget) free(now sim.Time) bool {
	b.prune(now)
	return b.limit == 0 || len(b.inflight) < b.limit
}

// prune drops loads that completed by now.
func (b *reconfigBudget) prune(now sim.Time) {
	for len(b.inflight) > 0 && b.inflight[0] <= now {
		b.pop()
	}
}

func (b *reconfigBudget) push(done sim.Time) {
	b.inflight = append(b.inflight, done)
	i := len(b.inflight) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if b.inflight[parent] <= b.inflight[i] {
			break
		}
		b.inflight[i], b.inflight[parent] = b.inflight[parent], b.inflight[i]
		i = parent
	}
}

func (b *reconfigBudget) pop() sim.Time {
	top := b.inflight[0]
	n := len(b.inflight) - 1
	b.inflight[0] = b.inflight[n]
	b.inflight = b.inflight[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && b.inflight[right] < b.inflight[left] {
			least = right
		}
		if b.inflight[i] <= b.inflight[least] {
			break
		}
		b.inflight[i], b.inflight[least] = b.inflight[least], b.inflight[i]
		i = least
	}
	return top
}

// SetLoadBudget installs a fleet-wide concurrent PR-load cap (0 removes
// it) and resets the budget's grant history and peak tracking.
func (c *Cluster) SetLoadBudget(limit int) { c.budget.reset(limit) }

// peakConcurrent sweeps the grant log and reports the maximum number of
// load spans overlapping any instant — the ground truth the chaos drill
// gates against the cap, reconstructed from the events rather than read
// off the heap's internal state. A load ending exactly when another
// starts does not overlap it (the slot was inherited).
func peakConcurrent(events []LoadEvent) int {
	var starts, dones []sim.Time
	for _, e := range events {
		if e.Done > e.Start {
			starts = append(starts, e.Start)
			dones = append(dones, e.Done)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	sort.Slice(dones, func(i, j int) bool { return dones[i] < dones[j] })
	cur, peak, d := 0, 0, 0
	for _, s := range starts {
		for d < len(dones) && dones[d] <= s {
			cur--
			d++
		}
		cur++
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// LoadBudgetPeak, LoadsQueued and LoadFailures read through the
// registry; see obs.go.

// LoadEvents returns every budget grant since the last reset, in grant
// order.
func (c *Cluster) LoadEvents() []LoadEvent {
	return append([]LoadEvent(nil), c.budget.events...)
}
