package fleet

import (
	"fmt"
	"math/rand"

	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// The fleet router dispatches live workload across a service's
// replicas. Replica choice is queue-depth aware: two candidates are
// sampled (power-of-two-choices) and the one whose device carries the
// smaller datapath backlog wins; degraded devices pay a cost penalty so
// traffic drains away from them without a hard cutoff. The chosen
// packet then really crosses the device: flow-director steering with
// the tenancy isolation check, then MAC + wrapper ingress with tail
// drop under overload.
//
// Dispatch state is sharded. Each shard owns a disjoint subset of the
// fleet's nodes (node commission index mod shard count) together with
// its own RNG, counters and latency histogram; flows hash onto shards,
// remapped over the shards that currently hold ready replicas. Between
// control-plane barriers (heartbeat ticks) a shard's state is touched
// by exactly one goroutine, which is what lets Serve route packets in
// parallel while staying bit-reproducible across worker counts: the
// per-shard packet order and RNG stream are fixed by the flow hash, not
// by goroutine scheduling, and counters/histograms merge exactly.

// degradedPenalty scales a degraded device's apparent queue depth.
const degradedPenalty = 4

// maxRouterShards caps the automatic shard count.
const maxRouterShards = 16

// autoShardNodes is how many nodes each automatic shard covers.
const autoShardNodes = 64

// shardSeedStride separates per-shard RNG streams (shard 0 keeps the
// configured seed, matching the pre-shard router stream).
const shardSeedStride int64 = 0x5851F42D4C957F2D

// flowCacheSize is the per-(service, shard) flow route cache capacity —
// a direct-mapped, power-of-two table of cached candidate pairs. 512
// entries cover the default 256-flow traffic shapes without conflict
// evictions while costing 16KB per shard.
const flowCacheSize = 512

// routerShard is the dispatch state one worker owns during a phase.
type routerShard struct {
	rng *rand.Rand
	// Cumulative counters (merged into RouterSnapshot). healthy counts
	// the served packets that landed on a Healthy node — the numerator
	// of the chaos drill's availability metric.
	sent, served, dropped int64
	healthy               int64
	bytes                 int64
	// hist is the current measurement window's latency distribution.
	hist metrics.Histogram
	// trace is the shard's trace track (nil when tracing is off — the
	// zero-cost disabled state). sampleN decimates packet spans; the
	// per-shard counter keeps sampling deterministic because per-shard
	// packet subsequences are fixed by the flow hash.
	trace       *obs.Buffer
	sampleN     int
	sinceSample int
	// hot is the shard's SoA view of its nodes' dispatch-hot state
	// (backlog horizon, penalty, health), rebuilt lazily per dispatch
	// epoch; hotEpoch records which epoch built it. Slots are assigned
	// through Node.hotSlot as services refresh their dispatch views, so
	// replicas sharing a node share one backlog mirror.
	hot      []nodeHot
	hotEpoch uint64
}

// nodeHot is one node's dispatch-hot state, flattened into the owning
// shard's slice at dispatch-view refreshes: the live backlog mirror
// plus the frozen cost and health inputs the per-packet loop reads,
// contiguous instead of four pointer chases through Node. busy writes
// through to Node.busyUntil on every served packet, so control-plane
// digests never see a stale view.
type nodeHot struct {
	n    *Node
	busy sim.Time
	// penMul is the derived-shedding cost multiplier (>1) frozen at the
	// last barrier; 0 when inactive. degraded applies the static ×4.
	penMul   float64
	degraded bool
	healthy  bool
}

// hotCost is the routing metric over the SoA view — cost() with the
// penalty inputs frozen at the last barrier, which they are anyway:
// state and lastTemp only change on the control-plane path, and every
// such change bumps the dispatch epoch.
func (sh *routerShard) hotCost(slot int32, now sim.Time) sim.Time {
	h := &sh.hot[slot]
	d := h.busy - now
	if d < 0 {
		d = 0
	}
	if h.penMul > 0 {
		return sim.Time(float64(d+sim.Microsecond) * h.penMul)
	}
	if h.degraded {
		return (d + sim.Microsecond) * degradedPenalty
	}
	return d
}

// flowEntry is one flow route cache line: the flow's two-choice
// candidate pair and each candidate's pre-resolved host queue, valid
// for one dispatch epoch. The RNG pair is drawn once per flow per
// epoch — the amortized-draw half of batch-quantum dispatch — while
// the per-packet cost comparison between the two candidates stays
// live, so queue-depth balancing is preserved but the flow hash,
// director and tenancy lookups are not repeated per packet.
type flowEntry struct {
	hash  uint64
	epoch uint64
	// a, b index the dispatch view's parallel arrays; b is -1 for a
	// single-candidate shard. qa, qb are the candidates' host queues
	// from the VIP-rewritten flow hash; -1 marks steering the tenancy
	// layer could not resolve (that candidate drops, as the per-packet
	// Route would).
	a, b   int32
	qa, qb int32
}

// shardDisp is one (service, shard) dispatch view: the shard's ready
// replicas flattened into parallel arrays — replica, VIP, hot-state
// slot, steering queue range — plus the flow route cache. It is
// rebuilt lazily when the dispatch epoch moves (every control-plane
// barrier, health or placement transition bumps the epoch) and is
// owned by the shard's worker between barriers, under the same
// ownership rule as the rest of the shard state.
type shardDisp struct {
	epoch uint64
	reps  []*Replica
	vip   []net.IPAddr
	slot  []int32
	qlo   []int32
	qspan []int32
	cache []flowEntry
	// bulk mirrors the owning service's class; shed counts ready
	// replicas this rebuild excluded because their node crossed the
	// bulk-shed line — when it empties the view, packets landing here
	// are shed, not merely unroutable.
	bulk bool
	shed int32
}

// tracePacket records one served packet's route span, subject to the
// sampling divisor. Caller guards sh.trace != nil.
func (sh *routerShard) tracePacket(now, done sim.Time, node string, bytes int64) {
	sh.sinceSample++
	if sh.sinceSample < sh.sampleN {
		return
	}
	sh.sinceSample = 0
	e := obs.Span(obs.CatPacket, "route", now, done)
	e.K1, e.V1 = "node", node
	e.K2, e.V2 = "bytes", bytes
	sh.trace.Add(e)
}

// traceDrop records one dropped packet, unsampled — drops are rare and
// each one matters to a post-mortem. Caller guards sh.trace != nil.
func (sh *routerShard) traceDrop(now sim.Time, node string) {
	e := obs.Instant(obs.CatPacket, "drop", now)
	e.K1, e.V1 = "node", node
	sh.trace.Add(e)
}

// router holds the sharded dispatch state plus the unsharded baseline
// path used as the before-side of the fleet3 control-plane benchmark
// and as the oracle in consistency tests.
type router struct {
	c      *Cluster
	seed   int64
	frozen bool
	shards []*routerShard
	idx    *replicaIndex
	// epoch is the dispatch epoch. Every control-plane barrier and
	// every health or placement transition bumps it, lazily invalidating
	// the per-shard SoA views and flow route caches; all bumps happen on
	// the serial control-plane path.
	epoch uint64

	// base is the pre-shard serial path: naive candidate scan, exact
	// sample buffer.
	base struct {
		rng                   *rand.Rand
		sent, served, dropped int64
		healthy               int64
		bytes                 int64
		lat                   *metrics.Latencies
	}
}

func newRouter(c *Cluster, seed int64) *router {
	// epoch starts at 1 so zero-valued dispatch views are born stale.
	r := &router{c: c, seed: seed, idx: newReplicaIndex(c), epoch: 1}
	r.base.rng = rand.New(rand.NewSource(seed))
	r.base.lat = &metrics.Latencies{}
	return r
}

// bumpEpoch invalidates every shard's dispatch view and flow cache.
// Serial control-plane path only.
func (r *router) bumpEpoch() { r.epoch++ }

// shardCount resolves the configured or automatic shard count for the
// current fleet size. One shard per autoShardNodes nodes keeps the
// two-choice sampling pool large while bounding merge fan-in; small
// fleets get a single shard, preserving fleet-wide two-choice exactly.
// With RackP2C the shard layout nests in the racks — one shard per
// rack, uncapped, so a shard's nodes stay one contiguous rack no
// matter how large the fleet grows.
func (r *router) shardCount() int {
	if r.c.cfg.RackP2C {
		return r.c.rackCount(len(r.c.nodes))
	}
	if s := r.c.cfg.RouterShards; s > 0 {
		return s
	}
	s := len(r.c.nodes)/autoShardNodes + 1
	if s > maxRouterShards {
		s = maxRouterShards
	}
	return s
}

// freeze fixes the shard layout on the first routing operation: the
// shard count resolves from the fleet size, nodes get their shard
// assignment, and the replica index builds. Nodes commissioned later
// join shards round-robin; the shard count never changes afterwards,
// so seeded phases stay reproducible.
func (r *router) freeze() {
	if r.frozen {
		return
	}
	r.frozen = true
	r.c.racks.freeze()
	s := r.shardCount()
	r.shards = make([]*routerShard, s)
	for i := range r.shards {
		r.shards[i] = &routerShard{
			rng: rand.New(rand.NewSource(r.seed + int64(i)*shardSeedStride)),
		}
	}
	for i, n := range r.c.nodes {
		if r.c.cfg.RackP2C {
			// Shard = rack: the in-shard two-choice below becomes the
			// in-rack router, over one contiguous block of nodes.
			n.shard = r.c.racks.rackOf[i]
		} else {
			n.shard = i % s
		}
	}
	r.idx.freeze(s)
	r.c.attachShardTraces()
	r.c.rackRefresh(r.c.now)
}

// Dispatch is the outcome of routing one packet.
type Dispatch struct {
	Replica *Replica
	Node    string
	Queue   int
	Done    sim.Time
	Dropped bool
}

// cost is the routing metric: outstanding backlog, inflated on
// thermally stressed devices. Statically a degraded device pays a flat
// ×4; with derived shedding the penalty follows the throttling model —
// it grows continuously with the node's last heartbeat temperature as
// the thermal margin erodes, reaching ×4 at the alarm line (past which
// the node is not routable at all).
func (r *router) cost(n *Node, now sim.Time) sim.Time {
	d := n.QueueDepth(now)
	if r.c.cfg.DerivedShedding {
		if p := r.c.thermalPenalty(n.lastTemp); p > 1 {
			return sim.Time(float64(d+sim.Microsecond) * p)
		}
		return d
	}
	if n.state == Degraded {
		return (d + sim.Microsecond) * degradedPenalty
	}
	return d
}

// candidates lists the service's dispatchable replicas at now by
// scanning every replica: placed, reconfiguration complete, device
// serving traffic. This is the naive O(replicas) path the replica
// index replaces; it remains the baseline router's source and the
// oracle the index is cross-checked against.
func (c *Cluster) candidates(svc string, now sim.Time) []*Replica {
	var out []*Replica
	for _, r := range c.replicas {
		if r.Service != svc || r.Node == "" || now < r.ReadyAt {
			continue
		}
		n := c.byID[r.Node]
		if c.routableState(n.state) {
			out = append(out, r)
		}
	}
	return out
}

// refreshDisp returns the (service, shard) dispatch view, rebuilding
// it when the dispatch epoch moved since it was last built. Runs on
// the shard owner's goroutine: distinct shards rebuild concurrently,
// but each touches only its own shard state and nodes (a node belongs
// to exactly one shard), and si.disp was sized on the serial path, so
// no allocation or write here is shared across workers.
func (r *router) refreshDisp(si *svcIndex, s int) *shardDisp {
	d := &si.disp[s]
	if d.epoch == r.epoch {
		return d
	}
	sh := r.shards[s]
	if sh.hotEpoch != r.epoch {
		sh.hotEpoch = r.epoch
		sh.hot = sh.hot[:0]
	}
	d.epoch = r.epoch
	d.reps = d.reps[:0]
	d.vip = d.vip[:0]
	d.slot = d.slot[:0]
	d.qlo = d.qlo[:0]
	d.qspan = d.qspan[:0]
	d.bulk = si.bulk
	d.shed = 0
	derived := r.c.cfg.DerivedShedding
	for _, rep := range si.ready[s] {
		n := rep.node
		// Class shedding order: a bulk service's replicas leave the
		// dispatch view once their node's thermal margin erodes past the
		// bulk-shed line, reserving the throttled remainder for
		// co-resident latency-critical traffic. lastTemp only moves at
		// barriers (which bump the epoch), so the exclusion is frozen
		// per view like every other penalty input.
		if si.bulk && derived && r.c.shedsBulk(n.lastTemp) {
			d.shed++
			continue
		}
		if n.hotEpoch != r.epoch {
			n.hotEpoch = r.epoch
			n.hotSlot = int32(len(sh.hot))
			h := nodeHot{n: n, busy: n.busyUntil, healthy: n.state == Healthy}
			if derived {
				if p := r.c.thermalPenalty(n.lastTemp); p > 1 {
					h.penMul = p
				}
			} else if n.state == Degraded {
				h.degraded = true
			}
			sh.hot = append(sh.hot, h)
		}
		lo, span := -1, 0
		if l, sp, err := n.Tenants.ResolveSteering(rep.VIP); err == nil {
			lo, span = l, sp
		}
		d.reps = append(d.reps, rep)
		d.vip = append(d.vip, rep.VIP)
		d.slot = append(d.slot, n.hotSlot)
		d.qlo = append(d.qlo, int32(lo))
		d.qspan = append(d.qspan, int32(span))
	}
	if d.cache == nil {
		d.cache = make([]flowEntry, flowCacheSize)
	}
	return d
}

// flowQueue computes the host queue candidate i's flow director would
// select for this packet: the tenant queue range offset by the
// VIP-rewritten flow hash — the hash Direct sees, since dispatch
// rewrites DstIP to the chosen VIP before the device crossing. -1
// marks unresolvable steering.
func (d *shardDisp) flowQueue(i int32, p *net.Packet) int32 {
	span := d.qspan[i]
	if span <= 0 {
		return -1
	}
	k := p.Flow()
	k.DstIP = d.vip[i]
	return d.qlo[i] + int32(k.Hash()%uint64(span))
}

// flowSlot returns the flow's cache entry, filling it on a miss: the
// candidate pair is drawn with the shard RNG exactly as per-packet
// two-choice did (two Intn draws, distinct indices), ordered so cost
// ties resolve to the lexicographically smaller node ID, and each
// candidate's host queue is resolved once. RNG is consumed only here —
// per-shard flow subsequences are fixed by the flow hash, so cache
// miss order, and with it the RNG stream, is worker-count invariant.
func (sh *routerShard) flowSlot(d *shardDisp, h uint64, p *net.Packet) *flowEntry {
	e := &d.cache[h&(flowCacheSize-1)]
	if e.hash == h && e.epoch == d.epoch {
		return e
	}
	e.hash, e.epoch = h, d.epoch
	e.a, e.b = 0, -1
	if n := len(d.reps); n > 1 {
		i := sh.rng.Intn(n)
		j := sh.rng.Intn(n - 1)
		if j >= i {
			j++
		}
		a, b := int32(i), int32(j)
		if d.reps[b].Node < d.reps[a].Node {
			a, b = b, a
		}
		e.a, e.b = a, b
	}
	e.qa = d.flowQueue(e.a, p)
	e.qb = -1
	if e.b >= 0 {
		e.qb = d.flowQueue(e.b, p)
	}
	return e
}

// routeResult is one batched dispatch outcome. node is nil when the
// shard had no candidates at all.
type routeResult struct {
	rep     *Replica
	node    *Node
	queue   int32
	done    sim.Time
	served  bool
	healthy bool
}

// routeCached dispatches one packet on one shard through the batched
// fast path: cached candidate pair, live two-way cost comparison over
// the SoA view, pre-resolved steering, and the directed ingress
// variant that skips the per-packet Ex-function lookups. Counter,
// histogram and trace updates stay with the caller so the batch loop
// can accumulate them in bulk.
func (c *Cluster) routeCached(sh *routerShard, d *shardDisp, h uint64, now sim.Time, p *net.Packet) routeResult {
	if len(d.reps) == 0 {
		return routeResult{}
	}
	e := sh.flowSlot(d, h, p)
	ai, q := e.a, e.qa
	if e.b >= 0 && sh.hotCost(d.slot[e.b], now) < sh.hotCost(d.slot[e.a], now) {
		ai, q = e.b, e.qb
	}
	hot := &sh.hot[d.slot[ai]]
	n := hot.n
	rep := d.reps[ai]
	if q < 0 {
		return routeResult{rep: rep, node: n}
	}
	p.DstIP = d.vip[ai]
	done, ok := n.Net.IngressDirected(now, p)
	if !ok {
		return routeResult{rep: rep, node: n, queue: q, done: done}
	}
	if done > hot.busy {
		hot.busy = done
		n.busyUntil = done
	}
	if rep.flows != nil {
		rep.flows.process(p.Flow())
	}
	// Per-class serve counter on the node (shard-owned between barriers,
	// like busyUntil): the shed-order evidence drills gate on — a node
	// past the bulk-shed line serves latency-critical packets while its
	// bulk count stays flat.
	if d.bulk {
		n.classServed[1]++
	} else {
		n.classServed[0]++
	}
	return routeResult{rep: rep, node: n, queue: q, done: done, served: true, healthy: hot.healthy}
}

// dispatchShard maps a flow hash onto the shard that will route it,
// over the shards currently holding ready replicas. Default: uniform
// by flow hash. RackP2C: two hash-derived candidate racks compete on
// their barrier-frozen backlog-per-ready-replica digests and the
// cheaper rack wins (shard = rack) — rack-first power-of-two-choices
// whose cost is O(1) in the fleet size. Both candidate indices come
// from disjoint bit slices of the flow hash, so dispatch is RNG-free
// and identical for a flow no matter which worker routes it.
func (r *router) dispatchShard(si *svcIndex, h uint64) int {
	act := si.active
	if !r.c.cfg.RackP2C || len(act) < 2 {
		return act[int(h%uint64(len(act)))]
	}
	i := int(h % uint64(len(act)))
	j := int((h >> 21) % uint64(len(act)-1))
	if j >= i {
		j++
	}
	a, b := act[i], act[j]
	// Compare backlog per ready replica without division:
	// queue[a]/|ready[a]| vs queue[b]/|ready[b]| cross-multiplied.
	qa := int64(r.c.racks.queue[a]) * int64(len(si.ready[b]))
	qb := int64(r.c.racks.queue[b]) * int64(len(si.ready[a]))
	switch {
	case qa < qb:
		return a
	case qb < qa:
		return b
	case a < b:
		return a
	default:
		return b
	}
}

// Route dispatches one packet of a service's traffic across the fleet
// through the same batched machinery Serve's workers run: the flow
// hashes onto a router shard, the cached candidate pair competes on
// the SoA cost view, and the packet crosses the chosen device.
// Unknown services are rejected before any counter moves; a known
// service with zero ready replicas counts a drop.
func (c *Cluster) Route(now sim.Time, svc string, p *net.Packet) (Dispatch, error) {
	c.advance(now)
	if _, known := c.services[svc]; !known {
		return Dispatch{Dropped: true}, fmt.Errorf("fleet: unknown service %q", svc)
	}
	r := c.router
	r.freeze()
	r.idx.mature(now)
	si := r.idx.svc(svc)
	if len(si.active) == 0 {
		sh := r.shards[0]
		sh.sent++
		sh.dropped++
		si.stats[0].sent++
		si.stats[0].dropped++
		if sh.trace != nil {
			sh.traceDrop(now, "")
		}
		return Dispatch{Dropped: true}, fmt.Errorf("fleet: no live replica of %s", svc)
	}
	h := p.Flow().Hash()
	s := r.dispatchShard(si, h)
	sh := r.shards[s]
	d := r.refreshDisp(si, s)
	st := &si.stats[s]
	sh.sent++
	st.sent++
	res := c.routeCached(sh, d, h, now, p)
	if !res.served {
		sh.dropped++
		st.dropped++
		if res.node == nil {
			// Class shedding emptied this shard's view: every ready
			// replica sits on a node past the bulk-shed line.
			st.shed++
			if sh.trace != nil {
				sh.traceDrop(now, "")
			}
			return Dispatch{Dropped: true}, fmt.Errorf("fleet: %s shed from all shard replicas", svc)
		}
		if sh.trace != nil {
			sh.traceDrop(now, res.node.ID)
		}
		// done is 0 only on the steering-drop path: a tail drop still
		// carries the wire arrival time.
		if res.done == 0 {
			return Dispatch{Replica: res.rep, Node: res.node.ID, Dropped: true},
				fmt.Errorf("fleet: steering unresolved for %s on %s", svc, res.node.ID)
		}
		return Dispatch{Replica: res.rep, Node: res.node.ID, Queue: int(res.queue), Dropped: true}, nil
	}
	sh.served++
	st.served++
	if res.healthy {
		sh.healthy++
		st.healthy++
	}
	sh.bytes += int64(p.WireBytes)
	st.bytes += int64(p.WireBytes)
	sh.hist.Add(res.done - now)
	st.hist.Add(res.done - now)
	if sh.trace != nil {
		sh.tracePacket(now, res.done, res.node.ID, int64(p.WireBytes))
	}
	return Dispatch{Replica: res.rep, Node: res.node.ID, Queue: int(res.queue), Done: res.done}, nil
}

// routeBaseline is the pre-shard serial path: per-packet candidate
// scan, unsharded RNG, exact sample buffer. Phase.RunBaseline drives it
// as the before-side of the control-plane benchmark.
func (c *Cluster) routeBaseline(now sim.Time, svc string, p *net.Packet) (Dispatch, error) {
	c.advance(now)
	r := c.router
	r.base.sent++
	cands := c.candidates(svc, now)
	if len(cands) == 0 {
		r.base.dropped++
		return Dispatch{Dropped: true}, fmt.Errorf("fleet: no live replica of %s", svc)
	}
	pick := cands[0]
	if len(cands) > 1 {
		i := r.base.rng.Intn(len(cands))
		j := r.base.rng.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		ca, cb := r.cost(c.byID[a.Node], now), r.cost(c.byID[b.Node], now)
		switch {
		case ca < cb:
			pick = a
		case cb < ca:
			pick = b
		case a.Node <= b.Node:
			pick = a
		default:
			pick = b
		}
	}
	n := c.byID[pick.Node]
	p.DstIP = pick.VIP
	queue, _, err := n.Tenants.Route(p)
	if err != nil {
		r.base.dropped++
		return Dispatch{Replica: pick, Node: n.ID, Dropped: true}, err
	}
	done, _, ok := n.Net.Ingress(now, p)
	if !ok {
		r.base.dropped++
		return Dispatch{Replica: pick, Node: n.ID, Queue: queue, Dropped: true}, nil
	}
	if done > n.busyUntil {
		n.busyUntil = done
	}
	r.base.served++
	if n.state == Healthy {
		r.base.healthy++
	}
	r.base.bytes += int64(p.WireBytes)
	r.base.lat.Add(done - now)
	if pick.flows != nil {
		pick.flows.process(p.Flow())
	}
	return Dispatch{Replica: pick, Node: n.ID, Queue: queue, Done: done}, nil
}

// RouterSnapshot is the router's cumulative view. HealthyServed counts
// served packets that landed on a Healthy node; HealthyServed/Sent is
// the chaos drill's availability.
type RouterSnapshot struct {
	Sent, Served, Dropped int64
	HealthyServed         int64
	Bytes                 int64
}

// rawRouterStats merges the dispatch counters across shards and the
// baseline path. It feeds the registry's router callbacks; the public
// RouterStats accessor (obs.go) reads back through the registry.
func (c *Cluster) rawRouterStats() RouterSnapshot {
	r := c.router
	snap := RouterSnapshot{
		Sent: r.base.sent, Served: r.base.served,
		Dropped: r.base.dropped, HealthyServed: r.base.healthy, Bytes: r.base.bytes,
	}
	for _, sh := range r.shards {
		snap.Sent += sh.sent
		snap.Served += sh.served
		snap.Dropped += sh.dropped
		snap.HealthyServed += sh.healthy
		snap.Bytes += sh.bytes
	}
	return snap
}

// resetWindow starts a fresh latency measurement window on every shard
// and the baseline path, including each service's share.
func (r *router) resetWindow() {
	for _, sh := range r.shards {
		sh.hist.Reset()
	}
	for _, si := range r.idx.svcs {
		for i := range si.stats {
			si.stats[i].hist.Reset()
		}
	}
	r.base.lat = &metrics.Latencies{}
}

// windowHist merges the shard windows. Histogram merging is exact, so
// the result is independent of shard processing order.
func (r *router) windowHist() *metrics.Histogram {
	var h metrics.Histogram
	for _, sh := range r.shards {
		h.Merge(&sh.hist)
	}
	return &h
}

// ServiceSnapshot is one service's cumulative dispatch view, the
// per-service analogue of RouterSnapshot. Shed counts drops caused by
// the class shedding order (a subset of Dropped); for a
// latency-critical service it stays zero by construction.
type ServiceSnapshot struct {
	Sent, Served, Dropped int64
	HealthyServed         int64
	Shed                  int64
	Bytes                 int64
}

// rawServiceStats merges one service's dispatch counters across shards.
// It feeds the registry's per-service callbacks; the public
// ServiceStats accessor (obs.go) reads back through the registry. The
// svcIndex is looked up at call time — freeze rebuilds the index map,
// so callbacks must not capture the pre-freeze *svcIndex.
func (c *Cluster) rawServiceStats(name string) ServiceSnapshot {
	var snap ServiceSnapshot
	si, ok := c.router.idx.svcs[name]
	if !ok {
		return snap
	}
	for i := range si.stats {
		st := &si.stats[i]
		snap.Sent += st.sent
		snap.Served += st.served
		snap.Dropped += st.dropped
		snap.HealthyServed += st.healthy
		snap.Shed += st.shed
		snap.Bytes += st.bytes
	}
	return snap
}

// ServiceWindowLatencies merges one service's current-window latency
// histograms across shards. Exact merge, shard-order independent.
func (c *Cluster) ServiceWindowLatencies(name string) *metrics.Histogram {
	var h metrics.Histogram
	si, ok := c.router.idx.svcs[name]
	if !ok {
		return &h
	}
	for i := range si.stats {
		h.Merge(&si.stats[i].hist)
	}
	return &h
}

// NodeStats is one device's live view for operator output. CmdRetries
// and CmdDrops surface the device driver's command-path retransmission
// counters: a wire going marginal shows up here before the node misses
// enough heartbeats to fail.
type NodeStats struct {
	ID         string
	State      State
	Slots      int
	Free       int
	Replicas   int
	Served     int64
	Dropped    int64
	CmdIssued  int64
	CmdRetries int64
	CmdDrops   int64
	TempC      float64
	Depth      sim.Time
}

// Fleet reports per-device stats at now, in commission order.
func (c *Cluster) Fleet(now sim.Time) []NodeStats {
	out := make([]NodeStats, 0, len(c.nodes))
	for _, n := range c.nodes {
		free := 0
		if n.Tenants != nil {
			free = n.Tenants.FreeSlots()
		}
		rx := n.Net.RxStats()
		issued, retries, drops := n.Inst.CmdStats()
		out = append(out, NodeStats{
			ID: n.ID, State: n.state, Slots: n.slots, Free: free,
			Replicas: len(n.replicas),
			Served:   rx.Units, Dropped: rx.Drops,
			CmdIssued: issued, CmdRetries: retries, CmdDrops: drops,
			TempC: float64(n.lastTemp) / 1000,
			Depth: n.QueueDepth(now),
		})
	}
	return out
}
