package fleet

import (
	"fmt"
	"math/rand"

	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// The fleet router dispatches live workload across a service's
// replicas. Replica choice is queue-depth aware: two candidates are
// sampled (power-of-two-choices) and the one whose device carries the
// smaller datapath backlog wins; degraded devices pay a cost penalty so
// traffic drains away from them without a hard cutoff. The chosen
// packet then really crosses the device: flow-director steering with
// the tenancy isolation check, then MAC + wrapper ingress with tail
// drop under overload.
//
// Dispatch state is sharded. Each shard owns a disjoint subset of the
// fleet's nodes (node commission index mod shard count) together with
// its own RNG, counters and latency histogram; flows hash onto shards,
// remapped over the shards that currently hold ready replicas. Between
// control-plane barriers (heartbeat ticks) a shard's state is touched
// by exactly one goroutine, which is what lets Serve route packets in
// parallel while staying bit-reproducible across worker counts: the
// per-shard packet order and RNG stream are fixed by the flow hash, not
// by goroutine scheduling, and counters/histograms merge exactly.

// degradedPenalty scales a degraded device's apparent queue depth.
const degradedPenalty = 4

// maxRouterShards caps the automatic shard count.
const maxRouterShards = 16

// autoShardNodes is how many nodes each automatic shard covers.
const autoShardNodes = 64

// shardSeedStride separates per-shard RNG streams (shard 0 keeps the
// configured seed, matching the pre-shard router stream).
const shardSeedStride int64 = 0x5851F42D4C957F2D

// routerShard is the dispatch state one worker owns during a phase.
type routerShard struct {
	rng *rand.Rand
	// Cumulative counters (merged into RouterSnapshot). healthy counts
	// the served packets that landed on a Healthy node — the numerator
	// of the chaos drill's availability metric.
	sent, served, dropped int64
	healthy               int64
	bytes                 int64
	// hist is the current measurement window's latency distribution.
	hist metrics.Histogram
	// trace is the shard's trace track (nil when tracing is off — the
	// zero-cost disabled state). sampleN decimates packet spans; the
	// per-shard counter keeps sampling deterministic because per-shard
	// packet subsequences are fixed by the flow hash.
	trace       *obs.Buffer
	sampleN     int
	sinceSample int
}

// tracePacket records one served packet's route span, subject to the
// sampling divisor. Caller guards sh.trace != nil.
func (sh *routerShard) tracePacket(now, done sim.Time, node string, bytes int64) {
	sh.sinceSample++
	if sh.sinceSample < sh.sampleN {
		return
	}
	sh.sinceSample = 0
	e := obs.Span(obs.CatPacket, "route", now, done)
	e.K1, e.V1 = "node", node
	e.K2, e.V2 = "bytes", bytes
	sh.trace.Add(e)
}

// traceDrop records one dropped packet, unsampled — drops are rare and
// each one matters to a post-mortem. Caller guards sh.trace != nil.
func (sh *routerShard) traceDrop(now sim.Time, node string) {
	e := obs.Instant(obs.CatPacket, "drop", now)
	e.K1, e.V1 = "node", node
	sh.trace.Add(e)
}

// router holds the sharded dispatch state plus the unsharded baseline
// path used as the before-side of the fleet3 control-plane benchmark
// and as the oracle in consistency tests.
type router struct {
	c      *Cluster
	seed   int64
	frozen bool
	shards []*routerShard
	idx    *replicaIndex

	// base is the pre-shard serial path: naive candidate scan, exact
	// sample buffer.
	base struct {
		rng                   *rand.Rand
		sent, served, dropped int64
		healthy               int64
		bytes                 int64
		lat                   *metrics.Latencies
	}
}

func newRouter(c *Cluster, seed int64) *router {
	r := &router{c: c, seed: seed, idx: newReplicaIndex(c)}
	r.base.rng = rand.New(rand.NewSource(seed))
	r.base.lat = &metrics.Latencies{}
	return r
}

// shardCount resolves the configured or automatic shard count for the
// current fleet size. One shard per autoShardNodes nodes keeps the
// two-choice sampling pool large while bounding merge fan-in; small
// fleets get a single shard, preserving fleet-wide two-choice exactly.
// With RackP2C the shard layout nests in the racks — one shard per
// rack, uncapped, so a shard's nodes stay one contiguous rack no
// matter how large the fleet grows.
func (r *router) shardCount() int {
	if r.c.cfg.RackP2C {
		return r.c.rackCount(len(r.c.nodes))
	}
	if s := r.c.cfg.RouterShards; s > 0 {
		return s
	}
	s := len(r.c.nodes)/autoShardNodes + 1
	if s > maxRouterShards {
		s = maxRouterShards
	}
	return s
}

// freeze fixes the shard layout on the first routing operation: the
// shard count resolves from the fleet size, nodes get their shard
// assignment, and the replica index builds. Nodes commissioned later
// join shards round-robin; the shard count never changes afterwards,
// so seeded phases stay reproducible.
func (r *router) freeze() {
	if r.frozen {
		return
	}
	r.frozen = true
	r.c.racks.freeze()
	s := r.shardCount()
	r.shards = make([]*routerShard, s)
	for i := range r.shards {
		r.shards[i] = &routerShard{
			rng: rand.New(rand.NewSource(r.seed + int64(i)*shardSeedStride)),
		}
	}
	for i, n := range r.c.nodes {
		if r.c.cfg.RackP2C {
			// Shard = rack: the in-shard two-choice below becomes the
			// in-rack router, over one contiguous block of nodes.
			n.shard = r.c.racks.rackOf[i]
		} else {
			n.shard = i % s
		}
	}
	r.idx.freeze(s)
	r.c.attachShardTraces()
	r.c.rackRefresh(r.c.now)
}

// Dispatch is the outcome of routing one packet.
type Dispatch struct {
	Replica *Replica
	Node    string
	Queue   int
	Done    sim.Time
	Dropped bool
}

// cost is the routing metric: outstanding backlog, inflated on
// thermally stressed devices. Statically a degraded device pays a flat
// ×4; with derived shedding the penalty follows the throttling model —
// it grows continuously with the node's last heartbeat temperature as
// the thermal margin erodes, reaching ×4 at the alarm line (past which
// the node is not routable at all).
func (r *router) cost(n *Node, now sim.Time) sim.Time {
	d := n.QueueDepth(now)
	if r.c.cfg.DerivedShedding {
		if p := r.c.thermalPenalty(n.lastTemp); p > 1 {
			return sim.Time(float64(d+sim.Microsecond) * p)
		}
		return d
	}
	if n.state == Degraded {
		return (d + sim.Microsecond) * degradedPenalty
	}
	return d
}

// candidates lists the service's dispatchable replicas at now by
// scanning every replica: placed, reconfiguration complete, device
// serving traffic. This is the naive O(replicas) path the replica
// index replaces; it remains the baseline router's source and the
// oracle the index is cross-checked against.
func (c *Cluster) candidates(svc string, now sim.Time) []*Replica {
	var out []*Replica
	for _, r := range c.replicas {
		if r.Service != svc || r.Node == "" || now < r.ReadyAt {
			continue
		}
		n := c.byID[r.Node]
		if c.routableState(n.state) {
			out = append(out, r)
		}
	}
	return out
}

// pickTwoChoice samples two candidates with the shard's RNG and keeps
// the one on the cheaper device (node ID breaks ties).
func (c *Cluster) pickTwoChoice(sh *routerShard, cands []*Replica, now sim.Time) *Replica {
	pick := cands[0]
	if len(cands) > 1 {
		i := sh.rng.Intn(len(cands))
		j := sh.rng.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		ca, cb := c.router.cost(a.node, now), c.router.cost(b.node, now)
		switch {
		case ca < cb:
			pick = a
		case cb < ca:
			pick = b
		case a.Node <= b.Node:
			pick = a
		default:
			pick = b
		}
	}
	return pick
}

// routeShard dispatches one packet on one shard — the allocation-free
// fast path Serve's workers run. Shard state, the picked node's
// datapath and the packet are all owned by the calling worker between
// barriers.
func (c *Cluster) routeShard(sh *routerShard, cands []*Replica, now sim.Time, p *net.Packet) {
	sh.sent++
	if len(cands) == 0 {
		sh.dropped++
		if sh.trace != nil {
			sh.traceDrop(now, "")
		}
		return
	}
	pick := c.pickTwoChoice(sh, cands, now)
	n := pick.node
	p.DstIP = pick.VIP
	if _, _, err := n.Tenants.Route(p); err != nil {
		sh.dropped++
		if sh.trace != nil {
			sh.traceDrop(now, n.ID)
		}
		return
	}
	done, _, ok := n.Net.Ingress(now, p)
	if !ok {
		sh.dropped++
		if sh.trace != nil {
			sh.traceDrop(now, n.ID)
		}
		return
	}
	if done > n.busyUntil {
		n.busyUntil = done
	}
	sh.served++
	if n.state == Healthy {
		sh.healthy++
	}
	sh.bytes += int64(p.WireBytes)
	sh.hist.Add(done - now)
	if sh.trace != nil {
		sh.tracePacket(now, done, n.ID, int64(p.WireBytes))
	}
	if pick.flows != nil {
		pick.flows.process(p.Flow())
	}
}

// dispatchShard maps a flow hash onto the shard that will route it,
// over the shards currently holding ready replicas. Default: uniform
// by flow hash. RackP2C: two hash-derived candidate racks compete on
// their barrier-frozen backlog-per-ready-replica digests and the
// cheaper rack wins (shard = rack) — rack-first power-of-two-choices
// whose cost is O(1) in the fleet size. Both candidate indices come
// from disjoint bit slices of the flow hash, so dispatch is RNG-free
// and identical for a flow no matter which worker routes it.
func (r *router) dispatchShard(si *svcIndex, h uint64) int {
	act := si.active
	if !r.c.cfg.RackP2C || len(act) < 2 {
		return act[int(h%uint64(len(act)))]
	}
	i := int(h % uint64(len(act)))
	j := int((h >> 21) % uint64(len(act)-1))
	if j >= i {
		j++
	}
	a, b := act[i], act[j]
	// Compare backlog per ready replica without division:
	// queue[a]/|ready[a]| vs queue[b]/|ready[b]| cross-multiplied.
	qa := int64(r.c.racks.queue[a]) * int64(len(si.ready[b]))
	qb := int64(r.c.racks.queue[b]) * int64(len(si.ready[a]))
	switch {
	case qa < qb:
		return a
	case qb < qa:
		return b
	case a < b:
		return a
	default:
		return b
	}
}

// shardFor maps a flow onto a shard holding ready replicas of the
// service; ok is false when no shard does.
func (r *router) shardFor(si *svcIndex, p *net.Packet) (int, bool) {
	if len(si.active) == 0 {
		return 0, false
	}
	return r.dispatchShard(si, p.Flow().Hash()), true
}

// Route dispatches one packet of a service's traffic across the fleet
// through the indexed fast path: the flow hashes onto a router shard
// and two-choice runs over that shard's ready replicas.
func (c *Cluster) Route(now sim.Time, svc string, p *net.Packet) (Dispatch, error) {
	c.advance(now)
	r := c.router
	r.freeze()
	r.idx.mature(now)
	si := r.idx.svc(svc)
	s, ok := r.shardFor(si, p)
	sh := r.shards[s]
	if !ok {
		sh.sent++
		sh.dropped++
		if sh.trace != nil {
			sh.traceDrop(now, "")
		}
		return Dispatch{Dropped: true}, fmt.Errorf("fleet: no live replica of %s", svc)
	}
	cands := si.ready[s]
	sh.sent++
	pick := c.pickTwoChoice(sh, cands, now)
	n := pick.node
	p.DstIP = pick.VIP
	queue, _, err := n.Tenants.Route(p)
	if err != nil {
		sh.dropped++
		if sh.trace != nil {
			sh.traceDrop(now, n.ID)
		}
		return Dispatch{Replica: pick, Node: n.ID, Dropped: true}, err
	}
	done, _, ok := n.Net.Ingress(now, p)
	if !ok {
		sh.dropped++
		if sh.trace != nil {
			sh.traceDrop(now, n.ID)
		}
		return Dispatch{Replica: pick, Node: n.ID, Queue: queue, Dropped: true}, nil
	}
	if done > n.busyUntil {
		n.busyUntil = done
	}
	sh.served++
	if n.state == Healthy {
		sh.healthy++
	}
	sh.bytes += int64(p.WireBytes)
	sh.hist.Add(done - now)
	if sh.trace != nil {
		sh.tracePacket(now, done, n.ID, int64(p.WireBytes))
	}
	if pick.flows != nil {
		pick.flows.process(p.Flow())
	}
	return Dispatch{Replica: pick, Node: n.ID, Queue: queue, Done: done}, nil
}

// routeBaseline is the pre-shard serial path: per-packet candidate
// scan, unsharded RNG, exact sample buffer. Phase.RunBaseline drives it
// as the before-side of the control-plane benchmark.
func (c *Cluster) routeBaseline(now sim.Time, svc string, p *net.Packet) (Dispatch, error) {
	c.advance(now)
	r := c.router
	r.base.sent++
	cands := c.candidates(svc, now)
	if len(cands) == 0 {
		r.base.dropped++
		return Dispatch{Dropped: true}, fmt.Errorf("fleet: no live replica of %s", svc)
	}
	pick := cands[0]
	if len(cands) > 1 {
		i := r.base.rng.Intn(len(cands))
		j := r.base.rng.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		ca, cb := r.cost(c.byID[a.Node], now), r.cost(c.byID[b.Node], now)
		switch {
		case ca < cb:
			pick = a
		case cb < ca:
			pick = b
		case a.Node <= b.Node:
			pick = a
		default:
			pick = b
		}
	}
	n := c.byID[pick.Node]
	p.DstIP = pick.VIP
	queue, _, err := n.Tenants.Route(p)
	if err != nil {
		r.base.dropped++
		return Dispatch{Replica: pick, Node: n.ID, Dropped: true}, err
	}
	done, _, ok := n.Net.Ingress(now, p)
	if !ok {
		r.base.dropped++
		return Dispatch{Replica: pick, Node: n.ID, Queue: queue, Dropped: true}, nil
	}
	if done > n.busyUntil {
		n.busyUntil = done
	}
	r.base.served++
	if n.state == Healthy {
		r.base.healthy++
	}
	r.base.bytes += int64(p.WireBytes)
	r.base.lat.Add(done - now)
	if pick.flows != nil {
		pick.flows.process(p.Flow())
	}
	return Dispatch{Replica: pick, Node: n.ID, Queue: queue, Done: done}, nil
}

// RouterSnapshot is the router's cumulative view. HealthyServed counts
// served packets that landed on a Healthy node; HealthyServed/Sent is
// the chaos drill's availability.
type RouterSnapshot struct {
	Sent, Served, Dropped int64
	HealthyServed         int64
	Bytes                 int64
}

// rawRouterStats merges the dispatch counters across shards and the
// baseline path. It feeds the registry's router callbacks; the public
// RouterStats accessor (obs.go) reads back through the registry.
func (c *Cluster) rawRouterStats() RouterSnapshot {
	r := c.router
	snap := RouterSnapshot{
		Sent: r.base.sent, Served: r.base.served,
		Dropped: r.base.dropped, HealthyServed: r.base.healthy, Bytes: r.base.bytes,
	}
	for _, sh := range r.shards {
		snap.Sent += sh.sent
		snap.Served += sh.served
		snap.Dropped += sh.dropped
		snap.HealthyServed += sh.healthy
		snap.Bytes += sh.bytes
	}
	return snap
}

// resetWindow starts a fresh latency measurement window on every shard
// and the baseline path.
func (r *router) resetWindow() {
	for _, sh := range r.shards {
		sh.hist.Reset()
	}
	r.base.lat = &metrics.Latencies{}
}

// windowHist merges the shard windows. Histogram merging is exact, so
// the result is independent of shard processing order.
func (r *router) windowHist() *metrics.Histogram {
	var h metrics.Histogram
	for _, sh := range r.shards {
		h.Merge(&sh.hist)
	}
	return &h
}

// NodeStats is one device's live view for operator output. CmdRetries
// and CmdDrops surface the device driver's command-path retransmission
// counters: a wire going marginal shows up here before the node misses
// enough heartbeats to fail.
type NodeStats struct {
	ID         string
	State      State
	Slots      int
	Free       int
	Replicas   int
	Served     int64
	Dropped    int64
	CmdIssued  int64
	CmdRetries int64
	CmdDrops   int64
	TempC      float64
	Depth      sim.Time
}

// Fleet reports per-device stats at now, in commission order.
func (c *Cluster) Fleet(now sim.Time) []NodeStats {
	out := make([]NodeStats, 0, len(c.nodes))
	for _, n := range c.nodes {
		free := 0
		if n.Tenants != nil {
			free = n.Tenants.FreeSlots()
		}
		rx := n.Net.RxStats()
		issued, retries, drops := n.Inst.CmdStats()
		out = append(out, NodeStats{
			ID: n.ID, State: n.state, Slots: n.slots, Free: free,
			Replicas: len(n.replicas),
			Served:   rx.Units, Dropped: rx.Drops,
			CmdIssued: issued, CmdRetries: retries, CmdDrops: drops,
			TempC: float64(n.lastTemp) / 1000,
			Depth: n.QueueDepth(now),
		})
	}
	return out
}
