package fleet

import (
	"fmt"
	"math/rand"

	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/sim"
)

// The fleet router dispatches live workload across a service's
// replicas. Replica choice is queue-depth aware: two candidates are
// sampled (power-of-two-choices) and the one whose device carries the
// smaller datapath backlog wins; degraded devices pay a cost penalty so
// traffic drains away from them without a hard cutoff. The chosen
// packet then really crosses the device: flow-director steering with
// the tenancy isolation check, then MAC + wrapper ingress with tail
// drop under overload.

// degradedPenalty scales a degraded device's apparent queue depth.
const degradedPenalty = 4

// router holds the dispatch state.
type router struct {
	c   *Cluster
	rng *rand.Rand
	lat *metrics.Latencies

	sent, served, dropped int64
	bytes                 int64
}

func newRouter(c *Cluster, seed int64) *router {
	return &router{c: c, rng: rand.New(rand.NewSource(seed)), lat: &metrics.Latencies{}}
}

// Dispatch is the outcome of routing one packet.
type Dispatch struct {
	Replica *Replica
	Node    string
	Queue   int
	Done    sim.Time
	Dropped bool
}

// cost is the routing metric: outstanding backlog, inflated on
// degraded devices.
func (r *router) cost(n *Node, now sim.Time) sim.Time {
	d := n.QueueDepth(now)
	if n.state == Degraded {
		return (d + sim.Microsecond) * degradedPenalty
	}
	return d
}

// candidates lists the service's dispatchable replicas at now: placed,
// reconfiguration complete, device serving traffic.
func (c *Cluster) candidates(svc string, now sim.Time) []*Replica {
	var out []*Replica
	for _, r := range c.replicas {
		if r.Service != svc || r.Node == "" || now < r.ReadyAt {
			continue
		}
		n := c.byID[r.Node]
		if n.state == Healthy || n.state == Degraded {
			out = append(out, r)
		}
	}
	return out
}

// Route dispatches one packet of a service's traffic across the fleet.
func (c *Cluster) Route(now sim.Time, svc string, p *net.Packet) (Dispatch, error) {
	c.advance(now)
	r := c.router
	r.sent++
	cands := c.candidates(svc, now)
	if len(cands) == 0 {
		r.dropped++
		return Dispatch{Dropped: true}, fmt.Errorf("fleet: no live replica of %s", svc)
	}
	pick := cands[0]
	if len(cands) > 1 {
		// Power-of-two-choices on device backlog.
		i := r.rng.Intn(len(cands))
		j := r.rng.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		ca, cb := r.cost(c.byID[a.Node], now), r.cost(c.byID[b.Node], now)
		switch {
		case ca < cb:
			pick = a
		case cb < ca:
			pick = b
		case a.Node <= b.Node:
			pick = a
		default:
			pick = b
		}
	}
	n := c.byID[pick.Node]
	p.DstIP = pick.VIP
	// Tenant steering + isolation invariant on the chosen device.
	queue, _, err := n.Tenants.Route(p)
	if err != nil {
		r.dropped++
		return Dispatch{Replica: pick, Node: n.ID, Dropped: true}, err
	}
	// The packet crosses the device's MAC, wrapper and ingress queue;
	// overload tail-drops and the monitoring counts it.
	done, _, ok := n.Net.Ingress(now, p)
	if !ok {
		r.dropped++
		return Dispatch{Replica: pick, Node: n.ID, Queue: queue, Dropped: true}, nil
	}
	if done > n.busyUntil {
		n.busyUntil = done
	}
	r.served++
	r.bytes += int64(p.WireBytes)
	r.lat.Add(done - now)
	return Dispatch{Replica: pick, Node: n.ID, Queue: queue, Done: done}, nil
}

// RouterSnapshot is the router's cumulative view.
type RouterSnapshot struct {
	Sent, Served, Dropped int64
	Bytes                 int64
}

// RouterStats reports cumulative dispatch counters.
func (c *Cluster) RouterStats() RouterSnapshot {
	return RouterSnapshot{
		Sent: c.router.sent, Served: c.router.served,
		Dropped: c.router.dropped, Bytes: c.router.bytes,
	}
}

// resetWindow starts a fresh measurement window and returns the
// previous latency collector.
func (r *router) resetWindow() *metrics.Latencies {
	old := r.lat
	r.lat = &metrics.Latencies{}
	return old
}

// NodeStats is one device's live view for operator output.
type NodeStats struct {
	ID       string
	State    State
	Slots    int
	Free     int
	Replicas int
	Served   int64
	Dropped  int64
	TempC    float64
	Depth    sim.Time
}

// Fleet reports per-device stats at now, in commission order.
func (c *Cluster) Fleet(now sim.Time) []NodeStats {
	out := make([]NodeStats, 0, len(c.nodes))
	for _, n := range c.nodes {
		free := 0
		if n.Tenants != nil {
			free = n.Tenants.FreeSlots()
		}
		rx := n.Net.RxStats()
		out = append(out, NodeStats{
			ID: n.ID, State: n.state, Slots: n.slots, Free: free,
			Replicas: len(n.replicas),
			Served:   rx.Units, Dropped: rx.Drops,
			TempC: float64(n.lastTemp) / 1000,
			Depth: n.QueueDepth(now),
		})
	}
	return out
}
