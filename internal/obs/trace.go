// Package obs is the fleet observability plane: a sim-time trace
// recorder and a unified metrics registry.
//
// The trace recorder captures spans and instant events stamped with
// picosecond simulation time and exports them as Chrome trace-event
// JSON, so BENCH artifacts open directly in Perfetto or
// chrome://tracing. Recording is designed for the control plane's
// determinism contract: each Buffer (one Perfetto "thread" track) is
// owned by exactly one goroutine between barriers — the same ownership
// discipline the router shards already follow — and the export merges
// buffers in a fixed order with a stable sort, so the same seed always
// produces byte-identical trace files.
//
// Every recording method is nil-safe: a nil *Buffer is the disabled
// state, and the hot path pays only a pointer compare (verified by
// BenchmarkRoutedPacket in internal/fleet). The flight-recorder mode
// bounds each track to a ring of the last N events, cheap enough to
// leave always-on so a failed gate can dump what just happened.
package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"

	"harmonia/internal/sim"
)

// Cat classifies an event into the span taxonomy. Validators and the
// Perfetto UI group by category.
type Cat string

// The span taxonomy: one category per control-plane activity kind.
const (
	// CatPacket covers the datapath route→enqueue→serve spans and
	// tail-drop instants on the router shard tracks.
	CatPacket Cat = "packet"
	// CatPRLoad covers partial-reconfiguration loads: budget grant,
	// queueing and retries through the slot's ReadyAt.
	CatPRLoad Cat = "prload"
	// CatHeartbeat covers health-monitor cohort sweeps.
	CatHeartbeat Cat = "heartbeat"
	// CatHealth covers state-machine transitions and failovers.
	CatHealth Cat = "health"
	// CatMigration covers connection-table snapshot, drain and replay.
	CatMigration Cat = "migration"
	// CatFault covers chaos injections (planned and applied).
	CatFault Cat = "fault"
	// CatCmd covers command-path retransmissions and drops.
	CatCmd Cat = "cmd"
	// CatRack covers rack-tier digest refreshes on the rack-first
	// dispatch path.
	CatRack Cat = "rack"
	// CatGossip covers SWIM detector events: suspected, refuted,
	// confirmed.
	CatGossip Cat = "gossip"
	// CatRebalance covers background rebalance moves: per-phase spans
	// (planned, pre-copy, delta-replay), cutover and rebuild instants,
	// and abort instants with their reason.
	CatRebalance Cat = "rebalance"
	// CatSLO covers error-budget accounting: per-service burn-rate
	// change instants emitted at heartbeat barriers.
	CatSLO Cat = "slo"
	// CatAlert covers burn-rate alert state transitions
	// (pending/firing/resolved).
	CatAlert Cat = "alert"
)

// Event phase codes (Chrome trace-event "ph" field).
const (
	// PhSpan is a complete span with a duration ("X").
	PhSpan byte = 'X'
	// PhInstant is a zero-duration instant event ("i").
	PhInstant byte = 'i'
)

// Event is one trace record. The argument fields are fixed slots — one
// string and two int64s, unused when the key is empty — so composing
// and recording an Event never heap-allocates.
type Event struct {
	Name string
	Cat  Cat
	Ph   byte
	// Ts is the event start in picosecond sim time; Dur is the span
	// length (0 for instants).
	Ts  sim.Time
	Dur sim.Time
	// K1/V1 is the string argument slot; K2/V2 and K3/V3 are the int64
	// slots. Empty keys are omitted from the export.
	K1 string
	V1 string
	K2 string
	V2 int64
	K3 string
	V3 int64
}

// Span builds a complete-span event covering [start, end].
func Span(cat Cat, name string, start, end sim.Time) Event {
	d := end - start
	if d < 0 {
		d = 0
	}
	return Event{Name: name, Cat: cat, Ph: PhSpan, Ts: start, Dur: d}
}

// Instant builds an instant event at ts.
func Instant(cat Cat, name string, ts sim.Time) Event {
	return Event{Name: name, Cat: cat, Ph: PhInstant, Ts: ts}
}

// Buffer is one track of events (a Perfetto "thread"). A Buffer is
// owned by exactly one goroutine between control-plane barriers; Add
// is therefore unsynchronized. All methods are nil-safe: a nil Buffer
// is the zero-cost disabled state.
type Buffer struct {
	name string
	pid  int
	tid  int
	// ring > 0 bounds the track to the last ring events (flight mode).
	ring    int
	events  []Event
	head    int
	dropped uint64
}

// Add records one event. On a nil Buffer it is a no-op; in ring mode
// the oldest event is overwritten once the track is full.
func (b *Buffer) Add(e Event) {
	if b == nil {
		return
	}
	if b.ring > 0 && len(b.events) == b.ring {
		b.events[b.head] = e
		b.head++
		if b.head == b.ring {
			b.head = 0
		}
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// Len reports how many events the track currently holds.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.events)
}

// Dropped reports how many events ring mode overwrote.
func (b *Buffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// ordered returns the track's events oldest-first.
func (b *Buffer) ordered() []Event {
	if b.ring == 0 || b.head == 0 {
		return b.events
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.head:]...)
	out = append(out, b.events[:b.head]...)
	return out
}

// Process is one Perfetto process row: a named group of tracks. The
// chaos drill gives each storm case its own process so the three
// defenses line up side by side.
type Process struct {
	r      *Recorder
	name   string
	pid    int
	tracks []*Buffer
}

// Track creates (or returns) a named track in the process. Tracks are
// assigned thread IDs in creation order, which must therefore be
// deterministic.
func (p *Process) Track(name string) *Buffer {
	p.r.mu.Lock()
	defer p.r.mu.Unlock()
	for _, t := range p.tracks {
		if t.name == name {
			return t
		}
	}
	b := &Buffer{name: name, pid: p.pid, tid: len(p.tracks) + 1, ring: p.r.ring}
	p.tracks = append(p.tracks, b)
	return b
}

// Sample reports the recorder's packet-sampling divisor (record 1 of
// every N routed packets).
func (p *Process) Sample() int { return p.r.sample }

// Recorder collects trace processes and exports them. Create one per
// run with NewRecorder (unbounded) or NewFlightRecorder (per-track
// ring of the last N events).
type Recorder struct {
	mu     sync.Mutex
	procs  []*Process
	ring   int
	sample int
}

// defaultPacketSample keeps full traces loadable: a 300-node storm
// routes ~780k packets per case, so the packet spans — and only they —
// are decimated. Drops, loads, migrations and faults always record.
const defaultPacketSample = 64

// NewRecorder returns an unbounded trace recorder.
func NewRecorder() *Recorder {
	return &Recorder{sample: defaultPacketSample}
}

// NewFlightRecorder returns a recorder whose tracks each keep only
// their last lastN events — cheap enough to run always-on, dumped when
// a gate fails. Packet sampling is disabled: the ring already bounds
// volume and a post-mortem wants maximum recent detail.
func NewFlightRecorder(lastN int) *Recorder {
	if lastN <= 0 {
		lastN = 4096
	}
	return &Recorder{ring: lastN, sample: 1}
}

// Flight reports whether the recorder runs in ring (flight) mode.
func (r *Recorder) Flight() bool { return r.ring > 0 }

// SetPacketSample overrides the packet-span sampling divisor (n <= 1
// records every packet). Sampling is deterministic: the divisor
// applies per shard track, and per-shard packet subsequences are fixed
// by the flow hash.
func (r *Recorder) SetPacketSample(n int) {
	if n < 1 {
		n = 1
	}
	r.sample = n
}

// Process creates (or returns) a named process row. Processes take
// IDs in creation order.
func (r *Recorder) Process(name string) *Process {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.procs {
		if p.name == name {
			return p
		}
	}
	p := &Process{r: r, name: name, pid: len(r.procs) + 1}
	r.procs = append(r.procs, p)
	return p
}

// taggedEvent carries an event with its export coordinates.
type taggedEvent struct {
	Event
	pid, tid int
}

// merged collects every track's events in fixed (process, track,
// sequence) order and stably sorts by timestamp — the property that
// makes the export deterministic. Caller holds r.mu.
func (r *Recorder) merged() []taggedEvent {
	var out []taggedEvent
	for _, p := range r.procs {
		for _, t := range p.tracks {
			for _, e := range t.ordered() {
				out = append(out, taggedEvent{Event: e, pid: p.pid, tid: t.tid})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return out
}

// Events returns every recorded event merged across tracks in export
// order (for tests and programmatic inspection).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.merged()
	out := make([]Event, len(m))
	for i := range m {
		out[i] = m[i].Event
	}
	return out
}

// WriteTrace exports the recording as Chrome trace-event JSON
// (Perfetto-loadable). Timestamps convert from picoseconds to the
// format's microseconds with fixed six-digit fractions, rendered
// without floating point so output is byte-deterministic.
func (r *Recorder) WriteTrace(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	comma := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	// Metadata names the process and thread rows in the UI.
	for _, p := range r.procs {
		comma()
		bw.WriteString("{\"ph\":\"M\",\"pid\":")
		bw.WriteString(strconv.Itoa(p.pid))
		bw.WriteString(",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":")
		bw.WriteString(strconv.Quote(p.name))
		bw.WriteString("}}")
		for _, t := range p.tracks {
			comma()
			bw.WriteString("{\"ph\":\"M\",\"pid\":")
			bw.WriteString(strconv.Itoa(p.pid))
			bw.WriteString(",\"tid\":")
			bw.WriteString(strconv.Itoa(t.tid))
			bw.WriteString(",\"name\":\"thread_name\",\"args\":{\"name\":")
			bw.WriteString(strconv.Quote(t.name))
			bw.WriteString("}}")
		}
	}
	for _, e := range r.merged() {
		comma()
		writeEvent(bw, e.Event, e.pid, e.tid)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// writeTs renders picoseconds as trace-format microseconds with a
// fixed six-digit fraction ("12.000345"), avoiding float formatting.
func writeTs(bw *bufio.Writer, ps sim.Time) {
	if ps < 0 {
		ps = 0
	}
	us := int64(ps) / 1_000_000
	frac := int64(ps) % 1_000_000
	bw.WriteString(strconv.FormatInt(us, 10))
	bw.WriteByte('.')
	s := strconv.FormatInt(frac, 10)
	for i := len(s); i < 6; i++ {
		bw.WriteByte('0')
	}
	bw.WriteString(s)
}

func writeEvent(bw *bufio.Writer, e Event, pid, tid int) {
	bw.WriteString("{\"name\":")
	bw.WriteString(strconv.Quote(e.Name))
	bw.WriteString(",\"cat\":")
	bw.WriteString(strconv.Quote(string(e.Cat)))
	bw.WriteString(",\"ph\":\"")
	bw.WriteByte(e.Ph)
	bw.WriteString("\",\"ts\":")
	writeTs(bw, e.Ts)
	if e.Ph == PhSpan {
		bw.WriteString(",\"dur\":")
		writeTs(bw, e.Dur)
	}
	if e.Ph == PhInstant {
		bw.WriteString(",\"s\":\"t\"")
	}
	bw.WriteString(",\"pid\":")
	bw.WriteString(strconv.Itoa(pid))
	bw.WriteString(",\"tid\":")
	bw.WriteString(strconv.Itoa(tid))
	if e.K1 != "" || e.K2 != "" || e.K3 != "" {
		bw.WriteString(",\"args\":{")
		sep := false
		if e.K1 != "" {
			bw.WriteString(strconv.Quote(e.K1))
			bw.WriteByte(':')
			bw.WriteString(strconv.Quote(e.V1))
			sep = true
		}
		if e.K2 != "" {
			if sep {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.Quote(e.K2))
			bw.WriteByte(':')
			bw.WriteString(strconv.FormatInt(e.V2, 10))
			sep = true
		}
		if e.K3 != "" {
			if sep {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.Quote(e.K3))
			bw.WriteByte(':')
			bw.WriteString(strconv.FormatInt(e.V3, 10))
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}
