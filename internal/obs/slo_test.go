package obs

import (
	"strings"
	"testing"

	"harmonia/internal/sim"
)

func testWindows() []SLOWindow {
	return []SLOWindow{{Name: "2t", Ticks: 2}, {Name: "8t", Ticks: 8}}
}

func TestSLOTrackerWindowMath(t *testing.T) {
	tr := NewSLOTracker(0.99, testWindows()) // budget 0.01
	// Four clean ticks, then one tick with 10% errors.
	for i := 0; i < 4; i++ {
		tr.Advance(100, 100, false)
	}
	tr.Advance(90, 100, true)
	// Fast window (2 ticks): 10 errors / 200 sent.
	if got, want := tr.ErrorRate(0), 10.0/200; got != want {
		t.Errorf("fast ErrorRate = %v, want %v", got, want)
	}
	budget := 1 - tr.Target()
	if got, want := tr.BurnRate(0), (10.0/200)/budget; got != want {
		t.Errorf("fast BurnRate = %v, want %v", got, want)
	}
	// Slow window (8 ticks, 5 filled): 10 errors / 500 sent.
	if got, want := tr.ErrorRate(1), 10.0/500; got != want {
		t.Errorf("slow ErrorRate = %v, want %v", got, want)
	}
	if got, want := tr.P99ViolationFraction(0), 0.5; got != want {
		t.Errorf("fast P99ViolationFraction = %v, want %v", got, want)
	}
	if got, want := tr.ErrorBudgetRemaining(0), 1-(10.0/200)/budget; got != want {
		t.Errorf("fast ErrorBudgetRemaining = %v, want %v", got, want)
	}
	// Two more clean ticks evict the bad tick from the fast window.
	tr.Advance(100, 100, false)
	tr.Advance(100, 100, false)
	if got := tr.ErrorRate(0); got != 0 {
		t.Errorf("fast ErrorRate after eviction = %v, want 0", got)
	}
	if got := tr.ErrorRate(1); got == 0 {
		t.Error("slow window evicted the bad tick too early")
	}
}

func TestSLOTrackerIdleWindows(t *testing.T) {
	tr := NewSLOTracker(0.999, testWindows())
	if got := tr.ErrorRate(0); got != 0 {
		t.Errorf("empty tracker ErrorRate = %v, want 0", got)
	}
	// Zero-traffic ticks burn nothing.
	tr.Advance(0, 0, false)
	tr.Advance(0, 0, false)
	if got := tr.BurnRate(1); got != 0 {
		t.Errorf("idle BurnRate = %v, want 0", got)
	}
}

func TestSLOTrackerValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"availability 1":  func() { NewSLOTracker(1, testWindows()) },
		"no windows":      func() { NewSLOTracker(0.99, nil) },
		"zero-tick":       func() { NewSLOTracker(0.99, []SLOWindow{{Name: "0t"}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// burnStep drives an Alerter with a fixed (fast, slow) burn pair.
func burnStep(a *Alerter, at sim.Time, fast, slow float64) []AlertEvent {
	return a.Step(at, func(_ string, win int) float64 {
		if win == 0 {
			return fast
		}
		return slow
	})
}

func TestAlerterLifecycle(t *testing.T) {
	a := NewAlerter([]BurnRule{{
		Service: "svc", Severity: SeverityPage,
		FastWin: 0, SlowWin: 1, Threshold: 8,
		PendingTicks: 2, ResolveTicks: 2,
	}})
	// Burn over threshold on only one window: no alert.
	if evs := burnStep(a, 1, 20, 1); len(evs) != 0 {
		t.Fatalf("one-window breach emitted %v", evs)
	}
	// Both windows breach: pending first, firing after 2 consecutive.
	evs := burnStep(a, 2, 20, 10)
	if len(evs) != 1 || evs[0].State != AlertPending {
		t.Fatalf("first breach emitted %v, want pending", evs)
	}
	evs = burnStep(a, 3, 20, 10)
	if len(evs) != 1 || evs[0].State != AlertFiring {
		t.Fatalf("second breach emitted %v, want firing", evs)
	}
	if a.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1", a.ActiveCount())
	}
	// One clear tick is not enough to resolve...
	if evs := burnStep(a, 4, 0, 0); len(evs) != 0 {
		t.Fatalf("first clear tick emitted %v", evs)
	}
	// ...the second is, and the rule re-arms.
	evs = burnStep(a, 5, 0, 0)
	if len(evs) != 1 || evs[0].State != AlertResolved {
		t.Fatalf("second clear tick emitted %v, want resolved", evs)
	}
	if a.ActiveCount() != 0 {
		t.Fatalf("ActiveCount after resolve = %d, want 0", a.ActiveCount())
	}
	// Re-fire after resolve.
	burnStep(a, 6, 20, 10)
	evs = burnStep(a, 7, 20, 10)
	if len(evs) != 1 || evs[0].State != AlertFiring {
		t.Fatalf("re-fire emitted %v, want firing", evs)
	}
	log := a.Log()
	if got := log.Count("svc", SeverityPage, AlertFiring); got != 2 {
		t.Errorf("firing count = %d, want 2", got)
	}
	if got := log.Count("svc", "", ""); got != int64(len(log.Events())) {
		t.Errorf("wildcard count = %d, want %d", got, len(log.Events()))
	}
}

func TestAlerterPendingStreakResets(t *testing.T) {
	a := NewAlerter([]BurnRule{{
		Service: "svc", Severity: SeverityTicket,
		FastWin: 0, SlowWin: 1, Threshold: 2,
		PendingTicks: 3, ResolveTicks: 10,
	}})
	burnStep(a, 1, 5, 5) // pending, streak 1
	burnStep(a, 2, 5, 5) // streak 2
	burnStep(a, 3, 0, 0) // clear tick breaks the streak
	burnStep(a, 4, 5, 5) // streak restarts at 1
	evs := burnStep(a, 5, 5, 5)
	if len(evs) != 0 {
		t.Fatalf("streak did not reset across clear tick: %v", evs)
	}
	evs = burnStep(a, 6, 5, 5)
	if len(evs) != 1 || evs[0].State != AlertFiring {
		t.Fatalf("want firing on third consecutive breach, got %v", evs)
	}
}

func TestAlertLogBytesFixedFormat(t *testing.T) {
	a := NewAlerter([]BurnRule{{
		Service: "svc", Severity: SeverityPage,
		FastWin: 0, SlowWin: 1, Threshold: 1,
		PendingTicks: 1, ResolveTicks: 1,
	}})
	burnStep(a, 100, 2.5, 1.5)
	got := string(a.Log().Bytes())
	want := "at=100 service=svc severity=page state=pending fast=2.5 slow=1.5\n" +
		"at=100 service=svc severity=page state=firing fast=2.5 slow=1.5\n"
	if got != want {
		t.Errorf("log bytes:\n%q\nwant:\n%q", got, want)
	}
}

func TestCorrelateRanksScheduledFirst(t *testing.T) {
	firing := AlertEvent{At: 1000, Service: "svc", Severity: SeverityPage, State: AlertFiring}
	events := []CausalEvent{
		{At: 900, Kind: "failover", Subject: "n1"},
		{At: 910, Kind: "failover", Subject: "n2"},
		{At: 920, Kind: "failover", Subject: "n3"},
		{At: 950, Kind: "kill", Subject: "n4", Scheduled: true},
		{At: 2000, Kind: "kill", Subject: "late", Scheduled: true}, // after the firing
		{At: 10, Kind: "kill", Subject: "early", Scheduled: true},  // before the lookback
	}
	pms := Correlate([]AlertEvent{firing}, events, 500)
	if len(pms) != 1 {
		t.Fatalf("got %d postmortems, want 1", len(pms))
	}
	pm := pms[0]
	if !pm.Scheduled() {
		t.Fatal("postmortem not attributed to a scheduled fault")
	}
	if len(pm.Causes) != 2 {
		t.Fatalf("got %d causes, want 2: %+v", len(pm.Causes), pm.Causes)
	}
	// Scheduled ranks above the more numerous unscheduled failovers.
	if !pm.Causes[0].Scheduled || pm.Causes[0].Kind != "kill" || pm.Causes[0].Count != 1 {
		t.Errorf("top cause = %+v, want the scheduled kill", pm.Causes[0])
	}
	if pm.Causes[1].Kind != "failover" || pm.Causes[1].Count != 3 {
		t.Errorf("second cause = %+v, want failover x3", pm.Causes[1])
	}
	// Pending/resolved transitions produce no postmortems.
	quiet := Correlate([]AlertEvent{{At: 1000, Service: "svc", State: AlertResolved}}, events, 500)
	if len(quiet) != 0 {
		t.Errorf("non-firing transition correlated: %+v", quiet)
	}
}

func TestCorrelateEmptyWindow(t *testing.T) {
	firing := AlertEvent{At: 1000, Service: "svc", Severity: SeverityTicket, State: AlertFiring}
	pms := Correlate([]AlertEvent{firing}, nil, 500)
	if len(pms) != 1 || len(pms[0].Causes) != 0 || pms[0].Scheduled() {
		t.Fatalf("empty-window postmortem = %+v", pms)
	}
	out := string(RenderTimeline(pms))
	if !strings.Contains(out, "cause unknown") {
		t.Errorf("timeline lacks unknown-cause marker:\n%s", out)
	}
}

func TestRenderTimeline(t *testing.T) {
	pms := Correlate(
		[]AlertEvent{{At: 7_500_000_000, Service: "svc", Severity: SeverityPage,
			State: AlertFiring, BurnFast: 35, BurnSlow: 9}},
		[]CausalEvent{
			{At: 7_000_000_000, Kind: "thermal-set", Subject: "node-1", Detail: "arg=6000", Scheduled: true},
			{At: 7_100_000_000, Kind: "thermal-set", Subject: "node-2", Detail: "arg=6000", Scheduled: true},
		},
		1_000_000_000)
	out := string(RenderTimeline(pms))
	for _, want := range []string{
		"POSTMORTEM svc page firing @7.500ms",
		"[scheduled] thermal-set x2",
		"e.g. node-1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline lacks %q:\n%s", want, out)
		}
	}
}

// TestTraceSLOAlertCats verifies the new taxonomy end to end: slo and
// alert instants recorded through a process validate under a required
// category set that includes them.
func TestTraceSLOAlertCats(t *testing.T) {
	rec := NewRecorder()
	tr := rec.Process("fleet").Track("ctrl")
	tr.Add(Instant(CatSLO, "burn:svc", 100))
	tr.Add(Instant(CatAlert, "firing:svc", 200))
	var buf strings.Builder
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateTrace([]byte(buf.String()), []Cat{CatSLO, CatAlert})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ByCat[string(CatSLO)] != 1 || stats.ByCat[string(CatAlert)] != 1 {
		t.Errorf("ByCat = %v, want one slo and one alert event", stats.ByCat)
	}
	// A trace without alert events must fail a requirement that
	// includes the category.
	rec2 := NewRecorder()
	rec2.Process("fleet").Track("ctrl").Add(Instant(CatSLO, "burn:svc", 100))
	var buf2 strings.Builder
	if err := rec2.WriteTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace([]byte(buf2.String()), []Cat{CatSLO, CatAlert}); err == nil {
		t.Error("ValidateTrace accepted a trace missing the alert category")
	}
}
