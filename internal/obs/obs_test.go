package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"harmonia/internal/sim"
)

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Add(Span(CatPacket, "route", 0, sim.Microsecond))
	b.Add(Instant(CatFault, "kill", sim.Microsecond))
	if b.Len() != 0 || b.Dropped() != 0 {
		t.Fatalf("nil buffer reported state: len=%d dropped=%d", b.Len(), b.Dropped())
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	e := Span(CatPacket, "route", 10, 5)
	if e.Dur != 0 {
		t.Fatalf("negative span duration not clamped: %v", e.Dur)
	}
}

func buildRecording(rec *Recorder) {
	p := rec.Process("case-a")
	ctrl := p.Track("control")
	shard := p.Track("shard-00")
	ctrl.Add(Instant(CatHeartbeat, "hb-sweep", 50*sim.Microsecond))
	for i := 0; i < 4; i++ {
		e := Span(CatPacket, "route", sim.Time(i)*sim.Microsecond, sim.Time(i)*sim.Microsecond+300*sim.Nanosecond)
		e.K1, e.V1 = "node", "fpga-00"
		e.K2, e.V2 = "bytes", 1024
		shard.Add(e)
	}
	ctrl.Add(Span(CatPRLoad, "pr-load", 2*sim.Microsecond, 2*sim.Millisecond))
	ctrl.Add(Instant(CatFault, "kill", 60*sim.Microsecond))
	ctrl.Add(Span(CatMigration, "replay", 70*sim.Microsecond, 80*sim.Microsecond))
}

func TestWriteTraceValidatesAndIsDeterministic(t *testing.T) {
	render := func() []byte {
		rec := NewRecorder()
		buildRecording(rec)
		var buf bytes.Buffer
		if err := rec.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical recordings rendered differently:\n%s\nvs\n%s", a, b)
	}
	stats, err := ValidateTrace(a, []Cat{CatPacket, CatPRLoad, CatHeartbeat, CatMigration, CatFault})
	if err != nil {
		t.Fatalf("trace failed validation: %v\n%s", err, a)
	}
	if stats.ByCat["packet"] != 4 {
		t.Fatalf("want 4 packet events, got %v", stats.ByCat)
	}
	// The export must be plain JSON a generic parser round-trips.
	var doc map[string]any
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace is not generic JSON: %v", err)
	}
}

func TestTsRendersFixedPointMicroseconds(t *testing.T) {
	rec := NewRecorder()
	tr := rec.Process("p").Track("t")
	tr.Add(Instant(CatFault, "x", 1_234_567)) // 1.234567 µs in ps
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ts":1.234567`) {
		t.Fatalf("ps→µs conversion wrong:\n%s", buf.String())
	}
}

func TestFlightRecorderKeepsLastN(t *testing.T) {
	rec := NewFlightRecorder(8)
	tr := rec.Process("p").Track("t")
	for i := 0; i < 20; i++ {
		tr.Add(Instant(CatPacket, "e", sim.Time(i)))
	}
	if tr.Len() != 8 {
		t.Fatalf("ring holds %d events, want 8", tr.Len())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("ring dropped %d events, want 12", tr.Dropped())
	}
	evs := rec.Events()
	if len(evs) != 8 {
		t.Fatalf("export has %d events, want 8", len(evs))
	}
	for i, e := range evs {
		if e.Ts != sim.Time(12+i) {
			t.Fatalf("ring order wrong at %d: ts=%v", i, e.Ts)
		}
	}
}

func TestValidateTraceRejectsBackwardTs(t *testing.T) {
	bad := `{"traceEvents":[
	 {"name":"a","cat":"packet","ph":"i","s":"t","ts":2.0,"pid":1,"tid":1},
	 {"name":"b","cat":"packet","ph":"i","s":"t","ts":1.0,"pid":1,"tid":1}]}`
	if _, err := ValidateTrace([]byte(bad), nil); err == nil {
		t.Fatal("backwards ts not rejected")
	}
}

func TestValidateTraceRejectsMissingFields(t *testing.T) {
	for _, bad := range []string{
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"cat":"x","ph":"i","ts":1,"pid":1,"tid":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"i","pid":1,"tid":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1,"tid":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"?","ts":1,"pid":1,"tid":1}]}`,
	} {
		if _, err := ValidateTrace([]byte(bad), nil); err == nil {
			t.Fatalf("accepted invalid trace %s", bad)
		}
	}
}

func TestRegistryReadThrough(t *testing.T) {
	var served int64
	reg := NewRegistry()
	reg.Counter("served_total", "served packets", func() int64 { return served })
	reg.Gauge("temp_c", "die temperature", func() float64 { return 42.5 })
	served = 7
	if v := reg.Int("served_total"); v != 7 {
		t.Fatalf("counter read %d before increment visible, want 7", v)
	}
	served = 9
	if v := reg.Int("served_total"); v != 9 {
		t.Fatalf("read-through counter stale: %d", v)
	}
	if _, ok := reg.Value("missing"); ok {
		t.Fatal("unknown metric reported a value")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Counter("x_total", "", func() int64 { return 0 })
}

func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.SetConstLabels(map[string]string{"case": "budgeted"})
	reg.Counter("harmonia_router_sent_total", "packets offered", func() int64 { return 11 })
	reg.GaugeL("harmonia_fleet_nodes", map[string]string{"state": "healthy"}, "nodes by state",
		func() float64 { return 3 })
	reg.SummaryM("harmonia_route_latency_ps", "routed-packet latency", func() Summary {
		return Summary{Count: 5, Sum: 100, P50: 10, P99: 40, Max: 41}
	})
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP harmonia_router_sent_total packets offered",
		"# TYPE harmonia_router_sent_total counter",
		`harmonia_router_sent_total{case="budgeted"} 11`,
		`harmonia_fleet_nodes{case="budgeted",state="healthy"} 3`,
		"# TYPE harmonia_route_latency_ps summary",
		`harmonia_route_latency_ps{case="budgeted",quantile="0.99"} 40`,
		`harmonia_route_latency_ps_sum{case="budgeted"} 100`,
		`harmonia_route_latency_ps_count{case="budgeted"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromMergesRegistries(t *testing.T) {
	mk := func(name string, v int64) *Registry {
		reg := NewRegistry()
		reg.SetConstLabels(map[string]string{"case": name})
		reg.Counter("sent_total", "sent", func() int64 { return v })
		return reg
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, mk("a", 1), mk("b", 2)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE sent_total counter") != 1 {
		t.Fatalf("TYPE line not deduplicated:\n%s", out)
	}
	for _, want := range []string{`sent_total{case="a"} 1`, `sent_total{case="b"} 2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.HistogramM("harmonia_lat_ps", "latency histogram", func() HistSnapshot {
		return HistSnapshot{
			Buckets: []HistBucket{{LE: 100, Count: 2}, {LE: 500, Count: 5}},
			Sum:     700, Count: 5,
		}
	})
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE harmonia_lat_ps histogram",
		`harmonia_lat_ps_bucket{le="100"} 2`,
		`harmonia_lat_ps_bucket{le="500"} 5`,
		`harmonia_lat_ps_bucket{le="+Inf"} 5`,
		"harmonia_lat_ps_sum 700",
		"harmonia_lat_ps_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram exposition missing %q:\n%s", want, out)
		}
	}
	// The +Inf bucket renders after the finite ones.
	if strings.Index(out, `le="500"`) > strings.Index(out, `le="+Inf"`) {
		t.Fatalf("buckets out of order:\n%s", out)
	}
	vals := reg.Values()
	if vals["harmonia_lat_ps_count"] != 5 || vals["harmonia_lat_ps_sum"] != 700 {
		t.Fatalf("Values snapshot wrong: %v", vals)
	}
}

func TestWritePromSortsSeriesByLabels(t *testing.T) {
	reg := NewRegistry()
	// Registered deliberately out of label order.
	for _, svc := range []string{"zeta", "alpha", "mid"} {
		svc := svc
		reg.GaugeL("harmonia_slo_burn_rate", map[string]string{"service": svc, "window": "2t"},
			"burn", func() float64 { return 1 })
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	iAlpha := strings.Index(out, `service="alpha"`)
	iMid := strings.Index(out, `service="mid"`)
	iZeta := strings.Index(out, `service="zeta"`)
	if iAlpha < 0 || iMid < 0 || iZeta < 0 || !(iAlpha < iMid && iMid < iZeta) {
		t.Fatalf("series not sorted by label value:\n%s", out)
	}
}

func TestValuesExpandsSummaries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "", func() int64 { return 3 })
	reg.SummaryM("lat", "", func() Summary { return Summary{Count: 2, Sum: 9, P50: 4, P99: 5, Max: 5} })
	vals := reg.Values()
	if vals["c_total"] != 3 || vals["lat_count"] != 2 || vals[`lat{quantile="0.99"}`] != 5 {
		t.Fatalf("Values snapshot wrong: %v", vals)
	}
}
