package obs

import (
	"bytes"
	"fmt"

	"harmonia/internal/sim"
)

// Multi-window burn-rate alerting (the Google-SRE shape): a rule
// fires only when BOTH a fast and a slow window burn above the
// threshold — the fast window catches the spike quickly, the slow
// window keeps one bad tick from paging. Rules advance through a
// pending → firing → resolved state machine once per heartbeat
// barrier, on the serial path, so the transition sequence and the
// append-only AlertLog are byte-identical across worker counts and
// batch quanta.

// AlertSeverity ranks a rule's urgency.
type AlertSeverity string

const (
	// SeverityPage is for fast, steep burns that need immediate action.
	SeverityPage AlertSeverity = "page"
	// SeverityTicket is for slow burns that will exhaust budget
	// eventually.
	SeverityTicket AlertSeverity = "ticket"
)

// AlertState is a rule's externally visible state.
type AlertState string

const (
	// AlertPending: the condition holds but has not persisted long
	// enough to fire.
	AlertPending AlertState = "pending"
	// AlertFiring: the condition persisted PendingTicks barriers.
	AlertFiring AlertState = "firing"
	// AlertResolved: the condition stayed clear ResolveTicks barriers
	// after pending/firing.
	AlertResolved AlertState = "resolved"
)

// BurnRule is one multi-window burn-rate alerting rule over a
// service's SLOTracker windows.
type BurnRule struct {
	Service   string
	Severity  AlertSeverity
	FastWin   int     // index of the fast window in the tracker
	SlowWin   int     // index of the slow window in the tracker
	Threshold float64 // burn-rate threshold both windows must exceed
	// PendingTicks is how many consecutive breaching barriers promote
	// pending to firing (min 1). ResolveTicks is how many consecutive
	// clear barriers resolve a pending/firing alert (min 1).
	PendingTicks int
	ResolveTicks int
}

// AlertEvent is one state transition, appended to the AlertLog and
// emitted as an alert-category trace instant.
type AlertEvent struct {
	At       sim.Time
	Service  string
	Severity AlertSeverity
	State    AlertState
	// BurnFast/BurnSlow snapshot the two window burns at transition
	// time (for resolved, the burns that cleared).
	BurnFast float64
	BurnSlow float64
}

// ruleState is a rule plus its live state-machine position.
type ruleState struct {
	rule   BurnRule
	active AlertState // "" when inactive
	breach int        // consecutive breaching barriers while pending
	clear  int        // consecutive clear barriers while pending/firing
}

// Alerter evaluates a fixed rule set each barrier. Rule order is
// registration order; evaluation is pure over the burn callback.
type Alerter struct {
	rules []ruleState
	log   AlertLog
}

// NewAlerter builds an alerter over the given rules. Zero
// PendingTicks/ResolveTicks default to 1.
func NewAlerter(rules []BurnRule) *Alerter {
	a := &Alerter{}
	for _, r := range rules {
		a.Add(r)
	}
	return a
}

// Add appends one rule to the evaluation order (services register
// incrementally). The new rule starts inactive.
func (a *Alerter) Add(r BurnRule) {
	if r.Service == "" {
		panic("obs: burn rule needs a service")
	}
	if r.Threshold <= 0 {
		panic(fmt.Sprintf("obs: burn rule %s/%s needs a positive threshold", r.Service, r.Severity))
	}
	if r.PendingTicks < 1 {
		r.PendingTicks = 1
	}
	if r.ResolveTicks < 1 {
		r.ResolveTicks = 1
	}
	a.rules = append(a.rules, ruleState{rule: r})
}

// Rules reports the configured rules in evaluation order.
func (a *Alerter) Rules() []BurnRule {
	out := make([]BurnRule, len(a.rules))
	for i := range a.rules {
		out[i] = a.rules[i].rule
	}
	return out
}

// Step evaluates every rule against the burn callback (service,
// window index → burn rate) at one barrier and returns the
// transitions it produced, already appended to the log. Must be
// called exactly once per barrier, on the serial path.
func (a *Alerter) Step(now sim.Time, burn func(service string, win int) float64) []AlertEvent {
	var out []AlertEvent
	for i := range a.rules {
		rs := &a.rules[i]
		r := rs.rule
		fast := burn(r.Service, r.FastWin)
		slow := burn(r.Service, r.SlowWin)
		cond := fast >= r.Threshold && slow >= r.Threshold
		emit := func(state AlertState) {
			ev := AlertEvent{At: now, Service: r.Service, Severity: r.Severity,
				State: state, BurnFast: fast, BurnSlow: slow}
			a.log.append(ev)
			out = append(out, ev)
		}
		switch rs.active {
		case "": // inactive
			if cond {
				rs.active = AlertPending
				rs.breach = 1
				rs.clear = 0
				emit(AlertPending)
				if rs.breach >= r.PendingTicks {
					rs.active = AlertFiring
					emit(AlertFiring)
				}
			}
		case AlertPending:
			if cond {
				if rs.clear > 0 {
					rs.breach = 1 // a clear tick broke the streak
				} else {
					rs.breach++
				}
				rs.clear = 0
				if rs.breach >= r.PendingTicks {
					rs.active = AlertFiring
					emit(AlertFiring)
				}
			} else {
				rs.clear++
				if rs.clear >= r.ResolveTicks {
					rs.active = ""
					emit(AlertResolved)
				}
			}
		case AlertFiring:
			if cond {
				rs.clear = 0
			} else {
				rs.clear++
				if rs.clear >= r.ResolveTicks {
					rs.active = ""
					emit(AlertResolved)
				}
			}
		}
	}
	return out
}

// ActiveCount reports how many rules are currently pending or firing.
func (a *Alerter) ActiveCount() int {
	n := 0
	for i := range a.rules {
		if a.rules[i].active != "" {
			n++
		}
	}
	return n
}

// Log exposes the append-only alert log.
func (a *Alerter) Log() *AlertLog { return &a.log }

// AlertLog is the append-only record of every alert transition.
type AlertLog struct {
	events []AlertEvent
}

func (l *AlertLog) append(ev AlertEvent) { l.events = append(l.events, ev) }

// Events returns the transitions in emission order. The slice is
// shared; callers must not mutate it.
func (l *AlertLog) Events() []AlertEvent { return l.events }

// Count reports transitions matching the given service, severity and
// state (empty strings match everything).
func (l *AlertLog) Count(service string, sev AlertSeverity, state AlertState) int64 {
	var n int64
	for _, e := range l.events {
		if (service == "" || e.Service == service) &&
			(sev == "" || e.Severity == sev) &&
			(state == "" || e.State == state) {
			n++
		}
	}
	return n
}

// Bytes renders the log in a fixed line format. Two identical runs
// produce identical bytes — the determinism harness diffs this
// directly.
func (l *AlertLog) Bytes() []byte {
	var b bytes.Buffer
	for _, e := range l.events {
		fmt.Fprintf(&b, "at=%d service=%s severity=%s state=%s fast=%s slow=%s\n",
			int64(e.At), e.Service, e.Severity, e.State,
			promFloat(e.BurnFast), promFloat(e.BurnSlow))
	}
	return b.Bytes()
}
