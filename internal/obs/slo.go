package obs

import "fmt"

// SLO error-budget accounting. A tracker owns one service's rolling
// multi-resolution windows of availability error and p99-violation
// fraction. The fleet advances every tracker exactly once per
// heartbeat barrier on the serial control-plane path, so window state
// — and everything derived from it (burn rates, alert transitions) —
// is byte-identical across worker counts and batch quanta by
// construction. Nothing here touches the packet hot path: the caller
// reads its per-tick deltas from the same shard counters the metrics
// registry reads through.

// SLOWindow is one rolling accounting window, sized in heartbeat
// ticks. Multi-window burn alerting pairs a short window (fast spike
// detection) with a long one (sustained-burn confirmation).
type SLOWindow struct {
	Name  string
	Ticks int
}

// sloRing is a fixed-length ring of per-tick samples with running
// sums, so Advance and every rate query are O(1).
type sloRing struct {
	good    []int64
	total   []int64
	viol    []int64 // 1 when the tick's p99 breached its target
	head    int
	fill    int
	sumGood int64
	sumTot  int64
	sumViol int64
}

func (w *sloRing) push(good, total, viol int64) {
	n := len(w.good)
	if w.fill == n {
		w.sumGood -= w.good[w.head]
		w.sumTot -= w.total[w.head]
		w.sumViol -= w.viol[w.head]
	} else {
		w.fill++
	}
	w.good[w.head], w.total[w.head], w.viol[w.head] = good, total, viol
	w.sumGood += good
	w.sumTot += total
	w.sumViol += viol
	w.head++
	if w.head == n {
		w.head = 0
	}
}

// SLOTracker accounts one service's error budget across a set of
// rolling windows against an availability target.
type SLOTracker struct {
	target float64 // availability objective in [0, 1)
	specs  []SLOWindow
	rings  []sloRing
	ticks  int64
}

// NewSLOTracker builds a tracker for an availability objective (e.g.
// 0.999) over the given windows. A zero target means the service has
// no availability SLO; burn then degenerates to the raw error rate.
func NewSLOTracker(availability float64, wins []SLOWindow) *SLOTracker {
	if availability < 0 || availability >= 1 {
		panic(fmt.Sprintf("obs: availability objective %v outside [0, 1)", availability))
	}
	if len(wins) == 0 {
		panic("obs: SLO tracker needs at least one window")
	}
	t := &SLOTracker{target: availability, specs: wins, rings: make([]sloRing, len(wins))}
	for i, w := range wins {
		if w.Ticks <= 0 {
			panic(fmt.Sprintf("obs: SLO window %q has %d ticks", w.Name, w.Ticks))
		}
		t.rings[i] = sloRing{
			good:  make([]int64, w.Ticks),
			total: make([]int64, w.Ticks),
			viol:  make([]int64, w.Ticks),
		}
	}
	return t
}

// Windows reports the tracker's window specs in registration order.
func (t *SLOTracker) Windows() []SLOWindow { return t.specs }

// Target reports the availability objective.
func (t *SLOTracker) Target() float64 { return t.target }

// Ticks reports how many barriers have been accounted.
func (t *SLOTracker) Ticks() int64 { return t.ticks }

// Advance folds one heartbeat tick's demand into every window: good
// requests served, total requests offered, and whether the service's
// windowed p99 breached its latency target during the tick. Must be
// called exactly once per barrier, on the serial path.
func (t *SLOTracker) Advance(good, total int64, p99Violated bool) {
	var v int64
	if p99Violated {
		v = 1
	}
	for i := range t.rings {
		t.rings[i].push(good, total, v)
	}
	t.ticks++
}

// ErrorRate reports the windowed fraction of offered requests that
// were not served (0 when the window saw no demand).
func (t *SLOTracker) ErrorRate(win int) float64 {
	r := &t.rings[win]
	if r.sumTot == 0 {
		return 0
	}
	return float64(r.sumTot-r.sumGood) / float64(r.sumTot)
}

// BurnRate reports how many times faster than the objective allows
// the window is consuming error budget: windowed error rate divided
// by the budget fraction (1 - availability). A burn of 1 exactly
// exhausts budget at the objective's rate; sustained burn above 1
// will violate the SLO.
func (t *SLOTracker) BurnRate(win int) float64 {
	return t.ErrorRate(win) / (1 - t.target)
}

// P99ViolationFraction reports the fraction of accounted ticks in the
// window whose p99 breached the latency target.
func (t *SLOTracker) P99ViolationFraction(win int) float64 {
	r := &t.rings[win]
	if r.fill == 0 {
		return 0
	}
	return float64(r.sumViol) / float64(r.fill)
}

// ErrorBudgetRemaining reports the window's unburned budget fraction:
// 1 at zero error, 0 when burning exactly at the objective, negative
// while violating. (Equivalent to 1 - BurnRate.)
func (t *SLOTracker) ErrorBudgetRemaining(win int) float64 {
	return 1 - t.BurnRate(win)
}
