package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The metrics registry is read-through: a metric registers a callback
// over the owning subsystem's live counters instead of maintaining a
// second copy. Nothing touches the serving hot path — counters keep
// incrementing plain int64 fields where they live today, and the
// registry reads them only at snapshot time. That makes the registry
// the single source of truth: drill JSON, Prometheus text and the
// public stats accessors all evaluate the same callbacks, so they can
// never disagree.

// Summary is a quantile snapshot a summary metric's callback returns,
// typically rendered from a metrics.Histogram.
type Summary struct {
	Count int64
	Sum   float64
	P50   float64
	P99   float64
	Max   float64
}

// HistBucket is one cumulative bucket of a histogram snapshot: the
// number of samples at or below the upper bound LE.
type HistBucket struct {
	LE    float64
	Count int64
}

// HistSnapshot is a native-histogram snapshot a histogram metric's
// callback returns: cumulative buckets in ascending LE order (the
// implicit +Inf bucket is Count), plus exact sum and count. Typically
// rendered from a metrics.Histogram via CumBuckets.
type HistSnapshot struct {
	Buckets []HistBucket
	Sum     float64
	Count   int64
}

// metric kinds (Prometheus TYPE line values).
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindSummary   = "summary"
	kindHistogram = "histogram"
)

// series is one registered time series: a name, optional per-series
// labels, and the read callback.
type series struct {
	name   string
	labels string // pre-rendered `k="v",...`, sorted; "" when unlabeled
	readF  func() float64
	readS  func() Summary
	readH  func() HistSnapshot
}

// metricFamily groups the series of one metric name with its metadata.
type metricFamily struct {
	name   string
	help   string
	kind   string
	series []*series
}

// Registry is a named-metric registry. Registration and snapshotting
// are mutex-guarded; the serving hot path never touches it.
type Registry struct {
	mu       sync.Mutex
	families map[string]*metricFamily
	order    []string
	// constLabels render into every series (e.g. case="budgeted-derived"
	// in the chaos drill's per-case registries).
	constLabels string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*metricFamily)}
}

// SetConstLabels attaches labels rendered into every series of this
// registry (the chaos drill tags each case's registry with its name).
func (r *Registry) SetConstLabels(kv map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.constLabels = renderLabels(kv)
}

// renderLabels renders a label map as `k="v",...` with sorted keys.
func renderLabels(kv map[string]string) string {
	if len(kv) == 0 {
		return ""
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// register adds one series, creating its family on first use.
// Duplicate (name, labels) registration panics: it is a wiring bug.
func (r *Registry) register(name, labels, help, kind string, readF func() float64, readS func() Summary, readH func() HistSnapshot) {
	if name == "" {
		panic("obs: metric needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &metricFamily{name: name, help: help, kind: kind}
		r.families[name] = fam
		r.order = append(r.order, name)
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, fam.kind))
	}
	for _, s := range fam.series {
		if s.labels == labels {
			panic(fmt.Sprintf("obs: duplicate metric %s{%s}", name, labels))
		}
	}
	fam.series = append(fam.series, &series{name: name, labels: labels, readF: readF, readS: readS, readH: readH})
}

// Counter registers a monotonic counter read from the callback.
func (r *Registry) Counter(name, help string, read func() int64) {
	r.register(name, "", help, kindCounter, func() float64 { return float64(read()) }, nil, nil)
}

// CounterL registers a labeled counter series.
func (r *Registry) CounterL(name string, labels map[string]string, help string, read func() int64) {
	r.register(name, renderLabels(labels), help, kindCounter,
		func() float64 { return float64(read()) }, nil, nil)
}

// Gauge registers a gauge read from the callback.
func (r *Registry) Gauge(name, help string, read func() float64) {
	r.register(name, "", help, kindGauge, read, nil, nil)
}

// GaugeL registers a labeled gauge series.
func (r *Registry) GaugeL(name string, labels map[string]string, help string, read func() float64) {
	r.register(name, renderLabels(labels), help, kindGauge, read, nil, nil)
}

// SummaryM registers a quantile summary read from the callback.
func (r *Registry) SummaryM(name, help string, read func() Summary) {
	r.register(name, "", help, kindSummary, nil, read, nil)
}

// HistogramM registers a native Prometheus histogram read from the
// callback: rendered as cumulative `_bucket{le="..."}` lines plus
// `_sum`/`_count`, so external scrapers see the same distribution the
// summary quantiles are computed from.
func (r *Registry) HistogramM(name, help string, read func() HistSnapshot) {
	r.register(name, "", help, kindHistogram, nil, nil, read)
}

// Value reads one unlabeled counter or gauge by name. ok is false for
// unknown names.
func (r *Registry) Value(name string) (float64, bool) {
	return r.ValueL(name, nil)
}

// ValueL reads one series by name and label set.
func (r *Registry) ValueL(name string, labels map[string]string) (float64, bool) {
	want := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		return 0, false
	}
	for _, s := range fam.series {
		if s.labels == want && s.readF != nil {
			return s.readF(), true
		}
	}
	return 0, false
}

// Int reads one unlabeled counter/gauge as an int64 (0 when absent).
// Counter magnitudes stay far below 2^53, so the float round trip is
// exact.
func (r *Registry) Int(name string) int64 {
	v, _ := r.Value(name)
	return int64(v)
}

// Values snapshots every series into a flat map for embedding in
// drill JSON: counters and gauges keyed by name (plus {labels} when
// labeled), summaries expanded into _count/_sum/quantile entries.
// encoding/json renders map keys sorted, so embeddings are
// deterministic.
func (r *Registry) Values() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, name := range r.order {
		for _, s := range r.families[name].series {
			key := name
			if s.labels != "" {
				key = name + "{" + s.labels + "}"
			}
			if s.readF != nil {
				out[key] = s.readF()
				continue
			}
			if s.readH != nil {
				// Histograms expand to count/sum only: per-bucket
				// entries would bloat drill JSON without adding
				// information the .prom artifact doesn't carry.
				h := s.readH()
				out[key+"_count"] = float64(h.Count)
				out[key+"_sum"] = h.Sum
				continue
			}
			sum := s.readS()
			out[key+"_count"] = float64(sum.Count)
			out[key+"_sum"] = sum.Sum
			out[key+`{quantile="0.5"}`] = sum.P50
			out[key+`{quantile="0.99"}`] = sum.P99
			out[key+`{quantile="1"}`] = sum.Max
		}
	}
	return out
}

// WriteProm writes this registry in Prometheus text exposition format.
func (r *Registry) WriteProm(w io.Writer) error {
	return WriteProm(w, r)
}

// WriteProm merges several registries into one Prometheus text
// exposition — the chaos drill writes its per-case registries (each
// carrying a case const label) as one scrape document. HELP/TYPE
// lines appear once per metric name, in first-registration order.
func WriteProm(w io.Writer, regs ...*Registry) error {
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	var names []string
	for _, r := range regs {
		r.mu.Lock()
		for _, n := range r.order {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
		r.mu.Unlock()
	}
	for _, name := range names {
		wroteHeader := false
		for _, r := range regs {
			r.mu.Lock()
			fam := r.families[name]
			if fam == nil {
				r.mu.Unlock()
				continue
			}
			if !wroteHeader {
				wroteHeader = true
				if fam.help != "" {
					fmt.Fprintf(bw, "# HELP %s %s\n", name, fam.help)
				}
				fmt.Fprintf(bw, "# TYPE %s %s\n", name, fam.kind)
			}
			// Series render sorted by label string within the family,
			// so same-seed runs emit byte-identical expositions
			// regardless of registration order.
			ordered := make([]*series, len(fam.series))
			copy(ordered, fam.series)
			sort.SliceStable(ordered, func(i, j int) bool {
				return ordered[i].labels < ordered[j].labels
			})
			for _, s := range ordered {
				writeSeries(bw, s, r.constLabels)
			}
			r.mu.Unlock()
		}
	}
	return bw.Flush()
}

// joinLabels merges const and per-series label strings.
func joinLabels(parts ...string) string {
	var out []string
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}

// promFloat renders a sample value.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSeries renders one series' sample lines.
func writeSeries(bw *bufio.Writer, s *series, constLabels string) {
	base := joinLabels(constLabels, s.labels)
	nameWith := func(extra string) string {
		l := joinLabels(base, extra)
		if l == "" {
			return s.name
		}
		return s.name + "{" + l + "}"
	}
	suffixed := func(suffix, extra string) string {
		l := joinLabels(base, extra)
		if l == "" {
			return s.name + suffix
		}
		return s.name + suffix + "{" + l + "}"
	}
	if s.readF != nil {
		fmt.Fprintf(bw, "%s %s\n", nameWith(""), promFloat(s.readF()))
		return
	}
	if s.readH != nil {
		h := s.readH()
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, "%s %d\n", suffixed("_bucket", `le="`+promFloat(b.LE)+`"`), b.Count)
		}
		fmt.Fprintf(bw, "%s %d\n", suffixed("_bucket", `le="+Inf"`), h.Count)
		fmt.Fprintf(bw, "%s %s\n", suffixed("_sum", ""), promFloat(h.Sum))
		fmt.Fprintf(bw, "%s %d\n", suffixed("_count", ""), h.Count)
		return
	}
	sum := s.readS()
	fmt.Fprintf(bw, "%s %s\n", nameWith(`quantile="0.5"`), promFloat(sum.P50))
	fmt.Fprintf(bw, "%s %s\n", nameWith(`quantile="0.99"`), promFloat(sum.P99))
	fmt.Fprintf(bw, "%s %s\n", nameWith(`quantile="1"`), promFloat(sum.Max))
	fmt.Fprintf(bw, "%s %s\n", suffixed("_sum", ""), promFloat(sum.Sum))
	fmt.Fprintf(bw, "%s %d\n", suffixed("_count", ""), sum.Count)
}
