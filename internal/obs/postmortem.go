package obs

import (
	"bytes"
	"fmt"
	"sort"

	"harmonia/internal/sim"
)

// The causal postmortem engine correlates alert firings back to the
// cluster events that plausibly caused them. Callers feed it a merged
// causal event log — scheduled fault injections (ground truth from
// the faults.Schedule), failovers, sheds, preemptions, rebalance
// aborts — and a lookback derived from the health plane's detection
// bound; for each firing it groups the events inside the lookback
// window by kind and ranks them: scheduled faults first (they ARE the
// root cause when present), then by count. Everything is sorted, so
// the attribution — like every other observable in the repo — is
// byte-identical per seed.

// CausalEvent is one entry in the merged cluster event log.
type CausalEvent struct {
	At      sim.Time
	Kind    string // e.g. "kill", "thermal-ramp", "failover", "bulk-shed"
	Subject string // the node, rack or service the event happened to
	Detail  string // free-form context, kept short
	// Scheduled marks ground truth: the event came from the injected
	// fault schedule rather than from the fleet's own reactions.
	Scheduled bool
}

// Attribution is one ranked cause group in a postmortem: every
// in-window event of one kind, collapsed.
type Attribution struct {
	Kind      string
	Count     int
	First     sim.Time
	Last      sim.Time
	Scheduled bool
	Example   string // subject (+ detail) of the earliest event
}

// AlertPostmortem is the causal report for one firing alert.
type AlertPostmortem struct {
	Alert       AlertEvent
	WindowStart sim.Time
	WindowEnd   sim.Time
	Causes      []Attribution
}

// Scheduled reports whether the postmortem attributes the firing to
// at least one ground-truth scheduled fault.
func (p *AlertPostmortem) Scheduled() bool {
	for _, c := range p.Causes {
		if c.Scheduled {
			return true
		}
	}
	return false
}

// Correlate builds one postmortem per firing transition in firings
// (other states are skipped). For each firing at time T it collects
// every causal event in [T - lookback, T], groups by (kind,
// scheduled), and ranks scheduled groups first, then larger groups,
// then kind name — a deterministic order. Events need not be sorted.
func Correlate(firings []AlertEvent, events []CausalEvent, lookback sim.Time) []AlertPostmortem {
	if lookback < 0 {
		lookback = 0
	}
	var out []AlertPostmortem
	for _, f := range firings {
		if f.State != AlertFiring {
			continue
		}
		start := f.At - lookback
		if start < 0 {
			start = 0
		}
		pm := AlertPostmortem{Alert: f, WindowStart: start, WindowEnd: f.At}
		type gkey struct {
			kind      string
			scheduled bool
		}
		groups := make(map[gkey]*Attribution)
		var order []gkey
		// Scan in time order so First/Example are the earliest event
		// regardless of input order.
		sorted := make([]CausalEvent, 0, len(events))
		for _, e := range events {
			if e.At >= start && e.At <= f.At {
				sorted = append(sorted, e)
			}
		}
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
		for _, e := range sorted {
			k := gkey{e.Kind, e.Scheduled}
			g := groups[k]
			if g == nil {
				ex := e.Subject
				if e.Detail != "" {
					ex += " " + e.Detail
				}
				g = &Attribution{Kind: e.Kind, Scheduled: e.Scheduled, First: e.At, Last: e.At, Example: ex}
				groups[k] = g
				order = append(order, k)
			}
			g.Count++
			if e.At > g.Last {
				g.Last = e.At
			}
		}
		for _, k := range order {
			pm.Causes = append(pm.Causes, *groups[k])
		}
		sort.SliceStable(pm.Causes, func(i, j int) bool {
			a, b := pm.Causes[i], pm.Causes[j]
			if a.Scheduled != b.Scheduled {
				return a.Scheduled
			}
			if a.Count != b.Count {
				return a.Count > b.Count
			}
			return a.Kind < b.Kind
		})
		out = append(out, pm)
	}
	return out
}

// ms renders a sim time as fixed-point milliseconds for the timeline.
func pmMillis(t sim.Time) string {
	return fmt.Sprintf("%.3fms", float64(t)/float64(sim.Millisecond))
}

// RenderTimeline renders postmortems as a human-readable report:
//
//	POSTMORTEM layer4-lb page firing @4.300ms (window 0.000ms..4.300ms, fast burn 212, slow burn 14.6)
//	  <- [scheduled] kill x3 (4.200ms..4.250ms) e.g. fpga-012
//	  <- failover x3 (4.250ms..4.300ms) e.g. fpga-012 reason=gossip-confirm
func RenderTimeline(pms []AlertPostmortem) []byte {
	var b bytes.Buffer
	for _, pm := range pms {
		fmt.Fprintf(&b, "POSTMORTEM %s %s firing @%s (window %s..%s, fast burn %s, slow burn %s)\n",
			pm.Alert.Service, pm.Alert.Severity, pmMillis(pm.Alert.At),
			pmMillis(pm.WindowStart), pmMillis(pm.WindowEnd),
			promFloat(pm.Alert.BurnFast), promFloat(pm.Alert.BurnSlow))
		if len(pm.Causes) == 0 {
			b.WriteString("  <- no correlated events: cause unknown\n")
			continue
		}
		for _, c := range pm.Causes {
			tag := ""
			if c.Scheduled {
				tag = "[scheduled] "
			}
			fmt.Fprintf(&b, "  <- %s%s x%d (%s..%s) e.g. %s\n",
				tag, c.Kind, c.Count, pmMillis(c.First), pmMillis(c.Last), c.Example)
		}
	}
	return b.Bytes()
}
