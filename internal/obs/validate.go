package obs

import (
	"encoding/json"
	"fmt"
)

// TraceStats summarizes a validated trace for CI output and tests.
type TraceStats struct {
	// Events counts non-metadata events; Metadata the "M" records.
	Events   int
	Metadata int
	// ByCat counts non-metadata events per category.
	ByCat map[string]int
}

// tracedEvent mirrors the subset of Chrome trace-event fields the
// validator checks.
type tracedEvent struct {
	Name string   `json:"name"`
	Cat  string   `json:"cat"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
}

// ValidateTrace checks that data is well-formed Chrome trace-event
// JSON: every event has a name and a known phase, non-metadata events
// carry ts/pid/tid, spans carry a non-negative dur, timestamps are
// monotonically non-decreasing in file order, and (when requireCats is
// non-empty) every required category has at least one event. It
// returns per-category counts for reporting.
func ValidateTrace(data []byte, requireCats []Cat) (*TraceStats, error) {
	var doc struct {
		TraceEvents []tracedEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return nil, fmt.Errorf("obs: trace has no events")
	}
	stats := &TraceStats{ByCat: make(map[string]int)}
	lastTs := -1.0
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return nil, fmt.Errorf("obs: event %d has no name", i)
		}
		switch e.Ph {
		case "M":
			stats.Metadata++
			continue
		case "X", "i", "I", "B", "E", "C":
		default:
			return nil, fmt.Errorf("obs: event %d (%s) has unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Ts == nil {
			return nil, fmt.Errorf("obs: event %d (%s) has no ts", i, e.Name)
		}
		if e.Pid == nil || e.Tid == nil {
			return nil, fmt.Errorf("obs: event %d (%s) has no pid/tid", i, e.Name)
		}
		if *e.Ts < lastTs {
			return nil, fmt.Errorf("obs: event %d (%s) ts %.6f runs backwards (previous %.6f)",
				i, e.Name, *e.Ts, lastTs)
		}
		lastTs = *e.Ts
		if e.Ph == "X" {
			if e.Dur == nil {
				return nil, fmt.Errorf("obs: span %d (%s) has no dur", i, e.Name)
			}
			if *e.Dur < 0 {
				return nil, fmt.Errorf("obs: span %d (%s) has negative dur %.6f", i, e.Name, *e.Dur)
			}
		}
		stats.Events++
		stats.ByCat[e.Cat]++
	}
	for _, cat := range requireCats {
		if stats.ByCat[string(cat)] == 0 {
			return nil, fmt.Errorf("obs: trace has no %q events (have %v)", cat, stats.ByCat)
		}
	}
	return stats, nil
}
