// Package metrics provides the measurement types shared by the
// benchmark harness: latency distributions, throughput helpers, and the
// labelled series/tables the figure regenerators emit.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"harmonia/internal/sim"
)

// Latencies collects latency samples and reports summary statistics.
type Latencies struct {
	samples  []sim.Time
	sorted   bool
	min, max sim.Time
}

// Add records one sample. Min and Max are tracked incrementally so
// querying them never forces a sort of the sample slice.
func (l *Latencies) Add(t sim.Time) {
	if len(l.samples) == 0 || t < l.min {
		l.min = t
	}
	if len(l.samples) == 0 || t > l.max {
		l.max = t
	}
	l.samples = append(l.samples, t)
	l.sorted = false
}

// Count reports the number of samples.
func (l *Latencies) Count() int { return len(l.samples) }

func (l *Latencies) sort() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Percentile reports the p-th percentile (0 < p <= 100) using
// nearest-rank; zero samples report zero.
func (l *Latencies) Percentile(p float64) sim.Time {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	rank := int(math.Ceil(p / 100 * float64(len(l.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(l.samples) {
		rank = len(l.samples)
	}
	return l.samples[rank-1]
}

// Mean reports the average latency.
func (l *Latencies) Mean() sim.Time {
	if len(l.samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range l.samples {
		sum += s
	}
	return sum / sim.Time(len(l.samples))
}

// Max reports the largest sample.
func (l *Latencies) Max() sim.Time {
	if len(l.samples) == 0 {
		return 0
	}
	return l.max
}

// Min reports the smallest sample.
func (l *Latencies) Min() sim.Time {
	if len(l.samples) == 0 {
		return 0
	}
	return l.min
}

// Gbps converts bytes moved over a duration into gigabits per second.
func Gbps(bytes int64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / elapsed.Nanoseconds()
}

// Rate converts an event count over a duration into events/second.
func Rate(events int64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(events) / elapsed.Seconds()
}

// Point is one (x, y) pair of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled line of a figure.
type Series struct {
	Label string
	// XLabel/YLabel describe axes (set on at least one series per
	// figure).
	XLabel, YLabel string
	Points         []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Y returns the y value at x; ok is false when absent.
func (s *Series) Y(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is a regenerated paper figure: an identifier and its series.
type Figure struct {
	ID     string // e.g. "fig10a"
	Title  string
	Series []*Series
}

// Find returns the series with the given label.
func (f *Figure) Find(label string) (*Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return nil, false
}

// String renders the figure as aligned text, one row per x value.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	// Collect x values in first-series order, then any extras.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	xl := f.Series[0].XLabel
	if xl == "" {
		xl = "x"
	}
	fmt.Fprintf(&b, "%-16s", xl)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%22s", s.Label)
	}
	fmt.Fprintln(&b)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-16.6g", x)
		for _, s := range f.Series {
			if y, ok := s.Y(x); ok {
				fmt.Fprintf(&b, "%22.4g", y)
			} else {
				fmt.Fprintf(&b, "%22s", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Table is a regenerated paper table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row; it must match the column count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("metrics: row has %d cells, table %s has %d columns",
			len(cells), t.ID, len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(&b)
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values: a header of the x
// label plus series labels, one row per x value.
func (f *Figure) CSV() string {
	var b strings.Builder
	if len(f.Series) == 0 {
		return ""
	}
	xl := f.Series[0].XLabel
	if xl == "" {
		xl = "x"
	}
	cells := []string{xl}
	for _, s := range f.Series {
		cells = append(cells, s.Label)
	}
	fmt.Fprintln(&b, strings.Join(cells, ","))
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			if y, ok := s.Y(x); ok {
				row = append(row, fmt.Sprintf("%g", y))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(&b, strings.Join(row, ","))
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(&b, strings.Join(row, ","))
	}
	return b.String()
}
