package metrics

import (
	"math/rand"
	"testing"

	"harmonia/internal/sim"
)

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := sim.Time(0); v < histSub; v++ {
		h.Add(v)
	}
	if h.Count() != histSub {
		t.Fatalf("count = %d, want %d", h.Count(), histSub)
	}
	// Values below histSub land in exact unit buckets: percentiles are
	// exact there.
	if got := h.Percentile(50); got != histSub/2-1 {
		t.Errorf("P50 = %v, want %v", got, histSub/2-1)
	}
	if h.Min() != 0 || h.Max() != histSub-1 {
		t.Errorf("min/max = %v/%v, want 0/%v", h.Min(), h.Max(), histSub-1)
	}
}

func TestHistogramPercentileWithinResolution(t *testing.T) {
	var h Histogram
	l := &Latencies{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100_000; i++ {
		// Latency-shaped samples: a µs-scale body with a heavy tail.
		v := sim.Time(500 + rng.Intn(5_000))
		if rng.Intn(100) == 0 {
			v *= 20
		}
		h.Add(v)
		l.Add(v)
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9} {
		exact := l.Percentile(p)
		got := h.Percentile(p)
		// Log-scale buckets with 16 sub-buckets per octave bound the
		// relative error at 1/16, and the reported value is the bucket
		// lower bound, so it never exceeds the exact percentile.
		if got > exact {
			t.Errorf("P%v = %v above exact %v", p, got, exact)
		}
		if float64(got) < float64(exact)*(1-1.0/histSub)-1 {
			t.Errorf("P%v = %v more than 1/%d below exact %v", p, got, histSub, exact)
		}
	}
	if h.Min() != l.Min() || h.Max() != l.Max() {
		t.Errorf("min/max = %v/%v, want exact %v/%v", h.Min(), h.Max(), l.Min(), l.Max())
	}
	if h.Mean() != l.Mean() {
		t.Errorf("mean = %v, want exact %v", h.Mean(), l.Mean())
	}
}

func TestHistogramMergeExact(t *testing.T) {
	var whole, a, b Histogram
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10_000; i++ {
		v := sim.Time(rng.Intn(1_000_000))
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	// Merge in either order: identical to one stream.
	var m Histogram
	m.Merge(&b)
	m.Merge(&a)
	if m != whole {
		t.Error("merged histogram differs from single-stream histogram")
	}
	m.Merge(nil) // no-op
	if m != whole {
		t.Error("nil merge mutated the histogram")
	}
}

func TestHistogramZeroAndReset(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram reports non-zero stats")
	}
	h.Add(-5) // clamped into bucket 0
	h.Add(1 << 40)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	h.Reset()
	if h.Count() != 0 || h.Percentile(99) != 0 {
		t.Error("reset histogram retains samples")
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and
	// bucket boundaries must be monotone.
	prev := sim.Time(-1)
	for b := 0; b < histBuckets; b++ {
		lo := histLower(b)
		if lo <= prev && b > 0 {
			t.Fatalf("bucket %d lower bound %v not above bucket %d's %v", b, lo, b-1, prev)
		}
		if lo >= 0 && histBucket(lo) != b {
			t.Fatalf("histBucket(histLower(%d)) = %d", b, histBucket(lo))
		}
		prev = lo
	}
	// The largest representable value stays in range.
	if got := histBucket(sim.Time(1<<62) + (1<<62 - 1)); got >= histBuckets {
		t.Fatalf("max value bucket %d out of range %d", got, histBuckets)
	}
}

func TestLatenciesMinMaxIncremental(t *testing.T) {
	l := &Latencies{}
	// Min/Max never sort: interleave queries with adds and check they
	// track incrementally.
	l.Add(50)
	if l.Min() != 50 || l.Max() != 50 {
		t.Errorf("min/max = %v/%v after one sample, want 50/50", l.Min(), l.Max())
	}
	l.Add(10)
	l.Add(90)
	if l.Min() != 10 || l.Max() != 90 {
		t.Errorf("min/max = %v/%v, want 10/90", l.Min(), l.Max())
	}
	if l.sorted {
		t.Error("Min/Max forced a sort of the sample slice")
	}
	if got := l.Percentile(50); got != 50 {
		t.Errorf("P50 = %v, want 50", got)
	}
}

func TestHistogramCumBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []sim.Time{3, 3, 40, 1000, 1000, 1000} {
		h.Add(v)
	}
	var uppers []sim.Time
	var cums []int64
	h.CumBuckets(func(upper sim.Time, cum int64) {
		uppers = append(uppers, upper)
		cums = append(cums, cum)
	})
	if len(cums) == 0 {
		t.Fatal("CumBuckets visited nothing")
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] <= cums[i-1] || uppers[i] <= uppers[i-1] {
			t.Fatalf("not strictly increasing: uppers=%v cums=%v", uppers, cums)
		}
	}
	if cums[len(cums)-1] != h.Count() {
		t.Errorf("last cumulative %d != count %d", cums[len(cums)-1], h.Count())
	}
	if last := uppers[len(uppers)-1]; last != h.Max() {
		t.Errorf("last upper %v clamps to max %v", last, h.Max())
	}
	// Every recorded value is covered by the bucket it fell into: the
	// first cumulative bucket with upper >= 3 holds both 3s.
	for i, u := range uppers {
		if u >= 3 {
			if cums[i] < 2 {
				t.Errorf("bucket upper %v holds %d, want >= 2", u, cums[i])
			}
			break
		}
		_ = i
	}
	// An empty histogram visits nothing.
	var empty Histogram
	empty.CumBuckets(func(sim.Time, int64) { t.Error("empty histogram visited a bucket") })
}
