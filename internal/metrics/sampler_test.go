package metrics_test

import (
	"testing"

	"harmonia/internal/metrics"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// drive runs the engine through n sampler windows of the given width.
func drive(t *testing.T, eng *sim.Engine, windows int, width sim.Time) {
	t.Helper()
	eng.RunUntil(width * sim.Time(windows))
}

func TestSamplerWindowedRates(t *testing.T) {
	eng := sim.NewEngine()
	counter := int64(0)
	s, err := metrics.NewSampler(eng, sim.Second, 3, func() int64 { return counter })
	if err != nil {
		t.Fatal(err)
	}
	// 10 events land in window 1, 30 more in window 2, none in window 3.
	eng.After(sim.Second/2, func() { counter += 10 })
	eng.After(sim.Second+sim.Second/2, func() { counter += 30 })
	drive(t, eng, 3, sim.Second)
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("samples = %d, want 3", len(got))
	}
	want := []float64{10, 30, 0}
	for i, w := range want {
		if got[i].Rate != w {
			t.Errorf("window %d rate = %v, want %v", i, got[i].Rate, w)
		}
	}
	if s.LastRate() != 0 {
		t.Errorf("LastRate = %v, want 0", s.LastRate())
	}
	if s.PeakRate() != 30 {
		t.Errorf("PeakRate = %v, want 30", s.PeakRate())
	}
}

func TestSamplerCounterReset(t *testing.T) {
	eng := sim.NewEngine()
	counter := int64(0)
	s, err := metrics.NewSampler(eng, sim.Second, 2, func() int64 { return counter })
	if err != nil {
		t.Fatal(err)
	}
	eng.After(sim.Second/2, func() { counter = 100 })
	// The source restarts between windows: the cumulative counter
	// drops from 100 to 7. A naive delta would report -93/s; the
	// sampler must instead treat the post-reset value as the window's
	// increment.
	eng.After(sim.Second+sim.Second/2, func() { counter = 7 })
	drive(t, eng, 2, sim.Second)
	got := s.Samples()
	if len(got) != 2 {
		t.Fatalf("samples = %d, want 2", len(got))
	}
	if got[0].Rate != 100 {
		t.Errorf("window 0 rate = %v, want 100", got[0].Rate)
	}
	if got[1].Rate != 7 {
		t.Errorf("window 1 rate after reset = %v, want 7", got[1].Rate)
	}
	if got[1].Rate < 0 {
		t.Errorf("negative rate leaked through a counter reset: %v", got[1].Rate)
	}
}

func TestSamplerRegisterRate(t *testing.T) {
	eng := sim.NewEngine()
	counter := int64(0)
	s, err := metrics.NewSampler(eng, sim.Second, 2, func() int64 { return counter })
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.RegisterRate(reg, "test_window_rate", "windowed event rate")
	if v, ok := reg.Value("test_window_rate"); !ok || v != 0 {
		t.Fatalf("pre-run rate = %v (ok=%v), want 0", v, ok)
	}
	eng.After(sim.Second/2, func() { counter = 42 })
	eng.RunUntil(sim.Second)
	if v, _ := reg.Value("test_window_rate"); v != 42 {
		t.Errorf("registered rate after window 1 = %v, want 42", v)
	}
	eng.RunUntil(2 * sim.Second)
	if v, _ := reg.Value("test_window_rate"); v != 0 {
		t.Errorf("registered rate after idle window = %v, want 0", v)
	}
}
