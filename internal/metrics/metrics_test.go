package metrics

import (
	"strings"
	"testing"

	"harmonia/internal/sim"
)

func TestLatencies(t *testing.T) {
	var l Latencies
	if l.Mean() != 0 || l.Percentile(99) != 0 || l.Max() != 0 || l.Min() != 0 {
		t.Error("empty latencies should report zero")
	}
	for i := 1; i <= 100; i++ {
		l.Add(sim.Time(i) * sim.Nanosecond)
	}
	if l.Count() != 100 {
		t.Errorf("Count = %d", l.Count())
	}
	if got := l.Percentile(50); got != 50*sim.Nanosecond {
		t.Errorf("P50 = %v", got)
	}
	if got := l.Percentile(99); got != 99*sim.Nanosecond {
		t.Errorf("P99 = %v", got)
	}
	if got := l.Mean(); got != sim.Time(50500)*sim.Picosecond*1000/1000 {
		// mean of 1..100 ns = 50.5ns
		if got != sim.Time(50500)*sim.Picosecond {
			t.Errorf("Mean = %v", got)
		}
	}
	if l.Max() != 100*sim.Nanosecond || l.Min() != sim.Nanosecond {
		t.Errorf("Max/Min = %v/%v", l.Max(), l.Min())
	}
	// Percentile clamps.
	if l.Percentile(0.0001) != sim.Nanosecond {
		t.Error("tiny percentile should clamp to first sample")
	}
	if l.Percentile(100) != 100*sim.Nanosecond {
		t.Error("P100 should be max")
	}
}

func TestGbpsAndRate(t *testing.T) {
	if got := Gbps(125, sim.Microsecond); got != 1 {
		t.Errorf("Gbps = %v, want 1", got)
	}
	if Gbps(100, 0) != 0 || Rate(5, 0) != 0 {
		t.Error("zero elapsed should report zero")
	}
	if got := Rate(1_000_000, sim.Second); got != 1e6 {
		t.Errorf("Rate = %v", got)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Label: "native", XLabel: "pkt", YLabel: "gbps"}
	s.Add(64, 10)
	s.Add(128, 20)
	if y, ok := s.Y(128); !ok || y != 20 {
		t.Errorf("Y(128) = %v, %v", y, ok)
	}
	if _, ok := s.Y(999); ok {
		t.Error("missing x should report !ok")
	}
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{ID: "fig10a", Title: "MAC wrapper"}
	a := &Series{Label: "native", XLabel: "pktB"}
	a.Add(64, 76.2)
	a.Add(1024, 98.1)
	b := &Series{Label: "wrapped"}
	b.Add(64, 76.2)
	f.Series = append(f.Series, a, b)
	out := f.String()
	for _, want := range []string{"fig10a", "native", "wrapped", "76.2", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	if s, ok := f.Find("wrapped"); !ok || s != b {
		t.Error("Find failed")
	}
	if _, ok := f.Find("zzz"); ok {
		t.Error("Find(zzz) should fail")
	}
	empty := &Figure{ID: "x", Title: "empty"}
	if !strings.Contains(empty.String(), "empty") {
		t.Error("empty figure should still render header")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "tab3", Title: "Device support", Columns: []string{"Device", "Vitis", "Harmonia"}}
	if err := tab.AddRow("Intel FPGAs", "no", "yes"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("short"); err == nil {
		t.Error("mismatched row accepted")
	}
	out := tab.String()
	for _, want := range []string{"tab3", "Device", "Intel FPGAs", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestSamplerWindowedRates(t *testing.T) {
	eng := sim.NewEngine()
	// A producer incrementing 10 units per microsecond, via events.
	var counter int64
	var produce func()
	produced := 0
	produce = func() {
		counter += 10
		produced++
		if produced < 100 {
			eng.After(sim.Microsecond, produce)
		}
	}
	eng.After(sim.Microsecond, produce)

	s, err := NewSampler(eng, 10*sim.Microsecond, 9, func() int64 { return counter })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	samples := s.Samples()
	if len(samples) != 9 {
		t.Fatalf("samples = %d, want 9", len(samples))
	}
	// Steady state: 10 units/us = 1e7 units/s per window.
	for i, w := range samples[1:] {
		if w.Rate < 0.9e7 || w.Rate > 1.1e7 {
			t.Errorf("window %d rate = %g, want ~1e7", i+1, w.Rate)
		}
	}
	if s.PeakRate() < s.MeanRate() {
		t.Error("peak below mean")
	}
}

func TestSamplerValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewSampler(nil, sim.Microsecond, 1, func() int64 { return 0 }); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewSampler(eng, 0, 1, func() int64 { return 0 }); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewSampler(eng, sim.Microsecond, 0, func() int64 { return 0 }); err == nil {
		t.Error("zero windows accepted")
	}
	if _, err := NewSampler(eng, sim.Microsecond, 1, nil); err == nil {
		t.Error("nil reader accepted")
	}
}

func TestSamplerIdleWindowsReadZero(t *testing.T) {
	eng := sim.NewEngine()
	var counter int64
	s, _ := NewSampler(eng, sim.Microsecond, 3, func() int64 { return counter })
	eng.Run()
	for _, w := range s.Samples() {
		if w.Rate != 0 {
			t.Errorf("idle window rate = %g", w.Rate)
		}
	}
	if s.MeanRate() != 0 || s.PeakRate() != 0 {
		t.Error("idle sampler rates nonzero")
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{ID: "x", Title: "t"}
	s := &Series{Label: "a", XLabel: "pkt"}
	s.Add(64, 1.5)
	s.Add(128, 2.5)
	f.Series = append(f.Series, s)
	csv := f.CSV()
	for _, want := range []string{"pkt,a", "64,1.5", "128,2.5"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
	if (&Figure{}).CSV() != "" {
		t.Error("empty figure CSV should be empty")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "x", Columns: []string{"A", "B"}}
	tab.AddRow("1", "2")
	csv := tab.CSV()
	if !strings.Contains(csv, "A,B") || !strings.Contains(csv, "1,2") {
		t.Errorf("table CSV wrong:\n%s", csv)
	}
}
