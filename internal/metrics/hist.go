package metrics

import (
	"math/bits"

	"harmonia/internal/sim"
)

// Histogram is a fixed-size log-scale latency histogram: O(1) add,
// O(1) merge per bucket, bounded memory regardless of sample count.
// It is the streaming counterpart of Latencies for high-volume
// collectors (the fleet router records millions of per-packet samples
// per phase); Latencies remains the exact-sample type for the small-N
// figure regenerators.
//
// Values bucket by octave (floor log2) with histSub linear sub-buckets
// per octave, so the relative quantization error of a reported
// percentile is bounded by 1/histSub (~6%). Min, Max, Count and Sum
// (hence Mean) are tracked exactly.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    sim.Time
	min    sim.Time
	max    sim.Time
}

const (
	// histSubBits sub-bucket bits per octave: 16 linear sub-buckets.
	histSubBits = 4
	histSub     = 1 << histSubBits
	// Values below histSub land in exact unit buckets 0..histSub-1;
	// octaves 4..62 (full positive int64 range) each take histSub
	// buckets above them.
	histBuckets = histSub * (64 - histSubBits)
)

// histBucket maps a sample to its bucket index.
func histBucket(v sim.Time) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	octave := bits.Len64(uint64(v)) - 1
	sub := int(v>>(uint(octave)-histSubBits)) & (histSub - 1)
	return histSub*(octave-histSubBits+1) + sub
}

// histLower is the smallest value mapping to a bucket — the value a
// percentile query reports for it.
func histLower(bucket int) sim.Time {
	if bucket < histSub {
		return sim.Time(bucket)
	}
	octave := bucket/histSub + histSubBits - 1
	sub := bucket % histSub
	return sim.Time(histSub+sub) << (uint(octave) - histSubBits)
}

// Add records one sample.
func (h *Histogram) Add(v sim.Time) {
	h.counts[histBucket(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.n }

// Merge folds another histogram into this one. Merging is exact: the
// result is identical to having added both sample streams to one
// histogram, in any order.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Reset clears the histogram for a new measurement window.
func (h *Histogram) Reset() { *h = Histogram{} }

// Percentile reports the p-th percentile (0 < p <= 100) by
// nearest-rank over the buckets; the reported value is the lower bound
// of the selected bucket, clamped into [Min, Max]. Zero samples report
// zero.
func (h *Histogram) Percentile(p float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(h.n))
	if float64(rank)*100 < p*float64(h.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := histLower(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// CumBuckets calls f for each non-empty bucket in ascending order
// with the bucket's inclusive upper bound and the cumulative sample
// count through it — the shape a Prometheus histogram exposition
// needs. The final upper bound is clamped to the exact Max so the
// last bucket never overstates the distribution's reach.
func (h *Histogram) CumBuckets(f func(upper sim.Time, cum int64)) {
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		upper := h.max
		if i+1 < histBuckets {
			if u := histLower(i+1) - 1; u < upper {
				upper = u
			}
		}
		f(upper, cum)
	}
}

// Sum reports the exact total of the recorded samples.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Mean reports the exact average of the recorded samples.
func (h *Histogram) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Time(h.n)
}

// Min reports the exact smallest sample.
func (h *Histogram) Min() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max reports the exact largest sample.
func (h *Histogram) Max() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.max
}
