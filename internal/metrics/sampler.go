package metrics

import (
	"fmt"

	"harmonia/internal/sim"
)

// Sample is one windowed measurement.
type Sample struct {
	At sim.Time
	// Rate is the per-second rate of the observed counter over the
	// window ending at At.
	Rate float64
}

// Sampler periodically reads a cumulative counter on a simulation
// engine and records windowed rates — the real-time bps/pps statistics
// the RBB monitoring logic exposes (§3.3.1).
type Sampler struct {
	interval sim.Time
	read     func() int64
	last     int64
	samples  []Sample
}

// NewSampler schedules periodic sampling of read() on eng every
// interval, for the given number of windows.
func NewSampler(eng *sim.Engine, interval sim.Time, windows int, read func() int64) (*Sampler, error) {
	if eng == nil || read == nil || interval <= 0 || windows <= 0 {
		return nil, fmt.Errorf("metrics: invalid sampler config")
	}
	s := &Sampler{interval: interval, read: read}
	var tick func()
	remaining := windows
	tick = func() {
		cur := s.read()
		delta := cur - s.last
		s.last = cur
		s.samples = append(s.samples, Sample{
			At:   eng.Now(),
			Rate: float64(delta) / s.interval.Seconds(),
		})
		remaining--
		if remaining > 0 {
			eng.After(s.interval, tick)
		}
	}
	eng.After(interval, tick)
	return s, nil
}

// Samples returns the recorded windows.
func (s *Sampler) Samples() []Sample { return s.samples }

// PeakRate returns the highest windowed rate.
func (s *Sampler) PeakRate() float64 {
	peak := 0.0
	for _, w := range s.samples {
		if w.Rate > peak {
			peak = w.Rate
		}
	}
	return peak
}

// MeanRate returns the average windowed rate.
func (s *Sampler) MeanRate() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range s.samples {
		sum += w.Rate
	}
	return sum / float64(len(s.samples))
}
