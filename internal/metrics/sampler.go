package metrics

import (
	"fmt"

	"harmonia/internal/sim"
)

// Sample is one windowed measurement.
type Sample struct {
	At sim.Time
	// Rate is the per-second rate of the observed counter over the
	// window ending at At.
	Rate float64
}

// Sampler periodically reads a cumulative counter on a simulation
// engine and records windowed rates — the real-time bps/pps statistics
// the RBB monitoring logic exposes (§3.3.1).
type Sampler struct {
	interval sim.Time
	read     func() int64
	last     int64
	samples  []Sample
}

// NewSampler schedules periodic sampling of read() on eng every
// interval, for the given number of windows.
func NewSampler(eng *sim.Engine, interval sim.Time, windows int, read func() int64) (*Sampler, error) {
	if eng == nil || read == nil || interval <= 0 || windows <= 0 {
		return nil, fmt.Errorf("metrics: invalid sampler config")
	}
	s := &Sampler{interval: interval, read: read}
	var tick func()
	remaining := windows
	tick = func() {
		cur := s.read()
		delta := cur - s.last
		if delta < 0 {
			// Counter reset (source restarted or rolled its window):
			// treat the new absolute value as this window's increment
			// rather than reporting a negative rate.
			delta = cur
		}
		s.last = cur
		s.samples = append(s.samples, Sample{
			At:   eng.Now(),
			Rate: float64(delta) / s.interval.Seconds(),
		})
		remaining--
		if remaining > 0 {
			eng.After(s.interval, tick)
		}
	}
	eng.After(interval, tick)
	return s, nil
}

// Samples returns the recorded windows.
func (s *Sampler) Samples() []Sample { return s.samples }

// LastRate returns the most recent windowed rate (zero before the
// first window completes).
func (s *Sampler) LastRate() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1].Rate
}

// GaugeRegistry is the registration surface a Sampler needs to expose
// its windowed rate as a live gauge. harmonia/internal/obs.Registry
// satisfies it; declaring the interface here keeps metrics free of an
// obs dependency (obs already imports nothing above sim).
type GaugeRegistry interface {
	Gauge(name, help string, read func() float64)
}

// RegisterRate registers this sampler's most recent windowed rate as a
// gauge, so registry snapshots taken mid-run report the live rate the
// monitoring logic is currently observing.
func (s *Sampler) RegisterRate(reg GaugeRegistry, name, help string) {
	reg.Gauge(name, help, s.LastRate)
}

// PeakRate returns the highest windowed rate.
func (s *Sampler) PeakRate() float64 {
	peak := 0.0
	for _, w := range s.samples {
		if w.Rate > peak {
			peak = w.Rate
		}
	}
	return peak
}

// MeanRate returns the average windowed rate.
func (s *Sampler) MeanRate() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range s.samples {
		sum += w.Rate
	}
	return sum / float64(len(s.samples))
}
