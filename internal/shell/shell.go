// Package shell implements Harmonia's unified shell abstraction and the
// hierarchical shell tailoring of §3.3.2. A shell assembles RBBs plus
// framework-owned base logic (board management and the unified control
// kernel) for a device; tailoring then removes non-essential RBBs at the
// module level, selects instances matching the role's data-transfer
// demands, and at the property level exposes only the role-oriented
// configuration items.
package shell

import (
	"fmt"
	"sort"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
)

// Component is one shell constituent: an RBB or a base block.
type Component struct {
	Name string
	// RBB is non-nil for building-block components.
	RBB *rbb.Desc
	// Res and Code describe base components (management, UCK); for RBB
	// components they are derived from the RBB itself.
	Res    hdl.Resources
	Code   hdl.LoC
	Params []hdl.Param
	// FmaxMHz is the base component's timing closure (RBB components
	// derive theirs from the RBB).
	FmaxMHz float64
}

// Resources reports the component footprint.
func (c Component) Resources() hdl.Resources {
	if c.RBB != nil {
		return c.RBB.TotalRes()
	}
	return c.Res
}

// LoC reports the component development volume.
func (c Component) LoC() hdl.LoC {
	if c.RBB != nil {
		return c.RBB.Module().Code
	}
	return c.Code
}

// AllParams reports the component's full configuration inventory.
func (c Component) AllParams() []hdl.Param {
	if c.RBB != nil {
		return c.RBB.Module().Params
	}
	return c.Params
}

// Fmax reports the component's achievable clock in MHz (0 = no
// constraint).
func (c Component) Fmax() float64 {
	if c.RBB != nil {
		return c.RBB.Module().FmaxMHz
	}
	return c.FmaxMHz
}

// managementComponent is the always-present board-management block:
// clocking, ICAP/flash for dynamic configuration, sensors and health
// monitoring — the FPGA-OS housekeeping of §2.1.
func managementComponent() Component {
	return Component{
		Name:    "management",
		FmaxMHz: 350,
		Res:     hdl.Resources{LUT: 52_000, REG: 64_000, BRAM: 48, URAM: 4},
		Code:    hdl.LoC{Handcraft: 9_500, Generated: 6_000},
		Params: []hdl.Param{
			{Name: "WATCHDOG_TIMEOUT", Default: "1s", Scope: hdl.ShellOriented},
			{Name: "SENSOR_POLL_MS", Default: "100", Scope: hdl.ShellOriented},
			{Name: "ICAP_ENABLE", Default: "1", Scope: hdl.ShellOriented},
			{Name: "FLASH_LAYOUT", Default: "dual", Scope: hdl.ShellOriented},
		},
	}
}

// uckComponent is the unified control kernel soft core (§3.3.3); its
// footprint stays under the paper's 0.67% bound on every device.
func uckComponent() Component {
	return Component{
		Name:    "uck",
		FmaxMHz: 320,
		Res:     hdl.Resources{LUT: 4_200, REG: 5_600, BRAM: 8},
		Code:    hdl.LoC{Handcraft: 3_200, Generated: 800},
		Params: []hdl.Param{
			{Name: "CMD_BUFFER_DEPTH", Default: "64", Scope: hdl.RoleOriented},
			{Name: "CMD_TIMEOUT_US", Default: "100", Scope: hdl.ShellOriented},
		},
	}
}

// Shell is an assembled (and possibly tailored) shell for a device.
type Shell struct {
	Device     *platform.Device
	Components []Component
	// Tailored reports whether hierarchical tailoring has been applied.
	Tailored bool
	// exposed is the property-level-tailored parameter set visible to
	// the role; nil until tailoring.
	exposed []hdl.Param
}

// macSpeedFor picks the MAC instance matching a cage rate.
func macSpeedFor(gbps float64) (ip.Speed, error) {
	switch {
	case gbps <= 25:
		return ip.Speed25G, nil
	case gbps <= 100:
		return ip.Speed100G, nil
	case gbps <= 400:
		return ip.Speed400G, nil
	default:
		return 0, fmt.Errorf("shell: no MAC instance for %v Gbps", gbps)
	}
}

// BuildUnified assembles the full one-size-fits-all shell for a device:
// every peripheral gets its RBB at the matching instance, plus the base
// components. This is the starting point tailoring trims.
func BuildUnified(dev *platform.Device) (*Shell, error) {
	if dev == nil {
		return nil, fmt.Errorf("shell: nil device")
	}
	s := &Shell{Device: dev}
	s.Components = append(s.Components, managementComponent(), uckComponent())

	for _, p := range dev.PeripheralsOf(platform.Network) {
		speed, err := macSpeedFor(p.GbpsPerUnit)
		if err != nil {
			return nil, err
		}
		d, err := rbb.NewNetworkDesc(dev.Vendor, speed)
		if err != nil {
			return nil, err
		}
		s.Components = append(s.Components, Component{
			Name: fmt.Sprintf("network-%s", p.Model), RBB: d,
		})
	}
	for _, p := range dev.PeripheralsOf(platform.Memory) {
		var kind ip.MemKind
		switch p.Model {
		case "HBM":
			kind = ip.HBMMem
		case "DDR4", "DDR3":
			kind = ip.DDR4Mem
		default:
			continue
		}
		d, err := rbb.NewMemoryDesc(dev.Vendor, kind)
		if err != nil {
			return nil, err
		}
		s.Components = append(s.Components, Component{
			Name: fmt.Sprintf("memory-%s", p.Model), RBB: d,
		})
	}
	if pcie, ok := dev.PCIe(); ok {
		d, err := rbb.NewHostDesc(dev.Vendor, pcie.PCIeGen, pcie.PCIeLanes, ip.SGDMA)
		if err != nil {
			return nil, err
		}
		s.Components = append(s.Components, Component{Name: "host-pcie", RBB: d})
	}
	return s, nil
}

// Resources reports the shell's total footprint.
func (s *Shell) Resources() hdl.Resources {
	var r hdl.Resources
	for _, c := range s.Components {
		r = r.Add(c.Resources())
	}
	return r
}

// Utilization reports per-resource-type occupancy fractions on the
// shell's device — the Fig. 11 y-axis.
func (s *Shell) Utilization() map[string]float64 {
	used := s.Resources()
	capacity := s.Device.Chip.Capacity
	out := make(map[string]float64, len(hdl.ResourceKinds))
	for _, kind := range hdl.ResourceKinds {
		u, _ := used.Get(kind)
		c, _ := capacity.Get(kind)
		if c > 0 {
			out[kind] = float64(u) / float64(c)
		}
	}
	return out
}

// MinFmaxMHz reports the tightest timing closure across components —
// the fastest clock a role may request from this shell.
func (s *Shell) MinFmaxMHz() float64 {
	min := 0.0
	for _, c := range s.Components {
		f := c.Fmax()
		if f <= 0 {
			continue
		}
		if min == 0 || f < min {
			min = f
		}
	}
	return min
}

// Code reports the shell's total development volume.
func (s *Shell) Code() hdl.LoC {
	var l hdl.LoC
	for _, c := range s.Components {
		l = l.Add(c.LoC())
	}
	return l
}

// NativeParamCount reports the configuration items the shell's native
// modules expose before property-level tailoring.
func (s *Shell) NativeParamCount() int {
	n := 0
	for _, c := range s.Components {
		n += len(c.AllParams())
	}
	return n
}

// ExposedParams returns the role-visible configuration set. Before
// tailoring this is the full native inventory; after tailoring only the
// role-oriented subset remains.
func (s *Shell) ExposedParams() []hdl.Param {
	if s.Tailored {
		return s.exposed
	}
	var all []hdl.Param
	for _, c := range s.Components {
		all = append(all, c.AllParams()...)
	}
	return all
}

// Component returns the named component.
func (s *Shell) Component(name string) (Component, bool) {
	for _, c := range s.Components {
		if c.Name == name {
			return c, true
		}
	}
	return Component{}, false
}

// ComponentNames lists components in sorted order.
func (s *Shell) ComponentNames() []string {
	names := make([]string, 0, len(s.Components))
	for _, c := range s.Components {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return names
}

// HasRBB reports whether a component of the given RBB kind remains.
func (s *Shell) HasRBB(kind rbb.Kind) bool {
	for _, c := range s.Components {
		if c.RBB != nil && c.RBB.Kind == kind {
			return true
		}
	}
	return false
}
