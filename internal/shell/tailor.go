package shell

import (
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
)

// NetworkDemand states a role's networking requirement.
type NetworkDemand struct {
	// Gbps is the required line rate; the tailorer selects the smallest
	// MAC instance that satisfies it.
	Gbps float64
	// Filter and Director request the Ex-functions (kept for resource
	// accounting; disabling them is a property, not a module removal).
	Filter, Director bool
}

// MemoryDemand states one required memory kind.
type MemoryDemand struct {
	Kind ip.MemKind
}

// HostDemand states a role's host-communication requirement.
type HostDemand struct {
	// Bulk selects the leaner BDMA engine instead of scatter-gather.
	Bulk bool
	// Queues is the number of DMA queues the role uses.
	Queues int
}

// Demands collects a role's shell requirements for tailoring.
type Demands struct {
	Network *NetworkDemand
	Memory  []MemoryDemand
	Host    *HostDemand
}

// Tailor applies hierarchical tailoring to the unified shell and
// returns a role-specific instance:
//
//   - Module level: RBBs the role does not demand are removed; for the
//     remaining RBBs, instances are selected to fulfil the role's
//     data-transfer performance (MAC speed, BDMA vs SGDMA).
//   - Property level: vendor-instance properties are split into the
//     shell-oriented part (absorbed) and the role-oriented part (the
//     only configuration the role sees).
func (s *Shell) Tailor(d Demands) (*Shell, error) {
	if s.Tailored {
		return nil, fmt.Errorf("shell: already tailored")
	}
	dev := s.Device
	out := &Shell{Device: dev, Tailored: true}
	// Base components always remain.
	out.Components = append(out.Components, managementComponent(), uckComponent())

	if d.Network != nil {
		cage, ok := dev.Peripheral(platform.Network, "")
		if !ok {
			return nil, fmt.Errorf("shell: role demands networking but %s has no cage", dev.Name)
		}
		if d.Network.Gbps > cage.GbpsPerUnit {
			return nil, fmt.Errorf("shell: role demands %v Gbps but %s cages provide %v",
				d.Network.Gbps, dev.Name, cage.GbpsPerUnit)
		}
		speed, err := macSpeedFor(d.Network.Gbps)
		if err != nil {
			return nil, err
		}
		desc, err := rbb.NewNetworkDesc(dev.Vendor, speed)
		if err != nil {
			return nil, err
		}
		out.Components = append(out.Components, Component{Name: "network", RBB: desc})
	}
	for _, md := range d.Memory {
		var model string
		switch md.Kind {
		case ip.HBMMem:
			model = "HBM"
		case ip.DDR4Mem:
			model = "DDR4"
		default:
			return nil, fmt.Errorf("shell: unknown memory demand %q", md.Kind)
		}
		if !dev.HasPeripheral(model) {
			return nil, fmt.Errorf("shell: role demands %s but %s has none", model, dev.Name)
		}
		desc, err := rbb.NewMemoryDesc(dev.Vendor, md.Kind)
		if err != nil {
			return nil, err
		}
		out.Components = append(out.Components, Component{Name: "memory-" + model, RBB: desc})
	}
	if d.Host != nil {
		pcie, ok := dev.PCIe()
		if !ok {
			return nil, fmt.Errorf("shell: role demands host access but %s has no PCIe", dev.Name)
		}
		variant := ip.SGDMA
		if d.Host.Bulk {
			variant = ip.BDMA
		}
		desc, err := rbb.NewHostDesc(dev.Vendor, pcie.PCIeGen, pcie.PCIeLanes, variant)
		if err != nil {
			return nil, err
		}
		if d.Host.Queues > 0 {
			spec, err := ip.SpecForDMA(pcie.PCIeGen, pcie.PCIeLanes)
			if err != nil {
				return nil, err
			}
			if d.Host.Queues > spec.QueueCount {
				return nil, fmt.Errorf("shell: role demands %d queues, engine provides %d",
					d.Host.Queues, spec.QueueCount)
			}
		}
		out.Components = append(out.Components, Component{Name: "host-pcie", RBB: desc})
	}

	// Property-level tailoring: expose only role-oriented parameters.
	for _, c := range out.Components {
		for _, p := range c.AllParams() {
			if p.Scope == hdl.RoleOriented {
				out.exposed = append(out.exposed, p)
			}
		}
	}
	return out, nil
}

// TailoringReport compares a unified shell and a tailored instance.
type TailoringReport struct {
	UnifiedRes  hdl.Resources
	TailoredRes hdl.Resources
	// Savings is the relative resource reduction per resource type.
	Savings map[string]float64
	// NativeConfigs and RoleConfigs count configuration items before
	// and after property-level tailoring; Ratio is their quotient.
	NativeConfigs int
	RoleConfigs   int
	ConfigRatio   float64
}

// Report computes the tailoring benefit of a tailored shell versus a
// unified shell on the same device.
func Report(unified, tailored *Shell) (TailoringReport, error) {
	if unified == nil || tailored == nil {
		return TailoringReport{}, fmt.Errorf("shell: nil shell")
	}
	if unified.Device.Name != tailored.Device.Name {
		return TailoringReport{}, fmt.Errorf("shell: device mismatch %s vs %s",
			unified.Device.Name, tailored.Device.Name)
	}
	ur, tr := unified.Resources(), tailored.Resources()
	savings := make(map[string]float64, len(hdl.ResourceKinds))
	for _, kind := range hdl.ResourceKinds {
		u, _ := ur.Get(kind)
		tv, _ := tr.Get(kind)
		if u > 0 {
			savings[kind] = float64(u-tv) / float64(u)
		}
	}
	rep := TailoringReport{
		UnifiedRes:    ur,
		TailoredRes:   tr,
		Savings:       savings,
		NativeConfigs: tailored.NativeParamCount(),
		RoleConfigs:   len(tailored.ExposedParams()),
	}
	if rep.RoleConfigs > 0 {
		rep.ConfigRatio = float64(rep.NativeConfigs) / float64(rep.RoleConfigs)
	}
	return rep, nil
}
