package shell

import (
	"testing"
	"testing/quick"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
)

func TestBuildUnifiedDeviceA(t *testing.T) {
	s, err := BuildUnified(platform.DeviceA())
	if err != nil {
		t.Fatal(err)
	}
	// device-a: 2 network cages share a model -> network RBB per cage
	// model entry, HBM + DDR memory RBBs, host RBB, mgmt, uck.
	if !s.HasRBB(rbb.NetworkKind) || !s.HasRBB(rbb.MemoryKind) || !s.HasRBB(rbb.HostKind) {
		t.Errorf("unified shell missing RBB kinds: %v", s.ComponentNames())
	}
	if _, ok := s.Component("management"); !ok {
		t.Error("management component missing")
	}
	if _, ok := s.Component("uck"); !ok {
		t.Error("uck component missing")
	}
	if _, ok := s.Component("memory-HBM"); !ok {
		t.Errorf("HBM RBB missing: %v", s.ComponentNames())
	}
	if _, ok := s.Component("memory-DDR4"); !ok {
		t.Errorf("DDR RBB missing: %v", s.ComponentNames())
	}
	if s.Tailored {
		t.Error("unified shell reports tailored")
	}
	if _, err := BuildUnified(nil); err == nil {
		t.Error("nil device should fail")
	}
}

func TestBuildUnifiedDeviceC(t *testing.T) {
	// device-c has no external memory: no Memory RBB.
	s, err := BuildUnified(platform.DeviceC())
	if err != nil {
		t.Fatal(err)
	}
	if s.HasRBB(rbb.MemoryKind) {
		t.Error("device-c shell should have no memory RBB")
	}
	if !s.HasRBB(rbb.NetworkKind) || !s.HasRBB(rbb.HostKind) {
		t.Error("device-c shell missing network/host RBBs")
	}
}

func TestUnifiedShellUtilizationReasonable(t *testing.T) {
	// A production shell occupies a meaningful but minority share of the
	// chip (Fig. 11 shows up to ~30%).
	for _, dev := range []*platform.Device{platform.DeviceA(), platform.DeviceB(), platform.DeviceD()} {
		s, err := BuildUnified(dev)
		if err != nil {
			t.Fatal(err)
		}
		u := s.Utilization()
		if u["LUT"] < 0.05 || u["LUT"] > 0.45 {
			t.Errorf("%s unified shell LUT occupancy = %.1f%%, want 5-45%%", dev.Name, u["LUT"]*100)
		}
	}
}

func TestTailorRemovesModules(t *testing.T) {
	dev := platform.DeviceA()
	unified, err := BuildUnified(dev)
	if err != nil {
		t.Fatal(err)
	}
	// A bump-in-the-wire role: network + bulk host, no external memory.
	tailored, err := unified.Tailor(Demands{
		Network: &NetworkDemand{Gbps: 100, Filter: true, Director: true},
		Host:    &HostDemand{Bulk: true, Queues: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tailored.HasRBB(rbb.MemoryKind) {
		t.Error("memory RBB not removed")
	}
	if !tailored.Tailored {
		t.Error("tailored flag not set")
	}
	ur, tr := unified.Resources(), tailored.Resources()
	if tr.LUT >= ur.LUT {
		t.Errorf("tailored LUT %d not below unified %d", tr.LUT, ur.LUT)
	}
	// BDMA instance selected: host component smaller than unified's SGDMA.
	uh, _ := unified.Component("host-pcie")
	th, _ := tailored.Component("host-pcie")
	if th.Resources().LUT >= uh.Resources().LUT {
		t.Error("bulk demand did not select the leaner BDMA instance")
	}
}

func TestTailorSelectsMACInstance(t *testing.T) {
	unified, _ := BuildUnified(platform.DeviceA())
	tailored, err := unified.Tailor(Demands{Network: &NetworkDemand{Gbps: 25}})
	if err != nil {
		t.Fatal(err)
	}
	c, ok := tailored.Component("network")
	if !ok {
		t.Fatal("network component missing")
	}
	// 25G demand picks the 25G MAC, much smaller than the 100G one.
	u, _ := unified.Component("network-QSFP28")
	if c.Resources().LUT >= u.Resources().LUT {
		t.Error("25G demand did not select a smaller MAC instance")
	}
}

func TestTailorRejectsImpossibleDemands(t *testing.T) {
	unifiedC, _ := BuildUnified(platform.DeviceC())
	// device-c has no memory.
	if _, err := unifiedC.Tailor(Demands{Memory: []MemoryDemand{{Kind: ip.HBMMem}}}); err == nil {
		t.Error("HBM demand on device-c should fail")
	}
	// 400G demand on 100G cages.
	unifiedA, _ := BuildUnified(platform.DeviceA())
	if _, err := unifiedA.Tailor(Demands{Network: &NetworkDemand{Gbps: 400}}); err == nil {
		t.Error("400G demand on device-a should fail")
	}
	// Too many queues.
	if _, err := unifiedA.Tailor(Demands{Host: &HostDemand{Queues: 4096}}); err == nil {
		t.Error("4096-queue demand should fail")
	}
	// Double tailoring.
	tailored, err := unifiedA.Tailor(Demands{Host: &HostDemand{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tailored.Tailor(Demands{}); err == nil {
		t.Error("tailoring a tailored shell should fail")
	}
}

func TestPropertyLevelTailoring(t *testing.T) {
	unified, _ := BuildUnified(platform.DeviceA())
	tailored, err := unified.Tailor(Demands{
		Network: &NetworkDemand{Gbps: 100},
		Memory:  []MemoryDemand{{Kind: ip.HBMMem}},
		Host:    &HostDemand{Queues: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	exposed := tailored.ExposedParams()
	native := tailored.NativeParamCount()
	if len(exposed) == 0 {
		t.Fatal("no role-oriented params exposed")
	}
	if native <= len(exposed)*5 {
		t.Errorf("native %d vs exposed %d: property tailoring should cut ~10x", native, len(exposed))
	}
	for _, p := range exposed {
		if p.Scope != hdl.RoleOriented {
			t.Errorf("shell-oriented param %q leaked to the role", p.Name)
		}
	}
}

func TestReportSavingsInPaperBand(t *testing.T) {
	// Fig. 11: tailored shells save 3-25.1% of shell resources.
	dev := platform.DeviceA()
	unified, _ := BuildUnified(dev)
	demandSets := map[string]Demands{
		"sec-gateway": {
			Network: &NetworkDemand{Gbps: 100, Filter: true},
			Memory:  []MemoryDemand{{Kind: ip.DDR4Mem}},
			Host:    &HostDemand{Bulk: true, Queues: 16},
		},
		"layer4-lb": {
			Network: &NetworkDemand{Gbps: 100, Director: true},
			Memory:  []MemoryDemand{{Kind: ip.HBMMem}},
			Host:    &HostDemand{Bulk: true, Queues: 64},
		},
		"retrieval": {
			Memory: []MemoryDemand{{Kind: ip.HBMMem}, {Kind: ip.DDR4Mem}},
			Host:   &HostDemand{Queues: 256},
		},
	}
	for name, d := range demandSets {
		tailored, err := unified.Tailor(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := Report(unified, tailored)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Savings["LUT"] < 0.02 || rep.Savings["LUT"] > 0.35 {
			t.Errorf("%s LUT saving = %.1f%%, want within the 3-25.1%% band (tolerance 2-35)",
				name, rep.Savings["LUT"]*100)
		}
		// Fig. 12: config reduction 8.8-19.8x.
		if rep.ConfigRatio < 6 || rep.ConfigRatio > 25 {
			t.Errorf("%s config ratio = %.1fx, want ~8.8-19.8x", name, rep.ConfigRatio)
		}
	}
}

func TestReportValidation(t *testing.T) {
	a, _ := BuildUnified(platform.DeviceA())
	b, _ := BuildUnified(platform.DeviceB())
	if _, err := Report(nil, a); err == nil {
		t.Error("nil shell should fail")
	}
	if _, err := Report(a, b); err == nil {
		t.Error("cross-device report should fail")
	}
}

func TestUCKOverheadUnderBound(t *testing.T) {
	// Fig. 16: the unified control kernel consumes < 0.67% of resources
	// on every evaluated device.
	uck := uckComponent()
	for _, dev := range []*platform.Device{
		platform.DeviceA(), platform.DeviceB(), platform.DeviceC(), platform.DeviceD(),
	} {
		frac := uck.Res.Utilization(dev.Chip.Capacity)
		if frac > 0.0067 {
			t.Errorf("UCK on %s uses %.2f%%, want < 0.67%%", dev.Name, frac*100)
		}
	}
}

func TestShellCodeAggregation(t *testing.T) {
	s, _ := BuildUnified(platform.DeviceB())
	code := s.Code()
	if code.Handcraft == 0 || code.Generated == 0 {
		t.Errorf("shell code = %+v", code)
	}
	// Shells are tens of thousands of lines (§2.3).
	if code.Total() < 20_000 {
		t.Errorf("shell total code = %d, want tens of thousands", code.Total())
	}
}

func TestMACSpeedSelection(t *testing.T) {
	// The tailorer picks the smallest sufficient MAC instance; demands
	// beyond 400G are unsatisfiable.
	devC := platform.DeviceC() // DSFP cages (100G)
	unified, err := BuildUnified(devC)
	if err != nil {
		t.Fatal(err)
	}
	tailored, err := unified.Tailor(Demands{Network: &NetworkDemand{Gbps: 10}})
	if err != nil {
		t.Fatal(err)
	}
	names := tailored.ComponentNames()
	found := false
	for _, n := range names {
		if n == "network" {
			found = true
		}
	}
	if !found {
		t.Fatalf("network component missing: %v", names)
	}
	if _, err := unified.Tailor(Demands{Network: &NetworkDemand{Gbps: 999}}); err == nil {
		t.Error("999 Gbps demand accepted")
	}
}

func TestExposedParamsBeforeTailoring(t *testing.T) {
	s, err := BuildUnified(platform.DeviceB())
	if err != nil {
		t.Fatal(err)
	}
	// Untailored shells expose the full native inventory.
	if got := len(s.ExposedParams()); got != s.NativeParamCount() {
		t.Errorf("untailored exposed %d, want native %d", got, s.NativeParamCount())
	}
	names := s.ComponentNames()
	if len(names) != len(s.Components) {
		t.Errorf("ComponentNames = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Error("ComponentNames not sorted")
		}
	}
}

func TestMinFmax(t *testing.T) {
	s, err := BuildUnified(platform.DeviceA())
	if err != nil {
		t.Fatal(err)
	}
	min := s.MinFmaxMHz()
	// The UCK soft core (320 MHz) is the tightest base component; RBB
	// composites close at <= 400.
	if min <= 0 || min > 320 {
		t.Errorf("MinFmaxMHz = %v, want (0, 320]", min)
	}
	// Every component reports a closure.
	for _, c := range s.Components {
		if c.Fmax() <= 0 {
			t.Errorf("component %s has no Fmax", c.Name)
		}
	}
}

// Property: for any demand subset, tailoring never grows resources,
// never leaks shell-oriented parameters, and always keeps the base
// components.
func TestTailoringProperty(t *testing.T) {
	unified, err := BuildUnified(platform.DeviceA())
	if err != nil {
		t.Fatal(err)
	}
	ur := unified.Resources()
	f := func(mask uint8) bool {
		d := Demands{}
		if mask&1 != 0 {
			gbps := 25.0
			if mask&2 != 0 {
				gbps = 100
			}
			d.Network = &NetworkDemand{Gbps: gbps}
		}
		if mask&4 != 0 {
			d.Memory = append(d.Memory, MemoryDemand{Kind: ip.HBMMem})
		}
		if mask&8 != 0 {
			d.Memory = append(d.Memory, MemoryDemand{Kind: ip.DDR4Mem})
		}
		if mask&16 != 0 {
			d.Host = &HostDemand{Bulk: mask&32 != 0, Queues: int(mask%8)*64 + 1}
		}
		tailored, err := unified.Tailor(d)
		if err != nil {
			return false
		}
		tr := tailored.Resources()
		if tr.LUT > ur.LUT || tr.REG > ur.REG || tr.BRAM > ur.BRAM || tr.URAM > ur.URAM {
			return false
		}
		for _, p := range tailored.ExposedParams() {
			if p.Scope != hdl.RoleOriented {
				return false
			}
		}
		if _, ok := tailored.Component("management"); !ok {
			return false
		}
		if _, ok := tailored.Component("uck"); !ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}
