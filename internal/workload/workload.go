// Package workload provides deterministic workload generators for the
// benchmark harness: packet streams with controllable flow counts,
// memory access patterns (sequential/fixed/random × read/write),
// matrix-multiplication kernels and vector-database traces — the
// workloads §5.1 benchmarks with.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"harmonia/internal/net"
	"harmonia/internal/sim"
)

// PacketSizes is the paper's packet-size sweep (Figs. 10a, 17a-c).
var PacketSizes = []int{64, 128, 256, 512, 1024}

// TCPSizes is the TCP benchmark's sweep (Fig. 18d).
var TCPSizes = []int{64, 512, 1500}

// ReadSizes is the PCIe read-size sweep (Fig. 10b).
var ReadSizes = []int{1024, 2048, 4096, 8192, 16384}

// PacketConfig shapes a generated packet stream.
type PacketConfig struct {
	// Count of packets.
	Count int
	// Size is the on-wire frame size in bytes.
	Size int
	// Flows spreads traffic over this many 5-tuples.
	Flows int
	// DstMAC is the destination address (the device under test).
	DstMAC net.HWAddr
	// VIPs optionally spreads destination IPs over a VIP set.
	VIPs []net.IPAddr
	// Seed makes the stream reproducible.
	Seed int64
}

// Packets generates a deterministic stream.
func Packets(cfg PacketConfig) ([]*net.Packet, error) {
	if cfg.Count <= 0 || cfg.Size < net.MinFrame {
		return nil, fmt.Errorf("workload: invalid packet config %+v", cfg)
	}
	if cfg.Flows <= 0 {
		cfg.Flows = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pkts := make([]*net.Packet, cfg.Count)
	for i := range pkts {
		flow := rng.Intn(cfg.Flows)
		dstIP := net.IPv4(10, 1, byte(flow>>8), byte(flow))
		if len(cfg.VIPs) > 0 {
			dstIP = cfg.VIPs[flow%len(cfg.VIPs)]
		}
		pkts[i] = &net.Packet{
			DstMAC:    cfg.DstMAC,
			SrcMAC:    net.HWAddr{0x02, 0xcc, byte(flow >> 16), byte(flow >> 8), byte(flow), 0x01},
			SrcIP:     net.IPv4(172, 16, byte(flow>>8), byte(flow)),
			DstIP:     dstIP,
			Proto:     net.ProtoTCP,
			SrcPort:   uint16(1024 + flow%50000),
			DstPort:   443,
			Seq:       uint32(i),
			WireBytes: cfg.Size,
		}
	}
	return pkts, nil
}

// AccessMode selects the memory access pattern (Figs. 10c, 18c).
type AccessMode string

// Access patterns.
const (
	Sequential AccessMode = "sequential"
	Fixed      AccessMode = "fixed"
	Random     AccessMode = "random"
)

// AccessGen yields a deterministic address trace.
type AccessGen struct {
	mode   AccessMode
	stride int64
	limit  int64
	rng    *rand.Rand
	next   int64
}

// NewAccessGen returns a generator of addresses in [0, limit) with the
// given element stride.
func NewAccessGen(mode AccessMode, stride, limit int64, seed int64) (*AccessGen, error) {
	if stride <= 0 || limit <= stride {
		return nil, fmt.Errorf("workload: invalid access range stride=%d limit=%d", stride, limit)
	}
	switch mode {
	case Sequential, Fixed, Random:
	default:
		return nil, fmt.Errorf("workload: unknown access mode %q", mode)
	}
	return &AccessGen{
		mode:   mode,
		stride: stride,
		limit:  limit - limit%stride,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Next returns the next address.
func (g *AccessGen) Next() int64 {
	switch g.mode {
	case Fixed:
		return 0
	case Random:
		return g.rng.Int63n(g.limit/g.stride) * g.stride
	default: // Sequential
		addr := g.next
		g.next += g.stride
		if g.next >= g.limit {
			g.next = 0
		}
		return addr
	}
}

// Matrix is a dense square float32 matrix in row-major order.
type Matrix struct {
	N    int
	Data []float32
}

// NewMatrix returns a deterministic pseudo-random N×N matrix.
func NewMatrix(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := &Matrix{N: n, Data: make([]float32, n*n)}
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.N+j] }

// Mul computes m × o (the reference result the FPGA kernels check
// against).
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.N != o.N {
		return nil, fmt.Errorf("workload: size mismatch %d vs %d", m.N, o.N)
	}
	n := m.N
	out := &Matrix{N: n, Data: make([]float32, n*n)}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := m.Data[i*n+k]
			if a == 0 {
				continue
			}
			row := o.Data[k*n:]
			dst := out.Data[i*n:]
			for j := 0; j < n; j++ {
				dst[j] += a * row[j]
			}
		}
	}
	return out, nil
}

// MatMulWork is the Fig. 18b workload: 64×64 single-precision matrices
// across 1024 iterations.
type MatMulWork struct {
	N          int
	Iterations int
}

// DefaultMatMul returns the paper's configuration.
func DefaultMatMul() MatMulWork { return MatMulWork{N: 64, Iterations: 1024} }

// FLOPs reports the floating-point operations per full run.
func (w MatMulWork) FLOPs() int64 {
	return int64(w.Iterations) * 2 * int64(w.N) * int64(w.N) * int64(w.N)
}

// Vector is a 32-bit element vector record for the database benchmark.
type Vector struct {
	ID    uint32
	Elems []uint32
}

// Bytes serializes the vector's elements.
func (v Vector) Bytes() []byte {
	out := make([]byte, 4*len(v.Elems))
	for i, e := range v.Elems {
		binary.LittleEndian.PutUint32(out[i*4:], e)
	}
	return out
}

// VectorBytes is the record size used by the database benchmark: one
// 32-bit element per vector slot times the configured width.
func VectorBytes(width int) int { return 4 * width }

// Vectors generates a deterministic vector set.
func Vectors(count, width int, seed int64) []Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Vector, count)
	for i := range out {
		elems := make([]uint32, width)
		for j := range elems {
			elems[j] = rng.Uint32()
		}
		out[i] = Vector{ID: uint32(i), Elems: elems}
	}
	return out
}

// Embedding is a float32 embedding row for the retrieval benchmark.
type Embedding struct {
	ID  uint32
	Vec []float32
}

// Embeddings generates a deterministic corpus of dim-dimensional rows.
func Embeddings(count, dim int, seed int64) []Embedding {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Embedding, count)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32()*2 - 1
		}
		out[i] = Embedding{ID: uint32(i), Vec: v}
	}
	return out
}

// Dot computes the similarity score between two embeddings.
func Dot(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Arrivals returns n cumulative packet arrival offsets with the given
// mean inter-arrival gap. Jitter in [0, 1) spreads each gap uniformly
// over [1-jitter, 1+jitter] of the mean, modelling the burstiness of
// offered load without changing its average rate. The explicit seed
// makes fleet scenarios and failover drills reproducible: the same
// seed yields the identical arrival process.
func Arrivals(n int, gap sim.Time, jitter float64, seed int64) ([]sim.Time, error) {
	if n <= 0 || gap <= 0 {
		return nil, fmt.Errorf("workload: invalid arrival config n=%d gap=%v", n, gap)
	}
	if jitter < 0 || jitter >= 1 {
		return nil, fmt.Errorf("workload: jitter %v outside [0, 1)", jitter)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]sim.Time, n)
	var t sim.Time
	for i := range out {
		g := gap
		if jitter > 0 {
			g = sim.Time(float64(gap) * (1 - jitter + 2*jitter*rng.Float64()))
			if g < 1 {
				g = 1
			}
		}
		t += g
		out[i] = t
	}
	return out, nil
}

// ZipfFlows draws per-packet flow indices from a Zipf distribution over
// the flow space — production traffic mixes are heavy-hitter dominated,
// which exercises connection-table hit rates realistically.
func ZipfFlows(count, flows int, skew float64, seed int64) ([]int, error) {
	if count <= 0 || flows <= 0 {
		return nil, fmt.Errorf("workload: invalid zipf config count=%d flows=%d", count, flows)
	}
	if skew <= 1 {
		return nil, fmt.Errorf("workload: zipf skew %v must exceed 1", skew)
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, skew, 1, uint64(flows-1))
	out := make([]int, count)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out, nil
}
