package workload

import (
	"math"
	"testing"

	"harmonia/internal/net"
	"harmonia/internal/sim"
)

func TestPacketsDeterministic(t *testing.T) {
	cfg := PacketConfig{Count: 100, Size: 256, Flows: 8, Seed: 7}
	a, err := Packets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Packets(cfg)
	for i := range a {
		if a[i].Flow() != b[i].Flow() || a[i].WireBytes != b[i].WireBytes || a[i].Seq != b[i].Seq {
			t.Fatalf("packet %d differs between identical seeds", i)
		}
	}
	if len(a) != 100 || a[0].WireBytes != 256 {
		t.Errorf("stream shape wrong")
	}
}

func TestPacketsFlowSpread(t *testing.T) {
	pkts, _ := Packets(PacketConfig{Count: 1000, Size: 128, Flows: 16, Seed: 1})
	flows := map[net.FlowKey]bool{}
	for _, p := range pkts {
		flows[p.Flow()] = true
	}
	if len(flows) < 12 || len(flows) > 16 {
		t.Errorf("distinct flows = %d, want about 16", len(flows))
	}
}

func TestPacketsVIPs(t *testing.T) {
	vips := []net.IPAddr{net.IPv4(20, 0, 0, 1), net.IPv4(20, 0, 0, 2)}
	pkts, _ := Packets(PacketConfig{Count: 50, Size: 128, Flows: 10, VIPs: vips, Seed: 2})
	for _, p := range pkts {
		if p.DstIP != vips[0] && p.DstIP != vips[1] {
			t.Fatalf("packet to unexpected IP %v", p.DstIP)
		}
	}
}

func TestPacketsValidation(t *testing.T) {
	if _, err := Packets(PacketConfig{Count: 0, Size: 128}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Packets(PacketConfig{Count: 1, Size: 32}); err == nil {
		t.Error("sub-minimum frame accepted")
	}
}

func TestAccessGenModes(t *testing.T) {
	seq, err := NewAccessGen(Sequential, 64, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := seq.Next(), seq.Next(); a != 0 || b != 64 {
		t.Errorf("sequential = %d, %d", a, b)
	}
	// Wraps at limit.
	for i := 0; i < 20; i++ {
		if a := seq.Next(); a >= 1024 {
			t.Fatalf("address %d beyond limit", a)
		}
	}
	fixed, _ := NewAccessGen(Fixed, 64, 1024, 1)
	if fixed.Next() != 0 || fixed.Next() != 0 {
		t.Error("fixed mode should repeat address 0")
	}
	rnd, _ := NewAccessGen(Random, 64, 1<<20, 3)
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		a := rnd.Next()
		if a%64 != 0 || a < 0 || a >= 1<<20 {
			t.Fatalf("random address %d invalid", a)
		}
		seen[a] = true
	}
	if len(seen) < 50 {
		t.Error("random addresses not spread")
	}
	if _, err := NewAccessGen("weird", 64, 1024, 1); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := NewAccessGen(Sequential, 0, 1024, 1); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestMatrixMulCorrectness(t *testing.T) {
	// 2x2 hand check.
	a := &Matrix{N: 2, Data: []float32{1, 2, 3, 4}}
	b := &Matrix{N: 2, Data: []float32{5, 6, 7, 8}}
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
	if _, err := a.Mul(&Matrix{N: 3, Data: make([]float32, 9)}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestMatrixIdentity(t *testing.T) {
	n := 16
	a := NewMatrix(n, 5)
	id := &Matrix{N: n, Data: make([]float32, n*n)}
	for i := 0; i < n; i++ {
		id.Data[i*n+i] = 1
	}
	c, _ := a.Mul(id)
	for i := range c.Data {
		if math.Abs(float64(c.Data[i]-a.Data[i])) > 1e-6 {
			t.Fatalf("A*I != A at %d", i)
		}
	}
	if a.At(3, 4) != a.Data[3*n+4] {
		t.Error("At indexing wrong")
	}
}

func TestMatMulWork(t *testing.T) {
	w := DefaultMatMul()
	if w.N != 64 || w.Iterations != 1024 {
		t.Errorf("default = %+v", w)
	}
	// 2*N^3 per iteration.
	if w.FLOPs() != int64(1024)*2*64*64*64 {
		t.Errorf("FLOPs = %d", w.FLOPs())
	}
}

func TestVectors(t *testing.T) {
	vs := Vectors(10, 8, 3)
	if len(vs) != 10 || len(vs[0].Elems) != 8 {
		t.Fatalf("vector shape wrong")
	}
	if vs[3].ID != 3 {
		t.Error("IDs not sequential")
	}
	b := vs[0].Bytes()
	if len(b) != 32 || VectorBytes(8) != 32 {
		t.Errorf("Bytes len = %d", len(b))
	}
	vs2 := Vectors(10, 8, 3)
	if vs2[5].Elems[2] != vs[5].Elems[2] {
		t.Error("not deterministic")
	}
}

func TestEmbeddingsAndDot(t *testing.T) {
	es := Embeddings(5, 16, 9)
	if len(es) != 5 || len(es[0].Vec) != 16 {
		t.Fatal("embedding shape wrong")
	}
	if Dot([]float32{1, 2, 3}, []float32{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	// Self-similarity is positive.
	if Dot(es[0].Vec, es[0].Vec) <= 0 {
		t.Error("self dot should be positive")
	}
}

func TestZipfFlowsHeavyHitters(t *testing.T) {
	flows, err := ZipfFlows(10_000, 1000, 1.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, f := range flows {
		if f < 0 || f >= 1000 {
			t.Fatalf("flow %d out of range", f)
		}
		counts[f]++
	}
	// Flow 0 must dominate: heavy-hitter shape.
	if counts[0] < len(flows)/4 {
		t.Errorf("top flow has %d of %d packets, want heavy-hitter dominance", counts[0], len(flows))
	}
	if len(counts) < 50 {
		t.Errorf("only %d distinct flows, want a long tail", len(counts))
	}
	// Deterministic.
	again, _ := ZipfFlows(10_000, 1000, 1.3, 7)
	for i := range flows {
		if flows[i] != again[i] {
			t.Fatal("zipf stream not deterministic")
		}
	}
	if _, err := ZipfFlows(0, 10, 1.3, 1); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := ZipfFlows(10, 10, 0.5, 1); err == nil {
		t.Error("skew <= 1 accepted")
	}
}

func TestArrivalsSeededReproducible(t *testing.T) {
	a, err := Arrivals(5_000, 200*sim.Nanosecond, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Strictly increasing offsets.
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("arrival %d (%v) not after %d (%v)", i, a[i], i-1, a[i-1])
		}
	}
	// Jitter preserves the mean rate within a few percent.
	mean := float64(a[len(a)-1]) / float64(len(a))
	want := float64(200 * sim.Nanosecond)
	if mean < 0.95*want || mean > 1.05*want {
		t.Errorf("mean gap %.1f, want ~%.0f", mean, want)
	}
	// The explicit seed makes the process reproducible...
	b, _ := Arrivals(5_000, 200*sim.Nanosecond, 0.3, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different arrivals")
		}
	}
	// ...and a different seed perturbs it.
	c, _ := Arrivals(5_000, 200*sim.Nanosecond, 0.3, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical arrivals")
	}
	// Zero jitter degenerates to a fixed gap.
	d, err := Arrivals(10, 100*sim.Nanosecond, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, at := range d {
		if at != sim.Time(i+1)*100*sim.Nanosecond {
			t.Fatalf("zero-jitter arrival %d = %v", i, at)
		}
	}
	if _, err := Arrivals(0, 100, 0.1, 1); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Arrivals(10, 0, 0.1, 1); err == nil {
		t.Error("zero gap accepted")
	}
	if _, err := Arrivals(10, 100, 1.0, 1); err == nil {
		t.Error("jitter 1.0 accepted")
	}
}
