package pcie

import (
	"testing"

	"harmonia/internal/sim"
)

func TestNewLinkValidation(t *testing.T) {
	if _, err := NewLink("l", 6, 16); err == nil {
		t.Error("gen6 should fail")
	}
	if _, err := NewLink("l", 4, 4); err == nil {
		t.Error("x4 should fail")
	}
	l, err := NewLink("l", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if l.Gen() != 4 || l.Lanes() != 16 {
		t.Errorf("Gen/Lanes = %d/%d", l.Gen(), l.Lanes())
	}
	if l.Gbps() != 15.75*16 {
		t.Errorf("Gbps = %v", l.Gbps())
	}
}

func TestLinkGenerationBandwidthOrdering(t *testing.T) {
	g3, _ := NewLink("g3", 3, 16)
	g4, _ := NewLink("g4", 4, 16)
	g5, _ := NewLink("g5", 5, 16)
	if !(g3.Gbps() < g4.Gbps() && g4.Gbps() < g5.Gbps()) {
		t.Error("bandwidth should increase with generation")
	}
}

func TestTransferIncludesLatency(t *testing.T) {
	l, _ := NewLink("l", 4, 16)
	done := l.Transfer(0, 64)
	if done <= l.Latency() {
		t.Errorf("done = %v, should exceed completion latency %v", done, l.Latency())
	}
	if l.TLPs() != 1 || l.Bytes() != 64 {
		t.Errorf("TLPs=%d Bytes=%d", l.TLPs(), l.Bytes())
	}
}

func TestTransferSerializes(t *testing.T) {
	l, _ := NewLink("l", 3, 8)
	d1 := l.Transfer(0, 4096)
	d2 := l.Transfer(0, 4096)
	if d2 <= d1 {
		t.Error("concurrent transfers did not serialize on the link")
	}
}

func TestLargeTransfersApproachLineRate(t *testing.T) {
	l, _ := NewLink("l", 4, 16)
	const n, size = 1000, 16384
	var last sim.Time
	for i := 0; i < n; i++ {
		last = l.Transfer(0, size)
	}
	gbps := float64(n*size*8) / (last - l.Latency()).Nanoseconds()
	if gbps < l.Gbps()*0.85 {
		t.Errorf("sustained %0.1f Gbps, want close to %0.1f", gbps, l.Gbps())
	}
}

func TestEffectiveGbpsSmallReadsPenalized(t *testing.T) {
	small := EffectiveGbps(252, 64)
	large := EffectiveGbps(252, 16384)
	if small >= large {
		t.Error("small payloads should see lower goodput")
	}
	if ratio := small / large; ratio > 0.8 {
		t.Errorf("64B/16K goodput ratio = %v, want well below 0.8", ratio)
	}
}

func newTestEngine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	l, err := NewLink("l", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, DefaultEngineConfig()); err == nil {
		t.Error("nil link should fail")
	}
	l, _ := NewLink("l", 4, 16)
	if _, err := NewEngine(l, EngineConfig{Queues: 0}); err == nil {
		t.Error("zero queues should fail")
	}
}

func TestEnginePostAndDrain(t *testing.T) {
	e := newTestEngine(t, DefaultEngineConfig())
	for q := 0; q < 8; q++ {
		for i := 0; i < 4; i++ {
			if err := e.Post(0, q, DeviceToHost, 1024); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e.ActiveQueues() != 8 {
		t.Errorf("ActiveQueues = %d, want 8", e.ActiveQueues())
	}
	end := e.Drain(0)
	if end <= 0 {
		t.Error("drain took no time")
	}
	if e.Completed() != 32 {
		t.Errorf("Completed = %d, want 32", e.Completed())
	}
	if e.ActiveQueues() != 0 {
		t.Errorf("ActiveQueues after drain = %d", e.ActiveQueues())
	}
	st, err := e.QueueStats(0)
	if err != nil || st.Completed != 4 || st.Bytes != 4096 {
		t.Errorf("QueueStats(0) = %+v, %v", st, err)
	}
}

func TestEnginePostValidation(t *testing.T) {
	e := newTestEngine(t, DefaultEngineConfig())
	if err := e.Post(0, -1, DeviceToHost, 64); err == nil {
		t.Error("negative queue should fail")
	}
	if err := e.Post(0, 1<<20, DeviceToHost, 64); err == nil {
		t.Error("out-of-range queue should fail")
	}
	if err := e.Post(0, 0, DeviceToHost, 0); err == nil {
		t.Error("zero-size transfer should fail")
	}
	if _, err := e.QueueStats(-1); err == nil {
		t.Error("QueueStats(-1) should fail")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	e := newTestEngine(t, DefaultEngineConfig())
	// Two queues with work: completions must alternate.
	for i := 0; i < 4; i++ {
		e.Post(0, 1, DeviceToHost, 512)
		e.Post(0, 2, DeviceToHost, 512)
	}
	var order []int64
	for {
		_, ok := e.Step(0)
		if !ok {
			break
		}
		s1, _ := e.QueueStats(1)
		s2, _ := e.QueueStats(2)
		order = append(order, s1.Completed-s2.Completed)
	}
	for i, d := range order {
		if d < -1 || d > 1 {
			t.Fatalf("step %d: queue imbalance %d, want round-robin", i, d)
		}
	}
}

func TestActiveListSchedulingCheaperThanFullScan(t *testing.T) {
	// Ablation: with 1024 queues and one active, active-list scheduling
	// must be far cheaper than scanning all slots.
	mkCfg := func(mode SchedulerMode) EngineConfig {
		cfg := DefaultEngineConfig()
		cfg.Mode = mode
		return cfg
	}
	active := newTestEngine(t, mkCfg(ActiveList))
	scan := newTestEngine(t, mkCfg(FullScan))
	for i := 0; i < 100; i++ {
		active.Post(0, 777, DeviceToHost, 64)
		scan.Post(0, 777, DeviceToHost, 64)
	}
	active.Drain(0)
	scan.Drain(0)
	if active.SchedulingTime()*10 > scan.SchedulingTime() {
		t.Errorf("active-list sched %v vs full-scan %v: want >=10x gap",
			active.SchedulingTime(), scan.SchedulingTime())
	}
}

func TestControlQueueIsolation(t *testing.T) {
	// With the dedicated control queue, a command dispatches ahead of a
	// deep data backlog.
	cfg := DefaultEngineConfig()
	e := newTestEngine(t, cfg)
	for i := 0; i < 1000; i++ {
		e.Post(0, 3, DeviceToHost, 4096)
	}
	e.PostControl(0, 64)
	done, ok := e.Step(0) // first dispatch must be the control packet
	if !ok {
		t.Fatal("no work dispatched")
	}
	if e.ctrl.stats.Completed != 1 {
		t.Error("control transfer did not dispatch first")
	}
	if done > 2*sim.Microsecond {
		t.Errorf("control completion %v too slow", done)
	}

	// Without isolation, the command lands behind the backlog.
	cfg.ControlQueue = false
	e2 := newTestEngine(t, cfg)
	for i := 0; i < 1000; i++ {
		e2.Post(0, 0, DeviceToHost, 4096)
	}
	e2.PostControl(0, 64)
	var last sim.Time
	for {
		d, ok := e2.Step(0)
		if !ok {
			break
		}
		last = d
	}
	if last < 10*sim.Microsecond {
		t.Errorf("non-isolated control path finished suspiciously fast: %v", last)
	}
}

func TestDirectionString(t *testing.T) {
	if HostToDevice.String() != "h2c" || DeviceToHost.String() != "c2h" {
		t.Error("Direction.String mismatch")
	}
}
