package pcie

import (
	"fmt"

	"harmonia/internal/sim"
)

// Direction of a DMA transfer.
type Direction int

// Transfer directions.
const (
	HostToDevice Direction = iota
	DeviceToHost
)

// String names the direction.
func (d Direction) String() string {
	if d == HostToDevice {
		return "h2c"
	}
	return "c2h"
}

// Transfer is one queued DMA descriptor.
type Transfer struct {
	Queue   int
	Dir     Direction
	Bytes   int
	Posted  sim.Time
	Control bool
	Meta    any
}

// QueueStats aggregates per-queue activity — the per-queue monitoring
// the Host RBB exposes (queue depth, transmitted packets, speed).
type QueueStats struct {
	Posted    int64
	Completed int64
	Bytes     int64
	MaxDepth  int
}

type queue struct {
	pending []Transfer
	active  bool
	stats   QueueStats
}

// SchedulerMode selects how the engine finds work.
type SchedulerMode int

// Scheduler modes.
const (
	// ActiveList scans only queues marked active (Harmonia's design):
	// scheduling cost is independent of the total queue count.
	ActiveList SchedulerMode = iota
	// FullScan scans every queue slot per decision (the baseline the
	// ablation compares against): cost grows with queue count.
	FullScan
)

// EngineConfig configures a DMA engine.
type EngineConfig struct {
	// Queues is the data queue count (1024 in the Host RBB).
	Queues int
	// Mode selects the scheduling strategy.
	Mode SchedulerMode
	// SchedCycle is the cost of examining one queue slot during
	// scheduling.
	SchedCycle sim.Time
	// ControlQueue reserves a dedicated queue for command traffic that
	// bypasses data scheduling entirely (§3.3.3's performance
	// isolation).
	ControlQueue bool
}

// DefaultEngineConfig returns the Host RBB's production configuration.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		Queues:       1024,
		Mode:         ActiveList,
		SchedCycle:   4 * sim.Nanosecond,
		ControlQueue: true,
	}
}

// Engine is a multi-queue DMA engine over a PCIe link. Descriptors post
// to per-queue rings; a scheduler picks the next active queue
// round-robin and serializes its transfer on the link.
type Engine struct {
	cfg    EngineConfig
	link   *Link
	queues []queue
	// activeRing holds indices of queues with pending work, in
	// round-robin order.
	activeRing []int
	ringPos    int
	ctrl       queue
	schedBusy  sim.Time
	schedCost  sim.Time // accumulated scheduling time (for ablation)
	completed  int64
}

// NewEngine returns a DMA engine with the given configuration over link.
func NewEngine(link *Link, cfg EngineConfig) (*Engine, error) {
	if link == nil {
		return nil, fmt.Errorf("pcie: engine requires a link")
	}
	if cfg.Queues <= 0 {
		return nil, fmt.Errorf("pcie: queue count %d must be positive", cfg.Queues)
	}
	if cfg.SchedCycle <= 0 {
		cfg.SchedCycle = 4 * sim.Nanosecond
	}
	return &Engine{cfg: cfg, link: link, queues: make([]queue, cfg.Queues)}, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// Link returns the underlying link.
func (e *Engine) Link() *Link { return e.link }

// QueueStats returns statistics for queue id.
func (e *Engine) QueueStats(id int) (QueueStats, error) {
	if id < 0 || id >= len(e.queues) {
		return QueueStats{}, fmt.Errorf("pcie: queue %d out of range [0,%d)", id, len(e.queues))
	}
	return e.queues[id].stats, nil
}

// ActiveQueues reports how many queues currently hold pending work.
func (e *Engine) ActiveQueues() int { return len(e.activeRing) }

// SchedulingTime reports the cumulative time spent scanning for work.
func (e *Engine) SchedulingTime() sim.Time { return e.schedCost }

// Completed reports total completed transfers (data + control).
func (e *Engine) Completed() int64 { return e.completed }

// Post enqueues a transfer on queue id at time now. The transfer is
// dispatched by Run.
func (e *Engine) Post(now sim.Time, id int, dir Direction, bytes int) error {
	if id < 0 || id >= len(e.queues) {
		return fmt.Errorf("pcie: queue %d out of range [0,%d)", id, len(e.queues))
	}
	if bytes <= 0 {
		return fmt.Errorf("pcie: transfer size %d must be positive", bytes)
	}
	q := &e.queues[id]
	q.pending = append(q.pending, Transfer{Queue: id, Dir: dir, Bytes: bytes, Posted: now})
	q.stats.Posted++
	if d := len(q.pending); d > q.stats.MaxDepth {
		q.stats.MaxDepth = d
	}
	if !q.active {
		q.active = true
		e.activeRing = append(e.activeRing, id)
	}
	return nil
}

// PostControl enqueues a command-path transfer. With ControlQueue
// enabled it bypasses data scheduling; otherwise it contends on queue 0.
func (e *Engine) PostControl(now sim.Time, bytes int) error {
	if !e.cfg.ControlQueue {
		return e.Post(now, 0, HostToDevice, bytes)
	}
	e.ctrl.pending = append(e.ctrl.pending, Transfer{Dir: HostToDevice, Bytes: bytes, Posted: now, Control: true})
	e.ctrl.stats.Posted++
	return nil
}

// schedule finds the next queue with work, charging scan cost per the
// configured mode, and returns its index (or -1).
func (e *Engine) schedule(now sim.Time) (qIdx int, ready sim.Time) {
	ready = now
	if e.schedBusy > ready {
		ready = e.schedBusy
	}
	switch e.cfg.Mode {
	case FullScan:
		// Hardware scans queue slots sequentially each decision.
		scanned := 0
		for i := 0; i < len(e.queues); i++ {
			idx := (e.ringPos + i) % len(e.queues)
			scanned++
			if len(e.queues[idx].pending) > 0 {
				cost := sim.Time(scanned) * e.cfg.SchedCycle
				e.schedCost += cost
				ready += cost
				e.schedBusy = ready
				e.ringPos = (idx + 1) % len(e.queues)
				return idx, ready
			}
		}
		cost := sim.Time(scanned) * e.cfg.SchedCycle
		e.schedCost += cost
		e.schedBusy = ready + cost
		return -1, ready
	default: // ActiveList
		if len(e.activeRing) == 0 {
			return -1, ready
		}
		cost := e.cfg.SchedCycle
		e.schedCost += cost
		ready += cost
		e.schedBusy = ready
		if e.ringPos >= len(e.activeRing) {
			e.ringPos = 0
		}
		idx := e.activeRing[e.ringPos]
		return idx, ready
	}
}

// dispatchControl drains one control transfer, if any, ahead of data.
func (e *Engine) dispatchControl(now sim.Time) (sim.Time, bool) {
	if len(e.ctrl.pending) == 0 {
		return 0, false
	}
	tr := e.ctrl.pending[0]
	e.ctrl.pending = e.ctrl.pending[1:]
	done := e.link.Transfer(now, tr.Bytes)
	e.ctrl.stats.Completed++
	e.ctrl.stats.Bytes += int64(tr.Bytes)
	e.completed++
	return done, true
}

// Step dispatches the next transfer (control first, then scheduled
// data) and returns its completion time. ok is false when idle.
func (e *Engine) Step(now sim.Time) (done sim.Time, ok bool) {
	if e.cfg.ControlQueue {
		if d, dispatched := e.dispatchControl(now); dispatched {
			return d, true
		}
	}
	idx, ready := e.schedule(now)
	if idx < 0 {
		return 0, false
	}
	q := &e.queues[idx]
	tr := q.pending[0]
	q.pending = q.pending[1:]
	done = e.link.Transfer(ready, tr.Bytes)
	q.stats.Completed++
	q.stats.Bytes += int64(tr.Bytes)
	e.completed++
	if len(q.pending) == 0 {
		q.active = false
		// Remove from the ring, preserving round-robin order.
		for i, id := range e.activeRing {
			if id == idx {
				e.activeRing = append(e.activeRing[:i], e.activeRing[i+1:]...)
				if e.ringPos > i {
					e.ringPos--
				}
				break
			}
		}
	} else {
		e.ringPos++
	}
	if e.ringPos >= len(e.activeRing) {
		e.ringPos = 0
	}
	return done, true
}

// Drain dispatches until no work remains, starting at now, and returns
// the final completion time. Transfers pipeline: the link and scheduler
// each serialize on their own availability, so draining N transfers
// costs max(scheduling, serialization) plus one completion latency, not
// their sum.
func (e *Engine) Drain(now sim.Time) sim.Time {
	last := now
	for {
		done, ok := e.Step(now)
		if !ok {
			return last
		}
		if done > last {
			last = done
		}
	}
}
