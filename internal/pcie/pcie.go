// Package pcie provides the simulated PCIe transport between host
// software and the FPGA: a serializing link with per-generation
// bandwidth and TLP overhead, multi-queue DMA with active-queue
// scheduling (the Host RBB's Ex-function, §3.3.1), and a dedicated
// control queue isolated from the data path (§3.3.3).
package pcie

import (
	"fmt"

	"harmonia/internal/sim"
)

// TLP framing constants.
const (
	// TLPHeaderBytes is the charged per-TLP header+framing footprint.
	TLPHeaderBytes = 24
	// MaxPayload is the maximum TLP payload in bytes.
	MaxPayload = 256
)

// Link models one direction of a PCIe connection: data serializes at
// the effective link rate with per-TLP header overhead, then lands
// after a fixed completion latency.
type Link struct {
	name    string
	gen     int
	lanes   int
	gbps    float64
	latency sim.Time

	busyUntil sim.Time
	tlps      int64
	bytes     int64
}

// effective per-lane rates in Gbps after encoding overhead.
var perLaneGbps = map[int]float64{3: 7.88, 4: 15.75, 5: 31.51}

// NewLink returns a link of the given generation and lane count with a
// typical ~500ns completion latency.
func NewLink(name string, gen, lanes int) (*Link, error) {
	pl, ok := perLaneGbps[gen]
	if !ok {
		return nil, fmt.Errorf("pcie: unsupported generation %d", gen)
	}
	if lanes != 8 && lanes != 16 {
		return nil, fmt.Errorf("pcie: unsupported lane count x%d", lanes)
	}
	return &Link{
		name: name, gen: gen, lanes: lanes,
		gbps:    pl * float64(lanes),
		latency: 500 * sim.Nanosecond,
	}, nil
}

// Gen reports the PCIe generation.
func (l *Link) Gen() int { return l.gen }

// Lanes reports the lane count.
func (l *Link) Lanes() int { return l.lanes }

// Gbps reports the effective aggregate link rate.
func (l *Link) Gbps() float64 { return l.gbps }

// Latency reports the fixed completion latency.
func (l *Link) Latency() sim.Time { return l.latency }

// TLPs reports transmitted TLP count.
func (l *Link) TLPs() int64 { return l.tlps }

// Bytes reports transferred payload bytes.
func (l *Link) Bytes() int64 { return l.bytes }

// wireBytes charges TLP header overhead per MaxPayload chunk.
func wireBytes(payload int) int {
	tlps := (payload + MaxPayload - 1) / MaxPayload
	if tlps == 0 {
		tlps = 1
	}
	return payload + tlps*TLPHeaderBytes
}

// Transfer moves payload bytes across the link starting no earlier than
// now and returns the completion time at the far side.
func (l *Link) Transfer(now sim.Time, payload int) sim.Time {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	wb := wireBytes(payload)
	ser := sim.Time(float64(wb*8) / l.gbps * float64(sim.Nanosecond))
	if ser < 1 {
		ser = 1
	}
	l.busyUntil = start + ser
	l.tlps += int64((payload + MaxPayload - 1) / MaxPayload)
	if payload == 0 {
		l.tlps++
	}
	l.bytes += int64(payload)
	return l.busyUntil + l.latency
}

// EffectiveGbps reports achievable goodput at a payload size after TLP
// overhead — the small-read penalty visible in Fig. 10b.
func EffectiveGbps(linkGbps float64, payload int) float64 {
	return linkGbps * float64(payload) / float64(wireBytes(payload))
}
