// Package tenancy implements the multi-tenancy support discussed in §6:
// partial-reconfiguration slots in the role region, per-tenant traffic
// isolation through the Network RBB's flow director, and independent
// host DMA queues per tenant. Admitting or evicting one tenant
// reconfigures only its slot; co-resident tenants keep running.
package tenancy

import (
	"fmt"
	"sort"

	"harmonia/internal/hdl"
	"harmonia/internal/net"
	"harmonia/internal/rbb"
	"harmonia/internal/sim"
)

// SlotConfig shapes the role region's partial-reconfiguration layout.
type SlotConfig struct {
	// Slots is the number of PR slots the role region is divided into.
	Slots int
	// SlotRes is the resource budget of one slot.
	SlotRes hdl.Resources
	// ReconfigTime is the partial-bitstream load time per slot.
	ReconfigTime sim.Time
	// QueuesPerTenant is each tenant's host-queue allocation.
	QueuesPerTenant int
	// LoadRetries bounds how often a failed partial-bitstream load is
	// retried on the same slot before Admit gives up with a LoadError.
	LoadRetries int
	// LoadBackoff is the delay before the first load retry; it doubles
	// per attempt (exponential backoff). Zero retries immediately.
	LoadBackoff sim.Time
}

// DefaultSlotConfig returns a typical four-slot layout.
func DefaultSlotConfig() SlotConfig {
	return SlotConfig{
		Slots:           4,
		SlotRes:         hdl.Resources{LUT: 120_000, REG: 180_000, BRAM: 260, URAM: 32, DSP: 720},
		ReconfigTime:    8 * sim.Millisecond,
		QueuesPerTenant: 64,
	}
}

// Tenant is one admitted user sharing the FPGA.
type Tenant struct {
	ID   int
	Name string
	Slot int
	// QueueLo/QueueHi is the tenant's host queue range [lo, hi).
	QueueLo, QueueHi int
	// VIPs are the addresses whose traffic the flow director steers to
	// this tenant.
	VIPs []net.IPAddr
	// ReadyAt is when the slot's partial reconfiguration completes.
	ReadyAt sim.Time
	// LoadAttempts is how many bitstream loads the slot took (1 = the
	// first load succeeded; more mean injected load failures retried).
	LoadAttempts int
}

// LoadFault decides whether one partial-bitstream load attempt fails.
// Fault injection installs it via SetLoadFault; attempt counts from
// zero. Implementations must be deterministic in their arguments so
// seeded runs reproduce.
type LoadFault func(tenant string, slot, attempt int) bool

// LoadError reports a partial-bitstream load that failed on every
// permitted attempt. The slot was busy for the failed loads (BusyUntil)
// but no tenant was admitted — callers fall back to re-placement on
// another device.
type LoadError struct {
	Tenant   string
	Slot     int
	Attempts int
	// BusyUntil is when the slot finishes digesting the failed loads.
	BusyUntil sim.Time
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("tenancy: bitstream load for %s failed on slot %d after %d attempts",
		e.Tenant, e.Slot, e.Attempts)
}

type slot struct {
	occupant  int // -1 when free
	busyUntil sim.Time
}

// Manager multiplexes tenants over one deployment's RBBs.
type Manager struct {
	cfg      SlotConfig
	director *rbb.FlowDirector
	host     *rbb.HostRBB
	slots    []slot
	tenants  map[int]*Tenant
	nextID   int
	nextQ    int
	// loadFault, when set, decides per-attempt bitstream load failures.
	loadFault    LoadFault
	loadFailures int64
}

// SetLoadFault installs (or, with nil, removes) the bitstream
// load-failure injector consulted on every Admit attempt.
func (m *Manager) SetLoadFault(fn LoadFault) { m.loadFault = fn }

// LoadFailures reports how many bitstream load attempts failed.
func (m *Manager) LoadFailures() int64 { return m.loadFailures }

// NewManager returns a manager over the Network RBB's flow director and
// the Host RBB.
func NewManager(cfg SlotConfig, director *rbb.FlowDirector, host *rbb.HostRBB) (*Manager, error) {
	if cfg.Slots <= 0 || cfg.QueuesPerTenant <= 0 {
		return nil, fmt.Errorf("tenancy: invalid slot config %+v", cfg)
	}
	if director == nil || host == nil {
		return nil, fmt.Errorf("tenancy: manager requires a flow director and a host RBB")
	}
	if cfg.Slots*cfg.QueuesPerTenant > host.Spec().QueueCount {
		return nil, fmt.Errorf("tenancy: %d slots x %d queues exceed the %d hardware queues",
			cfg.Slots, cfg.QueuesPerTenant, host.Spec().QueueCount)
	}
	slots := make([]slot, cfg.Slots)
	for i := range slots {
		slots[i].occupant = -1
	}
	return &Manager{
		cfg:      cfg,
		director: director,
		host:     host,
		slots:    slots,
		tenants:  make(map[int]*Tenant),
	}, nil
}

// FreeSlots reports how many PR slots are unoccupied.
func (m *Manager) FreeSlots() int {
	n := 0
	for _, s := range m.slots {
		if s.occupant < 0 {
			n++
		}
	}
	return n
}

// Tenants lists admitted tenants sorted by ID.
func (m *Manager) Tenants() []*Tenant {
	out := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Admit places a tenant: checks its logic fits a slot's budget,
// partially reconfigures the slot, allocates an isolated queue range
// and programs the flow director. Other tenants are untouched.
//
// A bitstream load can fail (the injected LoadFault decides): each
// failed attempt still occupies the slot for ReconfigTime, then the
// load is retried after an exponentially growing backoff, up to
// LoadRetries times. Exhausting the retries returns a *LoadError — the
// slot stays free (no tenant was created, no queues were burned) but
// busy until the failed loads drain, and the caller re-places the
// tenant elsewhere.
func (m *Manager) Admit(now sim.Time, name string, logic hdl.Resources, vips []net.IPAddr) (*Tenant, error) {
	if logic.Utilization(m.cfg.SlotRes) > 1 {
		return nil, fmt.Errorf("tenancy: %s needs more than one slot's budget (%s > %s)",
			name, logic.String(), m.cfg.SlotRes.String())
	}
	slotIdx := -1
	for i, s := range m.slots {
		if s.occupant < 0 {
			slotIdx = i
			break
		}
	}
	if slotIdx < 0 {
		return nil, fmt.Errorf("tenancy: no free slot for %s (have %d tenants)", name, len(m.tenants))
	}
	// Queue exhaustion must fail before anything is allocated or loaded:
	// retired ranges are never recycled, so a long-lived manager can run
	// out of queues while slots are still free. Failing here keeps the
	// director and host untouched (no leaked rules or ownership).
	if m.nextQ+m.cfg.QueuesPerTenant > m.host.Spec().QueueCount {
		return nil, fmt.Errorf("tenancy: host queues exhausted for %s: need [%d,%d) of %d (retired ranges are not recycled; rebuild the node to reclaim)",
			name, m.nextQ, m.nextQ+m.cfg.QueuesPerTenant, m.host.Spec().QueueCount)
	}

	// Run the load attempts before allocating anything: a load that
	// fails its whole retry budget must not leak director rules or
	// retire host queues.
	start := now
	if m.slots[slotIdx].busyUntil > start {
		start = m.slots[slotIdx].busyUntil
	}
	attempts := 1
	for attempt := 0; m.loadFault != nil && m.loadFault(name, slotIdx, attempt); attempt++ {
		m.loadFailures++
		if attempt >= m.cfg.LoadRetries {
			busy := start + m.cfg.ReconfigTime // the last failed load
			m.slots[slotIdx].busyUntil = busy
			return nil, &LoadError{Tenant: name, Slot: slotIdx, Attempts: attempts, BusyUntil: busy}
		}
		// The failed load held the slot for a full reconfiguration; back
		// off exponentially before retrying on the same slot.
		start += m.cfg.ReconfigTime + m.cfg.LoadBackoff<<attempt
		attempts++
	}

	id := m.nextID
	m.nextID++
	lo := m.nextQ
	hi := lo + m.cfg.QueuesPerTenant
	if err := m.director.AddTenant(id, lo, hi); err != nil {
		return nil, err
	}
	for _, vip := range vips {
		if err := m.director.AddRule(vip, id); err != nil {
			return nil, err
		}
	}
	for q := lo; q < hi; q++ {
		if err := m.host.AssignQueue(q, id); err != nil {
			return nil, err
		}
	}
	m.nextQ = hi

	// Partial reconfiguration occupies only this slot.
	ready := start + m.cfg.ReconfigTime
	m.slots[slotIdx] = slot{occupant: id, busyUntil: ready}

	t := &Tenant{
		ID: id, Name: name, Slot: slotIdx,
		QueueLo: lo, QueueHi: hi,
		VIPs:         append([]net.IPAddr(nil), vips...),
		ReadyAt:      ready,
		LoadAttempts: attempts,
	}
	m.tenants[id] = t
	return t, nil
}

// Evict removes a tenant, freeing its slot (after a reconfiguration to
// the blank image). Its queue range is retired, not recycled — hardware
// queue reuse across tenants would leak state.
func (m *Manager) Evict(now sim.Time, tenantID int) (sim.Time, error) {
	t, ok := m.tenants[tenantID]
	if !ok {
		return now, fmt.Errorf("tenancy: unknown tenant %d", tenantID)
	}
	done := now + m.cfg.ReconfigTime
	m.slots[t.Slot] = slot{occupant: -1, busyUntil: done}
	delete(m.tenants, tenantID)
	return done, nil
}

// CanAllocate reports whether another tenant's queue range still fits
// under the hardware queue count — the placement-time check that keeps
// schedulers off queue-exhausted nodes.
func (m *Manager) CanAllocate() bool {
	return m.nextQ+m.cfg.QueuesPerTenant <= m.host.Spec().QueueCount
}

// QueueHorizon reports the allocation high-water mark: every queue
// below it has been handed to some tenant, active or retired.
func (m *Manager) QueueHorizon() int { return m.nextQ }

// QueuesRetired reports how many host queues past evictions have
// stranded: the allocation horizon minus what active tenants still own.
// It only shrinks on Rebuild.
func (m *Manager) QueuesRetired() int {
	return m.nextQ - len(m.tenants)*m.cfg.QueuesPerTenant
}

// Rebuild resets the queue allocator after a full drain, reclaiming
// every retired range: director entries and rules for all past tenant
// IDs are scrubbed, host queue ownership below the horizon is released,
// and the horizon returns to zero. It refuses while tenants remain —
// live queue ranges cannot be moved under a running tenant. Tenant IDs
// stay monotonic across rebuilds so per-tenant table IDs never collide
// with a predecessor's.
func (m *Manager) Rebuild() (reclaimed int, err error) {
	if len(m.tenants) != 0 {
		return 0, fmt.Errorf("tenancy: rebuild with %d tenants still admitted", len(m.tenants))
	}
	reclaimed = m.nextQ
	for id := 0; id < m.nextID; id++ {
		m.director.RemoveTenant(id)
	}
	for q := 0; q < m.nextQ; q++ {
		m.host.ReleaseQueue(q)
	}
	m.nextQ = 0
	return reclaimed, nil
}

// Owner reports which tenant owns a host queue.
func (m *Manager) Owner(queue int) (*Tenant, bool) {
	for _, t := range m.tenants {
		if queue >= t.QueueLo && queue < t.QueueHi {
			return t, true
		}
	}
	return nil, false
}

// ResolveSteering resolves the director's steering decision for a
// destination address once, returning the matched tenant's queue range
// [lo, lo+span). It fails exactly when Route would fail for any packet
// of such a flow — no tenant, retired tenant, or a director range
// escaping the tenant's isolation range — which is what lets a caller
// cache the range at a control-plane barrier and derive per-flow
// queues from the flow hash without re-running the lookups per packet.
func (m *Manager) ResolveSteering(dst net.IPAddr) (lo, span int, err error) {
	dlo, dhi, tenantID, ok := m.director.Resolve(dst)
	if !ok {
		return 0, 0, fmt.Errorf("tenancy: no tenant for flow to %s", dst)
	}
	tn, exists := m.tenants[tenantID]
	if !exists {
		return 0, 0, fmt.Errorf("tenancy: director matched retired tenant %d", tenantID)
	}
	if dlo < tn.QueueLo || dhi > tn.QueueHi {
		return 0, 0, fmt.Errorf("tenancy: isolation violation: steering range [%d,%d) outside [%d,%d)",
			dlo, dhi, tn.QueueLo, tn.QueueHi)
	}
	return dlo, dhi - dlo, nil
}

// Route steers a packet to its tenant's queue range via the flow
// director and verifies the isolation invariant: the selected queue
// must belong to the matched tenant.
func (m *Manager) Route(p *net.Packet) (queue int, t *Tenant, err error) {
	q, tenantID, ok := m.director.Direct(p)
	if !ok {
		return 0, nil, fmt.Errorf("tenancy: no tenant for flow to %s", p.DstIP)
	}
	tn, exists := m.tenants[tenantID]
	if !exists {
		return 0, nil, fmt.Errorf("tenancy: director matched retired tenant %d", tenantID)
	}
	if q < tn.QueueLo || q >= tn.QueueHi {
		return 0, nil, fmt.Errorf("tenancy: isolation violation: queue %d outside [%d,%d)",
			q, tn.QueueLo, tn.QueueHi)
	}
	return q, tn, nil
}
