// Package tenancy implements the multi-tenancy support discussed in §6:
// partial-reconfiguration slots in the role region, per-tenant traffic
// isolation through the Network RBB's flow director, and independent
// host DMA queues per tenant. Admitting or evicting one tenant
// reconfigures only its slot; co-resident tenants keep running.
package tenancy

import (
	"fmt"
	"sort"

	"harmonia/internal/hdl"
	"harmonia/internal/net"
	"harmonia/internal/rbb"
	"harmonia/internal/sim"
)

// SlotConfig shapes the role region's partial-reconfiguration layout.
type SlotConfig struct {
	// Slots is the number of PR slots the role region is divided into.
	Slots int
	// SlotRes is the resource budget of one slot.
	SlotRes hdl.Resources
	// ReconfigTime is the partial-bitstream load time per slot.
	ReconfigTime sim.Time
	// QueuesPerTenant is each tenant's host-queue allocation.
	QueuesPerTenant int
}

// DefaultSlotConfig returns a typical four-slot layout.
func DefaultSlotConfig() SlotConfig {
	return SlotConfig{
		Slots:           4,
		SlotRes:         hdl.Resources{LUT: 120_000, REG: 180_000, BRAM: 260, URAM: 32, DSP: 720},
		ReconfigTime:    8 * sim.Millisecond,
		QueuesPerTenant: 64,
	}
}

// Tenant is one admitted user sharing the FPGA.
type Tenant struct {
	ID   int
	Name string
	Slot int
	// QueueLo/QueueHi is the tenant's host queue range [lo, hi).
	QueueLo, QueueHi int
	// VIPs are the addresses whose traffic the flow director steers to
	// this tenant.
	VIPs []net.IPAddr
	// ReadyAt is when the slot's partial reconfiguration completes.
	ReadyAt sim.Time
}

type slot struct {
	occupant  int // -1 when free
	busyUntil sim.Time
}

// Manager multiplexes tenants over one deployment's RBBs.
type Manager struct {
	cfg      SlotConfig
	director *rbb.FlowDirector
	host     *rbb.HostRBB
	slots    []slot
	tenants  map[int]*Tenant
	nextID   int
	nextQ    int
}

// NewManager returns a manager over the Network RBB's flow director and
// the Host RBB.
func NewManager(cfg SlotConfig, director *rbb.FlowDirector, host *rbb.HostRBB) (*Manager, error) {
	if cfg.Slots <= 0 || cfg.QueuesPerTenant <= 0 {
		return nil, fmt.Errorf("tenancy: invalid slot config %+v", cfg)
	}
	if director == nil || host == nil {
		return nil, fmt.Errorf("tenancy: manager requires a flow director and a host RBB")
	}
	if cfg.Slots*cfg.QueuesPerTenant > host.Spec().QueueCount {
		return nil, fmt.Errorf("tenancy: %d slots x %d queues exceed the %d hardware queues",
			cfg.Slots, cfg.QueuesPerTenant, host.Spec().QueueCount)
	}
	slots := make([]slot, cfg.Slots)
	for i := range slots {
		slots[i].occupant = -1
	}
	return &Manager{
		cfg:      cfg,
		director: director,
		host:     host,
		slots:    slots,
		tenants:  make(map[int]*Tenant),
	}, nil
}

// FreeSlots reports how many PR slots are unoccupied.
func (m *Manager) FreeSlots() int {
	n := 0
	for _, s := range m.slots {
		if s.occupant < 0 {
			n++
		}
	}
	return n
}

// Tenants lists admitted tenants sorted by ID.
func (m *Manager) Tenants() []*Tenant {
	out := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Admit places a tenant: checks its logic fits a slot's budget,
// partially reconfigures the slot, allocates an isolated queue range
// and programs the flow director. Other tenants are untouched.
func (m *Manager) Admit(now sim.Time, name string, logic hdl.Resources, vips []net.IPAddr) (*Tenant, error) {
	if logic.Utilization(m.cfg.SlotRes) > 1 {
		return nil, fmt.Errorf("tenancy: %s needs more than one slot's budget (%s > %s)",
			name, logic.String(), m.cfg.SlotRes.String())
	}
	slotIdx := -1
	for i, s := range m.slots {
		if s.occupant < 0 {
			slotIdx = i
			break
		}
	}
	if slotIdx < 0 {
		return nil, fmt.Errorf("tenancy: no free slot for %s (have %d tenants)", name, len(m.tenants))
	}

	id := m.nextID
	m.nextID++
	lo := m.nextQ
	hi := lo + m.cfg.QueuesPerTenant
	if err := m.director.AddTenant(id, lo, hi); err != nil {
		return nil, err
	}
	for _, vip := range vips {
		if err := m.director.AddRule(vip, id); err != nil {
			return nil, err
		}
	}
	for q := lo; q < hi; q++ {
		if err := m.host.AssignQueue(q, id); err != nil {
			return nil, err
		}
	}
	m.nextQ = hi

	// Partial reconfiguration occupies only this slot.
	start := now
	if m.slots[slotIdx].busyUntil > start {
		start = m.slots[slotIdx].busyUntil
	}
	ready := start + m.cfg.ReconfigTime
	m.slots[slotIdx] = slot{occupant: id, busyUntil: ready}

	t := &Tenant{
		ID: id, Name: name, Slot: slotIdx,
		QueueLo: lo, QueueHi: hi,
		VIPs:    append([]net.IPAddr(nil), vips...),
		ReadyAt: ready,
	}
	m.tenants[id] = t
	return t, nil
}

// Evict removes a tenant, freeing its slot (after a reconfiguration to
// the blank image). Its queue range is retired, not recycled — hardware
// queue reuse across tenants would leak state.
func (m *Manager) Evict(now sim.Time, tenantID int) (sim.Time, error) {
	t, ok := m.tenants[tenantID]
	if !ok {
		return now, fmt.Errorf("tenancy: unknown tenant %d", tenantID)
	}
	done := now + m.cfg.ReconfigTime
	m.slots[t.Slot] = slot{occupant: -1, busyUntil: done}
	delete(m.tenants, tenantID)
	return done, nil
}

// Owner reports which tenant owns a host queue.
func (m *Manager) Owner(queue int) (*Tenant, bool) {
	for _, t := range m.tenants {
		if queue >= t.QueueLo && queue < t.QueueHi {
			return t, true
		}
	}
	return nil, false
}

// Route steers a packet to its tenant's queue range via the flow
// director and verifies the isolation invariant: the selected queue
// must belong to the matched tenant.
func (m *Manager) Route(p *net.Packet) (queue int, t *Tenant, err error) {
	q, tenantID, ok := m.director.Direct(p)
	if !ok {
		return 0, nil, fmt.Errorf("tenancy: no tenant for flow to %s", p.DstIP)
	}
	tn, exists := m.tenants[tenantID]
	if !exists {
		return 0, nil, fmt.Errorf("tenancy: director matched retired tenant %d", tenantID)
	}
	if q < tn.QueueLo || q >= tn.QueueHi {
		return 0, nil, fmt.Errorf("tenancy: isolation violation: queue %d outside [%d,%d)",
			q, tn.QueueLo, tn.QueueHi)
	}
	return q, tn, nil
}
