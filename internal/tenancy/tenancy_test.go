package tenancy

import (
	"testing"

	"harmonia/internal/apps"
	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/sim"
)

func newManager(t *testing.T) (*Manager, *rbb.NetworkRBB, *rbb.HostRBB) {
	t.Helper()
	clk := apps.UserClock()
	n, err := rbb.NewNetwork(platform.Xilinx, ip.Speed100G, clk, apps.UserWidth)
	if err != nil {
		t.Fatal(err)
	}
	h, err := rbb.NewHost(platform.Xilinx, 4, 16, ip.SGDMA, clk, apps.UserWidth)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(DefaultSlotConfig(), n.Director, h)
	if err != nil {
		t.Fatal(err)
	}
	return m, n, h
}

func smallLogic() hdl.Resources {
	return hdl.Resources{LUT: 50_000, REG: 70_000, BRAM: 90, DSP: 100}
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(SlotConfig{}, nil, nil); err == nil {
		t.Error("invalid config accepted")
	}
	clk := apps.UserClock()
	h, _ := rbb.NewHost(platform.Xilinx, 4, 16, ip.SGDMA, clk, apps.UserWidth)
	n, _ := rbb.NewNetwork(platform.Xilinx, ip.Speed100G, clk, apps.UserWidth)
	cfg := DefaultSlotConfig()
	cfg.QueuesPerTenant = 10_000 // exceeds hardware queues
	if _, err := NewManager(cfg, n.Director, h); err == nil {
		t.Error("queue overcommit accepted")
	}
}

func TestAdmitAllocatesIsolatedResources(t *testing.T) {
	m, _, h := newManager(t)
	vipA := net.IPv4(20, 0, 0, 1)
	vipB := net.IPv4(20, 0, 0, 2)
	a, err := m.Admit(0, "tenant-a", smallLogic(), []net.IPAddr{vipA})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Admit(0, "tenant-b", smallLogic(), []net.IPAddr{vipB})
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint queue ranges and distinct slots.
	if a.QueueHi > b.QueueLo && b.QueueHi > a.QueueLo {
		t.Errorf("queue ranges overlap: %+v vs %+v", a, b)
	}
	if a.Slot == b.Slot {
		t.Error("tenants share a PR slot")
	}
	// Host RBB queue ownership matches.
	owner, ok := h.Owner(a.QueueLo)
	if !ok || owner != a.ID {
		t.Errorf("queue %d owner = %d, want %d", a.QueueLo, owner, a.ID)
	}
	if m.FreeSlots() != DefaultSlotConfig().Slots-2 {
		t.Errorf("FreeSlots = %d", m.FreeSlots())
	}
	if len(m.Tenants()) != 2 {
		t.Errorf("Tenants = %d", len(m.Tenants()))
	}
}

func TestTrafficIsolation(t *testing.T) {
	m, _, _ := newManager(t)
	vipA := net.IPv4(20, 0, 0, 1)
	vipB := net.IPv4(20, 0, 0, 2)
	a, _ := m.Admit(0, "tenant-a", smallLogic(), []net.IPAddr{vipA})
	b, _ := m.Admit(0, "tenant-b", smallLogic(), []net.IPAddr{vipB})

	for port := uint16(1000); port < 1200; port++ {
		pa := &net.Packet{DstIP: vipA, SrcIP: net.IPv4(1, 1, 1, 1), Proto: net.ProtoTCP, SrcPort: port, DstPort: 80}
		q, tn, err := m.Route(pa)
		if err != nil {
			t.Fatal(err)
		}
		if tn.ID != a.ID || q < a.QueueLo || q >= a.QueueHi {
			t.Fatalf("tenant-a flow routed to queue %d of tenant %d", q, tn.ID)
		}
		pb := &net.Packet{DstIP: vipB, SrcIP: net.IPv4(1, 1, 1, 1), Proto: net.ProtoTCP, SrcPort: port, DstPort: 80}
		q, tn, err = m.Route(pb)
		if err != nil {
			t.Fatal(err)
		}
		if tn.ID != b.ID || q < b.QueueLo || q >= b.QueueHi {
			t.Fatalf("tenant-b flow routed to queue %d of tenant %d", q, tn.ID)
		}
	}
}

func TestAdmitRejectsOversizedLogic(t *testing.T) {
	m, _, _ := newManager(t)
	huge := hdl.Resources{LUT: 500_000}
	if _, err := m.Admit(0, "huge", huge, nil); err == nil {
		t.Error("oversized tenant admitted")
	}
}

func TestSlotExhaustion(t *testing.T) {
	m, _, _ := newManager(t)
	for i := 0; i < DefaultSlotConfig().Slots; i++ {
		if _, err := m.Admit(0, "t", smallLogic(), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Admit(0, "overflow", smallLogic(), nil); err == nil {
		t.Error("admission beyond slot count succeeded")
	}
}

func TestEvictFreesSlotOnly(t *testing.T) {
	m, _, _ := newManager(t)
	vipA := net.IPv4(20, 0, 0, 1)
	vipB := net.IPv4(20, 0, 0, 2)
	a, _ := m.Admit(0, "tenant-a", smallLogic(), []net.IPAddr{vipA})
	b, _ := m.Admit(0, "tenant-b", smallLogic(), []net.IPAddr{vipB})

	done, err := m.Evict(sim.Second, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done <= sim.Second {
		t.Error("eviction reconfiguration took no time")
	}
	if m.FreeSlots() != DefaultSlotConfig().Slots-1 {
		t.Errorf("FreeSlots after evict = %d", m.FreeSlots())
	}
	// Tenant B keeps running: its traffic still routes.
	pb := &net.Packet{DstIP: vipB, SrcIP: net.IPv4(2, 2, 2, 2), Proto: net.ProtoTCP, SrcPort: 99, DstPort: 80}
	if _, tn, err := m.Route(pb); err != nil || tn.ID != b.ID {
		t.Errorf("tenant-b disturbed by eviction: %v", err)
	}
	// Evicting twice fails.
	if _, err := m.Evict(0, a.ID); err == nil {
		t.Error("double eviction succeeded")
	}
	// A new tenant reuses the freed slot with fresh queues.
	c, err := m.Admit(done, "tenant-c", smallLogic(), []net.IPAddr{net.IPv4(20, 0, 0, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Slot != a.Slot {
		t.Errorf("tenant-c slot = %d, want freed slot %d", c.Slot, a.Slot)
	}
	if c.QueueLo < a.QueueHi {
		t.Error("queue range recycled across tenants")
	}
}

func TestReconfigurationTiming(t *testing.T) {
	m, _, _ := newManager(t)
	a, _ := m.Admit(0, "a", smallLogic(), nil)
	if a.ReadyAt != DefaultSlotConfig().ReconfigTime {
		t.Errorf("ReadyAt = %v, want %v", a.ReadyAt, DefaultSlotConfig().ReconfigTime)
	}
	if _, ok := m.Owner(a.QueueLo); !ok {
		t.Error("Owner lookup failed")
	}
	if _, ok := m.Owner(9999); ok {
		t.Error("Owner(9999) should miss")
	}
}

func TestAdmitRetriesFailedLoads(t *testing.T) {
	m, _, _ := newManager(t)
	m.cfg.LoadRetries = 3
	m.cfg.LoadBackoff = 100 * sim.Microsecond
	failures := 2
	m.SetLoadFault(func(tenant string, slot, attempt int) bool {
		return attempt < failures
	})
	tn, err := m.Admit(0, "tenant-a", smallLogic(), []net.IPAddr{net.IPv4(20, 0, 0, 1)})
	if err != nil {
		t.Fatalf("Admit within retry budget failed: %v", err)
	}
	if tn.LoadAttempts != failures+1 {
		t.Errorf("LoadAttempts = %d, want %d", tn.LoadAttempts, failures+1)
	}
	if m.LoadFailures() != int64(failures) {
		t.Errorf("LoadFailures = %d, want %d", m.LoadFailures(), failures)
	}
	// Each failed load held the slot for a full reconfiguration plus an
	// exponentially growing backoff: 2 failures cost 2*Reconfig +
	// (backoff<<0 + backoff<<1), then the successful load.
	rc := m.cfg.ReconfigTime
	bo := m.cfg.LoadBackoff
	want := 2*rc + bo + 2*bo + rc
	if tn.ReadyAt != want {
		t.Errorf("ReadyAt = %v, want %v", tn.ReadyAt, want)
	}
}

func TestAdmitExhaustsLoadRetries(t *testing.T) {
	m, _, h := newManager(t)
	m.cfg.LoadRetries = 1
	m.SetLoadFault(func(tenant string, slot, attempt int) bool { return true })
	_, err := m.Admit(0, "tenant-a", smallLogic(), []net.IPAddr{net.IPv4(20, 0, 0, 1)})
	if err == nil {
		t.Fatal("Admit succeeded despite every load failing")
	}
	le, ok := err.(*LoadError)
	if !ok {
		t.Fatalf("error is %T, want *LoadError", err)
	}
	if le.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", le.Attempts)
	}
	if le.BusyUntil <= 0 {
		t.Errorf("BusyUntil = %v, want > 0 (slot digested failed loads)", le.BusyUntil)
	}
	// The failed admission must not leak resources: the slot stays free
	// and no host queue was burned.
	if m.FreeSlots() != m.cfg.Slots {
		t.Errorf("FreeSlots = %d after failed admit, want %d", m.FreeSlots(), m.cfg.Slots)
	}
	if owner, ok := h.Owner(0); ok {
		t.Errorf("queue 0 assigned to tenant %d after failed admit", owner)
	}
	// A later admission reuses the slot once it drains.
	m.SetLoadFault(nil)
	tn, err := m.Admit(le.BusyUntil, "tenant-b", smallLogic(), []net.IPAddr{net.IPv4(20, 0, 0, 2)})
	if err != nil {
		t.Fatalf("re-admission after failed loads: %v", err)
	}
	if tn.LoadAttempts != 1 {
		t.Errorf("LoadAttempts = %d, want 1", tn.LoadAttempts)
	}
}

func TestAdmitWaitsOutBusySlotFromFailedLoad(t *testing.T) {
	m, _, _ := newManager(t)
	m.cfg.Slots = 1
	m.slots = m.slots[:1]
	m.SetLoadFault(func(tenant string, slot, attempt int) bool { return tenant == "doomed" })
	_, err := m.Admit(0, "doomed", smallLogic(), []net.IPAddr{net.IPv4(20, 0, 0, 1)})
	le, ok := err.(*LoadError)
	if !ok {
		t.Fatalf("error is %T, want *LoadError", err)
	}
	// Admitting again before the slot drains queues behind the failed
	// load rather than overlapping it.
	tn, err := m.Admit(0, "tenant-b", smallLogic(), []net.IPAddr{net.IPv4(20, 0, 0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if want := le.BusyUntil + m.cfg.ReconfigTime; tn.ReadyAt != want {
		t.Errorf("ReadyAt = %v, want %v (queued behind failed load)", tn.ReadyAt, want)
	}
}

func TestQueueExhaustionGuard(t *testing.T) {
	m, _, _ := newManager(t)
	// Burn the queue horizon through admit/evict cycles: retired ranges
	// are never recycled, so the horizon only grows.
	cycles := 0
	for ; m.CanAllocate(); cycles++ {
		if cycles > 1000 {
			t.Fatal("queue horizon never exhausted")
		}
		tn, err := m.Admit(0, "churn", smallLogic(), nil)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycles, err)
		}
		if _, err := m.Evict(0, tn.ID); err != nil {
			t.Fatal(err)
		}
	}
	if m.FreeSlots() != m.cfg.Slots {
		t.Fatalf("FreeSlots = %d, want all %d free", m.FreeSlots(), m.cfg.Slots)
	}
	// Slots are free but the queues are gone: admission must fail before
	// touching the director or host.
	if _, err := m.Admit(0, "late", smallLogic(), nil); err == nil {
		t.Fatal("admission succeeded on a queue-exhausted manager")
	}
	if got := m.QueuesRetired(); got != cycles*m.cfg.QueuesPerTenant {
		t.Errorf("QueuesRetired = %d, want %d", got, cycles*m.cfg.QueuesPerTenant)
	}
	if m.QueueHorizon() != m.QueuesRetired() {
		t.Errorf("horizon %d != retired %d with no tenants admitted",
			m.QueueHorizon(), m.QueuesRetired())
	}
}

func TestRebuildReclaimsRetiredQueues(t *testing.T) {
	m, _, h := newManager(t)
	a, err := m.Admit(0, "tenant-a", smallLogic(), []net.IPAddr{net.IPv4(20, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Admit(0, "tenant-b", smallLogic(), []net.IPAddr{net.IPv4(20, 0, 0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evict(0, a.ID); err != nil {
		t.Fatal(err)
	}
	// A rebuild refuses while a tenant still runs: its live queue range
	// cannot be moved underneath it.
	if _, err := m.Rebuild(); err == nil {
		t.Fatal("rebuild succeeded with a tenant still admitted")
	}
	if _, err := m.Evict(0, b.ID); err != nil {
		t.Fatal(err)
	}
	horizon := m.QueueHorizon()
	reclaimed, err := m.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != horizon {
		t.Errorf("reclaimed %d queues, want the whole horizon %d", reclaimed, horizon)
	}
	if m.QueuesRetired() != 0 || m.QueueHorizon() != 0 {
		t.Errorf("retired %d, horizon %d after rebuild, want 0/0",
			m.QueuesRetired(), m.QueueHorizon())
	}
	if owner, ok := h.Owner(0); ok {
		t.Errorf("queue 0 still owned by tenant %d after rebuild", owner)
	}
	// The allocator restarts at zero but tenant IDs stay monotonic, so
	// new table IDs never collide with a predecessor's.
	c, err := m.Admit(0, "tenant-c", smallLogic(), []net.IPAddr{net.IPv4(20, 0, 0, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if c.QueueLo != 0 {
		t.Errorf("post-rebuild QueueLo = %d, want 0", c.QueueLo)
	}
	if c.ID <= b.ID {
		t.Errorf("tenant ID %d not monotonic past %d after rebuild", c.ID, b.ID)
	}
}
