// Package role models the user-owned role of the shell-role
// architecture: application logic with declared shell demands and
// configuration limited to the role-oriented parameters the tailored
// shell exposes. Roles developed against the unified abstraction port
// across platforms without modification (§3.3, Table 1).
package role

import (
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/shell"
)

// Role describes one accelerated application's FPGA-side logic.
type Role struct {
	// Name identifies the role.
	Name string
	// Demands drives hierarchical shell tailoring.
	Demands shell.Demands
	// Logic is the role's own structural footprint (the user-owned
	// region's resources and code).
	Logic *hdl.Module
	// Settings holds the role's chosen values for exposed shell
	// parameters, established by Configure.
	Settings map[string]string
	// ClockMHz is the role's requested user clock; integration checks
	// it against the shell's timing closure.
	ClockMHz float64
}

// New returns a role with the given demands and logic.
func New(name string, demands shell.Demands, logic *hdl.Module) (*Role, error) {
	if name == "" {
		return nil, fmt.Errorf("role: empty name")
	}
	if logic == nil {
		return nil, fmt.Errorf("role: %s has no logic module", name)
	}
	return &Role{
		Name:     name,
		Demands:  demands,
		Logic:    logic,
		Settings: make(map[string]string),
		ClockMHz: 250,
	}, nil
}

// Configure applies settings against the parameter set a tailored shell
// exposes. Every setting must name an exposed role-oriented parameter —
// anything else would be the role reaching into shell internals.
func (r *Role) Configure(exposed []hdl.Param, settings map[string]string) error {
	allowed := make(map[string]bool, len(exposed))
	for _, p := range exposed {
		allowed[p.Name] = true
	}
	for name, value := range settings {
		if !allowed[name] {
			return fmt.Errorf("role: %s sets %q, which the shell does not expose", r.Name, name)
		}
		r.Settings[name] = value
	}
	return nil
}

// ConfigItemCount reports how many shell parameters the role set.
func (r *Role) ConfigItemCount() int { return len(r.Settings) }
