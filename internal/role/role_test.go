package role

import (
	"testing"

	"harmonia/internal/hdl"
	"harmonia/internal/platform"
	"harmonia/internal/shell"
)

func testLogic() *hdl.Module {
	return &hdl.Module{
		Name: "app-logic",
		Res:  hdl.Resources{LUT: 50_000, REG: 80_000, BRAM: 100},
		Code: hdl.LoC{Handcraft: 12_000},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", shell.Demands{}, testLogic()); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := New("x", shell.Demands{}, nil); err == nil {
		t.Error("nil logic should fail")
	}
	r, err := New("x", shell.Demands{}, testLogic())
	if err != nil || r.Name != "x" {
		t.Fatalf("New: %v", err)
	}
}

func TestConfigureAgainstExposedParams(t *testing.T) {
	unified, err := shell.BuildUnified(platform.DeviceA())
	if err != nil {
		t.Fatal(err)
	}
	tailored, err := unified.Tailor(shell.Demands{
		Network: &shell.NetworkDemand{Gbps: 100},
		Host:    &shell.HostDemand{Queues: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := New("app", shell.Demands{}, testLogic())
	exposed := tailored.ExposedParams()
	// Setting an exposed param works.
	if err := r.Configure(exposed, map[string]string{"FILTER_ENABLE": "0"}); err != nil {
		t.Errorf("Configure exposed param: %v", err)
	}
	if r.ConfigItemCount() != 1 {
		t.Errorf("ConfigItemCount = %d", r.ConfigItemCount())
	}
	// Reaching into shell internals fails.
	if err := r.Configure(exposed, map[string]string{"WATCHDOG_TIMEOUT": "5s"}); err == nil {
		t.Error("shell-oriented param accepted")
	}
	if err := r.Configure(exposed, map[string]string{"NO_SUCH": "1"}); err == nil {
		t.Error("unknown param accepted")
	}
}
