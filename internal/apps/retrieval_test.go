package apps

import (
	"sort"
	"testing"

	"harmonia/internal/platform"
	"harmonia/internal/workload"
)

func newRetrieval(t *testing.T) *Retrieval {
	t.Helper()
	r, err := NewRetrieval(platform.Xilinx, 16, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRetrievalTopKCorrect(t *testing.T) {
	r := newRetrieval(t)
	corpus := workload.Embeddings(200, 16, 11)
	if _, err := r.LoadCorpus(0, corpus); err != nil {
		t.Fatal(err)
	}
	q := workload.Embeddings(1, 16, 99)[0].Vec
	const k = 10
	ids, done, err := r.Query(0, q, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != k {
		t.Fatalf("got %d ids, want %d", len(ids), k)
	}
	if done <= 0 {
		t.Error("query took no time")
	}
	// Brute-force reference.
	type sc struct {
		id uint32
		s  float32
	}
	ref := make([]sc, len(corpus))
	for i, row := range corpus {
		ref[i] = sc{row.ID, workload.Dot(q, row.Vec)}
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i].s > ref[j].s })
	want := map[uint32]bool{}
	for i := 0; i < k; i++ {
		want[ref[i].id] = true
	}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("id %d not in true top-%d", id, k)
		}
	}
	// Best-first ordering.
	if ids[0] != ref[0].id {
		t.Errorf("first result %d, want %d", ids[0], ref[0].id)
	}
	if r.Queries() != 1 {
		t.Errorf("Queries = %d", r.Queries())
	}
}

func TestRetrievalValidation(t *testing.T) {
	if _, err := NewRetrieval(platform.Xilinx, 0, 8, true); err == nil {
		t.Error("zero dim accepted")
	}
	r := newRetrieval(t)
	if _, err := r.LoadCorpus(0, workload.Embeddings(5, 8, 1)); err == nil {
		t.Error("dim-mismatched corpus accepted")
	}
	corpus := workload.Embeddings(10, 16, 1)
	r.LoadCorpus(0, corpus)
	if _, _, err := r.Query(0, make([]float32, 7), 5); err == nil {
		t.Error("dim-mismatched query accepted")
	}
	if _, _, err := r.Query(0, make([]float32, 16), 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRetrievalQPSDecreasesWithCorpus(t *testing.T) {
	// Fig. 17d shape: QPS falls as the corpus grows.
	r := newRetrieval(t)
	var prev float64
	for i, n := range []int64{1e3, 1e5, 1e7, 1e9} {
		qps := r.QPS(n)
		if qps <= 0 {
			t.Fatalf("QPS(%d) = %v", n, qps)
		}
		if i > 0 && qps >= prev {
			t.Errorf("QPS did not fall from %v to corpus %d", prev, n)
		}
		prev = qps
	}
	// Small corpora are bounded by the host round trip: hundreds of
	// thousands of QPS, not billions.
	if r.QPS(1e3) > 1e6 {
		t.Errorf("QPS(1e3) = %v, want sub-million", r.QPS(1e3))
	}
}

func TestRetrievalMoreLanesFaster(t *testing.T) {
	slow, _ := NewRetrieval(platform.Xilinx, 64, 4, true)
	fast, _ := NewRetrieval(platform.Xilinx, 64, 64, true)
	// At a compute-bound corpus, more DSP lanes raise QPS.
	n := int64(1e6)
	if fast.QPS(n) <= slow.QPS(n) {
		t.Errorf("64 lanes (%.0f QPS) not faster than 4 lanes (%.0f QPS)",
			fast.QPS(n), slow.QPS(n))
	}
}

func TestRetrievalHarmoniaOverheadTiny(t *testing.T) {
	with, _ := NewRetrieval(platform.Xilinx, 64, 32, true)
	without, _ := NewRetrieval(platform.Xilinx, 64, 32, false)
	n := int64(1e6)
	qw, qn := with.QPS(n), without.QPS(n)
	if qw > qn {
		t.Error("harmonia QPS should not exceed native")
	}
	if (qn-qw)/qn > 0.01 {
		t.Errorf("QPS penalty %.3f%%, want < 1%%", (qn-qw)/qn*100)
	}
}
