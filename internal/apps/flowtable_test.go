package apps

import (
	"testing"

	"harmonia/internal/net"
)

func ftKey(port uint16) net.FlowKey {
	return net.FlowKey{
		SrcIP: net.IPv4(1, 2, 3, 4), DstIP: net.IPv4(20, 0, 0, 1),
		Proto: net.ProtoTCP, SrcPort: port, DstPort: 80,
	}
}

func TestFlowTableFullCountsAndRefuses(t *testing.T) {
	ft := NewFlowTable(2)
	b := net.IPv4(10, 0, 0, 1)
	if !ft.Pin(ftKey(1), b) || !ft.Pin(ftKey(2), b) {
		t.Fatal("pins under capacity refused")
	}
	if ft.Pin(ftKey(3), b) {
		t.Error("pin accepted beyond capacity")
	}
	if _, ok := ft.Peek(ftKey(3)); ok {
		t.Error("refused pin is present")
	}
	// Established flows keep working at capacity.
	if _, ok := ft.Lookup(ftKey(1)); !ok {
		t.Error("established flow lost at capacity")
	}
	hits, misses, full := ft.Stats()
	if hits != 1 || misses != 3 || full != 1 {
		t.Errorf("stats hits=%d misses=%d tableFull=%d, want 1/3/1", hits, misses, full)
	}
}

func TestFlowTableEvictBackend(t *testing.T) {
	ft := NewFlowTable(100)
	dead, live := net.IPv4(10, 0, 0, 1), net.IPv4(10, 0, 0, 2)
	for port := uint16(1); port <= 10; port++ {
		b := live
		if port%2 == 0 {
			b = dead
		}
		ft.Pin(ftKey(port), b)
	}
	if got := ft.EvictBackend(dead); got != 5 {
		t.Fatalf("evicted %d flows, want 5", got)
	}
	if ft.Len() != 5 {
		t.Errorf("table holds %d flows after eviction, want 5", ft.Len())
	}
	for port := uint16(1); port <= 10; port++ {
		_, ok := ft.Peek(ftKey(port))
		if want := port%2 == 1; ok != want {
			t.Errorf("flow %d present=%v, want %v", port, ok, want)
		}
	}
}

func TestFlowSnapshotRoundTrip(t *testing.T) {
	ft := NewFlowTable(100)
	for port := uint16(1); port <= 7; port++ {
		ft.Pin(ftKey(port), net.IPv4(10, 0, 0, byte(port%3+1)))
	}
	snap := ft.Snapshot()
	if len(snap) != 7 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	// Deterministic export: two captures agree entry for entry.
	again := ft.Snapshot()
	for i := range snap {
		if snap[i] != again[i] {
			t.Fatalf("snapshot order unstable at %d", i)
		}
	}
	words := EncodeFlowSnapshot(snap)
	if want, err := FlowSnapshotWords(words); err != nil || want != len(words) {
		t.Fatalf("declared %d words (err %v), encoded %d", want, err, len(words))
	}
	entries, err := DecodeFlowSnapshot(words)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewFlowTable(100)
	added, dropped := dst.Restore(entries)
	if added != 7 || dropped != 0 {
		t.Fatalf("restore added %d dropped %d", added, dropped)
	}
	for _, e := range snap {
		b, ok := dst.Peek(e.Key)
		if !ok || b != e.Backend {
			t.Errorf("flow %v: got %v/%v, want %v", e.Key, b, ok, e.Backend)
		}
	}
}

func TestFlowSnapshotRestoreRespectsCapacity(t *testing.T) {
	src := NewFlowTable(10)
	for port := uint16(1); port <= 5; port++ {
		src.Pin(ftKey(port), net.IPv4(10, 0, 0, 1))
	}
	dst := NewFlowTable(3)
	added, dropped := dst.Restore(src.Snapshot())
	if added != 3 || dropped != 2 {
		t.Errorf("restore into small table: added %d dropped %d, want 3/2", added, dropped)
	}
}

func TestFlowSnapshotDecodeRejectsCorruption(t *testing.T) {
	words := EncodeFlowSnapshot([]ConnEntry{{Key: ftKey(1), Backend: net.IPv4(10, 0, 0, 1)}})

	if _, err := DecodeFlowSnapshot(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := DecodeFlowSnapshot(words[:len(words)-1]); err == nil {
		t.Error("truncated stream accepted")
	}
	bad := append([]uint32(nil), words...)
	bad[0] = 0xDEAD<<16 | FlowSnapshotVersion
	if _, err := DecodeFlowSnapshot(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]uint32(nil), words...)
	bad[0] = flowSnapMagic<<16 | (FlowSnapshotVersion + 1)
	if _, err := DecodeFlowSnapshot(bad); err == nil {
		t.Error("future version accepted")
	}
}
