package apps

import (
	"testing"

	"harmonia/internal/platform"
	"harmonia/internal/shell"
	"harmonia/internal/toolchain"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog has %d apps, want 5", len(cat))
	}
	for _, name := range Names() {
		info, err := Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%s): %v", name, err)
			continue
		}
		if info.RoleLoC <= 0 || info.RoleRes.IsZero() {
			t.Errorf("%s has empty role description", name)
		}
		if len(info.Categories) == 0 {
			t.Errorf("%s lists no module categories", name)
		}
		r, err := info.Role()
		if err != nil {
			t.Errorf("%s Role(): %v", name, err)
			continue
		}
		if r.Logic.Code.Handcraft != info.RoleLoC {
			t.Errorf("%s role LoC mismatch", name)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) should fail")
	}
}

func TestArchitecturesMatchPaper(t *testing.T) {
	// Table 2's architecture column.
	want := map[string]Architecture{
		"sec-gateway":  BITW,
		"layer4-lb":    BITW,
		"host-network": BITW,
		"retrieval":    LookAside,
		"board-test":   Flexible,
	}
	for name, arch := range want {
		info, _ := Lookup(name)
		if info.Architecture != arch {
			t.Errorf("%s architecture = %s, want %s", name, info.Architecture, arch)
		}
	}
}

func TestAllAppsIntegrateOnDeviceA(t *testing.T) {
	// Every application's role must pass the full toolchain on the HBM
	// device (device A carries every peripheral class).
	for _, name := range Names() {
		info, _ := Lookup(name)
		r, err := info.Role()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := toolchain.Integrate(platform.DeviceA(), r); err != nil {
			t.Errorf("%s on device-a: %v", name, err)
		}
	}
}

func TestShellDominatesDevelopmentWorkload(t *testing.T) {
	// Fig. 3a: the shell is 66-87% of the handcrafted development
	// workload for every application.
	for _, name := range Names() {
		info, _ := Lookup(name)
		unified, err := shell.BuildUnified(platform.DeviceA())
		if err != nil {
			t.Fatal(err)
		}
		tailored, err := unified.Tailor(info.Demands)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		shellLoC := tailored.Code().Handcraft
		frac := float64(shellLoC) / float64(shellLoC+info.RoleLoC)
		if frac < 0.60 || frac > 0.92 {
			t.Errorf("%s shell workload fraction = %.2f, want within 0.66-0.87 band", name, frac)
		}
	}
}
