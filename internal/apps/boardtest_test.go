package apps

import (
	"testing"

	"harmonia/internal/platform"
)

func TestBoardTestAllPass(t *testing.T) {
	for _, vendor := range []platform.Vendor{platform.Xilinx, platform.Intel, platform.InHouse} {
		b, err := NewBoardTest(vendor, true)
		if err != nil {
			t.Fatalf("NewBoardTest(%s): %v", vendor, err)
		}
		results := b.RunAll(0)
		if len(results) != 3 {
			t.Fatalf("%s: %d results", vendor, len(results))
		}
		for _, r := range results {
			if !r.Pass {
				t.Errorf("%s %s failed: %s", vendor, r.Subsystem, r.Detail)
			}
			if r.Elapsed <= 0 {
				t.Errorf("%s %s took no time", vendor, r.Subsystem)
			}
		}
		if !AllPassed(results) {
			t.Errorf("%s: AllPassed false", vendor)
		}
	}
}

func TestAllPassedEdgeCases(t *testing.T) {
	if AllPassed(nil) {
		t.Error("empty results should not pass")
	}
	if AllPassed([]TestResult{{Pass: true}, {Pass: false}}) {
		t.Error("mixed results should not pass")
	}
}

func TestBoardTestSubsystemsCovered(t *testing.T) {
	b, _ := NewBoardTest(platform.Xilinx, true)
	results := b.RunAll(0)
	seen := map[string]bool{}
	for _, r := range results {
		seen[r.Subsystem] = true
	}
	for _, want := range []string{"network", "memory", "dma"} {
		if !seen[want] {
			t.Errorf("subsystem %s not tested", want)
		}
	}
}
