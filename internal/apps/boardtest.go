package apps

import (
	"bytes"
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/shell"
	"harmonia/internal/sim"
)

// BoardTestInfo describes the infrastructure board-test application:
// it exercises every peripheral of a custom card before it enters the
// fleet, so its shell keeps all RBBs (the tailoring floor of Fig. 11).
func BoardTestInfo() Info {
	return Info{
		Name:         "board-test",
		Architecture: Flexible,
		Kind:         "infrastructure",
		Demands: shell.Demands{
			Network: &shell.NetworkDemand{Gbps: 100, Filter: true, Director: true},
			Memory:  []shell.MemoryDemand{{Kind: ip.HBMMem}, {Kind: ip.DDR4Mem}},
			Host:    &shell.HostDemand{Queues: 1024},
		},
		RoleLoC:    16_500,
		RoleRes:    hdl.Resources{LUT: 60_000, REG: 90_000, BRAM: 120},
		Categories: []string{"mac", "pcie-dma", "pcie-phy", "hbm", "ddr4", "mgmt", "uck"},
	}
}

// TestResult is one subsystem's outcome.
type TestResult struct {
	Subsystem string
	Pass      bool
	Detail    string
	Elapsed   sim.Time
}

// BoardTest is the functional tester: network loopback, memory pattern
// verification and DMA echo.
type BoardTest struct {
	Net  *rbb.NetworkRBB
	Mem  *rbb.MemoryRBB
	Host *rbb.HostRBB
}

// NewBoardTest builds the tester on a vendor's RBBs.
func NewBoardTest(vendor platform.Vendor, harmonia bool) (*BoardTest, error) {
	clk := UserClock()
	n, err := rbb.NewNetwork(vendor, ip.Speed100G, clk, UserWidth)
	if err != nil {
		return nil, err
	}
	memKind := ip.DDR4Mem
	if vendor != platform.Intel {
		memKind = ip.HBMMem
	}
	m, err := rbb.NewMemory(vendor, memKind, clk, UserWidth)
	if err != nil {
		return nil, err
	}
	h, err := rbb.NewHost(vendor, 4, 16, ip.SGDMA, clk, UserWidth)
	if err != nil {
		return nil, err
	}
	n.SetNative(!harmonia)
	m.SetNative(!harmonia)
	h.SetNative(!harmonia)
	n.Filter.SetEnabled(false)
	n.Director.AddTenant(0, 0, 8)
	n.Director.SetDefaultTenant(0)
	return &BoardTest{Net: n, Mem: m, Host: h}, nil
}

// testNetwork loops frames through RX and TX, verifying both the
// counters and the wire-level data integrity: every frame is marshalled
// to bytes, looped, parsed back (FCS + IP checksum checked) and
// compared field by field.
func (b *BoardTest) testNetwork(now sim.Time) TestResult {
	const pkts = 64
	t := now
	for i := 0; i < pkts; i++ {
		p := &net.Packet{
			SrcIP: net.IPv4(10, 0, 0, 1), DstIP: net.IPv4(10, 0, 0, 2),
			Proto: net.ProtoTCP, SrcPort: 7, DstPort: 7,
			WireBytes: 512, Seq: uint32(i),
			Payload: []byte{byte(i), byte(i) ^ 0xFF, 0xA5, 0x5A},
		}
		wire, err := p.MarshalFrame()
		if err != nil {
			return TestResult{Subsystem: "network", Pass: false, Detail: err.Error()}
		}
		in, _, ok := b.Net.Ingress(t, p)
		if !ok {
			return TestResult{Subsystem: "network", Pass: false,
				Detail: fmt.Sprintf("packet %d dropped", i), Elapsed: in - now}
		}
		t = b.Net.Egress(in, p)
		back, err := net.ParseFrame(wire)
		if err != nil {
			return TestResult{Subsystem: "network", Pass: false,
				Detail: fmt.Sprintf("frame %d corrupted in loopback: %v", i, err), Elapsed: t - now}
		}
		if back.Seq != p.Seq || back.Flow() != p.Flow() || !bytes.Equal(back.Payload[:4], p.Payload) {
			return TestResult{Subsystem: "network", Pass: false,
				Detail: fmt.Sprintf("frame %d data mismatch", i), Elapsed: t - now}
		}
	}
	rx, tx := b.Net.RxStats(), b.Net.TxStats()
	pass := rx.Units == pkts && tx.Units == pkts && rx.Drops == 0
	return TestResult{Subsystem: "network", Pass: pass,
		Detail:  fmt.Sprintf("rx=%d tx=%d drops=%d, frames verified", rx.Units, tx.Units, rx.Drops),
		Elapsed: t - now}
}

// testMemory writes walking patterns and verifies readback.
func (b *BoardTest) testMemory(now sim.Time) TestResult {
	patterns := [][]byte{
		bytes.Repeat([]byte{0xAA}, 256),
		bytes.Repeat([]byte{0x55}, 256),
		bytes.Repeat([]byte{0xFF, 0x00}, 128),
	}
	t := now
	for i, pat := range patterns {
		addr := int64(i) * 4096
		t = b.Mem.Write(t, addr, pat)
		data, done := b.Mem.Read(t, addr, len(pat))
		t = done
		if !bytes.Equal(data, pat) {
			return TestResult{Subsystem: "memory", Pass: false,
				Detail: fmt.Sprintf("pattern %d mismatch", i), Elapsed: t - now}
		}
	}
	return TestResult{Subsystem: "memory", Pass: true,
		Detail: fmt.Sprintf("%d patterns verified", len(patterns)), Elapsed: t - now}
}

// testDMA echoes buffers through the host path on several queues.
func (b *BoardTest) testDMA(now sim.Time) TestResult {
	t := now
	for q := 0; q < 4; q++ {
		var err error
		t, err = b.Host.Receive(t, q, 4096)
		if err != nil {
			return TestResult{Subsystem: "dma", Pass: false, Detail: err.Error(), Elapsed: t - now}
		}
		t, err = b.Host.Send(t, q, 4096)
		if err != nil {
			return TestResult{Subsystem: "dma", Pass: false, Detail: err.Error(), Elapsed: t - now}
		}
	}
	return TestResult{Subsystem: "dma", Pass: true, Detail: "4 queues echoed", Elapsed: t - now}
}

// RunAll executes every subsystem test and returns the results.
func (b *BoardTest) RunAll(now sim.Time) []TestResult {
	return []TestResult{
		b.testNetwork(now),
		b.testMemory(now),
		b.testDMA(now),
	}
}

// AllPassed reports whether every result passed.
func AllPassed(results []TestResult) bool {
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return len(results) > 0
}
