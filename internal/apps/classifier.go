package apps

import (
	"fmt"
	"sort"

	"harmonia/internal/net"
)

// FlowMask selects which 5-tuple fields a wildcard rule matches on —
// the OVS-style megaflow classification the Host Network offload
// implements alongside its exact-match table.
type FlowMask struct {
	SrcIPBits int // prefix length on the source address
	DstIPBits int // prefix length on the destination address
	Proto     bool
	SrcPort   bool
	DstPort   bool
}

// WildcardRule is one masked rule with a priority (higher wins).
type WildcardRule struct {
	Mask     FlowMask
	Match    net.FlowKey
	Action   FlowAction
	Priority int
}

// maskIP keeps the top bits of an address.
func maskIP(a net.IPAddr, bits int) net.IPAddr {
	if bits >= 32 {
		return a
	}
	if bits <= 0 {
		return net.IPAddr{}
	}
	var out net.IPAddr
	rem := bits
	for i := 0; i < 4; i++ {
		take := rem
		if take > 8 {
			take = 8
		}
		if take > 0 {
			out[i] = a[i] & (byte(0xff) << (8 - take))
		}
		rem -= take
	}
	return out
}

// matches reports whether key falls under the rule.
func (r WildcardRule) matches(key net.FlowKey) bool {
	if maskIP(key.SrcIP, r.Mask.SrcIPBits) != maskIP(r.Match.SrcIP, r.Mask.SrcIPBits) {
		return false
	}
	if maskIP(key.DstIP, r.Mask.DstIPBits) != maskIP(r.Match.DstIP, r.Mask.DstIPBits) {
		return false
	}
	if r.Mask.Proto && key.Proto != r.Match.Proto {
		return false
	}
	if r.Mask.SrcPort && key.SrcPort != r.Match.SrcPort {
		return false
	}
	if r.Mask.DstPort && key.DstPort != r.Match.DstPort {
		return false
	}
	return true
}

// Classifier is the two-stage flow classification pipeline: an
// exact-match cache in front of a priority-ordered wildcard table, the
// shape of a vSwitch fast path. Pinned entries (explicit installs)
// override everything and survive rule changes.
type Classifier struct {
	pinned map[net.FlowKey]FlowAction
	exact  map[net.FlowKey]FlowAction
	rules  []WildcardRule
	// Default applies when nothing matches.
	Default FlowAction
	hits    int64
	misses  int64
}

// NewClassifier returns an empty classifier defaulting to ActionToHost.
func NewClassifier() *Classifier {
	return &Classifier{
		pinned:  make(map[net.FlowKey]FlowAction),
		exact:   make(map[net.FlowKey]FlowAction),
		Default: ActionToHost,
	}
}

// Pin installs an exact-match action that overrides the wildcard table
// and survives rule changes.
func (c *Classifier) Pin(key net.FlowKey, action FlowAction) {
	c.pinned[key] = action
}

// AddRule installs a wildcard rule, keeping rules priority-sorted.
func (c *Classifier) AddRule(r WildcardRule) error {
	if r.Mask.SrcIPBits < 0 || r.Mask.SrcIPBits > 32 || r.Mask.DstIPBits < 0 || r.Mask.DstIPBits > 32 {
		return fmt.Errorf("apps: invalid prefix bits in rule")
	}
	c.rules = append(c.rules, r)
	sort.SliceStable(c.rules, func(i, j int) bool {
		return c.rules[i].Priority > c.rules[j].Priority
	})
	// Rules invalidate the exact-match cache: cached decisions may no
	// longer reflect the rule set.
	c.exact = make(map[net.FlowKey]FlowAction)
	return nil
}

// Classify returns the action for a flow, consulting pinned entries,
// then the exact-match cache, then the wildcard table (populating the
// cache on walks).
func (c *Classifier) Classify(key net.FlowKey) FlowAction {
	if act, ok := c.pinned[key]; ok {
		c.hits++
		return act
	}
	if act, ok := c.exact[key]; ok {
		c.hits++
		return act
	}
	c.misses++
	act := c.Default
	for _, r := range c.rules {
		if r.matches(key) {
			act = r.Action
			break
		}
	}
	c.exact[key] = act
	return act
}

// CacheStats reports exact-match cache hits and wildcard walks.
func (c *Classifier) CacheStats() (hits, misses int64) { return c.hits, c.misses }

// Rules reports the installed rule count.
func (c *Classifier) Rules() int { return len(c.rules) }
