package apps

import (
	"fmt"
	"sort"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/shell"
	"harmonia/internal/sim"
)

// Layer4LBInfo describes the stateful layer-4 load balancer: a
// SmartNIC distributing incoming flows across real servers (the
// Tiara/Maglev-style service of §5.1).
func Layer4LBInfo() Info {
	return Info{
		Name:         "layer4-lb",
		Architecture: BITW,
		Kind:         "network",
		Demands: shell.Demands{
			Network: &shell.NetworkDemand{Gbps: 100, Director: true},
			Memory:  []shell.MemoryDemand{{Kind: ip.HBMMem}},
			Host:    &shell.HostDemand{Bulk: true, Queues: 64},
		},
		RoleLoC:    9_800,
		RoleRes:    hdl.Resources{LUT: 110_000, REG: 170_000, BRAM: 320, URAM: 48},
		Categories: []string{"mac", "pcie-dma", "pcie-phy", "hbm", "mgmt", "uck"},
	}
}

// Layer4LB is the functional load balancer: per-VIP backend pools, a
// stateful connection table pinning established flows, and consistent
// hashing for new flows.
type Layer4LB struct {
	Net   *rbb.NetworkRBB
	clk   *sim.Clock
	pools map[net.IPAddr]*Maglev
	flows *FlowTable
	noVIP int64
}

// NewLayer4LB builds the LB on a vendor's 100G Network RBB.
func NewLayer4LB(vendor platform.Vendor, harmonia bool) (*Layer4LB, error) {
	clk := UserClock()
	n, err := rbb.NewNetwork(vendor, ip.Speed100G, clk, UserWidth)
	if err != nil {
		return nil, err
	}
	n.SetNative(!harmonia)
	n.Filter.SetEnabled(false)
	n.Director.AddTenant(0, 0, 64)
	n.Director.SetDefaultTenant(0)
	return &Layer4LB{
		Net:   n,
		clk:   clk,
		pools: make(map[net.IPAddr]*Maglev),
		flows: NewFlowTable(1 << 20),
	}, nil
}

// AddVIP registers a virtual IP with its backend pool, building the
// Maglev consistent-hashing table for it.
func (lb *Layer4LB) AddVIP(vip net.IPAddr, backends []net.IPAddr) error {
	if len(backends) == 0 {
		return fmt.Errorf("apps: VIP %s has no backends", vip)
	}
	m, err := NewMaglev(backends)
	if err != nil {
		return err
	}
	lb.pools[vip] = m
	return nil
}

// RemoveBackend drains a backend from a VIP's pool, rebuilding the
// Maglev table; established flows keep their pinned backend
// (statefulness, so draining connections finish on the old server) and
// most new-flow mappings stay put (consistency). For a backend that
// *failed* use FailBackend instead: a dead server's pinned flows must
// be evicted, not drained.
func (lb *Layer4LB) RemoveBackend(vip, backend net.IPAddr) error {
	pool, ok := lb.pools[vip]
	if !ok {
		return fmt.Errorf("apps: unknown VIP %s", vip)
	}
	var out []net.IPAddr
	for _, b := range pool.Backends() {
		if b != backend {
			out = append(out, b)
		}
	}
	if len(out) == len(pool.Backends()) {
		return fmt.Errorf("apps: backend %s not in pool of %s", backend, vip)
	}
	m, err := NewMaglev(out)
	if err != nil {
		return err
	}
	lb.pools[vip] = m
	return nil
}

// FailBackend removes a dead backend from a VIP's pool and evicts its
// connection-table entries, so its flows re-hash onto live servers
// instead of blackholing on pins to a corpse. It reports how many
// established flows were evicted.
func (lb *Layer4LB) FailBackend(vip, backend net.IPAddr) (evicted int, err error) {
	if err := lb.RemoveBackend(vip, backend); err != nil {
		return 0, err
	}
	return lb.flows.EvictBackend(backend), nil
}

// Process load-balances one packet: ingress, connection-table lookup,
// backend selection for new flows, egress toward the chosen backend.
func (lb *Layer4LB) Process(now sim.Time, p *net.Packet) (backend net.IPAddr, done sim.Time, ok bool) {
	in, _, admitted := lb.Net.Ingress(now, p)
	if !admitted {
		return net.IPAddr{}, in, false
	}
	key := p.Flow()
	// Connection-table lookup: two role cycles (hash + table read).
	t := in + lb.clk.CyclesTime(2)
	if b, est := lb.flows.Lookup(key); est {
		return b, lb.Net.Egress(t, p), true
	}
	pool, has := lb.pools[p.DstIP]
	if !has {
		lb.noVIP++
		return net.IPAddr{}, t, false
	}
	b := pool.Lookup(key)
	lb.flows.Pin(key, b)
	// New-flow insert costs three extra cycles (pool walk + insert).
	return b, lb.Net.Egress(t+lb.clk.CyclesTime(3), p), true
}

// Connections reports the established flow count.
func (lb *Layer4LB) Connections() int { return lb.flows.Len() }

// Flows exposes the connection table — the migratable state a fleet
// control plane snapshots and replays across devices.
func (lb *Layer4LB) Flows() *FlowTable { return lb.flows }

// LBStats is the load balancer's counter set.
type LBStats struct {
	// Hits and Misses count connection-table lookups against
	// established flows vs new-flow pins; NoVIP counts packets dropped
	// for an unknown VIP; TableFull counts pins refused at capacity —
	// flows that silently lost stickiness.
	Hits, Misses, NoVIP, TableFull int64
}

// Stats reports the table and drop counters.
func (lb *Layer4LB) Stats() LBStats {
	hits, misses, full := lb.flows.Stats()
	return LBStats{Hits: hits, Misses: misses, NoVIP: lb.noVIP, TableFull: full}
}

// Backends lists a VIP's current pool, sorted for stable output.
func (lb *Layer4LB) Backends(vip net.IPAddr) []net.IPAddr {
	pool, ok := lb.pools[vip]
	if !ok {
		return nil
	}
	out := pool.Backends()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
