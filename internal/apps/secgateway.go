package apps

import (
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/shell"
	"harmonia/internal/sim"
)

// SecGatewayInfo describes the DCI access-control gateway: a
// bump-in-the-wire security appliance filtering cross-network malicious
// traffic against deployed policies.
func SecGatewayInfo() Info {
	return Info{
		Name:         "sec-gateway",
		Architecture: BITW,
		Kind:         "security",
		Demands: shell.Demands{
			Network: &shell.NetworkDemand{Gbps: 100, Filter: true},
			Memory:  []shell.MemoryDemand{{Kind: ip.DDR4Mem}},
			Host:    &shell.HostDemand{Bulk: true, Queues: 16},
		},
		RoleLoC:    5_200,
		RoleRes:    hdl.Resources{LUT: 78_000, REG: 120_000, BRAM: 180, URAM: 16},
		Categories: []string{"mac", "pcie-dma", "pcie-phy", "ddr4", "mgmt", "uck"},
	}
}

// PolicyAction is what a matching rule does.
type PolicyAction int

// Policy actions.
const (
	Deny PolicyAction = iota
	Allow
)

// Policy is one access-control rule: a source prefix and an action.
type Policy struct {
	SrcPrefix net.IPAddr
	PrefixLen int
	Action    PolicyAction
}

// matches reports whether ip falls in the rule's prefix.
func (p Policy) matches(ip net.IPAddr) bool {
	if p.PrefixLen <= 0 {
		return true
	}
	bits := p.PrefixLen
	for i := 0; i < 4 && bits > 0; i++ {
		take := bits
		if take > 8 {
			take = 8
		}
		mask := byte(0xff) << (8 - take)
		if ip[i]&mask != p.SrcPrefix[i]&mask {
			return false
		}
		bits -= take
	}
	return true
}

// SecGateway is the functional gateway: ingress through the Network
// RBB, longest-prefix policy check in role logic, egress back to the
// wire for allowed traffic.
type SecGateway struct {
	Net      *rbb.NetworkRBB
	policies []Policy
	// policyCycles models the role's per-packet pipeline cost.
	clk     *sim.Clock
	allowed int64
	denied  int64
}

// NewSecGateway builds the gateway on a vendor's 100G Network RBB.
// When harmonia is false the datapath runs in native mode (no wrapper
// pipeline), the Fig. 17a baseline.
func NewSecGateway(vendor platform.Vendor, harmonia bool) (*SecGateway, error) {
	clk := UserClock()
	n, err := rbb.NewNetwork(vendor, ip.Speed100G, clk, UserWidth)
	if err != nil {
		return nil, err
	}
	n.SetNative(!harmonia)
	// The gateway inspects all traffic crossing it.
	n.Filter.SetEnabled(false)
	n.Director.AddTenant(0, 0, 16)
	n.Director.SetDefaultTenant(0)
	return &SecGateway{Net: n, clk: clk}, nil
}

// DeployPolicy appends a rule; rules evaluate in order, first match
// wins, default allow.
func (g *SecGateway) DeployPolicy(p Policy) error {
	if p.PrefixLen < 0 || p.PrefixLen > 32 {
		return fmt.Errorf("apps: invalid prefix length %d", p.PrefixLen)
	}
	g.policies = append(g.policies, p)
	return nil
}

// decide evaluates the policy chain.
func (g *SecGateway) decide(p *net.Packet) PolicyAction {
	for _, rule := range g.policies {
		if rule.matches(p.SrcIP) {
			return rule.Action
		}
	}
	return Allow
}

// Process carries one packet through the gateway. Allowed packets exit
// on the wire; denied packets are dropped after inspection.
func (g *SecGateway) Process(now sim.Time, p *net.Packet) (allowed bool, done sim.Time) {
	in, _, ok := g.Net.Ingress(now, p)
	if !ok {
		g.denied++
		return false, in
	}
	// Role pipeline: policy lookup, a few cycles.
	decide := in + g.clk.CyclesTime(4)
	if g.decide(p) == Deny {
		g.denied++
		return false, decide
	}
	g.allowed++
	return true, g.Net.Egress(decide, p)
}

// Allowed and Denied report policy outcomes.
func (g *SecGateway) Allowed() int64 { return g.allowed }

// Denied reports dropped packet count.
func (g *SecGateway) Denied() int64 { return g.denied }
