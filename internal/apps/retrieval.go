package apps

import (
	"container/heap"
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/shell"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

// RetrievalInfo describes the embedding-retrieval accelerator: a
// look-aside engine computing similarity scores and top-K selection
// over a corpus in device memory (FAERY-style, §5.1).
func RetrievalInfo() Info {
	return Info{
		Name:         "retrieval",
		Architecture: LookAside,
		Kind:         "computation",
		Demands: shell.Demands{
			Memory: []shell.MemoryDemand{{Kind: ip.HBMMem}, {Kind: ip.DDR4Mem}},
			Host:   &shell.HostDemand{Queues: 256},
		},
		RoleLoC:    9_300,
		RoleRes:    hdl.Resources{LUT: 180_000, REG: 260_000, BRAM: 350, URAM: 80, DSP: 2_048},
		Categories: []string{"pcie-dma", "pcie-phy", "hbm", "ddr4", "mgmt", "uck"},
	}
}

// Retrieval is the functional engine. The corpus lives in the Memory
// RBB's device; queries stream the corpus, score rows with dot
// products in DSP lanes, and keep the top K in an on-chip heap.
type Retrieval struct {
	Mem  *rbb.MemoryRBB
	Host *rbb.HostRBB
	clk  *sim.Clock
	dim  int
	// lanes is the DSP parallelism: elements scored per cycle.
	lanes   int
	corpus  []workload.Embedding
	queries int64
}

// NewRetrieval builds the engine with the given embedding dimension and
// DSP lane count.
func NewRetrieval(vendor platform.Vendor, dim, lanes int, harmonia bool) (*Retrieval, error) {
	if dim <= 0 || lanes <= 0 {
		return nil, fmt.Errorf("apps: invalid retrieval config dim=%d lanes=%d", dim, lanes)
	}
	clk := UserClock()
	m, err := rbb.NewMemory(vendor, ip.HBMMem, clk, UserWidth)
	if err != nil {
		return nil, err
	}
	h, err := rbb.NewHost(vendor, 4, 8, ip.SGDMA, clk, UserWidth)
	if err != nil {
		return nil, err
	}
	m.SetNative(!harmonia)
	h.SetNative(!harmonia)
	return &Retrieval{Mem: m, Host: h, clk: clk, dim: dim, lanes: lanes}, nil
}

// RowBytes reports the stored size of one embedding row.
func (r *Retrieval) RowBytes() int { return 4 * r.dim }

// LoadCorpus installs the corpus (functionally, into the role's view;
// the memory device holds the bytes for timing).
func (r *Retrieval) LoadCorpus(now sim.Time, corpus []workload.Embedding) (done sim.Time, err error) {
	for i := range corpus {
		if len(corpus[i].Vec) != r.dim {
			return now, fmt.Errorf("apps: corpus row %d has dim %d, want %d", i, len(corpus[i].Vec), r.dim)
		}
	}
	r.corpus = corpus
	done = now
	row := make([]byte, r.RowBytes())
	for i := range corpus {
		done = r.Mem.Write(done, int64(i)*int64(r.RowBytes()), row)
	}
	return done, nil
}

// scored pairs an id with its similarity for the top-K heap.
type scored struct {
	id    uint32
	score float32
}

// minHeap keeps the K best scores with the worst on top.
type minHeap []scored

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i].score < h[j].score }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(scored)) }
func (h *minHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
func (h minHeap) worst() float32 { return h[0].score }

// Query scores the corpus against q and returns the top-K ids (best
// first) plus the completion time. Timing overlaps memory streaming
// with compute: the engine is bound by the slower of corpus bandwidth
// and DSP throughput, plus the host round trip.
func (r *Retrieval) Query(now sim.Time, q []float32, k int) (ids []uint32, done sim.Time, err error) {
	if len(q) != r.dim {
		return nil, now, fmt.Errorf("apps: query dim %d, want %d", len(q), r.dim)
	}
	if k <= 0 || len(r.corpus) == 0 {
		return nil, now, fmt.Errorf("apps: empty corpus or k=%d", k)
	}
	// Functional scoring with a K-element min-heap (the top-K selection
	// unit).
	h := make(minHeap, 0, k)
	for _, row := range r.corpus {
		s := workload.Dot(q, row.Vec)
		if len(h) < k {
			heap.Push(&h, scored{id: row.ID, score: s})
		} else if s > h.worst() {
			h[0] = scored{id: row.ID, score: s}
			heap.Fix(&h, 0)
		}
	}
	ids = make([]uint32, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		ids[i] = heap.Pop(&h).(scored).id
	}

	// Timing: query download, corpus streaming vs compute, result
	// upload.
	qIn, err := r.Host.Receive(now, 0, r.RowBytes())
	if err != nil {
		return nil, now, err
	}
	done = qIn + r.scanTime(int64(len(r.corpus)))
	done, err = r.Host.Send(done, 0, 8*k)
	if err != nil {
		return nil, now, err
	}
	r.queries++
	return ids, done, nil
}

// scanTime reports the corpus-scan duration for n rows: the max of the
// memory-stream time and the DSP compute time (fully overlapped
// pipeline), plus the wrapper's fixed latency.
func (r *Retrieval) scanTime(n int64) sim.Time {
	rowBytes := int64(r.RowBytes())
	memGbps := r.Mem.Spec().PeakGbps * 0.85 // stream efficiency
	streamNs := float64(n*rowBytes*8) / memGbps
	computeCycles := n * int64(r.dim) / int64(r.lanes)
	computeNs := float64(r.clk.CyclesTime(computeCycles)) / float64(sim.Nanosecond)
	ns := streamNs
	if computeNs > ns {
		ns = computeNs
	}
	return sim.Time(ns*float64(sim.Nanosecond)) + r.Mem.WrapperLatency()
}

// QPS reports the analytic query rate for a corpus of n rows — used for
// the large-corpus sweep of Fig. 17d, where materializing the corpus is
// infeasible.
func (r *Retrieval) QPS(n int64) float64 {
	t := r.scanTime(n) + 2*sim.Microsecond // host round trip
	if t <= 0 {
		return 0
	}
	return 1 / t.Seconds()
}

// Queries reports the executed query count.
func (r *Retrieval) Queries() int64 { return r.queries }
