package apps

import (
	"testing"

	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

var (
	vip      = net.IPv4(20, 0, 0, 1)
	backends = []net.IPAddr{
		net.IPv4(10, 0, 0, 1), net.IPv4(10, 0, 0, 2),
		net.IPv4(10, 0, 0, 3), net.IPv4(10, 0, 0, 4),
	}
)

func newLB(t *testing.T) *Layer4LB {
	t.Helper()
	lb, err := NewLayer4LB(platform.Xilinx, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.AddVIP(vip, backends); err != nil {
		t.Fatal(err)
	}
	return lb
}

func lbPacket(port uint16) *net.Packet {
	return &net.Packet{
		SrcIP: net.IPv4(1, 2, 3, 4), DstIP: vip,
		Proto: net.ProtoTCP, SrcPort: port, DstPort: 80,
		WireBytes: 256,
	}
}

func TestLBStatefulPinning(t *testing.T) {
	lb := newLB(t)
	b1, _, ok := lb.Process(0, lbPacket(5000))
	if !ok {
		t.Fatal("flow not balanced")
	}
	// Same flow always hits the same backend.
	for i := 0; i < 10; i++ {
		b, _, ok := lb.Process(0, lbPacket(5000))
		if !ok || b != b1 {
			t.Fatalf("flow moved from %v to %v", b1, b)
		}
	}
	st := lb.Stats()
	if st.Misses != 1 || st.Hits != 10 {
		t.Errorf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if lb.Connections() != 1 {
		t.Errorf("connections = %d", lb.Connections())
	}
}

func TestLBSurvivesBackendRemoval(t *testing.T) {
	// Statefulness: established flows keep their backend when the pool
	// changes; only new flows see the new pool.
	lb := newLB(t)
	pinned, _, _ := lb.Process(0, lbPacket(6000))
	if err := lb.RemoveBackend(vip, pinned); err != nil {
		t.Fatal(err)
	}
	again, _, ok := lb.Process(0, lbPacket(6000))
	if !ok || again != pinned {
		t.Error("established flow rebalanced after pool change")
	}
	// New flows never land on the removed backend.
	for port := uint16(7000); port < 7200; port++ {
		b, _, ok := lb.Process(0, lbPacket(port))
		if ok && b == pinned {
			t.Fatal("new flow landed on drained backend")
		}
	}
	if err := lb.RemoveBackend(vip, net.IPv4(9, 9, 9, 9)); err == nil {
		t.Error("removing unknown backend should fail")
	}
	if err := lb.RemoveBackend(net.IPv4(9, 9, 9, 9), pinned); err == nil {
		t.Error("unknown VIP should fail")
	}
}

func TestLBFailBackendEvictsPinnedFlows(t *testing.T) {
	// Regression: RemoveBackend leaves flows pinned to the removed
	// backend (correct for planned drains), but a *failed* backend's
	// pins would blackhole forever. FailBackend must evict them.
	lb := newLB(t)
	dead, _, _ := lb.Process(0, lbPacket(6000))
	var pinnedToDead []uint16
	for port := uint16(6000); port < 6100; port++ {
		if b, _, _ := lb.Process(0, lbPacket(port)); b == dead {
			pinnedToDead = append(pinnedToDead, port)
		}
	}
	before := lb.Connections()
	evicted, err := lb.FailBackend(vip, dead)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != len(pinnedToDead) {
		t.Errorf("evicted %d flows, want %d", evicted, len(pinnedToDead))
	}
	if lb.Connections() != before-evicted {
		t.Errorf("connections %d after eviction, want %d", lb.Connections(), before-evicted)
	}
	// The evicted flows re-hash onto live servers, never the corpse.
	for _, port := range pinnedToDead {
		b, _, ok := lb.Process(0, lbPacket(port))
		if !ok || b == dead {
			t.Fatalf("flow %d still lands on failed backend %v", port, b)
		}
	}
	if _, err := lb.FailBackend(vip, net.IPv4(9, 9, 9, 9)); err == nil {
		t.Error("failing unknown backend should error")
	}
}

func TestLBFullTableCountsLostStickiness(t *testing.T) {
	// Regression: a full connection table silently skipped the insert,
	// so new flows lost stickiness with no signal. The tableFull
	// counter is that signal, and service must continue.
	lb := newLB(t)
	lb.Flows().SetMax(4)
	for port := uint16(1000); port < 1010; port++ {
		if _, _, ok := lb.Process(0, lbPacket(port)); !ok {
			t.Fatal("packet dropped at full table")
		}
	}
	st := lb.Stats()
	if st.TableFull != 6 {
		t.Errorf("tableFull = %d, want 6 (10 new flows into 4 slots)", st.TableFull)
	}
	if lb.Connections() != 4 {
		t.Errorf("connections = %d, want capacity 4", lb.Connections())
	}
	// Established flows keep their pins and count hits.
	b1, _, _ := lb.Process(0, lbPacket(1000))
	b2, _, _ := lb.Process(0, lbPacket(1000))
	if b1 != b2 {
		t.Error("established flow moved while table full")
	}
}

func TestLBSpreadsFlows(t *testing.T) {
	lb := newLB(t)
	counts := map[net.IPAddr]int{}
	for port := uint16(1000); port < 2000; port++ {
		b, _, ok := lb.Process(0, lbPacket(port))
		if !ok {
			t.Fatal("flow not balanced")
		}
		counts[b]++
	}
	if len(counts) != len(backends) {
		t.Fatalf("flows reached %d backends, want %d", len(counts), len(backends))
	}
	for b, c := range counts {
		if c < 150 || c > 350 {
			t.Errorf("backend %v got %d of 1000 flows, want roughly even", b, c)
		}
	}
}

func TestLBUnknownVIPDrops(t *testing.T) {
	lb := newLB(t)
	p := lbPacket(1)
	p.DstIP = net.IPv4(99, 99, 99, 99)
	if _, _, ok := lb.Process(0, p); ok {
		t.Error("packet to unknown VIP balanced")
	}
	if st := lb.Stats(); st.NoVIP != 1 {
		t.Errorf("noVIP = %d", st.NoVIP)
	}
	if err := lb.AddVIP(net.IPv4(20, 0, 0, 2), nil); err == nil {
		t.Error("empty pool accepted")
	}
}

func TestLBThroughput(t *testing.T) {
	lb := newLB(t)
	pkts, _ := workload.Packets(workload.PacketConfig{
		Count: 2000, Size: 512, Flows: 64, VIPs: []net.IPAddr{vip}, Seed: 3,
	})
	var done sim.Time
	for _, p := range pkts {
		_, d, ok := lb.Process(0, p)
		if !ok {
			t.Fatal("packet dropped")
		}
		done = d
	}
	gbps := float64(2000*512*8) / done.Nanoseconds()
	if eff := net.EffectiveGbps(100, 512); gbps < eff*0.9 {
		t.Errorf("sustained %.1f Gbps at 512B, want near %.1f", gbps, eff)
	}
	if lb.Connections() > 64 {
		t.Errorf("connections = %d, want <= flow count", lb.Connections())
	}
}

func TestLBBackendsSorted(t *testing.T) {
	lb := newLB(t)
	pool := lb.Backends(vip)
	if len(pool) != 4 {
		t.Fatalf("pool size %d", len(pool))
	}
	for i := 1; i < len(pool); i++ {
		if pool[i-1].String() > pool[i].String() {
			t.Error("pool not sorted")
		}
	}
}

func TestLBHeavyHitterHitRate(t *testing.T) {
	// Under Zipf traffic the connection table absorbs almost all
	// packets: hits vastly outnumber insertions.
	lb := newLB(t)
	flows, err := workload.ZipfFlows(5000, 512, 1.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		p := lbPacket(uint16(1000 + f))
		if _, _, ok := lb.Process(0, p); !ok {
			t.Fatal("packet dropped")
		}
	}
	st := lb.Stats()
	if st.Hits+st.Misses != 5000 {
		t.Fatalf("hits+misses = %d", st.Hits+st.Misses)
	}
	hitRate := float64(st.Hits) / 5000
	if hitRate < 0.85 {
		t.Errorf("connection-table hit rate %.2f under zipf traffic, want > 0.85", hitRate)
	}
	if lb.Connections() != int(st.Misses) {
		t.Errorf("connections %d != misses %d", lb.Connections(), st.Misses)
	}
}
