package apps

import (
	"fmt"

	"harmonia/internal/net"
)

// maglevTableSize is the lookup table size (prime, per the Maglev
// paper; production uses 65537, tests are fine with smaller primes).
const maglevTableSize = 2039

// maglevHash hashes a backend address with a salt.
func maglevHash(b net.IPAddr, salt uint64) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037) ^ salt*0x9e3779b97f4a7c15
	for _, oct := range b {
		h ^= uint64(oct)
		h *= prime64
	}
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// Maglev is the consistent-hashing lookup table of Eisenbud et al. —
// the connection-scheduler the paper's Layer-4 LB lineage (Maglev,
// Tiara) builds on. Every backend fills ~1/N of the table, and pool
// changes disturb a minimal fraction of entries.
type Maglev struct {
	backends []net.IPAddr
	table    []int32
}

// NewMaglev builds the lookup table for a backend pool.
func NewMaglev(backends []net.IPAddr) (*Maglev, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("apps: maglev needs at least one backend")
	}
	if len(backends) > maglevTableSize {
		return nil, fmt.Errorf("apps: %d backends exceed table size %d", len(backends), maglevTableSize)
	}
	m := &Maglev{
		backends: append([]net.IPAddr(nil), backends...),
		table:    make([]int32, maglevTableSize),
	}
	m.populate()
	return m, nil
}

// populate fills the table with each backend's preference permutation,
// exactly as the Maglev paper describes.
func (m *Maglev) populate() {
	n := len(m.backends)
	offsets := make([]uint64, n)
	skips := make([]uint64, n)
	next := make([]uint64, n)
	for i, b := range m.backends {
		offsets[i] = maglevHash(b, 1) % maglevTableSize
		skips[i] = maglevHash(b, 2)%(maglevTableSize-1) + 1
	}
	for i := range m.table {
		m.table[i] = -1
	}
	filled := 0
	for filled < maglevTableSize {
		for i := 0; i < n && filled < maglevTableSize; i++ {
			// Walk backend i's permutation to its next free slot.
			for {
				slot := (offsets[i] + next[i]*skips[i]) % maglevTableSize
				next[i]++
				if m.table[slot] < 0 {
					m.table[slot] = int32(i)
					filled++
					break
				}
			}
		}
	}
}

// Lookup maps a flow to its backend.
func (m *Maglev) Lookup(key net.FlowKey) net.IPAddr {
	return m.backends[m.table[key.Hash()%maglevTableSize]]
}

// Backends returns the pool the table was built over.
func (m *Maglev) Backends() []net.IPAddr {
	return append([]net.IPAddr(nil), m.backends...)
}

// Disruption reports the fraction of table entries that map to
// different backends under another table — the consistency metric.
func (m *Maglev) Disruption(o *Maglev) float64 {
	changed := 0
	for i := range m.table {
		if m.backends[m.table[i]] != o.backends[o.table[i]] {
			changed++
		}
	}
	return float64(changed) / float64(len(m.table))
}

// Share reports the fraction of table entries owned by a backend.
func (m *Maglev) Share(b net.IPAddr) float64 {
	idx := int32(-1)
	for i, cand := range m.backends {
		if cand == b {
			idx = int32(i)
		}
	}
	if idx < 0 {
		return 0
	}
	n := 0
	for _, e := range m.table {
		if e == idx {
			n++
		}
	}
	return float64(n) / float64(len(m.table))
}
