package apps

import (
	"testing"

	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
)

func hnPacket(port uint16, size int) *net.Packet {
	return &net.Packet{
		SrcIP: net.IPv4(10, 0, 0, 1), DstIP: net.IPv4(10, 0, 0, 2),
		Proto: net.ProtoTCP, SrcPort: port, DstPort: 8080,
		WireBytes: size,
	}
}

func newHN(t *testing.T) *HostNetwork {
	t.Helper()
	hn, err := NewHostNetwork(platform.Xilinx, 4, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	return hn
}

func TestHostNetworkDefaultToHost(t *testing.T) {
	hn := newHN(t)
	csum, q, done, act := hn.Offload(0, hnPacket(100, 512))
	if act != ActionToHost {
		t.Fatalf("action = %v", act)
	}
	if q < 0 || q >= 512 {
		t.Errorf("queue %d out of tenant range", q)
	}
	if csum == 0 {
		t.Error("checksum not computed")
	}
	if done <= 0 {
		t.Error("offload took no time")
	}
	toHost, _, _, csums := hn.Stats()
	if toHost != 1 || csums != 1 {
		t.Errorf("stats: toHost=%d csums=%d", toHost, csums)
	}
}

func TestHostNetworkFlowActions(t *testing.T) {
	hn := newHN(t)
	drop := hnPacket(200, 256)
	fwd := hnPacket(300, 256)
	hn.InstallFlow(drop.Flow(), ActionDrop)
	hn.InstallFlow(fwd.Flow(), ActionForward)
	if _, _, _, act := hn.Offload(0, drop); act != ActionDrop {
		t.Errorf("drop rule applied %v", act)
	}
	if _, _, _, act := hn.Offload(0, fwd); act != ActionForward {
		t.Errorf("forward rule applied %v", act)
	}
	_, dropped, hairpinned, _ := hn.Stats()
	if dropped != 1 || hairpinned != 1 {
		t.Errorf("dropped=%d hairpinned=%d", dropped, hairpinned)
	}
}

func TestHostNetworkChecksumMatchesSoftware(t *testing.T) {
	hn := newHN(t)
	p := hnPacket(42, 128)
	p.Payload = []byte{1, 2, 3, 4, 5, 6, 7, 8}
	csum, _, _, _ := hn.Offload(0, p)
	// Recompute in software over the same pseudo-header material.
	var hdr [12]byte
	copy(hdr[0:4], p.SrcIP[:])
	copy(hdr[4:8], p.DstIP[:])
	hdr[9] = p.Proto
	hdr[10] = byte(p.WireBytes >> 8)
	hdr[11] = byte(p.WireBytes)
	want := net.Checksum(append(hdr[:], p.Payload...))
	if csum != want {
		t.Errorf("offloaded csum %#04x, want %#04x", csum, want)
	}
}

func TestHostNetworkSameFlowSameQueue(t *testing.T) {
	hn := newHN(t)
	_, q1, _, _ := hn.Offload(0, hnPacket(77, 256))
	_, q2, _, _ := hn.Offload(0, hnPacket(77, 256))
	if q1 != q2 {
		t.Error("same flow landed in different host queues")
	}
}

func TestHostNetworkLatencyScalesWithSize(t *testing.T) {
	// Larger packets pay more checksum cycles and more DMA time.
	hn := newHN(t)
	_, _, small, _ := hn.Offload(0, hnPacket(1, 64))
	hn2 := newHN(t)
	_, _, large, _ := hn2.Offload(0, hnPacket(1, 1024))
	if large <= small {
		t.Errorf("1024B offload %v not slower than 64B %v", large, small)
	}
	if large > 10*sim.Microsecond {
		t.Errorf("offload latency %v unreasonably large", large)
	}
}
