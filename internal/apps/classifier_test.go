package apps

import (
	"testing"

	"harmonia/internal/net"
)

func flowKey(src net.IPAddr, sp uint16) net.FlowKey {
	return net.FlowKey{
		SrcIP: src, DstIP: net.IPv4(10, 0, 0, 9),
		Proto: net.ProtoTCP, SrcPort: sp, DstPort: 8080,
	}
}

func TestClassifierDefault(t *testing.T) {
	c := NewClassifier()
	if act := c.Classify(flowKey(net.IPv4(1, 1, 1, 1), 1)); act != ActionToHost {
		t.Errorf("default action = %v", act)
	}
	if c.Rules() != 0 {
		t.Error("fresh classifier has rules")
	}
}

func TestClassifierWildcardPriority(t *testing.T) {
	c := NewClassifier()
	// Low priority: drop everything from 192.168/16.
	if err := c.AddRule(WildcardRule{
		Mask:     FlowMask{SrcIPBits: 16},
		Match:    net.FlowKey{SrcIP: net.IPv4(192, 168, 0, 0)},
		Action:   ActionDrop,
		Priority: 10,
	}); err != nil {
		t.Fatal(err)
	}
	// High priority: hairpin 192.168.1/24.
	if err := c.AddRule(WildcardRule{
		Mask:     FlowMask{SrcIPBits: 24},
		Match:    net.FlowKey{SrcIP: net.IPv4(192, 168, 1, 0)},
		Action:   ActionForward,
		Priority: 20,
	}); err != nil {
		t.Fatal(err)
	}
	if act := c.Classify(flowKey(net.IPv4(192, 168, 1, 5), 1)); act != ActionForward {
		t.Errorf("high-priority rule lost: %v", act)
	}
	if act := c.Classify(flowKey(net.IPv4(192, 168, 2, 5), 1)); act != ActionDrop {
		t.Errorf("masked rule missed: %v", act)
	}
	if act := c.Classify(flowKey(net.IPv4(8, 8, 8, 8), 1)); act != ActionToHost {
		t.Errorf("unmatched flow = %v", act)
	}
}

func TestClassifierPortAndProtoMasks(t *testing.T) {
	c := NewClassifier()
	c.AddRule(WildcardRule{
		Mask:     FlowMask{DstPort: true},
		Match:    net.FlowKey{DstPort: 8080},
		Action:   ActionDrop,
		Priority: 5,
	})
	if act := c.Classify(flowKey(net.IPv4(5, 5, 5, 5), 9)); act != ActionDrop {
		t.Error("dst-port rule missed")
	}
	other := flowKey(net.IPv4(5, 5, 5, 5), 9)
	other.DstPort = 443
	if act := c.Classify(other); act != ActionToHost {
		t.Error("dst-port rule overmatched")
	}
	c2 := NewClassifier()
	c2.AddRule(WildcardRule{
		Mask:     FlowMask{Proto: true, SrcPort: true},
		Match:    net.FlowKey{Proto: net.ProtoUDP, SrcPort: 53},
		Action:   ActionForward,
		Priority: 5,
	})
	k := flowKey(net.IPv4(5, 5, 5, 5), 53)
	k.Proto = net.ProtoUDP
	if act := c2.Classify(k); act != ActionForward {
		t.Error("proto+port rule missed")
	}
}

func TestClassifierExactCache(t *testing.T) {
	c := NewClassifier()
	c.AddRule(WildcardRule{
		Mask:     FlowMask{SrcIPBits: 8},
		Match:    net.FlowKey{SrcIP: net.IPv4(7, 0, 0, 0)},
		Action:   ActionDrop,
		Priority: 1,
	})
	k := flowKey(net.IPv4(7, 1, 2, 3), 4)
	c.Classify(k) // wildcard walk, caches
	c.Classify(k) // cache hit
	hits, misses := c.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d/%d, want 1/1", hits, misses)
	}
	// Installing a rule invalidates the cache.
	c.AddRule(WildcardRule{Priority: 99, Action: ActionForward})
	if act := c.Classify(k); act != ActionForward {
		t.Errorf("stale cache served after rule change: %v", act)
	}
}

func TestClassifierPinnedSurvivesRules(t *testing.T) {
	c := NewClassifier()
	k := flowKey(net.IPv4(9, 9, 9, 9), 1)
	c.Pin(k, ActionDrop)
	// A catch-all forward rule does not override the pin.
	c.AddRule(WildcardRule{Priority: 100, Action: ActionForward})
	if act := c.Classify(k); act != ActionDrop {
		t.Errorf("pinned entry lost: %v", act)
	}
}

func TestClassifierValidation(t *testing.T) {
	c := NewClassifier()
	if err := c.AddRule(WildcardRule{Mask: FlowMask{SrcIPBits: 40}}); err == nil {
		t.Error("invalid prefix accepted")
	}
}

func TestHostNetworkWildcardIntegration(t *testing.T) {
	hn := newHN(t)
	// Drop everything from 10.66/16 regardless of port.
	if err := hn.InstallWildcard(WildcardRule{
		Mask:     FlowMask{SrcIPBits: 16},
		Match:    net.FlowKey{SrcIP: net.IPv4(10, 66, 0, 0)},
		Action:   ActionDrop,
		Priority: 50,
	}); err != nil {
		t.Fatal(err)
	}
	bad := hnPacket(1234, 256)
	bad.SrcIP = net.IPv4(10, 66, 3, 4)
	if _, _, _, act := hn.Offload(0, bad); act != ActionDrop {
		t.Errorf("wildcard drop missed: %v", act)
	}
	good := hnPacket(1234, 256)
	if _, _, _, act := hn.Offload(0, good); act != ActionToHost {
		t.Errorf("benign flow = %v", act)
	}
}

func TestMaskIP(t *testing.T) {
	a := net.IPv4(192, 168, 31, 7)
	if maskIP(a, 32) != a {
		t.Error("full mask changed address")
	}
	if maskIP(a, 0) != (net.IPAddr{}) {
		t.Error("zero mask nonzero")
	}
	if maskIP(a, 16) != net.IPv4(192, 168, 0, 0) {
		t.Errorf("mask/16 = %v", maskIP(a, 16))
	}
	if maskIP(a, 20) != net.IPv4(192, 168, 16, 0) {
		t.Errorf("mask/20 = %v", maskIP(a, 20))
	}
}
