package apps

import (
	"testing"

	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

func gwPacket(src net.IPAddr, size int) *net.Packet {
	return &net.Packet{
		SrcIP: src, DstIP: net.IPv4(10, 9, 0, 1),
		Proto: net.ProtoTCP, SrcPort: 1234, DstPort: 443,
		WireBytes: size,
	}
}

func TestSecGatewayPolicyEnforcement(t *testing.T) {
	g, err := NewSecGateway(platform.Xilinx, true)
	if err != nil {
		t.Fatal(err)
	}
	// Deny 192.168.0.0/16, allow everything else.
	if err := g.DeployPolicy(Policy{SrcPrefix: net.IPv4(192, 168, 0, 0), PrefixLen: 16, Action: Deny}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := g.Process(0, gwPacket(net.IPv4(192, 168, 5, 5), 256)); ok {
		t.Error("malicious source admitted")
	}
	if ok, _ := g.Process(0, gwPacket(net.IPv4(8, 8, 8, 8), 256)); !ok {
		t.Error("benign source blocked")
	}
	if g.Allowed() != 1 || g.Denied() != 1 {
		t.Errorf("allowed=%d denied=%d", g.Allowed(), g.Denied())
	}
	if err := g.DeployPolicy(Policy{PrefixLen: 99}); err == nil {
		t.Error("invalid prefix accepted")
	}
}

func TestSecGatewayFirstMatchWins(t *testing.T) {
	g, _ := NewSecGateway(platform.Xilinx, true)
	// Allow 192.168.1.0/24 before denying 192.168.0.0/16.
	g.DeployPolicy(Policy{SrcPrefix: net.IPv4(192, 168, 1, 0), PrefixLen: 24, Action: Allow})
	g.DeployPolicy(Policy{SrcPrefix: net.IPv4(192, 168, 0, 0), PrefixLen: 16, Action: Deny})
	if ok, _ := g.Process(0, gwPacket(net.IPv4(192, 168, 1, 7), 128)); !ok {
		t.Error("whitelisted subnet blocked")
	}
	if ok, _ := g.Process(0, gwPacket(net.IPv4(192, 168, 2, 7), 128)); ok {
		t.Error("denied subnet admitted")
	}
}

func TestSecGatewayThroughputNearLineRate(t *testing.T) {
	// Fig. 17a: the gateway forwards at (effective) line rate at large
	// packets, with and without Harmonia.
	for _, harmonia := range []bool{true, false} {
		g, _ := NewSecGateway(platform.Xilinx, harmonia)
		pkts, _ := workload.Packets(workload.PacketConfig{Count: 2000, Size: 1024, Flows: 32, Seed: 1})
		var done sim.Time
		for _, p := range pkts {
			ok, d := g.Process(0, p)
			if !ok {
				t.Fatal("packet dropped")
			}
			done = d
		}
		gbps := float64(2000*1024*8) / done.Nanoseconds()
		eff := net.EffectiveGbps(100, 1024)
		if gbps < eff*0.95 {
			t.Errorf("harmonia=%v sustained %.1f Gbps, want about %.1f", harmonia, gbps, eff)
		}
	}
}

func TestSecGatewayHarmoniaLatencyPenaltyTiny(t *testing.T) {
	// Fig. 17a: the with-Harmonia latency increase is nanoseconds,
	// under 1% of end-to-end.
	with, _ := NewSecGateway(platform.Xilinx, true)
	without, _ := NewSecGateway(platform.Xilinx, false)
	p := gwPacket(net.IPv4(8, 8, 8, 8), 512)
	_, dw := with.Process(0, p)
	_, dn := without.Process(0, p)
	if dw <= dn {
		t.Error("harmonia path should add some latency")
	}
	delta := dw - dn
	if delta > 100*sim.Nanosecond {
		t.Errorf("wrapper penalty %v, want tens of ns", delta)
	}
	// Relative to the microsecond-scale end-to-end latency of a cloud
	// request (device time + network/host RTT), the penalty is < 1%.
	e2e := dn + 4*sim.Microsecond
	if frac := float64(delta) / float64(e2e); frac > 0.01 {
		t.Errorf("penalty fraction %.4f of end-to-end, want < 1%%", frac)
	}
}

func TestSecGatewayRealTimeMonitoring(t *testing.T) {
	// Event-driven run: packets arrive on the engine at 10 Gbps offered
	// load while a sampler records windowed throughput — the real-time
	// statistics the Network RBB monitoring exposes.
	g, _ := NewSecGateway(platform.Xilinx, true)
	eng := sim.NewEngine()
	const pktBytes = 1024
	gap := sim.Time(float64(pktBytes*8) / 10 * float64(sim.Nanosecond)) // 10 Gbps
	var arrive func()
	sent := 0
	arrive = func() {
		p := gwPacket(net.IPv4(8, 8, 8, 8), pktBytes)
		g.Process(eng.Now(), p)
		sent++
		if sent < 500 {
			eng.After(gap, arrive)
		}
	}
	eng.After(gap, arrive)

	sampler, err := metrics.NewSampler(eng, 10*sim.Microsecond, 30, func() int64 {
		return g.Net.RxStats().Bytes
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if g.Allowed() != 500 {
		t.Fatalf("processed %d packets", g.Allowed())
	}
	// Steady-state windows should read about 10 Gbps = 1.25e9 B/s.
	mean := sampler.MeanRate() * 8 / 1e9 // to Gbps
	if mean < 8 || mean > 12 {
		t.Errorf("monitored mean rate %.1f Gbps, want about 10", mean)
	}
}
