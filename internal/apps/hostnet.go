package apps

import (
	"encoding/binary"

	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/shell"
	"harmonia/internal/sim"
)

// HostNetworkInfo describes the host-networking offload: checksum and
// vSwitch-style flow processing moved from host CPUs into the FPGA.
func HostNetworkInfo() Info {
	return Info{
		Name:         "host-network",
		Architecture: BITW,
		Kind:         "network",
		Demands: shell.Demands{
			Network: &shell.NetworkDemand{Gbps: 100, Director: true},
			Memory:  []shell.MemoryDemand{{Kind: ip.DDR4Mem}},
			Host:    &shell.HostDemand{Queues: 512},
		},
		RoleLoC:    19_000,
		RoleRes:    hdl.Resources{LUT: 150_000, REG: 230_000, BRAM: 400, URAM: 64},
		Categories: []string{"mac", "pcie-dma", "pcie-phy", "ddr4", "mgmt", "uck"},
	}
}

// FlowAction is a vSwitch flow-table action.
type FlowAction int

// Flow actions.
const (
	ActionToHost FlowAction = iota
	ActionDrop
	ActionForward // hairpin back to the wire
)

// HostNetwork is the functional offload engine: ingress, checksum
// offload, exact-match flow table, then delivery to host queues over
// the Host RBB (or hairpin/drop).
type HostNetwork struct {
	Net  *rbb.NetworkRBB
	Host *rbb.HostRBB
	clk  *sim.Clock
	// Flows is the two-stage vSwitch classifier (pinned exact entries
	// plus priority wildcard rules).
	Flows      *Classifier
	toHost     int64
	dropped    int64
	hairpinned int64
	csums      int64
}

// NewHostNetwork builds the offload engine on a vendor's RBBs at the
// given PCIe configuration.
func NewHostNetwork(vendor platform.Vendor, gen, lanes int, harmonia bool) (*HostNetwork, error) {
	clk := UserClock()
	n, err := rbb.NewNetwork(vendor, ip.Speed100G, clk, UserWidth)
	if err != nil {
		return nil, err
	}
	h, err := rbb.NewHost(vendor, gen, lanes, ip.SGDMA, clk, UserWidth)
	if err != nil {
		return nil, err
	}
	n.SetNative(!harmonia)
	h.SetNative(!harmonia)
	n.Filter.SetEnabled(false)
	n.Director.AddTenant(0, 0, 512)
	n.Director.SetDefaultTenant(0)
	return &HostNetwork{
		Net:   n,
		Host:  h,
		clk:   clk,
		Flows: NewClassifier(),
	}, nil
}

// InstallFlow pins an exact-match flow-table entry.
func (hn *HostNetwork) InstallFlow(key net.FlowKey, action FlowAction) {
	hn.Flows.Pin(key, action)
}

// InstallWildcard programs a masked rule in the wildcard table.
func (hn *HostNetwork) InstallWildcard(r WildcardRule) error {
	return hn.Flows.AddRule(r)
}

// checksum computes the offloaded Internet checksum over the packet's
// pseudo-header material. It costs one role cycle per 64 bytes — the
// pipeline processes a full user-width word per cycle.
func (hn *HostNetwork) checksum(p *net.Packet) (uint16, int64) {
	var hdr [12]byte
	copy(hdr[0:4], p.SrcIP[:])
	copy(hdr[4:8], p.DstIP[:])
	hdr[9] = p.Proto
	binary.BigEndian.PutUint16(hdr[10:12], uint16(p.WireBytes))
	data := hdr[:]
	if len(p.Payload) > 0 {
		data = append(data, p.Payload...)
	}
	cycles := int64((p.WireBytes + UserWidth/8 - 1) / (UserWidth / 8))
	hn.csums++
	return net.Checksum(data), cycles
}

// Offload carries one packet through the engine: checksum, flow match,
// then action. It returns the checksum, selected host queue (for
// ActionToHost) and the completion time.
func (hn *HostNetwork) Offload(now sim.Time, p *net.Packet) (csum uint16, queue int, done sim.Time, action FlowAction) {
	in, q, ok := hn.Net.Ingress(now, p)
	if !ok {
		hn.dropped++
		return 0, 0, in, ActionDrop
	}
	csum, cycles := hn.checksum(p)
	t := in + hn.clk.CyclesTime(cycles+2) // checksum + flow match
	act := hn.Flows.Classify(p.Flow())
	switch act {
	case ActionDrop:
		hn.dropped++
		return csum, 0, t, ActionDrop
	case ActionForward:
		hn.hairpinned++
		return csum, 0, hn.Net.Egress(t, p), ActionForward
	default:
		hn.toHost++
		doneT, err := hn.Host.Send(t, q, p.WireBytes)
		if err != nil {
			hn.dropped++
			return csum, 0, t, ActionDrop
		}
		return csum, q, doneT, ActionToHost
	}
}

// Stats reports per-action counts and checksum offload count.
func (hn *HostNetwork) Stats() (toHost, dropped, hairpinned, checksums int64) {
	return hn.toHost, hn.dropped, hn.hairpinned, hn.csums
}
