package apps

import (
	"testing"
	"testing/quick"

	"harmonia/internal/net"
)

func pool(n int) []net.IPAddr {
	out := make([]net.IPAddr, n)
	for i := range out {
		out[i] = net.IPv4(10, 0, byte(i>>8), byte(i))
	}
	return out
}

func TestMaglevValidation(t *testing.T) {
	if _, err := NewMaglev(nil); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewMaglev(pool(maglevTableSize + 1)); err == nil {
		t.Error("oversized pool accepted")
	}
}

func TestMaglevEvenShares(t *testing.T) {
	// Each backend owns about 1/N of the table.
	backends := pool(8)
	m, err := NewMaglev(backends)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range backends {
		share := m.Share(b)
		if share < 0.08 || share > 0.17 {
			t.Errorf("backend %v share = %.3f, want about 0.125", b, share)
		}
	}
	if m.Share(net.IPv4(99, 99, 99, 99)) != 0 {
		t.Error("foreign backend has a share")
	}
}

func TestMaglevDeterministicLookup(t *testing.T) {
	backends := pool(5)
	m1, _ := NewMaglev(backends)
	m2, _ := NewMaglev(backends)
	key := net.FlowKey{SrcIP: net.IPv4(1, 2, 3, 4), DstIP: net.IPv4(20, 0, 0, 1),
		Proto: net.ProtoTCP, SrcPort: 1234, DstPort: 80}
	if m1.Lookup(key) != m2.Lookup(key) {
		t.Error("identical tables disagree")
	}
	if m1.Disruption(m2) != 0 {
		t.Error("identical tables report disruption")
	}
}

func TestMaglevMinimalDisruption(t *testing.T) {
	// The consistency headline: removing one of N backends remaps about
	// 1/N of the table, far below what mod-hash would (which remaps
	// ~ (N-1)/N of entries).
	const n = 10
	backends := pool(n)
	full, err := NewMaglev(backends)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewMaglev(backends[1:]) // drop backend 0
	if err != nil {
		t.Fatal(err)
	}
	d := full.Disruption(reduced)
	// All of backend 0's ~10% must move, plus a small consistency tax.
	if d < 0.08 {
		t.Errorf("disruption %.3f too low — backend 0's entries must move", d)
	}
	if d > 0.25 {
		t.Errorf("disruption %.3f, want close to 1/N (~0.10-0.2)", d)
	}
	// Compare with naive mod-hash disruption, which reshuffles nearly
	// everything when the modulus changes.
	modDisrupt := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		key := net.FlowKey{SrcIP: net.IPv4(1, 1, byte(i>>8), byte(i)),
			DstIP: net.IPv4(20, 0, 0, 1), Proto: net.ProtoTCP,
			SrcPort: uint16(i), DstPort: 80}
		h := key.Hash()
		if backends[h%uint64(n)] != backends[1:][h%uint64(n-1)] {
			modDisrupt++
		}
	}
	naive := float64(modDisrupt) / trials
	if d >= naive {
		t.Errorf("maglev disruption %.3f not below naive mod-hash %.3f", d, naive)
	}
}

func TestMaglevSurvivingMappingsStable(t *testing.T) {
	// Flows that mapped to surviving backends overwhelmingly keep them.
	const n = 8
	backends := pool(n)
	full, _ := NewMaglev(backends)
	reduced, _ := NewMaglev(backends[1:])
	kept, total := 0, 0
	for i := 0; i < 3000; i++ {
		key := net.FlowKey{SrcIP: net.IPv4(2, 2, byte(i>>8), byte(i)),
			DstIP: net.IPv4(20, 0, 0, 1), Proto: net.ProtoTCP,
			SrcPort: uint16(i), DstPort: 443}
		before := full.Lookup(key)
		if before == backends[0] {
			continue // this flow's backend was drained
		}
		total++
		if reduced.Lookup(key) == before {
			kept++
		}
	}
	if frac := float64(kept) / float64(total); frac < 0.90 {
		t.Errorf("only %.2f of surviving mappings stable, want > 0.90", frac)
	}
}

func TestMaglevLookupAlwaysInPool(t *testing.T) {
	backends := pool(6)
	m, _ := NewMaglev(backends)
	inPool := map[net.IPAddr]bool{}
	for _, b := range backends {
		inPool[b] = true
	}
	f := func(sp, dp uint16, a, b, c, d byte) bool {
		key := net.FlowKey{SrcIP: net.IPAddr{a, b, c, d}, DstIP: net.IPv4(20, 0, 0, 1),
			Proto: net.ProtoTCP, SrcPort: sp, DstPort: dp}
		return inPool[m.Lookup(key)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaglevRemovalDisruptionBoundProperty(t *testing.T) {
	// Property: across pool sizes, removing ANY single backend disrupts
	// at most share(removed) + ε of table entries — every entry of the
	// removed backend must move, plus only a small consistency tax on
	// the survivors. With even shares that is ≈ 1/N + ε.
	const epsilon = 0.05
	for _, n := range []int{2, 3, 5, 8, 16, 32} {
		backends := pool(n)
		full, err := NewMaglev(backends)
		if err != nil {
			t.Fatal(err)
		}
		for drop := 0; drop < n; drop++ {
			var rest []net.IPAddr
			rest = append(rest, backends[:drop]...)
			rest = append(rest, backends[drop+1:]...)
			if len(rest) == 0 {
				continue
			}
			reduced, err := NewMaglev(rest)
			if err != nil {
				t.Fatal(err)
			}
			d := full.Disruption(reduced)
			share := full.Share(backends[drop])
			if d < share {
				t.Errorf("n=%d drop=%d: disruption %.4f below removed share %.4f", n, drop, d, share)
			}
			if d > share+epsilon {
				t.Errorf("n=%d drop=%d: disruption %.4f exceeds share %.4f + ε %.2f — not minimal",
					n, drop, d, share, epsilon)
			}
			if d > 1.0/float64(n)+2*epsilon {
				t.Errorf("n=%d drop=%d: disruption %.4f far above 1/N = %.4f", n, drop, d, 1.0/float64(n))
			}
		}
	}
}

func TestMaglevSharesSumToOneProperty(t *testing.T) {
	// Property: across pool sizes the table is a partition — every
	// entry is owned by exactly one backend, so shares sum to 1.
	for _, n := range []int{1, 2, 3, 7, 20, 100} {
		backends := pool(n)
		m, err := NewMaglev(backends)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, b := range backends {
			s := m.Share(b)
			if s <= 0 {
				t.Errorf("n=%d: backend %v owns no entries", n, b)
			}
			sum += s
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			t.Errorf("n=%d: shares sum to %.12f, want 1", n, sum)
		}
	}
}

func TestMaglevSingleBackend(t *testing.T) {
	m, err := NewMaglev(pool(1))
	if err != nil {
		t.Fatal(err)
	}
	key := net.FlowKey{SrcPort: 1}
	if m.Lookup(key) != pool(1)[0] {
		t.Error("single-backend lookup wrong")
	}
	if m.Share(pool(1)[0]) != 1 {
		t.Error("single backend should own the whole table")
	}
}
