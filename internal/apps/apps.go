// Package apps implements the five production applications the paper
// evaluates (Table 2): Sec-Gateway, Layer-4 LB, Host Network, Retrieval
// and Board Test. Each application provides its role description (shell
// demands plus structural logic for the development-workload and
// tailoring experiments) and a functional datapath used by the
// performance benchmarks of Figs. 17.
package apps

import (
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/role"
	"harmonia/internal/shell"
	"harmonia/internal/sim"
)

// Architecture classifies how the application attaches to traffic.
type Architecture string

// Acceleration architectures (Table 2).
const (
	BITW      Architecture = "bump-in-the-wire"
	LookAside Architecture = "look-aside"
	Flexible  Architecture = "flexible"
)

// Info is an application's catalog entry.
type Info struct {
	Name         string
	Architecture Architecture
	Kind         string // security / network / computation / infrastructure
	Demands      shell.Demands
	// RoleLoC is the user-owned logic's handcrafted code volume, sized
	// so shell-vs-role workload fractions reproduce Fig. 3a.
	RoleLoC int
	// RoleRes is the user-owned logic's resource footprint.
	RoleRes hdl.Resources
	// Categories lists the hardware module categories the app's host
	// software initializes (for the Fig. 13 migration analysis).
	Categories []string
}

// Role materializes the application's role.
func (i Info) Role() (*role.Role, error) {
	return role.New(i.Name, i.Demands, &hdl.Module{
		Name:     i.Name + "-logic",
		Vendor:   "user",
		Category: "role",
		Res:      i.RoleRes,
		Code:     hdl.LoC{Handcraft: i.RoleLoC},
	})
}

// UserClock is the role-side clock the functional applications run at.
func UserClock() *sim.Clock { return sim.NewClock("user", 250) }

// UserWidth is the role-side datapath width in bits.
const UserWidth = 512

// Names lists the applications in the paper's order.
func Names() []string {
	return []string{"sec-gateway", "layer4-lb", "host-network", "retrieval", "board-test"}
}

// Catalog returns every application's catalog entry keyed by name.
func Catalog() map[string]Info {
	out := make(map[string]Info, 5)
	for _, i := range []Info{
		SecGatewayInfo(), Layer4LBInfo(), HostNetworkInfo(), RetrievalInfo(), BoardTestInfo(),
	} {
		out[i.Name] = i
	}
	return out
}

// Lookup returns the named application entry.
func Lookup(name string) (Info, error) {
	i, ok := Catalog()[name]
	if !ok {
		return Info{}, fmt.Errorf("apps: unknown application %q", name)
	}
	return i, nil
}
