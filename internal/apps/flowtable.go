package apps

import (
	"encoding/binary"
	"fmt"
	"sort"

	"harmonia/internal/net"
)

// FlowTable is the stateful connection table of the Layer-4 LB: the
// flow → backend pinning that keeps established connections on their
// server while the Maglev pool churns underneath. It is the
// device-resident state live migration carries across PR slots, so it
// knows how to snapshot itself into (and restore itself from) the
// versioned word encoding the command path's table transactions move.
type FlowTable struct {
	conns map[net.FlowKey]net.IPAddr
	max   int
	// hits/misses count lookups against established flows vs new-flow
	// pins; tableFull counts pins refused because the table was at
	// capacity — those flows silently lose stickiness, so the counter
	// is the operator's only signal.
	hits, misses, tableFull int64
}

// NewFlowTable returns an empty table bounded at max entries.
func NewFlowTable(max int) *FlowTable {
	return &FlowTable{conns: make(map[net.FlowKey]net.IPAddr), max: max}
}

// Len reports the established flow count.
func (t *FlowTable) Len() int { return len(t.conns) }

// Max reports the table capacity.
func (t *FlowTable) Max() int { return t.max }

// SetMax rebounds the table; existing entries stay even above the new
// bound, only future pins are refused.
func (t *FlowTable) SetMax(max int) { t.max = max }

// Lookup finds an established flow's pinned backend, counting the hit.
func (t *FlowTable) Lookup(k net.FlowKey) (net.IPAddr, bool) {
	b, ok := t.conns[k]
	if ok {
		t.hits++
	}
	return b, ok
}

// Peek reads an entry without touching the counters (measurement and
// migration use it; the datapath uses Lookup).
func (t *FlowTable) Peek(k net.FlowKey) (net.IPAddr, bool) {
	b, ok := t.conns[k]
	return b, ok
}

// Pin records a new flow's backend, counting the miss. A full table
// refuses the pin and counts it: the flow is still served but loses
// stickiness across pool changes.
func (t *FlowTable) Pin(k net.FlowKey, b net.IPAddr) bool {
	t.misses++
	if len(t.conns) >= t.max {
		t.tableFull++
		return false
	}
	t.conns[k] = b
	return true
}

// EvictBackend removes every flow pinned to a backend and reports how
// many were evicted — the cleanup path for a *failed* backend, whose
// pinned flows would otherwise blackhole forever.
func (t *FlowTable) EvictBackend(b net.IPAddr) int {
	evicted := 0
	for k, have := range t.conns {
		if have == b {
			delete(t.conns, k)
			evicted++
		}
	}
	return evicted
}

// Stats reports the table counters.
func (t *FlowTable) Stats() (hits, misses, tableFull int64) {
	return t.hits, t.misses, t.tableFull
}

// ConnEntry is one pinned flow in a snapshot.
type ConnEntry struct {
	Key     net.FlowKey
	Backend net.IPAddr
}

// Snapshot exports the table as a deterministic (key-sorted) entry
// list — the consistent capture the export side of migration stages.
func (t *FlowTable) Snapshot() []ConnEntry {
	out := make([]ConnEntry, 0, len(t.conns))
	for k, b := range t.conns {
		out = append(out, ConnEntry{Key: k, Backend: b})
	}
	sort.Slice(out, func(i, j int) bool { return lessKey(out[i].Key, out[j].Key) })
	return out
}

// Restore replays snapshot entries into the table, respecting the
// capacity bound; it reports how many were added and how many dropped.
// Counters are untouched: a restore is control-plane traffic, not
// datapath lookups.
func (t *FlowTable) Restore(entries []ConnEntry) (added, dropped int) {
	for _, e := range entries {
		if _, dup := t.conns[e.Key]; !dup && len(t.conns) >= t.max {
			dropped++
			continue
		}
		t.conns[e.Key] = e.Backend
		added++
	}
	return added, dropped
}

// lessKey orders flow keys by their packed wire bytes.
func lessKey(a, b net.FlowKey) bool {
	return packKey(a) < packKey(b)
}

// packKey packs a flow key into a comparable 13-byte-equivalent tuple.
func packKey(k net.FlowKey) string {
	var buf [13]byte
	copy(buf[0:4], k.SrcIP[:])
	copy(buf[4:8], k.DstIP[:])
	buf[8] = k.Proto
	binary.BigEndian.PutUint16(buf[9:11], k.SrcPort)
	binary.BigEndian.PutUint16(buf[11:13], k.DstPort)
	return string(buf[:])
}

// Flow snapshot wire encoding (version 1): the word stream table-read/
// table-write transactions carry across devices during live migration.
//
//	word 0: magic (16) | version (16)
//	word 1: entry count
//	then per entry, 5 words:
//	  src IP, dst IP, src port (16) | dst port (16), proto, backend IP
const (
	flowSnapMagic       = 0x4C42 // "LB"
	FlowSnapshotVersion = 1
	flowSnapHeaderWords = 2
	flowSnapEntryWords  = 5
)

// ipWord packs an IPv4 address big-endian into one word.
func ipWord(a net.IPAddr) uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// wordIP unpacks ipWord.
func wordIP(w uint32) net.IPAddr {
	return net.IPAddr{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
}

// EncodeFlowSnapshot serializes entries into the versioned word stream.
func EncodeFlowSnapshot(entries []ConnEntry) []uint32 {
	out := make([]uint32, 0, flowSnapHeaderWords+flowSnapEntryWords*len(entries))
	out = append(out, flowSnapMagic<<16|FlowSnapshotVersion, uint32(len(entries)))
	for _, e := range entries {
		out = append(out,
			ipWord(e.Key.SrcIP),
			ipWord(e.Key.DstIP),
			uint32(e.Key.SrcPort)<<16|uint32(e.Key.DstPort),
			uint32(e.Key.Proto),
			ipWord(e.Backend),
		)
	}
	return out
}

// FlowSnapshotWords validates a snapshot's header and returns the total
// word count the stream declares — how the receive side knows when a
// row-by-row transfer is complete.
func FlowSnapshotWords(words []uint32) (int, error) {
	if len(words) < flowSnapHeaderWords {
		return 0, fmt.Errorf("apps: flow snapshot truncated before header")
	}
	if magic := words[0] >> 16; magic != flowSnapMagic {
		return 0, fmt.Errorf("apps: flow snapshot bad magic %#04x", magic)
	}
	if v := words[0] & 0xffff; v != FlowSnapshotVersion {
		return 0, fmt.Errorf("apps: flow snapshot version %d, want %d", v, FlowSnapshotVersion)
	}
	return flowSnapHeaderWords + flowSnapEntryWords*int(words[1]), nil
}

// DecodeFlowSnapshot parses the versioned word stream back into
// entries, validating magic, version and length.
func DecodeFlowSnapshot(words []uint32) ([]ConnEntry, error) {
	want, err := FlowSnapshotWords(words)
	if err != nil {
		return nil, err
	}
	if len(words) != want {
		return nil, fmt.Errorf("apps: flow snapshot has %d words, header declares %d", len(words), want)
	}
	entries := make([]ConnEntry, 0, words[1])
	for i := flowSnapHeaderWords; i < want; i += flowSnapEntryWords {
		entries = append(entries, ConnEntry{
			Key: net.FlowKey{
				SrcIP:   wordIP(words[i]),
				DstIP:   wordIP(words[i+1]),
				SrcPort: uint16(words[i+2] >> 16),
				DstPort: uint16(words[i+2]),
				Proto:   uint8(words[i+3]),
			},
			Backend: wordIP(words[i+4]),
		})
	}
	return entries, nil
}
